// Influence analysis: compose pattern matching with the iterative graph
// algorithms — find influential persons via PageRank over the friendship
// subgraph, then use Cypher to inspect what the influencers talk about.
// This is the "declarative pattern matching inside an analytical program"
// workflow the paper's introduction motivates.
package main

import (
	"fmt"
	"log"
	"sort"

	"gradoop"
)

func main() {
	env := gradoop.NewEnvironment(gradoop.WithWorkers(8))
	g, info := env.GenerateSocialNetwork(0.3, 11)
	fmt.Printf("social network: %d vertices, %d edges, %d persons\n",
		g.VertexCount(), g.EdgeCount(), info.Persons)

	// 1. Restrict to the friendship graph (an EPGM subgraph operator).
	friends := g.Subgraph(
		func(v gradoop.Vertex) bool { return v.Label == "Person" },
		func(e gradoop.Edge) bool { return e.Label == "knows" },
	)

	// 2. Iterative analytics on the dataflow substrate.
	ranked := friends.PageRank(0.85, 15)
	components := friends.ConnectedComponents(20)

	compSizes := map[int64]int{}
	for _, v := range components.Vertices() {
		compSizes[v.Properties.Get(gradoop.ComponentPropertyKey).Int()]++
	}
	largest := 0
	for _, n := range compSizes {
		if n > largest {
			largest = n
		}
	}
	fmt.Printf("friendship graph: %d weakly connected components, largest has %d persons\n",
		len(compSizes), largest)

	// 3. Pick the top influencers by PageRank.
	type scored struct {
		id    gradoop.ID
		name  string
		score float64
	}
	var persons []scored
	for _, v := range ranked.Vertices() {
		persons = append(persons, scored{
			id:    v.ID,
			name:  v.Properties.Get("firstName").Str() + " " + v.Properties.Get("lastName").Str(),
			score: v.Properties.Get(gradoop.PageRankPropertyKey).Float(),
		})
	}
	sort.Slice(persons, func(i, j int) bool { return persons[i].score > persons[j].score })
	fmt.Println("\ntop influencers by PageRank:")
	for _, p := range persons[:3] {
		fmt.Printf("  %-22s %.4f\n", p.name, p.score)
	}

	// 4. Back to declarative pattern matching: what do the influencers'
	// communities discuss? (Cypher with aggregation, ordering and limits.)
	top := persons[0]
	rows, err := g.CypherRows(`
		MATCH (p:Person)-[:knows]->(q:Person)-[:hasInterest]->(t:Tag)
		WHERE p.firstName = $first AND p.lastName = $last
		RETURN t.name AS tag, count(*) AS friends
		ORDER BY friends DESC, tag LIMIT 5`,
		gradoop.WithParams(map[string]gradoop.PropertyValue{
			"first": gradoop.String(firstWord(top.name)),
			"last":  gradoop.String(lastWord(top.name)),
		}),
		gradoop.WithEdgeSemantics(gradoop.Isomorphism))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninterests in %s's circle:\n", top.name)
	for _, row := range rows {
		fmt.Printf("  %-14s backed by %d friends\n", row.Values[0].Str(), row.Values[1].Int())
	}

	// 5. How far does the influence reach? Shortest paths from the top
	// influencer across friendships.
	reach := friends.ShortestPaths(top.id, "", 10)
	within := map[int64]int{}
	for _, v := range reach.Vertices() {
		if d := v.Properties.Get(gradoop.SSSPPropertyKey); !d.IsNull() {
			within[int64(d.Float())]++
		}
	}
	fmt.Printf("\nfriendship distance distribution from %s:\n", top.name)
	for hops := int64(0); hops <= 4; hops++ {
		if within[hops] > 0 {
			fmt.Printf("  %d hops: %d persons\n", hops, within[hops])
		}
	}
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[:i]
		}
	}
	return s
}

func lastWord(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ' ' {
			return s[i+1:]
		}
	}
	return s
}
