// Quickstart: build a small property graph, run the paper's flagship Cypher
// query (§2.3) with configurable matching semantics, and inspect both the
// tabular result and the EPGM graph-collection result.
package main

import (
	"fmt"
	"log"

	"gradoop"
)

func main() {
	env := gradoop.NewEnvironment(gradoop.WithWorkers(4))

	// The social network of the paper's Figure 1.
	person := func(name, gender string) gradoop.Vertex {
		return gradoop.Vertex{ID: gradoop.NewID(), Label: "Person",
			Properties: gradoop.Properties{}.
				Set("name", gradoop.String(name)).
				Set("gender", gradoop.String(gender))}
	}
	alice := person("Alice", "female")
	bob := person("Bob", "male")
	eve := person("Eve", "female")
	carol := person("Carol", "female")
	uni := gradoop.Vertex{ID: gradoop.NewID(), Label: "University",
		Properties: gradoop.Properties{}.Set("name", gradoop.String("Uni Leipzig"))}

	edge := func(label string, s, t gradoop.Vertex, props gradoop.Properties) gradoop.Edge {
		return gradoop.Edge{ID: gradoop.NewID(), Label: label,
			Source: s.ID, Target: t.ID, Properties: props}
	}
	g := env.GraphFromSlices("Community",
		[]gradoop.Vertex{alice, bob, eve, carol, uni},
		[]gradoop.Edge{
			edge("knows", alice, bob, nil),
			edge("knows", bob, alice, nil),
			edge("knows", bob, eve, nil),
			edge("knows", eve, carol, nil),
			edge("studyAt", alice, uni, gradoop.Properties{}.Set("classYear", gradoop.Int(2015))),
			edge("studyAt", bob, uni, gradoop.Properties{}.Set("classYear", gradoop.Int(2014))),
			edge("studyAt", eve, uni, gradoop.Properties{}.Set("classYear", gradoop.Int(2016))),
		})

	query := `
		MATCH (p1:Person)-[s:studyAt]->(u:University),
		      (p2:Person)-[:studyAt]->(u),
		      (p1)-[e:knows*1..3]->(p2)
		WHERE p1.gender <> p2.gender
		  AND u.name = 'Uni Leipzig'
		  AND s.classYear > 2014
		RETURN p1.name, p2.name`

	// Tabular access, Neo4j-style.
	rows, err := g.CypherRows(query,
		gradoop.WithVertexSemantics(gradoop.Homomorphism),
		gradoop.WithEdgeSemantics(gradoop.Isomorphism))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairs of opposite-gender students connected by <=3 friendships:")
	for _, row := range rows {
		fmt.Println("  ", row)
	}

	// EPGM access: every match is a new logical graph whose head stores the
	// variable bindings (Definition 2.4).
	matches, err := g.Cypher(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmatch collection holds %d logical graphs\n", matches.GraphCount())
	for _, head := range matches.Heads() {
		fmt.Printf("  match graph %d binds p1=%s p2=%s\n",
			head.ID, head.Properties.Get("p1"), head.Properties.Get("p2"))
	}

	// The planner explains itself.
	plan, err := g.ExplainCypher(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery plan:\n%s", plan)
}
