// Social-network analytics: generate an LDBC-SNB-like graph, reuse
// pre-computed statistics and a label-partitioned index across several
// operational queries, and observe how predicate selectivity drives result
// sizes and simulated cluster runtime (the paper's Figure 5 scenario).
package main

import (
	"fmt"
	"log"

	"gradoop"
)

func main() {
	env := gradoop.NewEnvironment(gradoop.WithWorkers(8))
	g, info := env.GenerateSocialNetwork(0.5, 2017)
	fmt.Printf("generated social network: %d vertices, %d edges (%d persons, %d messages)\n",
		g.VertexCount(), g.EdgeCount(), info.Persons, info.Posts+info.Comments)

	// Pre-compute the planner inputs once, like a deployed system would.
	stats := g.CollectStatistics()
	index := g.BuildIndex()

	messagesOf := `
		MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post)
		WHERE person.firstName = $firstName
		RETURN message.creationDate, message.content`

	for _, tc := range []struct {
		selectivity string
		firstName   string
	}{
		{"high (rare name)", info.RareFirstName},
		{"medium", info.MediumFirstName},
		{"low (common name)", info.CommonFirstName},
	} {
		env.ResetMetrics()
		n, err := g.CypherCount(messagesOf,
			gradoop.WithParams(map[string]gradoop.PropertyValue{
				"firstName": gradoop.String(tc.firstName),
			}),
			gradoop.WithStatistics(stats),
			gradoop.WithIndex(index),
			gradoop.WithEdgeSemantics(gradoop.Isomorphism))
		if err != nil {
			log.Fatal(err)
		}
		m := env.Metrics()
		fmt.Printf("  %-18s firstName=%-8q -> %6d messages, simulated cluster time %s\n",
			tc.selectivity, tc.firstName, n, m.SimulatedTime.Round(1000))
	}

	// A variable-length path query: every post reachable from the common
	// author's comments through reply chains (the paper's Query 2 shape).
	env.ResetMetrics()
	rows, err := g.CypherRows(`
		MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post),
		      (message)-[:replyOf*0..10]->(post:Post)
		WHERE person.firstName = $firstName
		RETURN post.content`,
		gradoop.WithParams(map[string]gradoop.PropertyValue{
			"firstName": gradoop.String(info.RareFirstName),
		}),
		gradoop.WithStatistics(stats),
		gradoop.WithIndex(index),
		gradoop.WithEdgeSemantics(gradoop.Isomorphism))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreply chains from %s's messages reach %d posts; first few:\n", info.RareFirstName, len(rows))
	for i, row := range rows {
		if i == 3 {
			break
		}
		fmt.Println("  ", row)
	}
	fmt.Printf("job metrics: %+v\n", env.Metrics())
}
