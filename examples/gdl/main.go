// GDL fixtures and OPTIONAL MATCH: declare a small organization graph in
// Gradoop's Graph Definition Language, then answer "profile completeness"
// questions — which employees lack a team or a mentor — with optional
// pattern matching, aggregation and ordering.
package main

import (
	"fmt"
	"log"

	"gradoop"
)

const org = `
acme:Company [
    (ann:Employee {name: "Ann", level: 3})
    (ben:Employee {name: "Ben", level: 2})
    (cy:Employee  {name: "Cy",  level: 1})
    (dora:Employee {name: "Dora", level: 1})
    (core:Team {name: "Core"})
    (infra:Team {name: "Infra"})
    (ann)-[:memberOf]->(core)
    (ben)-[:memberOf]->(core)
    (cy)-[:memberOf]->(infra)
    (ann)-[:mentors]->(ben)
    (ann)-[:mentors]->(cy)
]
`

func main() {
	env := gradoop.NewEnvironment(gradoop.WithWorkers(2))
	db, err := env.ParseGDL(org)
	if err != nil {
		log.Fatal(err)
	}
	g, _ := db.Graph("acme")
	if err := g.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("declared %q: %d vertices, %d edges\n", "acme", g.VertexCount(), g.EdgeCount())

	// Everyone, with their team and mentor when present: OPTIONAL MATCH
	// keeps employees without either (Dora has neither a team nor a
	// mentor entry pointing at her).
	rows, err := g.CypherRows(`
		MATCH (e:Employee)
		OPTIONAL MATCH (e)-[:memberOf]->(t:Team)
		OPTIONAL MATCH (m:Employee)-[:mentors]->(e)
		RETURN e.name AS employee, t.name AS team, m.name AS mentor
		ORDER BY employee`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprofile report:")
	for _, row := range rows {
		team, mentor := row.Values[1], row.Values[2]
		fmt.Printf("  %-6s team=%-8s mentor=%s\n",
			row.Values[0].Str(), orDash(team), orDash(mentor))
	}

	// Completeness metric: how many employees are missing a team?
	missing, err := g.CypherRows(`
		MATCH (e:Employee)
		OPTIONAL MATCH (e)-[:memberOf]->(t:Team)
		RETURN count(*) AS total, count(t) AS withTeam`)
	if err != nil {
		log.Fatal(err)
	}
	total := missing[0].Values[0].Int()
	withTeam := missing[0].Values[1].Int()
	fmt.Printf("\n%d of %d employees are assigned to a team\n", withTeam, total)

	// Team sizes via aggregation.
	teams, err := g.CypherRows(`
		MATCH (t:Team)
		OPTIONAL MATCH (e:Employee)-[:memberOf]->(t)
		RETURN t.name AS team, count(e) AS members ORDER BY members DESC, team`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nteam sizes:")
	for _, row := range teams {
		fmt.Printf("  %-8s %d members\n", row.Values[0].Str(), row.Values[1].Int())
	}
}

func orDash(v gradoop.PropertyValue) string {
	if v.IsNull() {
		return "-"
	}
	return v.Str()
}
