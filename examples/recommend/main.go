// Recommendation pipeline: combine Cypher pattern matching with the EPGM
// analytical operators — the integration the paper motivates. A
// recommendation query (the evaluation's Query 6) finds tags that a person's
// friends are interested in; the example then post-processes the rows into
// top-N suggestions and uses graph grouping to summarize the interest
// structure.
package main

import (
	"fmt"
	"log"
	"sort"

	"gradoop"
)

func main() {
	env := gradoop.NewEnvironment(gradoop.WithWorkers(8))
	g, info := env.GenerateSocialNetwork(0.3, 7)
	fmt.Printf("social network: %d vertices, %d edges, %d persons\n",
		g.VertexCount(), g.EdgeCount(), info.Persons)

	// Query 6: recommend tags a friend with shared interests also likes.
	rows, err := g.CypherRows(`
		MATCH (p1:Person)-[:knows]->(p2:Person),
		      (p1)-[:hasInterest]->(t1:Tag),
		      (p2)-[:hasInterest]->(t1),
		      (p2)-[:hasInterest]->(t2:Tag)
		RETURN p1.firstName, p1.lastName, t2.name`,
		gradoop.WithEdgeSemantics(gradoop.Isomorphism))
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate rows into per-person tag scores and print the strongest
	// recommendations.
	type rec struct {
		person, tag string
		score       int
	}
	scores := map[string]map[string]int{}
	for _, row := range rows {
		person := row.Values[0].Str() + " " + row.Values[1].Str()
		tag := row.Values[2].Str()
		if scores[person] == nil {
			scores[person] = map[string]int{}
		}
		scores[person][tag]++
	}
	var best []rec
	for person, tags := range scores {
		for tag, n := range tags {
			best = append(best, rec{person, tag, n})
		}
	}
	sort.Slice(best, func(i, j int) bool {
		if best[i].score != best[j].score {
			return best[i].score > best[j].score
		}
		if best[i].person != best[j].person {
			return best[i].person < best[j].person
		}
		return best[i].tag < best[j].tag
	})
	fmt.Printf("\n%d raw recommendation rows; strongest signals:\n", len(rows))
	for i, r := range best {
		if i == 5 {
			break
		}
		fmt.Printf("  recommend %-14q to %-20s (supported by %d friend paths)\n", r.tag, r.person, r.score)
	}

	// EPGM composition: extract the interest subgraph and group it into a
	// label-level summary, counting persons, tags and interest edges.
	interests := g.Subgraph(
		func(v gradoop.Vertex) bool { return v.Label == "Person" || v.Label == "Tag" },
		func(e gradoop.Edge) bool { return e.Label == "hasInterest" || e.Label == "knows" },
	)
	summary := interests.GroupBy(gradoop.GroupingConfig{
		GroupByVertexLabel: true,
		GroupByEdgeLabel:   true,
	})
	fmt.Println("\ninterest subgraph grouped by label:")
	for _, v := range summary.Vertices() {
		fmt.Printf("  super-vertex %-8s count=%d\n", v.Label, v.Properties.Get("count").Int())
	}
	for _, e := range summary.Edges() {
		fmt.Printf("  super-edge   %-12s count=%d\n", e.Label, e.Properties.Get("count").Int())
	}

	// Aggregate the matched collection itself: how many matches involved
	// each person is visible directly on the collection's graph heads.
	matches, err := g.Cypher(`
		MATCH (p1:Person)-[:knows]->(p2:Person), (p1)-[:hasInterest]->(t:Tag), (p2)-[:hasInterest]->(t)
		RETURN *`, gradoop.WithEdgeSemantics(gradoop.Isomorphism))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshared-interest friendships (as a graph collection): %d match graphs\n", matches.GraphCount())
}
