package gradoop

import (
	"strings"
	"testing"
)

func socialNetwork() ([]Vertex, []Edge) {
	person := func(name, gender string) Vertex {
		return Vertex{ID: NewID(), Label: "Person", Properties: Properties{}.
			Set("name", String(name)).Set("gender", String(gender))}
	}
	alice := person("Alice", "female")
	bob := person("Bob", "male")
	eve := person("Eve", "female")
	uni := Vertex{ID: NewID(), Label: "University",
		Properties: Properties{}.Set("name", String("Uni Leipzig"))}
	e := func(label string, s, t Vertex, props Properties) Edge {
		return Edge{ID: NewID(), Label: label, Source: s.ID, Target: t.ID, Properties: props}
	}
	return []Vertex{alice, bob, eve, uni}, []Edge{
		e("knows", alice, bob, nil),
		e("knows", bob, eve, nil),
		e("knows", eve, alice, nil),
		e("studyAt", alice, uni, Properties{}.Set("classYear", Int(2015))),
		e("studyAt", bob, uni, Properties{}.Set("classYear", Int(2014))),
		e("studyAt", eve, uni, Properties{}.Set("classYear", Int(2016))),
	}
}

func social(t *testing.T, workers int) *LogicalGraph {
	t.Helper()
	env := NewEnvironment(WithWorkers(workers))
	vs, es := socialNetwork()
	return env.GraphFromSlices("social", vs, es)
}

func TestPublicQuickstartFlow(t *testing.T) {
	g := social(t, 4)
	if g.VertexCount() != 4 || g.EdgeCount() != 6 {
		t.Fatalf("counts: %d/%d", g.VertexCount(), g.EdgeCount())
	}
	matches, err := g.Cypher(`
		MATCH (p1:Person)-[e:knows*1..3]->(p2:Person)
		WHERE p1.gender <> p2.gender RETURN *`,
		WithVertexSemantics(Homomorphism),
		WithEdgeSemantics(Isomorphism))
	if err != nil {
		t.Fatal(err)
	}
	if matches.GraphCount() == 0 {
		t.Fatal("no matches")
	}
	heads := matches.Heads()
	if heads[0].Properties.Get("p1").IsNull() {
		t.Fatal("bindings not stored on head")
	}
}

func TestPublicCypherRows(t *testing.T) {
	g := social(t, 2)
	rows, err := g.CypherRows(`MATCH (p:Person)-[s:studyAt]->(u:University)
		WHERE s.classYear > 2014 RETURN p.name AS name, u.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	if rows[0].Columns[0] != "name" {
		t.Fatalf("columns: %v", rows[0].Columns)
	}
}

func TestPublicCypherCountWithParams(t *testing.T) {
	g := social(t, 2)
	n, err := g.CypherCount(`MATCH (p:Person {name: $who})-[:knows]->(q) RETURN *`,
		WithParams(map[string]PropertyValue{"who": String("Alice")}))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count=%d", n)
	}
}

func TestPublicStatisticsAndIndexReuse(t *testing.T) {
	g := social(t, 2)
	st := g.CollectStatistics()
	if !strings.Contains(st.String(), "Person=3") {
		t.Fatalf("stats: %s", st)
	}
	idx := g.BuildIndex()
	n, err := g.CypherCount(`MATCH (p:Person)-[:knows]->(q:Person) RETURN *`,
		WithStatistics(st), WithIndex(idx))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("count=%d", n)
	}
}

func TestPublicExplain(t *testing.T) {
	g := social(t, 2)
	plan, err := g.ExplainCypher(`MATCH (p:Person)-[:knows]->(q:Person) RETURN *`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "JoinEmbeddings") {
		t.Fatalf("plan: %s", plan)
	}
}

func TestPublicCSVRoundTrip(t *testing.T) {
	g := social(t, 2)
	dir := t.TempDir()
	if err := g.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	env := NewEnvironment(WithWorkers(3))
	g2, err := env.ReadCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g2.VertexCount() != g.VertexCount() || g2.EdgeCount() != g.EdgeCount() {
		t.Fatal("round trip lost elements")
	}
	n, err := g2.CypherCount(`MATCH (p:Person)-[:studyAt]->(u:University) RETURN *`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("count=%d", n)
	}
}

func TestPublicEPGMOperators(t *testing.T) {
	g := social(t, 2)
	persons := g.Subgraph(func(v Vertex) bool { return v.Label == "Person" }, nil)
	if persons.VertexCount() != 3 {
		t.Fatalf("persons=%d", persons.VertexCount())
	}
	agg := persons.Aggregate(VertexCountAgg(), EdgeCountAgg())
	if agg.Head().Properties.Get("vertexCount").Int() != 3 {
		t.Fatal("aggregate")
	}
	grouped := g.GroupBy(GroupingConfig{GroupByVertexLabel: true, GroupByEdgeLabel: true})
	if grouped.VertexCount() != 2 {
		t.Fatalf("groups=%d", grouped.VertexCount())
	}
	females := g.Subgraph(func(v Vertex) bool { return v.Properties.Get("gender").Str() == "female" }, nil)
	if got := persons.Exclusion(females).VertexCount(); got != 1 {
		t.Fatalf("exclusion=%d", got)
	}
	if got := persons.Overlap(females).VertexCount(); got != 2 {
		t.Fatalf("overlap=%d", got)
	}
	if got := persons.Combination(females).VertexCount(); got != 3 {
		t.Fatalf("combination=%d", got)
	}
}

func TestPublicCollectionOps(t *testing.T) {
	g := social(t, 2)
	coll, err := g.Cypher(`MATCH (p:Person)-[:knows]->(q:Person) RETURN *`)
	if err != nil {
		t.Fatal(err)
	}
	if coll.GraphCount() != 3 {
		t.Fatalf("graphs=%d", coll.GraphCount())
	}
	first := coll.Heads()[0].ID
	sub := coll.Select(func(h GraphHead) bool { return h.ID == first })
	if sub.GraphCount() != 1 {
		t.Fatal("select")
	}
	if coll.Difference(sub).GraphCount() != 2 {
		t.Fatal("difference")
	}
	if coll.Intersect(sub).GraphCount() != 1 {
		t.Fatal("intersect")
	}
	if coll.Union(sub).GraphCount() != 3 {
		t.Fatal("union")
	}
	lg, ok := coll.Graph(first)
	if !ok || lg.VertexCount() != 2 {
		t.Fatal("graph extraction")
	}
}

func TestPublicMetrics(t *testing.T) {
	env := NewEnvironment(WithWorkers(4), WithMemoryPerWorker(1<<30))
	vs, es := socialNetwork()
	g := env.GraphFromSlices("social", vs, es)
	env.ResetMetrics()
	if _, err := g.CypherCount(`MATCH (a:Person)-[:knows]->(b) RETURN *`); err != nil {
		t.Fatal(err)
	}
	m := env.Metrics()
	if m.ElementsProcessed == 0 || m.SimulatedTime == 0 {
		t.Fatalf("metrics empty: %+v", m)
	}
	if env.Workers() != 4 {
		t.Fatal("workers")
	}
}
