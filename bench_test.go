// Benchmarks regenerating the paper's evaluation (§4): one benchmark per
// table and figure, plus ablation benchmarks for the design decisions of
// §3 (operator fusion, the indexed graph representation, the compact
// embedding encoding, join strategies, statistics-driven planning and early
// predicate pushdown). The printed series (simulated cluster milliseconds
// per configuration) correspond to the paper's reported rows; cmd/bench
// renders the same experiments as full tables.
package gradoop_test

import (
	"fmt"
	"testing"

	"gradoop/internal/baseline"
	"gradoop/internal/benchkit"
	"gradoop/internal/core"
	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
	"gradoop/internal/epgm"
	"gradoop/internal/ldbc"
	"gradoop/internal/operators"
	"gradoop/internal/planner"
	"gradoop/internal/stats"
)

// benchRunner caches datasets across benchmarks. Scale factors are reduced
// relative to cmd/bench so `go test -bench .` completes quickly; the shapes
// are the same.
var benchRunner = func() *benchkit.Runner {
	r := benchkit.NewRunner()
	r.SFSmall = 0.05
	r.SFLarge = 0.5
	return r
}()

func runMeasured(b *testing.B, q benchkit.QueryID, sf float64, workers int, sel benchkit.Selectivity) {
	b.Helper()
	var last benchkit.Measurement
	for i := 0; i < b.N; i++ {
		m, err := benchRunner.Run(q, sf, workers, sel)
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.ReportMetric(float64(last.SimTime.Microseconds())/1000, "simMs")
	b.ReportMetric(float64(last.Count), "matches")
	b.ReportMetric(last.Skew, "skew")
}

// BenchmarkFigure3 regenerates the speedup-over-workers experiment:
// operational queries on the large factor, analytical ones on the small.
func BenchmarkFigure3(b *testing.B) {
	for _, q := range benchkit.AllQueries {
		sf := benchRunner.SFSmall
		if q.Operational() {
			sf = benchRunner.SFLarge
		}
		for _, w := range benchkit.Workers {
			b.Run(fmt.Sprintf("%s/workers=%d", q, w), func(b *testing.B) {
				runMeasured(b, q, sf, w, benchkit.Low)
			})
		}
	}
}

// BenchmarkFigure4 regenerates the data-volume experiment at 16 workers.
func BenchmarkFigure4(b *testing.B) {
	for _, q := range benchkit.AllQueries {
		for _, sf := range []float64{benchRunner.SFSmall, benchRunner.SFLarge} {
			b.Run(fmt.Sprintf("%s/sf=%g", q, sf), func(b *testing.B) {
				runMeasured(b, q, sf, 16, benchkit.Low)
			})
		}
	}
}

// BenchmarkFigure5 regenerates the predicate-selectivity experiment at 4
// workers.
func BenchmarkFigure5(b *testing.B) {
	for _, q := range []benchkit.QueryID{benchkit.Q1, benchkit.Q2, benchkit.Q3} {
		for _, sel := range benchkit.Selectivities {
			b.Run(fmt.Sprintf("%s/sel=%s", q, sel), func(b *testing.B) {
				runMeasured(b, q, benchRunner.SFLarge, 4, sel)
			})
		}
	}
}

// BenchmarkTable3 regenerates the intermediate-result-size table: the four
// sub-patterns per selectivity class; the match count is the table entry.
func BenchmarkTable3(b *testing.B) {
	for i, pat := range benchkit.Table3Patterns {
		for _, sel := range benchkit.Selectivities {
			b.Run(fmt.Sprintf("pattern%d/sel=%s", i+1, sel), func(b *testing.B) {
				var rows int64
				for i := 0; i < b.N; i++ {
					n, err := benchRunner.RunPattern(pat.Query, benchRunner.SFSmall, 4, sel)
					if err != nil {
						b.Fatal(err)
					}
					rows = n
				}
				b.ReportMetric(float64(rows), "rows")
			})
		}
	}
}

// BenchmarkTable4 regenerates the full runtime matrix (a reduced sweep: the
// complete matrix is the union of the Figure 3–5 benchmarks; cmd/bench
// prints it in full).
func BenchmarkTable4(b *testing.B) {
	for _, q := range []benchkit.QueryID{benchkit.Q1, benchkit.Q2, benchkit.Q3} {
		for _, sel := range benchkit.Selectivities {
			for _, w := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("%s/sel=%s/workers=%d", q, sel, w), func(b *testing.B) {
					runMeasured(b, q, benchRunner.SFLarge, w, sel)
				})
			}
		}
	}
	for _, q := range []benchkit.QueryID{benchkit.Q4, benchkit.Q5, benchkit.Q6} {
		for _, w := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/workers=%d", q, w), func(b *testing.B) {
				runMeasured(b, q, benchRunner.SFSmall, w, benchkit.Low)
			})
		}
	}
}

// BenchmarkCardinalities regenerates the appendix result-cardinality tables;
// the "matches" metric is the reported cardinality.
func BenchmarkCardinalities(b *testing.B) {
	for _, q := range benchkit.AllQueries {
		sels := benchkit.Selectivities
		if !q.Operational() {
			sels = []benchkit.Selectivity{benchkit.Low}
		}
		for _, sel := range sels {
			for _, sf := range []float64{benchRunner.SFSmall, benchRunner.SFLarge} {
				b.Run(fmt.Sprintf("%s/sel=%s/sf=%g", q, sel, sf), func(b *testing.B) {
					runMeasured(b, q, sf, 4, sel)
				})
			}
		}
	}
}

// BenchmarkExtendedWorkload measures the openCypher extensions (OPTIONAL
// MATCH, aggregation, ordering, string predicates) on the LDBC-like data —
// an extended workload beyond the paper's tables.
func BenchmarkExtendedWorkload(b *testing.B) {
	for _, xq := range benchkit.ExtendedQueries {
		b.Run(xq.Name, func(b *testing.B) {
			var rows int
			for i := 0; i < b.N; i++ {
				n, err := benchRunner.RunExtended(xq.Query, benchRunner.SFLarge, 8)
				if err != nil {
					b.Fatal(err)
				}
				rows = n
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation benchmarks for the §3 design decisions.

func ablationGraph(b *testing.B, workers int) (*epgm.LogicalGraph, *stats.GraphStatistics) {
	b.Helper()
	env := dataflow.NewEnv(dataflow.DefaultConfig(workers))
	d := ldbc.Generate(env, ldbc.Config{ScaleFactor: 0.2, Seed: 99})
	return d.Graph, stats.Collect(d.Graph)
}

// BenchmarkAblationIndexedGraph compares plain full scans against the
// label-partitioned IndexedLogicalGraph (§3.4) on a label-selective query.
func BenchmarkAblationIndexedGraph(b *testing.B) {
	g, st := ablationGraph(b, 4)
	idx := epgm.BuildIndex(g)
	query := `MATCH (p:Person)-[:knows]->(q:Person) RETURN *`
	run := func(b *testing.B, access planner.GraphAccess) {
		cfg := core.Config{Stats: st, Access: access, Edge: operators.Isomorphism}
		g.Env().ResetMetrics()
		for i := 0; i < b.N; i++ {
			if _, err := core.Execute(g, query, cfg); err != nil {
				b.Fatal(err)
			}
		}
		m := g.Env().Metrics()
		b.ReportMetric(float64(m.TotalCPU)/float64(b.N), "elements/op")
	}
	b.Run("plain-scan", func(b *testing.B) { run(b, planner.PlainAccess{Graph: g}) })
	b.Run("indexed", func(b *testing.B) { run(b, planner.IndexedAccess{Index: idx}) })
}

// BenchmarkAblationJoinStrategy compares the repartition hash join against
// broadcasting the smaller input (the strategy choice §3.2 delegates to the
// dataflow layer).
func BenchmarkAblationJoinStrategy(b *testing.B) {
	g, st := ablationGraph(b, 8)
	query := `MATCH (p:Person)-[:knows]->(q:Person)-[:hasInterest]->(t:Tag) RETURN *`
	for _, hint := range []struct {
		name string
		h    dataflow.JoinHint
	}{{"repartition", dataflow.RepartitionHash}, {"broadcast", dataflow.BroadcastLeft}} {
		b.Run(hint.name, func(b *testing.B) {
			cfg := core.Config{Stats: st, Hint: hint.h, Edge: operators.Isomorphism}
			var sim float64
			for i := 0; i < b.N; i++ {
				g.Env().ResetMetrics()
				if _, err := core.Execute(g, query, cfg); err != nil {
					b.Fatal(err)
				}
				sim = float64(g.Env().Metrics().SimTime.Microseconds()) / 1000
			}
			b.ReportMetric(sim, "simMs")
		})
	}
}

// BenchmarkAblationPredicatePushdown compares the engine's early predicate
// evaluation against the GraphFrames-style baseline that materializes all
// label-only matches first (§5): the "intermediate" metric shows the blowup
// the paper attributes to late filtering.
func BenchmarkAblationPredicatePushdown(b *testing.B) {
	g, st := ablationGraph(b, 4)
	d := ldbc.Generate(dataflow.NewEnv(dataflow.DefaultConfig(1)), ldbc.Config{ScaleFactor: 0.2, Seed: 99})
	common, _, _ := d.FirstNamesBySelectivity()
	query := `MATCH (p:Person)-[:knows]->(q:Person) WHERE p.firstName = '` + common + `' RETURN *`

	b.Run("engine-pushdown", func(b *testing.B) {
		cfg := core.Config{Stats: st}
		var matches int64
		for i := 0; i < b.N; i++ {
			res, err := core.Execute(g, query, cfg)
			if err != nil {
				b.Fatal(err)
			}
			matches = res.Count()
		}
		b.ReportMetric(float64(matches), "matches")
	})
	b.Run("baseline-postfilter", func(b *testing.B) {
		ast, err := cypher.Parse(query)
		if err != nil {
			b.Fatal(err)
		}
		qg, err := cypher.BuildQueryGraph(ast, nil)
		if err != nil {
			b.Fatal(err)
		}
		m := baseline.NewMotifMatcher(g)
		var matches, intermediate int
		for i := 0; i < b.N; i++ {
			res, err := m.Match(qg)
			if err != nil {
				b.Fatal(err)
			}
			matches = len(res)
			intermediate = m.IntermediateRows
		}
		b.ReportMetric(float64(matches), "matches")
		b.ReportMetric(float64(intermediate), "intermediate")
	})
}

// boxedRow is the naive embedding representation the compact byte encoding
// (§3.3) is benchmarked against.
type boxedRow struct {
	ids   []epgm.ID
	paths [][]epgm.ID
	props []epgm.PropertyValue
}

// BenchmarkAblationEmbeddingEncoding compares merge throughput of the
// paper's three-array byte embedding against boxed rows.
func BenchmarkAblationEmbeddingEncoding(b *testing.B) {
	var left embedding.Embedding
	left = left.AppendID(1).AppendID(2).AppendID(3)
	left = left.AppendProps(epgm.PVString("Alice"), epgm.PVInt(1984))
	var right embedding.Embedding
	right = right.AppendID(3).AppendPath([]epgm.ID{7, 8, 9}).AppendID(4)
	right = right.AppendProps(epgm.PVString("Bob"))

	b.Run("byte-embedding", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			merged := left.Merge(right, []int{0})
			if merged.Columns() != 5 {
				b.Fatal("merge broken")
			}
		}
	})
	b.Run("boxed-rows", func(b *testing.B) {
		b.ReportAllocs()
		l := boxedRow{ids: []epgm.ID{1, 2, 3},
			props: []epgm.PropertyValue{epgm.PVString("Alice"), epgm.PVInt(1984)}}
		r := boxedRow{ids: []epgm.ID{3, 4}, paths: [][]epgm.ID{{7, 8, 9}},
			props: []epgm.PropertyValue{epgm.PVString("Bob")}}
		for i := 0; i < b.N; i++ {
			merged := boxedRow{
				ids:   append(append([]epgm.ID{}, l.ids...), r.ids[1:]...),
				props: append(append([]epgm.PropertyValue{}, l.props...), r.props...),
			}
			for _, p := range r.paths {
				merged.paths = append(merged.paths, append([]epgm.ID{}, p...))
			}
			if len(merged.ids) != 4 {
				b.Fatal("merge broken")
			}
		}
	})
}

// BenchmarkAblationOperatorFusion compares the fused
// Select→Project→Transform FlatMap (§3.1) against the naive
// Filter→Map→Map chain it replaces.
func BenchmarkAblationOperatorFusion(b *testing.B) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(4))
	d := ldbc.Generate(env, ldbc.Config{ScaleFactor: 0.5, Seed: 5})
	vertices := d.Graph.Vertices

	b.Run("fused-flatmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := dataflow.FlatMap(vertices, func(v epgm.Vertex, emit func(embedding.Embedding)) {
				if v.Label != "Person" {
					return
				}
				var e embedding.Embedding
				e = e.AppendID(v.ID)
				e = e.AppendProps(v.Properties.Get("firstName"))
				emit(e)
			})
			if out.IsEmpty() {
				b.Fatal("no output")
			}
		}
	})
	b.Run("filter-map-map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			filtered := dataflow.Filter(vertices, func(v epgm.Vertex) bool { return v.Label == "Person" })
			projected := dataflow.Map(filtered, func(v epgm.Vertex) epgm.Vertex {
				return epgm.Vertex{ID: v.ID, Properties: epgm.Properties{}.
					Set("firstName", v.Properties.Get("firstName"))}
			})
			out := dataflow.Map(projected, func(v epgm.Vertex) embedding.Embedding {
				var e embedding.Embedding
				e = e.AppendID(v.ID)
				e = e.AppendProps(v.Properties.Get("firstName"))
				return e
			})
			if out.IsEmpty() {
				b.Fatal("no output")
			}
		}
	})
}

// BenchmarkAblationExpandVsUnrolledJoins compares ExpandEmbeddings' bulk
// iteration (§3.1) against the naive translation §2.5 describes — the union
// of one fixed-length k-way join chain per admissible path length.
func BenchmarkAblationExpandVsUnrolledJoins(b *testing.B) {
	g, st := ablationGraph(b, 4)
	cfg := core.Config{Stats: st} // homomorphism: path tuples match chain tuples

	varLength := `MATCH (p:Person)-[:knows*1..3]->(q:Person) RETURN *`
	unrolled := []string{
		`MATCH (p:Person)-[:knows]->(q:Person) RETURN *`,
		`MATCH (p:Person)-[:knows]->()-[:knows]->(q:Person) RETURN *`,
		`MATCH (p:Person)-[:knows]->()-[:knows]->()-[:knows]->(q:Person) RETURN *`,
	}

	var expandCount, unrolledCount int64
	b.Run("bulk-iteration-expand", func(b *testing.B) {
		var sim float64
		for i := 0; i < b.N; i++ {
			g.Env().ResetMetrics()
			res, err := core.Execute(g, varLength, cfg)
			if err != nil {
				b.Fatal(err)
			}
			expandCount = res.Count()
			sim = float64(g.Env().Metrics().SimTime.Microseconds()) / 1000
		}
		b.ReportMetric(sim, "simMs")
		b.ReportMetric(float64(expandCount), "matches")
	})
	b.Run("unrolled-kway-joins", func(b *testing.B) {
		var sim float64
		for i := 0; i < b.N; i++ {
			g.Env().ResetMetrics()
			unrolledCount = 0
			for _, q := range unrolled {
				res, err := core.Execute(g, q, cfg)
				if err != nil {
					b.Fatal(err)
				}
				unrolledCount += res.Count()
			}
			sim = float64(g.Env().Metrics().SimTime.Microseconds()) / 1000
		}
		b.ReportMetric(sim, "simMs")
		b.ReportMetric(float64(unrolledCount), "matches")
	})
	if expandCount != 0 && unrolledCount != 0 && expandCount != unrolledCount {
		b.Fatalf("expand=%d unrolled=%d must agree", expandCount, unrolledCount)
	}
}

// BenchmarkAblationSubqueryReuse measures recurring-subquery leaf sharing
// (§6's "recurring subqueries" future work) on Q5, whose three knows edges
// and three Person vertices are structurally identical.
func BenchmarkAblationSubqueryReuse(b *testing.B) {
	g, st := ablationGraph(b, 4)
	query := benchkit.Q5.Text()
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"shared-leaves", false}, {"duplicated-leaves", true}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := core.Config{Stats: st, Edge: operators.Isomorphism, DisableSubqueryReuse: tc.disable}
			var sim float64
			for i := 0; i < b.N; i++ {
				g.Env().ResetMetrics()
				if _, err := core.Execute(g, query, cfg); err != nil {
					b.Fatal(err)
				}
				sim = float64(g.Env().Metrics().SimTime.Microseconds()) / 1000
			}
			b.ReportMetric(sim, "simMs")
		})
	}
}

// BenchmarkAblationGreedyPlanner compares the greedy statistics-driven
// planner (§3.2) against a left-deep in-query-order baseline on a query
// whose written order is adversarial: the selective predicate comes last,
// so the naive order materializes the tag-co-membership blowup first.
func BenchmarkAblationGreedyPlanner(b *testing.B) {
	g, st := ablationGraph(b, 4)
	d := ldbc.Generate(dataflow.NewEnv(dataflow.DefaultConfig(1)), ldbc.Config{ScaleFactor: 0.2, Seed: 99})
	_, _, rare := d.FirstNamesBySelectivity()
	query := `MATCH (q:Person)-[:hasInterest]->(t:Tag),
	                (p:Person)-[:hasInterest]->(t),
	                (p)-[:knows]->(q)
	          WHERE p.firstName = '` + rare + `' RETURN *`
	ast, err := cypher.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	qg, err := cypher.BuildQueryGraph(ast, nil)
	if err != nil {
		b.Fatal(err)
	}
	pl := &planner.Planner{Stats: st, Morph: operators.Morphism{Edge: operators.Isomorphism}}
	access := planner.PlainAccess{Graph: g}
	for _, tc := range []struct {
		name string
		plan func() (*planner.QueryPlan, error)
	}{
		{"greedy", func() (*planner.QueryPlan, error) { return pl.Plan(access, qg) }},
		{"left-deep-query-order", func() (*planner.QueryPlan, error) { return pl.PlanLeftDeep(access, qg) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var sim float64
			var count int64
			for i := 0; i < b.N; i++ {
				g.Env().ResetMetrics()
				qp, err := tc.plan()
				if err != nil {
					b.Fatal(err)
				}
				count = qp.Execute().Count()
				sim = float64(g.Env().Metrics().SimTime.Microseconds()) / 1000
			}
			b.ReportMetric(sim, "simMs")
			b.ReportMetric(float64(count), "matches")
		})
	}
}
