package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestCollectorSpansAndAttribution(t *testing.T) {
	c := NewCollector()
	parent, child := "parent-token", "child-token"

	//lint:ignore tracepair straight-line scopes are the collector mechanics under test
	c.PushOp(parent, "Join")
	// Child evaluated inside the parent's wall-clock window but in its own
	// scope: its stage must be attributed to the child, not the parent.
	//lint:ignore tracepair straight-line scopes are the collector mechanics under test
	c.PushOp(child, "Leaf")
	c.BeginStage(1, "FlatMap", false, 2)
	c.RowsIn(0, 10)
	c.RowsOut(0, 5)
	c.RowsIn(1, 20)
	c.RowsOut(1, 15)
	c.CPU(0, 10)
	c.CPU(1, 20)
	c.PopOp(child, 20)

	c.BeginStage(2, "Shuffle", true, 2)
	c.Net(0, 100)
	c.Net(1, 300)
	c.PopOp(parent, 7)
	c.Finish()

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	s1, s2 := spans[0], spans[1]
	if s1.Op != "Leaf" || s1.Kind != "FlatMap" || s1.Shuffle {
		t.Errorf("span 1 misattributed: op=%q kind=%q shuffle=%v", s1.Op, s1.Kind, s1.Shuffle)
	}
	if s2.Op != "Join" || !s2.Shuffle {
		t.Errorf("span 2 misattributed: op=%q shuffle=%v", s2.Op, s2.Shuffle)
	}
	if in, out := s1.Rows(); in != 30 || out != 20 {
		t.Errorf("span 1 rows = %d in / %d out, want 30/20", in, out)
	}
	if s1.End < s1.Start || s2.Start < s1.End {
		t.Errorf("span times not monotone: s1=[%v,%v] s2 starts %v", s1.Start, s1.End, s2.Start)
	}

	leaf, ok := c.Op(child)
	if !ok {
		t.Fatal("child operator not recorded")
	}
	if leaf.Rows != 20 || leaf.Evaluations != 1 {
		t.Errorf("leaf stats = %+v, want rows=20 evaluations=1", leaf)
	}
	if len(leaf.Stages) != 1 || leaf.Stages[0] != 1 {
		t.Errorf("leaf stages = %v, want [1]", leaf.Stages)
	}
	join, _ := c.Op(parent)
	if len(join.Stages) != 1 || join.Stages[0] != 2 {
		t.Errorf("join stages = %v, want [2]", join.Stages)
	}
	if ops := c.Ops(); len(ops) != 2 || ops[0].Label != "Join" || ops[1].Label != "Leaf" {
		t.Errorf("Ops() = %+v, want [Join Leaf] in first-evaluation order", ops)
	}
}

func TestRetriedPartitionOverwritesRows(t *testing.T) {
	c := NewCollector()
	c.BeginStage(1, "FlatMap", false, 1)
	c.RowsIn(0, 10)
	c.RowsOut(0, 4) // partial output of a failed attempt
	c.Retry(1, 0, 5*time.Millisecond)
	c.RowsIn(0, 10)
	c.RowsOut(0, 8) // the successful re-execution
	c.Finish()

	s := c.Spans()[0]
	if in, out := s.Rows(); in != 10 || out != 8 {
		t.Errorf("rows after retry = %d/%d, want 10/8 (no double count)", in, out)
	}
	if s.Retries() != 1 {
		t.Errorf("retries = %d, want 1", s.Retries())
	}
	if s.Parts[0].Recovery != 5*time.Millisecond {
		t.Errorf("recovery = %v, want 5ms", s.Parts[0].Recovery)
	}
}

func TestSpanSimTime(t *testing.T) {
	s := Span{Parts: []PartStats{
		{CPUElements: 100, NetBytes: 10},
		{CPUElements: 50, NetBytes: 1000, Recovery: time.Millisecond},
	}}
	// worst partition: 50*1µs + 1000*1µs + 1ms = 2.05ms; + 1ms overhead
	got := s.SimTime(time.Microsecond, time.Microsecond, 0, time.Millisecond)
	want := 50*time.Microsecond + 1000*time.Microsecond + time.Millisecond + time.Millisecond
	if got != want {
		t.Errorf("SimTime = %v, want %v", got, want)
	}
}

func TestUnbalancedPopIsDropped(t *testing.T) {
	c := NewCollector()
	c.PopOp("never-pushed", 3) // must not panic or corrupt the stack
	//lint:ignore tracepair unbalanced-pop handling is exactly what this test exercises
	c.PushOp("a", "A")
	c.PopOp("b", 1) // mismatched token: dropped
	c.PopOp("a", 2)
	st, ok := c.Op("a")
	if !ok || st.Rows != 2 {
		t.Errorf("op a = %+v ok=%v, want rows=2", st, ok)
	}
}

func TestChromeTraceExport(t *testing.T) {
	c := NewCollector()
	c.BeginStage(1, "FlatMap", false, 2)
	c.Attempt(1, 0, 0, time.Now(), time.Now().Add(time.Millisecond), false)
	c.Attempt(1, 1, 0, time.Now(), time.Now().Add(time.Millisecond), true)
	c.Attempt(1, 1, 1, time.Now(), time.Now().Add(time.Millisecond), false)
	c.Finish()

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var stages, attempts, failed int
	for _, e := range doc.TraceEvents {
		switch e.Cat {
		case "stage":
			stages++
			if e.Dur < 1 {
				t.Errorf("stage event duration %dµs, want ≥1", e.Dur)
			}
		case "attempt":
			attempts++
			if strings.Contains(e.Name, "worker failed") {
				failed++
			}
		}
	}
	if stages != 1 || attempts != 3 || failed != 1 {
		t.Errorf("got %d stage / %d attempt / %d failed events, want 1/3/1", stages, attempts, failed)
	}
}
