package trace

import (
	"encoding/binary"
	"reflect"
	"testing"
	"time"
)

// wireFixture is a span set exercising every encoded field: multi-part
// stages, retried attempts, iteration markers and empty spans.
func wireFixture() []Span {
	return []Span{
		{
			Stage: 0, Op: "scan Person", Kind: "map", Shuffle: false,
			Start: 10 * time.Microsecond, End: 250 * time.Microsecond,
			Parts: []PartStats{
				{RowsIn: 100, RowsOut: 90, CPUElements: 100, NetBytes: 0, MemBytes: 4096},
				{RowsIn: 80, RowsOut: 80, CPUElements: 80, SpillBytes: 512, Retries: 1,
					Recovery: 3 * time.Microsecond},
			},
			Attempts: []Attempt{
				{Part: 0, N: 0, Start: 10 * time.Microsecond, End: 120 * time.Microsecond},
				{Part: 1, N: 0, Start: 12 * time.Microsecond, End: 40 * time.Microsecond, Failed: true},
				{Part: 1, N: 1, Start: 41 * time.Microsecond, End: 130 * time.Microsecond},
			},
		},
		{
			Stage: 1, Op: "join knows", Kind: "join", Shuffle: true, Iteration: 2,
			Start: 250 * time.Microsecond, End: 900 * time.Microsecond,
			Parts: []PartStats{{RowsIn: 170, RowsOut: 40, NetBytes: 8192}},
		},
		{Stage: 2, Kind: "sink"}, // no op, no parts, no attempts
	}
}

// TestSpanWireRoundTrip pins the span codec: everything the collector
// records survives encode/decode byte-exactly.
func TestSpanWireRoundTrip(t *testing.T) {
	spans := wireFixture()
	buf := AppendSpans(nil, spans)
	got, rest, err := ReadSpans(buf)
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("ReadSpans left %d bytes unconsumed", len(rest))
	}
	if !reflect.DeepEqual(got, spans) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, spans)
	}
}

// TestSpanWireEmpty pins the zero-span encoding (a worker whose job ran no
// stages still ships a valid bundle).
func TestSpanWireEmpty(t *testing.T) {
	buf := AppendSpans(nil, nil)
	got, rest, err := ReadSpans(buf)
	if err != nil || len(got) != 0 || len(rest) != 0 {
		t.Fatalf("empty round trip: spans=%v rest=%d err=%v", got, len(rest), err)
	}
}

// TestSpanWireTruncated feeds every strict prefix of a valid encoding to
// the decoder: each must fail cleanly, never panic or fabricate spans.
func TestSpanWireTruncated(t *testing.T) {
	buf := AppendSpans(nil, wireFixture())
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := ReadSpans(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(buf))
		}
	}
}

// TestSpanWireHostileCounts forges length prefixes far beyond the buffer:
// the decoder must reject them before allocating, not crash on make().
func TestSpanWireHostileCounts(t *testing.T) {
	// A span-count prefix claiming 2^31 spans over an empty body.
	huge := binary.BigEndian.AppendUint32(nil, 1<<31)
	if _, _, err := ReadSpans(huge); err == nil {
		t.Fatal("hostile span count decoded without error")
	}
	// A valid one-span envelope whose part count is forged upward.
	buf := AppendSpans(nil, []Span{{Stage: 1, Op: "x", Kind: "map"}})
	// Layout after the u32 span count: stage u64, op len u32 ... find the
	// parts count by re-encoding with one part and diffing lengths is
	// fragile; instead corrupt every u32-aligned offset and require no
	// panic (errors are fine, silent success on grown counts is not).
	for off := 4; off+4 <= len(buf); off += 4 {
		forged := append([]byte(nil), buf...)
		binary.BigEndian.PutUint32(forged[off:], 1<<30)
		got, _, err := ReadSpans(forged)
		if err == nil && len(got) > 0 && len(got[0].Parts) > 1<<20 {
			t.Fatalf("forged count at offset %d allocated %d parts", off, len(got[0].Parts))
		}
	}
}
