package trace

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Span wire codec. Workers serialize their per-job span set into the
// cluster's telemetry frame with these functions; the coordinator decodes
// the bundles and merges them into one cluster-wide timeline. The format
// follows the engine's wire conventions — big-endian integers,
// uint32-length-prefixed strings, hostile-count guards before every
// allocation, errors instead of panics on truncated input — but is
// hand-rolled on the standard library only, because this package
// deliberately imports nothing from the engine.
//
// Span offsets are time.Durations from the collector epoch (the job start
// on the recording process), so encoded spans are already rebased: two
// processes' bundles align on "time since my job began" without trusting
// either machine's wall clock.

// appendWireString appends a uint32-length-prefixed string.
func appendWireString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// readWireString consumes a uint32-length-prefixed string.
func readWireString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("trace: truncated string length (%d bytes)", len(b))
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return "", nil, fmt.Errorf("trace: truncated string payload (want %d, have %d)", n, len(b))
	}
	return string(b[:n]), b[n:], nil
}

// partStatsWireLen is one encoded PartStats: eight fixed 8-byte fields.
const partStatsWireLen = 8 * 8

// appendPartStats appends one partition's stats in declaration order.
func appendPartStats(dst []byte, p *PartStats) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.RowsIn))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.RowsOut))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.CPUElements))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.NetBytes))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.SpillBytes))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.MemBytes))
	dst = binary.BigEndian.AppendUint64(dst, uint64(p.Recovery))
	return binary.BigEndian.AppendUint64(dst, uint64(p.Retries))
}

// readPartStats consumes one encoded PartStats.
func readPartStats(b []byte) (PartStats, []byte, error) {
	var p PartStats
	if len(b) < partStatsWireLen {
		return p, nil, fmt.Errorf("trace: truncated part stats (%d bytes)", len(b))
	}
	p.RowsIn = int64(binary.BigEndian.Uint64(b[0:]))
	p.RowsOut = int64(binary.BigEndian.Uint64(b[8:]))
	p.CPUElements = int64(binary.BigEndian.Uint64(b[16:]))
	p.NetBytes = int64(binary.BigEndian.Uint64(b[24:]))
	p.SpillBytes = int64(binary.BigEndian.Uint64(b[32:]))
	p.MemBytes = int64(binary.BigEndian.Uint64(b[40:]))
	p.Recovery = time.Duration(binary.BigEndian.Uint64(b[48:]))
	p.Retries = int64(binary.BigEndian.Uint64(b[56:]))
	return p, b[partStatsWireLen:], nil
}

// attemptWireLen is one encoded Attempt: part u32, n u32, start u64,
// end u64, failed u8.
const attemptWireLen = 4 + 4 + 8 + 8 + 1

// appendAttempt appends one partition execution attempt.
func appendAttempt(dst []byte, a *Attempt) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.Part))
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.N))
	dst = binary.BigEndian.AppendUint64(dst, uint64(a.Start))
	dst = binary.BigEndian.AppendUint64(dst, uint64(a.End))
	return append(dst, boolByte(a.Failed))
}

// readAttempt consumes one encoded Attempt.
func readAttempt(b []byte) (Attempt, []byte, error) {
	var a Attempt
	if len(b) < attemptWireLen {
		return a, nil, fmt.Errorf("trace: truncated attempt (%d bytes)", len(b))
	}
	a.Part = int(binary.BigEndian.Uint32(b[0:]))
	a.N = int(binary.BigEndian.Uint32(b[4:]))
	a.Start = time.Duration(binary.BigEndian.Uint64(b[8:]))
	a.End = time.Duration(binary.BigEndian.Uint64(b[16:]))
	a.Failed = b[24] != 0
	return a, b[attemptWireLen:], nil
}

// AppendSpan appends one span's wire form: the scalar fields in declaration
// order, then the count-prefixed Parts and Attempts lists.
func AppendSpan(dst []byte, s *Span) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(s.Stage))
	dst = appendWireString(dst, s.Op)
	dst = appendWireString(dst, s.Kind)
	dst = append(dst, boolByte(s.Shuffle))
	dst = binary.BigEndian.AppendUint32(dst, uint32(s.Iteration))
	dst = binary.BigEndian.AppendUint64(dst, uint64(s.Start))
	dst = binary.BigEndian.AppendUint64(dst, uint64(s.End))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.Parts)))
	for i := range s.Parts {
		dst = appendPartStats(dst, &s.Parts[i])
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.Attempts)))
	for i := range s.Attempts {
		dst = appendAttempt(dst, &s.Attempts[i])
	}
	return dst
}

// ReadSpan consumes one encoded span, guarding the Parts and Attempts
// counts against the remaining payload before allocating.
func ReadSpan(b []byte) (Span, []byte, error) {
	var s Span
	if len(b) < 8 {
		return s, nil, fmt.Errorf("trace: truncated span (%d bytes)", len(b))
	}
	s.Stage = int64(binary.BigEndian.Uint64(b))
	b = b[8:]
	var err error
	if s.Op, b, err = readWireString(b); err != nil {
		return s, nil, fmt.Errorf("trace: span op: %w", err)
	}
	if s.Kind, b, err = readWireString(b); err != nil {
		return s, nil, fmt.Errorf("trace: span kind: %w", err)
	}
	if len(b) < 1+4+8+8 {
		return s, nil, fmt.Errorf("trace: truncated span scalars (%d bytes)", len(b))
	}
	s.Shuffle = b[0] != 0
	s.Iteration = int(binary.BigEndian.Uint32(b[1:]))
	s.Start = time.Duration(binary.BigEndian.Uint64(b[5:]))
	s.End = time.Duration(binary.BigEndian.Uint64(b[13:]))
	b = b[21:]
	if len(b) < 4 {
		return s, nil, fmt.Errorf("trace: truncated parts count (%d bytes)", len(b))
	}
	nParts := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint64(nParts)*partStatsWireLen > uint64(len(b)) {
		return s, nil, fmt.Errorf("trace: parts count %d exceeds payload (%d bytes)", nParts, len(b))
	}
	if nParts > 0 {
		s.Parts = make([]PartStats, nParts)
		for i := range s.Parts {
			if s.Parts[i], b, err = readPartStats(b); err != nil {
				return s, nil, err
			}
		}
	}
	if len(b) < 4 {
		return s, nil, fmt.Errorf("trace: truncated attempts count (%d bytes)", len(b))
	}
	nAtt := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint64(nAtt)*attemptWireLen > uint64(len(b)) {
		return s, nil, fmt.Errorf("trace: attempts count %d exceeds payload (%d bytes)", nAtt, len(b))
	}
	if nAtt > 0 {
		s.Attempts = make([]Attempt, nAtt)
		for i := range s.Attempts {
			if s.Attempts[i], b, err = readAttempt(b); err != nil {
				return s, nil, err
			}
		}
	}
	return s, b, nil
}

// AppendSpans appends a count-prefixed span list.
func AppendSpans(dst []byte, spans []Span) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(spans)))
	for i := range spans {
		dst = AppendSpan(dst, &spans[i])
	}
	return dst
}

// ReadSpans consumes a count-prefixed span list.
func ReadSpans(b []byte) ([]Span, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("trace: truncated span count (%d bytes)", len(b))
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if n == 0 {
		return nil, b, nil
	}
	// Every span needs at least its fixed scalar bytes; reject absurd
	// counts before allocating.
	const minSpan = 8 + 4 + 4 + 1 + 4 + 8 + 8 + 4 + 4
	if uint64(n)*minSpan > uint64(len(b)) {
		return nil, nil, fmt.Errorf("trace: span count %d exceeds payload (%d bytes)", n, len(b))
	}
	spans := make([]Span, n)
	var err error
	for i := range spans {
		if spans[i], b, err = ReadSpan(b); err != nil {
			return nil, nil, fmt.Errorf("trace: span %d/%d: %w", i, n, err)
		}
	}
	return spans, b, nil
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}
