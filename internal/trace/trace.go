// Package trace records the execution of a dataflow job as a sequence of
// per-stage spans. Every transformation the engine runs (a "stage" in
// Metrics terms) becomes one Span carrying the physical-plan operator it
// belongs to, whether it shuffled data, and per-partition statistics: rows
// in and out, charged CPU elements, network and spill bytes, wall time and
// retry counts. Failed and retried partition attempts are kept individually,
// so fault-injected re-executions show up as distinct retry spans.
//
// The collector is the engine's only tracing dependency: a nil *Collector
// disables tracing entirely (the engine guards every call with a nil check),
// which is the zero-cost path query execution takes by default. The package
// deliberately imports nothing from the engine so that dataflow, operators
// and core can all depend on it without cycles.
package trace

import (
	"sync"
	"time"
)

// PartStats aggregates one partition's contribution to a stage.
type PartStats struct {
	// RowsIn and RowsOut count the elements entering and leaving the
	// partition. For shuffles RowsIn is counted on the sending partition and
	// RowsOut on the receiving one.
	RowsIn  int64 `json:"rowsIn"`
	RowsOut int64 `json:"rowsOut"`
	// CPUElements mirrors the simulated-cost CPU charge of the partition.
	CPUElements int64 `json:"cpuElements"`
	// NetBytes and SpillBytes mirror the network and disk charges.
	NetBytes   int64 `json:"netBytes"`
	SpillBytes int64 `json:"spillBytes"`
	// MemBytes mirrors the memory-broker materialization charge: bytes of
	// embeddings this partition reserved against the process budget while
	// the stage ran.
	MemBytes int64 `json:"memBytes,omitempty"`
	// Recovery is the simulated redeployment delay charged to this
	// partition for injected worker failures.
	Recovery time.Duration `json:"recoveryNs"`
	// Retries counts how often the partition was re-executed.
	Retries int64 `json:"retries"`
}

// Attempt is one execution attempt of a partition within a stage. A stage
// that never fails has exactly one attempt per executed partition; injected
// worker failures add one failed attempt per retry.
type Attempt struct {
	Part   int           `json:"part"`
	N      int           `json:"attempt"` // 0 = first attempt
	Start  time.Duration `json:"startNs"` // offset from the collector epoch
	End    time.Duration `json:"endNs"`
	Failed bool          `json:"failed"`
}

// Span is one executed stage.
type Span struct {
	// Stage is the 1-based stage number, matching Metrics' stage counter.
	Stage int64 `json:"stage"`
	// Op is the physical-plan operator the stage belongs to (its
	// Description), or "" for stages outside any operator scope.
	Op string `json:"op,omitempty"`
	// Kind names the dataflow transformation: FlatMap, Shuffle, Join, ...
	Kind string `json:"kind"`
	// Shuffle reports whether the stage exchanged data between workers.
	Shuffle bool `json:"shuffle"`
	// Iteration is the 1-based bulk-iteration superstep the stage ran in,
	// or 0 outside iterations.
	Iteration int `json:"iteration,omitempty"`
	// Start and End are wall-clock offsets from the collector epoch. End is
	// closed when the next stage begins or Finish is called.
	Start time.Duration `json:"startNs"`
	End   time.Duration `json:"endNs"`
	// Parts holds per-partition statistics, indexed by partition.
	Parts []PartStats `json:"parts"`
	// Attempts lists individual partition execution attempts, in completion
	// order. Stages that run no partitioned work (Union, Broadcast) have
	// none.
	Attempts []Attempt `json:"attempts,omitempty"`
}

// Rows sums a column of the per-partition row counters.
func (s *Span) Rows() (in, out int64) {
	for _, p := range s.Parts {
		in += p.RowsIn
		out += p.RowsOut
	}
	return in, out
}

// Retries sums the per-partition retry counts.
func (s *Span) Retries() int64 {
	var n int64
	for _, p := range s.Parts {
		n += p.Retries
	}
	return n
}

// SimTime derives the stage's simulated cluster time from its per-partition
// charges under the given cost coefficients: the slowest partition's
// CPU/network/disk/recovery time plus the fixed stage overhead. Summing
// SimTime over all spans reproduces the job-level MetricsSnapshot.SimTime
// decomposition per stage.
func (s *Span) SimTime(cpuPerElement, netPerByte, diskPerByte, stageOverhead time.Duration) time.Duration {
	var worst time.Duration
	for _, p := range s.Parts {
		t := time.Duration(p.CPUElements)*cpuPerElement +
			time.Duration(p.NetBytes)*netPerByte +
			time.Duration(p.SpillBytes)*diskPerByte +
			p.Recovery
		if t > worst {
			worst = t
		}
	}
	return worst + stageOverhead
}

// OpStats aggregates the execution of one physical-plan operator: its
// actual output cardinality (the number EXPLAIN ANALYZE compares against
// the planner's estimate), the wall time spent in its own stages (children
// excluded — they are evaluated outside the operator's scope), and the
// stages attributed to it.
type OpStats struct {
	Label string        `json:"label"`
	Rows  int64         `json:"rows"`
	Wall  time.Duration `json:"wallNs"`
	// Evaluations counts how often the operator was evaluated (cached
	// sub-plans evaluate once however often they are referenced).
	Evaluations int     `json:"evaluations"`
	Stages      []int64 `json:"stages"`
}

// Collector accumulates spans and operator statistics for one job. It is
// safe for concurrent use by the engine's partition goroutines. The zero
// value is not usable; call NewCollector.
type Collector struct {
	mu      sync.Mutex
	epoch   time.Time
	spans   []*Span
	byStage map[int64]*Span
	cur     *Span

	ops     map[any]*OpStats
	opOrder []any
	stack   []opFrame

	iteration int
}

type opFrame struct {
	token any
	start time.Time
	inner time.Duration // wall time of nested scopes, excluded from self time
}

// NewCollector returns an empty collector whose span timestamps are offsets
// from now.
func NewCollector() *Collector {
	return &Collector{
		epoch:   time.Now(),
		byStage: map[int64]*Span{},
		ops:     map[any]*OpStats{},
	}
}

func (c *Collector) since() time.Duration { return time.Since(c.epoch) }

// PushOp enters an operator scope: stages begun before the matching PopOp
// are attributed to label. token identifies the operator (the engine passes
// the operator itself) so statistics can be looked up per plan node.
func (c *Collector) PushOp(token any, label string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.ops[token]; !ok {
		c.ops[token] = &OpStats{Label: label}
		c.opOrder = append(c.opOrder, token)
	}
	c.stack = append(c.stack, opFrame{token: token, start: time.Now()})
}

// PopOp leaves the operator scope entered by the matching PushOp and
// records the operator's actual output cardinality.
func (c *Collector) PopOp(token any, rows int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.stack)
	if n == 0 || c.stack[n-1].token != token {
		return // unbalanced scope; drop rather than corrupt the stack
	}
	frame := c.stack[n-1]
	c.stack = c.stack[:n-1]
	elapsed := time.Since(frame.start)
	st := c.ops[token]
	st.Rows = rows
	st.Wall += elapsed - frame.inner
	st.Evaluations++
	if n > 1 {
		c.stack[n-2].inner += elapsed
	}
}

// BeginStage opens the span for a new stage, closing the previous one. The
// span is attributed to the innermost open operator scope.
func (c *Collector) BeginStage(stage int64, kind string, shuffle bool, parts int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.since()
	if c.cur != nil {
		c.cur.End = now
	}
	s := &Span{
		Stage:     stage,
		Kind:      kind,
		Shuffle:   shuffle,
		Iteration: c.iteration,
		Start:     now,
		Parts:     make([]PartStats, parts),
	}
	if n := len(c.stack); n > 0 {
		top := c.ops[c.stack[n-1].token]
		s.Op = top.Label
		top.Stages = append(top.Stages, stage)
	}
	c.spans = append(c.spans, s)
	c.byStage[stage] = s
	c.cur = s
}

// Finish closes the currently open span. Call it when the job ends.
func (c *Collector) Finish() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur != nil {
		c.cur.End = c.since()
		c.cur = nil
	}
}

// part returns the current span's stats slot for partition p, growing the
// slice defensively if the engine reports an out-of-range partition.
func (c *Collector) part(p int) *PartStats {
	if c.cur == nil {
		return &PartStats{} // discarded
	}
	for p >= len(c.cur.Parts) {
		c.cur.Parts = append(c.cur.Parts, PartStats{})
	}
	return &c.cur.Parts[p]
}

// RowsIn records the input row count of partition p in the current stage.
// Re-executed partitions overwrite their previous value, so retried work is
// not double counted.
func (c *Collector) RowsIn(p int, n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.part(p).RowsIn = n
}

// RowsOut records the output row count of partition p in the current stage.
func (c *Collector) RowsOut(p int, n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.part(p).RowsOut = n
}

// CPU mirrors a CPU-element charge into the current stage.
func (c *Collector) CPU(p int, elements int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.part(p).CPUElements += elements
}

// Net mirrors a network-byte charge into the current stage.
func (c *Collector) Net(p int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.part(p).NetBytes += bytes
}

// Spill mirrors a spill-byte charge into the current stage.
func (c *Collector) Spill(p int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.part(p).SpillBytes += bytes
}

// Mem mirrors a memory-broker materialization charge into the current
// stage.
func (c *Collector) Mem(p int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.part(p).MemBytes += bytes
}

// Attempt records one partition execution attempt of a stage.
func (c *Collector) Attempt(stage int64, part, n int, start, end time.Time, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.byStage[stage]
	if s == nil {
		return
	}
	s.Attempts = append(s.Attempts, Attempt{
		Part:   part,
		N:      n,
		Start:  start.Sub(c.epoch),
		End:    end.Sub(c.epoch),
		Failed: failed,
	})
}

// Retry records a retried partition of a stage along with the simulated
// recovery delay charged for it.
func (c *Collector) Retry(stage int64, part int, recovery time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.byStage[stage]
	if s == nil {
		return
	}
	for part >= len(s.Parts) {
		s.Parts = append(s.Parts, PartStats{})
	}
	s.Parts[part].Retries++
	s.Parts[part].Recovery += recovery
}

// SetIteration marks subsequent stages as belonging to the given 1-based
// bulk-iteration superstep; 0 clears the mark.
func (c *Collector) SetIteration(it int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.iteration = it
}

// Spans returns a copy of all recorded spans in execution order, closing
// the open span first.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur != nil {
		c.cur.End = c.since()
		c.cur = nil
	}
	out := make([]Span, len(c.spans))
	for i, s := range c.spans {
		out[i] = *s
		out[i].Parts = append([]PartStats(nil), s.Parts...)
		out[i].Attempts = append([]Attempt(nil), s.Attempts...)
	}
	return out
}

// Current returns a copy of the span of the stage executing right now, with
// its per-partition progress so far, without closing it — unlike Spans, it
// is safe to call while the job is still running (live /jobs introspection).
// ok is false when no stage is open.
func (c *Collector) Current() (cur Span, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return Span{}, false
	}
	cur = *c.cur
	cur.End = c.since()
	cur.Parts = append([]PartStats(nil), c.cur.Parts...)
	cur.Attempts = append([]Attempt(nil), c.cur.Attempts...)
	return cur, true
}

// Op returns the statistics recorded for an operator token.
func (c *Collector) Op(token any) (OpStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.ops[token]
	if !ok {
		return OpStats{}, false
	}
	out := *st
	out.Stages = append([]int64(nil), st.Stages...)
	return out, true
}

// Ops returns the statistics of every traced operator in first-evaluation
// order.
func (c *Collector) Ops() []OpStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]OpStats, 0, len(c.opOrder))
	for _, token := range c.opOrder {
		st := *c.ops[token]
		st.Stages = append([]int64(nil), st.Stages...)
		out = append(out, st)
	}
	return out
}
