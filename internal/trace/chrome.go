package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// The Chrome trace_event format (also read by Perfetto and chrome://tracing):
// a JSON object with a traceEvents array of metadata ("ph":"M") and complete
// ("ph":"X") events. Timestamps and durations are in microseconds. The
// export lays the job out as one process with a driver track (thread 0)
// holding one event per stage and one track per worker (thread p+1) holding
// one event per partition execution attempt, so skew, retries and idle
// workers are visible at a glance.

// ChromeEvent is one entry of the traceEvents array.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace_event JSON document. Metadata carries
// document-level context (the cluster export stores the trace ID there);
// the single-process export leaves it empty.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"metadata,omitempty"`
}

// micros converts a span offset to trace microseconds; call sites clamp
// durations to ≥1µs so sub-microsecond stages stay visible.
func micros(d int64) int64 { return d / 1000 }

func spanName(s *Span) string {
	if s.Op != "" {
		return s.Op
	}
	return s.Kind
}

// ChromeTrace renders the recorded spans as a trace_event document.
func (c *Collector) ChromeTrace() ChromeTrace {
	spans := c.Spans()
	events := []ChromeEvent{
		{Name: "process_name", Ph: "M", PID: 0, TID: 0,
			Args: map[string]any{"name": "gradoop dataflow job"}},
		{Name: "thread_name", Ph: "M", PID: 0, TID: 0,
			Args: map[string]any{"name": "driver (stages)"}},
	}
	workers := 0
	for i := range spans {
		if n := len(spans[i].Parts); n > workers {
			workers = n
		}
	}
	for w := 0; w < workers; w++ {
		events = append(events, ChromeEvent{Name: "thread_name", Ph: "M", PID: 0, TID: w + 1,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", w)}})
	}
	events = appendSpanEvents(events, 0, spans)
	return ChromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}
}

// appendSpanEvents emits the span set's trace events into one process lane:
// one complete event per stage on the driver thread (tid 0) and one per
// partition execution attempt on the partition's thread (tid part+1).
func appendSpanEvents(events []ChromeEvent, pid int, spans []Span) []ChromeEvent {
	for i := range spans {
		s := &spans[i]
		rowsIn, rowsOut := s.Rows()
		var net, spill int64
		for _, p := range s.Parts {
			net += p.NetBytes
			spill += p.SpillBytes
		}
		dur := micros(int64(s.End - s.Start))
		if dur < 1 {
			dur = 1
		}
		args := map[string]any{
			"stage":      s.Stage,
			"kind":       s.Kind,
			"shuffle":    s.Shuffle,
			"rowsIn":     rowsIn,
			"rowsOut":    rowsOut,
			"netBytes":   net,
			"spillBytes": spill,
			"retries":    s.Retries(),
		}
		if s.Iteration > 0 {
			args["iteration"] = s.Iteration
		}
		events = append(events, ChromeEvent{
			Name: spanName(s), Cat: "stage", Ph: "X",
			TS: micros(int64(s.Start)), Dur: dur, PID: pid, TID: 0, Args: args,
		})
		for _, a := range s.Attempts {
			name := spanName(s)
			switch {
			case a.Failed:
				name = fmt.Sprintf("%s [attempt %d: worker failed]", name, a.N)
			case a.N > 0:
				name = fmt.Sprintf("%s [retry %d]", name, a.N)
			}
			adur := micros(int64(a.End - a.Start))
			if adur < 1 {
				adur = 1
			}
			events = append(events, ChromeEvent{
				Name: name, Cat: "attempt", Ph: "X",
				TS: micros(int64(a.Start)), Dur: adur, PID: pid, TID: a.Part + 1,
				Args: map[string]any{
					"stage":   s.Stage,
					"attempt": a.N,
					"failed":  a.Failed,
				},
			})
		}
	}
	return events
}

// WorkerTrace is one worker process's contribution to a merged cluster
// trace: its node name and the spans its telemetry bundle shipped.
type WorkerTrace struct {
	Node  string
	Spans []Span
}

// ClusterChromeTrace merges a distributed job into one trace_event
// document: process 0 is the coordinator lane (its attempt and assembly
// spans), and each worker gets its own process lane with the usual driver
// and per-partition threads. Every process's span offsets are relative to
// that process's own job start — the bundles ship rebased times, so lanes
// align on "time since the job began" without trusting any machine's wall
// clock. The trace ID binds the document to the job's logs and records.
func ClusterChromeTrace(traceID string, coordinator []Span, workers []WorkerTrace) ChromeTrace {
	events := []ChromeEvent{
		{Name: "process_name", Ph: "M", PID: 0, TID: 0,
			Args: map[string]any{"name": "coordinator"}},
		{Name: "thread_name", Ph: "M", PID: 0, TID: 0,
			Args: map[string]any{"name": "driver (attempts)"}},
	}
	events = appendSpanEvents(events, 0, coordinator)
	for i := range workers {
		w := &workers[i]
		pid := i + 1
		events = append(events, ChromeEvent{Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": fmt.Sprintf("worker %s", w.Node)}})
		events = append(events, ChromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": "driver (stages)"}})
		parts := 0
		for j := range w.Spans {
			if n := len(w.Spans[j].Parts); n > parts {
				parts = n
			}
		}
		for p := 0; p < parts; p++ {
			events = append(events, ChromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: p + 1,
				Args: map[string]any{"name": fmt.Sprintf("partition %d", p)}})
		}
		events = appendSpanEvents(events, pid, w.Spans)
	}
	return ChromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]string{"traceId": traceID},
	}
}

// WriteChromeTrace writes the trace_event JSON document to w.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c.ChromeTrace())
}
