package baseline

import (
	"testing"

	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/operators"
)

func testGraph() *epgm.LogicalGraph {
	env := dataflow.NewEnv(dataflow.DefaultConfig(2))
	p := func(name string, rank int64) epgm.Vertex {
		return epgm.Vertex{ID: epgm.NewID(), Label: "Person", Properties: epgm.Properties{}.
			Set("name", epgm.PVString(name)).Set("rank", epgm.PVInt(rank))}
	}
	a, b, c := p("a", 1), p("b", 2), p("c", 3)
	t := epgm.Vertex{ID: epgm.NewID(), Label: "Tag"}
	e := func(label string, s, d epgm.Vertex) epgm.Edge {
		return epgm.Edge{ID: epgm.NewID(), Label: label, Source: s.ID, Target: d.ID}
	}
	return epgm.GraphFromSlices(env, "G",
		[]epgm.Vertex{a, b, c, t},
		[]epgm.Edge{
			e("knows", a, b), e("knows", b, c), e("knows", a, c), e("knows", c, a),
			e("hasInterest", a, t), e("hasInterest", b, t),
		})
}

func qg(t *testing.T, src string) *cypher.QueryGraph {
	t.Helper()
	q, err := cypher.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cypher.BuildQueryGraph(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReferenceSimple(t *testing.T) {
	g := testGraph()
	ref := NewReference(g)
	if n := ref.Count(qg(t, `MATCH (a:Person)-[:knows]->(b) RETURN *`), operators.Morphism{}); n != 4 {
		t.Fatalf("knows=%d want 4", n)
	}
	if n := ref.Count(qg(t, `MATCH (a)-[:hasInterest]->(x:Tag) RETURN *`), operators.Morphism{}); n != 2 {
		t.Fatalf("interests=%d want 2", n)
	}
}

func TestReferenceIsolatedVertex(t *testing.T) {
	g := testGraph()
	ref := NewReference(g)
	if n := ref.Count(qg(t, `MATCH (x:Tag) RETURN *`), operators.Morphism{}); n != 1 {
		t.Fatalf("tags=%d", n)
	}
}

func TestReferenceMorphism(t *testing.T) {
	g := testGraph()
	ref := NewReference(g)
	q := qg(t, `MATCH (a)-[:knows]->(b)-[:knows]->(c) RETURN *`)
	homo := ref.Count(q, operators.Morphism{})
	iso := ref.Count(q, operators.Morphism{Vertex: operators.Isomorphism, Edge: operators.Isomorphism})
	if homo <= iso {
		t.Fatalf("homo=%d iso=%d", homo, iso)
	}
}

func TestMotifMatcherRejectsVarLength(t *testing.T) {
	g := testGraph()
	m := NewMotifMatcher(g)
	if _, err := m.Match(qg(t, `MATCH (a)-[e:knows*1..3]->(b) RETURN *`)); err == nil {
		t.Fatal("var-length should be rejected")
	}
}

func TestMotifMatcherPostFiltering(t *testing.T) {
	g := testGraph()
	m := NewMotifMatcher(g)
	// Property predicate: only rank=1 sources. The motif matcher must first
	// materialize ALL knows matches (4), then post-filter to 2 (a->b, a->c).
	res, err := m.Match(qg(t, `MATCH (a:Person)-[:knows]->(b) WHERE a.rank = 1 RETURN *`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("final=%d want 2", len(res))
	}
	if m.IntermediateRows != 4 {
		t.Fatalf("intermediate=%d want 4 (no early predicate reduction)", m.IntermediateRows)
	}
}

func TestMotifMatcherAgreesOnFinalResults(t *testing.T) {
	g := testGraph()
	ref := NewReference(g)
	m := NewMotifMatcher(g)
	queries := []string{
		`MATCH (a:Person)-[:knows]->(b:Person) WHERE a.rank < b.rank RETURN *`,
		`MATCH (a)-[:knows]->(b)-[:hasInterest]->(x:Tag) RETURN *`,
		`MATCH (a)-[:knows]->(b) WHERE a.name = 'a' RETURN *`,
	}
	for _, src := range queries {
		q := qg(t, src)
		want := ref.Count(q, operators.Morphism{}) // homomorphism
		got, err := m.Match(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want {
			t.Fatalf("%s: motif=%d reference=%d", src, len(got), want)
		}
	}
}
