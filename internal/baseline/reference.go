// Package baseline provides two non-distributed matchers: a brute-force
// reference matcher used as the correctness oracle for the query engine, and
// a GraphFrames-style motif matcher reproducing the restrictions the paper
// attributes to that system (homomorphism only, fixed-length patterns,
// label-only predicates with property predicates applied in a
// post-processing step).
package baseline

import (
	"fmt"

	"gradoop/internal/cypher"
	"gradoop/internal/epgm"
	"gradoop/internal/operators"
)

// Binding is one complete match: data ids per query variable. Paths map the
// variable to its via entries (alternating edge and interior-vertex ids).
type Binding struct {
	Vertices map[string]epgm.ID
	Edges    map[string]epgm.ID
	Paths    map[string][]epgm.ID
}

// Reference is an in-memory backtracking matcher over a materialized graph.
type Reference struct {
	vertices  []epgm.Vertex
	edges     []epgm.Edge
	vertexByI map[epgm.ID]*epgm.Vertex
	edgeByI   map[epgm.ID]*epgm.Edge
	out       map[epgm.ID][]*epgm.Edge
	in        map[epgm.ID][]*epgm.Edge
}

// NewReference materializes a logical graph for matching.
func NewReference(g *epgm.LogicalGraph) *Reference {
	r := &Reference{
		vertices:  g.Vertices.Collect(),
		edges:     g.Edges.Collect(),
		vertexByI: map[epgm.ID]*epgm.Vertex{},
		edgeByI:   map[epgm.ID]*epgm.Edge{},
		out:       map[epgm.ID][]*epgm.Edge{},
		in:        map[epgm.ID][]*epgm.Edge{},
	}
	for i := range r.vertices {
		v := &r.vertices[i]
		r.vertexByI[v.ID] = v
	}
	for i := range r.edges {
		e := &r.edges[i]
		r.edgeByI[e.ID] = e
		r.out[e.Source] = append(r.out[e.Source], e)
		r.in[e.Target] = append(r.in[e.Target], e)
	}
	return r
}

// Match enumerates every embedding of the query graph under the given
// morphism semantics. It is exponential and intended for small graphs and
// tests only.
func (r *Reference) Match(qg *cypher.QueryGraph, morph operators.Morphism) []Binding {
	m := &refMatch{r: r, qg: qg, morph: morph,
		vb: map[string]epgm.ID{}, eb: map[string]epgm.ID{}, pb: map[string][]epgm.ID{}}
	m.run()
	return m.results
}

// Count returns the number of embeddings.
func (r *Reference) Count(qg *cypher.QueryGraph, morph operators.Morphism) int {
	return len(r.Match(qg, morph))
}

type refMatch struct {
	r     *Reference
	qg    *cypher.QueryGraph
	morph operators.Morphism

	vb map[string]epgm.ID   // vertex bindings
	eb map[string]epgm.ID   // edge bindings
	pb map[string][]epgm.ID // path bindings (via entries)

	results []Binding
}

func (m *refMatch) run() {
	m.matchEdge(0)
}

// vertexOK checks label and element predicates of a query vertex against a
// data vertex.
func (m *refMatch) vertexOK(qv *cypher.QueryVertex, v *epgm.Vertex) bool {
	if v == nil {
		return false
	}
	return cypher.MatchesLabel(v.Label, qv.Labels) &&
		cypher.EvalElement(qv.Predicates, qv.Var, v.Properties)
}

func (m *refMatch) edgeOK(qe *cypher.QueryEdge, e *epgm.Edge) bool {
	return cypher.MatchesLabel(e.Label, qe.Types) &&
		cypher.EvalElement(qe.Predicates, qe.Var, e.Properties)
}

// bindVertex binds a query vertex variable, returning an undo function, or
// nil when the binding is inconsistent.
func (m *refMatch) bindVertex(varName string, id epgm.ID) func() {
	if prev, ok := m.vb[varName]; ok {
		if prev != id {
			return nil
		}
		return func() {}
	}
	qv, _ := m.qg.VertexByVar(varName)
	if !m.vertexOK(qv, m.r.vertexByI[id]) {
		return nil
	}
	m.vb[varName] = id
	return func() { delete(m.vb, varName) }
}

func (m *refMatch) matchEdge(i int) {
	if i == len(m.qg.Edges) {
		m.matchIsolated(0)
		return
	}
	qe := m.qg.Edges[i]
	if qe.IsVarLength() {
		m.matchVarLength(qe, i)
		return
	}
	for j := range m.r.edges {
		de := &m.r.edges[j]
		if !m.edgeOK(qe, de) {
			continue
		}
		orientations := [][2]epgm.ID{{de.Source, de.Target}}
		if qe.Undirected && de.Source != de.Target {
			orientations = append(orientations, [2]epgm.ID{de.Target, de.Source})
		}
		for _, o := range orientations {
			undoS := m.bindVertex(qe.Source, o[0])
			if undoS == nil {
				continue
			}
			undoT := m.bindVertex(qe.Target, o[1])
			if undoT == nil {
				undoS()
				continue
			}
			m.eb[qe.Var] = de.ID
			m.matchEdge(i + 1)
			delete(m.eb, qe.Var)
			undoT()
			undoS()
		}
	}
}

// matchVarLength enumerates every path of admissible length for a variable
// length query edge, starting from each admissible source binding.
func (m *refMatch) matchVarLength(qe *cypher.QueryEdge, i int) {
	srcQV, _ := m.qg.VertexByVar(qe.Source)
	var sources []epgm.ID
	if id, ok := m.vb[qe.Source]; ok {
		sources = []epgm.ID{id}
	} else {
		for j := range m.r.vertices {
			v := &m.r.vertices[j]
			if m.vertexOK(srcQV, v) {
				sources = append(sources, v.ID)
			}
		}
	}
	for _, src := range sources {
		undoS := m.bindVertex(qe.Source, src)
		if undoS == nil {
			continue
		}
		m.walk(qe, i, src, src, nil, 0)
		undoS()
	}
}

// walk extends a path from cur; via holds the alternating edge/vertex ids
// accumulated so far (interior vertices only).
func (m *refMatch) walk(qe *cypher.QueryEdge, i int, start, cur epgm.ID, via []epgm.ID, hops int) {
	if hops >= qe.MinHops {
		m.endPath(qe, i, cur, via)
	}
	if hops == qe.MaxHops {
		return
	}
	candidates := m.r.out[cur]
	if qe.Undirected {
		candidates = append(append([]*epgm.Edge{}, candidates...), m.r.in[cur]...)
	}
	for _, de := range candidates {
		if !m.edgeOK(qe, de) {
			continue
		}
		next := de.Target
		if qe.Undirected && de.Target == cur && de.Source != cur {
			next = de.Source
		}
		if de.Source != cur && !qe.Undirected {
			continue
		}
		extended := make([]epgm.ID, 0, len(via)+2)
		extended = append(extended, via...)
		if len(via) > 0 {
			extended = append(extended, cur)
		}
		extended = append(extended, de.ID)
		m.walk(qe, i, start, next, extended, hops+1)
	}
}

func (m *refMatch) endPath(qe *cypher.QueryEdge, i int, end epgm.ID, via []epgm.ID) {
	undoT := m.bindVertex(qe.Target, end)
	if undoT == nil {
		return
	}
	m.pb[qe.Var] = via
	m.matchEdge(i + 1)
	delete(m.pb, qe.Var)
	undoT()
}

// matchIsolated binds query vertices untouched by any edge.
func (m *refMatch) matchIsolated(i int) {
	if i == len(m.qg.Vertices) {
		m.finish()
		return
	}
	qv := m.qg.Vertices[i]
	if _, ok := m.vb[qv.Var]; ok {
		m.matchIsolated(i + 1)
		return
	}
	for j := range m.r.vertices {
		v := &m.r.vertices[j]
		if !m.vertexOK(qv, v) {
			continue
		}
		m.vb[qv.Var] = v.ID
		m.matchIsolated(i + 1)
		delete(m.vb, qv.Var)
	}
}

func (m *refMatch) finish() {
	// Global predicates.
	lookup := func(variable, key string) epgm.PropertyValue {
		if id, ok := m.vb[variable]; ok {
			return m.r.vertexByI[id].Properties.Get(key)
		}
		if id, ok := m.eb[variable]; ok {
			return m.r.edgeByI[id].Properties.Get(key)
		}
		return epgm.Null
	}
	for _, g := range m.qg.Global {
		if !cypher.EvalPredicate(g, lookup) {
			return
		}
	}
	// Morphism checks: vertex bindings plus path interiors; edge bindings
	// plus path edges.
	if m.morph.Vertex == operators.Isomorphism {
		seen := map[epgm.ID]struct{}{}
		ok := true
		add := func(id epgm.ID) {
			if _, dup := seen[id]; dup {
				ok = false
			}
			seen[id] = struct{}{}
		}
		for _, id := range m.vb {
			add(id)
		}
		for _, via := range m.pb {
			for i := 1; i < len(via); i += 2 {
				add(via[i])
			}
		}
		if !ok {
			return
		}
	}
	if m.morph.Edge == operators.Isomorphism {
		seen := map[epgm.ID]struct{}{}
		ok := true
		add := func(id epgm.ID) {
			if _, dup := seen[id]; dup {
				ok = false
			}
			seen[id] = struct{}{}
		}
		for _, id := range m.eb {
			add(id)
		}
		for _, via := range m.pb {
			for i := 0; i < len(via); i += 2 {
				add(via[i])
			}
		}
		if !ok {
			return
		}
	}
	b := Binding{
		Vertices: map[string]epgm.ID{},
		Edges:    map[string]epgm.ID{},
		Paths:    map[string][]epgm.ID{},
	}
	for k, v := range m.vb {
		b.Vertices[k] = v
	}
	for k, v := range m.eb {
		b.Edges[k] = v
	}
	for k, v := range m.pb {
		b.Paths[k] = append([]epgm.ID(nil), v...)
	}
	m.results = append(m.results, b)
}

// Key renders a binding as a canonical string for set comparisons in tests.
func (b Binding) Key(vertexVars, edgeVars, pathVars []string) string {
	s := ""
	for _, v := range vertexVars {
		s += fmt.Sprintf("v:%s=%d;", v, b.Vertices[v])
	}
	for _, v := range edgeVars {
		s += fmt.Sprintf("e:%s=%d;", v, b.Edges[v])
	}
	for _, v := range pathVars {
		s += fmt.Sprintf("p:%s=%v;", v, b.Paths[v])
	}
	return s
}
