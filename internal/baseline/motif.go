package baseline

import (
	"fmt"

	"gradoop/internal/cypher"
	"gradoop/internal/epgm"
	"gradoop/internal/operators"
)

// MotifMatcher mimics the pattern-matching capabilities the paper attributes
// to GraphFrames (§5): homomorphic semantics only, fixed path lengths only,
// and predicates restricted to type labels during matching — complex
// (property) predicates must be "programmatically evaluated in post
// processing steps which prohibits early intermediate result reduction".
//
// It exists as the comparison baseline for the ablation benchmarks: the same
// query runs with predicates pushed into matching (the paper's engine) and
// with predicates applied after materializing all label-only matches (the
// GraphFrames style), exposing the intermediate-result blowup.
type MotifMatcher struct {
	ref *Reference

	// IntermediateRows counts the label-only matches materialized before
	// post-filtering during the last Match call.
	IntermediateRows int
}

// NewMotifMatcher materializes the graph.
func NewMotifMatcher(g *epgm.LogicalGraph) *MotifMatcher {
	return &MotifMatcher{ref: NewReference(g)}
}

// Match evaluates the query with GraphFrames-style restrictions. It returns
// the final bindings after post-filtering. Variable length paths are
// rejected (GraphFrames supports fixed lengths only).
func (m *MotifMatcher) Match(qg *cypher.QueryGraph) ([]Binding, error) {
	for _, qe := range qg.Edges {
		if qe.IsVarLength() {
			return nil, fmt.Errorf("baseline: motif matching does not support variable length paths (%s*%d..%d)",
				qe.Var, qe.MinHops, qe.MaxHops)
		}
	}

	// Phase 1: structural matching with label predicates only.
	structural := stripProperties(qg)
	matches := m.ref.Match(structural, operators.Morphism{
		Vertex: operators.Homomorphism,
		Edge:   operators.Homomorphism,
	})
	m.IntermediateRows = len(matches)

	// Phase 2: post-filter with the element-centric and global property
	// predicates.
	var out []Binding
	for _, b := range matches {
		if m.satisfies(qg, b) {
			out = append(out, b)
		}
	}
	return out, nil
}

// stripProperties clones the query graph without property predicates,
// keeping only labels, the structure and variable names.
func stripProperties(qg *cypher.QueryGraph) *cypher.QueryGraph {
	vertices := make([]*cypher.QueryVertex, len(qg.Vertices))
	for i, qv := range qg.Vertices {
		cp := *qv
		cp.Predicates = nil
		vertices[i] = &cp
	}
	edges := make([]*cypher.QueryEdge, len(qg.Edges))
	for i, qe := range qg.Edges {
		cp := *qe
		cp.Predicates = nil
		edges[i] = &cp
	}
	return cypher.AssembleQueryGraph(vertices, edges, nil, qg.Return)
}

// satisfies applies every property predicate of the original query to one
// structural match.
func (m *MotifMatcher) satisfies(qg *cypher.QueryGraph, b Binding) bool {
	lookup := func(variable, key string) epgm.PropertyValue {
		if id, ok := b.Vertices[variable]; ok {
			if v := m.ref.vertexByI[id]; v != nil {
				return v.Properties.Get(key)
			}
		}
		if id, ok := b.Edges[variable]; ok {
			if e := m.ref.edgeByI[id]; e != nil {
				return e.Properties.Get(key)
			}
		}
		return epgm.Null
	}
	for _, qv := range qg.Vertices {
		for _, p := range qv.Predicates {
			if !cypher.EvalPredicate(p, lookup) {
				return false
			}
		}
	}
	for _, qe := range qg.Edges {
		for _, p := range qe.Predicates {
			if !cypher.EvalPredicate(p, lookup) {
				return false
			}
		}
	}
	for _, g := range qg.Global {
		if !cypher.EvalPredicate(g, lookup) {
			return false
		}
	}
	return true
}
