package govern

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilBrokerIsFree(t *testing.T) {
	var b *Broker
	if b := NewBroker(0, ShedLargest); b != nil {
		t.Fatalf("NewBroker(0) = %v, want nil", b)
	}
	if !b.HasHeadroom() {
		t.Fatal("nil broker must always have headroom")
	}
	if !b.TryReserve(1 << 40) {
		t.Fatal("nil broker must admit any cache reservation")
	}
	b.ReleaseBytes(1 << 40)
	b.AddReclaimer(func() int64 { return 0 })
	if err := b.AwaitHeadroom(context.Background()); err != nil {
		t.Fatalf("AwaitHeadroom on nil broker: %v", err)
	}
	if b.Budget() != 0 || b.Reserved() != 0 || b.Kills() != 0 || b.Sheds() != 0 || b.Brownouts() != 0 || b.Live() != 0 {
		t.Fatal("nil broker accessors must return zero")
	}

	r := b.Begin("q")
	if r != nil {
		t.Fatalf("nil broker Begin = %v, want nil", r)
	}
	if err := r.Reserve(1 << 40); err != nil {
		t.Fatalf("nil reservation Reserve: %v", err)
	}
	if r.Used() != 0 || r.KillErr() != nil || r.Label() != "" {
		t.Fatal("nil reservation accessors must be zero")
	}
	r.OnKill(func() { t.Fatal("nil reservation must never kill") })
	r.Release()
}

func TestReserveReleaseAccounting(t *testing.T) {
	b := NewBroker(1000, ShedLargest)
	r1 := b.Begin("a")
	r2 := b.Begin("b")
	if err := r1.Reserve(300); err != nil {
		t.Fatalf("r1.Reserve: %v", err)
	}
	if err := r2.Reserve(400); err != nil {
		t.Fatalf("r2.Reserve: %v", err)
	}
	if got := b.Reserved(); got != 700 {
		t.Fatalf("Reserved = %d, want 700", got)
	}
	if r1.Used() != 300 || r2.Used() != 400 {
		t.Fatalf("Used = %d/%d, want 300/400", r1.Used(), r2.Used())
	}
	r1.Release()
	if got := b.Reserved(); got != 400 {
		t.Fatalf("Reserved after r1.Release = %d, want 400", got)
	}
	r1.Release() // idempotent
	if got := b.Reserved(); got != 400 {
		t.Fatalf("Reserved after double release = %d, want 400", got)
	}
	r2.Release()
	if got := b.Reserved(); got != 0 {
		t.Fatalf("Reserved after all releases = %d, want 0", got)
	}
	if b.Kills() != 0 || b.Live() != 0 {
		t.Fatalf("kills=%d live=%d, want 0/0", b.Kills(), b.Live())
	}
}

func TestShedSelfKillsTheReserver(t *testing.T) {
	b := NewBroker(100, ShedSelf)
	small := b.Begin("small")
	big := b.Begin("big")
	if err := small.Reserve(80); err != nil {
		t.Fatalf("small.Reserve: %v", err)
	}
	err := big.Reserve(50)
	if err == nil {
		t.Fatal("big.Reserve should exceed the budget")
	}
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *BudgetError", err)
	}
	if be.Shed {
		t.Fatal("ShedSelf kill must have Shed=false")
	}
	if be.Label != "big" || be.Requested != 50 || be.Budget != 100 {
		t.Fatalf("BudgetError = %+v", be)
	}
	if small.KillErr() != nil {
		t.Fatal("ShedSelf must not touch the well-behaved query")
	}
	if b.Kills() != 1 || b.Sheds() != 0 {
		t.Fatalf("kills=%d sheds=%d, want 1/0", b.Kills(), b.Sheds())
	}
	// The killed query stays killed: further reserves fail with the same error.
	if err2 := big.Reserve(1); !errors.Is(err2, ErrMemoryBudget) {
		t.Fatalf("reserve after kill = %v, want ErrMemoryBudget", err2)
	}
	if b.Kills() != 1 {
		t.Fatalf("kill must be idempotent, kills=%d", b.Kills())
	}
	big.Release()
	small.Release()
	if b.Reserved() != 0 {
		t.Fatalf("Reserved = %d after releases, want 0", b.Reserved())
	}
}

func TestShedLargestKillsTheBiggestQuery(t *testing.T) {
	b := NewBroker(100, ShedLargest)
	hog := b.Begin("hog")
	small := b.Begin("small")
	if err := hog.Reserve(90); err != nil {
		t.Fatalf("hog.Reserve: %v", err)
	}
	killed := make(chan struct{})
	hog.OnKill(func() { close(killed) })
	// The small query's overflow sheds the hog, and the small query proceeds.
	if err := small.Reserve(20); err != nil {
		t.Fatalf("small.Reserve should survive via shedding, got %v", err)
	}
	select {
	case <-killed:
	default:
		t.Fatal("hog OnKill did not fire")
	}
	err := hog.KillErr()
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("hog.KillErr = %v, want ErrMemoryBudget", err)
	}
	var be *BudgetError
	errors.As(err, &be)
	if !be.Shed || be.Label != "hog" || be.Held != 90 {
		t.Fatalf("BudgetError = %+v, want shed of hog holding 90", be)
	}
	if b.Kills() != 1 || b.Sheds() != 1 {
		t.Fatalf("kills=%d sheds=%d, want 1/1", b.Kills(), b.Sheds())
	}
	hog.Release()
	small.Release()
	if b.Reserved() != 0 || b.Live() != 0 {
		t.Fatalf("reserved=%d live=%d after releases, want 0/0", b.Reserved(), b.Live())
	}
}

func TestShedLargestFallsBackToSelf(t *testing.T) {
	// The reserver is the only (and largest) live query: it must die itself.
	b := NewBroker(100, ShedLargest)
	r := b.Begin("only")
	err := r.Reserve(150)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
	var be *BudgetError
	errors.As(err, &be)
	if be.Shed {
		t.Fatal("self-kill must have Shed=false")
	}
	r.Release()
}

func TestOnKillAfterKillFiresImmediately(t *testing.T) {
	b := NewBroker(10, ShedSelf)
	r := b.Begin("q")
	if err := r.Reserve(20); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("Reserve = %v, want kill", err)
	}
	fired := false
	r.OnKill(func() { fired = true })
	if !fired {
		t.Fatal("OnKill registered after the kill must fire immediately")
	}
	r.Release()
}

func TestBrownoutReclaimAvoidsKill(t *testing.T) {
	b := NewBroker(100, ShedLargest)
	// Cache holds 60 of the 100-byte budget.
	if !b.TryReserve(60) {
		t.Fatal("cache TryReserve should fit")
	}
	var reclaimed atomic.Int64
	b.AddReclaimer(func() int64 {
		// Brownout: hand the cache bytes back (atomics only — no locks).
		b.ReleaseBytes(60)
		reclaimed.Add(60)
		return 60
	})
	q := b.Begin("q")
	// 80 > remaining 40, but reclaim frees the cache and the query proceeds.
	if err := q.Reserve(80); err != nil {
		t.Fatalf("Reserve should survive via brownout, got %v", err)
	}
	if reclaimed.Load() != 60 {
		t.Fatalf("reclaimed = %d, want 60", reclaimed.Load())
	}
	if b.Brownouts() != 1 {
		t.Fatalf("Brownouts = %d, want 1", b.Brownouts())
	}
	if b.Kills() != 0 {
		t.Fatalf("Kills = %d, want 0", b.Kills())
	}
	q.Release()
	if b.Reserved() != 0 {
		t.Fatalf("Reserved = %d, want 0", b.Reserved())
	}
}

func TestTryReserveNeverKills(t *testing.T) {
	b := NewBroker(100, ShedLargest)
	q := b.Begin("q")
	if err := q.Reserve(90); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	// A cache reservation that does not fit simply fails; the query lives.
	if b.TryReserve(20) {
		t.Fatal("TryReserve should fail over budget")
	}
	if q.KillErr() != nil || b.Kills() != 0 {
		t.Fatal("TryReserve must never kill a query")
	}
	if !b.TryReserve(10) {
		t.Fatal("TryReserve should admit a fitting reservation")
	}
	b.ReleaseBytes(10)
	q.Release()
}

func TestAwaitHeadroom(t *testing.T) {
	b := NewBroker(100, ShedLargest)
	q := b.Begin("hog")
	if err := q.Reserve(100); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if b.HasHeadroom() {
		t.Fatal("no headroom expected at full budget")
	}

	// Cancellation while waiting.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.AwaitHeadroom(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("AwaitHeadroom on cancelled ctx = %v, want Canceled", err)
	}

	// Release wakes the waiter.
	done := make(chan error, 1)
	go func() { done <- b.AwaitHeadroom(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	q.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("AwaitHeadroom after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AwaitHeadroom did not wake on release")
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("largest"); err != nil || p != ShedLargest {
		t.Fatalf("ParsePolicy(largest) = %v, %v", p, err)
	}
	if p, err := ParsePolicy("self"); err != nil || p != ShedSelf {
		t.Fatalf("ParsePolicy(self) = %v, %v", p, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy(bogus) should fail")
	}
	if ShedLargest.String() != "largest" || ShedSelf.String() != "self" {
		t.Fatal("Policy.String mismatch")
	}
}

// TestConcurrentHammer drives many goroutines through reserve/release cycles
// under -race: accounting must balance to zero and every killed goroutine
// must observe a structured budget error.
func TestConcurrentHammer(t *testing.T) {
	// Budget 64 KiB; each cycle tries to hold 128 KiB, so every cycle
	// overflows even with no interleaving at all — kills are guaranteed.
	b := NewBroker(1<<16, ShedLargest)
	var wg sync.WaitGroup
	var kills atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r := b.Begin(fmt.Sprintf("q%d-%d", g, i))
				var err error
				for j := 0; j < 32 && err == nil; j++ {
					err = r.Reserve(4096)
				}
				if err != nil {
					if !errors.Is(err, ErrMemoryBudget) {
						t.Errorf("unexpected error: %v", err)
					}
					kills.Add(1)
				}
				r.Release()
			}
		}(g)
	}
	wg.Wait()
	if got := b.Reserved(); got != 0 {
		t.Fatalf("Reserved = %d after hammer, want 0 (leaked reservation)", got)
	}
	if b.Live() != 0 {
		t.Fatalf("Live = %d after hammer, want 0", b.Live())
	}
	if b.Kills() == 0 {
		t.Fatal("expected kills under pressure")
	}
}

// TestKillReclaimsBytesImmediately: a shed victim's accounted bytes are
// handed back at kill time, not at its eventual cooperative Release — so a
// second overflow in the unwind window never has to take a well-behaved
// neighbor as collateral, and the victim's Release does not double-release.
func TestKillReclaimsBytesImmediately(t *testing.T) {
	b := NewBroker(1000, ShedLargest)
	victim := b.Begin("victim")
	small := b.Begin("small")
	if err := victim.Reserve(800); err != nil {
		t.Fatal(err)
	}
	if err := small.Reserve(400); err != nil {
		t.Fatalf("small.Reserve should survive via shedding, got %v", err)
	}
	// The victim has not released yet, but its 800 B are already gone.
	if got := b.Reserved(); got != 400 {
		t.Fatalf("Reserved = %d immediately after the kill, want 400", got)
	}
	// A straggler charge racing past the killed check is refused and must
	// not distort accounting.
	if err := victim.Reserve(100); err == nil {
		t.Fatal("killed reservation accepted a charge")
	}
	victim.Release()
	if got := b.Reserved(); got != 400 {
		t.Fatalf("Reserved = %d after victim release, want 400 (double release?)", got)
	}
	small.Release()
	if got := b.Reserved(); got != 0 || b.Live() != 0 {
		t.Fatalf("end state reserved=%d live=%d, want 0/0", got, b.Live())
	}
}
