// Package govern implements process-wide memory governance for the query
// engine: a Broker that tracks the actual bytes of materialized embeddings
// against a hard budget, per-query Reservations charged cooperatively at the
// engine's materialization points, and the overload machinery the service
// layer degrades through — byte-aware admission headroom, largest-query-first
// shedding, and brownout reclaim of cache memory.
//
// The paper's cost model only *simulates* memory pressure (Env.MemoryPerWorker
// spills excess bytes to imaginary disk); nothing stopped one adversarial
// cartesian blowup from OOMing the whole process. govern is the real
// counterpart: every byte a query materializes is reserved here, and when the
// process budget is exhausted somebody dies — by policy the reserver itself
// (ShedSelf) or the largest query in flight (ShedLargest) — with a structured
// error that unwinds exactly like a contained dataflow panic.
//
// Like internal/obs and the engine's nil tracer, disabled governance is free:
// a nil *Broker hands out nil Reservations and every operation on them is a
// nil check. The enabled fast path is lock-free — two atomic adds per charge —
// and only budget overflow takes the broker lock.
//
// The package imports nothing from the engine, so dataflow, session and
// server can all depend on it without cycles.
package govern

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrMemoryBudget is the sentinel every budget kill matches:
// errors.Is(err, govern.ErrMemoryBudget) is true for any *BudgetError,
// whether the query died reserving past the budget or was shed as the
// largest query in flight.
var ErrMemoryBudget = errors.New("govern: memory budget exceeded")

// BudgetError is the structured failure of one governed query: who died,
// how much it held, and the broker state at the kill. It unwraps to
// ErrMemoryBudget.
type BudgetError struct {
	// Label identifies the killed query (the session uses the canonical
	// query text).
	Label string
	// Requested is the size of the denied reservation; 0 when the query was
	// shed by another query's overflow rather than its own charge.
	Requested int64
	// Held is the number of bytes the killed query had reserved.
	Held int64
	// Reserved and Budget are the process-wide reserved bytes and the broker
	// budget at kill time.
	Reserved int64
	Budget   int64
	// Shed reports the kill reason: false when the query's own reservation
	// crossed the budget, true when it was selected as the shedding victim
	// (largest-query-first) for another query's overflow.
	Shed bool
}

// Error implements error.
func (e *BudgetError) Error() string {
	cause := "reservation denied"
	if e.Shed {
		cause = "shed (largest query in flight)"
	}
	return fmt.Sprintf("govern: %s: query held %d B (requested %d B more), process reserved %d B of %d B budget",
		cause, e.Held, e.Requested, e.Reserved, e.Budget)
}

// Unwrap makes every budget kill match ErrMemoryBudget.
func (e *BudgetError) Unwrap() error { return ErrMemoryBudget }

// Policy selects the shedding victim when a reservation would exceed the
// process budget and brownout reclaim could not free enough.
type Policy int

const (
	// ShedLargest kills the largest live reservation — largest-query-first.
	// When the overflowing reserver is not itself the largest, the victim is
	// marked killed (it unwinds at its next cooperative check or context
	// poll) and the reserver proceeds: the victim's release frees at least
	// as much as it held. The default, because it keeps small well-behaved
	// queries alive through a blowup.
	ShedLargest Policy = iota
	// ShedSelf kills the query whose reservation crossed the budget,
	// regardless of size — strict first-to-overflow-dies semantics.
	ShedSelf
)

// String names the policy (the -shed-policy flag values).
func (p Policy) String() string {
	switch p {
	case ShedLargest:
		return "largest"
	case ShedSelf:
		return "self"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a -shed-policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "largest":
		return ShedLargest, nil
	case "self":
		return ShedSelf, nil
	default:
		return 0, fmt.Errorf("unknown shed policy %q (want largest or self)", s)
	}
}

// Broker is the process-wide memory account. Queries reserve through
// per-query Reservations (Begin); caches reserve weakly through TryReserve —
// a cache reservation never kills a query, it simply fails, and registered
// reclaimers hand cache bytes back under pressure (brownout).
type Broker struct {
	budget int64
	policy Policy

	reserved  atomic.Int64
	kills     atomic.Int64
	sheds     atomic.Int64
	brownouts atomic.Int64

	// mu guards the live-reservation registry, victim selection and
	// reclaim — the overflow slow path only.
	mu         sync.Mutex
	nextSeq    uint64
	live       map[*Reservation]struct{}
	reclaimers []func() int64

	// notifyMu/notifyCh implement the headroom broadcast admission waits on:
	// the channel is closed and replaced whenever reserved bytes shrink.
	notifyMu sync.Mutex
	notifyCh chan struct{}
}

// NewBroker creates a broker enforcing the given budget (bytes) under the
// given shedding policy. A budget <= 0 returns nil — the disabled broker on
// which every operation is a free no-op — so callers can pass a config value
// straight through.
func NewBroker(budget int64, policy Policy) *Broker {
	if budget <= 0 {
		return nil
	}
	return &Broker{
		budget:   budget,
		policy:   policy,
		live:     map[*Reservation]struct{}{},
		notifyCh: make(chan struct{}),
	}
}

// Budget returns the configured budget in bytes (0 on a nil broker).
func (b *Broker) Budget() int64 {
	if b == nil {
		return 0
	}
	return b.budget
}

// Reserved returns the process-wide reserved bytes (0 on a nil broker).
func (b *Broker) Reserved() int64 {
	if b == nil {
		return 0
	}
	return b.reserved.Load()
}

// Kills counts budget kills: queries that died with a *BudgetError, both
// self-overflow and shed victims.
func (b *Broker) Kills() int64 {
	if b == nil {
		return 0
	}
	return b.kills.Load()
}

// Sheds counts the subset of kills where the victim was not the reserver —
// largest-query-first load shedding.
func (b *Broker) Sheds() int64 {
	if b == nil {
		return 0
	}
	return b.sheds.Load()
}

// Brownouts counts reclaim sweeps that actually freed cache bytes back to
// the broker under pressure.
func (b *Broker) Brownouts() int64 {
	if b == nil {
		return 0
	}
	return b.brownouts.Load()
}

// Live reports the number of live query reservations.
func (b *Broker) Live() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.live)
}

// AddReclaimer registers a brownout callback: under pressure the broker
// invokes it (overflow slow path, broker lock held) and it returns the bytes
// it handed back — the session registers the result cache's purge here. The
// callback must release through ReleaseBytes/TryReserve only; calling
// Begin/Release from a reclaimer deadlocks.
func (b *Broker) AddReclaimer(f func() int64) {
	if b == nil || f == nil {
		return
	}
	b.mu.Lock()
	b.reclaimers = append(b.reclaimers, f)
	b.mu.Unlock()
}

// TryReserve reserves n bytes for a cache if — and only if — they fit under
// the budget right now. It never triggers reclaim or shedding: cache memory
// is the first thing sacrificed under pressure, so it must never cause a
// query kill to make room for itself. Nil-safe (a nil broker always admits).
func (b *Broker) TryReserve(n int64) bool {
	if b == nil || n <= 0 {
		return b == nil || n == 0
	}
	for {
		cur := b.reserved.Load()
		if cur+n > b.budget {
			return false
		}
		if b.reserved.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// ReleaseBytes returns n bytes reserved via TryReserve to the broker and
// wakes headroom waiters.
func (b *Broker) ReleaseBytes(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.reserved.Add(-n)
	b.notifyHeadroom()
}

// HasHeadroom reports whether new work should be admitted: reserved bytes
// are under the budget. A nil broker always has headroom.
func (b *Broker) HasHeadroom() bool {
	return b == nil || b.reserved.Load() < b.budget
}

// AwaitHeadroom blocks until the broker has admission headroom or ctx is
// done, returning ctx.Err() in the latter case. The ctx parameter is an
// interface subset of context.Context so the package stays dependency-free.
func (b *Broker) AwaitHeadroom(ctx interface {
	Done() <-chan struct{}
	Err() error
}) error {
	if b == nil {
		return nil
	}
	for {
		if b.HasHeadroom() {
			return nil
		}
		ch := b.headroomCh()
		// Recheck after taking the channel: a release between the check and
		// the take already closed the previous channel, not this one.
		if b.HasHeadroom() {
			return nil
		}
		if ctx == nil {
			<-ch
			continue
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// headroomCh returns the current broadcast channel.
func (b *Broker) headroomCh() chan struct{} {
	b.notifyMu.Lock()
	defer b.notifyMu.Unlock()
	return b.notifyCh
}

// notifyHeadroom wakes every headroom waiter by closing and replacing the
// broadcast channel.
func (b *Broker) notifyHeadroom() {
	b.notifyMu.Lock()
	close(b.notifyCh)
	b.notifyCh = make(chan struct{})
	b.notifyMu.Unlock()
}

// Reservation is one query's account against the broker. The fast path of
// Reserve is lock-free (an atomic kill check plus two atomic adds); only
// budget overflow takes the broker lock. A nil *Reservation — handed out by
// a nil broker — makes every method a free no-op, mirroring the engine's
// nil-tracer/nil-observer pattern.
type Reservation struct {
	b     *Broker
	label string
	seq   uint64

	used   atomic.Int64
	killed atomic.Bool

	// mu guards the kill error and callback; written once, on kill.
	mu      sync.Mutex
	killErr *BudgetError
	onKill  func()
}

// Begin opens a reservation for one query. Nil-safe: a nil broker returns a
// nil reservation. The label is carried into kill errors (the session passes
// the canonical query text).
func (b *Broker) Begin(label string) *Reservation {
	if b == nil {
		return nil
	}
	r := &Reservation{b: b, label: label}
	b.mu.Lock()
	b.nextSeq++
	r.seq = b.nextSeq
	b.live[r] = struct{}{}
	b.mu.Unlock()
	return r
}

// Label returns the reservation's label ("" on nil).
func (r *Reservation) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// Used returns the bytes this reservation currently holds (0 on nil).
func (r *Reservation) Used() int64 {
	if r == nil {
		return 0
	}
	return r.used.Load()
}

// OnKill registers a callback invoked exactly once when the reservation is
// killed — the session registers the query context's cancel func, so a shed
// victim unwinds at its next cancellation poll even between materialization
// points. If the reservation is already killed, f runs immediately.
func (r *Reservation) OnKill(f func()) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	killed := r.killErr != nil
	if !killed {
		r.onKill = f
	}
	r.mu.Unlock()
	if killed {
		f()
	}
}

// KillErr returns the structured budget error if the reservation has been
// killed, nil otherwise. Nil-safe.
func (r *Reservation) KillErr() error {
	if r == nil || !r.killed.Load() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.killErr == nil {
		return nil
	}
	return r.killErr
}

// Reserve charges n freshly materialized bytes to the query. It fails with
// the reservation's *BudgetError when the query has been killed — by its own
// overflow now, or earlier as a shedding victim — making every
// materialization point a cooperative kill check. Nil-safe no-op.
func (r *Reservation) Reserve(n int64) error {
	if r == nil || n < 0 {
		return nil
	}
	if r.killed.Load() {
		return r.KillErr()
	}
	if n == 0 {
		return nil
	}
	r.used.Add(n)
	if r.b.reserved.Add(n) <= r.b.budget {
		return nil
	}
	return r.b.overflow(r, n)
}

// Release returns every byte the reservation holds and removes it from the
// shedding candidates, waking admission waiters. Idempotent and nil-safe;
// the session defers it on every Execute exit path, which is what keeps the
// reserved-bytes gauge at zero between requests.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	r.b.mu.Lock()
	_, live := r.b.live[r]
	delete(r.b.live, r)
	r.b.mu.Unlock()
	if !live {
		return
	}
	if n := r.used.Swap(0); n > 0 {
		r.b.reserved.Add(-n)
	}
	r.b.notifyHeadroom()
}

// overflow is the slow path of Reserve: the process budget is exceeded.
// Under the broker lock it re-checks (a concurrent release may have fixed
// it), runs brownout reclaim, and finally kills per policy. It returns nil
// when the reserver may proceed and the reserver's own *BudgetError when it
// must die.
func (b *Broker) overflow(r *Reservation, n int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.reserved.Load() <= b.budget {
		return nil
	}
	// Brownout: hand cache bytes back before killing anything.
	for _, reclaim := range b.reclaimers {
		if b.reserved.Load() <= b.budget {
			break
		}
		if freed := reclaim(); freed > 0 {
			b.brownouts.Add(1)
		}
	}
	if b.reserved.Load() <= b.budget {
		return nil
	}
	victim := r
	if b.policy == ShedLargest {
		victim = b.largestLocked()
		if victim == nil {
			victim = r
		}
	}
	err := b.killLocked(victim, r, n)
	if victim != r {
		// Largest-query-first: the victim holds at least as much as anyone;
		// its release covers this overflow, so the reserver proceeds.
		return nil
	}
	return err
}

// largestLocked picks the shedding victim: the live, not-yet-killed
// reservation holding the most bytes, ties broken by age (older first) so
// selection is deterministic.
func (b *Broker) largestLocked() *Reservation {
	var best *Reservation
	var bestUsed int64
	for r := range b.live {
		if r.killed.Load() {
			continue
		}
		u := r.used.Load()
		if best == nil || u > bestUsed || (u == bestUsed && r.seq < best.seq) {
			best, bestUsed = r, u
		}
	}
	return best
}

// killLocked marks victim killed with a structured error and fires its
// OnKill callback. reserver/n describe the overflowing charge for the error
// message. Idempotent per victim.
func (b *Broker) killLocked(victim, reserver *Reservation, n int64) *BudgetError {
	victim.mu.Lock()
	if victim.killErr != nil {
		err := victim.killErr
		victim.mu.Unlock()
		return err
	}
	err := &BudgetError{
		Label:    victim.label,
		Held:     victim.used.Load(),
		Reserved: b.reserved.Load(),
		Budget:   b.budget,
		Shed:     victim != reserver,
	}
	if victim == reserver {
		err.Requested = n
	}
	victim.killErr = err
	onKill := victim.onKill
	victim.onKill = nil
	victim.mu.Unlock()
	victim.killed.Store(true)
	// Reclaim the victim's accounted bytes now, not at its eventual
	// Release: the kill's whole point is to free budget immediately, and
	// waiting for the victim's cooperative unwind would leave a window in
	// which a second overflow must pick its largest *un-killed* — i.e.
	// well-behaved — neighbor as collateral. Charges that raced past the
	// killed check land after this swap and are returned by the victim's
	// Release, which subtracts exactly what it swaps out.
	if freed := victim.used.Swap(0); freed > 0 {
		b.reserved.Add(-freed)
		b.notifyHeadroom()
	}
	b.kills.Add(1)
	if err.Shed {
		b.sheds.Add(1)
	}
	if onKill != nil {
		onKill()
	}
	return err
}
