// Package qstore is the engine's persistent query store: one structured
// record per completed execution, appended to segmented JSONL files that
// survive crashes, plus in-memory per-fingerprint aggregates and a
// regression detector flagging query shapes whose latency or q-error
// distribution drifts away from their own history. It is the durable half
// of the adaptive-planning loop: EXPLAIN ANALYZE measures one run, the
// query store remembers all of them.
//
// A nil *Store is a valid, fully disabled store: every method is a
// nil-check no-op, mirroring the nil trace-collector and nil memory-broker
// off switches elsewhere in the engine.
package qstore

import (
	"hash/fnv"
	"strconv"
)

// Outcome classifies how an execution ended. The values mirror
// session.Kind but include the success case: every exit path of
// Session.Execute maps onto exactly one Outcome.
type Outcome string

const (
	OutcomeOK         Outcome = "ok"
	OutcomeInvalid    Outcome = "invalid"
	OutcomeRejected   Outcome = "rejected"
	OutcomeTimeout    Outcome = "timeout"
	OutcomeMemoryKill Outcome = "memory-kill"
	OutcomeError      Outcome = "error"
)

// OpMetrics is the per-operator slice of an analyzed execution: the plan
// node, its estimated and actual cardinality, the q-error between them,
// the memory-broker bytes its stages materialized, and its measured
// self/simulated time. The HTTP /analyze view and the query-store Record
// share this one schema, so a record on disk and an EXPLAIN ANALYZE of the
// same query line up field for field.
type OpMetrics struct {
	// Op is the operator's Description; Depth its position in the Explain
	// rendering (0 = root).
	Op    string `json:"op"`
	Depth int    `json:"depth"`
	// Est is the planner's cardinality estimate; HasEstimate distinguishes
	// a genuine 0-row estimate from "planner recorded none".
	Est         float64 `json:"est,omitempty"`
	HasEstimate bool    `json:"hasEstimate,omitempty"`
	// Act is the operator's actual output cardinality.
	Act int64 `json:"act"`
	// QError is max(est/act, act/est), clamped to ≥ 1 — the planner
	// community's symmetric estimation-error factor. 0 when no estimate.
	QError float64 `json:"qError,omitempty"`
	// MemBytes is the total memory-broker charge of the operator's stages:
	// bytes of embeddings materialized against the process budget.
	MemBytes int64 `json:"memBytes,omitempty"`
	// WallNs is measured per-partition wall time summed over the
	// operator's stages; SimNs the deterministic cost-model time.
	WallNs int64 `json:"wallNs"`
	SimNs  int64 `json:"simNs"`
	// Shared marks operators whose stages were executed once and reused
	// (dataset caching); NotExecuted marks plan subtrees never evaluated.
	Shared      bool `json:"shared,omitempty"`
	NotExecuted bool `json:"notExecuted,omitempty"`
}

// Record is one completed execution. Records are self-contained: replaying
// a segment reproduces the aggregates exactly, so every field the
// aggregates touch (including timestamps) lives here rather than being
// sampled at replay time.
type Record struct {
	// Time is the exit wall-clock instant, unix nanoseconds.
	Time int64 `json:"t"`
	// TraceID correlates the record with the request's X-Trace-Id.
	TraceID string `json:"traceId,omitempty"`
	// Fingerprint identifies the query *shape*: FNV-64a of the
	// canonicalized text (QueryFingerprint). All parameter bindings of one
	// template share it.
	Fingerprint string `json:"fingerprint"`
	// PlanHash identifies the physical plan chosen for this run
	// (planner.Fingerprint). A shape whose PlanHash changes had its plan
	// flip — the regression feed's first suspect.
	PlanHash string `json:"planHash,omitempty"`
	// Query is the canonicalized text.
	Query string `json:"query"`
	// Bucket is the parameter-selectivity bucket: the log10 decade of the
	// actual result cardinality ("0", "1-9", "10-99", ...). It stratifies
	// one template's executions by how selective the bound parameters
	// were — the plan-cache stratification key adaptive planning needs.
	Bucket string `json:"bucket"`
	// Outcome is how the execution ended.
	Outcome Outcome `json:"outcome"`
	// Rows is the result cardinality (0 for failures).
	Rows int64 `json:"rows"`
	// Latency breakdown: total, admission-queue wait, compile (plan-cache
	// lookup included), and execute.
	ElapsedNs int64 `json:"elapsedNs"`
	QueueNs   int64 `json:"queueNs,omitempty"`
	PlanNs    int64 `json:"planNs,omitempty"`
	ExecNs    int64 `json:"execNs,omitempty"`
	// MemBytes is the peak memory-broker reservation the run charged.
	MemBytes int64 `json:"memBytes,omitempty"`
	// Cache provenance.
	PlanCacheHit   bool `json:"planCacheHit,omitempty"`
	ResultCacheHit bool `json:"resultCacheHit,omitempty"`
	// RootQError is the q-error between the plan's root estimate and the
	// actual result cardinality — the always-available drift signal (per
	// operator actuals need a trace collector; the root needs none).
	RootQError float64 `json:"rootQError,omitempty"`
	// Ops carries per-operator metrics for traced runs (/analyze), nil
	// otherwise.
	Ops []OpMetrics `json:"ops,omitempty"`
}

// QueryFingerprint derives the stable query-shape key from canonicalized
// query text: 16 hex digits of FNV-64a. Parameterized executions of one
// template share a fingerprint; the physical plan may still vary (see
// Record.PlanHash).
func QueryFingerprint(canonical string) string {
	h := fnv.New64a()
	h.Write([]byte(canonical))
	return strconv.FormatUint(h.Sum64(), 16)
}

// QError is the symmetric estimation-error factor max(est/act, act/est),
// clamped to ≥ 1. Zero-valued sides clamp to 1 so empty results against
// tiny estimates do not explode.
func QError(est float64, act int64) float64 {
	e, a := est, float64(act)
	if e < 1 {
		e = 1
	}
	if a < 1 {
		a = 1
	}
	if e > a {
		return e / a
	}
	return a / e
}

// SelectivityBucket maps a result cardinality to its log10-decade label:
// "0", "1-9", "10-99", "100-999", ... Bucketing by output decade rather
// than raw count groups executions whose parameters had comparable
// selectivity.
func SelectivityBucket(rows int64) string {
	if rows <= 0 {
		return "0"
	}
	lo := int64(1)
	for lo*10 <= rows {
		lo *= 10
	}
	return strconv.FormatInt(lo, 10) + "-" + strconv.FormatInt(lo*10-1, 10)
}
