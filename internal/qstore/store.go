package qstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gradoop/internal/obs"
)

// Defaults for Options zero values.
const (
	DefaultMaxSegmentBytes     = 4 << 20  // rotate segments at 4 MiB
	DefaultMaxTotalBytes       = 64 << 20 // drop oldest segments past 64 MiB
	DefaultRegressionThreshold = 2.0
	DefaultWindow              = 8   // recent-window size per fingerprint
	DefaultMinBaseline         = 16  // baseline samples required before drift checks
	DefaultMaxFingerprints     = 512 // aggregate cardinality bound
	recentRecords              = 32  // per-fingerprint record ring for /querystore/fingerprint
	maxEvents                  = 256 // regression-event feed bound
)

// Options configures Open.
type Options struct {
	// Dir is the segment directory; created if absent.
	Dir string
	// MaxSegmentBytes rotates the active segment once it exceeds this
	// size; MaxTotalBytes bounds the directory by deleting the oldest
	// segments. Zero means the defaults above.
	MaxSegmentBytes int64
	MaxTotalBytes   int64
	// RegressionThreshold flags a fingerprint when its recent latency or
	// q-error exceeds its own baseline by this factor (default 2.0).
	RegressionThreshold float64
	// Window is the recent-sample window per fingerprint; MinBaseline the
	// number of samples that must have aged out of the window into the
	// baseline before drift checks run.
	Window      int
	MinBaseline int
	// MaxFingerprints bounds the in-memory aggregate map; the
	// least-recently-seen shape is evicted past it (its disk records
	// remain).
	MaxFingerprints int
	// Metrics registers gradoop_qstore_* series when non-nil.
	Metrics *obs.Registry
	// Logger receives regression WARNs and recovery notices; nil discards.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if o.MaxTotalBytes <= 0 {
		o.MaxTotalBytes = DefaultMaxTotalBytes
	}
	if o.RegressionThreshold <= 1 {
		o.RegressionThreshold = DefaultRegressionThreshold
	}
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.MinBaseline <= 0 {
		o.MinBaseline = DefaultMinBaseline
	}
	if o.MaxFingerprints <= 0 {
		o.MaxFingerprints = DefaultMaxFingerprints
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	return o
}

// segment is one on-disk JSONL file.
type segment struct {
	index int
	path  string
	size  int64
}

// Store is the persistent query store. All methods are safe for concurrent
// use and nil-check no-ops on a nil receiver.
type Store struct {
	opts   Options
	logger *slog.Logger

	mu      sync.RWMutex
	cur     *os.File
	curSize int64
	segs    []segment // oldest first; last entry is the active segment
	total   int64     // sum of segs sizes
	aggs    map[string]*aggregate
	events  []Regression // newest last; bounded by maxEvents
	onsets  int64        // monotonic drift-onset count (events is a ring)
	records int64
	drops   int64
	closed  bool

	recordsC *obs.Counter
	regrC    *obs.Counter
	dropsC   *obs.Counter
}

// Open creates or recovers a store in opts.Dir. Existing segments are
// replayed to rebuild the per-fingerprint aggregates; a torn tail (partial
// final line from a crash mid-append) is truncated away, preserving every
// complete record byte-exact.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("qstore: Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("qstore: %w", err)
	}
	s := &Store{
		opts:   opts,
		logger: opts.Logger,
		aggs:   make(map[string]*aggregate),
	}
	if r := opts.Metrics; r != nil {
		s.recordsC = r.NewCounter("gradoop_qstore_records_total",
			"Executions recorded in the query store (including records replayed at startup).")
		s.regrC = r.NewCounter("gradoop_qstore_regressions",
			"Fingerprint drift onsets flagged by the query-store regression detector.")
		s.dropsC = r.NewCounter("gradoop_qstore_dropped_writes_total",
			"Query-store records lost to append I/O errors.")
		r.NewGaugeFunc("gradoop_qstore_bytes",
			"Total bytes across query-store segments.",
			func() float64 { s.mu.RLock(); defer s.mu.RUnlock(); return float64(s.total) })
		r.NewGaugeFunc("gradoop_qstore_segments",
			"Number of query-store segment files.",
			func() float64 { s.mu.RLock(); defer s.mu.RUnlock(); return float64(len(s.segs)) })
		r.NewGaugeFunc("gradoop_qstore_fingerprints",
			"Distinct query fingerprints with live aggregates.",
			func() float64 { s.mu.RLock(); defer s.mu.RUnlock(); return float64(len(s.aggs)) })
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if err := s.openActive(); err != nil {
		return nil, err
	}
	return s, nil
}

// segmentPath names segment i.
func (s *Store) segmentPath(i int) string {
	return filepath.Join(s.opts.Dir, fmt.Sprintf("seg-%08d.jsonl", i))
}

// listSegments scans Dir for segment files, oldest first.
func (s *Store) listSegments() ([]segment, error) {
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("qstore: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		var idx int
		if n, _ := fmt.Sscanf(e.Name(), "seg-%08d.jsonl", &idx); n != 1 {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("qstore: %w", err)
		}
		segs = append(segs, segment{index: idx, path: filepath.Join(s.opts.Dir, e.Name()), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, nil
}

// recover replays every segment into the aggregates and truncates the
// newest segment's torn tail, if any. Replay is deterministic: aggregates
// derive only from record contents, so a restart reproduces them exactly.
func (s *Store) recover() error {
	segs, err := s.listSegments()
	if err != nil {
		return err
	}
	for i := range segs {
		last := i == len(segs)-1
		good, n, err := s.replaySegment(&segs[i])
		if err != nil {
			return err
		}
		if good < segs[i].size {
			if last {
				// Torn tail from a crash mid-append: drop the partial
				// record, keep every complete one byte-exact.
				if err := os.Truncate(segs[i].path, good); err != nil {
					return fmt.Errorf("qstore: truncating torn tail: %w", err)
				}
				s.logger.Warn("qstore recovered torn tail",
					slog.String("segment", segs[i].path),
					slog.Int64("truncatedBytes", segs[i].size-good))
				segs[i].size = good
			} else {
				// Corruption inside a sealed segment: records after the
				// bad line are unreadable but the file is left untouched
				// as evidence.
				s.logger.Warn("qstore segment corrupt past offset",
					slog.String("segment", segs[i].path),
					slog.Int64("offset", good))
			}
		}
		_ = n
	}
	s.segs = segs
	s.total = 0
	for _, sg := range segs {
		s.total += sg.size
	}
	if len(segs) > 0 {
		s.logger.Info("qstore recovered",
			slog.Int("segments", len(segs)),
			slog.Int64("records", s.records),
			slog.Int("fingerprints", len(s.aggs)))
	}
	return nil
}

// replaySegment feeds a segment's complete records through the aggregates
// and returns the byte offset just past the last complete, parseable line,
// plus the number of records replayed.
func (s *Store) replaySegment(sg *segment) (good int64, n int, err error) {
	f, err := os.Open(sg.path)
	if err != nil {
		return 0, 0, fmt.Errorf("qstore: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			if err == io.EOF {
				// No trailing newline: torn tail.
				return good, n, nil
			}
			return 0, 0, fmt.Errorf("qstore: reading %s: %w", sg.path, err)
		}
		var rec Record
		if jerr := json.Unmarshal(line, &rec); jerr != nil {
			return good, n, nil
		}
		good += int64(len(line))
		n++
		s.records++
		s.recordsC.Inc()
		s.apply(rec, true)
	}
}

// openActive opens (or creates) the segment new appends go to.
func (s *Store) openActive() error {
	idx := 0
	if len(s.segs) > 0 {
		idx = s.segs[len(s.segs)-1].index
	} else {
		s.segs = append(s.segs, segment{index: 0, path: s.segmentPath(0)})
	}
	f, err := os.OpenFile(s.segmentPath(idx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("qstore: %w", err)
	}
	s.cur = f
	s.curSize = s.segs[len(s.segs)-1].size
	return nil
}

// Append records one completed execution: marshals it, writes it to the
// active segment (rotating and pruning as needed), and folds it into the
// fingerprint's aggregate, running the regression detector. Nil-safe: a
// nil store drops the record at the cost of one branch.
func (s *Store) Append(rec Record) {
	if s == nil {
		return
	}
	line, err := marshalRecord(rec)
	if err != nil {
		// A record that cannot marshal is a programming error; count it
		// rather than losing the query.
		s.mu.Lock()
		s.drops++
		s.mu.Unlock()
		s.dropsC.Inc()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.drops++
		s.dropsC.Inc()
		return
	}
	if s.curSize > 0 && s.curSize+int64(len(line)) > s.opts.MaxSegmentBytes {
		s.rotateLocked()
	}
	if _, err := s.cur.Write(line); err != nil {
		s.drops++
		s.dropsC.Inc()
		s.logger.Error("qstore append failed", slog.String("error", err.Error()))
		return
	}
	s.curSize += int64(len(line))
	s.segs[len(s.segs)-1].size = s.curSize
	s.total += int64(len(line))
	s.records++
	s.recordsC.Inc()
	s.apply(rec, false)
}

// marshalRecord renders one JSONL line.
func marshalRecord(rec Record) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(rec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil // Encode appends the trailing '\n'
}

// rotateLocked seals the active segment and opens the next, pruning the
// oldest segments past MaxTotalBytes. Called with mu held.
func (s *Store) rotateLocked() {
	_ = s.cur.Close()
	next := s.segs[len(s.segs)-1].index + 1
	f, err := os.OpenFile(s.segmentPath(next), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// Keep writing to the oversized active segment rather than losing
		// records.
		s.logger.Error("qstore rotation failed", slog.String("error", err.Error()))
		if reopened, rerr := os.OpenFile(s.segs[len(s.segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644); rerr == nil {
			s.cur = reopened
		}
		return
	}
	s.cur = f
	s.curSize = 0
	s.segs = append(s.segs, segment{index: next, path: s.segmentPath(next)})
	for len(s.segs) > 1 && s.total > s.opts.MaxTotalBytes {
		oldest := s.segs[0]
		if err := os.Remove(oldest.path); err != nil {
			s.logger.Error("qstore prune failed", slog.String("error", err.Error()))
			break
		}
		s.total -= oldest.size
		s.segs = s.segs[1:]
	}
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == nil {
		return nil
	}
	return s.cur.Sync()
}

// Close seals the store; subsequent Appends are counted as drops.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.cur == nil {
		return nil
	}
	err := s.cur.Sync()
	if cerr := s.cur.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats summarizes the store for /metrics.json and tests.
type Stats struct {
	Records      int64 `json:"records"`
	Fingerprints int   `json:"fingerprints"`
	Segments     int   `json:"segments"`
	Bytes        int64 `json:"bytes"`
	Drops        int64 `json:"droppedWrites"`
	Regressions  int64 `json:"regressions"`
}

// Stats returns current store totals; zero-valued on a nil store.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Records:      s.records,
		Fingerprints: len(s.aggs),
		Segments:     len(s.segs),
		Bytes:        s.total,
		Drops:        s.drops,
		Regressions:  s.onsets,
	}
}
