package qstore

import (
	"log/slog"
	"sort"

	"gradoop/internal/obs"
)

// winSample is one successful execution inside a fingerprint's recent
// window.
type winSample struct {
	lat  int64 // total latency, ns
	qerr float64
	hasQ bool
}

// opAgg accumulates one operator's estimate quality across traced runs of
// a fingerprint.
type opAgg struct {
	n        int64
	qSum     float64
	qMax     float64
	memBytes int64
	wallNs   int64
}

// aggregate is the in-memory rollup of one query fingerprint. Everything
// in it derives from Record contents alone, which is what makes startup
// replay reproduce it exactly.
type aggregate struct {
	fingerprint string
	query       string
	firstSeen   int64
	lastSeen    int64
	count       int64
	outcomes    map[Outcome]int64
	buckets     map[string]int64

	// latency holds every successful run; baseLat only those that have
	// aged out of the recent window — the fingerprint's own history, which
	// recent samples are judged against.
	latency *obs.Histogram
	baseLat *obs.Histogram
	// Root q-error running aggregate (all ok runs with an estimate) plus
	// the aged-out baseline mean.
	qerrSum, qerrMax float64
	qerrN            int64
	baseQSum         float64
	baseQN           int64
	// win is the recent-sample ring.
	win     []winSample
	winNext int
	winFull bool

	perOp        map[string]*opAgg
	lastPlanHash string
	planChanges  int64
	lastTraceID  string
	recent       []Record // ring, newest at len-1 once full rotation applies
	recentNext   int
	recentFull   bool
	active       map[string]bool // regression kind → currently over threshold
}

// Regression is one drift onset flagged by the detector — the
// machine-readable feed adaptive planning consumes.
type Regression struct {
	TimeNs      int64   `json:"t"`
	Fingerprint string  `json:"fingerprint"`
	Query       string  `json:"query"`
	Kind        string  `json:"kind"` // "latency" or "qerror"
	Factor      float64 `json:"factor"`
	Baseline    float64 `json:"baseline"`
	Observed    float64 `json:"observed"`
	Threshold   float64 `json:"threshold"`
	ExecCount   int64   `json:"execCount"`
	PlanHash    string  `json:"planHash,omitempty"`
	TraceID     string  `json:"traceId,omitempty"`
}

// apply folds one record into its fingerprint's aggregate and runs the
// drift detector. replay suppresses the WARN log (the events and counters
// are still rebuilt, so a restart reproduces detector state). Called with
// s.mu held.
func (s *Store) apply(rec Record, replay bool) {
	a := s.aggs[rec.Fingerprint]
	if a == nil {
		if len(s.aggs) >= s.opts.MaxFingerprints {
			s.evictLocked()
		}
		a = &aggregate{
			fingerprint: rec.Fingerprint,
			query:       rec.Query,
			firstSeen:   rec.Time,
			outcomes:    make(map[Outcome]int64),
			buckets:     make(map[string]int64),
			latency:     obs.NewStandaloneHistogram(obs.ScaleNanos),
			baseLat:     obs.NewStandaloneHistogram(obs.ScaleNanos),
			win:         make([]winSample, s.opts.Window),
			perOp:       make(map[string]*opAgg),
			active:      make(map[string]bool),
		}
		s.aggs[rec.Fingerprint] = a
	}
	a.lastSeen = rec.Time
	a.count++
	a.outcomes[rec.Outcome]++
	a.buckets[rec.Bucket]++
	if rec.TraceID != "" {
		a.lastTraceID = rec.TraceID
	}
	if rec.PlanHash != "" && rec.PlanHash != a.lastPlanHash {
		if a.lastPlanHash != "" {
			a.planChanges++
		}
		a.lastPlanHash = rec.PlanHash
	}
	for _, om := range rec.Ops {
		if om.NotExecuted {
			continue
		}
		oa := a.perOp[om.Op]
		if oa == nil {
			oa = &opAgg{}
			a.perOp[om.Op] = oa
		}
		oa.n++
		oa.memBytes += om.MemBytes
		oa.wallNs += om.WallNs
		if om.QError > 0 {
			oa.qSum += om.QError
			if om.QError > oa.qMax {
				oa.qMax = om.QError
			}
		}
	}
	if len(a.recent) < recentRecords && !a.recentFull {
		a.recent = append(a.recent, rec)
	} else {
		a.recent[a.recentNext] = rec
		a.recentNext = (a.recentNext + 1) % recentRecords
		a.recentFull = true
	}
	if rec.Outcome != OutcomeOK {
		return
	}
	a.latency.Observe(rec.ElapsedNs)
	if rec.RootQError > 0 {
		a.qerrSum += rec.RootQError
		a.qerrN++
		if rec.RootQError > a.qerrMax {
			a.qerrMax = rec.RootQError
		}
	}
	// Push into the recent window; the evicted sample ages into the
	// baseline the window is compared against.
	sample := winSample{lat: rec.ElapsedNs, qerr: rec.RootQError, hasQ: rec.RootQError > 0}
	if a.winFull {
		old := a.win[a.winNext]
		a.baseLat.Observe(old.lat)
		if old.hasQ {
			a.baseQSum += old.qerr
			a.baseQN++
		}
	}
	a.win[a.winNext] = sample
	a.winNext = (a.winNext + 1) % len(a.win)
	if a.winNext == 0 && !a.winFull {
		a.winFull = true
	}
	s.detect(a, rec, replay)
}

// detect compares the fingerprint's recent window against its own aged
// baseline and flags drift onsets. Called with s.mu held.
func (s *Store) detect(a *aggregate, rec Record, replay bool) {
	if !a.winFull || a.baseLat.Count() < int64(s.opts.MinBaseline) {
		return
	}
	// Latency drift: recent median vs baseline median.
	lats := make([]int64, 0, len(a.win))
	var recentQSum float64
	var recentQN int64
	for _, w := range a.win {
		lats = append(lats, w.lat)
		if w.hasQ {
			recentQSum += w.qerr
			recentQN++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	recentLat := float64(lats[len(lats)/2])
	baseSnap := a.baseLat.Snapshot()
	baseLat := float64(baseSnap.Quantile(0.5))
	if baseLat < 1 {
		baseLat = 1
	}
	s.drift(a, rec, "latency", recentLat/baseLat, baseLat, recentLat, replay)
	// Estimate drift: recent mean root q-error vs baseline mean.
	if recentQN > 0 && a.baseQN >= int64(s.opts.MinBaseline)/2 {
		baseQ := a.baseQSum / float64(a.baseQN)
		if baseQ < 1 {
			baseQ = 1
		}
		recentQ := recentQSum / float64(recentQN)
		s.drift(a, rec, "qerror", recentQ/baseQ, baseQ, recentQ, replay)
	}
}

// drift applies the onset/clear state machine for one drift kind. Called
// with s.mu held.
func (s *Store) drift(a *aggregate, rec Record, kind string, factor, baseline, observed float64, replay bool) {
	over := factor >= s.opts.RegressionThreshold
	switch {
	case over && !a.active[kind]:
		a.active[kind] = true
		s.onsets++
		s.regrC.Inc()
		ev := Regression{
			TimeNs:      rec.Time,
			Fingerprint: a.fingerprint,
			Query:       a.query,
			Kind:        kind,
			Factor:      factor,
			Baseline:    baseline,
			Observed:    observed,
			Threshold:   s.opts.RegressionThreshold,
			ExecCount:   a.count,
			PlanHash:    a.lastPlanHash,
			TraceID:     rec.TraceID,
		}
		s.events = append(s.events, ev)
		if len(s.events) > maxEvents {
			s.events = s.events[len(s.events)-maxEvents:]
		}
		if !replay {
			attrs := []any{
				slog.String("fingerprint", a.fingerprint),
				slog.String("kind", kind),
				slog.Float64("factor", factor),
				slog.Float64("baseline", baseline),
				slog.Float64("observed", observed),
				slog.String("query", a.query),
				slog.String("plan_hash", a.lastPlanHash),
			}
			if rec.TraceID != "" {
				attrs = append(attrs, slog.String("trace_id", rec.TraceID))
			}
			s.logger.Warn("query regression detected", attrs...)
		}
	case !over && a.active[kind]:
		a.active[kind] = false
	}
}

// evictLocked drops the least-recently-seen aggregate to honor
// MaxFingerprints. Disk records are unaffected. Called with s.mu held.
func (s *Store) evictLocked() {
	var victim string
	var oldest int64
	for fp, a := range s.aggs {
		if victim == "" || a.lastSeen < oldest {
			victim, oldest = fp, a.lastSeen
		}
	}
	if victim != "" {
		delete(s.aggs, victim)
	}
}

// OpAggregate is one operator's rollup inside an AggregateSnapshot.
type OpAggregate struct {
	Op         string  `json:"op"`
	N          int64   `json:"n"`
	MeanQError float64 `json:"meanQError,omitempty"`
	MaxQError  float64 `json:"maxQError,omitempty"`
	MemBytes   int64   `json:"memBytes,omitempty"`
	WallNs     int64   `json:"wallNs,omitempty"`
}

// AggregateSnapshot is the JSON view of one fingerprint's history.
type AggregateSnapshot struct {
	Fingerprint  string           `json:"fingerprint"`
	Query        string           `json:"query"`
	Count        int64            `json:"count"`
	Outcomes     map[string]int64 `json:"outcomes"`
	Buckets      map[string]int64 `json:"buckets,omitempty"`
	P50Ns        int64            `json:"p50Ns"`
	P95Ns        int64            `json:"p95Ns"`
	P99Ns        int64            `json:"p99Ns"`
	MaxNs        int64            `json:"maxNs"`
	MeanQError   float64          `json:"meanQError,omitempty"`
	MaxQError    float64          `json:"maxQError,omitempty"`
	Ops          []OpAggregate    `json:"ops,omitempty"`
	LastPlanHash string           `json:"lastPlanHash,omitempty"`
	PlanChanges  int64            `json:"planChanges,omitempty"`
	LastTraceID  string           `json:"lastTraceId,omitempty"`
	FirstSeenNs  int64            `json:"firstSeenNs"`
	LastSeenNs   int64            `json:"lastSeenNs"`
	Regressed    []string         `json:"regressed,omitempty"`
}

// snapshotLocked renders one aggregate. Called with s.mu (read-)held.
func (a *aggregate) snapshotLocked() AggregateSnapshot {
	snap := AggregateSnapshot{
		Fingerprint:  a.fingerprint,
		Query:        a.query,
		Count:        a.count,
		Outcomes:     make(map[string]int64, len(a.outcomes)),
		Buckets:      make(map[string]int64, len(a.buckets)),
		LastPlanHash: a.lastPlanHash,
		PlanChanges:  a.planChanges,
		LastTraceID:  a.lastTraceID,
		FirstSeenNs:  a.firstSeen,
		LastSeenNs:   a.lastSeen,
		MaxQError:    a.qerrMax,
	}
	for k, v := range a.outcomes {
		snap.Outcomes[string(k)] = v
	}
	for k, v := range a.buckets {
		snap.Buckets[k] = v
	}
	if a.latency.Count() > 0 {
		h := a.latency.Snapshot()
		snap.P50Ns = h.Quantile(0.5)
		snap.P95Ns = h.Quantile(0.95)
		snap.P99Ns = h.Quantile(0.99)
		snap.MaxNs = h.Max
	}
	if a.qerrN > 0 {
		snap.MeanQError = a.qerrSum / float64(a.qerrN)
	}
	for op, oa := range a.perOp {
		agg := OpAggregate{Op: op, N: oa.n, MaxQError: oa.qMax, MemBytes: oa.memBytes, WallNs: oa.wallNs}
		if oa.n > 0 && oa.qSum > 0 {
			agg.MeanQError = oa.qSum / float64(oa.n)
		}
		snap.Ops = append(snap.Ops, agg)
	}
	sort.Slice(snap.Ops, func(i, j int) bool { return snap.Ops[i].Op < snap.Ops[j].Op })
	for kind, on := range a.active {
		if on {
			snap.Regressed = append(snap.Regressed, kind)
		}
	}
	sort.Strings(snap.Regressed)
	return snap
}

// Sort orders accepted by Top.
const (
	SortSlowest  = "slowest"  // p99 latency, descending
	SortFrequent = "frequent" // execution count, descending
	SortQError   = "qerror"   // mean root q-error, descending
)

// Top returns up to limit fingerprint aggregates ordered by the given
// sort ("slowest", "frequent", "qerror"); ties break on fingerprint for
// determinism. limit <= 0 means all.
func (s *Store) Top(sortBy string, limit int) []AggregateSnapshot {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	snaps := make([]AggregateSnapshot, 0, len(s.aggs))
	for _, a := range s.aggs {
		snaps = append(snaps, a.snapshotLocked())
	}
	s.mu.RUnlock()
	less := func(i, j int) bool { return snaps[i].P99Ns > snaps[j].P99Ns }
	switch sortBy {
	case SortFrequent:
		less = func(i, j int) bool { return snaps[i].Count > snaps[j].Count }
	case SortQError:
		less = func(i, j int) bool { return snaps[i].MeanQError > snaps[j].MeanQError }
	}
	sort.Slice(snaps, func(i, j int) bool {
		if less(i, j) != less(j, i) {
			return less(i, j)
		}
		return snaps[i].Fingerprint < snaps[j].Fingerprint
	})
	if limit > 0 && len(snaps) > limit {
		snaps = snaps[:limit]
	}
	return snaps
}

// Fingerprint returns one shape's aggregate plus its recent records
// (oldest first), or ok=false if the store has never seen it (or evicted
// it).
func (s *Store) Fingerprint(fp string) (AggregateSnapshot, []Record, bool) {
	if s == nil {
		return AggregateSnapshot{}, nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	a := s.aggs[fp]
	if a == nil {
		return AggregateSnapshot{}, nil, false
	}
	var recs []Record
	if a.recentFull {
		recs = append(recs, a.recent[a.recentNext:]...)
		recs = append(recs, a.recent[:a.recentNext]...)
	} else {
		recs = append(recs, a.recent...)
	}
	return a.snapshotLocked(), recs, true
}

// Regressions returns the drift-event feed, newest first.
func (s *Store) Regressions() []Regression {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Regression, len(s.events))
	for i, ev := range s.events {
		out[len(out)-1-i] = ev
	}
	return out
}

// RegressionCount is the total number of drift onsets flagged (including
// those rebuilt by startup replay).
func (s *Store) RegressionCount() int64 {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.onsets
}

// Records is the total number of records appended plus replayed.
func (s *Store) Records() int64 {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.records
}
