package qstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gradoop/internal/obs"
)

// testOpts returns small-knob options for fast detector tests.
func testOpts(dir string) Options {
	return Options{
		Dir:                 dir,
		Window:              4,
		MinBaseline:         4,
		RegressionThreshold: 2.0,
	}
}

// okRec builds a successful record for the given query at time t with the
// given latency and root q-error (0 = no estimate).
func okRec(query string, t, latNs int64, qerr float64) Record {
	return Record{
		Time:        t,
		Fingerprint: QueryFingerprint(query),
		Query:       query,
		PlanHash:    "p1",
		Bucket:      SelectivityBucket(5),
		Outcome:     OutcomeOK,
		Rows:        5,
		ElapsedNs:   latNs,
		RootQError:  qerr,
	}
}

func TestSelectivityBucket(t *testing.T) {
	cases := map[int64]string{0: "0", -3: "0", 1: "1-9", 9: "1-9", 10: "10-99",
		99: "10-99", 100: "100-999", 12345: "10000-99999"}
	for rows, want := range cases {
		if got := SelectivityBucket(rows); got != want {
			t.Errorf("SelectivityBucket(%d) = %q, want %q", rows, got, want)
		}
	}
}

func TestQError(t *testing.T) {
	if q := QError(10, 10); q != 1 {
		t.Errorf("exact estimate: q-error %v, want 1", q)
	}
	if q := QError(10, 100); q != 10 {
		t.Errorf("underestimate: q-error %v, want 10", q)
	}
	if q := QError(100, 10); q != 10 {
		t.Errorf("overestimate: q-error %v, want 10", q)
	}
	if q := QError(0, 0); q != 1 {
		t.Errorf("empty both sides: q-error %v, want 1 (clamped)", q)
	}
}

func TestNilStoreIsNoOp(t *testing.T) {
	var s *Store
	s.Append(okRec("MATCH (a) RETURN a", 1, 1000, 1))
	if got := s.Top(SortSlowest, 10); got != nil {
		t.Errorf("nil store Top = %v, want nil", got)
	}
	if _, _, ok := s.Fingerprint("x"); ok {
		t.Error("nil store Fingerprint reported ok")
	}
	if s.Regressions() != nil || s.RegressionCount() != 0 || s.Records() != 0 {
		t.Error("nil store leaked state")
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil store Close: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("nil store Sync: %v", err)
	}
	if got := s.Stats(); got != (Stats{}) {
		t.Errorf("nil store Stats = %+v, want zero", got)
	}
}

// storeStateJSON serializes everything a restart must reproduce.
func storeStateJSON(t *testing.T, s *Store) string {
	t.Helper()
	state := struct {
		Top    []AggregateSnapshot
		Events []Regression
		Stats  Stats
	}{s.Top(SortFrequent, 0), s.Regressions(), s.Stats()}
	// Segment/byte counts legitimately differ before and after a reopen
	// only if recovery rewrote data, which is exactly what must not
	// happen, so they stay in the comparison.
	b, err := json.MarshalIndent(state, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRestartReproducesAggregates pins the acceptance criterion: a seeded
// workload replayed from recovered segments yields identical
// per-fingerprint aggregates, drift events and counters.
func TestRestartReproducesAggregates(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	clock := int64(1000)
	// Two healthy shapes, one drifting shape (latency regression), plus
	// error-mix records and a traced record with per-op metrics.
	for i := 0; i < 12; i++ {
		clock++
		s.Append(okRec("MATCH (a:A) RETURN a", clock, 1_000_000, 1.2))
		clock++
		s.Append(okRec("MATCH (b:B) RETURN b", clock, 2_000_000, 1.1))
	}
	for i := 0; i < 8; i++ {
		clock++
		lat := int64(1_000_000)
		if i >= 4 {
			lat = 50_000_000 // drift: 50x the baseline
		}
		s.Append(okRec("MATCH (c:C)-[:e]->(d) RETURN d", clock, lat, 1.0))
	}
	clock++
	rec := okRec("MATCH (a:A) RETURN a", clock, 1_500_000, 3.0)
	rec.Ops = []OpMetrics{
		{Op: "Project(a)", Depth: 0, Est: 10, HasEstimate: true, Act: 5, QError: 2, MemBytes: 640, WallNs: 1000, SimNs: 2000},
		{Op: "ScanVertices(:A)", Depth: 1, Est: 5, HasEstimate: true, Act: 5, QError: 1, MemBytes: 320, WallNs: 500, SimNs: 800},
	}
	s.Append(rec)
	clock++
	fail := okRec("MATCH (a:A) RETURN a", clock, 9_000_000, 0)
	fail.Outcome = OutcomeMemoryKill
	fail.Rows = 0
	fail.Bucket = SelectivityBucket(0)
	s.Append(fail)

	if s.RegressionCount() == 0 {
		t.Fatal("drifting shape was not flagged before restart")
	}
	before := storeStateJSON(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	after := storeStateJSON(t, s2)
	if before != after {
		t.Errorf("restart changed aggregates:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

// TestTornTailRecovery pins crash safety: a partial final record (the
// write was cut mid-append) is dropped on reopen and every prior record
// survives byte-exact.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		s.Append(okRec("MATCH (a) RETURN a", i, 1_000_000, 1))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "seg-00000000.jsonl")
	intact, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn record with no newline.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":99,"fingerprint":"dead","query":"MATCH (torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Records(); got != 5 {
		t.Errorf("recovered %d records, want 5", got)
	}
	recovered, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if string(recovered) != string(intact) {
		t.Errorf("torn-tail recovery did not restore the intact bytes:\nwant %d bytes, got %d", len(intact), len(recovered))
	}
	agg, recs, ok := s2.Fingerprint(QueryFingerprint("MATCH (a) RETURN a"))
	if !ok || agg.Count != 5 || len(recs) != 5 {
		t.Errorf("aggregate after torn-tail recovery: ok=%v count=%d recs=%d, want 5/5", ok, agg.Count, len(recs))
	}
	// The store keeps appending cleanly after recovery.
	s2.Append(okRec("MATCH (a) RETURN a", 100, 1_000_000, 1))
	if got := s2.Records(); got != 6 {
		t.Errorf("append after recovery: %d records, want 6", got)
	}
}

// TestRotationAndPruning: small segment and total bounds force rotation
// and oldest-segment deletion; the store never exceeds its byte budget by
// more than one active segment.
func TestRotationAndPruning(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.MaxSegmentBytes = 2048
	opts.MaxTotalBytes = 8192
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := int64(0); i < 200; i++ {
		s.Append(okRec(fmt.Sprintf("MATCH (a:L%d) RETURN a", i%7), i+1, 1_000_000, 1))
	}
	st := s.Stats()
	if st.Segments < 2 {
		t.Errorf("expected rotation, got %d segment(s)", st.Segments)
	}
	if st.Bytes > opts.MaxTotalBytes+opts.MaxSegmentBytes {
		t.Errorf("store size %d exceeds budget %d", st.Bytes, opts.MaxTotalBytes)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != st.Segments {
		t.Errorf("disk has %d files, stats say %d segments", len(entries), st.Segments)
	}
	// The oldest segment must be gone.
	if _, err := os.Stat(filepath.Join(dir, "seg-00000000.jsonl")); !os.IsNotExist(err) {
		t.Errorf("oldest segment still present after pruning (err=%v)", err)
	}
}

// TestLatencyRegression drives the detector through onset and clearing.
func TestLatencyRegression(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	opts := testOpts(dir)
	opts.Metrics = reg
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := "MATCH (a:Person) RETURN a"
	clock := int64(0)
	push := func(lat int64) {
		clock++
		s.Append(okRec(q, clock, lat, 0))
	}
	// 4 fill the window, 4 more age into the baseline.
	for i := 0; i < 8; i++ {
		push(1_000_000)
	}
	if s.RegressionCount() != 0 {
		t.Fatal("flagged without drift")
	}
	// Drift: 10x latency. After 4 slow records the window median is slow.
	for i := 0; i < 4; i++ {
		push(10_000_000)
	}
	if got := s.RegressionCount(); got != 1 {
		t.Fatalf("onsets = %d, want 1", got)
	}
	events := s.Regressions()
	if len(events) != 1 || events[0].Kind != "latency" || events[0].Factor < 2 {
		t.Fatalf("unexpected event %+v", events)
	}
	if events[0].Fingerprint != QueryFingerprint(q) {
		t.Errorf("event fingerprint %q, want %q", events[0].Fingerprint, QueryFingerprint(q))
	}
	// Staying slow is the same incident: no second onset.
	for i := 0; i < 4; i++ {
		push(10_000_000)
	}
	if got := s.RegressionCount(); got != 1 {
		t.Fatalf("re-flagged an active regression: onsets = %d", got)
	}
	agg, _, _ := s.Fingerprint(QueryFingerprint(q))
	if len(agg.Regressed) != 1 || agg.Regressed[0] != "latency" {
		t.Fatalf("aggregate regressed = %v, want [latency]", agg.Regressed)
	}
	// The exposition counter moved with it.
	if !strings.Contains(reg.Exposition(), "gradoop_qstore_regressions 1") {
		t.Error("gradoop_qstore_regressions counter not at 1 in exposition")
	}
	// Recovery clears the active flag (the baseline absorbs the slow
	// samples; recent returns to baseline speed). Push enough fast
	// records for the slow ones to age out and the baseline median to
	// stay fast-dominated.
	for i := 0; i < 40; i++ {
		push(1_000_000)
	}
	agg, _, _ = s.Fingerprint(QueryFingerprint(q))
	if len(agg.Regressed) != 0 {
		t.Errorf("regression did not clear: %v", agg.Regressed)
	}
}

// TestQErrorRegression flags estimate drift (the Zipf-head scenario: a
// template plan whose estimates match the baseline traffic but collapse
// for a hot parameter).
func TestQErrorRegression(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := "MATCH (a:Person {name: $name}) RETURN a"
	clock := int64(0)
	push := func(qerr float64) {
		clock++
		s.Append(okRec(q, clock, 1_000_000, qerr))
	}
	for i := 0; i < 8; i++ {
		push(1.2) // healthy estimates
	}
	if s.RegressionCount() != 0 {
		t.Fatal("flagged without drift")
	}
	for i := 0; i < 4; i++ {
		push(30) // the hot-value plan is way off
	}
	events := s.Regressions()
	found := false
	for _, ev := range events {
		if ev.Kind == "qerror" {
			found = true
			if ev.Factor < 2 {
				t.Errorf("qerror factor %v below threshold", ev.Factor)
			}
		}
	}
	if !found {
		t.Fatalf("no qerror event in %+v", events)
	}
}

// TestFingerprintEviction bounds the aggregate map.
func TestFingerprintEviction(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.MaxFingerprints = 8
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Append(okRec(fmt.Sprintf("MATCH (a:L%d) RETURN a", i), int64(i+1), 1000, 1))
	}
	if st := s.Stats(); st.Fingerprints > 8 {
		t.Errorf("aggregates grew to %d, cap 8", st.Fingerprints)
	}
	// The most recent shape survives, the first was evicted.
	if _, _, ok := s.Fingerprint(QueryFingerprint("MATCH (a:L49) RETURN a")); !ok {
		t.Error("most recent fingerprint missing")
	}
	if _, _, ok := s.Fingerprint(QueryFingerprint("MATCH (a:L0) RETURN a")); ok {
		t.Error("oldest fingerprint not evicted")
	}
}

// TestTopSorting covers the three sort orders and the limit.
func TestTopSorting(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	clock := int64(0)
	add := func(q string, n int, lat int64, qerr float64) {
		for i := 0; i < n; i++ {
			clock++
			s.Append(okRec(q, clock, lat, qerr))
		}
	}
	add("MATCH (slow) RETURN slow", 2, 90_000_000, 1.5)
	add("MATCH (hot) RETURN hot", 9, 1_000_000, 1.1)
	add("MATCH (wrong) RETURN wrong", 3, 5_000_000, 40)

	if top := s.Top(SortSlowest, 10); top[0].Query != "MATCH (slow) RETURN slow" {
		t.Errorf("slowest[0] = %q", top[0].Query)
	}
	if top := s.Top(SortFrequent, 10); top[0].Query != "MATCH (hot) RETURN hot" || top[0].Count != 9 {
		t.Errorf("frequent[0] = %q (count %d)", top[0].Query, top[0].Count)
	}
	if top := s.Top(SortQError, 10); top[0].Query != "MATCH (wrong) RETURN wrong" {
		t.Errorf("qerror[0] = %q", top[0].Query)
	}
	if top := s.Top(SortSlowest, 2); len(top) != 2 {
		t.Errorf("limit 2 returned %d", len(top))
	}
}

// TestConcurrentAppendAndRead is the -race harness: writers stream
// records while readers snapshot aggregates, the regression feed and
// stats.
func TestConcurrentAppendAndRead(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(testOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				q := fmt.Sprintf("MATCH (a:W%d) RETURN a", w)
				s.Append(okRec(q, int64(w*perWriter+i+1), int64(1000+i), 1.5))
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Top(SortSlowest, 10)
				s.Fingerprint(QueryFingerprint("MATCH (a:W0) RETURN a"))
				s.Regressions()
				s.Stats()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := s.Records(); got != writers*perWriter {
		t.Errorf("records = %d, want %d", got, writers*perWriter)
	}
}

// BenchmarkAppendDisabled pins the nil-store off switch: the disabled
// append path must be allocation-free (alloc-guard gates it at 0).
func BenchmarkAppendDisabled(b *testing.B) {
	var s *Store
	rec := okRec("MATCH (a:Person) RETURN a", 1, 1_000_000, 1.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Append(rec)
	}
}

// BenchmarkAppendEnabled measures the enabled append path (marshal +
// write + aggregate fold); alloc-guard bounds its allocations.
func BenchmarkAppendEnabled(b *testing.B) {
	s, err := Open(testOpts(b.TempDir()))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	rec := okRec("MATCH (a:Person) RETURN a", 1, 1_000_000, 1.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Time = int64(i + 1)
		s.Append(rec)
	}
}
