package lint

import (
	"go/ast"
	"go/types"

	"gradoop/internal/lint/analysis"
)

// PartitionCaptureAnalyzer flags function literals passed as UDFs to
// per-partition dataflow transformations (Map, Filter, FlatMap, Join
// joiners, ...) that write to variables captured from the enclosing scope.
// Every UDF runs concurrently on one goroutine per partition, so an
// unsynchronized captured write is a data race — exactly the class of the
// Rebalance race fixed in PR 1. Literals that take a mutex (a .Lock() call
// anywhere in the body) are assumed to synchronize their writes and are
// skipped; sync/atomic operations are calls, not assignments, and never
// trigger the check.
var PartitionCaptureAnalyzer = &analysis.Analyzer{
	Name: "partitioncapture",
	Doc:  "flags per-partition UDF closures that mutate captured shared state",
	Run:  runPartitionCapture,
}

// udfFuncs names the dataflow package's transformations whose function
// arguments execute per partition. Every func-typed argument of these calls
// is checked; runParts itself is excluded because its closures are the
// engine's own per-partition writers (policed by costcharge/ctxpoll and
// safe by the one-goroutine-per-index construction).
var udfFuncs = map[string]bool{
	"Map": true, "Filter": true, "FlatMap": true, "MapPartition": true,
	"Join": true, "JoinTagged": true, "CoGroup": true, "GroupBy": true,
	"ReduceByKey": true, "CountByKey": true, "DistinctBy": true,
	"PartitionByKey": true,
	// BulkIteration is deliberately absent: its body runs once per superstep
	// on the coordinating goroutine, so captured writes there are sequential.
}

func runPartitionCapture(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != dataflowPath || !udfFuncs[fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				checkCapturedWrites(pass, fn.Name(), lit)
			}
			return true
		})
	}
	return nil, nil
}

// checkCapturedWrites reports unsynchronized writes to captured variables
// inside a per-partition literal.
func checkCapturedWrites(pass *analysis.Pass, udfOf string, lit *ast.FuncLit) {
	info := pass.TypesInfo
	if usesMutex(info, lit) {
		return
	}
	report := func(pos ast.Node, obj types.Object) {
		pass.Reportf(pos.Pos(),
			"UDF passed to dataflow.%s writes captured variable %q; per-partition UDFs run on concurrent goroutines, so unsynchronized captured writes race (guard with a mutex/atomic or restructure)",
			udfOf, obj.Name())
	}
	checkTarget := func(n ast.Node, target ast.Expr) {
		id := rootIdent(target)
		if id == nil {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || declaredWithin(v, lit) {
			return
		}
		report(n, v)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkTarget(s, lhs)
			}
		case *ast.IncDecStmt:
			checkTarget(s, s.X)
		case *ast.UnaryExpr:
			// Taking the address of a captured variable and handing it out is
			// not itself a write; skip (atomic.AddInt64(&x, 1) stays legal).
		}
		return true
	})
}

// usesMutex reports whether the literal's body contains a Lock/RLock call —
// the conventional sign that its captured writes are deliberately
// synchronized.
func usesMutex(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if name := sel.Sel.Name; name == "Lock" || name == "RLock" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
