package lint

import (
	"go/ast"
	"go/types"

	"gradoop/internal/lint/analysis"
)

// CostChargeAnalyzer keeps the cost model honest: every per-partition
// closure the engine executes through (*Env).runParts must charge the
// simulated cluster — a call to chargeCPU, chargeNet or chargeSpill either
// directly in the closure or in a same-package function it (transitively)
// calls. A stage that moves or produces rows without charging silently
// drifts the simulated runtime away from the GRADOOP/Flink cost heuristic
// the paper's figures are reproduced with.
var CostChargeAnalyzer = &analysis.Analyzer{
	Name: "costcharge",
	Doc:  "flags runParts closures that never charge the cost model",
	Run:  runCostCharge,
}

// chargeFuncs are the Env methods that account simulated cost.
var chargeFuncs = map[string]bool{
	"chargeCPU":   true,
	"chargeNet":   true,
	"chargeSpill": true,
}

func runCostCharge(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	decls := funcDecls(pass.Files, info)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(info, call)
			if !isMethod(fn, dataflowPath, "Env", "runParts") || len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			if !chargesTransitively(info, decls, lit.Body, map[*types.Func]bool{}) {
				pass.Reportf(call.Pos(),
					"per-partition closure passed to runParts never charges the cost model (chargeCPU/chargeNet/chargeSpill); uncharged stages drift the simulated cluster time")
			}
			return true
		})
	}
	return nil, nil
}

// chargesTransitively reports whether body contains a charge* call, either
// directly or inside a same-package function it calls. visited bounds the
// walk on call cycles.
func chargesTransitively(info *types.Info, decls map[*types.Func]*ast.FuncDecl, body ast.Node, visited map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		if chargeFuncs[fn.Name()] && isMethod(fn, dataflowPath, "Env", fn.Name()) {
			found = true
			return false
		}
		if decl, ok := decls[fn]; ok && !visited[fn] && decl.Body != nil {
			visited[fn] = true
			if chargesTransitively(info, decls, decl.Body, visited) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
