package lint

import (
	"go/ast"
	"go/types"

	"gradoop/internal/lint/analysis"
)

// ObsRegisterAnalyzer enforces the telemetry registry's construction
// discipline: obs instruments are created once at setup (session/server
// construction) and captured by the code that records into them. A
// constructor call inside a function literal — the shape of per-partition
// UDFs and other hot-path closures — or inside an HTTP request handler
// re-registers the instrument per invocation: the registry panics on the
// duplicate name on the second call, and even a name that varies per call
// leaks series without bound. Recording (Inc/Add/Observe/With) is free to
// appear anywhere; only creation is pinned to setup.
var ObsRegisterAnalyzer = &analysis.Analyzer{
	Name: "obsregister",
	Doc:  "flags obs instrument construction inside function literals or request handlers",
	Run:  runObsRegister,
}

// instrumentCtors are the Registry methods that register a new instrument.
var instrumentCtors = map[string]bool{
	"NewCounter":      true,
	"NewGaugeFunc":    true,
	"NewCounterVec":   true,
	"NewCounterVec2":  true,
	"NewHistogram":    true,
	"NewHistogramVec": true,
}

func runObsRegister(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkObsCtors(pass, fd.Body, isHandlerDecl(pass.TypesInfo, fd), false)
		}
	}
	return nil, nil
}

// walkObsCtors reports instrument constructor calls under n. inHandler
// marks bodies of request-handler functions, inLit bodies of function
// literals; literals nested in handlers keep both flags, and the literal
// diagnostic wins (it names the tighter scope).
func walkObsCtors(pass *analysis.Pass, n ast.Node, inHandler, inLit bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.FuncLit:
			walkObsCtors(pass, e.Body, inHandler, true)
			return false
		case *ast.CallExpr:
			fn := calleeOf(pass.TypesInfo, e)
			if fn == nil || !instrumentCtors[fn.Name()] || !isMethod(fn, obsPath, "Registry", fn.Name()) {
				return true
			}
			switch {
			case inLit:
				pass.Reportf(e.Pos(),
					"obs instrument %s created inside a function literal; construct instruments once at setup and capture them — per-call registration panics on the duplicate name", fn.Name())
			case inHandler:
				pass.Reportf(e.Pos(),
					"obs instrument %s created inside a request handler; construct instruments once at server setup — per-request registration panics on the duplicate name", fn.Name())
			}
		}
		return true
	})
}

// isHandlerDecl reports whether fd has the http.HandlerFunc shape:
// func(http.ResponseWriter, *http.Request), receiver allowed.
func isHandlerDecl(info *types.Info, fd *ast.FuncDecl) bool {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	if !isNamedType(sig.Params().At(0).Type(), "net/http", "ResponseWriter") {
		return false
	}
	ptr, ok := sig.Params().At(1).Type().(*types.Pointer)
	return ok && isNamedType(ptr.Elem(), "net/http", "Request")
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
