// Package lint implements cypherlint: project-specific static analyzers
// that machine-check the invariants the engine's correctness rests on but
// the compiler cannot see — single-environment dataflow plumbing (envmix),
// race-free per-partition UDFs (partitioncapture), an honest cost model
// (costcharge), a memory governor that sees every materialization
// (memcharge), balanced trace scopes (tracepair), cancellable partition
// loops (ctxpoll), setup-time telemetry registration (obsregister) and a
// single query-store append site (qstorerecord). See
// DESIGN.md decision 12 for why each invariant is load-bearing for the
// reproduction.
//
// Analyzers run over packages loaded by internal/lint/load; findings on
// lines annotated with `//lint:ignore <analyzer> reason` (on the flagged
// line or the line directly above it, staticcheck-style) are suppressed.
package lint

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"gradoop/internal/lint/analysis"
	"gradoop/internal/lint/load"
)

// Analyzers returns the full cypherlint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		EnvMixAnalyzer,
		PartitionCaptureAnalyzer,
		CostChargeAnalyzer,
		MemChargeAnalyzer,
		TracePairAnalyzer,
		CtxPollAnalyzer,
		ObsRegisterAnalyzer,
		QStoreRecordAnalyzer,
		LockOrderAnalyzer,
		GoLeakAnalyzer,
		WireSymAnalyzer,
		CloseOnErrAnalyzer,
	}
}

// Stat is one analyzer's aggregate cost and yield over a run.
type Stat struct {
	Analyzer string
	Time     time.Duration
	Findings int
}

// Stats accumulates per-analyzer wall time and finding counts across
// packages. A nil *Stats skips collection, so drivers that don't report
// timing pass nil.
type Stats struct {
	byName map[string]*Stat
}

func (s *Stats) add(name string, d time.Duration, findings int) {
	if s == nil {
		return
	}
	if s.byName == nil {
		s.byName = map[string]*Stat{}
	}
	st := s.byName[name]
	if st == nil {
		st = &Stat{Analyzer: name}
		s.byName[name] = st
	}
	st.Time += d
	st.Findings += findings
}

// Rows returns the per-analyzer stats sorted by descending wall time.
func (s *Stats) Rows() []Stat {
	if s == nil {
		return nil
	}
	out := make([]Stat, 0, len(s.byName))
	for _, st := range s.byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// Run executes the given analyzers over one checked package and returns the
// surviving findings in position order. Findings suppressed by an ignore
// directive are dropped. Call-graph summaries cover this one package — the
// go vet unit protocol ships one package's sources at a time, so this is
// the precision floor; whole-module drivers use RunProgram for
// cross-package summaries.
func Run(c *load.Checked, analyzers []*analysis.Analyzer) ([]analysis.Finding, error) {
	store := newSummaryStore()
	store.addPackage(c)
	return runPackage(c, analyzers, store, nil)
}

// RunProgram executes the analyzers over every checked package with
// call-graph summaries spanning all of them, so facts about a function in
// one package (it acquires member.mu; it calls WaitGroup.Done) are visible
// when analyzing its callers in another. stats may be nil. Findings are
// returned in load order, position-sorted within each package.
func RunProgram(pkgs []*load.Checked, analyzers []*analysis.Analyzer, stats *Stats) ([]analysis.Finding, error) {
	store := newSummaryStore()
	for _, c := range pkgs {
		store.addPackage(c)
	}
	var out []analysis.Finding
	for _, c := range pkgs {
		fs, err := runPackage(c, analyzers, store, stats)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	return out, nil
}

// runPackage is the shared driver core: one package, one summary store.
func runPackage(c *load.Checked, analyzers []*analysis.Analyzer, store *summaryStore, stats *Stats) ([]analysis.Finding, error) {
	ignores, audit := collectIgnores(c)
	out := append([]analysis.Finding(nil), audit...)
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      c.Fset,
			Files:     c.Files,
			Pkg:       c.Pkg,
			TypesInfo: c.Info,
			Summary:   store.resolve,
		}
		name := a.Name
		count := 0
		pass.Report = func(d analysis.Diagnostic) {
			pos := c.Fset.Position(d.Pos)
			if ignores.match(pos.Filename, pos.Line, name) {
				return
			}
			count++
			out = append(out, analysis.Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		start := time.Now()
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
		stats.add(name, time.Since(start), count)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// ignoreKey addresses one suppressed (file, line).
type ignoreKey struct {
	file string
	line int
}

// ignoreSet maps suppressed positions to the analyzer names they suppress.
type ignoreSet map[ignoreKey][]string

func (s ignoreSet) match(file string, line int, analyzer string) bool {
	for _, name := range s[ignoreKey{file, line}] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}

// knownAnalyzerNames is the registry the ignore audit validates against:
// every analyzer in the suite plus the "all" wildcard. Validating against
// the full registry (not whichever subset the current driver runs) keeps
// single-analyzer analysistest runs from flagging legitimate suppressions
// of other analyzers.
func knownAnalyzerNames() map[string]bool {
	out := map[string]bool{"all": true}
	for _, a := range Analyzers() {
		out[a.Name] = true
	}
	return out
}

// collectIgnores scans the package's comments for lint:ignore directives. A
// directive suppresses the named analyzers (comma-separated, or "all") on
// its own line and on the line immediately below, covering both the
// trailing-comment and line-above placements.
//
// It also audits the directives: a name that matches no registered analyzer
// suppresses nothing — it is a typo'd dead suppression — and comes back as
// a finding under the "lintignore" name. Audit findings are not themselves
// suppressible; fix the name or delete the directive.
func collectIgnores(c *load.Checked) (ignoreSet, []analysis.Finding) {
	out := ignoreSet{}
	var audit []analysis.Finding
	known := knownAnalyzerNames()
	for _, f := range c.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				text := strings.TrimPrefix(cm.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				pos := c.Fset.Position(cm.Pos())
				if len(fields) == 0 {
					audit = append(audit, analysis.Finding{
						Analyzer: "lintignore",
						Pos:      pos,
						Message:  "lint:ignore directive names no analyzer",
					})
					continue
				}
				if len(fields) == 1 {
					audit = append(audit, analysis.Finding{
						Analyzer: "lintignore",
						Pos:      pos,
						Message:  "lint:ignore directive has no reason; write `//lint:ignore <analyzer> <reason>`",
					})
				}
				names := strings.Split(fields[0], ",")
				for _, name := range names {
					if !known[name] {
						audit = append(audit, analysis.Finding{
							Analyzer: "lintignore",
							Pos:      pos,
							Message:  "lint:ignore names unknown analyzer " + strconv.Quote(name) + " (dead suppression)",
						})
					}
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := ignoreKey{pos.Filename, line}
					out[key] = append(out[key], names...)
				}
			}
		}
	}
	return out, audit
}
