// Package lint implements cypherlint: project-specific static analyzers
// that machine-check the invariants the engine's correctness rests on but
// the compiler cannot see — single-environment dataflow plumbing (envmix),
// race-free per-partition UDFs (partitioncapture), an honest cost model
// (costcharge), a memory governor that sees every materialization
// (memcharge), balanced trace scopes (tracepair), cancellable partition
// loops (ctxpoll), setup-time telemetry registration (obsregister) and a
// single query-store append site (qstorerecord). See
// DESIGN.md decision 12 for why each invariant is load-bearing for the
// reproduction.
//
// Analyzers run over packages loaded by internal/lint/load; findings on
// lines annotated with `//lint:ignore <analyzer> reason` (on the flagged
// line or the line directly above it, staticcheck-style) are suppressed.
package lint

import (
	"sort"
	"strings"

	"gradoop/internal/lint/analysis"
	"gradoop/internal/lint/load"
)

// Analyzers returns the full cypherlint suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		EnvMixAnalyzer,
		PartitionCaptureAnalyzer,
		CostChargeAnalyzer,
		MemChargeAnalyzer,
		TracePairAnalyzer,
		CtxPollAnalyzer,
		ObsRegisterAnalyzer,
		QStoreRecordAnalyzer,
	}
}

// Run executes the given analyzers over one checked package and returns the
// surviving findings in position order. Findings suppressed by an ignore
// directive are dropped.
func Run(c *load.Checked, analyzers []*analysis.Analyzer) ([]analysis.Finding, error) {
	ignores := collectIgnores(c)
	var out []analysis.Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      c.Fset,
			Files:     c.Files,
			Pkg:       c.Pkg,
			TypesInfo: c.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := c.Fset.Position(d.Pos)
			if ignores.match(pos.Filename, pos.Line, name) {
				return
			}
			out = append(out, analysis.Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// ignoreKey addresses one suppressed (file, line).
type ignoreKey struct {
	file string
	line int
}

// ignoreSet maps suppressed positions to the analyzer names they suppress.
type ignoreSet map[ignoreKey][]string

func (s ignoreSet) match(file string, line int, analyzer string) bool {
	for _, name := range s[ignoreKey{file, line}] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}

// collectIgnores scans the package's comments for lint:ignore directives. A
// directive suppresses the named analyzers (comma-separated, or "all") on
// its own line and on the line immediately below, covering both the
// trailing-comment and line-above placements.
func collectIgnores(c *load.Checked) ignoreSet {
	out := ignoreSet{}
	for _, f := range c.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				text := strings.TrimPrefix(cm.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) == 0 {
					continue
				}
				names := strings.Split(fields[0], ",")
				pos := c.Fset.Position(cm.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := ignoreKey{pos.Filename, line}
					out[key] = append(out[key], names...)
				}
			}
		}
	}
	return out
}
