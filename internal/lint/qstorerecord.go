package lint

import (
	"go/ast"
	"strings"

	"gradoop/internal/lint/analysis"
)

// QStoreRecordAnalyzer pins the query store's exactly-once emission
// contract: every session exit path produces exactly one execution record.
// The session guarantees this structurally — the public Execute is a thin
// wrapper that runs the inner execute and funnels its exit through the
// single append site recordExit — and this analyzer keeps that shape from
// eroding:
//
//   - (*qstore.Store).Append may be called only from qstore itself or from
//     (*Session).recordExit. A second append site would double-record some
//     exit paths (or record paths recordExit already covers).
//   - (*Session).execute may be called only from (*Session).Execute. A
//     bypass caller would complete queries without emitting a record.
//   - (*Session).recordExit may be called only from (*Session).Execute,
//     and Execute must actually call it — one wrapper, one emission.
//
// Test files are exempt: they drive Append directly to build fixtures.
var QStoreRecordAnalyzer = &analysis.Analyzer{
	Name: "qstorerecord",
	Doc:  "enforces the single query-store append site: every session exit path emits exactly one record",
	Run:  runQStoreRecord,
}

func runQStoreRecord(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	inQStore := pass.Pkg.Path() == qstorePath
	inSession := pass.Pkg.Path() == sessionPath
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			host := recvName(fd)
			isExecute := inSession && host == "Session" && fd.Name.Name == "Execute"
			isRecordExit := inSession && host == "Session" && fd.Name.Name == "recordExit"
			calledRecordExit := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(info, call)
				switch {
				case isMethod(fn, qstorePath, "Store", "Append"):
					if !inQStore && !isRecordExit {
						pass.Reportf(call.Pos(),
							"qstore.Store.Append called outside (*Session).recordExit; a second append site breaks the one-record-per-exit-path invariant")
					}
				case isMethod(fn, sessionPath, "Session", "execute"):
					if !isExecute {
						pass.Reportf(call.Pos(),
							"(*Session).execute called outside (*Session).Execute; this path completes queries without emitting a query-store record")
					}
				case isMethod(fn, sessionPath, "Session", "recordExit"):
					calledRecordExit = true
					if !isExecute {
						pass.Reportf(call.Pos(),
							"(*Session).recordExit called outside (*Session).Execute; exit paths funneled elsewhere can double-record")
					}
				}
				return true
			})
			if isExecute && !calledRecordExit {
				pass.Reportf(fd.Pos(),
					"(*Session).Execute never calls recordExit; completed executions leave no query-store record")
			}
		}
	}
	return nil, nil
}

// recvName returns the name of a method's receiver type (pointer peeled),
// or "" for plain functions.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
