package lint

import (
	"go/ast"
	"go/types"

	"gradoop/internal/lint/analysis"
)

// GoLeakAnalyzer requires every spawned goroutine to have a visible
// lifecycle. A goroutine that neither signals a WaitGroup nor touches any
// channel can never be joined or cancelled: nothing observes its exit and
// nothing can tell it to stop — the coordinator/worker class of bug where a
// per-connection or per-job goroutine outlives the query (or the process
// shutdown) it belongs to. The check is over the spawned function's facts:
//
//   - a (*sync.WaitGroup).Done call means a waiter joins it;
//   - any channel operation (send, receive, close, select, range) means it
//     participates in a signalling protocol — this includes <-ctx.Done(),
//     which is how context cancellation reaches a goroutine.
//
// Facts come from the goroutine body itself plus one level of static
// callees via the call-graph summary layer, so `go func() { w.loop(ctx) }`
// is fine when loop selects on ctx.Done(). Unresolvable targets (function
// values, interface methods, cross-package callees with no summary in
// single-package vet runs) are conservatively accepted. Deliberately
// detached goroutines take `//lint:ignore goleak <reason>`. Test files are
// skipped: test goroutines are bounded by the test binary and the -race
// suite owns them.
var GoLeakAnalyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc:  "every goroutine must be joinable (WaitGroup) or cancellable (channel/ctx), or explicitly ignored",
	Run:  runGoLeak,
}

func runGoLeak(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	decls := funcDecls(pass.Files, info)
	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if joined, resolved := goroutineJoined(g.Call, pass, decls); resolved && !joined {
				pass.Reportf(g.Pos(), "goroutine is never joined or cancelled: body has no WaitGroup.Done and no channel operation (join it, select on a done/ctx channel, or //lint:ignore goleak with a reason)")
			}
			return true
		})
	}
	return nil, nil
}

// goroutineJoined reports whether the go statement's function has a
// join/cancel signal (joined) and whether its body could be seen at all
// (resolved). Unresolved targets must not be flagged.
func goroutineJoined(call *ast.CallExpr, pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl) (joined, resolved bool) {
	info := pass.TypesInfo
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return bodyJoined(lit.Body, pass), true
	}
	fn := calleeOf(info, call)
	if fn == nil {
		return false, false
	}
	// Same-package callee: full body available, including one level of its
	// own callees.
	if decl, ok := decls[fn]; ok && decl.Body != nil {
		return bodyJoined(decl.Body, pass), true
	}
	sum := pass.Summary(fn)
	if sum == nil {
		return false, false
	}
	if sum.WGDone || sum.ChanOps {
		return true, true
	}
	return false, true
}

// bodyJoined checks a goroutine body's direct facts plus one level of
// static callees through the summary layer.
func bodyJoined(body *ast.BlockStmt, pass *analysis.Pass) bool {
	info := pass.TypesInfo
	sum := summarize(body, info)
	if sum.WGDone || sum.ChanOps {
		return true
	}
	joined := false
	walkShallow(body, func(n ast.Node) {
		if joined {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return
		}
		if s := pass.Summary(fn); s != nil && (s.WGDone || s.ChanOps) {
			joined = true
		}
	})
	return joined
}
