package lint

import (
	"go/ast"
	"go/types"

	"gradoop/internal/lint/analysis"
)

// CtxPollAnalyzer guards the engine's cancellation latency: inside a
// per-partition execution context — a closure passed to (*Env).runParts or
// a UDF passed to dataflow.MapPartition — every range loop over
// partition-sized data must poll cancellation via (*Env).aborted (the
// engine's cancelCheckMask idiom). An unpolled loop keeps a worker spinning
// after the job's context expired, breaking the timeout guarantees the
// fault-tolerance layer (PR 1) established.
//
// Loops over slice-of-slice values (the worker-count-sized partition
// vectors, e.g. `for p := range out`) are exempt: their trip count is the
// worker count, not the data size.
var CtxPollAnalyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "flags per-partition range loops that never poll cancellation",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(info, call)
			var lit *ast.FuncLit
			switch {
			case isMethod(fn, dataflowPath, "Env", "runParts") && len(call.Args) >= 2:
				lit, _ = ast.Unparen(call.Args[1]).(*ast.FuncLit)
			case isPkgFunc(fn, dataflowPath, "MapPartition") && len(call.Args) >= 2:
				lit, _ = ast.Unparen(call.Args[1]).(*ast.FuncLit)
			}
			if lit == nil {
				return true
			}
			checkPolling(pass, info, lit)
			return true
		})
	}
	return nil, nil
}

// checkPolling reports data-sized range loops in the literal whose bodies
// never call aborted.
func checkPolling(pass *analysis.Pass, info *types.Info, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !dataSizedRange(info, loop.X) {
			return true
		}
		if !pollsAborted(info, loop.Body) {
			pass.Reportf(loop.Pos(),
				"per-partition range loop never polls cancellation (env.aborted); a cancelled or failed job keeps this worker spinning")
		}
		return true
	})
}

// dataSizedRange reports whether the ranged expression iterates over
// element data rather than over the worker-count-sized partition vector: a
// slice or map whose element type is not itself a slice.
func dataSizedRange(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	var elem types.Type
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = t.Elem()
	case *types.Map:
		elem = t.Elem()
	default:
		return false
	}
	if _, isSlices := elem.Underlying().(*types.Slice); isSlices {
		return false
	}
	return true
}

// pollsAborted reports whether the loop body contains a call to the Env's
// aborted poll (which checks both the failure flag and the job context).
func pollsAborted(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeOf(info, call); isMethod(fn, dataflowPath, "Env", "aborted") {
			found = true
			return false
		}
		return true
	})
	return found
}
