package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gradoop/internal/lint/analysis"
)

// WireSymAnalyzer machine-checks encode/decode symmetry in the binary wire
// layer (internal/wire and internal/cluster's frame protocol). The codec is
// hand-rolled: nothing but convention keeps AppendVertex's field order and
// ReadVertex's field order in sync, and a drift silently corrupts every
// field after the divergence point. Two rules:
//
//  1. Paired codecs read and write the same fields in the same order. A
//     pair is matched by name (AppendX/ReadX, EncodeX/DecodeX,
//     encodeX/decodeX, writeX/readX). The encoder's sequence is the source
//     order of field reads from its struct parameter (reads inside
//     len/cap don't consume bytes and are skipped); the decoder's is the
//     source order of field writes into a value of that struct type,
//     whether by assignment or composite-literal key. Pairs where either
//     side has no struct fields (primitive codecs like AppendUint32) are
//     out of scope.
//
//  2. Every frame-type constant (a byte-typed `frameX` package constant)
//     is both written by some writer (passed to a call) and matched by
//     some reader (a case clause or ==/!= comparison) — a frame type that
//     is sent but never dispatched is a protocol hole, and one matched but
//     never sent is dead protocol.
//
// The analyzer is gated to the wire-layer packages; generic business
// structs elsewhere are not codecs and their field access order is
// meaningless.
var WireSymAnalyzer = &analysis.Analyzer{
	Name: "wiresym",
	Doc:  "encode/decode pairs must agree on field order; every frame type needs both a writer and a reader",
	Run:  runWireSym,
}

// wirePackages are the packages whose codecs the symmetry rules govern.
// trace and obs joined when the telemetry plane gave them wire codecs (the
// span set and the registry snapshot shipped in cluster telemetry bundles).
var wirePackages = map[string]bool{
	"gradoop/internal/wire":    true,
	"gradoop/internal/cluster": true,
	"gradoop/internal/trace":   true,
	"gradoop/internal/obs":     true,
}

// decodePrefixes maps a decoder name prefix to the encoder prefixes it
// pairs with, tried in order.
var decodePrefixes = map[string][]string{
	"Read":   {"Append", "Write", "Encode"},
	"Decode": {"Encode", "Append"},
	"decode": {"encode", "append", "write"},
	"read":   {"write", "encode", "append"},
}

func runWireSym(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	// Test variants of a package ("pkg [pkg.test]") are the same source.
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	if !wirePackages[path] {
		return nil, nil
	}
	checkCodecPairs(pass)
	checkFrameConsts(pass)
	return nil, nil
}

// checkCodecPairs matches encoder/decoder declarations by name and
// compares their field sequences.
func checkCodecPairs(pass *analysis.Pass) {
	info := pass.TypesInfo
	byName := map[string]*ast.FuncDecl{}
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		if fd.Recv == nil && !isTestFile(pass, fd.Pos()) {
			byName[fd.Name.Name] = fd
		}
	})
	for name, dec := range byName {
		var enc *ast.FuncDecl
		var suffix string
		for prefix, encPrefixes := range decodePrefixes {
			if !strings.HasPrefix(name, prefix) || name == prefix {
				continue
			}
			suffix = strings.TrimPrefix(name, prefix)
			for _, ep := range encPrefixes {
				if e, ok := byName[ep+suffix]; ok {
					enc = e
					break
				}
			}
			break
		}
		if enc == nil {
			continue
		}
		subject, named := encodeSubject(enc, info)
		if subject == nil {
			continue
		}
		encSeq := encodeFieldSeq(enc, subject, info)
		decSeq := decodeFieldSeq(dec, named, info)
		if len(encSeq) == 0 || len(decSeq) == 0 {
			continue
		}
		if !equalSeq(encSeq, decSeq) {
			pass.Reportf(dec.Name.Pos(),
				"codec asymmetry: %s reads %s fields in order [%s] but %s writes [%s]",
				dec.Name.Name, named.Obj().Name(), strings.Join(decSeq, " "),
				enc.Name.Name, strings.Join(encSeq, " "))
		}
	}
}

// encodeSubject finds the encoder's struct parameter: the first parameter
// whose (pointer-dereferenced) type is a named struct.
func encodeSubject(fd *ast.FuncDecl, info *types.Info) (*types.Var, *types.Named) {
	if fd.Type.Params == nil {
		return nil, nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, ok := info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			t := v.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				continue
			}
			if _, ok := named.Underlying().(*types.Struct); ok {
				return v, named
			}
		}
	}
	return nil, nil
}

// encodeFieldSeq lists, in source order without repeats, the fields of
// subject the encoder reads. Reads inside len/cap arguments are skipped —
// they size buffers, they don't serialize.
func encodeFieldSeq(fd *ast.FuncDecl, subject *types.Var, info *types.Info) []string {
	var seq []string
	seen := map[string]bool{}
	inLenCap := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					for _, a := range call.Args {
						inLenCap[a] = true
					}
				}
			}
		}
		if inLenCap[n] {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || info.Uses[base] != subject {
			return true
		}
		if !seen[sel.Sel.Name] {
			seen[sel.Sel.Name] = true
			seq = append(seq, sel.Sel.Name)
		}
		return true
	})
	return seq
}

// decodeFieldSeq lists, in source order without repeats, the fields of the
// named struct type the decoder writes: `x.Field = ...` assignments and
// composite-literal keys (or positional elements) of that type.
func decodeFieldSeq(fd *ast.FuncDecl, named *types.Named, info *types.Info) []string {
	type write struct {
		pos  token.Pos
		name string
	}
	var writes []write
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				selection := info.Selections[sel]
				if selection == nil || !sameNamed(selection.Recv(), named) {
					continue
				}
				writes = append(writes, write{pos: sel.Pos(), name: sel.Sel.Name})
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok || !sameNamed(tv.Type, named) {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						writes = append(writes, write{pos: el.Pos(), name: key.Name})
					}
				} else if i < st.NumFields() {
					writes = append(writes, write{pos: el.Pos(), name: st.Field(i).Name()})
				}
			}
		}
		return true
	})
	var seq []string
	seen := map[string]bool{}
	for _, w := range writes {
		if !seen[w.name] {
			seen[w.name] = true
			seq = append(seq, w.name)
		}
	}
	return seq
}

// sameNamed reports whether t (pointer-dereferenced) is the named type.
func sameNamed(t types.Type, named *types.Named) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// constUsage tracks which protocol sides use one frame constant.
type constUsage struct {
	written bool
	read    bool
}

// checkFrameConsts verifies every byte-typed frame-type constant appears on
// both sides of the protocol: written (passed to a call) and read (matched
// in a case clause or ==/!= comparison).
func checkFrameConsts(pass *analysis.Pass) {
	info := pass.TypesInfo
	consts := map[*types.Const]*constUsage{}
	order := []*types.Const{}
	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for _, name := range vs.Names {
				c, ok := info.Defs[name].(*types.Const)
				if !ok || !strings.HasPrefix(c.Name(), "frame") {
					continue
				}
				if basic, ok := c.Type().(*types.Basic); !ok || basic.Kind() != types.Uint8 {
					continue
				}
				consts[c] = &constUsage{}
				order = append(order, c)
			}
			return true
		})
	}
	if len(consts) == 0 {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f.Pos()) {
			continue
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if id, ok := n.(*ast.Ident); ok && len(stack) > 0 {
				if c, ok := info.Uses[id].(*types.Const); ok {
					if u := consts[c]; u != nil {
						classifyConstUse(id, stack, u)
					}
				}
			}
			stack = append(stack, n)
			return true
		})
	}
	for _, c := range order {
		u := consts[c]
		if !u.read {
			pass.Reportf(c.Pos(), "frame type %s has no reader: it never appears in a frame-type switch case or comparison", c.Name())
		}
		if !u.written {
			pass.Reportf(c.Pos(), "frame type %s has no writer: it is never passed to a frame-writing call", c.Name())
		}
	}
}

// classifyConstUse decides whether one use of a frame const is a writer
// side (argument to a call, value in a struct/assignment feeding a writer)
// or a reader side (case clause, equality comparison).
func classifyConstUse(id *ast.Ident, stack []ast.Node, u *constUsage) {
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.CaseClause:
		u.read = true
	case *ast.BinaryExpr:
		if p.Op == token.EQL || p.Op == token.NEQ {
			u.read = true
		}
	case *ast.CallExpr:
		for _, a := range p.Args {
			if a == ast.Expr(id) {
				u.written = true
			}
		}
	case *ast.KeyValueExpr:
		if p.Value == ast.Expr(id) {
			u.written = true
		}
	case *ast.AssignStmt:
		for _, r := range p.Rhs {
			if r == ast.Expr(id) {
				u.written = true
			}
		}
	case *ast.ReturnStmt:
		u.written = true
	}
}
