package lint

import (
	"go/ast"
	"go/types"

	"gradoop/internal/lint/analysis"
)

// EnvMixAnalyzer flags binary dataflow transformations (Union, Join,
// JoinTagged, CoGroup) whose operands provably come from different
// execution environments — two distinct NewEnv/NewEnvContext call sites
// flowing into one combination. The engine catches this at runtime with
// ErrEnvMismatch and fails the job; envmix catches the same class at
// compile time, before a mixed-environment pipeline ever runs. The check
// is intraprocedural and conservative: it only reports when both operands'
// environment origins are known and distinct.
var EnvMixAnalyzer = &analysis.Analyzer{
	Name: "envmix",
	Doc:  "flags combining Datasets created on provably different dataflow Envs",
	Run:  runEnvMix,
}

// binaryDataflowFuncs maps the binary transformations to the positional
// indices of their two dataset operands.
var binaryDataflowFuncs = map[string][2]int{
	"Union":      {0, 1},
	"Join":       {0, 1},
	"JoinTagged": {0, 1},
	"CoGroup":    {0, 1},
}

// datasetSourceFuncs create a dataset from an Env passed as the first
// argument.
var datasetSourceFuncs = map[string]bool{
	"FromSlice":      true,
	"FromPartitions": true,
	"Empty":          true,
}

// datasetDeriveFuncs derive a dataset from the dataset passed as the first
// argument, preserving its environment.
var datasetDeriveFuncs = map[string]bool{
	"Map": true, "Filter": true, "FlatMap": true, "MapPartition": true,
	"Rebalance": true, "PartitionByKey": true, "DistinctBy": true,
	"Distinct": true, "ReduceByKey": true, "CountByKey": true,
	"GroupBy": true, "BulkIteration": true,
	// The binary ops derive from their left operand.
	"Union": true, "Join": true, "JoinTagged": true, "CoGroup": true,
}

func runEnvMix(pass *analysis.Pass) (any, error) {
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		envMixFunc(pass, fd.Body)
	})
	return nil, nil
}

// envMixFunc runs the per-function origin tracking. Origins are identified
// by the position of the NewEnv call that created them; variables holding
// envs or datasets inherit origins through simple assignments in source
// order, which covers the straight-line construction code the engine's
// callers write.
func envMixFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	envOrigin := map[types.Object]ast.Node{} // env var -> creating NewEnv call
	dsOrigin := map[types.Object]ast.Node{}  // dataset var -> creating NewEnv call

	// originOf resolves the environment origin of an expression that
	// evaluates to a *dataflow.Env or *dataflow.Dataset, or nil if unknown.
	var originOf func(expr ast.Expr) ast.Node
	originOf = func(expr ast.Expr) ast.Node {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				return nil
			}
			if o, ok := envOrigin[obj]; ok {
				return o
			}
			if o, ok := dsOrigin[obj]; ok {
				return o
			}
			return nil
		case *ast.CallExpr:
			fn := calleeOf(info, e)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != dataflowPath {
				return nil
			}
			switch {
			case fn.Name() == "NewEnv" || fn.Name() == "NewEnvContext":
				return e
			case datasetSourceFuncs[fn.Name()] && len(e.Args) > 0:
				return originOf(e.Args[0])
			case datasetDeriveFuncs[fn.Name()] && len(e.Args) > 0:
				return originOf(e.Args[0])
			}
			return nil
		}
		return nil
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			if len(stmt.Lhs) != len(stmt.Rhs) {
				return true
			}
			for i, lhs := range stmt.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				rhs := stmt.Rhs[i]
				// NewEnv / NewEnvContext results establish env origins; any
				// dataset-producing expression establishes dataset origins.
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if fn := calleeOf(info, call); fn != nil &&
						fn.Pkg() != nil && fn.Pkg().Path() == dataflowPath &&
						(fn.Name() == "NewEnv" || fn.Name() == "NewEnvContext") {
						envOrigin[obj] = call
						continue
					}
				}
				if o := originOf(rhs); o != nil {
					dsOrigin[obj] = o
				}
			}
		case *ast.CallExpr:
			fn := calleeOf(info, stmt)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != dataflowPath {
				return true
			}
			args, ok := binaryDataflowFuncs[fn.Name()]
			if !ok || len(stmt.Args) <= args[1] {
				return true
			}
			left := originOf(stmt.Args[args[0]])
			right := originOf(stmt.Args[args[1]])
			if left != nil && right != nil && left != right {
				lp := pass.Fset.Position(left.Pos())
				rp := pass.Fset.Position(right.Pos())
				pass.Reportf(stmt.Pos(),
					"operands of dataflow.%s belong to different environments (created at %s:%d and %s:%d); this fails at runtime with ErrEnvMismatch",
					fn.Name(), lp.Filename, lp.Line, rp.Filename, rp.Line)
			}
		}
		return true
	})
}
