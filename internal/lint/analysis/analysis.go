// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library. The
// repo's toolchain environment is hermetic (no module downloads), so the
// project's analyzers — cypherlint — are written against this API instead.
// It deliberately mirrors the upstream shape (Analyzer, Pass, Diagnostic)
// so the analyzers could be ported to the real framework by changing one
// import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name identifies the analyzer in
// diagnostics and //lint:ignore directives; Doc is a short description whose
// first line is used as a summary; Run performs the check on one package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// Pass gives an analyzer access to one type-checked package. The same
// package is presented to every analyzer; passes must not mutate it.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)

	// Summary resolves per-function facts for static callees — the
	// call-graph layer the flow-sensitive analyzers (lockorder, goleak)
	// consult to follow effects across function and package boundaries.
	// The driver installs it: in whole-module runs it spans every package
	// loaded through `go list -export`; in single-package runs (the vet
	// unit protocol ships one package's sources at a time) it covers the
	// package under analysis. nil results mean "no facts" and callers must
	// stay conservative.
	Summary func(*types.Func) *FuncSummary
}

// FuncSummary is the exported fact set of one function body, computed once
// per function over its direct statements (nested function literals are
// separate scopes and deliberately not folded in).
type FuncSummary struct {
	// ChanOps: the body performs a channel operation — send, receive,
	// close, select, or range over a channel. For goleak this is the
	// signature of a goroutine with a lifecycle (it can be signalled).
	ChanOps bool
	// WGDone: the body calls (*sync.WaitGroup).Done — the goroutine is
	// joined by a waiter.
	WGDone bool
	// Acquires lists the lock keys (package-qualified "pkg.Type.field"
	// paths, see lockorder) the body acquires via Lock/RLock.
	Acquires []string
	// Blocks describes the first potentially-blocking operation in the
	// body (channel op, net.Conn I/O, time.Sleep, WaitGroup.Wait), empty
	// if none. Calling a function that Blocks while holding a lock is a
	// lockorder finding.
	Blocks string
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a diagnostic resolved to its file position and originating
// analyzer — the driver-level result type shared by cmd/cypherlint and the
// in-process test harness.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col: [analyzer] message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}
