package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody wraps a statement list in a function and returns its body.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	b, err := parseBodySrc(body)
	if err != nil {
		t.Fatalf("parsing fixture body: %v", err)
	}
	return b
}

func parseBodySrc(body string) (*ast.BlockStmt, error) {
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body, nil
		}
	}
	return &ast.BlockStmt{}, nil
}

// checkInvariants asserts the structural properties every CFG must hold,
// shared between the golden tests and the fuzz target: entry/exit are the
// first two blocks, the edge lists are symmetric, indices match positions,
// and every block is either reachable from the entry or reported by
// Unreachable.
func checkInvariants(t *testing.T, cfg *CFG) {
	t.Helper()
	if len(cfg.Blocks) < 2 {
		t.Fatalf("CFG has %d blocks, want at least entry+exit", len(cfg.Blocks))
	}
	if cfg.Entry != cfg.Blocks[0] || cfg.Entry.Kind != "entry" {
		t.Fatalf("Blocks[0] is not the entry (kind %q)", cfg.Blocks[0].Kind)
	}
	if cfg.Exit != cfg.Blocks[1] || cfg.Exit.Kind != "exit" {
		t.Fatalf("Blocks[1] is not the exit (kind %q)", cfg.Blocks[1].Kind)
	}
	for i, b := range cfg.Blocks {
		if b.Index != i {
			t.Fatalf("block at position %d has Index %d", i, b.Index)
		}
		for _, s := range b.Succs {
			if !hasEdge(s.Preds, b) {
				t.Fatalf("edge b%d->b%d missing from b%d.Preds", b.Index, s.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !hasEdge(p.Succs, b) {
				t.Fatalf("edge b%d->b%d missing from b%d.Succs", p.Index, b.Index, p.Index)
			}
		}
	}
	reachable := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if reachable[b] {
			return
		}
		reachable[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(cfg.Entry)
	unreachable := map[*Block]bool{}
	for _, b := range cfg.Unreachable() {
		unreachable[b] = true
	}
	for _, b := range cfg.Blocks {
		if reachable[b] == unreachable[b] {
			t.Fatalf("b%d (%s): reachable=%v but Unreachable reports %v",
				b.Index, b.Kind, reachable[b], unreachable[b])
		}
	}
}

func hasEdge(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

// TestCFGGolden pins the block structure BuildCFG produces for the shapes
// the flow analyzers depend on. The golden form is CFG.String(): one line
// per block with kind, node count and sorted successor indices. A diff here
// means the builder changed shape — update deliberately, because lockorder
// and closeonerr path-walks key on these edges.
func TestCFGGolden(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{
			name: "branch",
			body: `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
use(x)`,
			want: `b0 entry nodes=2 ->[2 3]
b1 exit nodes=0 ->[]
b2 if.then nodes=1 ->[4]
b3 if.else nodes=1 ->[4]
b4 if.join nodes=1 ->[1]
`,
		},
		{
			name: "loop",
			body: `
for i := 0; i < 10; i++ {
	if i == 3 {
		continue
	}
	if i == 7 {
		break
	}
	use(i)
}
use(0)`,
			want: `b0 entry nodes=1 ->[2]
b1 exit nodes=0 ->[]
b2 for.head nodes=1 ->[4 5]
b3 for.post nodes=1 ->[2]
b4 for.done nodes=1 ->[1]
b5 for.body nodes=1 ->[6 7]
b6 if.then nodes=1 ->[3]
b7 if.join nodes=1 ->[8 9]
b8 if.then nodes=1 ->[4]
b9 if.join nodes=1 ->[3]
`,
		},
		{
			name: "defer",
			body: `
f, err := open()
if err != nil {
	return
}
defer f.Close()
use(f)`,
			want: `b0 entry nodes=2 ->[2 3]
b1 exit nodes=0 ->[]
b2 if.then nodes=1 ->[1]
b3 if.join nodes=2 ->[1]
`,
		},
		{
			name: "labeled-break",
			body: `
outer:
for i := 0; i < 4; i++ {
	for j := 0; j < 4; j++ {
		if bad(i, j) {
			break outer
		}
		if skip(i, j) {
			continue outer
		}
	}
}
use(0)`,
			want: `b0 entry nodes=0 ->[2]
b1 exit nodes=0 ->[]
b2 label.outer nodes=1 ->[3]
b3 for.head nodes=1 ->[5 6]
b4 for.post nodes=1 ->[3]
b5 for.done nodes=1 ->[1]
b6 for.body nodes=1 ->[7]
b7 for.head nodes=1 ->[9 10]
b8 for.post nodes=1 ->[7]
b9 for.done nodes=0 ->[4]
b10 for.body nodes=1 ->[11 12]
b11 if.then nodes=1 ->[5]
b12 if.join nodes=1 ->[13 14]
b13 if.then nodes=1 ->[4]
b14 if.join nodes=0 ->[8]
`,
		},
		{
			name: "select",
			body: `
select {
case v := <-in:
	use(v)
case out <- 1:
	return
}
use(0)`,
			want: `b0 entry nodes=1 ->[3 4]
b1 exit nodes=0 ->[]
b2 switch.join nodes=1 ->[1]
b3 select.comm nodes=2 ->[2]
b4 select.comm nodes=2 ->[1]
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := BuildCFG(parseBody(t, tc.body))
			checkInvariants(t, cfg)
			if got := cfg.String(); got != tc.want {
				t.Errorf("CFG mismatch:\n--- got ---\n%s--- want ---\n%s", got, tc.want)
			}
		})
	}
}

// TestCFGDefers checks defers are collected in source order and not
// duplicated onto exit edges.
func TestCFGDefers(t *testing.T) {
	cfg := BuildCFG(parseBody(t, `
defer a()
if cond() {
	defer b()
	return
}
defer c()`))
	checkInvariants(t, cfg)
	if len(cfg.Defers) != 3 {
		t.Fatalf("got %d defers, want 3", len(cfg.Defers))
	}
	for i := 1; i < len(cfg.Defers); i++ {
		if cfg.Defers[i].Pos() <= cfg.Defers[i-1].Pos() {
			t.Fatalf("defers out of source order at %d", i)
		}
	}
}

// FuzzCFGBuild pins the builder's safety contract: for any syntactically
// valid function body — including semantically garbage ones — BuildCFG must
// not panic, and the resulting graph must satisfy the structural invariants
// (consistent edges, every block reachable or reported by Unreachable).
func FuzzCFGBuild(f *testing.F) {
	seeds := []string{
		"x := 1\nif x > 0 { x = 2 } else { x = 3 }",
		"for i := 0; i < 10; i++ { if i == 3 { continue }; if i == 7 { break } }",
		"defer f.Close()\nreturn",
		"outer:\nfor { for { break outer } }",
		"switch x {\ncase 1:\n\tfallthrough\ncase 2:\n\treturn\ndefault:\n}",
		"select {\ncase <-ch:\ndefault:\n}",
		"goto done\nx()\ndone:\ny()",
		"for range ch { panic(1) }",
		"L:\n\tgoto L",
		"break\ncontinue\nfallthrough",
		"switch v := x.(type) {\ncase int:\n\tuse(v)\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		blk, err := parseBodySrc(body)
		if err != nil {
			t.Skip()
		}
		cfg := BuildCFG(blk)
		checkInvariants(t, cfg)
	})
}
