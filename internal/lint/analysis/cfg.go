// Control-flow graphs over go/ast function bodies. The original cypherlint
// analyzers were purely syntactic AST walks, which is blind to exactly the
// bug class the distributed subsystems (internal/cluster, internal/wire)
// grew: a lock released on one branch but not another, a connection closed
// on the happy path but leaked on an early error return. BuildCFG turns a
// function body into basic blocks with explicit branch, loop, switch,
// select, labeled-break/continue, goto, return and panic edges so analyzers
// can reason per-path instead of per-node. Defers are collected separately:
// they conceptually run on every exit edge, and most clients (closeonerr's
// release tracking, lockorder's held-set) want them position-aware rather
// than duplicated onto each exit.
//
// The builder is stdlib-only and deliberately smaller than
// x/tools/go/cfg: expressions are not decomposed (short-circuit && / || stay
// inside their statement), because the analyzers built on top key on
// statement-level effects (Lock/Unlock/Close calls, channel operations).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Block is one basic block: statements that execute consecutively, followed
// by edges to every possible successor. Nodes holds statements and, for
// branchy constructs, the governing expression (an if condition, a range
// subject, a switch tag) so dataflow clients see evaluation order.
type Block struct {
	Index int
	// Kind names the construct that created the block ("entry", "exit",
	// "if.then", "for.body", "select.comm", ...) — for golden tests and
	// diagnostics, not for semantic decisions.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is Blocks[0]; Exit is Blocks[1] and collects every return,
	// panic and natural fall-off-the-end edge.
	Entry, Exit *Block
	Blocks      []*Block
	// Defers lists the function's defer statements in source order. A defer
	// runs at every function exit reached after its block executed; clients
	// that care (closeonerr) pair them with dominance along the block order.
	Defers []*ast.DeferStmt
}

// builder carries the construction state: the current block under
// append, the enclosing loop/switch targets for break/continue, and the
// label table for goto and labeled branches.
type builder struct {
	cfg *CFG
	cur *Block

	// breakTo / continueTo are the innermost targets; labels maps a label
	// name to its construct's targets (and, for bare goto, its entry).
	breakTo    *Block
	continueTo *Block
	loopStack  []loopScope
	labels     map[string]*labelTarget
	// pendingLabel, when set, is claimed by the next loop/switch compiled —
	// the label directly precedes its statement.
	pendingLabel *labelTarget
	// gotos are resolved after the walk: forward gotos reference labels not
	// yet seen.
	gotos []pendingGoto
}

type labelTarget struct {
	entry      *Block // where a goto to the label jumps
	breakTo    *Block // valid when the labeled statement is a loop/switch/select
	continueTo *Block // valid when the labeled statement is a loop
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the CFG of a function body. It never fails: malformed
// or unreachable constructs produce unreachable blocks rather than errors
// (the fuzz target pins the no-panic property).
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &builder{
		cfg:    &CFG{},
		labels: map[string]*labelTarget{},
	}
	entry := b.newBlock("entry")
	exit := b.newBlock("exit")
	b.cfg.Entry, b.cfg.Exit = entry, exit
	b.cur = entry
	b.stmtList(body.List)
	// Natural fall off the end of the body.
	b.jump(b.cur, exit)
	// Resolve forward gotos; a goto to a label that never appears gets an
	// exit edge so its block is not a dead end.
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok {
			b.jump(g.from, t.entry)
		} else {
			b.jump(g.from, exit)
		}
	}
	return b.cfg
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump adds the edge from → to, dropping duplicates and edges out of a
// terminated block (nil from).
func (b *builder) jump(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock makes a fresh block current. A nil current block (after a
// return/branch) means subsequent statements are unreachable; they still get
// a block, just with no predecessors.
func (b *builder) startBlock(kind string, preds ...*Block) *Block {
	blk := b.newBlock(kind)
	for _, p := range preds {
		b.jump(p, blk)
	}
	b.cur = blk
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// add appends a node to the current block, creating an unreachable
// continuation block if control already left (code after return).
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.startBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// terminate marks control as having left the current block (return, goto,
// break...): statements that follow are dead until a new block starts.
func (b *builder) terminate() { b.cur = nil }

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		b.startBlock("if.then", condBlk)
		b.stmt(s.Body)
		thenEnd := b.cur
		if s.Else != nil {
			b.startBlock("if.else", condBlk)
			b.stmt(s.Else)
			elseEnd := b.cur
			// The join keeps whatever predecessors still flow (nil ends are
			// no-ops); both arms returning leaves it unreachable, which is
			// exactly what Unreachable() reports.
			join := b.startBlock("if.join")
			b.jump(thenEnd, join)
			b.jump(elseEnd, join)
			b.cur = join
		} else {
			join := b.startBlock("if.join", condBlk)
			b.jump(thenEnd, join)
			b.cur = join
		}

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		pre := b.cur
		head := b.startBlock("for.head", pre)
		if s.Cond != nil {
			b.add(s.Cond)
		}
		post := b.newBlock("for.post")
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		done := b.newBlock("for.done")
		if s.Cond != nil {
			b.jump(head, done)
		}
		b.pushLoop(done, post)
		b.startBlock("for.body", head)
		b.stmt(s.Body)
		b.jump(b.cur, post)
		b.jump(post, head)
		b.popLoop()
		b.cur = done

	case *ast.RangeStmt:
		b.add(s) // the range head: subject evaluation + per-iteration assigns
		head := b.cur
		done := b.newBlock("range.done")
		b.jump(head, done)
		post := b.newBlock("range.post")
		b.jump(post, head)
		b.pushLoop(done, post)
		b.startBlock("range.body", head)
		b.stmt(s.Body)
		b.jump(b.cur, post)
		b.popLoop()
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s, s.Body, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s, s.Body, false)

	case *ast.SelectStmt:
		b.add(s) // the select itself is the blocking point
		b.caseClauses(s, s.Body, true)

	case *ast.LabeledStmt:
		// The labeled statement's entry must be a fresh block so gotos and
		// labeled continue/break have a stable target.
		entry := b.startBlock("label."+s.Label.Name, b.cur)
		t := &labelTarget{entry: entry}
		b.labels[s.Label.Name] = t
		b.labeledStmt(s.Stmt, t)

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if t, ok := b.labels[s.Label.Name]; ok && t.breakTo != nil {
					b.jump(b.cur, t.breakTo)
				} else {
					b.jump(b.cur, b.cfg.Exit)
				}
			} else {
				b.jump(b.cur, b.breakTo)
				if b.breakTo == nil {
					b.jump(b.cur, b.cfg.Exit) // malformed: break outside loop
				}
			}
			b.terminate()
		case token.CONTINUE:
			if s.Label != nil {
				if t, ok := b.labels[s.Label.Name]; ok && t.continueTo != nil {
					b.jump(b.cur, t.continueTo)
				} else {
					b.jump(b.cur, b.cfg.Exit)
				}
			} else {
				b.jump(b.cur, b.continueTo)
				if b.continueTo == nil {
					b.jump(b.cur, b.cfg.Exit)
				}
			}
			b.terminate()
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.terminate()
		case token.FALLTHROUGH:
			// Handled in caseClauses via clause chaining; as a statement it
			// just ends the block (the chain edge is added there).
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cur, b.cfg.Exit)
		b.terminate()

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.jump(b.cur, b.cfg.Exit)
			b.terminate()
		}

	case nil:
		// tolerated: a malformed tree

	default:
		// Assignments, declarations, go statements, sends, inc/dec, empty
		// statements: straight-line.
		b.add(s)
	}
}

// labeledStmt compiles the statement under a label, registering the label's
// break/continue targets when the statement is a loop, switch or select.
func (b *builder) labeledStmt(s ast.Stmt, t *labelTarget) {
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		// Compile the loop, then back-fill the label targets: the loop pushes
		// its own break/continue blocks, which we need to alias. Easiest is
		// to wire the label before compilation via the pending mechanism.
		b.pendingLabel = t
		b.stmt(s)
		b.pendingLabel = nil
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.pendingLabel = t
		b.stmt(s)
		b.pendingLabel = nil
	default:
		b.stmt(s)
	}
}

// pushLoop enters a loop scope: break jumps to done, continue to post.
func (b *builder) pushLoop(done, post *Block) {
	b.loopStack = append(b.loopStack, loopScope{breakTo: b.breakTo, continueTo: b.continueTo})
	b.breakTo, b.continueTo = done, post
	if b.pendingLabel != nil {
		b.pendingLabel.breakTo = done
		b.pendingLabel.continueTo = post
		b.pendingLabel = nil
	}
}

func (b *builder) popLoop() {
	top := b.loopStack[len(b.loopStack)-1]
	b.loopStack = b.loopStack[:len(b.loopStack)-1]
	b.breakTo, b.continueTo = top.breakTo, top.continueTo
}

type loopScope struct {
	breakTo    *Block
	continueTo *Block
}

// caseClauses compiles the body of a switch/type-switch/select: each clause
// is a block branching from the dispatch point; break targets the join.
// fallthrough chains a clause's end into the next clause's body.
func (b *builder) caseClauses(sw ast.Stmt, body *ast.BlockStmt, isSelect bool) {
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.startBlock("unreachable")
	}
	join := b.newBlock("switch.join")

	// break inside a switch/select targets the join (continue passes through
	// to the enclosing loop).
	savedBreak := b.breakTo
	b.breakTo = join
	if b.pendingLabel != nil {
		b.pendingLabel.breakTo = join
		b.pendingLabel = nil
	}

	hasDefault := false
	type compiled struct {
		entry *Block
		end   *Block
		falls bool
	}
	var clauses []compiled
	for _, c := range body.List {
		var stmts []ast.Stmt
		var kind string
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
				kind = "case.default"
			} else {
				kind = "case"
			}
			for _, e := range c.List {
				dispatch.Nodes = append(dispatch.Nodes, e)
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
				kind = "select.default"
			} else {
				kind = "select.comm"
			}
		default:
			continue
		}
		entry := b.startBlock(kind, dispatch)
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(stmts)
		end := b.cur
		falls := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
			}
		}
		if !falls {
			b.jump(end, join)
		}
		clauses = append(clauses, compiled{entry: entry, end: end, falls: falls})
	}
	for i, c := range clauses {
		if c.falls {
			if i+1 < len(clauses) {
				b.jump(c.end, clauses[i+1].entry)
			} else {
				b.jump(c.end, join)
			}
		}
	}
	// Without a default, a switch can match nothing (and a select with no
	// default... always blocks until a comm fires, but an empty select
	// blocks forever — give the dispatch a join edge except for a non-empty
	// select, whose semantics guarantee one clause runs).
	if !hasDefault && (!isSelect || len(clauses) == 0) {
		b.jump(dispatch, join)
	}
	b.breakTo = savedBreak
	b.cur = join
}

// isPanicCall matches the builtin panic(...).
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// Unreachable returns the blocks with no path from the entry — dead code
// and artifacts of terminated branches. The fuzz target asserts every block
// is reachable or reported here.
func (c *CFG) Unreachable() []*Block {
	seen := make([]bool, len(c.Blocks))
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	var out []*Block
	for _, b := range c.Blocks {
		if !seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}

// String renders the CFG in a compact, deterministic text form used by the
// golden tests: one line per block with kind, node count and successor
// indices.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		succs := make([]int, len(b.Succs))
		for i, s := range b.Succs {
			succs[i] = s.Index
		}
		sort.Ints(succs)
		fmt.Fprintf(&sb, "b%d %s nodes=%d ->%v\n", b.Index, b.Kind, len(b.Nodes), succs)
	}
	return sb.String()
}
