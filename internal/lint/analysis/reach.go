// Reaching definitions / last-write analysis over a CFG. The flow-capable
// analyzers need to answer one question precisely: "which assignment does
// this use of x see on this path?" — closeonerr uses it to tell an
// `if err != nil` guard that tests the acquisition's own error apart from
// one that tests some later, unrelated error.
package analysis

import (
	"go/ast"
	"go/types"
)

// DefSite is one definition of a variable: the statement (or range head,
// or parameter list) that wrote it.
type DefSite struct {
	Obj  types.Object
	Node ast.Node // nil for "defined at function entry" (parameters, captures)
}

// Reach holds the fixpoint solution: for every block, the set of
// definitions live at its entry.
type Reach struct {
	cfg *CFG
	// in[b.Index] maps object → set of def nodes reaching b's entry. The
	// nil node stands for entry definitions (params) and unknown writes.
	in []map[types.Object]map[ast.Node]bool
}

// Reaching computes reaching definitions for the function's variables.
// info resolves identifiers; entryObjs seeds definitions live at the entry
// (typically the function's parameters and named results).
func Reaching(cfg *CFG, info *types.Info, entryObjs []types.Object) *Reach {
	r := &Reach{
		cfg: cfg,
		in:  make([]map[types.Object]map[ast.Node]bool, len(cfg.Blocks)),
	}
	for i := range r.in {
		r.in[i] = map[types.Object]map[ast.Node]bool{}
	}
	for _, obj := range entryObjs {
		addDef(r.in[cfg.Entry.Index], obj, nil)
	}

	// Worklist fixpoint: transfer each block (kill old defs of written
	// objects, gen the new site), propagate out-sets into successors with a
	// union merge, requeue on change.
	work := make([]*Block, len(cfg.Blocks))
	copy(work, cfg.Blocks)
	queued := make([]bool, len(cfg.Blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		out := r.transfer(b, info)
		for _, s := range b.Succs {
			if mergeInto(r.in[s.Index], out) && !queued[s.Index] {
				work = append(work, s)
				queued[s.Index] = true
			}
		}
	}
	return r
}

// DefsAt returns the definitions of obj that reach the entry of block b.
// A nil entry in the result means "defined before the body" (parameter) or
// an indirect write the analysis did not model.
func (r *Reach) DefsAt(b *Block, obj types.Object) []ast.Node {
	var out []ast.Node
	for n := range r.in[b.Index][obj] {
		out = append(out, n)
	}
	return out
}

// LastWriteBefore walks block b's nodes up to (not including) stop and
// returns the last definition of obj inside the block, or nil if the block
// does not write it before stop (fall back to DefsAt for the block entry).
func (r *Reach) LastWriteBefore(b *Block, obj types.Object, stop ast.Node, info *types.Info) ast.Node {
	var last ast.Node
	for _, n := range b.Nodes {
		if n == stop {
			break
		}
		for _, w := range defsIn(n, info) {
			if w.Obj == obj {
				last = w.Node
			}
		}
	}
	return last
}

// transfer applies block b's definitions to its in-set, returning the
// out-set (a fresh map).
func (r *Reach) transfer(b *Block, info *types.Info) map[types.Object]map[ast.Node]bool {
	out := map[types.Object]map[ast.Node]bool{}
	for obj, defs := range r.in[b.Index] {
		cp := make(map[ast.Node]bool, len(defs))
		for n := range defs {
			cp[n] = true
		}
		out[obj] = cp
	}
	for _, n := range b.Nodes {
		for _, w := range defsIn(n, info) {
			out[w.Obj] = map[ast.Node]bool{w.Node: true}
		}
	}
	return out
}

// defsIn lists the variable definitions a single CFG node performs:
// assignments and short declarations (plain identifier targets only —
// writes through selectors/indexes are not tracked), var declarations,
// inc/dec, and range-head key/value bindings.
func defsIn(n ast.Node, info *types.Info) []DefSite {
	var out []DefSite
	record := func(e ast.Expr, site ast.Node) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return
		}
		out = append(out, DefSite{Obj: obj, Node: site})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			record(lhs, n)
		}
	case *ast.IncDecStmt:
		record(n.X, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						record(name, n)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if n.Key != nil {
			record(n.Key, n)
		}
		if n.Value != nil {
			record(n.Value, n)
		}
	case *ast.TypeSwitchStmt:
		// The implicit per-clause binding is written by the assign.
		if as, ok := n.Assign.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				record(lhs, n)
			}
		}
	}
	return out
}

func addDef(m map[types.Object]map[ast.Node]bool, obj types.Object, n ast.Node) {
	if m[obj] == nil {
		m[obj] = map[ast.Node]bool{}
	}
	m[obj][n] = true
}

// mergeInto unions src into dst, reporting whether dst changed.
func mergeInto(dst, src map[types.Object]map[ast.Node]bool) bool {
	changed := false
	for obj, defs := range src {
		for n := range defs {
			if dst[obj] == nil || !dst[obj][n] {
				addDef(dst, obj, n)
				changed = true
			}
		}
	}
	return changed
}
