// Package analysistest verifies cypherlint analyzers against annotated
// fixture packages, mirroring golang.org/x/tools' analysistest convention:
// a `// want "regex"` comment asserts that the analyzer reports a
// diagnostic on that line whose message matches the regex. Any diagnostic
// without a matching want, and any want without a matching diagnostic,
// fails the test. Fixtures live under testdata/src/<dir> (the go tool
// ignores testdata directories, so they never enter the module's build).
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"gradoop/internal/lint"
	"gradoop/internal/lint/analysis"
	"gradoop/internal/lint/load"
)

var (
	loaderMu sync.Mutex
	loader   *load.Loader
)

// sharedLoader lists the module once per test binary: fixtures import real
// module packages, so the loader needs export data for the whole module's
// dependency closure.
func sharedLoader(t *testing.T) *load.Loader {
	t.Helper()
	loaderMu.Lock()
	defer loaderMu.Unlock()
	if loader == nil {
		root, err := load.ModuleRoot(".")
		if err != nil {
			t.Fatalf("locating module root: %v", err)
		}
		l, err := load.New(root, "./...")
		if err != nil {
			t.Fatalf("loading module packages: %v", err)
		}
		loader = l
	}
	return loader
}

// Run type-checks the fixture package in testdata/src/<dir> under
// importPath and compares the analyzer's findings against the fixture's
// want annotations. importPath matters: analyzers that match unexported
// engine API (costcharge, ctxpoll) only fire when the fixture masquerades
// as gradoop/internal/dataflow itself; fixtures using exported API pass
// their own name.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	if importPath == "" {
		importPath = dir
	}
	abs, err := filepath.Abs(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	c, err := sharedLoader(t).CheckDir(importPath, abs)
	if err != nil {
		t.Fatalf("checking fixture %s: %v", dir, err)
	}
	findings, err := lint.Run(c, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, c)
	type key struct {
		file string
		line int
	}
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		matched := false
		for i, w := range wants[k.file][k.line] {
			if w != nil && w.MatchString(f.Message) {
				wants[k.file][k.line][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if w != nil {
					t.Errorf("%s:%d: no diagnostic matching %q", file, line, w)
				}
			}
		}
	}
}

// wantLit matches one Go string literal (interpreted or raw) holding a
// want regex.
var wantLit = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants extracts the want annotations of every fixture file, keyed
// by file and line.
func collectWants(t *testing.T, c *load.Checked) map[string]map[int][]*regexp.Regexp {
	t.Helper()
	out := map[string]map[int][]*regexp.Regexp{}
	for _, f := range c.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := c.Fset.Position(cm.Pos())
				for _, lit := range wantLit.FindAllString(text, -1) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: malformed want literal %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regex %q: %v", pos, pat, err)
					}
					if out[pos.Filename] == nil {
						out[pos.Filename] = map[int][]*regexp.Regexp{}
					}
					out[pos.Filename][pos.Line] = append(out[pos.Filename][pos.Line], re)
				}
			}
		}
	}
	return out
}
