package lint

import (
	"go/ast"
	"go/types"

	"gradoop/internal/lint/analysis"
)

// TracePairAnalyzer enforces balanced operator trace scopes: every call to
// (*trace.Collector).PushOp must be paired with a PopOp on the same token
// that runs on every exit path — which in Go means a deferred call. A
// straight-line Push/Pop pair leaks the operator frame when the scope body
// panics (the collector drops mismatched pops defensively, but every stage
// traced after the leak attributes to the wrong operator), so the analyzer
// requires a defer whose call — directly or inside a deferred function
// literal — pops the same token expression.
var TracePairAnalyzer = &analysis.Analyzer{
	Name: "tracepair",
	Doc:  "flags PushOp calls without a deferred PopOp on the same token",
	Run:  runTracePair,
}

func runTracePair(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	// Check each function body independently: declarations and literals both
	// open scopes, and a defer only covers its own function.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkTracePairs(pass, info, fn.Body)
				}
			case *ast.FuncLit:
				checkTracePairs(pass, info, fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checkTracePairs verifies the PushOp/PopOp pairing within one function
// body, ignoring nested function literals (they are checked as their own
// scopes, and a defer inside a nested literal does not protect this one).
func checkTracePairs(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt) {
	var pushes []*ast.CallExpr
	var deferredPops []string // token expressions popped by a defer
	walkOwnScope(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.CallExpr:
			if fn := calleeOf(info, s); isMethod(fn, tracePath, "Collector", "PushOp") && len(s.Args) > 0 {
				pushes = append(pushes, s)
			}
		case *ast.DeferStmt:
			// defer c.PopOp(tok, ...) directly.
			if fn := calleeOf(info, s.Call); isMethod(fn, tracePath, "Collector", "PopOp") && len(s.Call.Args) > 0 {
				deferredPops = append(deferredPops, types.ExprString(s.Call.Args[0]))
			}
			// defer func() { ... c.PopOp(tok, ...) ... }()
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn := calleeOf(info, call); isMethod(fn, tracePath, "Collector", "PopOp") && len(call.Args) > 0 {
						deferredPops = append(deferredPops, types.ExprString(call.Args[0]))
					}
					return true
				})
			}
		}
	})
	for _, push := range pushes {
		token := types.ExprString(push.Args[0])
		covered := false
		for _, popped := range deferredPops {
			if popped == token {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(push.Pos(),
				"PushOp(%s, ...) without a deferred PopOp on the same token: a panic in the scope leaks the operator frame and corrupts trace attribution", token)
		}
	}
}

// walkOwnScope visits the nodes of body that belong to the enclosing
// function itself, descending into blocks but not into nested function
// literals.
func walkOwnScope(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && n != body {
			return false
		}
		visit(n)
		return true
	})
}
