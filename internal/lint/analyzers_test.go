package lint_test

import (
	"testing"

	"gradoop/internal/lint"
	"gradoop/internal/lint/analysis"
	"gradoop/internal/lint/analysistest"
)

// TestAnalyzers runs each analyzer against its annotated fixture package
// under testdata/src. costcharge and ctxpoll fixtures are type-checked
// under the real dataflow import path because those analyzers match
// unexported engine API.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		analyzer   *analysis.Analyzer
		dir        string
		importPath string
	}{
		{lint.EnvMixAnalyzer, "envmix", ""},
		{lint.PartitionCaptureAnalyzer, "partitioncapture", ""},
		{lint.CostChargeAnalyzer, "costcharge", "gradoop/internal/dataflow"},
		{lint.MemChargeAnalyzer, "memcharge", "gradoop/internal/dataflow"},
		{lint.TracePairAnalyzer, "tracepair", ""},
		{lint.CtxPollAnalyzer, "ctxpoll", "gradoop/internal/dataflow"},
		{lint.ObsRegisterAnalyzer, "obsregister", ""},
		{lint.QStoreRecordAnalyzer, "qstorerecord", "gradoop/internal/session"},
		{lint.LockOrderAnalyzer, "lockorder", ""},
		{lint.GoLeakAnalyzer, "goleak", ""},
		{lint.WireSymAnalyzer, "wiresym", "gradoop/internal/wire"},
		{lint.WireSymAnalyzer, "wiresymframe", "gradoop/internal/cluster"},
		{lint.CloseOnErrAnalyzer, "closeonerr", ""},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			analysistest.Run(t, tc.analyzer, tc.dir, tc.importPath)
		})
	}
}
