package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"gradoop/internal/lint"
	"gradoop/internal/lint/load"
)

// TestLintIgnoreAudit pins the lint:ignore directive audit: unknown
// analyzer names, missing reasons and empty directives are findings (dead
// suppressions are worse than none — they look like coverage), while
// well-formed directives and the "all" wildcard are silent. The audit runs
// inside every lint.Run regardless of the analyzer set, so zero analyzers
// isolates it.
func TestLintIgnoreAudit(t *testing.T) {
	root, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	l, err := load.New(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	abs, err := filepath.Abs(filepath.Join("testdata", "src", "lintignore"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := l.CheckDir("lintignore", abs)
	if err != nil {
		t.Fatalf("checking fixture: %v", err)
	}
	findings, err := lint.Run(c, nil)
	if err != nil {
		t.Fatalf("running audit: %v", err)
	}

	want := []string{
		`lint:ignore names unknown analyzer "envmyx" (dead suppression)`,
		"lint:ignore directive has no reason; write `//lint:ignore <analyzer> <reason>`",
		`lint:ignore names unknown analyzer "ctxpol" (dead suppression)`,
		"lint:ignore directive names no analyzer",
	}
	if len(findings) != len(want) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(findings), len(want))
	}
	for i, f := range findings {
		if f.Analyzer != "lintignore" {
			t.Errorf("finding %d: analyzer = %q, want lintignore", i, f.Analyzer)
		}
		if f.Message != want[i] {
			t.Errorf("finding %d: message = %q, want %q", i, f.Message, want[i])
		}
		if !strings.HasSuffix(f.Pos.Filename, "lintignore.go") {
			t.Errorf("finding %d: unexpected file %s", i, f.Pos.Filename)
		}
	}
}
