// Package load turns Go package patterns into type-checked syntax trees
// without golang.org/x/tools: it shells out to `go list -export -deps -json`
// for the build graph and export data (the same information `go vet` hands
// its vettool), parses the target packages' sources, and type-checks them
// with the standard library's gc export-data importer. The result feeds the
// cypherlint analyzers both in the standalone binary and in tests.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Checked is one fully type-checked package ready for analysis.
type Checked struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// Loader resolves imports through the export data `go list` produced. One
// Loader owns one FileSet; every package it checks shares it, so positions
// from different packages can be compared and rendered uniformly.
type Loader struct {
	Fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
	pkgs    []*listPackage
}

// New lists patterns (with their full dependency closure) in dir and
// prepares an importer over the resulting export data.
func New(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	l := &Loader{Fset: token.NewFileSet(), exports: map[string]string{}}
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		l.pkgs = append(l.pkgs, &p)
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return l, nil
}

// Roots returns the packages that matched the patterns themselves (the
// dependency closure is loaded for imports only), excluding packages with no
// Go files.
func (l *Loader) Roots() ([]*Checked, error) {
	var out []*Checked
	for _, p := range l.pkgs {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		c, err := l.CheckFiles(p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// CheckFiles parses and type-checks an explicit file list as one package
// under the given import path. It serves both Roots and the analysistest
// harness, whose testdata packages live outside the module's package graph
// but import real module packages.
func (l *Loader) CheckFiles(path string, filenames []string) (*Checked, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Checked{ImportPath: path, Fset: l.Fset, Files: files, Pkg: pkg, Info: info}, nil
}

// CheckDir parses and type-checks every non-test .go file in dir as one
// package (analysistest entry point).
func (l *Loader) CheckDir(path, dir string) (*Checked, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.CheckFiles(path, files)
}

// ModuleRoot walks up from dir to the enclosing go.mod, the working
// directory every `go list` invocation should run from.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
