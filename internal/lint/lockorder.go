package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gradoop/internal/lint/analysis"
)

// LockOrderAnalyzer enforces a consistent mutex acquisition order and flags
// blocking operations performed while a lock is held. Deadlocks in the
// coordinator/worker state machines come from exactly two shapes: goroutine
// 1 takes A then B while goroutine 2 takes B then A (an AB/BA inversion),
// and a goroutine parks on a channel or a net.Conn write while holding a
// lock some other goroutine needs to make progress. Both are invisible to
// `go vet` and intermittent under test; both are path properties, so the
// check runs over the CFG with a may-held lock set.
//
// Locks are identified by declaration site, not instance: every member's
// `mu` is one key ("cluster.member.mu"), because ordering invariants hold
// per class. Acquisition edges observed anywhere in a package are pooled,
// and a pair of functions taking the same two keys in opposite orders is
// reported at both sites. Callee lock acquisitions and blocking behavior
// propagate one level through the call-graph summary layer (Pass.Summary),
// so `c.mu` held across a call to a method that locks `member.mu` still
// records the edge. sync.Cond.Wait is exempt from the blocking rule — it
// releases its locker while parked.
var LockOrderAnalyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "mutexes must be acquired in a consistent order and never held across a blocking operation",
	Run:  runLockOrder,
}

// lockEvent is one lock-relevant action in evaluation order within a node.
type lockEvent struct {
	kind lockEventKind
	key  string      // acquire/release: the lock key
	desc string      // block: description; call: callee name
	fn   *callTarget // call: resolved callee
	pos  token.Pos
}

type lockEventKind int

const (
	evAcquire lockEventKind = iota
	evRelease
	evBlock
	evCall
)

type callTarget struct {
	name    string
	summary *analysis.FuncSummary
}

func runLockOrder(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	// edges[a][b] = first position where b was acquired while a was held.
	edges := map[string]map[string]token.Pos{}

	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		if isTestFile(pass, fd.Pos()) {
			return
		}
		cfg := analysis.BuildCFG(fd.Body)
		exempt := commExempt(fd.Body)

		// May-held fixpoint: in[b] maps lock key → first acquire position on
		// some path reaching b.
		in := make([]map[string]token.Pos, len(cfg.Blocks))
		for i := range in {
			in[i] = map[string]token.Pos{}
		}
		work := append([]*analysis.Block(nil), cfg.Blocks...)
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			out := copyHeld(in[b.Index])
			applyLockEvents(b, info, exempt, pass, out, nil, nil)
			for _, s := range b.Succs {
				if mergeHeld(in[s.Index], out) {
					work = append(work, s)
				}
			}
		}

		// Reporting pass with the solved entry sets.
		for _, b := range cfg.Blocks {
			held := copyHeld(in[b.Index])
			applyLockEvents(b, info, exempt, pass, held, edges, pass.Report)
		}
	})

	// Inversions: a→b and b→a both observed. Report at both witness sites.
	keys := make([]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, a := range keys {
		bs := make([]string, 0, len(edges[a]))
		for b := range edges[a] {
			bs = append(bs, b)
		}
		sort.Strings(bs)
		for _, b := range bs {
			rev, ok := edges[b][a]
			if !ok {
				continue
			}
			pos := edges[a][b]
			revPos := pass.Fset.Position(rev)
			pass.Reportf(pos, "lock order inversion: %s acquired while holding %s, but the reverse order is taken at %s", b, a, revPos)
		}
	}
	return nil, nil
}

// applyLockEvents runs block b's lock events against held, recording
// acquisition-order edges and (when report is non-nil) emitting
// held-across-blocking diagnostics.
func applyLockEvents(b *analysis.Block, info *types.Info, exempt map[ast.Node]bool, pass *analysis.Pass, held map[string]token.Pos, edges map[string]map[string]token.Pos, report func(analysis.Diagnostic)) {
	for _, n := range b.Nodes {
		for _, ev := range lockEvents(n, info, exempt, pass) {
			switch ev.kind {
			case evAcquire:
				recordEdges(edges, held, ev.key, ev.pos)
				if _, ok := held[ev.key]; !ok {
					held[ev.key] = ev.pos
				}
			case evRelease:
				delete(held, ev.key)
			case evBlock:
				if len(held) > 0 && report != nil {
					report(analysis.Diagnostic{Pos: ev.pos, Message: "lock " + heldNames(held) + " held across blocking " + ev.desc})
				}
			case evCall:
				sum := ev.fn.summary
				if sum == nil || len(held) == 0 {
					continue
				}
				for _, key := range sum.Acquires {
					recordEdges(edges, held, key, ev.pos)
				}
				if sum.Blocks != "" && report != nil {
					report(analysis.Diagnostic{Pos: ev.pos, Message: "lock " + heldNames(held) + " held across call to " + ev.fn.name + ", which blocks on " + sum.Blocks})
				}
			}
		}
	}
}

// recordEdges notes "key acquired while each currently-held lock was held".
func recordEdges(edges map[string]map[string]token.Pos, held map[string]token.Pos, key string, pos token.Pos) {
	if edges == nil {
		return
	}
	for h := range held {
		if h == key {
			continue
		}
		if edges[h] == nil {
			edges[h] = map[string]token.Pos{}
		}
		if _, ok := edges[h][key]; !ok {
			edges[h][key] = pos
		}
	}
}

// lockEvents extracts the ordered lock-relevant events of one CFG node.
// Function literals, go statements and defers are skipped: a closure merely
// defined here does not run here, a spawned goroutine holds nothing of
// ours, and a deferred unlock releases at exit — so for every statement in
// between, the lock is genuinely held (skipping the defer's release is what
// makes `defer mu.Unlock()` keep the key held through the rest of the
// function, which is the correct model for both rules).
func lockEvents(n ast.Node, info *types.Info, exempt map[ast.Node]bool, pass *analysis.Pass) []lockEvent {
	var out []lockEvent
	// The CFG stores a RangeStmt/SelectStmt as its own head node while the
	// body statements live in separate blocks — descending here would double
	// count the body's events. Evaluate only the head: the range subject
	// expression, or the select's park point.
	switch s := n.(type) {
	case *ast.RangeStmt:
		if desc := blockingOp(s, info); desc != "" {
			out = append(out, lockEvent{kind: evBlock, desc: desc, pos: s.Pos()})
		}
		n = s.X
	case *ast.SelectStmt:
		if desc := blockingOp(s, info); desc != "" {
			out = append(out, lockEvent{kind: evBlock, desc: desc, pos: s.Pos()})
		}
		return out
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		}
		if x == nil {
			return true
		}
		if !exempt[x] {
			if desc := blockingOp(x, info); desc != "" {
				out = append(out, lockEvent{kind: evBlock, desc: desc, pos: x.Pos()})
			}
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		switch lockCallKind(fn) {
		case lockAcquire, lockAcquireRead:
			if key := lockKeyOf(info, call); key != "" {
				out = append(out, lockEvent{kind: evAcquire, key: key, pos: call.Pos()})
			}
			return true
		case lockRelease, lockReleaseRead:
			if key := lockKeyOf(info, call); key != "" {
				out = append(out, lockEvent{kind: evRelease, key: key, pos: call.Pos()})
			}
			return true
		}
		if fn != nil {
			if sum := pass.Summary(fn); sum != nil {
				out = append(out, lockEvent{kind: evCall, fn: &callTarget{name: fn.Name(), summary: sum}, pos: call.Pos()})
			}
		}
		return true
	})
	return out
}

// heldNames renders the held set deterministically.
func heldNames(held map[string]token.Pos) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func copyHeld(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeHeld unions src into dst (keeping dst's earlier witness positions),
// reporting change.
func mergeHeld(dst, src map[string]token.Pos) bool {
	changed := false
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
			changed = true
		}
	}
	return changed
}

// isTestFile reports whether pos lies in a _test.go file. The flow
// analyzers skip test files: test goroutines and lock usage are bounded by
// the test binary and exercised under -race directly.
func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
