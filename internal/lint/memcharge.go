package lint

import (
	"go/ast"
	"go/types"

	"gradoop/internal/lint/analysis"
)

// MemChargeAnalyzer keeps the memory governor honest: every per-partition
// closure executed through (*Env).runParts that records materialized output
// (a call to traceRowsOut, directly or in a same-package function it
// transitively calls) must also meter those bytes against the budget — a
// call to chargeMem on the same terms. An operator that materializes
// embeddings without charging is invisible to the broker: its output can
// blow the process budget without ever being killed, which is exactly the
// failure mode the governor exists to contain. Send-side shuffle closures
// (traceRowsIn only, buckets are transient) are deliberately out of scope.
var MemChargeAnalyzer = &analysis.Analyzer{
	Name: "memcharge",
	Doc:  "flags runParts closures that materialize output without charging the memory broker",
	Run:  runMemCharge,
}

func runMemCharge(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	decls := funcDecls(pass.Files, info)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(info, call)
			if !isMethod(fn, dataflowPath, "Env", "runParts") || len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			materializes := callsEnvMethod(info, decls, lit.Body, "traceRowsOut", map[*types.Func]bool{})
			if materializes && !callsEnvMethod(info, decls, lit.Body, "chargeMem", map[*types.Func]bool{}) {
				pass.Reportf(call.Pos(),
					"per-partition closure passed to runParts records output rows (traceRowsOut) but never charges the memory broker (chargeMem); unmetered materialization escapes the budget and cannot be killed")
			}
			return true
		})
	}
	return nil, nil
}

// callsEnvMethod reports whether body calls the named (*Env) method, either
// directly or inside a same-package function it calls. visited bounds the
// walk on call cycles.
func callsEnvMethod(info *types.Info, decls map[*types.Func]*ast.FuncDecl, body ast.Node, name string, visited map[*types.Func]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		if fn.Name() == name && isMethod(fn, dataflowPath, "Env", name) {
			found = true
			return false
		}
		if decl, ok := decls[fn]; ok && !visited[fn] && decl.Body != nil {
			visited[fn] = true
			if callsEnvMethod(info, decls, decl.Body, name, visited) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
