package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"gradoop/internal/lint/analysis"
	"gradoop/internal/lint/load"
)

// This file is the call-graph summary layer: per-function facts (channel
// discipline, lock acquisitions, blocking operations) computed once per
// function declaration and resolved across packages through the same
// `go list -export` load pipeline the analyzers already ride. Summaries are
// deliberately shallow — direct statements only, no nested function
// literals, no transitive closure — because the consumers (lockorder,
// goleak) do their own one-level composition and anything deeper trades
// precision for noise.

// summaryStore memoizes FuncSummary per function object across every
// package a driver run loads.
type summaryStore struct {
	byFunc map[*types.Func]*analysis.FuncSummary
}

func newSummaryStore() *summaryStore {
	return &summaryStore{byFunc: map[*types.Func]*analysis.FuncSummary{}}
}

// addPackage computes and stores summaries for every function declaration
// in the checked package.
func (s *summaryStore) addPackage(c *load.Checked) {
	for fn, decl := range funcDecls(c.Files, c.Info) {
		if decl.Body == nil {
			continue
		}
		s.byFunc[fn] = summarize(decl.Body, c.Info)
	}
}

// resolve is installed as Pass.Summary.
func (s *summaryStore) resolve(fn *types.Func) *analysis.FuncSummary {
	if fn == nil {
		return nil
	}
	return s.byFunc[fn.Origin()]
}

// summarize computes one function body's fact set. Nested function
// literals are separate scopes: a channel op inside a closure the body
// merely defines is not an op the body performs.
func summarize(body *ast.BlockStmt, info *types.Info) *analysis.FuncSummary {
	sum := &analysis.FuncSummary{}
	seen := map[string]bool{}
	exempt := commExempt(body)
	walkShallow(body, func(n ast.Node) {
		if op := blockingOp(n, info); op != "" && sum.Blocks == "" && !exempt[n] {
			sum.Blocks = op
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			sum.ChanOps = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				sum.ChanOps = true
			}
		case *ast.RangeStmt:
			if isChanType(info, n.X) {
				sum.ChanOps = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					sum.ChanOps = true
				}
			}
			fn := calleeOf(info, n)
			if isMethod(fn, "sync", "WaitGroup", "Done") {
				sum.WGDone = true
			}
			if kind := lockCallKind(fn); kind == lockAcquire || kind == lockAcquireRead {
				if key := lockKeyOf(info, n); key != "" && !seen[key] {
					seen[key] = true
					sum.Acquires = append(sum.Acquires, key)
				}
			}
		}
	})
	return sum
}

// commExempt collects the nodes whose channel operations belong to a
// select's comm clauses: the comm statements and their operand
// expressions. A select's blocking behavior is judged at the SelectStmt
// itself (a select with a default never parks), so the comm ops inside it
// must not be classified as independent blocking operations.
func commExempt(root ast.Node) map[ast.Node]bool {
	out := map[ast.Node]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			out[cc.Comm] = true
			switch s := cc.Comm.(type) {
			case *ast.ExprStmt:
				out[ast.Unparen(s.X)] = true
			case *ast.AssignStmt:
				for _, r := range s.Rhs {
					out[ast.Unparen(r)] = true
				}
			}
		}
		return true
	})
	return out
}

// walkShallow visits every node of body except the interiors of nested
// function literals.
func walkShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// lockCallKind classifies sync lock/unlock methods.
type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockAcquireRead
	lockRelease
	lockReleaseRead
)

func lockCallKind(fn *types.Func) lockKind {
	switch {
	case isMethod(fn, "sync", "Mutex", "Lock"), isMethod(fn, "sync", "RWMutex", "Lock"):
		return lockAcquire
	case isMethod(fn, "sync", "RWMutex", "RLock"):
		return lockAcquireRead
	case isMethod(fn, "sync", "Mutex", "Unlock"), isMethod(fn, "sync", "RWMutex", "Unlock"):
		return lockRelease
	case isMethod(fn, "sync", "RWMutex", "RUnlock"):
		return lockReleaseRead
	}
	return lockNone
}

// lockKeyOf names the lock a Lock/Unlock call operates on, abstracting
// instances to their declaration site: a field lock is
// "pkg.Type.field" (every *member's mu is one key — lock-order invariants
// hold per class, not per instance), a package-level lock is "pkg.var",
// and a function-local lock is scoped by its declaring position so two
// locals in different functions never alias. Empty for receivers the
// analysis cannot name (map elements, function results).
func lockKeyOf(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return lockExprKey(info, sel.X)
}

// lockExprKey names a lock-valued expression (see lockKeyOf).
func lockExprKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name() // package-level lock
		}
		if v.IsField() {
			// An embedded or promoted field reference; fall through to the
			// positional key.
			return fmt.Sprintf("field.%s@%d", v.Name(), v.Pos())
		}
		return fmt.Sprintf("local.%s@%d", v.Name(), v.Pos()) // function-local lock
	case *ast.SelectorExpr:
		// x.mu: key by the named type of x and the field name.
		sel := info.Selections[e]
		if sel == nil {
			return ""
		}
		field, ok := sel.Obj().(*types.Var)
		if !ok {
			return ""
		}
		t := sel.Recv()
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		pkg := ""
		if named.Obj().Pkg() != nil {
			pkg = named.Obj().Pkg().Name() + "."
		}
		return pkg + named.Obj().Name() + "." + field.Name()
	case *ast.StarExpr:
		return lockExprKey(info, e.X)
	}
	return ""
}

// blockingOp classifies a node as a potentially-blocking operation while a
// lock could be held, returning a short description or "". sync.Cond.Wait
// is exempt by design: it releases its locker while parked — holding the
// lock across it is the condition-variable idiom, not a stall.
func blockingOp(n ast.Node, info *types.Info) string {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.UnaryExpr:
		if n.Op.String() == "<-" {
			return "channel receive"
		}
	case *ast.SelectStmt:
		// A select with a default never parks.
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return ""
			}
		}
		return "select"
	case *ast.RangeStmt:
		if isChanType(info, n.X) {
			return "range over channel"
		}
	case *ast.CallExpr:
		fn := calleeOf(info, n)
		switch {
		case isPkgFunc(fn, "time", "Sleep"):
			return "time.Sleep"
		case isMethod(fn, "sync", "WaitGroup", "Wait"):
			return "WaitGroup.Wait"
		case isMethod(fn, "os/exec", "Cmd", "Wait"), isMethod(fn, "os/exec", "Cmd", "Run"):
			return "exec.Cmd wait"
		}
		// A method on a net.Conn-typed value (Write, Read, Close on a
		// blocked peer all stall on the kernel buffer / peer).
		if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
			if tv, ok := info.Types[sel.X]; ok && tv.Type != nil && isNetConnType(tv.Type) {
				return "net.Conn " + sel.Sel.Name
			}
		}
	}
	return ""
}

// isChanType reports whether e has channel type.
func isChanType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// isNetConnType reports whether t is net.Conn, a pointer to a net
// connection type, or any other named type declared in package net that
// implements-or-is a connection (TCPConn, UnixConn, ...). Static typing is
// enough: the analyzers flag I/O on values statically known to be network
// connections, not every io.Writer that might dynamically be one.
func isNetConnType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "net" {
		return false
	}
	switch named.Obj().Name() {
	case "Conn", "TCPConn", "UDPConn", "UnixConn", "IPConn", "PacketConn":
		return true
	}
	return false
}
