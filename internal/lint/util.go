package lint

import (
	"go/ast"
	"go/types"
)

// Engine package paths the analyzers key on. Matching is exact against
// types.Package.Path(), so the analyzers fire both when other packages use
// the engine and when the engine packages are analyzed themselves.
const (
	dataflowPath = "gradoop/internal/dataflow"
	tracePath    = "gradoop/internal/trace"
	obsPath      = "gradoop/internal/obs"
	qstorePath   = "gradoop/internal/qstore"
	sessionPath  = "gradoop/internal/session"
)

// calleeOf resolves the function or method object a call expression invokes,
// or nil for indirect calls (function values, interface methods resolved
// dynamically keep their declared object). Generic instantiations resolve to
// their origin, so one declaration matches every instantiation.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	case *ast.IndexExpr: // explicit instantiation f[T](...)
		if base, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fn.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr: // f[T, U](...)
		if base, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fn.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return fn.Origin()
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isMethod reports whether fn is the method pkgPath.(recv).name, where recv
// is the receiver's named type (pointer receivers included).
func isMethod(fn *types.Func, pkgPath, recv, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == recv
}

// declaredWithin reports whether obj's declaration lies inside node's source
// range — i.e. the object is local to the function literal, not captured.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// rootIdent peels index, selector, paren and star layers off an lvalue and
// returns the identifier at its base, or nil.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// funcDecls indexes a package's function declarations by their object, so
// analyzers can follow same-package static calls into callee bodies.
func funcDecls(files []*ast.File, info *types.Info) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				out[fn.Origin()] = fd
			}
		}
	}
	return out
}

// eachFunc invokes f for every function body in the package: declarations
// and, when deep is true, every function literal as its own scope.
func eachFuncDecl(files []*ast.File, f func(*ast.FuncDecl)) {
	for _, file := range files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				f(fd)
			}
		}
	}
}
