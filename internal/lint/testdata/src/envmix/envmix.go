// Package envmix exercises the envmix analyzer: binary dataflow
// transformations over datasets created on provably different environments
// must be flagged; same-environment combinations must not.
package envmix

import "gradoop/internal/dataflow"

func crossEnvUnion() {
	a := dataflow.NewEnv(dataflow.DefaultConfig(2))
	b := dataflow.NewEnv(dataflow.DefaultConfig(2))
	l := dataflow.FromSlice(a, []int{1, 2})
	r := dataflow.FromSlice(b, []int{3, 4})
	dataflow.Union(l, r) // want `operands of dataflow\.Union belong to different environments`
}

// crossEnvDerived checks that origins survive derivation: a dataset mapped
// from env a still belongs to a.
func crossEnvDerived() {
	a := dataflow.NewEnv(dataflow.DefaultConfig(2))
	b := dataflow.NewEnv(dataflow.DefaultConfig(2))
	l := dataflow.FromSlice(a, []int{1, 2})
	r := dataflow.FromSlice(b, []int{3, 4})
	m := dataflow.Map(l, func(v int) int { return v + 1 })
	key := func(v int) uint64 { return uint64(v) }
	dataflow.Join(m, r, key, key, func(x, y int, emit func(int)) { // want `operands of dataflow\.Join belong to different environments`
		emit(x + y)
	}, dataflow.RepartitionHash)
}

func crossEnvCoGroup() {
	a := dataflow.NewEnv(dataflow.DefaultConfig(2))
	b := dataflow.NewEnv(dataflow.DefaultConfig(2))
	l := dataflow.FromSlice(a, []int{1, 2})
	r := dataflow.FromSlice(b, []int{3, 4})
	key := func(v int) uint64 { return uint64(v) }
	dataflow.CoGroup(l, r, key, key, func(_ uint64, ls, rs []int, emit func(int)) { // want `operands of dataflow\.CoGroup belong to different environments`
		emit(len(ls) + len(rs))
	})
}

// sameEnv combines datasets of one environment; nothing to report.
func sameEnv() {
	env := dataflow.NewEnv(dataflow.DefaultConfig(2))
	l := dataflow.FromSlice(env, []int{1, 2})
	r := dataflow.FromSlice(env, []int{3, 4})
	dataflow.Union(l, r)
	m := dataflow.Map(l, func(v int) int { return v * 2 })
	dataflow.Union(m, r)
}

// suppressed shows the escape hatch: a lint:ignore directive silences the
// finding on the next line.
func suppressed() {
	a := dataflow.NewEnv(dataflow.DefaultConfig(2))
	b := dataflow.NewEnv(dataflow.DefaultConfig(2))
	l := dataflow.FromSlice(a, []int{1, 2})
	r := dataflow.FromSlice(b, []int{3, 4})
	//lint:ignore envmix deliberate cross-env fixture
	dataflow.Union(l, r)
}
