// Package partitioncapture exercises the partitioncapture analyzer:
// per-partition UDF closures writing captured shared state race across
// partition goroutines unless synchronized.
package partitioncapture

import (
	"sync"
	"sync/atomic"

	"gradoop/internal/dataflow"
)

func capturedAssign(d *dataflow.Dataset[int]) {
	total := 0
	dataflow.Map(d, func(v int) int {
		total += v // want `UDF passed to dataflow\.Map writes captured variable "total"`
		return v
	})
	_ = total
}

func capturedIncDec(d *dataflow.Dataset[int]) {
	count := 0
	dataflow.Filter(d, func(v int) bool {
		count++ // want `UDF passed to dataflow\.Filter writes captured variable "count"`
		return v > 0
	})
	_ = count
}

func capturedInJoiner(l, r *dataflow.Dataset[int]) {
	pairs := 0
	key := func(v int) uint64 { return uint64(v) }
	dataflow.Join(l, r, key, key, func(x, y int, emit func(int)) {
		pairs++ // want `UDF passed to dataflow\.Join writes captured variable "pairs"`
		emit(x + y)
	}, dataflow.RepartitionHash)
	_ = pairs
}

// localState writes only variables declared inside the literal; nothing to
// report.
func localState(d *dataflow.Dataset[int]) {
	dataflow.MapPartition(d, func(part []int, emit func(int)) {
		sum := 0
		for _, v := range part {
			sum += v
		}
		emit(sum)
	})
}

// mutexGuarded takes a lock before writing; the analyzer assumes the
// literal synchronizes deliberately.
func mutexGuarded(d *dataflow.Dataset[int]) {
	var mu sync.Mutex
	total := 0
	dataflow.Map(d, func(v int) int {
		mu.Lock()
		total += v
		mu.Unlock()
		return v
	})
	_ = total
}

// atomicCounter mutates shared state through sync/atomic calls, which are
// not assignments and stay legal.
func atomicCounter(d *dataflow.Dataset[int]) {
	var n atomic.Int64
	dataflow.Map(d, func(v int) int {
		n.Add(1)
		return v
	})
	_ = n.Load()
}
