// Package obsregister exercises the obsregister analyzer: obs instruments
// are constructed once at setup and captured; constructing them inside a
// function literal (per-partition UDFs, hot-path closures) or inside an
// HTTP request handler re-registers per invocation and panics on the
// duplicate name.
package obsregister

import (
	"net/http"

	"gradoop/internal/obs"
)

// setup is the sanctioned shape: constructors at setup time, in plain
// function bodies, the instruments captured for later recording.
type setup struct {
	requests *obs.Counter
	latency  *obs.Histogram
	byKind   *obs.CounterVec
}

func newSetup(r *obs.Registry) *setup {
	return &setup{
		requests: r.NewCounter("requests_total", "requests"),
		byKind:   r.NewCounterVec("by_kind_total", "by kind", "kind"),
		latency:  r.NewHistogram("latency_seconds", "latency", obs.ScaleNanos),
	}
}

// gaugeSetup registers a gauge whose callback is a literal — the literal
// only reads; the constructor itself sits in the function body, so this is
// clean.
func gaugeSetup(r *obs.Registry, depth *int) {
	r.NewGaugeFunc("queue_depth", "queued requests", func() float64 {
		return float64(*depth)
	})
}

// recordInUDF records into captured instruments from a closure: recording
// anywhere is fine, only construction is pinned to setup.
func recordInUDF(s *setup, each func(func(int))) {
	each(func(v int) {
		s.requests.Inc()
		s.latency.Observe(int64(v))
		s.byKind.With("map").Inc()
	})
}

// ctorInUDF constructs inside the per-element closure: the second element
// panics on the duplicate name.
func ctorInUDF(r *obs.Registry, each func(func(int))) {
	each(func(v int) {
		c := r.NewCounter("elements_total", "elements") // want `obs instrument NewCounter created inside a function literal`
		c.Add(int64(v))
	})
}

// ctorInNestedLit is flagged regardless of nesting depth.
func ctorInNestedLit(r *obs.Registry) func() {
	return func() {
		func() {
			r.NewHistogramVec("nested_seconds", "nested", "kind", 1) // want `obs instrument NewHistogramVec created inside a function literal`
		}()
	}
}

// handler is an http.HandlerFunc-shaped function constructing per request.
func handler(r *obs.Registry) http.HandlerFunc {
	reg := r
	return func(w http.ResponseWriter, req *http.Request) {
		reg.NewCounterVec2("hits_total", "hits", "endpoint", "code") // want `obs instrument NewCounterVec2 created inside a function literal`
		w.WriteHeader(http.StatusOK)
	}
}

// server carries a registry into method handlers.
type server struct {
	registry *obs.Registry
	hits     *obs.Counter
}

// handleHits constructs inside a request handler method: first request
// registers, second panics on the duplicate.
func (s *server) handleHits(w http.ResponseWriter, r *http.Request) {
	c := s.registry.NewCounter("hits_total", "hits") // want `obs instrument NewCounter created inside a request handler`
	c.Inc()
}

// handleClean records into a captured instrument — the sanctioned handler
// shape.
func (s *server) handleClean(w http.ResponseWriter, r *http.Request) {
	s.hits.Inc()
	w.WriteHeader(http.StatusOK)
}

// notAHandler has two params but not the handler shape; construction in a
// plain named function stays allowed.
func notAHandler(r *obs.Registry, name string) *obs.Counter {
	return r.NewCounter(name, "free-form setup helper")
}
