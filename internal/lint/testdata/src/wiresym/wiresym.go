// Fixtures for the wiresym codec-pair rule, type-checked under the real
// gradoop/internal/wire import path (the analyzer is gated to the wire
// layer). Each encoder's field-read order must match its paired decoder's
// field-write order; a dropped field read is the acceptance case from the
// issue — deleting one read from a Decode* must be flagged.
package wire

import "encoding/binary"

type header struct {
	ID    uint64
	Label string
	Count uint32
}

// AppendHeader writes ID, Label, Count.
func AppendHeader(dst []byte, h header) []byte {
	dst = binary.BigEndian.AppendUint64(dst, h.ID)
	dst = append(dst, h.Label...)
	return binary.BigEndian.AppendUint32(dst, h.Count)
}

// ReadHeader reads Count before Label: order drift.
func ReadHeader(b []byte) header { // want `codec asymmetry: ReadHeader reads header fields in order \[ID Count Label\] but AppendHeader writes \[ID Label Count\]`
	var h header
	h.ID = binary.BigEndian.Uint64(b)
	h.Count = binary.BigEndian.Uint32(b[8:])
	h.Label = string(b[12:])
	return h
}

type record struct {
	Key uint64
	Val uint64
	Tag uint32
}

// AppendRecord writes Key, Val, Tag.
func AppendRecord(dst []byte, r record) []byte {
	dst = binary.BigEndian.AppendUint64(dst, r.Key)
	dst = binary.BigEndian.AppendUint64(dst, r.Val)
	return binary.BigEndian.AppendUint32(dst, r.Tag)
}

// ReadRecord forgot Tag — the deleted-field-read acceptance case.
func ReadRecord(b []byte) record { // want `codec asymmetry: ReadRecord reads record fields in order \[Key Val\] but AppendRecord writes \[Key Val Tag\]`
	var r record
	r.Key = binary.BigEndian.Uint64(b)
	r.Val = binary.BigEndian.Uint64(b[8:])
	return r
}

type pair struct {
	A uint32
	B uint32
}

// encodePair / decodePair are symmetric (composite-literal decode form);
// the len() read does not count as serialization.
func encodePair(p *pair, scratch []byte) []byte {
	out := make([]byte, 8, 8+len(scratch))
	binary.BigEndian.PutUint32(out[0:], p.A)
	binary.BigEndian.PutUint32(out[4:], p.B)
	return out
}

func decodePair(b []byte) *pair {
	return &pair{
		A: binary.BigEndian.Uint32(b[0:]),
		B: binary.BigEndian.Uint32(b[4:]),
	}
}

// AppendPoint / ReadPoint are symmetric in assignment form.
type point struct {
	X int32
	Y int32
}

func AppendPoint(dst []byte, pt point) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(pt.X))
	return binary.BigEndian.AppendUint32(dst, uint32(pt.Y))
}

func ReadPoint(b []byte) point {
	var pt point
	pt.X = int32(binary.BigEndian.Uint32(b[0:]))
	pt.Y = int32(binary.BigEndian.Uint32(b[4:]))
	return pt
}
