// Package session is a miniature stand-in for the engine's session
// package. The qstorerecord analyzer keys on the import paths
// gradoop/internal/session and gradoop/internal/qstore, so this fixture is
// type-checked under the session path and imports the real qstore package:
// it reproduces the Execute → execute → recordExit funnel plus every
// violation class — a rogue append site, an Execute bypass, and a second
// recordExit caller.
package session

import "gradoop/internal/qstore"

type Request struct{ Query string }

type Response struct{ Rows int64 }

type exitInfo struct{ canonical string }

type Session struct {
	qstore *qstore.Store
}

// Execute is the blessed shape: run the inner execute, funnel its exit
// through the single append site.
func (s *Session) Execute(req Request) (*Response, error) {
	resp, ex, err := s.execute(req)
	s.recordExit(resp, ex, err)
	return resp, err
}

func (s *Session) execute(req Request) (*Response, exitInfo, error) {
	return &Response{Rows: 1}, exitInfo{canonical: req.Query}, nil
}

// recordExit is the one place Append may be called from.
func (s *Session) recordExit(resp *Response, ex exitInfo, err error) {
	if s.qstore == nil {
		return
	}
	s.qstore.Append(qstore.Record{Query: ex.canonical})
}

// rogueAppend writes a record outside recordExit: the exit path it covers
// is either double-recorded or inconsistently shaped.
func (s *Session) rogueAppend(ex exitInfo) {
	s.qstore.Append(qstore.Record{Query: ex.canonical}) // want `Append called outside \(\*Session\)\.recordExit`
}

// bypassExecute completes a query without emitting a record.
func (s *Session) bypassExecute(req Request) (*Response, error) {
	resp, _, err := s.execute(req) // want `execute called outside \(\*Session\)\.Execute`
	return resp, err
}

// doubleEmit funnels an exit through recordExit from outside Execute; the
// same exit can be recorded twice.
func (s *Session) doubleEmit(resp *Response, ex exitInfo, err error) {
	s.recordExit(resp, ex, err) // want `recordExit called outside \(\*Session\)\.Execute`
}

// closureAppend shows the rule follows calls into function literals: the
// closure belongs to closureAppend, not recordExit.
func (s *Session) closureAppend() func() {
	return func() {
		s.qstore.Append(qstore.Record{}) // want `Append called outside \(\*Session\)\.recordExit`
	}
}
