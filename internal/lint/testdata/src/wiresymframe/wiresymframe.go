// Fixtures for the wiresym frame-constant rule, type-checked under the
// real gradoop/internal/cluster import path. Every byte-typed frame*
// constant must be both written (passed to a frame-writing call) and read
// (matched in a switch case or comparison); removing a frame type from the
// reader switch is the acceptance case from the issue.
package cluster

import (
	"encoding/binary"
	"io"
)

const (
	frameInit = byte(1)
	framePush = byte(2)
	// frameNeverSent is matched by the reader but no writer emits it.
	frameNeverSent = byte(3) // want `frame type frameNeverSent has no writer: it is never passed to a frame-writing call`
	// frameNeverRead is written but missing from the reader switch.
	frameNeverRead = byte(4) // want `frame type frameNeverRead has no reader: it never appears in a frame-type switch case or comparison`
)

// frameHeaderLen is untyped and not a frame type; it is exempt.
const frameHeaderLen = 5

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func sendAll(w io.Writer, body []byte) error {
	if err := writeFrame(w, frameInit, nil); err != nil {
		return err
	}
	if err := writeFrame(w, framePush, body); err != nil {
		return err
	}
	return writeFrame(w, frameNeverRead, nil)
}

func dispatch(typ byte, body []byte) string {
	switch typ {
	case frameInit:
		return "init"
	case framePush:
		return "push"
	}
	if typ == frameNeverSent {
		return "ghost"
	}
	return ""
}
