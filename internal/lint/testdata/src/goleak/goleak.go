// Fixtures for the goleak analyzer: every go statement must spawn a
// goroutine that is joinable (WaitGroup.Done) or cancellable (some channel
// operation, which includes <-ctx.Done()), or carry an explicit ignore
// directive. Unresolvable spawn targets are conservatively accepted.
package goleak

import (
	"context"
	"sync"
)

func work() {}

// leakyLit spawns a literal with no join and no cancellation path.
func leakyLit() {
	go func() { // want `goroutine is never joined or cancelled`
		work()
	}()
}

// runForever has no lifecycle facts; spawning it leaks.
func runForever() {
	for {
		work()
	}
}

func leakyNamed() {
	go runForever() // want `goroutine is never joined or cancelled`
}

// joined signals a WaitGroup: a waiter observes its exit.
func joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// cancellable selects on ctx.Done: cancellation reaches it.
func cancellable(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// closesDone signals completion by closing a channel.
func closesDone(done chan struct{}) {
	go func() {
		defer close(done)
		work()
	}()
}

// loop blocks on ctx; its summary carries the channel fact to spawn sites.
func loop(ctx context.Context) {
	<-ctx.Done()
}

func okNamed(ctx context.Context) {
	go loop(ctx)
}

// viaHelper: the literal has no direct facts, but its one static callee
// does — one level of summary composition.
func viaHelper(ctx context.Context) {
	go func() {
		loop(ctx)
	}()
}

// detached documents a deliberately unmanaged goroutine.
func detached() {
	//lint:ignore goleak fixture exercises the suppression escape hatch
	go work()
}

// indirect spawn targets (function values) cannot be resolved and are not
// flagged.
func indirect(f func()) {
	go f()
}
