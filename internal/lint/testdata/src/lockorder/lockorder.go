// Fixtures for the lockorder analyzer: AB/BA acquisition-order inversions
// (directly and through the call-graph summary layer) and blocking
// operations performed while a mutex is held. Positive cases carry want
// annotations; the rest pin down the exemptions (flow-sensitive release,
// Cond.Wait, nonblocking select).
package lockorder

import (
	"net"
	"sync"
)

type registry struct {
	mu      sync.Mutex
	members map[string]*member
}

type member struct {
	mu    sync.Mutex
	alive bool
}

// abOrder establishes the order registry.mu -> member.mu.
func abOrder(r *registry, m *member) {
	r.mu.Lock()
	m.mu.Lock() // want `lock order inversion: lockorder.member.mu acquired while holding lockorder.registry.mu`
	m.alive = true
	m.mu.Unlock()
	r.mu.Unlock()
}

// baOrder takes the same pair in the reverse order: the classic deadlock.
func baOrder(r *registry, m *member) {
	m.mu.Lock()
	r.mu.Lock() // want `lock order inversion: lockorder.registry.mu acquired while holding lockorder.member.mu`
	r.members["x"] = m
	r.mu.Unlock()
	m.mu.Unlock()
}

type poolA struct{ mu sync.Mutex }

type poolB struct{ mu sync.Mutex }

// acquireB's lock acquisition is exported to callers via its summary.
func acquireB(b *poolB) {
	b.mu.Lock()
	b.mu.Unlock()
}

// aThenB records the edge poolA.mu -> poolB.mu through the callee summary:
// no lock call on poolB appears in this body at all.
func aThenB(a *poolA, b *poolB) {
	a.mu.Lock()
	acquireB(b) // want `lock order inversion: lockorder.poolB.mu acquired while holding lockorder.poolA.mu`
	a.mu.Unlock()
}

// bThenA is the reverse order, taken directly.
func bThenA(a *poolA, b *poolB) {
	b.mu.Lock()
	a.mu.Lock() // want `lock order inversion: lockorder.poolA.mu acquired while holding lockorder.poolB.mu`
	a.mu.Unlock()
	b.mu.Unlock()
}

// sendWhileLocked parks on a channel send with the lock held.
func sendWhileLocked(r *registry, ch chan int) {
	r.mu.Lock()
	ch <- 1 // want `lock lockorder.registry.mu held across blocking channel send`
	r.mu.Unlock()
}

// deferKeepsHeld: a deferred unlock releases at exit, so the lock is held
// across the conn write.
func deferKeepsHeld(r *registry, conn net.Conn, b []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	conn.Write(b) // want `lock lockorder.registry.mu held across blocking net.Conn Write`
}

// waitWhileLocked blocks on a WaitGroup with the lock held.
func waitWhileLocked(r *registry, wg *sync.WaitGroup) {
	r.mu.Lock()
	wg.Wait() // want `lock lockorder.registry.mu held across blocking WaitGroup.Wait`
	r.mu.Unlock()
}

// waitAll blocks; callers holding a lock inherit that through its summary.
func waitAll(wg *sync.WaitGroup) {
	wg.Wait()
}

func blockViaCallee(r *registry, wg *sync.WaitGroup) {
	r.mu.Lock()
	waitAll(wg) // want `lock lockorder.registry.mu held across call to waitAll, which blocks on WaitGroup.Wait`
	r.mu.Unlock()
}

// branchRelease is clean: on the path that sends, the lock was released
// first — only flow sensitivity can see that.
func branchRelease(r *registry, ch chan int, fast bool) {
	r.mu.Lock()
	if fast {
		r.mu.Unlock()
		ch <- 1
		return
	}
	r.mu.Unlock()
}

// condWait is the condition-variable idiom: Wait releases the locker while
// parked, so holding the lock across it is correct.
func condWait(r *registry, c *sync.Cond, ready *bool) {
	r.mu.Lock()
	for !*ready {
		c.Wait()
	}
	r.mu.Unlock()
}

// tryNotify is a nonblocking send: a select with a default never parks.
func tryNotify(r *registry, ch chan int) {
	r.mu.Lock()
	select {
	case ch <- 1:
	default:
	}
	r.mu.Unlock()
}
