// Package dataflow is a miniature stand-in for the engine's dataflow
// package. The ctxpoll analyzer matches the unexported (*Env).runParts and
// (*Env).aborted by package path, so this fixture is type-checked under the
// real import path gradoop/internal/dataflow with stub implementations of
// just the matched API.
package dataflow

const cancelCheckMask = 255

type Env struct{}

func (e *Env) runParts(n int, f func(int)) {
	for p := 0; p < n; p++ {
		f(p)
	}
}

func (e *Env) aborted() bool { return false }

type Dataset[T any] struct{ env *Env }

func MapPartition[T, U any](d *Dataset[T], f func([]T, func(U))) *Dataset[U] {
	return &Dataset[U]{env: d.env}
}

func unpolledRunParts(env *Env, parts [][]int) {
	sums := make([]int, len(parts))
	env.runParts(len(parts), func(p int) {
		for _, v := range parts[p] { // want `never polls cancellation`
			sums[p] += v
		}
	})
}

func polledRunParts(env *Env, parts [][]int) {
	sums := make([]int, len(parts))
	env.runParts(len(parts), func(p int) {
		for i, v := range parts[p] {
			if i&cancelCheckMask == cancelCheckMask && env.aborted() {
				return
			}
			sums[p] += v
		}
	})
}

func unpolledUDF(d *Dataset[int]) {
	MapPartition(d, func(part []int, emit func(int)) {
		for _, v := range part { // want `never polls cancellation`
			emit(v)
		}
	})
}

// workerVector ranges over the worker-count-sized [][]int partition vector;
// its trip count is the worker count, not the data size, so it is exempt.
func workerVector(env *Env, out [][]int) {
	env.runParts(len(out), func(p int) {
		total := 0
		for q := range out {
			total += len(out[q])
		}
		_ = total
	})
}

// unpolledMap ranges over a data-sized map; maps count too.
func unpolledMap(env *Env, groups []map[uint64]int) {
	env.runParts(len(groups), func(p int) {
		total := 0
		for _, v := range groups[p] { // want `never polls cancellation`
			total += v
		}
		_ = total
	})
}
