// Fixtures for the lint:ignore audit: suppressions must name a registered
// analyzer and carry a reason. Expected findings are asserted by
// TestLintIgnoreAudit (not via want annotations — the findings land on the
// directive comment's own line, which a line comment cannot share with a
// want comment).
package lintignore

func typoedName() int {
	//lint:ignore envmyx the analyzer is spelled envmix; this suppresses nothing
	return 1
}

func missingReason() int {
	//lint:ignore envmix
	return 2
}

func unknownInList() int {
	//lint:ignore tracepair,ctxpol second name is a typo of ctxpoll
	return 3
}

func bareDirective() int {
	//lint:ignore
	return 4
}

func validSuppression() int {
	//lint:ignore envmix a correctly-formed directive produces no audit finding
	return 5
}

func wildcard() int {
	//lint:ignore all wildcard suppressions are valid
	return 6
}
