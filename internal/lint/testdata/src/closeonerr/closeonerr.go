// Fixtures for the closeonerr analyzer: resources acquired in a function
// must be released on every path out of it. The `if err != nil` branch
// guarding the acquisition's own error is exempt (the resource is nil
// there); later error returns are exactly the leak class the CFG walk
// exists to catch. Ownership transfers (returning or passing the resource)
// end the obligation.
package closeonerr

import (
	"errors"
	"net"
	"os"

	"gradoop/internal/govern"
)

// leakOnValidate closes on the happy path but leaks when validation fails
// before the defer is armed.
func leakOnValidate(addr string, bad bool) error {
	conn, err := net.Dial("tcp", addr) // want `conn acquired here is not released on every path`
	if err != nil {
		return err
	}
	if bad {
		return errors.New("validation failed")
	}
	defer conn.Close()
	_, werr := conn.Write([]byte("hello"))
	return werr
}

// closedEverywhere arms the defer immediately after the exempt error
// check: clean.
func closedEverywhere(addr string, bad bool) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if bad {
		return errors.New("rejected, but the defer already covers it")
	}
	return nil
}

// leakFile: the second error return tests a different error (Stat's, not
// Open's) — reaching definitions distinguish the two, so this path leaks.
func leakFile(path string) (int64, error) {
	f, err := os.Open(path) // want `f acquired here is not released on every path`
	if err != nil {
		return 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	f.Close()
	return st.Size(), nil
}

// explicitClose releases on both the error branch and the happy path:
// clean without any defer.
func explicitClose(path string, buf []byte) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if _, rerr := f.Read(buf); rerr != nil {
		f.Close()
		return rerr
	}
	f.Close()
	return nil
}

// handedOff returns the connection: ownership transfers to the caller and
// the obligation with it.
func handedOff(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return conn, nil
}

// deferredClosure releases through an immediately-deferred function
// literal: clean.
func deferredClosure(addr string, b []byte) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer func() {
		conn.Close()
	}()
	_, err = conn.Write(b)
	return err
}

// reservationLeak: broker reservations follow the same rule as conns.
func reservationLeak(b *govern.Broker, bad bool) error {
	res := b.Begin("scan") // want `res acquired here is not released on every path`
	if bad {
		return errors.New("early exit")
	}
	res.Release()
	return nil
}

// reservationClean releases on every path.
func reservationClean(b *govern.Broker, n int64) error {
	res := b.Begin("scan")
	defer res.Release()
	return res.Reserve(n)
}
