// Package dataflow is a miniature stand-in for the engine's dataflow
// package. The memcharge analyzer matches the unexported Env methods
// (runParts, traceRowsOut, chargeMem, ...) by package path, so this fixture
// is type-checked under the real import path gradoop/internal/dataflow with
// stub implementations of just the matched API.
package dataflow

type Env struct{}

func (e *Env) runParts(n int, f func(int)) {
	for p := 0; p < n; p++ {
		f(p)
	}
}

func (e *Env) chargeCPU(p int, n int64)      {}
func (e *Env) chargeMem(p int, n int64) bool { return true }
func (e *Env) traceRowsIn(p int, n int64)    {}
func (e *Env) traceRowsOut(p int, n int64)   {}

// unmetered materializes output (traceRowsOut) without ever metering the
// bytes — the governor cannot see, and therefore cannot kill, this stage.
func unmetered(env *Env, parts [][]int) {
	out := make([][]int, len(parts))
	env.runParts(len(parts), func(p int) { // want `never charges the memory broker`
		res := append([]int(nil), parts[p]...)
		env.chargeCPU(p, int64(len(res)))
		env.traceRowsOut(p, int64(len(res)))
		out[p] = res
	})
}

// meteredDirect charges the materialized bytes in the closure itself.
func meteredDirect(env *Env, parts [][]int) {
	out := make([][]int, len(parts))
	env.runParts(len(parts), func(p int) {
		res := append([]int(nil), parts[p]...)
		if !env.chargeMem(p, int64(len(res)*8)) {
			return
		}
		env.traceRowsOut(p, int64(len(res)))
		out[p] = res
	})
}

// meteredTransitive materializes and meters through a same-package helper;
// the analyzer follows both the trigger and the charge transitively.
func meteredTransitive(env *Env, parts [][]int) {
	out := make([][]int, len(parts))
	env.runParts(len(parts), func(p int) {
		out[p] = buildPartition(env, p, parts[p])
	})
}

func buildPartition(env *Env, p int, part []int) []int {
	res := append([]int(nil), part...)
	if !env.chargeMem(p, int64(len(res)*8)) {
		return nil
	}
	env.traceRowsOut(p, int64(len(res)))
	return res
}

// sendSide records only input rows — the transient shuffle buckets are not
// a materialization the broker accounts, so no charge is demanded.
func sendSide(env *Env, parts [][]int) {
	env.runParts(len(parts), func(p int) {
		env.chargeCPU(p, int64(len(parts[p])))
		env.traceRowsIn(p, int64(len(parts[p])))
	})
}
