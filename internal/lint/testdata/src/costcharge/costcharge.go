// Package dataflow is a miniature stand-in for the engine's dataflow
// package. The costcharge analyzer matches the unexported Env methods
// (runParts, chargeCPU, ...) by package path, so this fixture is
// type-checked under the real import path gradoop/internal/dataflow with
// stub implementations of just the matched API.
package dataflow

type Env struct{}

func (e *Env) runParts(n int, f func(int)) {
	for p := 0; p < n; p++ {
		f(p)
	}
}

func (e *Env) chargeCPU(p int, n int64) {}
func (e *Env) chargeNet(p int, n int64) {}

func uncharged(env *Env, parts [][]int) {
	sums := make([]int, len(parts))
	env.runParts(len(parts), func(p int) { // want `never charges the cost model`
		for _, v := range parts[p] {
			sums[p] += v
		}
	})
}

func chargedDirect(env *Env, parts [][]int) {
	sums := make([]int, len(parts))
	env.runParts(len(parts), func(p int) {
		for _, v := range parts[p] {
			sums[p] += v
		}
		env.chargeCPU(p, int64(len(parts[p])))
	})
}

// chargedTransitive charges through a helper function in the same package;
// the analyzer follows same-package calls.
func chargedTransitive(env *Env, parts [][]int) {
	env.runParts(len(parts), func(p int) {
		ship(env, p, parts[p])
	})
}

func ship(env *Env, p int, part []int) {
	env.chargeNet(p, int64(len(part)*8))
}
