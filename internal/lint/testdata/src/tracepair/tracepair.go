// Package tracepair exercises the tracepair analyzer: every PushOp needs a
// deferred PopOp on the same token, or a panic in the scope leaks the
// operator frame.
package tracepair

import "gradoop/internal/trace"

type opToken struct{ name string }

func balanced(c *trace.Collector, op opToken, eval func() int64) {
	var rows int64
	c.PushOp(op, op.name)
	defer func() { c.PopOp(op, rows) }()
	rows = eval()
}

func balancedDirect(c *trace.Collector, op opToken) {
	c.PushOp(op, op.name)
	defer c.PopOp(op, 0)
}

// straightLine pops on the fall-through path only; a panic between push and
// pop leaks the frame.
func straightLine(c *trace.Collector, op opToken, eval func() int64) {
	c.PushOp(op, op.name) // want `PushOp\(op, \.\.\.\) without a deferred PopOp`
	rows := eval()
	c.PopOp(op, rows)
}

// wrongToken defers a pop, but on a different token; the collector drops
// the mismatched pop and the frame stays open.
func wrongToken(c *trace.Collector, a, b opToken) {
	c.PushOp(a, a.name) // want `PushOp\(a, \.\.\.\) without a deferred PopOp`
	defer c.PopOp(b, 0)
}

// nestedScope pushes inside a literal whose defer is in the outer function;
// the defer does not run when the literal panics, so the push is uncovered.
func nestedScope(c *trace.Collector, op opToken) {
	defer c.PopOp(op, 0)
	func() {
		c.PushOp(op, op.name) // want `PushOp\(op, \.\.\.\) without a deferred PopOp`
	}()
}

// compositeToken matches tokens structurally, the way session.compile pairs
// PushOp(prepareToken{}, ...) with defer PopOp(prepareToken{}, ...).
func compositeToken(c *trace.Collector) {
	c.PushOp(opToken{}, "Prepare")
	defer c.PopOp(opToken{}, 0)
}
