package lint_test

import (
	"testing"

	"gradoop/internal/lint"
	"gradoop/internal/lint/load"
)

// TestRepoIsClean asserts the cypherlint suite reports zero diagnostics
// over the whole module — the invariant `make lint` enforces in CI. A
// failure here means a change reintroduced one of the invariant violations
// the analyzers police (or a new analyzer shipped with unfixed findings).
func TestRepoIsClean(t *testing.T) {
	root, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	l, err := load.New(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	pkgs, err := l.Roots()
	if err != nil {
		t.Fatalf("type-checking module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	// RunProgram, not per-package Run: the flow analyzers (lockorder,
	// goleak) resolve cross-package call-graph summaries in whole-module
	// mode, which is what `make lint`'s standalone pass uses.
	findings, err := lint.RunProgram(pkgs, lint.Analyzers(), nil)
	if err != nil {
		t.Fatalf("linting module: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
}
