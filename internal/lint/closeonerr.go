package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"gradoop/internal/lint/analysis"
)

// CloseOnErrAnalyzer verifies that a resource acquired in a function — a
// net.Conn/net.Listener, an *os.File, a broker reservation — is released on
// every path out of the function, including early error returns. This is
// the leak class CFG analysis exists for: the happy path has its
// `defer conn.Close()`, but a validation failure between the dial and the
// defer returns with the connection open, and under fault injection those
// paths run often enough to exhaust descriptors.
//
// The analysis walks every path from the acquisition to the function exit
// looking for a release: a direct `x.Close()`/`x.Release()` call, or a
// defer of one (including `defer func() { x.Close() }()`). One path shape
// is exempt by reaching-definitions: the true branch of `if err != nil`
// where err's reaching definition is the acquisition itself — a failed
// acquire returns a nil resource, so there is nothing to release there.
// Ownership transfers end the obligation conservatively: a resource that is
// returned, stored, captured by a non-deferred closure, or passed to
// another function is someone else's to close and is not tracked.
var CloseOnErrAnalyzer = &analysis.Analyzer{
	Name: "closeonerr",
	Doc:  "acquired resources (conns, files, reservations) must be released on every path, including early error returns",
	Run:  runCloseOnErr,
}

// acquisition is one tracked resource acquisition site.
type acquisition struct {
	obj     *types.Var // the resource variable
	errObj  *types.Var // the paired error variable, if any
	node    ast.Node   // the acquiring AssignStmt
	release string     // the releasing method name ("Close", "Release")
	block   *analysis.Block
	index   int // node index within block (the assign itself)
}

func runCloseOnErr(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	eachFuncDecl(pass.Files, func(fd *ast.FuncDecl) {
		if isTestFile(pass, fd.Pos()) {
			return
		}
		cfg := analysis.BuildCFG(fd.Body)
		var acqs []acquisition
		for _, b := range cfg.Blocks {
			for i, n := range b.Nodes {
				if a, ok := acquisitionAt(n, info); ok {
					a.block, a.index = b, i
					acqs = append(acqs, a)
				}
			}
		}
		if len(acqs) == 0 {
			return
		}
		reach := analysis.Reaching(cfg, info, paramObjs(fd, info))
		for _, a := range acqs {
			if escapes(fd.Body, a, info) {
				continue
			}
			if leakPos := findLeakPath(cfg, a, reach, info); leakPos.IsValid() {
				pass.Reportf(a.node.Pos(), "%s acquired here is not released on every path: the path through %s reaches return without %s.%s()",
					a.obj.Name(), pass.Fset.Position(leakPos), a.obj.Name(), a.release)
			}
		}
	})
	return nil, nil
}

// acquisitionAt matches `res, err := acquire(...)` / `res := acquire(...)`
// statements whose callee hands out a releasable resource.
func acquisitionAt(n ast.Node, info *types.Info) (acquisition, bool) {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return acquisition{}, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return acquisition{}, false
	}
	release, ok := resourceRelease(calleeOf(info, call))
	if !ok {
		return acquisition{}, false
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return acquisition{}, false
	}
	obj, _ := objOf(info, id).(*types.Var)
	if obj == nil {
		return acquisition{}, false
	}
	a := acquisition{obj: obj, node: as, release: release}
	if len(as.Lhs) == 2 {
		if eid, ok := ast.Unparen(as.Lhs[1]).(*ast.Ident); ok && eid.Name != "_" {
			a.errObj, _ = objOf(info, eid).(*types.Var)
		}
	}
	return a, true
}

// resourceRelease classifies acquiring callees and names their release
// method.
func resourceRelease(fn *types.Func) (string, bool) {
	switch {
	case isPkgFunc(fn, "net", "Dial"), isPkgFunc(fn, "net", "DialTimeout"),
		isPkgFunc(fn, "net", "Listen"), isPkgFunc(fn, "net", "ListenTCP"),
		isPkgFunc(fn, "net", "ListenUDP"), isPkgFunc(fn, "crypto/tls", "Dial"):
		return "Close", true
	case isPkgFunc(fn, "os", "Open"), isPkgFunc(fn, "os", "Create"),
		isPkgFunc(fn, "os", "OpenFile"), isPkgFunc(fn, "os", "CreateTemp"):
		return "Close", true
	case isMethod(fn, "net", "Listener", "Accept"), isMethod(fn, "net", "TCPListener", "Accept"),
		isMethod(fn, "net", "TCPListener", "AcceptTCP"):
		return "Close", true
	case isMethod(fn, "gradoop/internal/govern", "Broker", "Begin"):
		return "Release", true
	}
	return "", false
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// paramObjs collects the function's parameter and named-result objects as
// entry definitions for the reaching pass.
func paramObjs(fd *ast.FuncDecl, info *types.Info) []types.Object {
	var out []types.Object
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	collect(fd.Type.Results)
	return out
}

// escapes reports whether the resource's ownership leaves the function:
// returned, sent, stored, passed along, or captured by a closure that is
// not an immediately-deferred release. Selector uses (method calls, field
// reads), nil comparisons and the acquisition itself are the only
// ownership-preserving uses.
func escapes(body *ast.BlockStmt, a acquisition, info *types.Info) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || objOf(info, id) != types.Object(a.obj) {
			stack = append(stack, n)
			return true
		}
		if insideNonDeferredFuncLit(stack) {
			escaped = true
		} else if len(stack) > 0 {
			switch p := stack[len(stack)-1].(type) {
			case *ast.SelectorExpr:
				// obj.Method(...) / obj.Field — fine.
			case *ast.BinaryExpr:
				// comparisons (conn != nil) — fine.
			case *ast.AssignStmt:
				// The acquisition itself, or a reassignment: a reassigned
				// resource variable has an unclear obligation — give up.
				if p != a.node {
					escaped = true
				} else {
					onLHS := false
					for _, l := range p.Lhs {
						if ast.Unparen(l) == ast.Expr(id) {
							onLHS = true
						}
					}
					if !onLHS {
						escaped = true
					}
				}
			default:
				escaped = true
			}
		}
		stack = append(stack, n)
		return true
	})
	return escaped
}

// insideNonDeferredFuncLit reports whether the innermost enclosing function
// literal, if any, is not the target of an immediate defer call — captures
// by such closures transfer ownership out of this function's CFG.
func insideNonDeferredFuncLit(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); !ok {
			continue
		}
		// lit deferred immediately looks like DeferStmt → CallExpr → FuncLit.
		if i >= 2 {
			if call, ok := stack[i-1].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == stack[i] {
				if _, ok := stack[i-2].(*ast.DeferStmt); ok {
					return false
				}
			}
		}
		return true
	}
	return false
}

// findLeakPath searches every path from the acquisition to the exit for one
// with no release, returning the position of the return/exit edge's source
// (or the acquisition itself) as a witness; an invalid pos means all paths
// release. Error-test branches whose condition reads the acquisition's own
// error are exempt — the resource is nil there.
func findLeakPath(cfg *analysis.CFG, a acquisition, reach *analysis.Reach, info *types.Info) token.Pos {
	type state struct {
		block *analysis.Block
		start int
	}
	visited := map[int]bool{}
	var walk func(s state) token.Pos
	walk = func(s state) token.Pos {
		b := s.block
		if b == cfg.Exit {
			return witnessPos(a)
		}
		if s.start == 0 {
			if visited[b.Index] {
				return token.NoPos
			}
			visited[b.Index] = true
		}
		for i := s.start; i < len(b.Nodes); i++ {
			if releasesResource(b.Nodes[i], a, info) {
				return token.NoPos
			}
		}
		errSucc := errorBranchSucc(b, a, reach, info)
		for _, succ := range b.Succs {
			if succ == errSucc {
				continue
			}
			if pos := walk(state{block: succ}); pos.IsValid() {
				if len(b.Nodes) > 0 {
					return b.Nodes[len(b.Nodes)-1].Pos()
				}
				return pos
			}
		}
		return token.NoPos
	}
	return walk(state{block: a.block, start: a.index + 1})
}

func witnessPos(a acquisition) token.Pos { return a.node.Pos() }

// releasesResource matches a direct release call, or a defer that releases
// (either `defer x.Close()` or `defer func() { ...x.Close()... }()`).
func releasesResource(n ast.Node, a acquisition, info *types.Info) bool {
	if d, ok := n.(*ast.DeferStmt); ok {
		if isReleaseCall(d.Call, a, info) {
			return true
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			found := false
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok && isReleaseCall(call, a, info) {
					found = true
				}
				return !found
			})
			return found
		}
		return false
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		switch x.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok && isReleaseCall(call, a, info) {
			found = true
		}
		return !found
	})
	return found
}

func isReleaseCall(call *ast.CallExpr, a acquisition, info *types.Info) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != a.release {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && objOf(info, id) == types.Object(a.obj)
}

// errorBranchSucc identifies the successor of b reached only when the
// acquisition's own error is non-nil. b must end in an `err != nil` (or
// `err == nil`) condition where err's sole reaching definition is the
// acquisition: then the error branch holds a nil resource.
func errorBranchSucc(b *analysis.Block, a acquisition, reach *analysis.Reach, info *types.Info) *analysis.Block {
	if a.errObj == nil || len(b.Nodes) == 0 {
		return nil
	}
	cond, ok := b.Nodes[len(b.Nodes)-1].(*ast.BinaryExpr)
	if !ok || (cond.Op != token.EQL && cond.Op != token.NEQ) {
		return nil
	}
	var errIdent *ast.Ident
	if isNilIdent(cond.Y) {
		errIdent, _ = ast.Unparen(cond.X).(*ast.Ident)
	} else if isNilIdent(cond.X) {
		errIdent, _ = ast.Unparen(cond.Y).(*ast.Ident)
	}
	if errIdent == nil || objOf(info, errIdent) != types.Object(a.errObj) {
		return nil
	}
	// The condition must test the acquisition's own error: the last write
	// before the cond in this block, or failing that every definition
	// reaching the block, must be the acquiring statement.
	if w := reach.LastWriteBefore(b, a.errObj, cond, info); w != nil {
		if w != a.node {
			return nil
		}
	} else {
		defs := reach.DefsAt(b, a.errObj)
		if len(defs) != 1 || defs[0] != a.node {
			return nil
		}
	}
	// For `err != nil` the error branch is the then-block; for `err == nil`
	// it is the non-then successor.
	for _, s := range b.Succs {
		isThen := s.Kind == "if.then"
		if (cond.Op == token.NEQ) == isThen {
			return s
		}
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
