package planner

import (
	"strings"
	"testing"

	"gradoop/internal/cypher"
	"gradoop/internal/operators"
	"gradoop/internal/stats"
)

// triangleQuery is Q5's shape: three structurally identical vertex leaves
// and three identical edge leaves.
const triangleQuery = `
	MATCH (p1:Person)-[:knows]->(p2:Person),
	      (p2)-[:knows]->(p3:Person),
	      (p1)-[:knows]->(p3)
	RETURN *`

func planWith(t *testing.T, disableReuse bool) (*QueryPlan, *Planner) {
	t.Helper()
	g := skewedGraph(2)
	ast, err := cypher.Parse(triangleQuery)
	if err != nil {
		t.Fatal(err)
	}
	qg, err := cypher.BuildQueryGraph(ast, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl := &Planner{Stats: stats.Collect(g), Morph: operators.Morphism{Edge: operators.Isomorphism},
		DisableReuse: disableReuse}
	qp, err := pl.Plan(PlainAccess{Graph: g}, qg)
	if err != nil {
		t.Fatal(err)
	}
	return qp, pl
}

func countOperators(root operators.Operator, match func(operators.Operator) bool) int {
	seen := map[operators.Operator]bool{}
	n := 0
	var walk func(op operators.Operator)
	walk = func(op operators.Operator) {
		if seen[op] {
			return
		}
		seen[op] = true
		if match(op) {
			n++
		}
		for _, c := range op.Children() {
			walk(c)
		}
	}
	walk(root)
	return n
}

func TestRecurringSubqueriesShareLeaves(t *testing.T) {
	qp, _ := planWith(t, false)
	explain := qp.Explain()
	if !strings.Contains(explain, "Alias") {
		t.Fatalf("no aliases in plan:\n%s", explain)
	}
	// One physical vertex leaf and one physical edge leaf suffice.
	vertexLeaves := countOperators(qp.Root, func(op operators.Operator) bool {
		_, ok := op.(*operators.FilterAndProjectVertices)
		return ok
	})
	edgeLeaves := countOperators(qp.Root, func(op operators.Operator) bool {
		_, ok := op.(*operators.FilterAndProjectEdges)
		return ok
	})
	if vertexLeaves != 1 || edgeLeaves != 1 {
		t.Fatalf("physical leaves: %d vertex, %d edge (want 1 each)\n%s", vertexLeaves, edgeLeaves, explain)
	}

	off, _ := planWith(t, true)
	offVertexLeaves := countOperators(off.Root, func(op operators.Operator) bool {
		_, ok := op.(*operators.FilterAndProjectVertices)
		return ok
	})
	if offVertexLeaves != 3 {
		t.Fatalf("reuse disabled should keep 3 vertex leaves, got %d", offVertexLeaves)
	}
}

func TestRecurringSubqueriesSameResults(t *testing.T) {
	with, _ := planWith(t, false)
	without, _ := planWith(t, true)
	if a, b := with.Execute().Count(), without.Execute().Count(); a != b {
		t.Fatalf("reuse changed results: %d vs %d", a, b)
	}
}

func TestReuseReducesWork(t *testing.T) {
	g := skewedGraph(2)
	ast, _ := cypher.Parse(triangleQuery)
	qg, _ := cypher.BuildQueryGraph(ast, nil)
	st := stats.Collect(g)
	run := func(disable bool) int64 {
		pl := &Planner{Stats: st, DisableReuse: disable}
		qp, err := pl.Plan(PlainAccess{Graph: g}, qg)
		if err != nil {
			t.Fatal(err)
		}
		g.Env().ResetMetrics()
		qp.Execute()
		return g.Env().Metrics().TotalCPU
	}
	shared := run(false)
	duplicated := run(true)
	if shared >= duplicated {
		t.Fatalf("reuse should process fewer elements: shared=%d duplicated=%d", shared, duplicated)
	}
}

func TestReuseRespectsDifferentPredicates(t *testing.T) {
	g := skewedGraph(2)
	// The two Person leaves differ in predicates and must NOT unify.
	ast, _ := cypher.Parse(`MATCH (a:Person)-[:knows]->(b:Person) WHERE a.name = 'a' RETURN *`)
	qg, _ := cypher.BuildQueryGraph(ast, nil)
	pl := &Planner{Stats: stats.Collect(g)}
	qp, err := pl.Plan(PlainAccess{Graph: g}, qg)
	if err != nil {
		t.Fatal(err)
	}
	vertexLeaves := countOperators(qp.Root, func(op operators.Operator) bool {
		_, ok := op.(*operators.FilterAndProjectVertices)
		return ok
	})
	if vertexLeaves != 2 {
		t.Fatalf("distinct predicates must keep 2 leaves, got %d\n%s", vertexLeaves, qp.Explain())
	}
	if got := qp.Execute().Count(); got != 1 {
		t.Fatalf("matches=%d", got)
	}
}

func TestAliasOperator(t *testing.T) {
	g := skewedGraph(1)
	ast, _ := cypher.Parse(`MATCH (p:Person) RETURN *`)
	qg, _ := cypher.BuildQueryGraph(ast, nil)
	qv := qg.Vertices[0]
	leaf := operators.NewFilterAndProjectVertices(g.Vertices, qv)
	alias := operators.NewAlias(leaf, map[string]string{"p": "q"})
	if !alias.Meta().HasVar("q") || alias.Meta().HasVar("p") {
		t.Fatalf("alias meta: %s", alias.Meta())
	}
	if alias.Evaluate().Count() != leaf.Evaluate().Count() {
		t.Fatal("alias changed data")
	}
}
