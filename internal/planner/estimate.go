package planner

import (
	"math"

	"gradoop/internal/cypher"
)

// This file holds the cardinality estimation rules (§3.2): leaf
// cardinalities from label distributions and predicate selectivities, join
// cardinalities from the textbook distinct-value formula, and expansion
// factors for variable length paths from average out-degrees.

// defaultComparisonSelectivity is the assumed fraction of elements passing a
// range comparison when nothing better is known (the classic 1/3).
const defaultComparisonSelectivity = 1.0 / 3

// vertexLeafCard estimates the output of FilterAndProjectVertices.
func (pl *Planner) vertexLeafCard(qv *cypher.QueryVertex) float64 {
	card := float64(pl.Stats.VertexCardinality(qv.Labels))
	for _, pred := range qv.Predicates {
		card *= pl.predicateSelectivity(pred, qv.Labels, true)
	}
	return math.Max(card, 1)
}

// edgeLeafCard estimates the output of FilterAndProjectEdges.
func (pl *Planner) edgeLeafCard(qe *cypher.QueryEdge) float64 {
	card := float64(pl.Stats.EdgeCardinality(qe.Types))
	for _, pred := range qe.Predicates {
		card *= pl.predicateSelectivity(pred, qe.Types, false)
	}
	if qe.Undirected {
		card *= 2
	}
	return math.Max(card, 1)
}

// predicateSelectivity estimates one element-centric conjunct: equality with
// a literal selects 1/d of the elements where d is the distinct value count
// of the accessed key, range comparisons 1/3, everything else 1/2.
func (pl *Planner) predicateSelectivity(pred cypher.Expr, labels []string, isVertex bool) float64 {
	b, ok := pred.(*cypher.BinaryExpr)
	if !ok {
		return 0.5
	}
	pa, paOK := b.L.(*cypher.PropertyAccess)
	// A deferred $parameter estimates like the literal it will be bound to:
	// selectivity is value-independent, so template plans keep the shape the
	// eagerly-bound plan would have.
	litOK := false
	switch b.R.(type) {
	case *cypher.Literal, *cypher.Param:
		litOK = true
	}
	if !paOK || !litOK {
		// literal op literal or access op access on the same element.
		return 0.5
	}
	switch b.Op {
	case cypher.OpEQ:
		var d int64
		if isVertex {
			d = pl.Stats.DistinctVertexPropertyValues(labels, pa.Key)
		} else {
			d = pl.Stats.DistinctEdgePropertyValues(labels, pa.Key)
		}
		return 1 / float64(d)
	case cypher.OpNEQ:
		var d int64
		if isVertex {
			d = pl.Stats.DistinctVertexPropertyValues(labels, pa.Key)
		} else {
			d = pl.Stats.DistinctEdgePropertyValues(labels, pa.Key)
		}
		return 1 - 1/float64(d)
	case cypher.OpLT, cypher.OpLE, cypher.OpGT, cypher.OpGE:
		return defaultComparisonSelectivity
	default:
		return 0.5
	}
}

// varDistinct estimates the number of distinct data vertices a query
// variable can bind to — the distinct-value count of a join attribute.
func (pl *Planner) varDistinct(qg *cypher.QueryGraph, v string) float64 {
	if qv, ok := qg.VertexByVar(v); ok {
		return pl.vertexLeafCard(qv)
	}
	if qe, ok := qg.EdgeByVar(v); ok {
		return pl.edgeLeafCard(qe)
	}
	return 1
}

// joinCard applies |L ⋈ R| = |L|·|R| / Π_v max(1, d(v)) over the shared
// variables v (Garcia-Molina et al.).
func (pl *Planner) joinCard(qg *cypher.QueryGraph, l, r *partial, shared []string) float64 {
	card := l.card * r.card
	for _, v := range shared {
		card /= math.Max(1, pl.varDistinct(qg, v))
	}
	return math.Max(card, 1)
}

// expandCard estimates a variable length expansion: each hop multiplies by
// the average out-degree of the traversed edge types, summed over the
// admissible path lengths. Closing a cycle (far endpoint already bound)
// divides by the endpoint's distinct count.
func (pl *Planner) expandCard(qg *cypher.QueryGraph, p *partial, qe *cypher.QueryEdge, reverse bool) float64 {
	deg := pl.Stats.AverageOutDegree(qe.Types)
	if qe.Undirected {
		deg *= 2
	}
	var factor float64
	for k := qe.MinHops; k <= qe.MaxHops; k++ {
		if k == 0 {
			factor++
			continue
		}
		factor += math.Pow(deg, float64(k))
	}
	card := p.card * math.Max(factor, 1e-9)
	endVar := qe.Target
	if reverse {
		endVar = qe.Source
	}
	if p.covers(endVar) {
		card /= math.Max(1, pl.varDistinct(qg, endVar))
	}
	return math.Max(card, 1)
}
