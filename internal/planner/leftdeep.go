package planner

import (
	"fmt"

	"gradoop/internal/cypher"
	"gradoop/internal/operators"
)

// PlanLeftDeep builds a plan without cost-based reordering: leaves are
// joined left-deep in the order the query states them. It exists as the
// ablation baseline for the greedy planner — the difference between the two
// is exactly the benefit of §3.2's statistics-driven join ordering.
// Predicate placement is identical to the greedy planner, so the comparison
// isolates join order.
func (pl *Planner) PlanLeftDeep(access GraphAccess, qg *cypher.QueryGraph) (*QueryPlan, error) {
	if len(qg.Vertices) == 0 {
		return nil, fmt.Errorf("planner: query graph has no vertices")
	}
	est := map[operators.Operator]float64{}

	var leaves []*partial
	seenVertex := map[string]bool{}
	vertexLeaf := func(name string) *partial {
		qv, _ := qg.VertexByVar(name)
		leaf := operators.NewFilterAndProjectVertices(access.VertexDataset(qv.Labels), qv)
		card := pl.vertexLeafCard(qv)
		est[leaf] = card
		seenVertex[name] = true
		return &partial{op: leaf, card: card, vars: map[string]bool{name: true}}
	}
	var varLength []*cypher.QueryEdge
	for _, qe := range qg.Edges {
		if !seenVertex[qe.Source] {
			leaves = append(leaves, vertexLeaf(qe.Source))
		}
		if !seenVertex[qe.Target] {
			leaves = append(leaves, vertexLeaf(qe.Target))
		}
		if qe.IsVarLength() {
			varLength = append(varLength, qe)
			continue
		}
		leaf := operators.NewFilterAndProjectEdges(access.EdgeDataset(qe.Types), qe)
		card := pl.edgeLeafCard(qe)
		est[leaf] = card
		leaves = append(leaves, &partial{op: leaf, card: card,
			vars: map[string]bool{qe.Source: true, qe.Var: true, qe.Target: true}})
	}
	for _, qv := range qg.Vertices {
		if !seenVertex[qv.Var] {
			leaves = append(leaves, vertexLeaf(qv.Var))
		}
	}

	pending := append([]cypher.Expr(nil), qg.Global...)
	applyPredicates := func(p *partial) {
		var usable []cypher.Expr
		rest := pending[:0]
		meta := p.op.Meta()
		for _, g := range pending {
			ok := true
			for _, v := range cypher.ExprVars(g) {
				if !p.covers(v) {
					ok = false
					break
				}
			}
			cypher.CollectPropAccesses(g, func(variable, key string) {
				if _, has := meta.PropColumn(variable, key); !has {
					ok = false
				}
			})
			if ok {
				usable = append(usable, g)
			} else {
				rest = append(rest, g)
			}
		}
		pending = rest
		if len(usable) > 0 {
			f := operators.NewFilterEmbeddings(p.op, usable)
			est[f] = p.card
			p.op = f
		}
	}
	for _, p := range leaves {
		applyPredicates(p)
	}

	cur := leaves[0]
	rest := leaves[1:]
	for len(rest) > 0 || len(varLength) > 0 {
		progress := false
		// First applicable expansion, in query order.
		for i, qe := range varLength {
			if cur.covers(qe.Source) || cur.covers(qe.Target) {
				reverse := !cur.covers(qe.Source)
				op, err := operators.NewExpandEmbeddings(cur.op, access.EdgeDataset(qe.Types), qe, pl.Morph, reverse)
				if err != nil {
					return nil, err
				}
				cur = &partial{op: op, card: cur.card, vars: unionVars(cur.vars, map[string]bool{
					qe.Var: true, qe.Source: true, qe.Target: true,
				})}
				est[op] = cur.card
				applyPredicates(cur)
				varLength = append(varLength[:i], varLength[i+1:]...)
				progress = true
				break
			}
		}
		if progress {
			continue
		}
		// First leaf sharing a variable, in query order.
		for i, p := range rest {
			if len(sharedVars(cur, p)) == 0 {
				continue
			}
			op := operators.NewJoinEmbeddings(cur.op, p.op, pl.Morph, pl.Hint)
			cur = &partial{op: op, card: cur.card * p.card, vars: unionVars(cur.vars, p.vars)}
			est[op] = cur.card
			applyPredicates(cur)
			rest = append(rest[:i], rest[i+1:]...)
			progress = true
			break
		}
		if progress {
			continue
		}
		if len(rest) == 0 {
			return nil, fmt.Errorf("planner: cannot complete left-deep plan")
		}
		// Disconnected: cartesian with the next leaf.
		op := operators.NewCartesianProduct(cur.op, rest[0].op, pl.Morph)
		cur = &partial{op: op, card: cur.card * rest[0].card, vars: unionVars(cur.vars, rest[0].vars)}
		est[op] = cur.card
		applyPredicates(cur)
		rest = rest[1:]
	}
	if len(pending) > 0 {
		f := operators.NewFilterEmbeddings(cur.op, pending)
		est[f] = cur.card
		cur.op = f
	}
	for _, eg := range qg.Existence {
		sub, _, err := pl.planOptionalGroup(access, qg, &eg.OptionalGroup, est)
		if err != nil {
			return nil, err
		}
		op := operators.NewSemiJoinEmbeddings(cur.op, sub, pl.Morph, eg.Negated)
		est[op] = cur.card
		cur = &partial{op: op, card: cur.card, vars: cur.vars}
	}
	for _, group := range qg.Optional {
		sub, _, err := pl.planOptionalGroup(access, qg, group, est)
		if err != nil {
			return nil, err
		}
		op := operators.NewOptionalJoinEmbeddings(cur.op, sub, pl.Morph, group.Predicates)
		est[op] = cur.card
		cur = &partial{op: op, card: cur.card, vars: unionVars(cur.vars, groupVars(group))}
	}
	return &QueryPlan{Root: cur.op, Estimates: est}, nil
}
