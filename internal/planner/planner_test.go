package planner

import (
	"strings"
	"testing"

	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/operators"
	"gradoop/internal/stats"
)

// skewedGraph has many Posts, few Persons, so label cardinalities matter for
// join ordering.
func skewedGraph(workers int) *epgm.LogicalGraph {
	env := dataflow.NewEnv(dataflow.DefaultConfig(workers))
	var vertices []epgm.Vertex
	var persons []epgm.Vertex
	for i := 0; i < 5; i++ {
		v := epgm.Vertex{ID: epgm.NewID(), Label: "Person",
			Properties: epgm.Properties{}.Set("name", epgm.PVString(string(rune('a'+i))))}
		persons = append(persons, v)
		vertices = append(vertices, v)
	}
	var edges []epgm.Edge
	for i := 0; i < 200; i++ {
		post := epgm.Vertex{ID: epgm.NewID(), Label: "Post"}
		vertices = append(vertices, post)
		edges = append(edges, epgm.Edge{ID: epgm.NewID(), Label: "hasCreator",
			Source: post.ID, Target: persons[i%len(persons)].ID})
	}
	for i := 0; i < 4; i++ {
		edges = append(edges, epgm.Edge{ID: epgm.NewID(), Label: "knows",
			Source: persons[i].ID, Target: persons[i+1].ID})
	}
	return epgm.GraphFromSlices(env, "G", vertices, edges)
}

func plan(t *testing.T, g *epgm.LogicalGraph, query string) *QueryPlan {
	t.Helper()
	ast, err := cypher.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	qg, err := cypher.BuildQueryGraph(ast, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl := &Planner{Stats: stats.Collect(g), Morph: operators.Morphism{}}
	qp, err := pl.Plan(PlainAccess{Graph: g}, qg)
	if err != nil {
		t.Fatal(err)
	}
	return qp
}

func TestPlanExecutesSimpleQuery(t *testing.T) {
	g := skewedGraph(2)
	qp := plan(t, g, `MATCH (p:Person)-[:knows]->(q:Person) RETURN *`)
	if got := qp.Execute().Count(); got != 4 {
		t.Fatalf("matches=%d want 4\n%s", got, qp.Explain())
	}
}

func TestPlannerStartsFromSelectiveSide(t *testing.T) {
	g := skewedGraph(2)
	// knows (4 edges) is far more selective than hasCreator (200); the
	// greedy planner must join knows before touching hasCreator.
	qp := plan(t, g, `MATCH (post:Post)-[:hasCreator]->(p:Person), (p)-[:knows]->(q:Person) RETURN *`)
	explain := qp.Explain()
	// The first (deepest) join must be on the knows side: its estimate is
	// lower. Verify by checking that the root join's left subtree contains
	// the knows leaf.
	join, ok := qp.Root.(*operators.JoinEmbeddings)
	if !ok {
		t.Fatalf("root is %T\n%s", qp.Root, explain)
	}
	if !strings.Contains(join.Left.Description()+deepDescriptions(join.Left), "knows") {
		t.Fatalf("expected knows-side joined first (build side)\n%s", explain)
	}
	if got := qp.Execute().Count(); got != 160 {
		// 4 knows pairs × 40 posts per person.
		t.Fatalf("matches=%d want 160", got)
	}
}

func deepDescriptions(op operators.Operator) string {
	s := op.Description()
	for _, c := range op.Children() {
		s += deepDescriptions(c)
	}
	return s
}

func TestPlannerEstimatesRecorded(t *testing.T) {
	g := skewedGraph(1)
	qp := plan(t, g, `MATCH (p:Person)-[:knows]->(q) RETURN *`)
	if len(qp.Estimates) == 0 {
		t.Fatal("no estimates recorded")
	}
	if _, ok := qp.Estimates[qp.Root]; !ok {
		t.Fatal("root estimate missing")
	}
}

func TestPlannerEqualitySelectivity(t *testing.T) {
	g := skewedGraph(1)
	st := stats.Collect(g)
	pl := &Planner{Stats: st}
	ast, _ := cypher.Parse(`MATCH (p:Person) WHERE p.name = 'a' RETURN *`)
	qg, _ := cypher.BuildQueryGraph(ast, nil)
	qp, err := pl.Plan(PlainAccess{Graph: g}, qg)
	if err != nil {
		t.Fatal(err)
	}
	// 5 persons, 5 distinct names => estimate 1.
	if est := qp.Estimates[qp.Root]; est != 1 {
		t.Fatalf("estimate=%f want 1", est)
	}
	if got := qp.Execute().Count(); got != 1 {
		t.Fatalf("matches=%d", got)
	}
}

func TestPlannerVarLengthExpansion(t *testing.T) {
	g := skewedGraph(2)
	qp := plan(t, g, `MATCH (p:Person)-[e:knows*1..2]->(q:Person) RETURN *`)
	if !strings.Contains(qp.Explain(), "ExpandEmbeddings") {
		t.Fatalf("no expand in plan:\n%s", qp.Explain())
	}
	// Paths: 4 single hops + 3 two-hop chains.
	if got := qp.Execute().Count(); got != 7 {
		t.Fatalf("matches=%d want 7\n%s", got, qp.Explain())
	}
}

func TestPlannerCartesianFallback(t *testing.T) {
	g := skewedGraph(1)
	qp := plan(t, g, `MATCH (p:Person), (q:Person) RETURN *`)
	if !strings.Contains(qp.Explain(), "CartesianProduct") {
		t.Fatalf("expected cartesian product:\n%s", qp.Explain())
	}
	if got := qp.Execute().Count(); got != 25 {
		t.Fatalf("matches=%d want 25", got)
	}
}

func TestPlannerIndexedAccessScansLess(t *testing.T) {
	g := skewedGraph(4)
	idx := epgm.BuildIndex(g)
	ast, _ := cypher.Parse(`MATCH (p:Person)-[:knows]->(q:Person) RETURN *`)
	qg, _ := cypher.BuildQueryGraph(ast, nil)
	st := stats.Collect(g)

	run := func(access GraphAccess) int64 {
		env := access.Env()
		env.ResetMetrics()
		pl := &Planner{Stats: st}
		qp, err := pl.Plan(access, qg)
		if err != nil {
			t.Fatal(err)
		}
		if got := qp.Execute().Count(); got != 4 {
			t.Fatalf("matches=%d", got)
		}
		return env.Metrics().TotalCPU
	}
	plainWork := run(PlainAccess{Graph: g})
	indexedWork := run(IndexedAccess{Index: idx})
	if indexedWork >= plainWork {
		t.Fatalf("indexed access should process fewer elements: plain=%d indexed=%d", plainWork, indexedWork)
	}
}

func TestLeftDeepPlannerAgreesWithGreedy(t *testing.T) {
	g := skewedGraph(3)
	st := stats.Collect(g)
	queries := []string{
		`MATCH (p:Person)-[:knows]->(q:Person) RETURN *`,
		`MATCH (post:Post)-[:hasCreator]->(p:Person), (p)-[:knows]->(q:Person) RETURN *`,
		`MATCH (p:Person)-[e:knows*1..2]->(q:Person) RETURN *`,
		`MATCH (p:Person) WHERE p.name = 'a' RETURN *`,
		`MATCH (p:Person), (q:Post) RETURN *`,
	}
	for _, src := range queries {
		ast, err := cypher.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		qg, err := cypher.BuildQueryGraph(ast, nil)
		if err != nil {
			t.Fatal(err)
		}
		pl := &Planner{Stats: st, Morph: operators.Morphism{Edge: operators.Isomorphism}}
		greedy, err := pl.Plan(PlainAccess{Graph: g}, qg)
		if err != nil {
			t.Fatalf("%s: greedy: %v", src, err)
		}
		leftDeep, err := pl.PlanLeftDeep(PlainAccess{Graph: g}, qg)
		if err != nil {
			t.Fatalf("%s: left-deep: %v", src, err)
		}
		if a, b := greedy.Execute().Count(), leftDeep.Execute().Count(); a != b {
			t.Fatalf("%s: greedy=%d left-deep=%d", src, a, b)
		}
	}
}

func TestPlannerRejectsEmptyQueryGraph(t *testing.T) {
	g := skewedGraph(1)
	pl := &Planner{Stats: stats.Collect(g)}
	if _, err := pl.Plan(PlainAccess{Graph: g}, cypher.AssembleQueryGraph(nil, nil, nil, cypher.ReturnClause{Star: true})); err == nil {
		t.Fatal("expected error for empty query graph")
	}
}
