package planner

import (
	"fmt"
	"hash/fnv"
	"io"

	"gradoop/internal/cypher"
	"gradoop/internal/operators"
)

// Fingerprint returns a deterministic canonical key for the plan: an FNV-64a
// hash over the operator tree's structure (descriptions in tree order). Two
// plans of the same query template under the same semantics, hint and
// statistics produce the same fingerprint; the session's plan cache and the
// /explain endpoint report it.
func (p *QueryPlan) Fingerprint() string {
	h := fnv.New64a()
	var walk func(op operators.Operator)
	walk = func(op operators.Operator) {
		io.WriteString(h, op.Description())
		io.WriteString(h, "(")
		for _, c := range op.Children() {
			walk(c)
		}
		io.WriteString(h, ")")
	}
	walk(p.Root)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Rebind re-instantiates a cached template plan for one execution: it clones
// the operator tree against a fresh GraphAccess (operators hold references
// to env-bound datasets and Cached nodes memoize their result, so a plan
// instance is single-use), substituting the binding's query elements — whose
// predicates carry concrete parameter values — for the template's. Shared
// subtrees (the planner's recurring-subquery Cached leaves) stay shared in
// the clone, and the template's cardinality estimates carry over so Explain
// on the bound plan matches the template.
func Rebind(p *QueryPlan, access GraphAccess, b *cypher.Binding) (*QueryPlan, error) {
	r := &rebinder{
		access: access,
		b:      b,
		memo:   map[operators.Operator]operators.Operator{},
		oldEst: p.Estimates,
		est:    map[operators.Operator]float64{},
	}
	root, err := r.rebind(p.Root)
	if err != nil {
		return nil, err
	}
	return &QueryPlan{Root: root, Estimates: r.est}, nil
}

type rebinder struct {
	access GraphAccess
	b      *cypher.Binding
	memo   map[operators.Operator]operators.Operator
	oldEst map[operators.Operator]float64
	est    map[operators.Operator]float64
}

func (r *rebinder) rebind(op operators.Operator) (operators.Operator, error) {
	if done, ok := r.memo[op]; ok {
		return done, nil
	}
	out, err := r.build(op)
	if err != nil {
		return nil, err
	}
	r.memo[op] = out
	if est, ok := r.oldEst[op]; ok {
		r.est[out] = est
	}
	return out, nil
}

func (r *rebinder) build(op operators.Operator) (operators.Operator, error) {
	switch x := op.(type) {
	case *operators.FilterAndProjectVertices:
		qv, ok := r.b.Vertices[x.Vertex]
		if !ok {
			return nil, fmt.Errorf("planner: rebind: unknown query vertex %q", x.Vertex.Var)
		}
		return operators.NewFilterAndProjectVertices(r.access.VertexDataset(qv.Labels), qv), nil
	case *operators.FilterAndProjectEdges:
		qe, ok := r.b.Edges[x.Edge]
		if !ok {
			return nil, fmt.Errorf("planner: rebind: unknown query edge %q", x.Edge.Var)
		}
		return operators.NewFilterAndProjectEdges(r.access.EdgeDataset(qe.Types), qe), nil
	case *operators.Cached:
		inner, err := r.rebind(x.Inner)
		if err != nil {
			return nil, err
		}
		return operators.NewCached(inner), nil
	case *operators.Alias:
		in, err := r.rebind(x.In)
		if err != nil {
			return nil, err
		}
		return operators.NewAlias(in, x.Rename), nil
	case *operators.FilterEmbeddings:
		in, err := r.rebind(x.In)
		if err != nil {
			return nil, err
		}
		preds, err := r.exprs(x.Predicates)
		if err != nil {
			return nil, err
		}
		return operators.NewFilterEmbeddings(in, preds), nil
	case *operators.ProjectEmbeddings:
		in, err := r.rebind(x.In)
		if err != nil {
			return nil, err
		}
		return operators.NewProjectEmbeddings(in, x.KeepVars, x.KeepProps), nil
	case *operators.JoinEmbeddings:
		l, rgt, err := r.pair(x.Left, x.Right)
		if err != nil {
			return nil, err
		}
		return operators.NewJoinEmbeddings(l, rgt, x.Morph, x.Hint), nil
	case *operators.CartesianProduct:
		l, rgt, err := r.pair(x.Left, x.Right)
		if err != nil {
			return nil, err
		}
		return operators.NewCartesianProduct(l, rgt, x.Morph), nil
	case *operators.ExpandEmbeddings:
		in, err := r.rebind(x.In)
		if err != nil {
			return nil, err
		}
		qe, ok := r.b.Edges[x.Edge]
		if !ok {
			return nil, fmt.Errorf("planner: rebind: unknown query edge %q", x.Edge.Var)
		}
		return operators.NewExpandEmbeddings(in, r.access.EdgeDataset(qe.Types), qe, x.Morph, x.Reverse)
	case *operators.SemiJoinEmbeddings:
		l, rgt, err := r.pair(x.Left, x.Right)
		if err != nil {
			return nil, err
		}
		return operators.NewSemiJoinEmbeddings(l, rgt, x.Morph, x.Negated), nil
	case *operators.OptionalJoinEmbeddings:
		l, rgt, err := r.pair(x.Left, x.Right)
		if err != nil {
			return nil, err
		}
		preds, err := r.exprs(x.Predicates)
		if err != nil {
			return nil, err
		}
		return operators.NewOptionalJoinEmbeddings(l, rgt, x.Morph, preds), nil
	default:
		return nil, fmt.Errorf("planner: rebind: unsupported operator %T", op)
	}
}

func (r *rebinder) pair(left, right operators.Operator) (operators.Operator, operators.Operator, error) {
	l, err := r.rebind(left)
	if err != nil {
		return nil, nil, err
	}
	rgt, err := r.rebind(right)
	if err != nil {
		return nil, nil, err
	}
	return l, rgt, nil
}

// exprs resolves the template predicates' $parameters against the binding.
// Predicates attached to query vertices/edges are already resolved (Bind
// cloned them); this covers the expression lists operators hold directly
// (FilterEmbeddings, OptionalJoinEmbeddings).
func (r *rebinder) exprs(in []cypher.Expr) ([]cypher.Expr, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make([]cypher.Expr, len(in))
	for i, e := range in {
		resolved, err := cypher.ResolveParams(e, r.b.Params)
		if err != nil {
			return nil, err
		}
		out[i] = resolved
	}
	return out, nil
}
