// Package planner implements the greedy cost-based query planner of §3.2:
// it decomposes the query graph into vertex and edge sets and constructs a
// bushy plan of physical operators by repeatedly choosing the join (or
// variable-length expansion) with the smallest estimated intermediate result
// cardinality, using pre-computed graph statistics and textbook cardinality
// estimation.
package planner

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
	"gradoop/internal/epgm"
	"gradoop/internal/operators"
	"gradoop/internal/stats"
)

// GraphAccess abstracts how leaf operators read the data graph, so the
// planner works over both the plain representation (full scans) and the
// IndexedLogicalGraph (per-label datasets, §3.4).
type GraphAccess interface {
	Env() *dataflow.Env
	// VertexDataset returns the vertices to scan for a label alternation
	// (empty = all).
	VertexDataset(labels []string) *dataflow.Dataset[epgm.Vertex]
	// EdgeDataset returns the edges to scan for a type alternation.
	EdgeDataset(types []string) *dataflow.Dataset[epgm.Edge]
}

// PlainAccess scans the full vertex and edge datasets regardless of labels.
type PlainAccess struct{ Graph *epgm.LogicalGraph }

// Env implements GraphAccess.
func (a PlainAccess) Env() *dataflow.Env { return a.Graph.Env() }

// VertexDataset implements GraphAccess.
func (a PlainAccess) VertexDataset([]string) *dataflow.Dataset[epgm.Vertex] { return a.Graph.Vertices }

// EdgeDataset implements GraphAccess.
func (a PlainAccess) EdgeDataset([]string) *dataflow.Dataset[epgm.Edge] { return a.Graph.Edges }

// IndexedAccess reads per-label datasets, loading only what a label
// predicate selects.
type IndexedAccess struct{ Index *epgm.IndexedLogicalGraph }

// Env implements GraphAccess.
func (a IndexedAccess) Env() *dataflow.Env { return a.Index.Env() }

// VertexDataset implements GraphAccess.
func (a IndexedAccess) VertexDataset(labels []string) *dataflow.Dataset[epgm.Vertex] {
	return a.Index.Vertices(labels...)
}

// EdgeDataset implements GraphAccess.
func (a IndexedAccess) EdgeDataset(types []string) *dataflow.Dataset[epgm.Edge] {
	return a.Index.Edges(types...)
}

// Planner holds the planning inputs that stay fixed across queries.
type Planner struct {
	Stats *stats.GraphStatistics
	Morph operators.Morphism
	// Hint is the join strategy passed to JoinEmbeddings.
	Hint dataflow.JoinHint
	// DisableReuse turns off recurring-subquery reuse: by default,
	// structurally identical leaf sub-patterns (same labels, predicates and
	// projections, differing only in variable names) share one cached leaf
	// operator behind per-variable aliases (§6's "recurring subqueries").
	DisableReuse bool
}

// QueryPlan is the output of planning: a physical operator tree plus the
// estimates recorded while building it.
type QueryPlan struct {
	Root      operators.Operator
	Estimates map[operators.Operator]float64
}

// Execute evaluates the plan.
func (p *QueryPlan) Execute() *dataflow.Dataset[embedding.Embedding] { return p.Root.Evaluate() }

// Meta returns the root operator's embedding metadata.
func (p *QueryPlan) Meta() *embedding.Meta { return p.Root.Meta() }

// Explain renders the operator tree bottom-up with estimated cardinalities,
// in the spirit of the paper's Figure 2.
func (p *QueryPlan) Explain() string { return p.ExplainWith(nil) }

// ExplainWith renders the operator tree like Explain, appending annot(op)
// to every operator's line (empty annotations are skipped). EXPLAIN ANALYZE
// is built on it: core passes an annotator that joins each plan node with
// the actual cardinalities and per-stage times recorded by the execution
// tracer.
func (p *QueryPlan) ExplainWith(annot func(operators.Operator) string) string {
	var sb strings.Builder
	var walk func(op operators.Operator, depth int)
	walk = func(op operators.Operator, depth int) {
		fmt.Fprintf(&sb, "%s%s", strings.Repeat("  ", depth), op.Description())
		if est, ok := p.Estimates[op]; ok {
			fmt.Fprintf(&sb, "  ~%.0f rows", est)
		}
		if annot != nil {
			if a := annot(op); a != "" {
				sb.WriteString("  " + a)
			}
		}
		sb.WriteByte('\n')
		for _, c := range op.Children() {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return sb.String()
}

// PlanNode is one operator of the tree in Explain order (parent before
// children, children in declaration order) with its rendering depth.
type PlanNode struct {
	Op    operators.Operator
	Depth int
}

// Nodes flattens the operator tree in exactly the order ExplainWith visits
// it, so per-node metadata built from this slice lines up index-for-index
// with Explain's annotator calls.
func (p *QueryPlan) Nodes() []PlanNode {
	var out []PlanNode
	var walk func(op operators.Operator, depth int)
	walk = func(op operators.Operator, depth int) {
		out = append(out, PlanNode{Op: op, Depth: depth})
		for _, c := range op.Children() {
			walk(c, depth+1)
		}
	}
	walk(p.Root, 0)
	return out
}

// partial is one in-progress sub-plan during greedy enumeration.
type partial struct {
	op   operators.Operator
	card float64
	vars map[string]bool
}

func (p *partial) covers(v string) bool { return p.vars[v] }

// Plan builds a physical plan for the query graph.
func (pl *Planner) Plan(access GraphAccess, qg *cypher.QueryGraph) (*QueryPlan, error) {
	if len(qg.Vertices) == 0 {
		return nil, fmt.Errorf("planner: query graph has no vertices")
	}
	est := map[operators.Operator]float64{}

	// Leaf plans: one per query vertex and one per simple query edge.
	// Structurally identical leaves share one cached operator behind
	// aliases unless reuse is disabled.
	type canonicalLeaf struct {
		op   operators.Operator
		vars []string // canonical variable names in column order
	}
	vertexLeaves := map[string]canonicalLeaf{}
	edgeLeaves := map[string]canonicalLeaf{}

	var plans []*partial
	for _, qv := range qg.Vertices {
		card := pl.vertexLeafCard(qv)
		var op operators.Operator
		sig := vertexSignature(qv)
		if canon, ok := vertexLeaves[sig]; ok && !pl.DisableReuse {
			op = operators.NewAlias(canon.op, map[string]string{canon.vars[0]: qv.Var})
		} else {
			leaf := operators.NewFilterAndProjectVertices(access.VertexDataset(qv.Labels), qv)
			est[leaf] = card
			if !pl.DisableReuse {
				cached := operators.NewCached(leaf)
				est[cached] = card
				vertexLeaves[sig] = canonicalLeaf{op: cached, vars: []string{qv.Var}}
				op = cached
			} else {
				op = leaf
			}
		}
		est[op] = card
		plans = append(plans, &partial{op: op, card: card, vars: map[string]bool{qv.Var: true}})
	}
	var varLength []*cypher.QueryEdge
	for _, qe := range qg.Edges {
		if qe.IsVarLength() {
			varLength = append(varLength, qe)
			continue
		}
		card := pl.edgeLeafCard(qe)
		var op operators.Operator
		sig := edgeSignature(qe)
		if canon, ok := edgeLeaves[sig]; ok && !pl.DisableReuse {
			rename := map[string]string{canon.vars[0]: qe.Source, canon.vars[1]: qe.Var}
			if len(canon.vars) == 3 {
				rename[canon.vars[2]] = qe.Target
			}
			op = operators.NewAlias(canon.op, rename)
		} else {
			leaf := operators.NewFilterAndProjectEdges(access.EdgeDataset(qe.Types), qe)
			est[leaf] = card
			if !pl.DisableReuse {
				cached := operators.NewCached(leaf)
				est[cached] = card
				vars := []string{qe.Source, qe.Var}
				if qe.Source != qe.Target {
					vars = append(vars, qe.Target)
				}
				edgeLeaves[sig] = canonicalLeaf{op: cached, vars: vars}
				op = cached
			} else {
				op = leaf
			}
		}
		est[op] = card
		vars := map[string]bool{qe.Source: true, qe.Var: true, qe.Target: true}
		plans = append(plans, &partial{op: op, card: card, vars: vars})
	}

	// Global predicates not yet applied, keyed by their variable sets and
	// property references: a predicate is evaluable only once the partial
	// covers all referenced variables AND its embeddings carry the needed
	// property columns (vertex properties live on vertex leaves, not on the
	// edge leaves that first cover the variable).
	type pendingPred struct {
		expr  cypher.Expr
		vars  []string
		props []embedding.PropRef
	}
	var pending []pendingPred
	for _, g := range qg.Global {
		pp := pendingPred{expr: g, vars: cypher.ExprVars(g)}
		cypher.CollectPropAccesses(g, func(variable, key string) {
			pp.props = append(pp.props, embedding.PropRef{Var: variable, Key: key})
		})
		pending = append(pending, pp)
	}
	applyPredicates := func(p *partial) {
		var usable []cypher.Expr
		rest := pending[:0]
		meta := p.op.Meta()
		for _, pp := range pending {
			all := true
			for _, v := range pp.vars {
				if !p.covers(v) {
					all = false
					break
				}
			}
			for _, ref := range pp.props {
				if _, ok := meta.PropColumn(ref.Var, ref.Key); !ok {
					all = false
					break
				}
			}
			if all {
				usable = append(usable, pp.expr)
			} else {
				rest = append(rest, pp)
			}
		}
		pending = rest
		if len(usable) > 0 {
			f := operators.NewFilterEmbeddings(p.op, usable)
			p.card *= math.Pow(0.25, float64(len(usable)))
			if p.card < 1 {
				p.card = 1
			}
			est[f] = p.card
			p.op = f
		}
	}
	for _, p := range plans {
		applyPredicates(p)
	}

	// Greedy combination until a single plan covers everything.
	for len(plans) > 1 || len(varLength) > 0 {
		type candidate struct {
			kind    string // "join", "expand", "cross"
			i, j    int    // plan indices (j unused for expand)
			edge    int    // index into varLength for expand
			reverse bool
			card    float64
		}
		best := candidate{card: math.Inf(1)}

		for i := 0; i < len(plans); i++ {
			for j := i + 1; j < len(plans); j++ {
				shared := sharedVars(plans[i], plans[j])
				if len(shared) == 0 {
					continue
				}
				card := pl.joinCard(qg, plans[i], plans[j], shared)
				if card < best.card {
					best = candidate{kind: "join", i: i, j: j, card: card}
				}
			}
		}
		for ei, qe := range varLength {
			for i, p := range plans {
				fw := p.covers(qe.Source)
				bw := p.covers(qe.Target)
				if fw {
					card := pl.expandCard(qg, p, qe, false)
					if card < best.card {
						best = candidate{kind: "expand", i: i, edge: ei, reverse: false, card: card}
					}
				}
				if bw && !fw {
					card := pl.expandCard(qg, p, qe, true)
					if card < best.card {
						best = candidate{kind: "expand", i: i, edge: ei, reverse: true, card: card}
					}
				}
			}
		}
		if math.IsInf(best.card, 1) {
			// Disconnected pattern: cheapest cartesian product.
			if len(plans) < 2 {
				return nil, fmt.Errorf("planner: cannot complete plan (unreachable variable-length edge)")
			}
			sort.Slice(plans, func(a, b int) bool { return plans[a].card < plans[b].card })
			l, r := plans[0], plans[1]
			op := operators.NewCartesianProduct(l.op, r.op, pl.Morph)
			merged := &partial{op: op, card: l.card * r.card, vars: unionVars(l.vars, r.vars)}
			est[op] = merged.card
			applyPredicates(merged)
			plans = append([]*partial{merged}, plans[2:]...)
			continue
		}

		switch best.kind {
		case "join":
			l, r := plans[best.i], plans[best.j]
			// Build side (left) should be the smaller input.
			if r.card < l.card {
				l, r = r, l
			}
			op := operators.NewJoinEmbeddings(l.op, r.op, pl.Morph, pl.Hint)
			merged := &partial{op: op, card: best.card, vars: unionVars(l.vars, r.vars)}
			est[op] = best.card
			applyPredicates(merged)
			next := plans[:0]
			for k, p := range plans {
				if k != best.i && k != best.j {
					next = append(next, p)
				}
			}
			plans = append(next, merged)
		case "expand":
			p := plans[best.i]
			qe := varLength[best.edge]
			op, err := operators.NewExpandEmbeddings(p.op, access.EdgeDataset(qe.Types), qe, pl.Morph, best.reverse)
			if err != nil {
				return nil, err
			}
			merged := &partial{op: op, card: best.card, vars: unionVars(p.vars, map[string]bool{
				qe.Var: true, qe.Source: true, qe.Target: true,
			})}
			est[op] = best.card
			applyPredicates(merged)
			plans[best.i] = merged
			varLength = append(varLength[:best.edge], varLength[best.edge+1:]...)
		}
	}
	if len(pending) > 0 {
		exprs := make([]cypher.Expr, len(pending))
		for i, pp := range pending {
			exprs[i] = pp.expr
		}
		f := operators.NewFilterEmbeddings(plans[0].op, exprs)
		est[f] = plans[0].card
		plans[0].op = f
	}

	// exists()/NOT exists() predicates filter the mandatory solutions
	// through semi/anti joins.
	for _, eg := range qg.Existence {
		sub, _, err := pl.planOptionalGroup(access, qg, &eg.OptionalGroup, est)
		if err != nil {
			return nil, err
		}
		op := operators.NewSemiJoinEmbeddings(plans[0].op, sub, pl.Morph, eg.Negated)
		card := math.Max(plans[0].card*0.5, 1)
		est[op] = card
		plans[0] = &partial{op: op, card: card, vars: plans[0].vars}
	}

	// OPTIONAL MATCH groups extend the mandatory solutions through left
	// outer joins, in clause order.
	for _, group := range qg.Optional {
		sub, subCard, err := pl.planOptionalGroup(access, qg, group, est)
		if err != nil {
			return nil, err
		}
		op := operators.NewOptionalJoinEmbeddings(plans[0].op, sub, pl.Morph, group.Predicates)
		// Every left row survives; extensions multiply at most by the
		// group's fan-out estimate.
		card := math.Max(plans[0].card, plans[0].card*subCard/math.Max(1, float64(pl.Stats.VertexCount)))
		est[op] = card
		plans[0] = &partial{op: op, card: card, vars: unionVars(plans[0].vars, groupVars(group))}
	}
	return &QueryPlan{Root: plans[0].op, Estimates: est}, nil
}

func groupVars(group *cypher.OptionalGroup) map[string]bool {
	vars := map[string]bool{}
	for _, qv := range group.Vertices {
		vars[qv.Var] = true
	}
	for _, qe := range group.Edges {
		vars[qe.Var] = true
		vars[qe.Source] = true
		vars[qe.Target] = true
	}
	return vars
}

// planOptionalGroup builds the sub-plan producing one OPTIONAL MATCH
// group's embeddings: leaves for the group's new vertices and its edges,
// combined greedily by estimated cardinality.
func (pl *Planner) planOptionalGroup(access GraphAccess, qg *cypher.QueryGraph, group *cypher.OptionalGroup, est map[operators.Operator]float64) (operators.Operator, float64, error) {
	var plans []*partial
	for _, qv := range group.Vertices {
		leaf := operators.NewFilterAndProjectVertices(access.VertexDataset(qv.Labels), qv)
		card := pl.vertexLeafCard(qv)
		est[leaf] = card
		plans = append(plans, &partial{op: leaf, card: card, vars: map[string]bool{qv.Var: true}})
	}
	for _, qe := range group.Edges {
		leaf := operators.NewFilterAndProjectEdges(access.EdgeDataset(qe.Types), qe)
		card := pl.edgeLeafCard(qe)
		est[leaf] = card
		plans = append(plans, &partial{op: leaf, card: card,
			vars: map[string]bool{qe.Source: true, qe.Var: true, qe.Target: true}})
	}
	if len(plans) == 0 {
		return nil, 0, fmt.Errorf("planner: empty OPTIONAL MATCH group")
	}
	for len(plans) > 1 {
		bestI, bestJ := -1, -1
		bestCard := math.Inf(1)
		for i := 0; i < len(plans); i++ {
			for j := i + 1; j < len(plans); j++ {
				shared := sharedVars(plans[i], plans[j])
				if len(shared) == 0 {
					continue
				}
				if card := pl.joinCard(qg, plans[i], plans[j], shared); card < bestCard {
					bestI, bestJ, bestCard = i, j, card
				}
			}
		}
		var merged *partial
		if bestI < 0 {
			sort.Slice(plans, func(a, b int) bool { return plans[a].card < plans[b].card })
			op := operators.NewCartesianProduct(plans[0].op, plans[1].op, pl.Morph)
			merged = &partial{op: op, card: plans[0].card * plans[1].card,
				vars: unionVars(plans[0].vars, plans[1].vars)}
			est[op] = merged.card
			plans = append([]*partial{merged}, plans[2:]...)
			continue
		}
		l, r := plans[bestI], plans[bestJ]
		if r.card < l.card {
			l, r = r, l
		}
		op := operators.NewJoinEmbeddings(l.op, r.op, pl.Morph, pl.Hint)
		merged = &partial{op: op, card: bestCard, vars: unionVars(l.vars, r.vars)}
		est[op] = bestCard
		next := plans[:0]
		for k, p := range plans {
			if k != bestI && k != bestJ {
				next = append(next, p)
			}
		}
		plans = append(next, merged)
	}
	return plans[0].op, plans[0].card, nil
}

// vertexSignature renders a query vertex's structure with its variable name
// normalized away, so structurally identical vertices share a leaf.
func vertexSignature(qv *cypher.QueryVertex) string {
	return strings.Join(qv.Labels, "|") + "\x01" +
		normalizePreds(qv.Predicates, map[string]string{qv.Var: "\x02"}) + "\x01" +
		strings.Join(qv.Projection, ",")
}

// edgeSignature is the edge-side analogue; loop edges ((a)-[e]->(a)) and
// undirected edges have different physical shapes and never unify with
// directed non-loops.
func edgeSignature(qe *cypher.QueryEdge) string {
	return fmt.Sprintf("%s\x01%s\x01%s\x01%v\x01%v",
		strings.Join(qe.Types, "|"),
		normalizePreds(qe.Predicates, map[string]string{qe.Var: "\x02"}),
		strings.Join(qe.Projection, ","),
		qe.Undirected, qe.Source == qe.Target)
}

func normalizePreds(preds []cypher.Expr, rename map[string]string) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = cypher.ExprString(cypher.RenameVars(p, rename))
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

func sharedVars(a, b *partial) []string {
	var out []string
	for v := range a.vars {
		if b.vars[v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

func unionVars(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for v := range a {
		out[v] = true
	}
	for v := range b {
		out[v] = true
	}
	return out
}
