package planner

import (
	"strings"
	"testing"

	"gradoop/internal/operators"
)

// TestExplainShapeMultiJoin: the rendering of a multi-join plan must be one
// line per operator, indented by tree depth, each carrying a cardinality
// estimate.
func TestExplainShapeMultiJoin(t *testing.T) {
	g := skewedGraph(2)
	qp := plan(t, g, `MATCH (p:Person)-[:knows]->(q:Person)<-[:hasCreator]-(m:Post) RETURN *`)
	explain := qp.Explain()

	if strings.Count(explain, "JoinEmbeddings") < 2 {
		t.Fatalf("expected a multi-join plan:\n%s", explain)
	}
	lines := strings.Split(strings.TrimRight(explain, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "JoinEmbeddings") {
		t.Errorf("root line %q is not the top join", lines[0])
	}
	var ops int
	var walk func(op operators.Operator)
	walk = func(op operators.Operator) {
		ops++
		for _, c := range op.Children() {
			walk(c)
		}
	}
	walk(qp.Root)
	if len(lines) != ops {
		t.Errorf("explain has %d lines for %d operators:\n%s", len(lines), ops, explain)
	}
	for i, line := range lines {
		if !strings.Contains(line, " rows") || !strings.Contains(line, "~") {
			t.Errorf("line %d lacks a cardinality estimate: %q", i, line)
		}
		if i > 0 && !strings.HasPrefix(line, "  ") {
			t.Errorf("non-root line %d is not indented: %q", i, line)
		}
	}
}

// TestExplainWithAnnotations: ExplainWith must append the annotator's text
// to every line and skip empty annotations.
func TestExplainWithAnnotations(t *testing.T) {
	g := skewedGraph(2)
	qp := plan(t, g, `MATCH (p:Person)-[:knows]->(q:Person) RETURN *`)

	annotated := qp.ExplainWith(func(op operators.Operator) string {
		if _, ok := op.(*operators.JoinEmbeddings); ok {
			return "[marked]"
		}
		return ""
	})
	joins := strings.Count(qp.Explain(), "JoinEmbeddings")
	if got := strings.Count(annotated, "[marked]"); got != joins {
		t.Errorf("got %d annotations for %d joins:\n%s", got, joins, annotated)
	}
	if qp.ExplainWith(nil) != qp.Explain() {
		t.Error("ExplainWith(nil) differs from Explain()")
	}
}
