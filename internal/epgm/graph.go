package epgm

import (
	"gradoop/internal/dataflow"
)

// LogicalGraph is the EPGM's primary abstraction: a graph head plus
// partitioned vertex and edge datasets. It is the input and output type of
// all unary analytical operators.
type LogicalGraph struct {
	env      *dataflow.Env
	Head     GraphHead
	Vertices *dataflow.Dataset[Vertex]
	Edges    *dataflow.Dataset[Edge]
}

// NewLogicalGraph wraps existing datasets into a logical graph.
func NewLogicalGraph(env *dataflow.Env, head GraphHead, vertices *dataflow.Dataset[Vertex], edges *dataflow.Dataset[Edge]) *LogicalGraph {
	return &LogicalGraph{env: env, Head: head, Vertices: vertices, Edges: edges}
}

// GraphFromSlices builds a logical graph from in-memory element slices,
// stamping every element with the new graph's membership. It is the entry
// point used by generators and tests.
func GraphFromSlices(env *dataflow.Env, label string, vertices []Vertex, edges []Edge) *LogicalGraph {
	head := GraphHead{ID: NewID(), Label: label}
	vs := make([]Vertex, len(vertices))
	for i, v := range vertices {
		v.GraphIDs = v.GraphIDs.Clone().Add(head.ID)
		vs[i] = v
	}
	es := make([]Edge, len(edges))
	for i, e := range edges {
		e.GraphIDs = e.GraphIDs.Clone().Add(head.ID)
		es[i] = e
	}
	return &LogicalGraph{
		env:      env,
		Head:     head,
		Vertices: dataflow.FromSlice(env, vs),
		Edges:    dataflow.FromSlice(env, es),
	}
}

// Env returns the graph's execution environment.
func (g *LogicalGraph) Env() *dataflow.Env { return g.env }

// VertexCount returns |V|.
func (g *LogicalGraph) VertexCount() int64 { return g.Vertices.Count() }

// EdgeCount returns |E|.
func (g *LogicalGraph) EdgeCount() int64 { return g.Edges.Count() }

// GraphCollection is a set of logical graphs sharing vertex and edge
// datasets; membership is stored on the elements (Definition 2.1).
type GraphCollection struct {
	env      *dataflow.Env
	Heads    *dataflow.Dataset[GraphHead]
	Vertices *dataflow.Dataset[Vertex]
	Edges    *dataflow.Dataset[Edge]
}

// NewGraphCollection wraps existing datasets into a collection.
func NewGraphCollection(env *dataflow.Env, heads *dataflow.Dataset[GraphHead], vertices *dataflow.Dataset[Vertex], edges *dataflow.Dataset[Edge]) *GraphCollection {
	return &GraphCollection{env: env, Heads: heads, Vertices: vertices, Edges: edges}
}

// EmptyCollection returns a collection with no graphs.
func EmptyCollection(env *dataflow.Env) *GraphCollection {
	return &GraphCollection{
		env:      env,
		Heads:    dataflow.Empty[GraphHead](env),
		Vertices: dataflow.Empty[Vertex](env),
		Edges:    dataflow.Empty[Edge](env),
	}
}

// Env returns the collection's execution environment.
func (c *GraphCollection) Env() *dataflow.Env { return c.env }

// GraphCount returns the number of logical graphs in the collection.
func (c *GraphCollection) GraphCount() int64 { return c.Heads.Count() }

// Graph materializes a single logical graph of the collection by id,
// filtering the shared element datasets on membership. The second result is
// false if no head with that id exists.
func (c *GraphCollection) Graph(id ID) (*LogicalGraph, bool) {
	var head GraphHead
	found := false
	for _, h := range c.Heads.Collect() {
		if h.ID == id {
			head, found = h, true
			break
		}
	}
	if !found {
		return nil, false
	}
	vs := dataflow.Filter(c.Vertices, func(v Vertex) bool { return v.GraphIDs.Contains(id) })
	es := dataflow.Filter(c.Edges, func(e Edge) bool { return e.GraphIDs.Contains(id) })
	return &LogicalGraph{env: c.env, Head: head, Vertices: vs, Edges: es}, true
}

// AsCollection lifts a logical graph into a single-element collection.
func (g *LogicalGraph) AsCollection() *GraphCollection {
	return &GraphCollection{
		env:      g.env,
		Heads:    dataflow.FromSlice(g.env, []GraphHead{g.Head}),
		Vertices: g.Vertices,
		Edges:    g.Edges,
	}
}
