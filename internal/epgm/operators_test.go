package epgm

import (
	"testing"

	"gradoop/internal/dataflow"
)

// socialGraph builds the paper's Figure 1 social network: persons knowing
// each other, studying at universities, located in cities.
func socialGraph(t testing.TB, workers int) *LogicalGraph {
	t.Helper()
	return socialGraphOn(t, dataflow.NewEnv(dataflow.DefaultConfig(workers)))
}

// socialGraphOn builds the social graph on an existing environment, so
// tests can combine several graphs without tripping the engine's
// cross-environment guard (dataflow.ErrEnvMismatch).
func socialGraphOn(t testing.TB, env *dataflow.Env) *LogicalGraph {
	t.Helper()
	person := func(name, gender string, yob int64) Vertex {
		return Vertex{ID: NewID(), Label: "Person", Properties: Properties{}.
			Set("name", PVString(name)).Set("gender", PVString(gender)).Set("yob", PVInt(yob))}
	}
	alice := person("Alice", "female", 1984)
	bob := person("Bob", "male", 1985)
	eve := person("Eve", "female", 1984)
	carol := person("Carol", "female", 1990)
	uni := Vertex{ID: NewID(), Label: "University", Properties: Properties{}.Set("name", PVString("Uni Leipzig"))}
	city := Vertex{ID: NewID(), Label: "City", Properties: Properties{}.Set("name", PVString("Leipzig"))}
	edge := func(label string, s, t Vertex, props Properties) Edge {
		return Edge{ID: NewID(), Label: label, Source: s.ID, Target: t.ID, Properties: props}
	}
	vertices := []Vertex{alice, bob, eve, carol, uni, city}
	edges := []Edge{
		edge("knows", alice, bob, nil),
		edge("knows", bob, alice, nil),
		edge("knows", bob, eve, nil),
		edge("knows", eve, carol, nil),
		edge("studyAt", alice, uni, Properties{}.Set("classYear", PVInt(2015))),
		edge("studyAt", bob, uni, Properties{}.Set("classYear", PVInt(2014))),
		edge("studyAt", eve, uni, Properties{}.Set("classYear", PVInt(2016))),
		edge("isLocatedIn", uni, city, nil),
	}
	return GraphFromSlices(env, "Community", vertices, edges)
}

func TestGraphFromSlicesStampsMembership(t *testing.T) {
	g := socialGraph(t, 4)
	for _, v := range g.Vertices.Collect() {
		if !v.GraphIDs.Contains(g.Head.ID) {
			t.Fatalf("vertex %d not member of graph", v.ID)
		}
	}
	if g.VertexCount() != 6 || g.EdgeCount() != 8 {
		t.Fatalf("counts: %d vertices, %d edges", g.VertexCount(), g.EdgeCount())
	}
}

func TestSubgraph(t *testing.T) {
	g := socialGraph(t, 3)
	sg := g.Subgraph(
		func(v Vertex) bool { return v.Label == "Person" },
		func(e Edge) bool { return e.Label == "knows" },
	)
	if got := sg.VertexCount(); got != 4 {
		t.Fatalf("vertices=%d want 4", got)
	}
	if got := sg.EdgeCount(); got != 4 {
		t.Fatalf("edges=%d want 4", got)
	}
}

func TestSubgraphRemovesDanglingEdges(t *testing.T) {
	g := socialGraph(t, 2)
	// Keep only female persons; knows edges to Bob must disappear even
	// though the edge predicate allows everything.
	sg := g.Subgraph(func(v Vertex) bool {
		return v.Label == "Person" && v.Properties.Get("gender").Str() == "female"
	}, nil)
	if got := sg.VertexCount(); got != 3 {
		t.Fatalf("vertices=%d want 3", got)
	}
	// Only eve->carol survives among females.
	if got := sg.EdgeCount(); got != 1 {
		t.Fatalf("edges=%d want 1", got)
	}
}

func TestTransform(t *testing.T) {
	g := socialGraph(t, 2)
	tg := g.Transform(nil, func(v Vertex) Vertex {
		v.Properties = v.Properties.Clone().Set("seen", PVBool(true))
		return v
	}, nil)
	for _, v := range tg.Vertices.Collect() {
		if !v.Properties.Get("seen").Bool() {
			t.Fatalf("vertex %d not transformed", v.ID)
		}
	}
	// Original untouched.
	for _, v := range g.Vertices.Collect() {
		if v.Properties.Has("seen") {
			t.Fatal("transform mutated source graph")
		}
	}
}

func TestAggregate(t *testing.T) {
	g := socialGraph(t, 2)
	ag := g.Aggregate(VertexCountAgg(), EdgeCountAgg(), SumVertexPropertyAgg("yob"),
		MinVertexPropertyAgg("yob"), MaxVertexPropertyAgg("yob"))
	p := ag.Head.Properties
	if p.Get("vertexCount").Int() != 6 || p.Get("edgeCount").Int() != 8 {
		t.Fatalf("counts: %v", p)
	}
	if p.Get("sum_yob").Float() != 1984+1985+1984+1990 {
		t.Fatalf("sum_yob=%v", p.Get("sum_yob"))
	}
	if p.Get("min_yob").Float() != 1984 || p.Get("max_yob").Float() != 1990 {
		t.Fatalf("min/max: %v %v", p.Get("min_yob"), p.Get("max_yob"))
	}
}

func TestAggregateEmptyPropertyIsNull(t *testing.T) {
	g := socialGraph(t, 1)
	ag := g.Aggregate(MinVertexPropertyAgg("salary"))
	if !ag.Head.Properties.Get("min_salary").IsNull() {
		t.Fatal("aggregate over absent property should be Null")
	}
}

func TestGroupByLabel(t *testing.T) {
	g := socialGraph(t, 3)
	grouped := g.GroupBy(GroupingConfig{GroupByVertexLabel: true, GroupByEdgeLabel: true})
	vs := grouped.Vertices.Collect()
	if len(vs) != 3 { // Person, University, City
		t.Fatalf("super-vertices=%d want 3", len(vs))
	}
	counts := map[string]int64{}
	for _, v := range vs {
		counts[v.Label] = v.Properties.Get("count").Int()
	}
	if counts["Person"] != 4 || counts["University"] != 1 || counts["City"] != 1 {
		t.Fatalf("counts=%v", counts)
	}
	es := grouped.Edges.Collect()
	ecounts := map[string]int64{}
	for _, e := range es {
		ecounts[e.Label] += e.Properties.Get("count").Int()
	}
	if ecounts["knows"] != 4 || ecounts["studyAt"] != 3 || ecounts["isLocatedIn"] != 1 {
		t.Fatalf("edge counts=%v", ecounts)
	}
}

func TestGroupByProperty(t *testing.T) {
	g := socialGraph(t, 2)
	persons := g.Subgraph(func(v Vertex) bool { return v.Label == "Person" }, func(Edge) bool { return true })
	grouped := persons.GroupBy(GroupingConfig{
		GroupByVertexLabel: true,
		VertexPropertyKeys: []string{"gender"},
	})
	vs := grouped.Vertices.Collect()
	if len(vs) != 2 {
		t.Fatalf("groups=%d want 2 (female/male)", len(vs))
	}
	byGender := map[string]int64{}
	for _, v := range vs {
		byGender[v.Properties.Get("gender").Str()] = v.Properties.Get("count").Int()
	}
	if byGender["female"] != 3 || byGender["male"] != 1 {
		t.Fatalf("by gender: %v", byGender)
	}
}

func TestCombinationOverlapExclusion(t *testing.T) {
	g := socialGraph(t, 2)
	persons := g.Subgraph(func(v Vertex) bool { return v.Label == "Person" }, nil)
	females := g.Subgraph(func(v Vertex) bool {
		return v.Label == "Person" && v.Properties.Get("gender").Str() == "female"
	}, nil)

	comb := persons.Combination(females)
	if got := comb.VertexCount(); got != 4 {
		t.Fatalf("combination vertices=%d want 4", got)
	}
	over := persons.Overlap(females)
	if got := over.VertexCount(); got != 3 {
		t.Fatalf("overlap vertices=%d want 3", got)
	}
	excl := persons.Exclusion(females)
	if got := excl.VertexCount(); got != 1 {
		t.Fatalf("exclusion vertices=%d want 1", got)
	}
	for _, v := range excl.Vertices.Collect() {
		if v.Properties.Get("name").Str() != "Bob" {
			t.Fatalf("exclusion kept %v", v)
		}
	}
}

func TestCollectionSelectAndSetOps(t *testing.T) {
	g := socialGraph(t, 2)
	env := g.Env()
	g2 := socialGraphOn(t, env)
	c1 := g.AsCollection()
	c2 := NewGraphCollection(env,
		dataflow.FromSlice(env, []GraphHead{g.Head, g2.Head}),
		dataflow.Union(g.Vertices, g2.Vertices),
		dataflow.Union(g.Edges, g2.Edges))

	if got := c2.GraphCount(); got != 2 {
		t.Fatalf("graphs=%d", got)
	}
	sel := c2.Select(func(h GraphHead) bool { return h.ID == g.Head.ID })
	if got := sel.GraphCount(); got != 1 {
		t.Fatalf("select graphs=%d", got)
	}
	if got := sel.Vertices.Count(); got != 6 {
		t.Fatalf("select vertices=%d want 6", got)
	}
	inter := c2.Intersect(c1)
	if got := inter.GraphCount(); got != 1 {
		t.Fatalf("intersect graphs=%d", got)
	}
	diff := c2.Difference(c1)
	if got := diff.GraphCount(); got != 1 {
		t.Fatalf("difference graphs=%d", got)
	}
	uni := c1.Union(c2)
	if got := uni.GraphCount(); got != 2 {
		t.Fatalf("union graphs=%d", got)
	}
}

func TestCollectionGraphExtraction(t *testing.T) {
	g := socialGraph(t, 2)
	c := g.AsCollection()
	got, ok := c.Graph(g.Head.ID)
	if !ok {
		t.Fatal("graph not found")
	}
	if got.VertexCount() != 6 {
		t.Fatalf("vertices=%d", got.VertexCount())
	}
	if _, ok := c.Graph(ID(999999)); ok {
		t.Fatal("phantom graph")
	}
}

func TestIndexedLogicalGraph(t *testing.T) {
	g := socialGraph(t, 3)
	idx := BuildIndex(g)
	if got := idx.Vertices("Person").Count(); got != 4 {
		t.Fatalf("Person vertices=%d want 4", got)
	}
	if got := idx.Edges("knows").Count(); got != 4 {
		t.Fatalf("knows edges=%d want 4", got)
	}
	if got := idx.Vertices("Comment", "Post").Count(); got != 0 {
		t.Fatalf("unknown labels should be empty, got %d", got)
	}
	if got := idx.Vertices().Count(); got != 6 {
		t.Fatalf("all vertices=%d want 6", got)
	}
	if got := idx.Vertices("Person", "City").Count(); got != 5 {
		t.Fatalf("multi-label vertices=%d want 5", got)
	}
	labels := idx.VertexLabels()
	if len(labels) != 3 || labels[0] != "City" {
		t.Fatalf("labels=%v", labels)
	}
	flat := idx.ToLogicalGraph()
	if flat.VertexCount() != 6 || flat.EdgeCount() != 8 {
		t.Fatal("flatten mismatch")
	}
}

func TestSortedLabels(t *testing.T) {
	g := socialGraph(t, 2)
	labels := g.SortedLabels()
	want := []string{"City", "Person", "University"}
	if len(labels) != len(want) {
		t.Fatalf("labels=%v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels=%v", labels)
		}
	}
}
