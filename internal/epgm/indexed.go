package epgm

import (
	"sort"

	"gradoop/internal/dataflow"
)

// IndexedLogicalGraph is the alternative graph representation of §3.4: it
// partitions vertices and edges by type label and manages one dataset per
// label. When a query element carries a label predicate, the planner loads
// only the matching dataset instead of scanning (and replicating) the union
// of all elements.
type IndexedLogicalGraph struct {
	env             *dataflow.Env
	Head            GraphHead
	VerticesByLabel map[string]*dataflow.Dataset[Vertex]
	EdgesByLabel    map[string]*dataflow.Dataset[Edge]
}

// BuildIndex converts a logical graph into its label-indexed representation.
func BuildIndex(g *LogicalGraph) *IndexedLogicalGraph {
	idx := &IndexedLogicalGraph{
		env:             g.env,
		Head:            g.Head,
		VerticesByLabel: map[string]*dataflow.Dataset[Vertex]{},
		EdgesByLabel:    map[string]*dataflow.Dataset[Edge]{},
	}
	vparts := map[string][]Vertex{}
	for _, v := range g.Vertices.Collect() {
		vparts[v.Label] = append(vparts[v.Label], v)
	}
	for label, vs := range vparts {
		idx.VerticesByLabel[label] = dataflow.FromSlice(g.env, vs)
	}
	eparts := map[string][]Edge{}
	for _, e := range g.Edges.Collect() {
		eparts[e.Label] = append(eparts[e.Label], e)
	}
	for label, es := range eparts {
		idx.EdgesByLabel[label] = dataflow.FromSlice(g.env, es)
	}
	return idx
}

// IndexedFromSlices builds the label-indexed representation directly from
// pre-partitioned element slices, without collecting through an existing
// graph. The slices are split across workers zero-copy (FromSlice), so a
// long-lived holder of the raw slices — the query service's session — can
// rebind them onto a fresh per-query environment at no per-element cost.
// Callers must not mutate the slices afterwards.
func IndexedFromSlices(env *dataflow.Env, head GraphHead, vertices map[string][]Vertex, edges map[string][]Edge) *IndexedLogicalGraph {
	idx := &IndexedLogicalGraph{
		env:             env,
		Head:            head,
		VerticesByLabel: make(map[string]*dataflow.Dataset[Vertex], len(vertices)),
		EdgesByLabel:    make(map[string]*dataflow.Dataset[Edge], len(edges)),
	}
	for label, vs := range vertices {
		idx.VerticesByLabel[label] = dataflow.FromSlice(env, vs)
	}
	for label, es := range edges {
		idx.EdgesByLabel[label] = dataflow.FromSlice(env, es)
	}
	return idx
}

// Env returns the execution environment.
func (x *IndexedLogicalGraph) Env() *dataflow.Env { return x.env }

// Vertices returns the dataset for one or more vertex labels. With no
// labels (or an unindexed label mix) it returns the union of all per-label
// datasets, i.e. a full scan.
func (x *IndexedLogicalGraph) Vertices(labels ...string) *dataflow.Dataset[Vertex] {
	if len(labels) == 0 {
		labels = x.VertexLabels()
	}
	out := dataflow.Empty[Vertex](x.env)
	for _, l := range labels {
		if ds, ok := x.VerticesByLabel[l]; ok {
			out = dataflow.Union(out, ds)
		}
	}
	return out
}

// Edges returns the dataset for one or more edge labels, or all edges when
// no label is given.
func (x *IndexedLogicalGraph) Edges(labels ...string) *dataflow.Dataset[Edge] {
	if len(labels) == 0 {
		labels = x.EdgeLabels()
	}
	out := dataflow.Empty[Edge](x.env)
	for _, l := range labels {
		if ds, ok := x.EdgesByLabel[l]; ok {
			out = dataflow.Union(out, ds)
		}
	}
	return out
}

// VertexLabels returns the indexed vertex labels in sorted order.
func (x *IndexedLogicalGraph) VertexLabels() []string {
	labels := make([]string, 0, len(x.VerticesByLabel))
	for l := range x.VerticesByLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// EdgeLabels returns the indexed edge labels in sorted order.
func (x *IndexedLogicalGraph) EdgeLabels() []string {
	labels := make([]string, 0, len(x.EdgesByLabel))
	for l := range x.EdgesByLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// ToLogicalGraph flattens the index back into a plain logical graph.
func (x *IndexedLogicalGraph) ToLogicalGraph() *LogicalGraph {
	return &LogicalGraph{env: x.env, Head: x.Head, Vertices: x.Vertices(), Edges: x.Edges()}
}
