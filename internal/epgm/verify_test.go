package epgm

import (
	"strings"
	"testing"

	"gradoop/internal/dataflow"
)

func TestVerifyAcceptsConsistentGraph(t *testing.T) {
	g := socialGraph(t, 2)
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsViolations(t *testing.T) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(2))
	v1 := Vertex{ID: NewID(), Label: "A"}
	v2 := Vertex{ID: NewID(), Label: "B"}

	dangling := NewLogicalGraph(env, GraphHead{ID: NewID()},
		dataflow.FromSlice(env, []Vertex{v1}),
		dataflow.FromSlice(env, []Edge{{ID: NewID(), Source: v1.ID, Target: v2.ID}}))
	if err := dangling.Verify(); err == nil || !strings.Contains(err.Error(), "missing target") {
		t.Fatalf("dangling edge: %v", err)
	}

	dupVertex := NewLogicalGraph(env, GraphHead{ID: NewID()},
		dataflow.FromSlice(env, []Vertex{v1, v1}),
		dataflow.Empty[Edge](env))
	if err := dupVertex.Verify(); err == nil || !strings.Contains(err.Error(), "duplicate vertex") {
		t.Fatalf("duplicate vertex: %v", err)
	}

	nilID := NewLogicalGraph(env, GraphHead{ID: NewID()},
		dataflow.FromSlice(env, []Vertex{{Label: "X"}}),
		dataflow.Empty[Edge](env))
	if err := nilID.Verify(); err == nil || !strings.Contains(err.Error(), "nil id") {
		t.Fatalf("nil id: %v", err)
	}
}

func TestEqualsByElementIDs(t *testing.T) {
	g := socialGraph(t, 2)
	same := NewLogicalGraph(g.Env(), GraphHead{ID: NewID()}, g.Vertices, g.Edges)
	if !g.EqualsByElementIDs(same) {
		t.Fatal("same datasets should be equal")
	}
	sub := g.Subgraph(func(v Vertex) bool { return v.Label == "Person" }, nil)
	if g.EqualsByElementIDs(sub) {
		t.Fatal("subgraph should differ")
	}
}

func TestEqualsByData(t *testing.T) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(2))
	build := func() *LogicalGraph {
		a := Vertex{ID: NewID(), Label: "P", Properties: Properties{}.Set("n", PVString("a"))}
		b := Vertex{ID: NewID(), Label: "P", Properties: Properties{}.Set("n", PVString("b"))}
		return GraphFromSlices(env, "G", []Vertex{a, b},
			[]Edge{{ID: NewID(), Label: "k", Source: a.ID, Target: b.ID}})
	}
	g1, g2 := build(), build()
	if !g1.EqualsByData(g2) {
		t.Fatal("structurally identical graphs with fresh ids should be data-equal")
	}
	if g1.EqualsByElementIDs(g2) {
		t.Fatal("fresh ids should differ")
	}
	// Change a property value: no longer data-equal.
	g3 := g2.Transform(nil, func(v Vertex) Vertex {
		v.Properties = v.Properties.Clone().Set("n", PVString("zzz"))
		return v
	}, nil)
	if g1.EqualsByData(g3) {
		t.Fatal("different data should not be equal")
	}
	// Reversed edge direction: not data-equal.
	g4 := g2.Transform(nil, nil, func(e Edge) Edge {
		e.Source, e.Target = e.Target, e.Source
		return e
	})
	if g1.EqualsByData(g4) {
		t.Fatal("reversed edge should not be equal")
	}
}
