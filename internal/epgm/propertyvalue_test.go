package epgm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPropertyValueAccessors(t *testing.T) {
	if !PVBool(true).Bool() || PVBool(false).Bool() {
		t.Fatal("bool accessor")
	}
	if PVInt(-42).Int() != -42 {
		t.Fatal("int accessor")
	}
	if PVFloat(2.5).Float() != 2.5 {
		t.Fatal("float accessor")
	}
	if PVString("hi").Str() != "hi" {
		t.Fatal("string accessor")
	}
	if !Null.IsNull() || PVInt(0).IsNull() {
		t.Fatal("null detection")
	}
	// Wrong-type accessors return zero values.
	if PVString("x").Int() != 0 || PVInt(1).Str() != "" || PVBool(true).Int() != 0 {
		t.Fatal("cross-type accessors should be zero")
	}
	// Int widens to float.
	if PVInt(3).Float() != 3.0 {
		t.Fatal("int should widen to float")
	}
}

func TestPropertyValueEqual(t *testing.T) {
	cases := []struct {
		a, b PropertyValue
		want bool
	}{
		{PVInt(1), PVInt(1), true},
		{PVInt(1), PVInt(2), false},
		{PVInt(1), PVFloat(1.0), true},
		{PVFloat(1.5), PVFloat(1.5), true},
		{PVString("a"), PVString("a"), true},
		{PVString("a"), PVString("b"), false},
		{PVString("1"), PVInt(1), false},
		{PVBool(true), PVBool(true), true},
		{PVBool(true), PVInt(1), false},
		{Null, Null, false}, // NULL = NULL is not true in Cypher
		{Null, PVInt(0), false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: %v = %v: got %v want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestPropertyValueCompare(t *testing.T) {
	check := func(a, b PropertyValue, want int, ok bool) {
		t.Helper()
		got, gotOK := a.Compare(b)
		if gotOK != ok || (ok && got != want) {
			t.Fatalf("%v cmp %v = (%d,%v), want (%d,%v)", a, b, got, gotOK, want, ok)
		}
	}
	check(PVInt(1), PVInt(2), -1, true)
	check(PVInt(2), PVInt(2), 0, true)
	check(PVInt(3), PVInt(2), 1, true)
	check(PVInt(1), PVFloat(1.5), -1, true)
	check(PVFloat(2.5), PVInt(2), 1, true)
	check(PVString("alice"), PVString("bob"), -1, true)
	check(PVBool(false), PVBool(true), -1, true)
	check(PVString("1"), PVInt(1), 0, false)
	check(Null, PVInt(1), 0, false)
	check(PVInt(1), Null, 0, false)
}

func TestPropertyValueEncodeDecodeRoundTrip(t *testing.T) {
	values := []PropertyValue{
		Null, PVBool(true), PVBool(false),
		PVInt(0), PVInt(-1), PVInt(math.MaxInt64), PVInt(math.MinInt64),
		PVFloat(0), PVFloat(-3.25), PVFloat(math.Inf(1)),
		PVString(""), PVString("Uni Leipzig"), PVString("日本語"),
	}
	var buf []byte
	for _, v := range values {
		buf = v.Encode(buf)
	}
	off := 0
	for i, want := range values {
		got, n, err := DecodePropertyValue(buf[off:])
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got.Type() != want.Type() || got.String() != want.String() {
			t.Fatalf("value %d: got %v want %v", i, got, want)
		}
		if n != want.EncodedSize() {
			t.Fatalf("value %d: consumed %d, EncodedSize says %d", i, n, want.EncodedSize())
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("trailing bytes: consumed %d of %d", off, len(buf))
	}
}

func TestDecodePropertyValueErrors(t *testing.T) {
	bad := [][]byte{
		{},
		{byte(TypeBool)},
		{byte(TypeInt64), 1, 2},
		{byte(TypeString), 0, 0, 0, 9, 'a'},
		{200},
	}
	for i, b := range bad {
		if _, _, err := DecodePropertyValue(b); err == nil {
			t.Errorf("case %d: expected error for % x", i, b)
		}
	}
}

func TestQuickPropertyValueRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		for _, v := range []PropertyValue{PVInt(i), PVString(s), PVBool(b)} {
			dec, n, err := DecodePropertyValue(v.Encode(nil))
			if err != nil || n != v.EncodedSize() || !dec.Equal(v) {
				return false
			}
		}
		if !math.IsNaN(fl) {
			v := PVFloat(fl)
			dec, _, err := DecodePropertyValue(v.Encode(nil))
			if err != nil || dec.Float() != fl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProperties(t *testing.T) {
	var p Properties
	p = p.Set("name", PVString("Alice"))
	p = p.Set("age", PVInt(30))
	if got := p.Get("name").Str(); got != "Alice" {
		t.Fatalf("get name=%q", got)
	}
	p = p.Set("name", PVString("Bob"))
	if got := p.Get("name").Str(); got != "Bob" {
		t.Fatalf("overwrite failed: %q", got)
	}
	if len(p) != 2 {
		t.Fatalf("len=%d want 2", len(p))
	}
	if !p.Get("missing").IsNull() {
		t.Fatal("missing key should be Null")
	}
	if !p.Has("age") || p.Has("missing") {
		t.Fatal("Has")
	}
	p = p.Remove("name")
	if p.Has("name") || len(p) != 1 {
		t.Fatal("Remove")
	}
	keys := p.Keys()
	if len(keys) != 1 || keys[0] != "age" {
		t.Fatalf("keys=%v", keys)
	}
	clone := p.Clone()
	clone.Set("age", PVInt(99))
	if p.Get("age").Int() != 30 {
		t.Fatal("clone not independent")
	}
}

func TestIDSet(t *testing.T) {
	s := NewIDSet(3, 1, 2, 2)
	if len(s) != 3 {
		t.Fatalf("len=%d", len(s))
	}
	for _, id := range []ID{1, 2, 3} {
		if !s.Contains(id) {
			t.Fatalf("missing %d", id)
		}
	}
	if s.Contains(4) {
		t.Fatal("phantom member")
	}
	s2 := s.Add(0)
	if !s2.Contains(0) || s2[0] != 0 {
		t.Fatalf("sorted insert broken: %v", s2)
	}
	if !NewIDSet(1, 5).Intersects(NewIDSet(5, 9)) {
		t.Fatal("intersects")
	}
	if NewIDSet(1, 2).Intersects(NewIDSet(3, 4)) {
		t.Fatal("false intersection")
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[ID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}
