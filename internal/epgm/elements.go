package epgm

import "fmt"

// GraphHead carries the data of one logical graph: its identifier, type
// label and properties (the first dataset of a graph collection, Table 1).
type GraphHead struct {
	ID         ID
	Label      string
	Properties Properties
}

// SizeBytes implements dataflow.Sized.
func (h GraphHead) SizeBytes() int { return 8 + len(h.Label) + h.Properties.EncodedSize() }

// Vertex is a data vertex: identifier, type label, properties and graph
// membership (l(v) of Definition 2.1).
type Vertex struct {
	ID         ID
	Label      string
	Properties Properties
	GraphIDs   IDSet
}

// SizeBytes implements dataflow.Sized.
func (v Vertex) SizeBytes() int {
	return 8 + len(v.Label) + v.Properties.EncodedSize() + 8*len(v.GraphIDs)
}

// String renders the vertex like the paper's Table 1 rows.
func (v Vertex) String() string {
	return fmt.Sprintf("(id:%d, label:%s, graphs:%v, %v)", v.ID, v.Label, v.GraphIDs, v.Properties)
}

// Edge is a data edge directed from Source to Target.
type Edge struct {
	ID         ID
	Label      string
	Source     ID
	Target     ID
	Properties Properties
	GraphIDs   IDSet
}

// SizeBytes implements dataflow.Sized.
func (e Edge) SizeBytes() int {
	return 8 + 16 + len(e.Label) + e.Properties.EncodedSize() + 8*len(e.GraphIDs)
}

// String renders the edge like the paper's Table 1 rows.
func (e Edge) String() string {
	return fmt.Sprintf("(id:%d, label:%s, graphs:%v, sid:%d, tid:%d, %v)",
		e.ID, e.Label, e.GraphIDs, e.Source, e.Target, e.Properties)
}
