package epgm

import (
	"fmt"
	"sort"
	"strings"

	"gradoop/internal/dataflow"
)

// This file implements the Gradoop analytical operators the paper lists as
// the framework's existing toolbox (§2.1): subgraph extraction, graph
// transformation, graph grouping, set operations on graphs and collections,
// and property-based aggregation and selection. The Cypher pattern-matching
// operator composes with these in analytical programs.

// Subgraph returns the subgraph induced by the given vertex and edge
// predicates. Edges survive only if their predicate holds and both
// endpoints survive the vertex predicate, so the result is always a
// consistent graph (Definition 2.3's subgraph condition).
func (g *LogicalGraph) Subgraph(vertexPred func(Vertex) bool, edgePred func(Edge) bool) *LogicalGraph {
	if vertexPred == nil {
		vertexPred = func(Vertex) bool { return true }
	}
	if edgePred == nil {
		edgePred = func(Edge) bool { return true }
	}
	head := GraphHead{ID: NewID(), Label: g.Head.Label, Properties: g.Head.Properties.Clone()}
	vs := dataflow.Filter(g.Vertices, vertexPred)
	es := dataflow.Filter(g.Edges, edgePred)
	es = semiJoinEdges(es, vs, func(e Edge) ID { return e.Source })
	es = semiJoinEdges(es, vs, func(e Edge) ID { return e.Target })
	return &LogicalGraph{env: g.env, Head: head,
		Vertices: stampVertices(vs, head.ID), Edges: stampEdges(es, head.ID)}
}

// semiJoinEdges keeps edges whose endpoint (selected by key) exists in vs.
func semiJoinEdges(es *dataflow.Dataset[Edge], vs *dataflow.Dataset[Vertex], key func(Edge) ID) *dataflow.Dataset[Edge] {
	ids := dataflow.Map(vs, func(v Vertex) ID { return v.ID })
	return dataflow.Join(ids, es,
		func(id ID) uint64 { return uint64(id) },
		func(e Edge) uint64 { return uint64(key(e)) },
		func(_ ID, e Edge, emit func(Edge)) { emit(e) },
		dataflow.RepartitionHash)
}

func stampVertices(vs *dataflow.Dataset[Vertex], id ID) *dataflow.Dataset[Vertex] {
	return dataflow.Map(vs, func(v Vertex) Vertex {
		v.GraphIDs = v.GraphIDs.Clone().Add(id)
		return v
	})
}

func stampEdges(es *dataflow.Dataset[Edge], id ID) *dataflow.Dataset[Edge] {
	return dataflow.Map(es, func(e Edge) Edge {
		e.GraphIDs = e.GraphIDs.Clone().Add(id)
		return e
	})
}

// Transform applies element-wise transformation functions to the graph head,
// vertices and edges (nil functions are identity) and returns a new graph.
func (g *LogicalGraph) Transform(headFn func(GraphHead) GraphHead, vertexFn func(Vertex) Vertex, edgeFn func(Edge) Edge) *LogicalGraph {
	head := g.Head
	if headFn != nil {
		head = headFn(head)
	}
	vs := g.Vertices
	if vertexFn != nil {
		vs = dataflow.Map(vs, vertexFn)
	}
	es := g.Edges
	if edgeFn != nil {
		es = dataflow.Map(es, edgeFn)
	}
	return &LogicalGraph{env: g.env, Head: head, Vertices: vs, Edges: es}
}

// An AggregateFunc folds a graph into a single property value stored on the
// graph head under Name.
type AggregateFunc struct {
	Name string
	Eval func(g *LogicalGraph) PropertyValue
}

// VertexCountAgg counts vertices.
func VertexCountAgg() AggregateFunc {
	return AggregateFunc{Name: "vertexCount", Eval: func(g *LogicalGraph) PropertyValue {
		return PVInt(g.VertexCount())
	}}
}

// EdgeCountAgg counts edges.
func EdgeCountAgg() AggregateFunc {
	return AggregateFunc{Name: "edgeCount", Eval: func(g *LogicalGraph) PropertyValue {
		return PVInt(g.EdgeCount())
	}}
}

// SumVertexPropertyAgg sums a numeric vertex property across the graph.
func SumVertexPropertyAgg(key string) AggregateFunc {
	return AggregateFunc{Name: "sum_" + key, Eval: func(g *LogicalGraph) PropertyValue {
		vals := dataflow.FlatMap(g.Vertices, func(v Vertex, emit func(float64)) {
			if pv := v.Properties.Get(key); !pv.IsNull() {
				emit(pv.Float())
			}
		})
		var sum float64
		for _, f := range vals.Collect() {
			sum += f
		}
		return PVFloat(sum)
	}}
}

// MinVertexPropertyAgg computes the minimum of a numeric vertex property.
func MinVertexPropertyAgg(key string) AggregateFunc {
	return AggregateFunc{Name: "min_" + key, Eval: func(g *LogicalGraph) PropertyValue {
		vals := dataflow.FlatMap(g.Vertices, func(v Vertex, emit func(float64)) {
			if pv := v.Properties.Get(key); !pv.IsNull() {
				emit(pv.Float())
			}
		})
		all := vals.Collect()
		if len(all) == 0 {
			return Null
		}
		min := all[0]
		for _, f := range all[1:] {
			if f < min {
				min = f
			}
		}
		return PVFloat(min)
	}}
}

// MaxVertexPropertyAgg computes the maximum of a numeric vertex property.
func MaxVertexPropertyAgg(key string) AggregateFunc {
	return AggregateFunc{Name: "max_" + key, Eval: func(g *LogicalGraph) PropertyValue {
		vals := dataflow.FlatMap(g.Vertices, func(v Vertex, emit func(float64)) {
			if pv := v.Properties.Get(key); !pv.IsNull() {
				emit(pv.Float())
			}
		})
		all := vals.Collect()
		if len(all) == 0 {
			return Null
		}
		max := all[0]
		for _, f := range all[1:] {
			if f > max {
				max = f
			}
		}
		return PVFloat(max)
	}}
}

// Aggregate evaluates the given aggregate functions and stores their results
// as properties on a copy of the graph head.
func (g *LogicalGraph) Aggregate(fns ...AggregateFunc) *LogicalGraph {
	head := g.Head
	head.Properties = head.Properties.Clone()
	for _, fn := range fns {
		head.Properties = head.Properties.Set(fn.Name, fn.Eval(g))
	}
	return &LogicalGraph{env: g.env, Head: head, Vertices: g.Vertices, Edges: g.Edges}
}

// GroupingConfig configures structural graph grouping: vertices are grouped
// by label (if GroupByVertexLabel) and the listed property keys; one
// super-vertex per group carries a "count" property. Edges are grouped by
// their endpoint groups and label analogously.
type GroupingConfig struct {
	GroupByVertexLabel bool
	VertexPropertyKeys []string
	GroupByEdgeLabel   bool
	EdgePropertyKeys   []string
}

// GroupBy summarizes the graph into a grouped graph (Gradoop's grouping
// operator): structurally equivalent vertices collapse into super-vertices
// and parallel edges between groups collapse into counted super-edges.
func (g *LogicalGraph) GroupBy(cfg GroupingConfig) *LogicalGraph {
	head := GraphHead{ID: NewID(), Label: "GroupedGraph"}

	vertexKey := func(v Vertex) string {
		var sb strings.Builder
		if cfg.GroupByVertexLabel {
			sb.WriteString(v.Label)
		}
		for _, k := range cfg.VertexPropertyKeys {
			sb.WriteByte(0)
			sb.WriteString(v.Properties.Get(k).String())
		}
		return sb.String()
	}

	type superVertex struct {
		key   string
		v     Vertex
		count int64
	}
	supers := dataflow.GroupBy(g.Vertices, vertexKey, func(key string, group []Vertex, emit func(superVertex)) {
		rep := group[0]
		sv := Vertex{ID: NewID(), GraphIDs: NewIDSet(head.ID)}
		if cfg.GroupByVertexLabel {
			sv.Label = rep.Label
		} else {
			sv.Label = "Group"
		}
		for _, k := range cfg.VertexPropertyKeys {
			sv.Properties = sv.Properties.Set(k, rep.Properties.Get(k))
		}
		sv.Properties = sv.Properties.Set("count", PVInt(int64(len(group))))
		emit(superVertex{key: key, v: sv, count: int64(len(group))})
	})

	// Mapping from original vertex id to its super-vertex id.
	type mapping struct {
		orig  ID
		super ID
	}
	superByKey := map[string]ID{}
	for _, sv := range supers.Collect() {
		superByKey[sv.key] = sv.v.ID
	}
	mappings := dataflow.Map(g.Vertices, func(v Vertex) mapping {
		return mapping{orig: v.ID, super: superByKey[vertexKey(v)]}
	})

	// Route edges to super endpoints.
	type routedEdge struct {
		e              Edge
		superS, superT ID
	}
	routedS := dataflow.Join(mappings, g.Edges,
		func(m mapping) uint64 { return uint64(m.orig) },
		func(e Edge) uint64 { return uint64(e.Source) },
		func(m mapping, e Edge, emit func(routedEdge)) { emit(routedEdge{e: e, superS: m.super}) },
		dataflow.RepartitionHash)
	routed := dataflow.Join(mappings, routedS,
		func(m mapping) uint64 { return uint64(m.orig) },
		func(r routedEdge) uint64 { return uint64(r.e.Target) },
		func(m mapping, r routedEdge, emit func(routedEdge)) {
			r.superT = m.super
			emit(r)
		},
		dataflow.RepartitionHash)

	edgeKey := func(r routedEdge) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d>%d", r.superS, r.superT)
		if cfg.GroupByEdgeLabel {
			sb.WriteByte(0)
			sb.WriteString(r.e.Label)
		}
		for _, k := range cfg.EdgePropertyKeys {
			sb.WriteByte(0)
			sb.WriteString(r.e.Properties.Get(k).String())
		}
		return sb.String()
	}
	superEdges := dataflow.GroupBy(routed, edgeKey, func(key string, group []routedEdge, emit func(Edge)) {
		rep := group[0]
		se := Edge{ID: NewID(), Source: rep.superS, Target: rep.superT, GraphIDs: NewIDSet(head.ID)}
		if cfg.GroupByEdgeLabel {
			se.Label = rep.e.Label
		} else {
			se.Label = "Group"
		}
		for _, k := range cfg.EdgePropertyKeys {
			se.Properties = se.Properties.Set(k, rep.e.Properties.Get(k))
		}
		se.Properties = se.Properties.Set("count", PVInt(int64(len(group))))
		emit(se)
	})

	vs := dataflow.Map(supers, func(sv superVertex) Vertex { return sv.v })
	return &LogicalGraph{env: g.env, Head: head, Vertices: vs, Edges: superEdges}
}

// Combination returns the union of two logical graphs' vertices and edges
// (deduplicated by id).
func (g *LogicalGraph) Combination(other *LogicalGraph) *LogicalGraph {
	head := GraphHead{ID: NewID(), Label: g.Head.Label}
	vs := dataflow.DistinctBy(dataflow.Union(g.Vertices, other.Vertices), func(v Vertex) ID { return v.ID })
	es := dataflow.DistinctBy(dataflow.Union(g.Edges, other.Edges), func(e Edge) ID { return e.ID })
	return &LogicalGraph{env: g.env, Head: head,
		Vertices: stampVertices(vs, head.ID), Edges: stampEdges(es, head.ID)}
}

// Overlap returns the graph of vertices and edges present in both inputs.
func (g *LogicalGraph) Overlap(other *LogicalGraph) *LogicalGraph {
	head := GraphHead{ID: NewID(), Label: g.Head.Label}
	vs := intersectByID(g.Vertices, other.Vertices, func(v Vertex) ID { return v.ID })
	es := intersectByID(g.Edges, other.Edges, func(e Edge) ID { return e.ID })
	return &LogicalGraph{env: g.env, Head: head,
		Vertices: stampVertices(vs, head.ID), Edges: stampEdges(es, head.ID)}
}

// Exclusion returns the graph of g's elements that do not occur in other;
// dangling edges are removed.
func (g *LogicalGraph) Exclusion(other *LogicalGraph) *LogicalGraph {
	head := GraphHead{ID: NewID(), Label: g.Head.Label}
	vs := subtractByID(g.Vertices, other.Vertices, func(v Vertex) ID { return v.ID })
	es := subtractByID(g.Edges, other.Edges, func(e Edge) ID { return e.ID })
	es = semiJoinEdges(es, vs, func(e Edge) ID { return e.Source })
	es = semiJoinEdges(es, vs, func(e Edge) ID { return e.Target })
	return &LogicalGraph{env: g.env, Head: head,
		Vertices: stampVertices(vs, head.ID), Edges: stampEdges(es, head.ID)}
}

func intersectByID[T any](a, b *dataflow.Dataset[T], id func(T) ID) *dataflow.Dataset[T] {
	ids := dataflow.DistinctBy(b, id)
	return dataflow.Join(dataflow.Map(ids, id), a,
		func(i ID) uint64 { return uint64(i) },
		func(t T) uint64 { return uint64(id(t)) },
		func(_ ID, t T, emit func(T)) { emit(t) },
		dataflow.RepartitionHash)
}

func subtractByID[T any](a, b *dataflow.Dataset[T], id func(T) ID) *dataflow.Dataset[T] {
	exclude := map[ID]struct{}{}
	for _, t := range b.Collect() {
		exclude[id(t)] = struct{}{}
	}
	return dataflow.Filter(a, func(t T) bool {
		_, ok := exclude[id(t)]
		return !ok
	})
}

// Select keeps the logical graphs of a collection whose head satisfies pred;
// elements belonging only to dropped graphs are removed.
func (c *GraphCollection) Select(pred func(GraphHead) bool) *GraphCollection {
	heads := dataflow.Filter(c.Heads, pred)
	keep := NewIDSet()
	for _, h := range heads.Collect() {
		keep = keep.Add(h.ID)
	}
	vs := dataflow.Filter(c.Vertices, func(v Vertex) bool { return v.GraphIDs.Intersects(keep) })
	es := dataflow.Filter(c.Edges, func(e Edge) bool { return e.GraphIDs.Intersects(keep) })
	return &GraphCollection{env: c.env, Heads: heads, Vertices: vs, Edges: es}
}

// Union merges two collections, deduplicating graphs and elements by id.
func (c *GraphCollection) Union(other *GraphCollection) *GraphCollection {
	heads := dataflow.DistinctBy(dataflow.Union(c.Heads, other.Heads), func(h GraphHead) ID { return h.ID })
	vs := dataflow.DistinctBy(dataflow.Union(c.Vertices, other.Vertices), func(v Vertex) ID { return v.ID })
	es := dataflow.DistinctBy(dataflow.Union(c.Edges, other.Edges), func(e Edge) ID { return e.ID })
	return &GraphCollection{env: c.env, Heads: heads, Vertices: vs, Edges: es}
}

// Intersect keeps the graphs present in both collections (by head id).
func (c *GraphCollection) Intersect(other *GraphCollection) *GraphCollection {
	ids := NewIDSet()
	for _, h := range other.Heads.Collect() {
		ids = ids.Add(h.ID)
	}
	return c.Select(func(h GraphHead) bool { return ids.Contains(h.ID) })
}

// Difference keeps the graphs of c that are absent from other.
func (c *GraphCollection) Difference(other *GraphCollection) *GraphCollection {
	ids := NewIDSet()
	for _, h := range other.Heads.Collect() {
		ids = ids.Add(h.ID)
	}
	return c.Select(func(h GraphHead) bool { return !ids.Contains(h.ID) })
}

// SortedLabels returns the distinct vertex labels of the graph in sorted
// order — a small utility shared by statistics and the indexed graph.
func (g *LogicalGraph) SortedLabels() []string {
	set := map[string]struct{}{}
	for _, v := range g.Vertices.Collect() {
		set[v.Label] = struct{}{}
	}
	labels := make([]string, 0, len(set))
	for l := range set {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}
