package epgm

import (
	"fmt"
	"sort"
	"strings"
)

// Verify checks the structural consistency of a logical graph per
// Definition 2.1: element ids are unique and every edge's endpoints exist.
// It returns the first violation found, or nil.
func (g *LogicalGraph) Verify() error {
	vertexIDs := map[ID]struct{}{}
	for _, v := range g.Vertices.Collect() {
		if v.ID == NilID {
			return fmt.Errorf("epgm: vertex with nil id (label %q)", v.Label)
		}
		if _, dup := vertexIDs[v.ID]; dup {
			return fmt.Errorf("epgm: duplicate vertex id %d", v.ID)
		}
		vertexIDs[v.ID] = struct{}{}
	}
	edgeIDs := map[ID]struct{}{}
	for _, e := range g.Edges.Collect() {
		if e.ID == NilID {
			return fmt.Errorf("epgm: edge with nil id (label %q)", e.Label)
		}
		if _, dup := edgeIDs[e.ID]; dup {
			return fmt.Errorf("epgm: duplicate edge id %d", e.ID)
		}
		edgeIDs[e.ID] = struct{}{}
		if _, ok := vertexIDs[e.Source]; !ok {
			return fmt.Errorf("epgm: edge %d references missing source vertex %d", e.ID, e.Source)
		}
		if _, ok := vertexIDs[e.Target]; !ok {
			return fmt.Errorf("epgm: edge %d references missing target vertex %d", e.ID, e.Target)
		}
	}
	return nil
}

// EqualsByElementIDs reports whether two logical graphs contain exactly the
// same vertex and edge identifiers.
func (g *LogicalGraph) EqualsByElementIDs(other *LogicalGraph) bool {
	ids := func(g *LogicalGraph) (map[ID]struct{}, map[ID]struct{}) {
		vs := map[ID]struct{}{}
		for _, v := range g.Vertices.Collect() {
			vs[v.ID] = struct{}{}
		}
		es := map[ID]struct{}{}
		for _, e := range g.Edges.Collect() {
			es[e.ID] = struct{}{}
		}
		return vs, es
	}
	av, ae := ids(g)
	bv, be := ids(other)
	if len(av) != len(bv) || len(ae) != len(be) {
		return false
	}
	for id := range av {
		if _, ok := bv[id]; !ok {
			return false
		}
	}
	for id := range ae {
		if _, ok := be[id]; !ok {
			return false
		}
	}
	return true
}

// canonicalElement renders a vertex's data (label + sorted properties).
func canonicalVertex(v Vertex) string {
	return v.Label + "{" + canonicalProps(v.Properties) + "}"
}

func canonicalProps(p Properties) string {
	parts := make([]string, len(p))
	for i, kv := range p {
		parts[i] = kv.Key + "=" + kv.Value.Type().String() + ":" + kv.Value.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// EqualsByData reports whether two logical graphs carry the same data,
// ignoring identifiers: equal multisets of vertex (label, properties) pairs
// and of edge (label, properties, source-data, target-data) tuples. This is
// the canonical-form comparison Gradoop's equality operator uses; like any
// polynomial invariant it can in principle conflate non-isomorphic graphs
// with identical local structure, which suffices for test fixtures and
// result comparison.
func (g *LogicalGraph) EqualsByData(other *LogicalGraph) bool {
	render := func(g *LogicalGraph) ([]string, []string, bool) {
		vertexData := map[ID]string{}
		var vs []string
		for _, v := range g.Vertices.Collect() {
			s := canonicalVertex(v)
			vertexData[v.ID] = s
			vs = append(vs, s)
		}
		var es []string
		for _, e := range g.Edges.Collect() {
			sd, okS := vertexData[e.Source]
			td, okT := vertexData[e.Target]
			if !okS || !okT {
				return nil, nil, false
			}
			es = append(es, e.Label+"{"+canonicalProps(e.Properties)+"}("+sd+")->("+td+")")
		}
		sort.Strings(vs)
		sort.Strings(es)
		return vs, es, true
	}
	av, ae, okA := render(g)
	bv, be, okB := render(other)
	if !okA || !okB || len(av) != len(bv) || len(ae) != len(be) {
		return false
	}
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	return true
}
