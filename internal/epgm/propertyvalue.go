package epgm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// PropertyType tags the dynamic type of a PropertyValue. Properties are
// schema-free (set at the instance level), so the type travels with the
// value, exactly as in Gradoop's PropertyValue byte encoding.
type PropertyType byte

// Supported property types.
const (
	TypeNull PropertyType = iota
	TypeBool
	TypeInt64
	TypeFloat64
	TypeString
)

// String returns the type's name.
func (t PropertyType) String() string {
	switch t {
	case TypeNull:
		return "null"
	case TypeBool:
		return "bool"
	case TypeInt64:
		return "int64"
	case TypeFloat64:
		return "float64"
	case TypeString:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", byte(t))
	}
}

// PropertyValue is a dynamically typed attribute value. The zero value is
// the null value (ε in Definition 2.1).
type PropertyValue struct {
	typ PropertyType
	num uint64 // bool/int64/float64 payload
	str string // string payload
}

// Null is the absent-value marker returned for missing keys.
var Null = PropertyValue{}

// PVBool wraps a bool.
func PVBool(b bool) PropertyValue {
	var n uint64
	if b {
		n = 1
	}
	return PropertyValue{typ: TypeBool, num: n}
}

// PVInt wraps an int64.
func PVInt(i int64) PropertyValue { return PropertyValue{typ: TypeInt64, num: uint64(i)} }

// PVFloat wraps a float64.
func PVFloat(f float64) PropertyValue {
	return PropertyValue{typ: TypeFloat64, num: math.Float64bits(f)}
}

// PVString wraps a string.
func PVString(s string) PropertyValue { return PropertyValue{typ: TypeString, str: s} }

// Type returns the value's dynamic type.
func (v PropertyValue) Type() PropertyType { return v.typ }

// IsNull reports whether the value is absent.
func (v PropertyValue) IsNull() bool { return v.typ == TypeNull }

// Bool returns the boolean payload (false for non-bools).
func (v PropertyValue) Bool() bool { return v.typ == TypeBool && v.num == 1 }

// Int returns the integer payload (0 for non-ints).
func (v PropertyValue) Int() int64 {
	if v.typ != TypeInt64 {
		return 0
	}
	return int64(v.num)
}

// Float returns the float payload; integers are widened.
func (v PropertyValue) Float() float64 {
	switch v.typ {
	case TypeFloat64:
		return math.Float64frombits(v.num)
	case TypeInt64:
		return float64(int64(v.num))
	default:
		return 0
	}
}

// Str returns the string payload ("" for non-strings).
func (v PropertyValue) Str() string {
	if v.typ != TypeString {
		return ""
	}
	return v.str
}

// String renders the value for display.
func (v PropertyValue) String() string {
	switch v.typ {
	case TypeNull:
		return "NULL"
	case TypeBool:
		return strconv.FormatBool(v.Bool())
	case TypeInt64:
		return strconv.FormatInt(v.Int(), 10)
	case TypeFloat64:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case TypeString:
		return v.str
	default:
		return "?"
	}
}

// numeric reports whether the value is int64 or float64.
func (v PropertyValue) numeric() bool { return v.typ == TypeInt64 || v.typ == TypeFloat64 }

// Equal reports value equality. Numeric values compare across int/float;
// all other cross-type comparisons are false. Null equals nothing,
// including Null (three-valued-logic style, as Cypher requires).
func (v PropertyValue) Equal(o PropertyValue) bool {
	if v.typ == TypeNull || o.typ == TypeNull {
		return false
	}
	if v.numeric() && o.numeric() {
		if v.typ == TypeInt64 && o.typ == TypeInt64 {
			return v.Int() == o.Int()
		}
		return v.Float() == o.Float()
	}
	if v.typ != o.typ {
		return false
	}
	switch v.typ {
	case TypeBool:
		return v.num == o.num
	case TypeString:
		return v.str == o.str
	default:
		return false
	}
}

// Compare orders two values: -1, 0 or +1. The boolean result reports
// whether the values are comparable at all (same type family and non-null);
// incomparable pairs make every ordering predicate false, as in Cypher.
func (v PropertyValue) Compare(o PropertyValue) (int, bool) {
	if v.typ == TypeNull || o.typ == TypeNull {
		return 0, false
	}
	if v.numeric() && o.numeric() {
		if v.typ == TypeInt64 && o.typ == TypeInt64 {
			a, b := v.Int(), o.Int()
			switch {
			case a < b:
				return -1, true
			case a > b:
				return 1, true
			default:
				return 0, true
			}
		}
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.typ != o.typ {
		return 0, false
	}
	switch v.typ {
	case TypeString:
		switch {
		case v.str < o.str:
			return -1, true
		case v.str > o.str:
			return 1, true
		default:
			return 0, true
		}
	case TypeBool:
		a, b := v.num, o.num
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

// EncodedSize returns the number of bytes Encode appends.
func (v PropertyValue) EncodedSize() int {
	switch v.typ {
	case TypeNull:
		return 1
	case TypeBool:
		return 2
	case TypeInt64, TypeFloat64:
		return 9
	case TypeString:
		return 1 + 4 + len(v.str)
	default:
		return 1
	}
}

// Encode appends the value's binary form — one type byte followed by a
// fixed-width or length-prefixed payload — to dst and returns the extended
// slice. This is the representation stored in embedding propData arrays.
func (v PropertyValue) Encode(dst []byte) []byte {
	dst = append(dst, byte(v.typ))
	switch v.typ {
	case TypeBool:
		b := byte(0)
		if v.num == 1 {
			b = 1
		}
		dst = append(dst, b)
	case TypeInt64, TypeFloat64:
		dst = binary.BigEndian.AppendUint64(dst, v.num)
	case TypeString:
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.str)))
		dst = append(dst, v.str...)
	}
	return dst
}

// DecodePropertyValue reads one encoded value from b and returns it with
// the number of bytes consumed.
func DecodePropertyValue(b []byte) (PropertyValue, int, error) {
	if len(b) == 0 {
		return Null, 0, fmt.Errorf("epgm: decode property value: empty input")
	}
	switch t := PropertyType(b[0]); t {
	case TypeNull:
		return Null, 1, nil
	case TypeBool:
		if len(b) < 2 {
			return Null, 0, fmt.Errorf("epgm: decode bool: truncated")
		}
		return PVBool(b[1] == 1), 2, nil
	case TypeInt64:
		if len(b) < 9 {
			return Null, 0, fmt.Errorf("epgm: decode int64: truncated")
		}
		return PVInt(int64(binary.BigEndian.Uint64(b[1:9]))), 9, nil
	case TypeFloat64:
		if len(b) < 9 {
			return Null, 0, fmt.Errorf("epgm: decode float64: truncated")
		}
		return PVFloat(math.Float64frombits(binary.BigEndian.Uint64(b[1:9]))), 9, nil
	case TypeString:
		if len(b) < 5 {
			return Null, 0, fmt.Errorf("epgm: decode string: truncated header")
		}
		n := int(binary.BigEndian.Uint32(b[1:5]))
		if len(b) < 5+n {
			return Null, 0, fmt.Errorf("epgm: decode string: truncated payload (want %d bytes)", n)
		}
		return PVString(string(b[5 : 5+n])), 5 + n, nil
	default:
		return Null, 0, fmt.Errorf("epgm: decode property value: unknown type %d", b[0])
	}
}
