package epgm

// Property is a single key/value attribute.
type Property struct {
	Key   string
	Value PropertyValue
}

// Properties is an ordered list of attributes. Order is insertion order;
// lookups are linear, which is faster than a map for the small property
// counts typical of property graphs and keeps serialization deterministic.
type Properties []Property

// Get returns the value bound to key, or Null if absent (the κ mapping of
// Definition 2.1, with ε represented as Null).
func (p Properties) Get(key string) PropertyValue {
	for _, kv := range p {
		if kv.Key == key {
			return kv.Value
		}
	}
	return Null
}

// Has reports whether key is present.
func (p Properties) Has(key string) bool {
	for _, kv := range p {
		if kv.Key == key {
			return true
		}
	}
	return false
}

// Set binds key to value, replacing an existing binding, and returns the
// updated list (which may share the receiver's backing array).
func (p Properties) Set(key string, value PropertyValue) Properties {
	for i, kv := range p {
		if kv.Key == key {
			p[i].Value = value
			return p
		}
	}
	return append(p, Property{Key: key, Value: value})
}

// Remove deletes key if present and returns the updated list.
func (p Properties) Remove(key string) Properties {
	for i, kv := range p {
		if kv.Key == key {
			return append(p[:i], p[i+1:]...)
		}
	}
	return p
}

// Keys returns the property keys in order.
func (p Properties) Keys() []string {
	keys := make([]string, len(p))
	for i, kv := range p {
		keys[i] = kv.Key
	}
	return keys
}

// Clone returns an independent copy.
func (p Properties) Clone() Properties { return append(Properties(nil), p...) }

// EncodedSize returns the total byte size of all values plus keys, used for
// shuffle accounting.
func (p Properties) EncodedSize() int {
	n := 0
	for _, kv := range p {
		n += len(kv.Key) + 1 + kv.Value.EncodedSize()
	}
	return n
}
