// Package epgm implements the Extended Property Graph Model (EPGM) of
// Junghanns et al.: directed, labeled, attributed multigraphs organized into
// logical graphs and graph collections, backed by partitioned dataflow
// datasets, together with the Gradoop analytical operators the Cypher
// pattern-matching operator composes with.
package epgm

import (
	"sort"
	"strconv"
	"sync/atomic"
)

// ID identifies a graph, vertex or edge. IDs are unique across all element
// kinds, like Gradoop's GradoopId.
type ID uint64

// NilID is the zero ID; no element ever carries it.
const NilID ID = 0

// String renders the id in decimal.
func (id ID) String() string { return strconv.FormatUint(uint64(id), 10) }

var idCounter atomic.Uint64

// NewID returns a process-unique ID. IDs are dense and ascending, which the
// LDBC generator relies on for determinism (it allocates them in a fixed
// order).
func NewID() ID { return ID(idCounter.Add(1)) }

// EnsureIDsAbove advances the id allocator past max, so that ids loaded
// from storage never collide with subsequently generated ones.
func EnsureIDsAbove(max ID) {
	for {
		cur := idCounter.Load()
		if cur >= uint64(max) {
			return
		}
		if idCounter.CompareAndSwap(cur, uint64(max)) {
			return
		}
	}
}

// IDSet is a small sorted set of IDs, used for graph membership (the l(v)
// mapping of Definition 2.1).
type IDSet []ID

// NewIDSet builds a set from the given ids.
func NewIDSet(ids ...ID) IDSet {
	s := IDSet{}
	for _, id := range ids {
		s = s.Add(id)
	}
	return s
}

// Contains reports set membership.
func (s IDSet) Contains(id ID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// Add returns a set containing id; the receiver is unchanged if id is
// already present. Add may reuse the receiver's backing array.
func (s IDSet) Add(id ID) IDSet {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	if i < len(s) && s[i] == id {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

// Clone returns an independent copy.
func (s IDSet) Clone() IDSet { return append(IDSet(nil), s...) }

// Intersects reports whether the two sets share an element.
func (s IDSet) Intersects(o IDSet) bool {
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			return true
		case s[i] < o[j]:
			i++
		default:
			j++
		}
	}
	return false
}
