package cluster_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"gradoop/internal/cluster"
	"gradoop/internal/session"
)

// awaitJoin runs a blocking join (Coordinator.Close, Worker.Wait) and fails
// if it does not return promptly. The regression mode for the goroutine
// joins is a hang: a join waiting on a goroutine whose exit nothing drives.
func awaitJoin(t *testing.T, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not return: a spawned goroutine was never driven to exit", what)
	}
}

// TestClusterShutdownJoinsGoroutines pins the goleak fixes on the live
// paths: after a distributed query has spawned the coordinator's member
// read loops and the workers' connection handlers, job executors and peer
// routers, Coordinator.Close and Worker.Wait must both join them — and
// must actually return, i.e. teardown drives every one of those goroutines
// to exit. Run under -race this also checks the joins are properly
// synchronized with the goroutines they cover.
func TestClusterShutdownJoinsGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP worker meshes")
	}
	data, d := testGraph(t)
	workers, addrs := startWorkers(t, data, 2)
	coord, err := cluster.NewCoordinator(addrs, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := session.New(d.Graph, session.Options{Workers: 4, Remote: coord})
	// A two-hop join forces shuffles across the peer mesh, so both workers
	// hold routed peer connections when shutdown starts.
	if _, err := s.Execute(session.Request{Query: `MATCH (p:Person)-[:knows]->(q:Person) RETURN *`}); err != nil {
		t.Fatal(err)
	}
	awaitJoin(t, "Coordinator.Close", coord.Close)
	for i, w := range workers {
		w.Close()
		awaitJoin(t, fmt.Sprintf("workers[%d].Wait", i), w.Wait)
	}
}

// TestCoordinatorAbortedStartupJoins covers the constructor's error path:
// when a worker dial fails, NewCoordinator closes itself — and Close now
// waits for the heartbeat goroutine, which must therefore already be
// stoppable at that point regardless of how far the dial loop got.
func TestCoordinatorAbortedStartupJoins(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // guarantee the dial is refused

	done := make(chan error, 1)
	go func() {
		_, err := cluster.NewCoordinator([]string{addr}, cluster.Options{Workers: 2})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("NewCoordinator succeeded against a closed listener")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("NewCoordinator hung in its failure path: Close did not join the heartbeat")
	}
}
