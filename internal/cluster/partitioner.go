package cluster

import "gradoop/internal/dataflow"

// Partitioner assigns the job's logical partitions to the attempt's live
// workers. The assignment is pure policy: any assignment produces the
// byte-identical result (dataflow.Transport's SPMD contract), so the
// partitioner only decides data placement and therefore how much state
// moves when the roster changes.
type Partitioner interface {
	// Assign returns owner[p] = roster index for each of the partitions,
	// given the attempt's roster node IDs. len(nodes) >= 1.
	Assign(partitions int, nodes []string) []int
	// Name identifies the policy in flags and reports.
	Name() string
}

// RendezvousPartitioner implements highest-random-weight (rendezvous)
// hashing: partition p goes to the node maximizing a stable hash of
// (node, p). When a worker dies, exactly its partitions move to survivors
// and every other partition stays put — the property that keeps recovery
// re-execution from reshuffling the whole cluster's ownership.
type RendezvousPartitioner struct{}

// Name implements Partitioner.
func (RendezvousPartitioner) Name() string { return "rendezvous" }

// Assign implements Partitioner.
func (RendezvousPartitioner) Assign(partitions int, nodes []string) []int {
	owner := make([]int, partitions)
	for p := range owner {
		best, bestW := 0, uint64(0)
		for i, node := range nodes {
			// Remix the combined node/partition hash so pairs sharing a node
			// or a partition stay uncorrelated.
			w := dataflow.StableHash(dataflow.StableHash(node) + uint64(p))
			if w > bestW || (w == bestW && nodes[i] < nodes[best]) {
				best, bestW = i, w
			}
		}
		owner[p] = best
	}
	return owner
}

// RangePartitioner assigns contiguous partition ranges in roster order —
// the simplest possible layout, useful for reasoning about tests and for
// comparing placement policies in benchmarks. A roster change moves more
// partitions than rendezvous hashing would.
type RangePartitioner struct{}

// Name implements Partitioner.
func (RangePartitioner) Name() string { return "range" }

// Assign implements Partitioner.
func (RangePartitioner) Assign(partitions int, nodes []string) []int {
	owner := make([]int, partitions)
	n := len(nodes)
	for p := range owner {
		owner[p] = p * n / partitions
	}
	return owner
}

// PartitionerByName resolves a -cluster-partitioner flag value.
func PartitionerByName(name string) (Partitioner, bool) {
	switch name {
	case "", "rendezvous":
		return RendezvousPartitioner{}, true
	case "range":
		return RangePartitioner{}, true
	default:
		return nil, false
	}
}
