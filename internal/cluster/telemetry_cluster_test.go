package cluster_test

import (
	"fmt"
	"net"
	"reflect"
	"strings"
	"testing"

	"gradoop/internal/cluster"
	"gradoop/internal/obs"
	"gradoop/internal/session"
	"gradoop/internal/trace"
)

// startWorkersWith launches n in-process workers with explicit options
// (metrics registries, telemetry off) on loopback listeners.
func startWorkersWith(t *testing.T, data *session.GraphData, n int, opts func(i int) cluster.WorkerOptions) ([]*cluster.Worker, []string) {
	t.Helper()
	workers := make([]*cluster.Worker, n)
	addrs := make([]string, n)
	for i := range workers {
		w := cluster.NewWorkerWith(fmt.Sprintf("w%d", i), data, opts(i))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve(ln)
		t.Cleanup(w.Close)
		workers[i] = w
		addrs[i] = ln.Addr().String()
	}
	return workers, addrs
}

// processLanes counts the distinct process lanes (process_name metadata
// events) of a merged Chrome trace.
func processLanes(ct *trace.ChromeTrace) map[string]bool {
	lanes := map[string]bool{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			lanes[fmt.Sprint(ev.Args["name"])] = true
		}
	}
	return lanes
}

// TestClusterTelemetryReport is the distributed EXPLAIN ANALYZE acceptance
// check: a 2-worker query's report carries per-worker per-stage actuals
// whose max reproduces the merged stage Actual, per-worker shuffle bytes
// summing to the stage WireBytes, a skew column, per-worker reports and —
// for a traced request — a merged Chrome trace with one process lane per
// worker plus the coordinator's.
func TestClusterTelemetryReport(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP worker meshes")
	}
	data, d := testGraph(t)
	_, addrs := startWorkersWith(t, data, 2, func(i int) cluster.WorkerOptions {
		return cluster.WorkerOptions{Metrics: obs.NewRegistry()}
	})
	coord, err := cluster.NewCoordinator(addrs, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	s := session.New(d.Graph, session.Options{Workers: 4, Remote: coord})

	resp, err := s.Execute(session.Request{
		Query: `MATCH (p1:Person)-[:knows]->(p2:Person), (p2)-[:knows]->(p3:Person) RETURN *`,
		Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := resp.Cluster
	if rep == nil {
		t.Fatal("no cluster report")
	}
	if rep.TraceID == "" {
		t.Fatal("report has no trace ID")
	}
	if rep.PartialTelemetry {
		t.Fatalf("partial telemetry with all workers shipping: %+v", rep.WorkerReports)
	}
	if len(rep.WorkerReports) != 2 {
		t.Fatalf("%d worker reports, want 2", len(rep.WorkerReports))
	}
	for _, wr := range rep.WorkerReports {
		if !wr.Telemetry || wr.Spans == 0 || wr.WallNs <= 0 {
			t.Fatalf("worker report %+v, want telemetry with spans and wall time", wr)
		}
	}

	// Per-stage attribution: the merge must equal the coordinator's totals.
	for _, st := range rep.Stages {
		if len(st.WorkerNs) != 2 || len(st.WorkerBytes) != 2 {
			t.Fatalf("stage %d: attribution arrays %d/%d, want 2/2",
				st.Stage, len(st.WorkerNs), len(st.WorkerBytes))
		}
		var maxNs, sumNs, sumBytes int64
		for i := range st.WorkerNs {
			if st.WorkerNs[i] > maxNs {
				maxNs = st.WorkerNs[i]
			}
			sumNs += st.WorkerNs[i]
			sumBytes += st.WorkerBytes[i]
		}
		if maxNs != st.Actual {
			t.Fatalf("stage %d: max worker time %d != merged Actual %d", st.Stage, maxNs, st.Actual)
		}
		if sumBytes != st.WireBytes {
			t.Fatalf("stage %d: worker bytes sum %d != merged WireBytes %d", st.Stage, sumBytes, st.WireBytes)
		}
		if want := sumNs / 2; st.MeanNs != want {
			t.Fatalf("stage %d: mean %d, want %d", st.Stage, st.MeanNs, want)
		}
		if st.MeanNs > 0 && st.Skew < 1 {
			t.Fatalf("stage %d: skew %v < 1 (max over mean cannot be)", st.Stage, st.Skew)
		}
	}

	// The merged trace: coordinator lane plus one lane per worker, bound to
	// the report's trace ID.
	if rep.Trace == nil {
		t.Fatal("traced request produced no merged trace")
	}
	if rep.Trace.Metadata["traceId"] != rep.TraceID {
		t.Fatalf("trace metadata %q != report trace ID %q", rep.Trace.Metadata["traceId"], rep.TraceID)
	}
	lanes := processLanes(rep.Trace)
	if len(lanes) != 3 || !lanes["coordinator"] || !lanes["worker w0"] || !lanes["worker w1"] {
		t.Fatalf("merged trace lanes %v, want coordinator + worker w0 + worker w1", lanes)
	}
}

// TestClusterTelemetryParity is the cost pin's behavioral half: the same
// queries through -no-telemetry workers return bit-identical rows with the
// same attempt count, the report is flagged partial, and the skew table —
// derived from the done reports, not the bundles — is still attributed.
func TestClusterTelemetryParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP worker meshes")
	}
	data, d := testGraph(t)
	common, _, _ := d.FirstNamesBySelectivity()
	opts := session.Options{Workers: 4}

	_, onAddrs := startWorkersWith(t, data, 2, func(i int) cluster.WorkerOptions {
		return cluster.WorkerOptions{Metrics: obs.NewRegistry()}
	})
	onCoord, err := cluster.NewCoordinator(onAddrs, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer onCoord.Close()
	onOpts := opts
	onOpts.Remote = onCoord
	withTelemetry := run(t, session.New(d.Graph, onOpts), common)

	_, offAddrs := startWorkersWith(t, data, 2, func(i int) cluster.WorkerOptions {
		return cluster.WorkerOptions{NoTelemetry: true}
	})
	offCoord, err := cluster.NewCoordinator(offAddrs, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer offCoord.Close()
	offOpts := opts
	offOpts.Remote = offCoord
	withoutTelemetry := run(t, session.New(d.Graph, offOpts), common)

	for name, on := range withTelemetry {
		off := withoutTelemetry[name]
		if !reflect.DeepEqual(off.Rows, on.Rows) || off.Count != on.Count {
			t.Fatalf("%s: -no-telemetry rows differ from the telemetry run", name)
		}
		if off.Cluster.Attempts != on.Cluster.Attempts {
			t.Fatalf("%s: attempts %d != %d", name, off.Cluster.Attempts, on.Cluster.Attempts)
		}
		if on.Cluster.PartialTelemetry {
			t.Fatalf("%s: telemetry run flagged partial", name)
		}
		if !off.Cluster.PartialTelemetry {
			t.Fatalf("%s: -no-telemetry run not flagged partial", name)
		}
		for _, wr := range off.Cluster.WorkerReports {
			if wr.Telemetry || wr.Spans != 0 {
				t.Fatalf("%s: -no-telemetry worker report %+v", name, wr)
			}
		}
		// Skew attribution never depends on the bundles.
		for _, st := range off.Cluster.Stages {
			if len(st.WorkerNs) != 2 {
				t.Fatalf("%s: stage %d lost attribution without telemetry", name, st.Stage)
			}
		}
	}
}

// TestClusterTelemetryMixedRoster marks the report partial when only some
// workers ship bundles — the query itself stays whole.
func TestClusterTelemetryMixedRoster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP worker meshes")
	}
	data, d := testGraph(t)
	_, addrs := startWorkersWith(t, data, 2, func(i int) cluster.WorkerOptions {
		return cluster.WorkerOptions{NoTelemetry: i == 1}
	})
	coord, err := cluster.NewCoordinator(addrs, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	s := session.New(d.Graph, session.Options{Workers: 4, Remote: coord})
	resp, err := s.Execute(session.Request{
		Query: `MATCH (p:Person)-[:knows]->(q:Person) RETURN *`,
		Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := resp.Cluster
	if !rep.PartialTelemetry {
		t.Fatal("mixed roster not flagged partial")
	}
	if !rep.WorkerReports[0].Telemetry || rep.WorkerReports[1].Telemetry {
		t.Fatalf("worker reports %+v, want only w0 shipping", rep.WorkerReports)
	}
	// The merged trace still renders — with the lanes that did ship.
	lanes := processLanes(rep.Trace)
	if !lanes["coordinator"] || !lanes["worker w0"] || lanes["worker w1"] {
		t.Fatalf("mixed-roster lanes %v, want coordinator + worker w0 only", lanes)
	}
}

// TestClusterTelemetryRetryDropsSpans is the span-leak regression test: a
// job that crashes a worker and retries must leave every surviving
// worker's ledger empty once the winning attempt's bundle ships, and the
// merged trace must still come back complete under a single trace ID.
func TestClusterTelemetryRetryDropsSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP worker meshes")
	}
	data, d := testGraph(t)
	workers, addrs := startWorkersWith(t, data, 3, func(i int) cluster.WorkerOptions {
		return cluster.WorkerOptions{Metrics: obs.NewRegistry()}
	})
	coord, err := cluster.NewCoordinator(addrs, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	workers[1].SetFailAfterExchanges(2)

	s := session.New(d.Graph, session.Options{Workers: 4, Remote: coord})
	resp, err := s.Execute(session.Request{
		Query: `MATCH (p1:Person)-[:knows]->(p2:Person), (p2)-[:knows]->(p3:Person) RETURN *`,
		Trace: true,
	})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	rep := resp.Cluster
	if !rep.Recovered || rep.Attempts < 2 {
		t.Fatalf("expected a recovered run, got %+v", rep)
	}
	// The winning attempt's survivors shipped and dropped everything —
	// including the crashed first attempt's retained spans.
	for i, w := range workers {
		if i == 1 {
			continue // the crashed worker is gone
		}
		if n := w.RetainedSpans(); n != 0 {
			t.Errorf("worker %d retains %d spans after the job resolved", i, n)
		}
	}
	// One trace identity across the whole recovered job; the merged trace
	// carries the survivors' lanes plus a coordinator lane whose attempt
	// spans cover both attempts.
	if rep.TraceID == "" || rep.Trace == nil || rep.Trace.Metadata["traceId"] != rep.TraceID {
		t.Fatalf("recovered trace identity broken: id=%q trace=%v", rep.TraceID, rep.Trace != nil)
	}
	lanes := processLanes(rep.Trace)
	if !lanes["coordinator"] || len(lanes) != 3 {
		t.Fatalf("recovered lanes %v, want coordinator + 2 survivors", lanes)
	}
	attempts := 0
	for _, ev := range rep.Trace.TraceEvents {
		if ev.PID == 0 && ev.Cat == "stage" && strings.HasPrefix(ev.Name, "attempt") {
			attempts++
		}
	}
	if attempts < 2 {
		t.Fatalf("coordinator lane shows %d attempt spans, want both", attempts)
	}
	if rep.PartialTelemetry {
		t.Fatal("winning roster all shipped; report flagged partial")
	}
}
