package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gradoop/internal/core"
	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
	"gradoop/internal/obs"
	"gradoop/internal/operators"
	"gradoop/internal/session"
	"gradoop/internal/trace"
	"gradoop/internal/wire"
)

// handshakeTimeout bounds every synchronous protocol step (hello/welcome,
// peer-mesh rendezvous) so a half-open connection can never park a job
// forever.
const handshakeTimeout = 15 * time.Second

// ErrPeerLost is wrapped into the structured job error when a shuffle
// participant's connection drops mid-collective.
var ErrPeerLost = errors.New("cluster: peer lost")

// errAborted marks attempts stopped by a coordinator abort.
var errAborted = errors.New("cluster: attempt aborted by coordinator")

// Worker is one process of the cluster: it holds the full graph data, owns
// the partitions the coordinator assigns per job, executes shipped stage
// programs on the ordinary dataflow engine, and exchanges shuffle buckets
// directly with its peers.
type Worker struct {
	node   string
	data   *session.GraphData
	logger *slog.Logger

	// Telemetry plane: telemetry gates span retention and bundle shipping
	// entirely (the -no-telemetry escape hatch); metrics is the worker's
	// own registry, snapshotted into every bundle; observer feeds the
	// engine's continuous series into it; tele bounds retained spans.
	telemetry bool
	metrics   *obs.Registry
	observer  *dataflow.Observer
	tele      *telemetryLedger
	winst     *workerInstruments

	mu     sync.Mutex
	cond   *sync.Cond
	ln     net.Listener
	conns  map[net.Conn]struct{}
	jobs   map[jobKey]*jobRuntime
	closed bool

	// wg counts every goroutine the worker spawned (connection handlers,
	// job executions, peer routers) so Wait can observe the full drain
	// after Crash/Close severed their sockets. Crash itself must NOT wait:
	// the fault-injection path calls it from inside a counted runJob
	// goroutine, where waiting would self-deadlock.
	wg sync.WaitGroup

	// failAfter > 0 injects a crash (full process death from the cluster's
	// point of view: listener and every connection closed) after that many
	// collective exchanges — the deterministic kill the recovery tests and
	// the chaos smoke drive.
	failAfter atomic.Int64
}

// WorkerOptions configures a worker's optional subsystems.
type WorkerOptions struct {
	// Logger records job failures (nil disables).
	Logger *slog.Logger
	// Metrics is the worker's own registry: the engine's continuous series
	// (stage histograms, retry counters) and the gradoop_worker_* surface
	// register here, and a snapshot rides in every telemetry bundle so the
	// coordinator can federate per-worker series (nil disables).
	Metrics *obs.Registry
	// NoTelemetry disables span retention and bundle shipping entirely —
	// the behavior-parity escape hatch. Execution is unaffected: workers
	// still trace (the per-stage records in jobDone derive from the spans),
	// rows stay bit-identical, retries unchanged.
	NoTelemetry bool
}

// NewWorker creates a worker serving the given pinned graph data, with
// telemetry shipping enabled and no metrics registry. A nil logger
// disables logging.
func NewWorker(node string, data *session.GraphData, logger *slog.Logger) *Worker {
	return NewWorkerWith(node, data, WorkerOptions{Logger: logger})
}

// NewWorkerWith creates a worker with explicit options.
func NewWorkerWith(node string, data *session.GraphData, opts WorkerOptions) *Worker {
	w := &Worker{
		node:      node,
		data:      data,
		logger:    opts.Logger,
		telemetry: !opts.NoTelemetry,
		metrics:   opts.Metrics,
		observer:  dataflow.NewObserver(opts.Metrics),
		tele:      newTelemetryLedger(),
		conns:     map[net.Conn]struct{}{},
		jobs:      map[jobKey]*jobRuntime{},
	}
	w.winst = newWorkerInstruments(opts.Metrics, w)
	w.cond = sync.NewCond(&w.mu)
	return w
}

// RetainedSpans reports how many spans the telemetry ledger currently
// holds across all unresolved jobs — the quantity the retention caps bound
// and the leak regression test watches.
func (w *Worker) RetainedSpans() int { return w.tele.retained() }

// SetFailAfterExchanges arms the crash hook: the worker kills itself after
// n more collective exchanges (0 disarms).
func (w *Worker) SetFailAfterExchanges(n int64) { w.failAfter.Store(n) }

// Node returns the worker's node ID.
func (w *Worker) Node() string { return w.node }

// Serve accepts connections until the listener closes (Crash/Close).
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	w.ln = ln
	w.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if w.isClosed() {
				return nil
			}
			return err
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.handleConn(conn)
		}()
	}
}

// Wait blocks until every goroutine the worker spawned has returned. Call
// it after Serve returns: Crash/Close only sever the listener and the
// sockets, which drives those goroutines to exit; Wait observes the drain.
func (w *Worker) Wait() { w.wg.Wait() }

// Crash simulates process death: the listener and every connection close
// immediately and every running job fails. Peers observe exactly what they
// would observe if the OS process died.
func (w *Worker) Crash() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	ln := w.ln
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	jobs := make([]*jobRuntime, 0, len(w.jobs))
	for _, rt := range w.jobs {
		jobs = append(jobs, rt)
	}
	w.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	for _, rt := range jobs {
		rt.fail(errors.New("cluster: worker crashed"))
	}
}

// Close shuts the worker down (alias of Crash — a worker has no graceful
// drain; the coordinator's recovery handles it like any other loss).
func (w *Worker) Close() { w.Crash() }

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

func (w *Worker) track(conn net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	w.conns[conn] = struct{}{}
	return true
}

func (w *Worker) untrack(conn net.Conn) {
	w.mu.Lock()
	delete(w.conns, conn)
	w.mu.Unlock()
}

// jobKey identifies one attempt of one job.
type jobKey struct {
	job     uint64
	attempt int
}

// runtime returns (creating if needed) the runtime for one attempt. Peer
// connections may arrive before the coordinator's Job frame, so both paths
// get-or-create.
func (w *Worker) runtime(key jobKey) *jobRuntime {
	w.mu.Lock()
	defer w.mu.Unlock()
	if rt, ok := w.jobs[key]; ok {
		return rt
	}
	rt := newJobRuntime(w, key)
	w.jobs[key] = rt
	return rt
}

func (w *Worker) dropRuntime(rt *jobRuntime) {
	w.mu.Lock()
	if w.jobs[rt.key] == rt {
		delete(w.jobs, rt.key)
	}
	w.mu.Unlock()
	rt.shutdown()
}

// handleConn performs the handshake and runs the connection's read loop:
// a control connection serves the coordinator until it drops; a peer
// connection is handed to the job attempt it belongs to and routed there.
func (w *Worker) handleConn(conn net.Conn) {
	if !w.track(conn) {
		conn.Close()
		return
	}
	defer w.untrack(conn)
	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	typ, payload, err := readFrame(br)
	if err != nil || typ != frameHello {
		conn.Close()
		return
	}
	var h hello
	if err := json.Unmarshal(payload, &h); err != nil {
		conn.Close()
		return
	}
	if h.Magic != protoMagic || h.Version != protoVersion {
		// Version skew must be a loud, structured refusal — two incompatible
		// builds exchanging frames would corrupt results silently.
		writeJSONFrame(conn, frameReject, reject{
			Reason: fmt.Sprintf("protocol mismatch: want magic %08x version %d, got %08x version %d",
				protoMagic, protoVersion, h.Magic, h.Version),
		})
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if err := writeJSONFrame(conn, frameWelcome, welcome{Magic: protoMagic, Version: protoVersion, Node: w.node}); err != nil {
		conn.Close()
		return
	}
	switch h.Role {
	case roleControl:
		w.serveControl(conn, br)
	case rolePeer:
		rt := w.runtime(jobKey{job: h.JobID, attempt: h.Attempt})
		link := rt.addPeer(h.From, conn)
		if link == nil {
			conn.Close()
			return
		}
		rt.routePeer(h.From, link, br)
	default:
		conn.Close()
	}
}

// serveControl is the coordinator-facing loop: jobs start, aborts land,
// pings answer. When the connection drops every job it started fails — an
// orphaned worker must not keep executing for a coordinator that cannot
// hear the answer.
func (w *Worker) serveControl(conn net.Conn, br *bufio.Reader) {
	send := newSender(conn)
	defer send.abort()
	var started []jobKey
	defer func() {
		w.mu.Lock()
		rts := make([]*jobRuntime, 0, len(started))
		for _, key := range started {
			if rt, ok := w.jobs[key]; ok {
				rts = append(rts, rt)
			}
		}
		w.mu.Unlock()
		for _, rt := range rts {
			rt.fail(errors.New("cluster: coordinator connection lost"))
		}
	}()
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return
		}
		switch typ {
		case framePing:
			send.send(framePong, nil)
		case frameJob:
			var spec jobSpec
			if err := json.Unmarshal(payload, &spec); err != nil {
				continue
			}
			started = append(started, jobKey{job: spec.JobID, attempt: spec.Attempt})
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				w.runJob(&spec, send)
			}()
		case frameAbort:
			var a abortMsg
			if err := json.Unmarshal(payload, &a); err != nil {
				continue
			}
			w.mu.Lock()
			rt := w.jobs[jobKey{job: a.JobID, attempt: a.Attempt}]
			w.mu.Unlock()
			if rt != nil {
				rt.fail(errAborted)
			}
		}
	}
}

// runJob executes one shipped job attempt and reports its terminal state.
// The attempt's spans are retained in the telemetry ledger either way; a
// successful attempt ships its telemetry bundle strictly before the done
// report (same ordered sender), so the coordinator never has to wait for a
// bundle after seeing the done.
func (w *Worker) runJob(spec *jobSpec, ctrl *sender) {
	start := time.Now()
	done := jobDone{JobID: spec.JobID, Attempt: spec.Attempt}
	rt := w.runtime(jobKey{job: spec.JobID, attempt: spec.Attempt})
	defer w.dropRuntime(rt)
	// Workers always trace: the per-stage predicted-vs-actual records the
	// coordinator publishes are derived from the spans. The collector epoch
	// is the attempt start, so every span offset is already rebased.
	col := trace.NewCollector()
	w.winst.jobs.Inc()
	stages, metrics, err := w.executeJob(spec, rt, ctrl, col)
	if err != nil {
		done.Error = err.Error()
		done.PeerLost, done.LostPeers = rt.lossInfo(err)
		w.winst.failures.Inc()
		if w.logger != nil {
			w.logger.Error("cluster job failed", "job", spec.JobID, "attempt", spec.Attempt,
				"trace", spec.TraceID, "err", err)
		}
		w.recordTelemetry(spec.JobID, spec.Attempt, col)
	} else {
		done.Stages = stages
		done.Metrics = metrics
		done.Telemetry = w.telemetry
		w.recordTelemetry(spec.JobID, spec.Attempt, col)
		w.shipTelemetry(spec, ctrl, time.Since(start))
	}
	w.winst.jobTime.ObserveSince(start)
	ctrl.sendJSON(frameJobDone, &done)
}

// recordTelemetry parks the attempt's spans in the ledger. With telemetry
// disabled this is a no-op and, like every disabled-path instrument hook,
// allocation-free (pinned by BenchmarkWorkerTelemetryDisabled).
func (w *Worker) recordTelemetry(jobID uint64, attempt int, col *trace.Collector) {
	if !w.telemetry {
		return
	}
	w.tele.retain(jobID, attempt, col.Spans())
}

// shipTelemetry encodes and sends the winning attempt's bundle, dropping
// every span the job retained (superseded attempts included).
func (w *Worker) shipTelemetry(spec *jobSpec, ctrl *sender, elapsed time.Duration) {
	if !w.telemetry {
		return
	}
	bundle := telemetryBundle{
		Node:      w.node,
		TraceID:   spec.TraceID,
		ElapsedNs: int64(elapsed),
		Spans:     w.tele.ship(spec.JobID, spec.Attempt),
		Metrics:   w.metrics.Snapshot(),
	}
	frame := encodeTelemetryFrame(&telemetryFrame{
		JobID:   spec.JobID,
		Attempt: spec.Attempt,
		From:    spec.Self,
		Body:    encodeTelemetryBundle(nil, &bundle),
	})
	if err := ctrl.send(frameTelemetry, frame); err != nil {
		return // the control connection is gone; the done report will fail too
	}
	w.winst.shipped.Inc()
	w.winst.teleBytes.Add(int64(len(frame)))
}

// executeJob builds the peer mesh, runs the planned query over this
// worker's owned partitions, and ships the owned result partitions.
func (w *Worker) executeJob(spec *jobSpec, rt *jobRuntime, ctrl *sender, col *trace.Collector) ([]stageRecord, dataflow.MetricsSnapshot, error) {
	var zero dataflow.MetricsSnapshot
	if spec.Workers <= 0 || len(spec.Owner) != spec.Workers || spec.Self < 0 || spec.Self >= len(spec.Procs) {
		return nil, zero, fmt.Errorf("cluster: malformed job spec (workers=%d owners=%d self=%d procs=%d)",
			spec.Workers, len(spec.Owner), spec.Self, len(spec.Procs))
	}
	if err := w.connectMesh(spec, rt); err != nil {
		return nil, zero, err
	}
	params, err := wire.ReadParams(spec.Params)
	if err != nil {
		return nil, zero, fmt.Errorf("cluster: corrupt parameter encoding: %w", err)
	}

	cfg := dataflow.DefaultConfig(spec.Workers)
	env := dataflow.NewEnv(cfg)
	pt := &peerTransport{rt: rt, spec: spec, wireOut: map[int64]int64{}}
	env.SetTransport(pt)
	env.SetObserver(w.observer)

	g, access := w.data.Bind(env)
	ccfg := core.Config{
		Vertex:               operators.Semantics(spec.Vertex),
		Edge:                 operators.Semantics(spec.Edge),
		Params:               params,
		Stats:                spec.Stats,
		Access:               access,
		Hint:                 dataflow.JoinHint(spec.Hint),
		DisableSubqueryReuse: spec.DisableReuse,
		Trace:                col,
		Timeout:              time.Duration(spec.TimeoutNs),
	}
	prep, err := core.PrepareWith(access, spec.Stats, spec.Query, ccfg)
	if err != nil {
		return nil, zero, fmt.Errorf("cluster: worker planning failed: %w", err)
	}
	if fp := prep.Fingerprint(); fp != spec.Fingerprint {
		// Divergent plans would deadlock or silently mis-shuffle; refuse hard.
		return nil, zero, fmt.Errorf("cluster: plan fingerprint mismatch (coordinator %s, worker %s) — version or statistics skew",
			spec.Fingerprint, fp)
	}
	res, err := prep.Execute(g, ccfg)
	if err != nil {
		return nil, zero, err
	}
	for p := 0; p < spec.Workers; p++ {
		if spec.Owner[p] != spec.Self {
			continue
		}
		frame := &resultFrame{
			JobID:     spec.JobID,
			Attempt:   spec.Attempt,
			Partition: p,
			Body:      encodeEmbeddings(res.Embeddings.Partition(p)),
		}
		if err := ctrl.send(frameResult, encodeResultFrame(frame)); err != nil {
			return nil, zero, fmt.Errorf("cluster: shipping partition %d: %w", p, err)
		}
	}
	return stageRecords(col.Spans(), cfg, pt.wireOut), env.Metrics(), nil
}

// connectMesh establishes the attempt's worker-to-worker connections:
// every worker dials the roster members above its own index and accepts
// from those below, so each pair shares exactly one connection.
func (w *Worker) connectMesh(spec *jobSpec, rt *jobRuntime) error {
	for j := range spec.Procs {
		if j == spec.Self {
			continue
		}
		if j < spec.Self {
			if err := rt.waitPeer(j); err != nil {
				return err
			}
			continue
		}
		conn, err := net.DialTimeout("tcp", spec.Procs[j].Addr, handshakeTimeout)
		if err != nil {
			rt.failPeer(j, err)
			return fmt.Errorf("%w: dialing peer %d (%s): %v", ErrPeerLost, j, spec.Procs[j].Addr, err)
		}
		if !w.track(conn) {
			conn.Close()
			return errors.New("cluster: worker closed")
		}
		br := bufio.NewReaderSize(conn, 64<<10)
		conn.SetDeadline(time.Now().Add(handshakeTimeout))
		err = writeJSONFrame(conn, frameHello, hello{
			Magic: protoMagic, Version: protoVersion, Role: rolePeer, Node: w.node,
			JobID: spec.JobID, Attempt: spec.Attempt, From: spec.Self,
		})
		if err == nil {
			var typ byte
			var payload []byte
			typ, payload, err = readFrame(br)
			if err == nil && typ == frameReject {
				var rej reject
				json.Unmarshal(payload, &rej)
				err = fmt.Errorf("cluster: peer %d rejected handshake: %s", j, rej.Reason)
			} else if err == nil && typ != frameWelcome {
				err = fmt.Errorf("cluster: peer %d: unexpected handshake frame %d", j, typ)
			}
		}
		if err != nil {
			conn.Close()
			w.untrack(conn)
			rt.failPeer(j, err)
			return fmt.Errorf("%w: handshake with peer %d: %v", ErrPeerLost, j, err)
		}
		conn.SetDeadline(time.Time{})
		link := rt.addPeer(j, conn)
		if link == nil {
			conn.Close()
			w.untrack(conn)
			return errors.New("cluster: attempt already failed")
		}
		w.wg.Add(1)
		go func(j int) {
			defer w.wg.Done()
			defer w.untrack(conn)
			rt.routePeer(j, link, br)
		}(j)
	}
	return nil
}

// mailKey addresses one peer's contribution to one collective.
type mailKey struct {
	seq  uint64
	kind byte
	from int
}

// peerLink is one established worker-to-worker connection.
type peerLink struct {
	conn net.Conn
	send *sender
}

// jobRuntime is the per-attempt state shared between the job's driving
// goroutine (which executes the dataflow program and blocks in collectives)
// and the peer routers (which deliver incoming frames): a mailbox keyed by
// (seq, kind, sender) plus the attempt's failure state. Any failure —
// peer loss, abort, worker crash — wakes every waiter, so a collective can
// error out but never hang.
type jobRuntime struct {
	w   *Worker
	key jobKey

	mu    sync.Mutex
	cond  *sync.Cond
	peers map[int]*peerLink
	inbox map[mailKey][]byte
	err   error
	// lost marks peers whose connection dropped, with the observed cause.
	// A loss is deliberately NOT a whole-attempt failure: a worker that
	// finishes a job with no remaining collectives closes its mesh
	// connections while slower peers may still be executing, and that
	// orderly departure is indistinguishable from a crash at the socket.
	// Only a collective that actually needs the lost peer's data (or its
	// socket) fails — by then every frame an orderly finisher owed us is
	// already in the inbox, so a genuine wait on a lost peer means a real
	// loss.
	lost map[int]error
	done bool
}

func newJobRuntime(w *Worker, key jobKey) *jobRuntime {
	rt := &jobRuntime{
		w:     w,
		key:   key,
		peers: map[int]*peerLink{},
		inbox: map[mailKey][]byte{},
		lost:  map[int]error{},
	}
	rt.cond = sync.NewCond(&rt.mu)
	return rt
}

// addPeer registers an established peer connection, returning nil when the
// attempt has already failed or the slot is taken.
func (rt *jobRuntime) addPeer(idx int, conn net.Conn) *peerLink {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.done || rt.err != nil || rt.peers[idx] != nil {
		return nil
	}
	link := &peerLink{conn: conn, send: newSender(conn)}
	rt.peers[idx] = link
	rt.cond.Broadcast()
	return link
}

// waitPeer blocks until peer idx has connected, the attempt fails, or the
// handshake window elapses.
func (rt *jobRuntime) waitPeer(idx int) error {
	deadline := time.AfterFunc(handshakeTimeout, func() {
		rt.failPeer(idx, errors.New("peer rendezvous timed out"))
	})
	defer deadline.Stop()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for rt.peers[idx] == nil && rt.err == nil && rt.lost[idx] == nil {
		rt.cond.Wait()
	}
	if rt.err != nil {
		return rt.err
	}
	if cause := rt.lost[idx]; cause != nil && rt.peers[idx] == nil {
		return fmt.Errorf("%w: peer %d: %v", ErrPeerLost, idx, cause)
	}
	return nil
}

// routePeer is a peer connection's read loop: data frames for this attempt
// land in the mailbox; anything else (stale attempts, corrupt frames,
// connection loss) fails the peer so waiters never hang.
func (rt *jobRuntime) routePeer(idx int, link *peerLink, br *bufio.Reader) {
	defer link.send.abort()
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			rt.failPeer(idx, err)
			return
		}
		if typ != frameData {
			continue
		}
		f, err := decodeDataFrame(payload)
		if err != nil {
			rt.failPeer(idx, err)
			return
		}
		if f.JobID != rt.key.job || f.Attempt != rt.key.attempt {
			// A frame from a retired attempt; drop it.
			continue
		}
		rt.mu.Lock()
		rt.inbox[mailKey{seq: f.Seq, kind: f.Kind, from: f.From}] = f.Body
		rt.cond.Broadcast()
		rt.mu.Unlock()
	}
}

// waitMail blocks until the addressed contribution arrives, the sender is
// lost with the mail still owed, or the attempt fails. The inbox check
// comes first: frames an orderly-departed peer delivered before closing
// stay consumable.
func (rt *jobRuntime) waitMail(key mailKey) ([]byte, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for {
		if body, ok := rt.inbox[key]; ok {
			delete(rt.inbox, key)
			return body, nil
		}
		if rt.err != nil {
			return nil, rt.err
		}
		if cause := rt.lost[key.from]; cause != nil {
			return nil, fmt.Errorf("%w: peer %d dropped owing collective %d: %v",
				ErrPeerLost, key.from, key.seq, cause)
		}
		rt.cond.Wait()
	}
}

// peerSend enqueues a frame to roster member idx; a connection-level send
// failure is a peer loss.
func (rt *jobRuntime) peerSend(idx int, payload []byte) error {
	rt.mu.Lock()
	link := rt.peers[idx]
	err := rt.err
	rt.mu.Unlock()
	if err != nil {
		return err
	}
	if link == nil {
		return fmt.Errorf("%w: no connection to peer %d", ErrPeerLost, idx)
	}
	if err := link.send.send(frameData, payload); err != nil {
		rt.failPeer(idx, err)
		return fmt.Errorf("%w: sending to peer %d: %v", ErrPeerLost, idx, err)
	}
	return nil
}

// fail records the attempt's first failure and wakes every waiter.
func (rt *jobRuntime) fail(err error) {
	rt.mu.Lock()
	if rt.err == nil {
		rt.err = err
	}
	rt.cond.Broadcast()
	rt.mu.Unlock()
}

// failPeer records a peer loss and wakes waiters; blame lands lazily on
// whichever collective actually needs the peer (see the lost field's doc).
func (rt *jobRuntime) failPeer(idx int, cause error) {
	rt.mu.Lock()
	if rt.lost[idx] == nil {
		rt.lost[idx] = cause
	}
	rt.cond.Broadcast()
	rt.mu.Unlock()
}

// lossInfo reports, for a failed attempt, whether the failure traces to a
// lost peer and which peers this worker saw drop. Only the peers the
// returned error actually blames matter — recorded-but-harmless losses
// (orderly finishers) must not be accused.
func (rt *jobRuntime) lossInfo(err error) (bool, []int) {
	if !errors.Is(err, ErrPeerLost) {
		return false, nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	idxs := make([]int, 0, len(rt.lost))
	for i := range rt.lost {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	return true, idxs
}

// shutdown closes the attempt's peer connections — gracefully, draining
// any queued frames first, so an orderly finisher's last collective
// contributions reach the slower peers before the FIN does.
func (rt *jobRuntime) shutdown() {
	rt.mu.Lock()
	rt.done = true
	if rt.err == nil {
		rt.err = errors.New("cluster: attempt finished")
	}
	links := make([]*peerLink, 0, len(rt.peers))
	for _, l := range rt.peers {
		links = append(links, l)
	}
	rt.cond.Broadcast()
	rt.mu.Unlock()
	for _, l := range links {
		l.send.close()
	}
}

// peerTransport implements dataflow.Transport over the attempt's peer mesh.
// All methods run on the job's driving goroutine (the engine's contract),
// so the sequence counter needs no synchronization; each collective is
// matched across processes by that counter, and the router's mailbox holds
// early arrivals from faster peers.
type peerTransport struct {
	rt   *jobRuntime
	spec *jobSpec
	seq  uint64
	// wireOut attributes the bytes this process actually framed to peers,
	// per stage — the "actual shuffle bytes" side of the predicted-vs-actual
	// report (received bytes are the sending peer's wireOut; counting both
	// sides would double every byte in the cluster-wide sum).
	wireOut map[int64]int64
}

// Owns implements dataflow.Transport.
func (t *peerTransport) Owns(p int) bool { return t.spec.Owner[p] == t.spec.Self }

// maybeCrash drives the deterministic fault injection: when armed, the
// worker dies (as a process: every socket closed) after the configured
// number of collectives.
func (t *peerTransport) maybeCrash() error {
	if t.rt.w.failAfter.Load() <= 0 {
		return nil
	}
	if t.rt.w.failAfter.Add(-1) == 0 {
		t.rt.w.Crash()
		return errors.New("cluster: injected worker crash")
	}
	return nil
}

// Exchange implements dataflow.Transport: one frame per peer carries every
// (src partition, dst partition) bucket this process owes it; the mailbox
// wait returns the symmetric frames.
func (t *peerTransport) Exchange(stage int64, outgoing [][][]byte) ([][][]byte, error) {
	t.seq++
	if err := t.maybeCrash(); err != nil {
		return nil, err
	}
	w, self, owner := t.spec.Workers, t.spec.Self, t.spec.Owner
	for j := range t.spec.Procs {
		if j == self {
			continue
		}
		var body []byte
		for p := 0; p < w; p++ {
			if owner[p] != self {
				continue
			}
			for q := 0; q < w; q++ {
				if owner[q] != j {
					continue
				}
				body = binary.BigEndian.AppendUint32(body, uint32(p))
				body = binary.BigEndian.AppendUint32(body, uint32(q))
				body = binary.BigEndian.AppendUint32(body, uint32(len(outgoing[p][q])))
				body = append(body, outgoing[p][q]...)
			}
		}
		t.wireOut[stage] += int64(len(body)) + dataHeaderLen + frameHeader
		if err := t.sendData(stage, kindExchange, j, body); err != nil {
			return nil, err
		}
	}
	incoming := make([][][]byte, w)
	for q := 0; q < w; q++ {
		if owner[q] == self {
			incoming[q] = make([][]byte, w)
		}
	}
	for j := range t.spec.Procs {
		if j == self {
			continue
		}
		body, err := t.rt.waitMail(mailKey{seq: t.seq, kind: kindExchange, from: j})
		if err != nil {
			return nil, err
		}
		for len(body) > 0 {
			if len(body) < 12 {
				return nil, fmt.Errorf("cluster: truncated exchange bucket header from peer %d", j)
			}
			p := int(binary.BigEndian.Uint32(body))
			q := int(binary.BigEndian.Uint32(body[4:]))
			n := int(binary.BigEndian.Uint32(body[8:]))
			body = body[12:]
			if n > len(body) {
				return nil, fmt.Errorf("cluster: exchange bucket length %d exceeds frame from peer %d", n, j)
			}
			if p < 0 || p >= w || q < 0 || q >= w || owner[p] != j || owner[q] != self {
				return nil, fmt.Errorf("cluster: misrouted exchange bucket %d->%d from peer %d", p, q, j)
			}
			incoming[q][p] = body[:n:n]
			body = body[n:]
		}
	}
	return incoming, nil
}

// AllGather implements dataflow.Transport: every process frames its owned
// partitions' blobs once and sends the identical body to each peer.
func (t *peerTransport) AllGather(stage int64, blobs [][]byte) ([][]byte, error) {
	t.seq++
	if err := t.maybeCrash(); err != nil {
		return nil, err
	}
	w, self, owner := t.spec.Workers, t.spec.Self, t.spec.Owner
	var body []byte
	for p := 0; p < w; p++ {
		if owner[p] != self {
			continue
		}
		body = binary.BigEndian.AppendUint32(body, uint32(p))
		body = binary.BigEndian.AppendUint32(body, uint32(len(blobs[p])))
		body = append(body, blobs[p]...)
	}
	for j := range t.spec.Procs {
		if j == self {
			continue
		}
		t.wireOut[stage] += int64(len(body)) + dataHeaderLen + frameHeader
		if err := t.sendData(stage, kindAllGather, j, body); err != nil {
			return nil, err
		}
	}
	out := make([][]byte, w)
	for p := 0; p < w; p++ {
		if owner[p] == self {
			out[p] = blobs[p]
		}
	}
	for j := range t.spec.Procs {
		if j == self {
			continue
		}
		body, err := t.rt.waitMail(mailKey{seq: t.seq, kind: kindAllGather, from: j})
		if err != nil {
			return nil, err
		}
		for len(body) > 0 {
			if len(body) < 8 {
				return nil, fmt.Errorf("cluster: truncated all-gather header from peer %d", j)
			}
			p := int(binary.BigEndian.Uint32(body))
			n := int(binary.BigEndian.Uint32(body[4:]))
			body = body[8:]
			if n > len(body) {
				return nil, fmt.Errorf("cluster: all-gather blob length %d exceeds frame from peer %d", n, j)
			}
			if p < 0 || p >= w || owner[p] != j {
				return nil, fmt.Errorf("cluster: misrouted all-gather blob for partition %d from peer %d", p, j)
			}
			out[p] = body[:n:n]
			body = body[n:]
		}
	}
	return out, nil
}

func (t *peerTransport) sendData(stage int64, kind byte, to int, body []byte) error {
	return t.rt.peerSend(to, encodeDataFrame(&dataFrame{
		JobID:   t.spec.JobID,
		Attempt: t.spec.Attempt,
		Seq:     t.seq,
		Kind:    kind,
		From:    t.spec.Self,
		Stage:   stage,
		Body:    body,
	}))
}

// stageRecords derives the predicted-vs-actual table from the worker's
// trace: prediction is the cost model's SimTime over the stage's owned
// per-partition charges, actual is the stage's measured wall clock, model
// bytes are the charged cross-partition bytes, wire bytes what the
// transport framed.
func stageRecords(spans []trace.Span, cfg dataflow.Config, wireOut map[int64]int64) []stageRecord {
	recs := make([]stageRecord, 0, len(spans))
	for i := range spans {
		s := &spans[i]
		var model int64
		for _, p := range s.Parts {
			model += p.NetBytes
		}
		recs = append(recs, stageRecord{
			Stage:   s.Stage,
			Op:      s.Op,
			Kind:    s.Kind,
			Shuffle: s.Shuffle,
			Predicted: int64(s.SimTime(cfg.CPUTimePerElement, cfg.NetTimePerByte,
				cfg.DiskTimePerByte, cfg.StageOverhead)),
			Actual:     int64(s.End - s.Start),
			ModelBytes: model,
			WireBytes:  wireOut[s.Stage],
		})
	}
	return recs
}

// encodeEmbeddings frames one partition's rows: uint32 count + wire forms.
func encodeEmbeddings(rows []embedding.Embedding) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(rows)))
	for _, e := range rows {
		out = e.AppendWire(out)
	}
	return out
}

// decodeEmbeddings reverses encodeEmbeddings with the usual hostile-count
// guard.
func decodeEmbeddings(b []byte) ([]embedding.Embedding, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("cluster: truncated result partition (%d bytes)", len(b))
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if n < 0 || n > len(b) {
		return nil, fmt.Errorf("cluster: result row count %d exceeds payload (%d bytes)", n, len(b))
	}
	out := make([]embedding.Embedding, n)
	for i := range out {
		rest, err := out[i].DecodeWireInto(b)
		if err != nil {
			return nil, fmt.Errorf("cluster: result row %d/%d: %w", i, n, err)
		}
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("cluster: result partition has %d trailing bytes", len(b))
	}
	return out, nil
}
