package cluster_test

import (
	"fmt"
	"net"
	"reflect"
	"testing"

	"gradoop/internal/cluster"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/ldbc"
	"gradoop/internal/session"
)

// testQueries exercises the distributed engine end to end: scans, selective
// parameterized filters, multi-hop repartition joins and a triangle — the
// shapes whose shuffles actually cross worker sockets.
var testQueries = []struct {
	name  string
	query string
	param bool
}{
	{"scan", `MATCH (p:Person) RETURN *`, false},
	{"filter", `MATCH (p:Person) WHERE p.firstName = $firstName RETURN *`, true},
	{"expand", `MATCH (p:Person)-[:knows]->(q:Person) RETURN *`, false},
	{"twohop", `MATCH (p1:Person)-[:knows]->(p2:Person), (p2)-[:knows]->(p3:Person) RETURN *`, false},
	{"located", `MATCH (person:Person)-[:isLocatedIn]->(city:City), (person)-[:studyAt]->(u:University) RETURN *`, false},
	{"triangle", `MATCH (p1:Person)-[:knows]->(p2:Person), (p2)-[:knows]->(p3:Person), (p1)-[:knows]->(p3) RETURN *`, false},
}

// testGraph builds the shared LDBC fixture.
func testGraph(t *testing.T) (*session.GraphData, *ldbc.Dataset) {
	t.Helper()
	env := dataflow.NewEnv(dataflow.DefaultConfig(4))
	d := ldbc.Generate(env, ldbc.Config{ScaleFactor: 0.02, Seed: 4})
	return session.NewGraphData(d.Graph), d
}

// startWorkers launches n in-process workers on loopback listeners.
func startWorkers(t *testing.T, data *session.GraphData, n int) ([]*cluster.Worker, []string) {
	t.Helper()
	workers := make([]*cluster.Worker, n)
	addrs := make([]string, n)
	for i := range workers {
		w := cluster.NewWorker(fmt.Sprintf("w%d", i), data, nil)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve(ln)
		t.Cleanup(w.Close)
		workers[i] = w
		addrs[i] = ln.Addr().String()
	}
	return workers, addrs
}

// run executes every test query against a session and returns the raw
// responses, keyed by query name.
func run(t *testing.T, s *session.Session, firstName string) map[string]*session.Response {
	t.Helper()
	out := map[string]*session.Response{}
	for _, q := range testQueries {
		req := session.Request{Query: q.query}
		if q.param {
			req.Params = map[string]epgm.PropertyValue{"firstName": epgm.PVString(firstName)}
		}
		resp, err := s.Execute(req)
		if err != nil {
			t.Fatalf("%s: %v", q.name, err)
		}
		out[q.name] = resp
	}
	return out
}

// TestClusterBitIdentity is the tentpole's core guarantee: the same
// session-level queries, executed across 1, 2 and 4 worker processes,
// return rows byte-identical — including order — to the single-process
// engine, and the merged metrics reproduce the single-process charges.
func TestClusterBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP worker meshes")
	}
	data, d := testGraph(t)
	common, _, _ := d.FirstNamesBySelectivity()
	opts := session.Options{Workers: 4}

	ref := run(t, session.New(d.Graph, opts), common)

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			_, addrs := startWorkers(t, data, n)
			coord, err := cluster.NewCoordinator(addrs, cluster.Options{Workers: opts.Workers})
			if err != nil {
				t.Fatal(err)
			}
			defer coord.Close()
			copts := opts
			copts.Remote = coord
			got := run(t, session.New(d.Graph, copts), common)
			for name, want := range ref {
				resp := got[name]
				if resp.Count != want.Count {
					t.Fatalf("%s: count %d != single-process %d", name, resp.Count, want.Count)
				}
				if !reflect.DeepEqual(resp.Rows, want.Rows) {
					t.Fatalf("%s: distributed rows differ from single-process rows", name)
				}
				if !reflect.DeepEqual(resp.Columns, want.Columns) {
					t.Fatalf("%s: columns %v != %v", name, resp.Columns, want.Columns)
				}
				if resp.Cluster == nil {
					t.Fatalf("%s: missing cluster report", name)
				}
				if resp.Cluster.Workers != n || resp.Cluster.Attempts != 1 || resp.Cluster.Recovered {
					t.Fatalf("%s: report %+v, want workers=%d attempts=1", name, resp.Cluster, n)
				}
				if len(resp.Cluster.Stages) == 0 {
					t.Fatalf("%s: no stage records", name)
				}
				// Each worker charges only its owned partitions, so the merged
				// counters must reproduce the single-process run exactly.
				if resp.Metrics.TotalCPU != want.Metrics.TotalCPU {
					t.Fatalf("%s: merged TotalCPU %d != single-process %d",
						name, resp.Metrics.TotalCPU, want.Metrics.TotalCPU)
				}
				if resp.Metrics.TotalNet != want.Metrics.TotalNet {
					t.Fatalf("%s: merged TotalNet %d != single-process %d",
						name, resp.Metrics.TotalNet, want.Metrics.TotalNet)
				}
			}
		})
	}
}

// TestClusterStageReport checks the predicted-vs-actual surface: shuffle
// stages must report model bytes (cost-model charge) and, with more than
// one worker, actual wire bytes on the sockets.
func TestClusterStageReport(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP worker meshes")
	}
	data, d := testGraph(t)
	_, addrs := startWorkers(t, data, 2)
	coord, err := cluster.NewCoordinator(addrs, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	s := session.New(d.Graph, session.Options{Workers: 4, Remote: coord})
	resp, err := s.Execute(session.Request{Query: `MATCH (p1:Person)-[:knows]->(p2:Person), (p2)-[:knows]->(p3:Person) RETURN *`})
	if err != nil {
		t.Fatal(err)
	}
	var shuffles, wired int
	for _, st := range resp.Cluster.Stages {
		if st.Predicted <= 0 {
			t.Fatalf("stage %d (%s): no prediction", st.Stage, st.Kind)
		}
		if st.Shuffle {
			shuffles++
			if st.WireBytes > 0 {
				wired++
			}
		} else if st.WireBytes != 0 {
			t.Fatalf("stage %d (%s): wire bytes on a non-shuffle stage", st.Stage, st.Kind)
		}
	}
	if shuffles == 0 {
		t.Fatal("two-hop join reported no shuffle stages")
	}
	if wired == 0 {
		t.Fatal("no shuffle stage put bytes on the wire across 2 workers")
	}
}

// TestClusterRecovery kills a worker mid-query (after its second collective
// exchange) and requires the re-executed job to return the bit-identical
// result, flagged as recovered.
func TestClusterRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP worker meshes")
	}
	data, d := testGraph(t)
	opts := session.Options{Workers: 4}
	query := `MATCH (p1:Person)-[:knows]->(p2:Person), (p2)-[:knows]->(p3:Person) RETURN *`

	want, err := session.New(d.Graph, opts).Execute(session.Request{Query: query})
	if err != nil {
		t.Fatal(err)
	}

	workers, addrs := startWorkers(t, data, 3)
	coord, err := cluster.NewCoordinator(addrs, cluster.Options{Workers: opts.Workers})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	workers[1].SetFailAfterExchanges(2)

	copts := opts
	copts.Remote = coord
	resp, err := session.New(d.Graph, copts).Execute(session.Request{Query: query})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if resp.Cluster == nil || !resp.Cluster.Recovered || resp.Cluster.Attempts < 2 {
		t.Fatalf("expected a recovered execution, got report %+v", resp.Cluster)
	}
	if resp.Cluster.Workers != 2 {
		t.Fatalf("recovered roster size %d, want 2 survivors", resp.Cluster.Workers)
	}
	if !reflect.DeepEqual(resp.Rows, want.Rows) || resp.Count != want.Count {
		t.Fatalf("recovered rows differ from single-process rows (%d vs %d)", resp.Count, want.Count)
	}
	if coord.LiveWorkers() != 2 {
		t.Fatalf("live workers %d, want 2 after the kill", coord.LiveWorkers())
	}

	// The cluster keeps serving — and stays correct — after the loss.
	resp2, err := session.New(d.Graph, copts).Execute(session.Request{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp2.Rows, want.Rows) {
		t.Fatal("post-recovery execution diverged")
	}
	if resp2.Cluster.Recovered || resp2.Cluster.Attempts != 1 {
		t.Fatalf("post-recovery report %+v, want a clean first attempt", resp2.Cluster)
	}
}

// TestClusterAllWorkersLost drives the roster to zero and requires a
// structured error, not a hang.
func TestClusterAllWorkersLost(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP worker meshes")
	}
	data, d := testGraph(t)
	workers, addrs := startWorkers(t, data, 1)
	coord, err := cluster.NewCoordinator(addrs, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	workers[0].SetFailAfterExchanges(1)
	s := session.New(d.Graph, session.Options{Workers: 4, Remote: coord})
	_, err = s.Execute(session.Request{Query: `MATCH (p1:Person)-[:knows]->(p2:Person), (p2)-[:knows]->(p3:Person) RETURN *`})
	if err == nil {
		t.Fatal("expected an error after losing the whole roster")
	}
}

// TestClusterQueryError checks that a genuine query failure (an unknown
// parameter) propagates as an error without burning recovery attempts.
func TestClusterQueryError(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns TCP worker meshes")
	}
	data, d := testGraph(t)
	_, addrs := startWorkers(t, data, 2)
	coord, err := cluster.NewCoordinator(addrs, cluster.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	s := session.New(d.Graph, session.Options{Workers: 4, Remote: coord})
	_, err = s.Execute(session.Request{Query: `MATCH (p:Person) WHERE p.firstName = $missing RETURN *`})
	if err == nil {
		t.Fatal("expected a parameter error")
	}
	if coord.LiveWorkers() != 2 {
		t.Fatalf("query error must not kill workers; live=%d", coord.LiveWorkers())
	}
}
