// Package cluster executes planned Cypher queries across real OS processes:
// a coordinator (embedded in the session server) plans once on its pinned
// statistics and ships the job to worker processes, each holding the full
// graph data and owning a subset of the logical partitions. Workers run the
// identical deterministic dataflow program (SPMD — see dataflow.Transport)
// and exchange shuffle data directly with each other over TCP using the
// length-prefixed binary frame protocol in this file. A lost worker
// (connection drop or missed heartbeat) aborts the attempt; the coordinator
// remaps the dead worker's partitions onto the survivors and re-runs the
// job, which is guaranteed to produce the byte-identical result because
// partition contents and assembly order are fixed by the program, not by
// the ownership assignment.
package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"

	"gradoop/internal/dataflow"
	"gradoop/internal/stats"
)

// Protocol constants. The magic/version pair is verified in both directions
// of the handshake; a mismatch is rejected with a structured reason instead
// of letting two incompatible builds exchange garbage.
const (
	protoMagic   = 0x47524450 // "GRDP"
	protoVersion = 1

	// maxFrame bounds a frame's declared length. A torn or hostile length
	// prefix is rejected before any allocation.
	maxFrame = 256 << 20

	// frameHeader is the fixed per-frame overhead: uint32 length + type byte.
	frameHeader = 5
)

// Frame types. Control payloads (hello, job, done, abort) are JSON inside
// the binary framing — they are rare and small; the hot path (data, result)
// is pure binary.
const (
	frameHello   = byte(1)  // connection opener, both roles
	frameWelcome = byte(2)  // handshake accept
	frameReject  = byte(3)  // handshake refusal, then close
	frameJob     = byte(4)  // coordinator -> worker: run this job
	frameJobDone = byte(5)  // worker -> coordinator: job finished (ok or not)
	frameResult  = byte(6)  // worker -> coordinator: one owned partition's rows
	frameAbort   = byte(7)  // coordinator -> worker: stop an attempt
	framePing    = byte(8)  // coordinator -> worker liveness probe
	framePong    = byte(9)  // worker -> coordinator liveness answer
	frameData    = byte(10) // worker <-> worker: one collective's buckets
	// frameTelemetry ships a worker's observability bundle (span set +
	// registry snapshot) for one attempt. It is sent on the control
	// connection immediately before the attempt's frameJobDone, so a done
	// report is the guarantee that the bundle — if the worker ships one —
	// has already arrived.
	frameTelemetry = byte(11)
)

// Exchange kinds inside a data frame.
const (
	kindExchange  = byte(0)
	kindAllGather = byte(1)
)

// Roles a connecting peer announces in its hello.
const (
	roleControl = "control" // coordinator -> worker
	rolePeer    = "peer"    // worker -> worker, scoped to one job attempt
)

// hello opens every connection.
type hello struct {
	Magic   uint32 `json:"magic"`
	Version int    `json:"version"`
	Role    string `json:"role"`
	Node    string `json:"node"`
	// Peer connections are scoped to one job attempt; From is the dialing
	// worker's roster index within it.
	JobID   uint64 `json:"jobId,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	From    int    `json:"from,omitempty"`
}

// welcome acknowledges a hello.
type welcome struct {
	Magic   uint32 `json:"magic"`
	Version int    `json:"version"`
	Node    string `json:"node"`
}

// reject refuses a hello.
type reject struct {
	Reason string `json:"reason"`
}

// procSpec is one roster member as the workers see each other.
type procSpec struct {
	Node string `json:"node"`
	Addr string `json:"addr"`
}

// jobSpec ships one planned query to a worker. The worker re-plans the
// canonical query text against the coordinator's pinned statistics — the
// planner is deterministic, so every process builds the identical plan,
// and the expected fingerprint turns any drift (version skew, divergent
// stats) into a hard error instead of a wrong answer.
type jobSpec struct {
	JobID   uint64 `json:"jobId"`
	Attempt int    `json:"attempt"`
	Query   string `json:"query"`
	// Params is the wire.AppendParams encoding of the parameter bindings —
	// the same bytes the session's result-cache key uses.
	Params []byte `json:"params,omitempty"`
	// Stats is the coordinator's pinned statistics snapshot; workers must
	// plan on it, not on locally collected numbers.
	Stats *stats.GraphStatistics `json:"stats"`
	// Workers is the logical partition count P (the session's worker
	// count); Owner maps each partition to a roster index.
	Workers int   `json:"workers"`
	Owner   []int `json:"owner"`
	// Procs is the attempt's roster; Self is this worker's index in it.
	Procs []procSpec `json:"procs"`
	Self  int        `json:"self"`
	// Planner configuration, mirrored from the coordinator's core.Config.
	Vertex       int    `json:"vertex"`
	Edge         int    `json:"edge"`
	Hint         int    `json:"hint"`
	DisableReuse bool   `json:"disableReuse,omitempty"`
	Fingerprint  string `json:"fingerprint"`
	// TimeoutNs bounds the worker-side execution (0 = none).
	TimeoutNs int64 `json:"timeoutNs,omitempty"`
	// TraceID is the coordinator's trace identity for the query, stamped
	// into worker logs and telemetry bundles so every process's records of
	// one distributed job correlate under a single ID.
	TraceID string `json:"traceId,omitempty"`
}

// stageRecord is one executed stage in a worker's report: the cost model's
// prediction (SimTime over the stage's per-partition charges) against the
// measured wall time and the bytes the transport actually framed.
type stageRecord struct {
	Stage      int64  `json:"stage"`
	Op         string `json:"op,omitempty"`
	Kind       string `json:"kind"`
	Shuffle    bool   `json:"shuffle"`
	Predicted  int64  `json:"predictedNs"`
	Actual     int64  `json:"actualNs"`
	ModelBytes int64  `json:"modelBytes"`
	WireBytes  int64  `json:"wireBytes"`
}

// jobDone is a worker's terminal report for one attempt.
type jobDone struct {
	JobID   uint64 `json:"jobId"`
	Attempt int    `json:"attempt"`
	Error   string `json:"error,omitempty"`
	// PeerLost marks failures caused by a dead peer rather than by the
	// query itself; LostPeers names the roster indices that dropped. The
	// coordinator recovers from these, and only these, by re-running on a
	// remapped roster.
	PeerLost  bool  `json:"peerLost,omitempty"`
	LostPeers []int `json:"lostPeers,omitempty"`

	Stages  []stageRecord            `json:"stages,omitempty"`
	Metrics dataflow.MetricsSnapshot `json:"metrics"`
	// Telemetry marks that the worker shipped a telemetry bundle for this
	// attempt (ordered before this report on the same connection). False
	// means the worker runs with telemetry disabled; the coordinator then
	// marks the job's report partial instead of waiting for a bundle that
	// will never come.
	Telemetry bool `json:"telemetry,omitempty"`
}

// abortMsg tells workers to stop one attempt.
type abortMsg struct {
	JobID   uint64 `json:"jobId"`
	Attempt int    `json:"attempt"`
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, guarding against torn and hostile length
// prefixes: a prefix of zero, or beyond maxFrame, fails before any
// allocation, and a short read surfaces as io.ErrUnexpectedEOF rather than
// a misparse of the next frame.
func readFrame(r *bufio.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("cluster: zero-length frame")
	}
	if n > maxFrame {
		return 0, nil, fmt.Errorf("cluster: frame length %d exceeds limit %d", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("cluster: torn frame (want %d bytes): %w", n, err)
	}
	return body[0], body[1:], nil
}

// writeJSONFrame marshals a control message into a frame.
func writeJSONFrame(w io.Writer, typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, typ, payload)
}

// dataHeader is the fixed binary prefix of a frameData payload:
// jobID u64 | attempt u32 | seq u64 | kind u8 | from u32 | stage i64 | crc u32.
const dataHeaderLen = 8 + 4 + 8 + 1 + 4 + 8 + 4

type dataFrame struct {
	JobID   uint64
	Attempt int
	Seq     uint64
	Kind    byte
	From    int
	Stage   int64
	Body    []byte
}

func encodeDataFrame(f *dataFrame) []byte {
	out := make([]byte, dataHeaderLen, dataHeaderLen+len(f.Body))
	binary.BigEndian.PutUint64(out[0:], f.JobID)
	binary.BigEndian.PutUint32(out[8:], uint32(f.Attempt))
	binary.BigEndian.PutUint64(out[12:], f.Seq)
	out[20] = f.Kind
	binary.BigEndian.PutUint32(out[21:], uint32(f.From))
	binary.BigEndian.PutUint64(out[25:], uint64(f.Stage))
	binary.BigEndian.PutUint32(out[33:], crc32.ChecksumIEEE(f.Body))
	return append(out, f.Body...)
}

// decodeDataFrame parses and CRC-checks a frameData payload. The body
// aliases the input.
func decodeDataFrame(b []byte) (*dataFrame, error) {
	if len(b) < dataHeaderLen {
		return nil, fmt.Errorf("cluster: truncated data frame (%d bytes)", len(b))
	}
	f := &dataFrame{
		JobID:   binary.BigEndian.Uint64(b[0:]),
		Attempt: int(binary.BigEndian.Uint32(b[8:])),
		Seq:     binary.BigEndian.Uint64(b[12:]),
		Kind:    b[20],
		From:    int(binary.BigEndian.Uint32(b[21:])),
		Stage:   int64(binary.BigEndian.Uint64(b[25:])),
		Body:    b[dataHeaderLen:],
	}
	if want, got := binary.BigEndian.Uint32(b[33:]), crc32.ChecksumIEEE(f.Body); want != got {
		return nil, fmt.Errorf("cluster: data frame CRC mismatch (%08x != %08x)", got, want)
	}
	return f, nil
}

// resultHeaderLen prefixes a frameResult payload:
// jobID u64 | attempt u32 | partition u32.
const resultHeaderLen = 8 + 4 + 4

type resultFrame struct {
	JobID     uint64
	Attempt   int
	Partition int
	Body      []byte // uint32 row count + each embedding's wire form
}

func encodeResultFrame(f *resultFrame) []byte {
	out := make([]byte, resultHeaderLen, resultHeaderLen+len(f.Body))
	binary.BigEndian.PutUint64(out[0:], f.JobID)
	binary.BigEndian.PutUint32(out[8:], uint32(f.Attempt))
	binary.BigEndian.PutUint32(out[12:], uint32(f.Partition))
	return append(out, f.Body...)
}

func decodeResultFrame(b []byte) (*resultFrame, error) {
	if len(b) < resultHeaderLen {
		return nil, fmt.Errorf("cluster: truncated result frame (%d bytes)", len(b))
	}
	return &resultFrame{
		JobID:     binary.BigEndian.Uint64(b[0:]),
		Attempt:   int(binary.BigEndian.Uint32(b[8:])),
		Partition: int(binary.BigEndian.Uint32(b[12:])),
		Body:      b[resultHeaderLen:],
	}, nil
}

// sender serializes and coalesces writes on one connection: frames are
// enqueued from any goroutine, a single writer goroutine drains the queue
// through a buffered writer and flushes only when the queue runs dry — a
// burst of small frames (one shuffle's per-peer buckets, heartbeats riding
// alongside results) coalesces into few syscalls without any timer.
type sender struct {
	conn net.Conn

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []outFrame
	closed bool
	err    error

	done chan struct{}
}

type outFrame struct {
	typ     byte
	payload []byte
}

func newSender(conn net.Conn) *sender {
	s := &sender{conn: conn, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

func (s *sender) run() {
	defer close(s.done)
	bw := bufio.NewWriterSize(s.conn, 64<<10)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		batch := s.queue
		s.queue = nil
		closed := s.closed
		s.mu.Unlock()
		for _, f := range batch {
			if err := writeFrame(bw, f.typ, f.payload); err != nil {
				s.fail(err)
				return
			}
		}
		// Queue drained: flush the coalesced batch before sleeping.
		if err := bw.Flush(); err != nil {
			s.fail(err)
			return
		}
		if closed {
			s.conn.Close()
			return
		}
	}
}

func (s *sender) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.queue = nil
	s.closed = true
	s.mu.Unlock()
	s.conn.Close()
}

// send enqueues one frame. It returns the connection's sticky error, if
// any; enqueueing after close is a silent no-op with that error returned.
func (s *sender) send(typ byte, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil {
		err := s.err
		if err == nil {
			err = net.ErrClosed
		}
		return err
	}
	s.queue = append(s.queue, outFrame{typ: typ, payload: payload})
	s.cond.Signal()
	return nil
}

// sendJSON marshals and enqueues a control frame.
func (s *sender) sendJSON(typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return s.send(typ, payload)
}

// close drains pending frames, flushes, and closes the connection.
func (s *sender) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	<-s.done
}

// abort closes the connection immediately, discarding queued frames.
func (s *sender) abort() {
	s.fail(net.ErrClosed)
	s.cond.Broadcast()
	<-s.done
}
