package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"gradoop/internal/dataflow"
	"gradoop/internal/ldbc"
	csvstore "gradoop/internal/storage/csv"
)

// TestClusterE2E is the multi-process smoke: it builds the real cypherd and
// cypherworker binaries, writes an LDBC dataset to disk, spawns a
// coordinator plus two worker OS processes, and drives oracle queries over
// HTTP. One worker is armed to crash mid-query (its first shuffle
// exchange); the response must still be bit-identical to a plain
// single-process cypherd, with the recovery visible in the cluster report.
//
// Gated behind CLUSTER_E2E=1 (it compiles binaries and spawns processes);
// `make cluster-smoke` runs it.
func TestClusterE2E(t *testing.T) {
	if os.Getenv("CLUSTER_E2E") == "" {
		t.Skip("set CLUSTER_E2E=1 to run the multi-process smoke (builds binaries, spawns OS processes)")
	}

	bin := t.TempDir()
	for _, pkg := range []string{"cypherd", "cypherworker"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, pkg), "gradoop/cmd/"+pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// The dataset both cypherd processes and every worker load.
	dataDir := filepath.Join(t.TempDir(), "graph")
	env := dataflow.NewEnv(dataflow.DefaultConfig(4))
	d := ldbc.Generate(env, ldbc.Config{ScaleFactor: 0.05, Seed: 7})
	if err := csvstore.WriteLogicalGraph(d.Graph, dataDir); err != nil {
		t.Fatal(err)
	}

	refAddr := freeAddr(t)
	clusterAddr := freeAddr(t)
	w0Addr := freeAddr(t)
	w1Addr := freeAddr(t)

	// Reference: the plain in-process engine.
	spawn(t, filepath.Join(bin, "cypherd"), "-graph", dataDir, "-addr", refAddr)

	// Workers first (the coordinator dials them at startup). w1 is armed to
	// crash on its first collective exchange — mid-query, from the
	// coordinator's point of view, on the first query that shuffles.
	spawn(t, filepath.Join(bin, "cypherworker"), "-graph", dataDir, "-addr", w0Addr, "-node", "w0")
	spawn(t, filepath.Join(bin, "cypherworker"), "-graph", dataDir, "-addr", w1Addr, "-node", "w1", "-fail-after", "1")
	waitTCP(t, w0Addr)
	waitTCP(t, w1Addr)

	spawn(t, filepath.Join(bin, "cypherd"), "-graph", dataDir, "-addr", clusterAddr,
		"-cluster", w0Addr+","+w1Addr)

	waitHealthy(t, refAddr)
	waitHealthy(t, clusterAddr)

	queries := []struct {
		name    string
		query   string
		shuffle bool // expected to crash w1 and recover
	}{
		{"twohop", `MATCH (p1:Person)-[:knows]->(p2:Person), (p2)-[:knows]->(p3:Person) RETURN *`, true},
		{"scan", `MATCH (p:Person) RETURN *`, false},
		{"expand", `MATCH (p:Person)-[:knows]->(q:Person) RETURN *`, false},
	}
	for _, q := range queries {
		ref := postQuery(t, refAddr, q.query)
		got := postQuery(t, clusterAddr, q.query)
		if got.Count != ref.Count {
			t.Fatalf("%s: count %d != single-process %d", q.name, got.Count, ref.Count)
		}
		if !reflect.DeepEqual(got.Rows, ref.Rows) {
			t.Fatalf("%s: distributed rows differ from single-process rows", q.name)
		}
		if !reflect.DeepEqual(got.Columns, ref.Columns) {
			t.Fatalf("%s: columns %v != %v", q.name, got.Columns, ref.Columns)
		}
		if got.Cluster == nil {
			t.Fatalf("%s: missing cluster report", q.name)
		}
		if q.shuffle {
			// The armed worker died mid-exchange; the job must have re-run
			// on the survivor and still matched the reference above.
			if !got.Cluster.Recovered || got.Cluster.Attempts < 2 {
				t.Fatalf("%s: expected mid-query recovery, report %+v", q.name, got.Cluster)
			}
		} else {
			// Post-recovery queries run clean on the shrunken roster.
			if got.Cluster.Recovered || got.Cluster.Attempts != 1 || got.Cluster.Workers != 1 {
				t.Fatalf("%s: expected clean one-worker attempt, report %+v", q.name, got.Cluster)
			}
		}
		t.Logf("%s: %d rows, workers=%d attempts=%d recovered=%v",
			q.name, got.Count, got.Cluster.Workers, got.Cluster.Attempts, got.Cluster.Recovered)
	}
}

// e2eResponse is the subset of the server's query response the smoke
// asserts on.
type e2eResponse struct {
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
	Count   int64    `json:"count"`
	Cluster *struct {
		Workers   int  `json:"workers"`
		Attempts  int  `json:"attempts"`
		Recovered bool `json:"recovered"`
	} `json:"cluster"`
}

func postQuery(t *testing.T, addr, query string) *e2eResponse {
	t.Helper()
	body, err := json.Marshal(map[string]any{"query": query})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	var out e2eResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /query response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: status %d", resp.StatusCode)
	}
	return &out
}

// spawn starts a binary, streams its stderr into the test log and kills it
// at cleanup.
func spawn(t *testing.T, path string, args ...string) {
	t.Helper()
	cmd := exec.Command(path, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", filepath.Base(path), err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() && stderr.Len() > 0 {
			t.Logf("%s %s stderr:\n%s", filepath.Base(path), strings.Join(args, " "), stderr.String())
		}
	})
}

// freeAddr reserves a loopback port by listening and closing.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never started listening", addr)
}

func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", addr)
}
