package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"gradoop/internal/dataflow"
	"gradoop/internal/ldbc"
	csvstore "gradoop/internal/storage/csv"
)

// TestClusterE2E is the multi-process smoke: it builds the real cypherd and
// cypherworker binaries, writes an LDBC dataset to disk, spawns a
// coordinator plus two worker OS processes, and drives oracle queries over
// HTTP. One worker is armed to crash mid-query (its first shuffle
// exchange); the response must still be bit-identical to a plain
// single-process cypherd, with the recovery visible in the cluster report.
//
// Gated behind CLUSTER_E2E=1 (it compiles binaries and spawns processes);
// `make cluster-smoke` runs it.
func TestClusterE2E(t *testing.T) {
	if os.Getenv("CLUSTER_E2E") == "" {
		t.Skip("set CLUSTER_E2E=1 to run the multi-process smoke (builds binaries, spawns OS processes)")
	}

	bin := t.TempDir()
	for _, pkg := range []string{"cypherd", "cypherworker"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, pkg), "gradoop/cmd/"+pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// The dataset both cypherd processes and every worker load.
	dataDir := filepath.Join(t.TempDir(), "graph")
	env := dataflow.NewEnv(dataflow.DefaultConfig(4))
	d := ldbc.Generate(env, ldbc.Config{ScaleFactor: 0.05, Seed: 7})
	if err := csvstore.WriteLogicalGraph(d.Graph, dataDir); err != nil {
		t.Fatal(err)
	}

	refAddr := freeAddr(t)
	clusterAddr := freeAddr(t)
	w0Addr := freeAddr(t)
	w1Addr := freeAddr(t)

	// Reference: the plain in-process engine.
	spawn(t, filepath.Join(bin, "cypherd"), "-graph", dataDir, "-addr", refAddr)

	// Workers first (the coordinator dials them at startup). w1 is armed to
	// crash on its first collective exchange — mid-query, from the
	// coordinator's point of view, on the first query that shuffles.
	spawn(t, filepath.Join(bin, "cypherworker"), "-graph", dataDir, "-addr", w0Addr, "-node", "w0")
	spawn(t, filepath.Join(bin, "cypherworker"), "-graph", dataDir, "-addr", w1Addr, "-node", "w1", "-fail-after", "1")
	waitTCP(t, w0Addr)
	waitTCP(t, w1Addr)

	spawn(t, filepath.Join(bin, "cypherd"), "-graph", dataDir, "-addr", clusterAddr,
		"-cluster", w0Addr+","+w1Addr)

	waitHealthy(t, refAddr)
	waitHealthy(t, clusterAddr)

	queries := []struct {
		name    string
		query   string
		shuffle bool // expected to crash w1 and recover
	}{
		{"twohop", `MATCH (p1:Person)-[:knows]->(p2:Person), (p2)-[:knows]->(p3:Person) RETURN *`, true},
		{"scan", `MATCH (p:Person) RETURN *`, false},
		{"expand", `MATCH (p:Person)-[:knows]->(q:Person) RETURN *`, false},
	}
	for _, q := range queries {
		ref := postQuery(t, refAddr, q.query)
		got := postQuery(t, clusterAddr, q.query)
		if got.Count != ref.Count {
			t.Fatalf("%s: count %d != single-process %d", q.name, got.Count, ref.Count)
		}
		if !reflect.DeepEqual(got.Rows, ref.Rows) {
			t.Fatalf("%s: distributed rows differ from single-process rows", q.name)
		}
		if !reflect.DeepEqual(got.Columns, ref.Columns) {
			t.Fatalf("%s: columns %v != %v", q.name, got.Columns, ref.Columns)
		}
		if got.Cluster == nil {
			t.Fatalf("%s: missing cluster report", q.name)
		}
		if q.shuffle {
			// The armed worker died mid-exchange; the job must have re-run
			// on the survivor and still matched the reference above.
			if !got.Cluster.Recovered || got.Cluster.Attempts < 2 {
				t.Fatalf("%s: expected mid-query recovery, report %+v", q.name, got.Cluster)
			}
		} else {
			// Post-recovery queries run clean on the shrunken roster.
			if got.Cluster.Recovered || got.Cluster.Attempts != 1 || got.Cluster.Workers != 1 {
				t.Fatalf("%s: expected clean one-worker attempt, report %+v", q.name, got.Cluster)
			}
		}
		t.Logf("%s: %d rows, workers=%d attempts=%d recovered=%v",
			q.name, got.Count, got.Cluster.Workers, got.Cluster.Attempts, got.Cluster.Recovered)
	}

	// Observability smoke: a fresh 2-worker cluster (no armed crash) checks
	// the telemetry plane end to end across real OS processes — the merged
	// Chrome trace with one lane per worker, the federated /metrics scrape
	// and the /cluster/workers roster.
	obsAddr := freeAddr(t)
	w2Addr := freeAddr(t)
	w3Addr := freeAddr(t)
	spawn(t, filepath.Join(bin, "cypherworker"), "-graph", dataDir, "-addr", w2Addr, "-node", "w2")
	spawn(t, filepath.Join(bin, "cypherworker"), "-graph", dataDir, "-addr", w3Addr, "-node", "w3")
	waitTCP(t, w2Addr)
	waitTCP(t, w3Addr)
	spawn(t, filepath.Join(bin, "cypherd"), "-graph", dataDir, "-addr", obsAddr,
		"-cluster", w2Addr+","+w3Addr)
	waitHealthy(t, obsAddr)

	traced := postQueryTraced(t, obsAddr, queries[0].query)
	if traced.Cluster == nil || traced.Cluster.TraceID == "" {
		t.Fatal("traced query returned no cluster trace ID")
	}
	if traced.Cluster.PartialTelemetry {
		t.Fatalf("partial telemetry with both workers shipping: %+v", traced.Cluster)
	}
	if len(traced.ChromeTrace.TraceEvents) == 0 {
		t.Fatal("traced query returned no merged Chrome trace")
	}
	if traced.ChromeTrace.Metadata["traceId"] != traced.Cluster.TraceID {
		t.Fatalf("trace metadata %q != report trace ID %q",
			traced.ChromeTrace.Metadata["traceId"], traced.Cluster.TraceID)
	}
	lanes := map[string]bool{}
	for _, ev := range traced.ChromeTrace.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			lanes[fmt.Sprint(ev.Args["name"])] = true
		}
	}
	if len(lanes) != 3 || !lanes["coordinator"] || !lanes["worker w2"] || !lanes["worker w3"] {
		t.Fatalf("merged trace lanes %v, want coordinator + worker w2 + worker w3", lanes)
	}
	for _, st := range traced.Cluster.Stages {
		if len(st.WorkerNs) != 2 {
			t.Fatalf("stage %d: per-worker attribution %v, want 2 entries", st.Stage, st.WorkerNs)
		}
		var max int64
		for _, ns := range st.WorkerNs {
			if ns > max {
				max = ns
			}
		}
		if max != st.Actual {
			t.Fatalf("stage %d: max worker time %d != merged actual %d", st.Stage, max, st.Actual)
		}
	}
	t.Logf("trace %s: %d events, lanes %v", traced.Cluster.TraceID, len(traced.ChromeTrace.TraceEvents), lanes)

	// Federated scrape: the coordinator's exposition carries per-worker
	// labeled series for the whole roster, structurally valid throughout.
	exp := getBody(t, obsAddr, "/metrics")
	for _, want := range []string{
		"gradoop_cluster_jobs_total ",
		"gradoop_cluster_live_workers 2",
		`gradoop_cluster_worker_jobs_total{worker="w2"}`,
		`gradoop_cluster_worker_jobs_total{worker="w3"}`,
		`gradoop_cluster_worker_telemetry_bundles_total{worker="w2"}`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("federated /metrics missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(exp, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") || !strings.Contains(line, " ") {
			t.Errorf("bad exposition line %q", line)
		}
	}

	var roster struct {
		Count   int `json:"count"`
		Workers []struct {
			Node      string `json:"node"`
			Alive     bool   `json:"alive"`
			Jobs      int64  `json:"jobs"`
			Telemetry bool   `json:"telemetry"`
		} `json:"workers"`
	}
	if err := json.Unmarshal([]byte(getBody(t, obsAddr, "/cluster/workers")), &roster); err != nil {
		t.Fatalf("/cluster/workers does not parse: %v", err)
	}
	if roster.Count != 2 {
		t.Fatalf("/cluster/workers count=%d want 2", roster.Count)
	}
	for _, w := range roster.Workers {
		if !w.Alive || w.Jobs < 1 || !w.Telemetry {
			t.Fatalf("roster entry %+v, want alive with jobs and telemetry", w)
		}
	}
	t.Logf("observability smoke: federated scrape %d bytes, roster %d workers", len(exp), roster.Count)
}

// e2eResponse is the subset of the server's query response the smoke
// asserts on.
type e2eResponse struct {
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
	Count   int64    `json:"count"`
	Cluster *struct {
		Workers   int  `json:"workers"`
		Attempts  int  `json:"attempts"`
		Recovered bool `json:"recovered"`
	} `json:"cluster"`
}

// e2eTracedResponse adds the observability surface: the merged Chrome
// trace and the report's telemetry fields.
type e2eTracedResponse struct {
	Cluster *struct {
		TraceID          string `json:"traceId"`
		PartialTelemetry bool   `json:"partialTelemetry"`
		Stages           []struct {
			Stage    int     `json:"stage"`
			Actual   int64   `json:"actualNs"`
			WorkerNs []int64 `json:"workerNs"`
			Skew     float64 `json:"skew"`
		} `json:"stages"`
	} `json:"cluster"`
	ChromeTrace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]string `json:"metadata"`
	} `json:"chromeTrace"`
}

func postQueryTraced(t *testing.T, addr, query string) *e2eTracedResponse {
	t.Helper()
	body, err := json.Marshal(map[string]any{"query": query, "trace": true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	var out e2eTracedResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode traced /query response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: status %d", resp.StatusCode)
	}
	return &out
}

// getBody fetches a path and returns the body as a string.
func getBody(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	return sb.String()
}

func postQuery(t *testing.T, addr, query string) *e2eResponse {
	t.Helper()
	body, err := json.Marshal(map[string]any{"query": query})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	var out e2eResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /query response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: status %d", resp.StatusCode)
	}
	return &out
}

// spawn starts a binary, streams its stderr into the test log and kills it
// at cleanup.
func spawn(t *testing.T, path string, args ...string) {
	t.Helper()
	cmd := exec.Command(path, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", filepath.Base(path), err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() && stderr.Len() > 0 {
			t.Logf("%s %s stderr:\n%s", filepath.Base(path), strings.Join(args, " "), stderr.String())
		}
	})
}

// freeAddr reserves a loopback port by listening and closing.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never started listening", addr)
}

func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", addr)
}
