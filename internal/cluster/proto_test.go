package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFrameRoundTrip pins the framing: length prefix, type byte, payload.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := writeFrame(&buf, frameData, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameData || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: type %d payload %q", typ, got)
	}
}

// TestFrameTorn checks that a frame cut off mid-payload surfaces as
// io.ErrUnexpectedEOF instead of a misparse of the next read.
func TestFrameTorn(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, frameData, []byte("0123456789"))
	torn := buf.Bytes()[:buf.Len()-4]
	_, _, err := readFrame(bufio.NewReader(bytes.NewReader(torn)))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn frame: got %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestFrameTruncatedHeader checks a read that dies inside the length prefix.
func TestFrameTruncatedHeader(t *testing.T) {
	_, _, err := readFrame(bufio.NewReader(bytes.NewReader([]byte{0, 0})))
	if err == nil {
		t.Fatal("truncated header accepted")
	}
}

// TestFrameOversizedLength checks that a hostile length prefix is rejected
// before any allocation.
func TestFrameOversizedLength(t *testing.T) {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], maxFrame+1)
	_, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:])))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized length: got %v", err)
	}
}

// TestFrameZeroLength checks that a zero-length prefix (no type byte) is
// rejected.
func TestFrameZeroLength(t *testing.T) {
	_, _, err := readFrame(bufio.NewReader(bytes.NewReader([]byte{0, 0, 0, 0})))
	if err == nil || !strings.Contains(err.Error(), "zero-length") {
		t.Fatalf("zero-length frame: got %v", err)
	}
}

// TestDataFrameCRC checks that payload corruption is caught by the per-frame
// checksum.
func TestDataFrameCRC(t *testing.T) {
	enc := encodeDataFrame(&dataFrame{
		JobID: 7, Attempt: 1, Seq: 3, Kind: kindExchange, From: 2, Stage: 9,
		Body: []byte("shuffle bucket bytes"),
	})
	f, err := decodeDataFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if f.JobID != 7 || f.Attempt != 1 || f.Seq != 3 || f.From != 2 || f.Stage != 9 {
		t.Fatalf("header mismatch: %+v", f)
	}
	enc[len(enc)-1] ^= 0x40
	if _, err := decodeDataFrame(enc); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupted frame: got %v, want CRC mismatch", err)
	}
	if _, err := decodeDataFrame(enc[:dataHeaderLen-2]); err == nil {
		t.Fatal("truncated data header accepted")
	}
}

// TestHandshakeVersionMismatch dials a worker with a wrong protocol version
// and requires a structured frameReject, then a close.
func TestHandshakeVersionMismatch(t *testing.T) {
	w := NewWorker("w0", nil, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(ln)
	defer w.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeJSONFrame(conn, frameHello, hello{
		Magic: protoMagic, Version: protoVersion + 1, Role: roleControl,
	}); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameReject {
		t.Fatalf("frame type %d, want frameReject", typ)
	}
	var rej reject
	if err := json.Unmarshal(payload, &rej); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rej.Reason, "protocol mismatch") {
		t.Fatalf("reject reason %q", rej.Reason)
	}
	if _, _, err := readFrame(br); err == nil {
		t.Fatal("connection stayed open after reject")
	}
}

// TestHandshakeBadMagic mirrors the version check for the magic number.
func TestHandshakeBadMagic(t *testing.T) {
	w := NewWorker("w0", nil, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(ln)
	defer w.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	writeJSONFrame(conn, frameHello, hello{Magic: 0xDEADBEEF, Version: protoVersion, Role: roleControl})
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, _, err := readFrame(bufio.NewReader(conn))
	if err != nil || typ != frameReject {
		t.Fatalf("got type %d err %v, want frameReject", typ, err)
	}
}

// TestMidStreamDropFailsCollective severs a peer connection while a
// collective is waiting on it and requires a structured ErrPeerLost, not a
// hang.
func TestMidStreamDropFailsCollective(t *testing.T) {
	rt := newJobRuntime(NewWorker("w0", nil, nil), jobKey{job: 1})
	client, server := net.Pipe()
	defer client.Close()
	link := rt.addPeer(1, server)
	if link == nil {
		t.Fatal("addPeer refused")
	}
	go rt.routePeer(1, link, bufio.NewReader(server))

	errCh := make(chan error, 1)
	go func() {
		_, err := rt.waitMail(mailKey{seq: 1, kind: kindExchange, from: 1})
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	client.Close() // the drop

	select {
	case err := <-errCh:
		if !errors.Is(err, ErrPeerLost) {
			t.Fatalf("got %v, want ErrPeerLost", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("collective hung after mid-stream drop")
	}
}

// TestMailBeforeDropStillConsumable pins the orderly-departure contract:
// frames delivered before the sender's close stay readable from the inbox.
func TestMailBeforeDropStillConsumable(t *testing.T) {
	rt := newJobRuntime(NewWorker("w0", nil, nil), jobKey{job: 1})
	client, server := net.Pipe()
	link := rt.addPeer(1, server)
	routed := make(chan struct{})
	go func() {
		rt.routePeer(1, link, bufio.NewReader(server))
		close(routed)
	}()

	body := encodeDataFrame(&dataFrame{JobID: 1, Seq: 1, Kind: kindExchange, From: 1, Body: []byte("owed")})
	go func() {
		writeFrame(client, frameData, body)
		client.Close()
	}()
	<-routed // reader saw the frame, then the close

	got, err := rt.waitMail(mailKey{seq: 1, kind: kindExchange, from: 1})
	if err != nil {
		t.Fatalf("mail delivered before the drop must stay consumable: %v", err)
	}
	if string(got) != "owed" {
		t.Fatalf("mail body %q", got)
	}
	// The next, never-sent collective must fail instead of hanging.
	if _, err := rt.waitMail(mailKey{seq: 2, kind: kindExchange, from: 1}); !errors.Is(err, ErrPeerLost) {
		t.Fatalf("owed collective after drop: got %v, want ErrPeerLost", err)
	}
}

// TestSenderCoalescing checks the write path end to end: many frames
// enqueued concurrently all arrive intact, in order per sender, and close()
// drains the queue before the FIN.
func TestSenderCoalescing(t *testing.T) {
	client, server := net.Pipe()
	s := newSender(client)

	const frames = 200
	var wg sync.WaitGroup
	wg.Add(1)
	received := make([][]byte, 0, frames)
	var readErr error
	go func() {
		defer wg.Done()
		br := bufio.NewReader(server)
		for {
			_, payload, err := readFrame(br)
			if err != nil {
				if err != io.EOF {
					readErr = err
				}
				return
			}
			received = append(received, payload)
		}
	}()
	for i := 0; i < frames; i++ {
		if err := s.send(frameData, binary.BigEndian.AppendUint32(nil, uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.close()
	wg.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(received) != frames {
		t.Fatalf("received %d frames, want %d (close must drain the queue)", len(received), frames)
	}
	for i, p := range received {
		if int(binary.BigEndian.Uint32(p)) != i {
			t.Fatalf("frame %d out of order: %v", i, p)
		}
	}
	if err := s.send(frameData, nil); err == nil {
		t.Fatal("send after close succeeded")
	}
}
