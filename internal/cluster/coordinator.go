package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"gradoop/internal/core"
	"gradoop/internal/dataflow"
	"gradoop/internal/embedding"
	"gradoop/internal/epgm"
	"gradoop/internal/obs"
	"gradoop/internal/planner"
	"gradoop/internal/session"
	"gradoop/internal/trace"
	"gradoop/internal/wire"
)

// Options configures a Coordinator.
type Options struct {
	// Workers is the logical partition count P. It must equal the session's
	// worker count: the coordinator's plan and every worker's plan are the
	// same deterministic function of (query, stats, P).
	Workers int
	// Partitioner assigns partitions to live workers (default rendezvous).
	Partitioner Partitioner
	// HeartbeatInterval is how often workers are pinged (default 500ms);
	// HeartbeatTimeout is how long a silent worker stays in the roster
	// (default 2s). The heartbeat catches wedged-but-open connections;
	// outright connection drops are detected immediately.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// MaxAttempts bounds lost-worker re-executions per query (default:
	// cluster size, so every query survives all-but-one worker dying).
	MaxAttempts int
	// Metrics registers the gradoop_cluster_* instruments (nil disables).
	Metrics *obs.Registry
	// Logger records roster changes and recoveries (nil disables).
	Logger *slog.Logger
}

// Coordinator fronts a set of worker processes and implements
// session.RemoteExecutor: it plans once on the session's pinned statistics,
// ships the job to every live worker, drives recovery when workers die and
// assembles the final result. The session in front of it keeps providing
// the plan cache, result cache, admission control and query store — only
// the dataflow execution moves out of process.
type Coordinator struct {
	opts Options
	part Partitioner
	inst *clusterInstruments

	mu      sync.Mutex
	members []*member
	pending map[jobKey]*attemptState
	jobSeq  uint64
	closed  bool

	stopHB chan struct{}
	// wg joins every goroutine the coordinator spawned — the per-member
	// read loops and the heartbeat — so Close returns only after all of
	// them have exited. Their exits are driven, not awaited hopefully:
	// Close closes stopHB (heartbeat) and aborts every member's sender,
	// which closes the underlying connections (read loops).
	wg sync.WaitGroup
}

// member is one worker process as the coordinator sees it.
type member struct {
	idx  int
	node string
	addr string
	conn net.Conn
	send *sender

	mu       sync.Mutex
	alive    bool
	lastPong time.Time
	jobsDone int64
	// snap is the worker's most recent metrics-registry snapshot, carried
	// by its latest telemetry bundle; the federated /metrics view serves it.
	snap   *obs.Snapshot
	snapAt time.Time
}

// storeTelemetry retains the worker's latest registry snapshot.
func (m *member) storeTelemetry(b *telemetryBundle) {
	m.mu.Lock()
	m.snap = &b.Metrics
	m.snapAt = time.Now()
	m.mu.Unlock()
}

var _ session.RemoteExecutor = (*Coordinator)(nil)

// NewCoordinator dials the worker addresses and verifies the protocol
// handshake with each. All workers must be reachable at startup; losses
// after that are handled by recovery.
func NewCoordinator(addrs []string, opts Options) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, errors.New("cluster: no worker addresses")
	}
	if opts.Workers <= 0 {
		return nil, errors.New("cluster: Options.Workers must be positive")
	}
	if opts.Partitioner == nil {
		opts.Partitioner = RendezvousPartitioner{}
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 500 * time.Millisecond
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 2 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = len(addrs)
	}
	c := &Coordinator{
		opts:    opts,
		part:    opts.Partitioner,
		inst:    newClusterInstruments(opts.Metrics),
		pending: map[jobKey]*attemptState{},
		stopHB:  make(chan struct{}),
	}
	// The heartbeat starts before the dial loop so the error path below can
	// unconditionally Close (which waits for it) without a started-yet check.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.heartbeat()
	}()
	now := time.Now()
	for i, addr := range addrs {
		conn, br, node, err := dialControl(addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: worker %d (%s): %w", i, addr, err)
		}
		m := &member{idx: i, node: node, addr: addr, conn: conn, send: newSender(conn), alive: true, lastPong: now}
		c.members = append(c.members, m)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.readMember(m, br)
		}()
	}
	if c.inst != nil {
		c.inst.bindRoster(c)
	}
	return c, nil
}

// dialControl opens and hand-shakes one control connection.
func dialControl(addr string) (net.Conn, *bufio.Reader, string, error) {
	conn, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, nil, "", err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	err = writeJSONFrame(conn, frameHello, hello{Magic: protoMagic, Version: protoVersion, Role: roleControl})
	var typ byte
	var payload []byte
	if err == nil {
		typ, payload, err = readFrame(br)
	}
	if err != nil {
		conn.Close()
		return nil, nil, "", err
	}
	switch typ {
	case frameWelcome:
		var wl welcome
		if err := json.Unmarshal(payload, &wl); err != nil || wl.Magic != protoMagic || wl.Version != protoVersion {
			conn.Close()
			return nil, nil, "", fmt.Errorf("bad welcome: %v", err)
		}
		conn.SetDeadline(time.Time{})
		return conn, br, wl.Node, nil
	case frameReject:
		var rej reject
		json.Unmarshal(payload, &rej)
		conn.Close()
		return nil, nil, "", fmt.Errorf("rejected: %s", rej.Reason)
	default:
		conn.Close()
		return nil, nil, "", fmt.Errorf("unexpected handshake frame %d", typ)
	}
}

// Close tears the coordinator down and waits for its goroutines (the
// heartbeat and every member read loop) to exit. Idempotent; later calls
// return once the first teardown has finished.
func (c *Coordinator) Close() {
	c.mu.Lock()
	alreadyClosed := c.closed
	c.closed = true
	members := append([]*member(nil), c.members...)
	c.mu.Unlock()
	if !alreadyClosed {
		close(c.stopHB)
		for _, m := range members {
			m.send.abort()
		}
	}
	c.wg.Wait()
}

// LiveWorkers reports the currently live roster size.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, m := range c.members {
		if m.isAlive() {
			n++
		}
	}
	return n
}

var _ session.ClusterIntrospector = (*Coordinator)(nil)

// ClusterWorkers reports the roster for the /cluster/workers endpoint:
// node, address, liveness, heartbeat age and per-worker job counts.
func (c *Coordinator) ClusterWorkers() []session.WorkerInfo {
	c.mu.Lock()
	members := append([]*member(nil), c.members...)
	c.mu.Unlock()
	infos := make([]session.WorkerInfo, 0, len(members))
	for _, m := range members {
		m.mu.Lock()
		infos = append(infos, session.WorkerInfo{
			Node:            m.node,
			Addr:            m.addr,
			Alive:           m.alive,
			LastHeartbeatMs: time.Since(m.lastPong).Milliseconds(),
			Jobs:            m.jobsDone,
			Telemetry:       m.snap != nil,
		})
		m.mu.Unlock()
	}
	return infos
}

// WorkerMetrics returns each worker's most recent registry snapshot (as
// carried by its latest telemetry bundle) for the federated /metrics view.
// Workers that have never shipped a bundle are omitted.
func (c *Coordinator) WorkerMetrics() []session.WorkerMetrics {
	c.mu.Lock()
	members := append([]*member(nil), c.members...)
	c.mu.Unlock()
	var out []session.WorkerMetrics
	for _, m := range members {
		m.mu.Lock()
		if m.snap != nil {
			out = append(out, session.WorkerMetrics{Node: m.node, Snap: m.snap})
		}
		m.mu.Unlock()
	}
	return out
}

func (m *member) isAlive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alive
}

func (m *member) markPong() {
	m.mu.Lock()
	m.lastPong = time.Now()
	m.mu.Unlock()
}

// readMember is the control connection's read loop: results and terminal
// reports route to the attempt they belong to, pongs feed the heartbeat.
// A read error is the definitive death signal for the member.
func (c *Coordinator) readMember(m *member, br *bufio.Reader) {
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			c.memberDown(m, err)
			return
		}
		switch typ {
		case framePong:
			m.markPong()
		case frameResult:
			f, err := decodeResultFrame(payload)
			if err != nil {
				c.memberDown(m, err)
				return
			}
			if st := c.attempt(jobKey{job: f.JobID, attempt: f.Attempt}); st != nil {
				st.deliverResult(f.Partition, f.Body)
			}
		case frameJobDone:
			var done jobDone
			if err := json.Unmarshal(payload, &done); err != nil {
				c.memberDown(m, err)
				return
			}
			m.mu.Lock()
			m.jobsDone++
			m.mu.Unlock()
			if st := c.attempt(jobKey{job: done.JobID, attempt: done.Attempt}); st != nil {
				st.deliverDone(m.idx, &done)
			}
		case frameTelemetry:
			// Telemetry degrades, never fails: a corrupt bundle inside an
			// intact frame is counted and skipped (the attempt settles with a
			// partial-telemetry marker), and a bundle for an attempt no
			// longer pending — a superseded retry's straggler — is dropped.
			f, err := decodeTelemetryFrame(payload)
			var bundle *telemetryBundle
			if err == nil {
				bundle, err = decodeTelemetryBundle(f.Body)
			}
			if err != nil {
				c.inst.teleDropped.Inc()
				if c.opts.Logger != nil {
					c.opts.Logger.Warn("dropping corrupt telemetry bundle", "node", m.node, "err", err)
				}
				continue
			}
			c.inst.teleFrames.Inc()
			c.inst.teleBytes.Add(int64(len(payload)))
			m.storeTelemetry(bundle)
			if st := c.attempt(jobKey{job: f.JobID, attempt: f.Attempt}); st != nil {
				st.deliverTelemetry(m.idx, bundle)
			}
		}
	}
}

// memberDown marks a member dead, closes its connection and wakes every
// attempt it participates in.
func (c *Coordinator) memberDown(m *member, cause error) {
	m.mu.Lock()
	wasAlive := m.alive
	m.alive = false
	m.mu.Unlock()
	if !wasAlive {
		return
	}
	m.send.abort()
	if c.inst != nil {
		c.inst.losses.Inc()
	}
	if c.opts.Logger != nil {
		c.opts.Logger.Warn("cluster worker lost", "node", m.node, "addr", m.addr, "err", cause)
	}
	c.mu.Lock()
	attempts := make([]*attemptState, 0, len(c.pending))
	for _, st := range c.pending {
		attempts = append(attempts, st)
	}
	c.mu.Unlock()
	for _, st := range attempts {
		st.memberDown(m.idx)
	}
}

func (c *Coordinator) attempt(key jobKey) *attemptState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pending[key]
}

// heartbeat pings live members and expires the silent ones.
func (c *Coordinator) heartbeat() {
	ticker := time.NewTicker(c.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopHB:
			return
		case <-ticker.C:
		}
		c.mu.Lock()
		members := append([]*member(nil), c.members...)
		c.mu.Unlock()
		for _, m := range members {
			if !m.isAlive() {
				continue
			}
			m.mu.Lock()
			silent := time.Since(m.lastPong)
			m.mu.Unlock()
			if silent > c.opts.HeartbeatTimeout {
				c.memberDown(m, fmt.Errorf("heartbeat timeout (%v silent)", silent))
				continue
			}
			m.send.send(framePing, nil)
		}
	}
}

// attemptState tracks one in-flight attempt on the coordinator side.
type attemptState struct {
	key    jobKey
	roster []int // participating member indices, in roster order

	mu        sync.Mutex
	cond      *sync.Cond
	results   map[int][]byte           // partition -> encoded rows
	dones     map[int]*jobDone         // member idx -> terminal report
	telemetry map[int]*telemetryBundle // member idx -> shipped observability
	down      map[int]bool             // member idx -> died during the attempt
	err       error                    // external failure (context cancellation)
}

func newAttemptState(key jobKey, roster []int) *attemptState {
	st := &attemptState{
		key:       key,
		roster:    roster,
		results:   map[int][]byte{},
		dones:     map[int]*jobDone{},
		telemetry: map[int]*telemetryBundle{},
		down:      map[int]bool{},
	}
	st.cond = sync.NewCond(&st.mu)
	return st
}

func (st *attemptState) deliverResult(partition int, body []byte) {
	st.mu.Lock()
	st.results[partition] = body
	st.mu.Unlock()
}

// deliverTelemetry records a worker's bundle. Telemetry frames are sent
// strictly before the same attempt's done report on the same ordered
// connection, so by the time await settles every bundle that will arrive
// has arrived — no separate wait needed.
func (st *attemptState) deliverTelemetry(memberIdx int, b *telemetryBundle) {
	st.mu.Lock()
	st.telemetry[memberIdx] = b
	st.mu.Unlock()
}

func (st *attemptState) deliverDone(memberIdx int, done *jobDone) {
	st.mu.Lock()
	st.dones[memberIdx] = done
	st.cond.Broadcast()
	st.mu.Unlock()
}

func (st *attemptState) memberDown(memberIdx int) {
	st.mu.Lock()
	for _, idx := range st.roster {
		if idx == memberIdx {
			st.down[memberIdx] = true
			st.cond.Broadcast()
			break
		}
	}
	st.mu.Unlock()
}

func (st *attemptState) fail(err error) {
	st.mu.Lock()
	if st.err == nil && err != nil {
		st.err = err
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// await blocks until the attempt settles: every roster member has reported
// a terminal state or died — or a loss has been observed (a dead member or
// a peer-loss report), in which case the attempt is already doomed and the
// caller aborts the stragglers instead of waiting out their rendezvous
// timeouts.
func (st *attemptState) await() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.err != nil {
			return st.err
		}
		if len(st.down) > 0 {
			return nil
		}
		settled := true
		for _, idx := range st.roster {
			done := st.dones[idx]
			if done != nil && done.PeerLost {
				return nil
			}
			if done == nil {
				settled = false
			}
		}
		if settled {
			return nil
		}
		st.cond.Wait()
	}
}

// outcome classifies a settled attempt.
type outcome struct {
	recoverable bool  // worker loss: retry on the survivors
	accused     []int // member indices reported dead by their peers
	queryErr    error // genuine failure: propagate
}

func (st *attemptState) classify() outcome {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out outcome
	accused := map[int]bool{}
	for idx := range st.down {
		out.recoverable = true
		accused[idx] = true
	}
	for _, idx := range st.roster {
		done := st.dones[idx]
		if done == nil {
			continue
		}
		if done.PeerLost {
			out.recoverable = true
			// LostPeers are roster-relative; translate to member indices.
			for _, r := range done.LostPeers {
				if r >= 0 && r < len(st.roster) {
					accused[st.roster[r]] = true
				}
			}
			continue
		}
		if done.Error != "" && out.queryErr == nil {
			out.queryErr = errors.New(done.Error)
		}
	}
	for idx := range accused {
		out.accused = append(out.accused, idx)
	}
	sort.Ints(out.accused)
	return out
}

// ExecuteRemote implements session.RemoteExecutor: ship the prepared query
// to the live roster, recover from worker losses by re-running on a
// remapped partition assignment, and assemble the coordinator-side Result.
func (c *Coordinator) ExecuteRemote(g *epgm.LogicalGraph, prep *core.Prepared, cfg core.Config) (*core.Result, *session.ClusterReport, error) {
	start := time.Now()
	if c.inst != nil {
		c.inst.jobs.Inc()
	}
	c.mu.Lock()
	c.jobSeq++
	jobID := c.jobSeq
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, nil, errors.New("cluster: coordinator closed")
	}

	// The job's trace identity: the caller's context trace ID when present
	// (so the cluster execution joins the request's existing trace), else a
	// coordinator-minted one. It rides the job spec to every worker, tags
	// their spans, logs and bundles, and binds the merged trace document.
	traceID := obs.TraceIDFrom(cfg.Context)
	if traceID == "" {
		traceID = fmt.Sprintf("job-%08x", jobID)
	}

	spec := jobSpec{
		JobID:        jobID,
		TraceID:      traceID,
		Query:        prep.Query,
		Params:       wire.AppendParams(nil, cfg.Params),
		Stats:        prep.Stats,
		Workers:      c.opts.Workers,
		Vertex:       int(prep.Morph.Vertex),
		Edge:         int(prep.Morph.Edge),
		Hint:         int(prep.Hint),
		DisableReuse: cfg.DisableSubqueryReuse,
		Fingerprint:  prep.Fingerprint(),
		TimeoutNs:    int64(cfg.Timeout),
	}

	ctx := cfg.Context
	if cfg.Timeout > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		// The workers enforce the query timeout themselves; this outer
		// deadline only catches a cluster that stopped answering entirely.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout+handshakeTimeout)
		defer cancel()
	}

	// coordSpans is the coordinator's own lane of the merged trace: one
	// span per attempt plus the assembly, offsets rebased to the job start
	// exactly like the workers rebase theirs.
	var coordSpans []trace.Span
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		roster := c.liveRoster()
		if len(roster) == 0 {
			return nil, nil, fmt.Errorf("cluster: all workers lost (job %d attempt %d)", jobID, attempt)
		}
		attemptStart := time.Since(start)
		st, err := c.launchAttempt(&spec, attempt, roster)
		if err != nil {
			return nil, nil, err
		}
		var stopWatch func() bool
		if ctx != nil {
			stopWatch = context.AfterFunc(ctx, func() { st.fail(ctx.Err()) })
		}
		err = st.await()
		if stopWatch != nil {
			stopWatch()
		}
		c.unregister(st)
		coordSpans = append(coordSpans, trace.Span{
			Stage: int64(attempt),
			Op:    fmt.Sprintf("attempt %d (%d workers)", attempt, len(roster)),
			Kind:  "attempt", Start: attemptStart, End: time.Since(start),
		})
		if err != nil {
			c.abortAttempt(st)
			return nil, nil, err
		}
		out := st.classify()
		if out.recoverable {
			// Mark every accused member dead by force-closing it: a worker
			// whose sockets break asymmetrically is indistinguishable from a
			// dead one, and the retry must not include it.
			for _, idx := range out.accused {
				c.memberDown(c.members[idx], errors.New("reported lost by peers"))
			}
			c.abortAttempt(st)
			if c.inst != nil {
				c.inst.recoveries.Inc()
			}
			if c.opts.Logger != nil {
				c.opts.Logger.Warn("cluster attempt lost workers; recovering",
					"job", jobID, "attempt", attempt, "accused", out.accused)
			}
			lastErr = fmt.Errorf("cluster: attempt %d lost workers %v", attempt, out.accused)
			continue
		}
		if out.queryErr != nil {
			return nil, nil, out.queryErr
		}
		assembleStart := time.Since(start)
		res, rep, err := c.assemble(g, prep, cfg, st)
		if err != nil {
			return nil, nil, err
		}
		rep.Attempts = attempt + 1
		rep.Recovered = attempt > 0
		rep.TraceID = traceID
		if cfg.Trace != nil {
			// The caller asked for a trace; merge the winning attempt's
			// bundles into one document — coordinator lane plus one process
			// lane per worker that shipped spans.
			coordSpans = append(coordSpans, trace.Span{
				Stage: int64(attempt + 1), Op: "assemble", Kind: "assemble",
				Start: assembleStart, End: time.Since(start),
			})
			var lanes []trace.WorkerTrace
			st.mu.Lock()
			for _, idx := range st.roster {
				if b := st.telemetry[idx]; b != nil {
					lanes = append(lanes, trace.WorkerTrace{Node: b.Node, Spans: b.Spans})
				}
			}
			st.mu.Unlock()
			merged := trace.ClusterChromeTrace(traceID, coordSpans, lanes)
			rep.Trace = &merged
		}
		if c.inst != nil {
			c.inst.observe(rep, time.Since(start))
		}
		return res, rep, nil
	}
	return nil, nil, fmt.Errorf("cluster: job %d exhausted %d attempts: %w", jobID, c.opts.MaxAttempts, lastErr)
}

// liveRoster snapshots the live member indices.
func (c *Coordinator) liveRoster() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var roster []int
	for _, m := range c.members {
		if m.isAlive() {
			roster = append(roster, m.idx)
		}
	}
	return roster
}

// launchAttempt registers the attempt and ships the per-worker specs.
func (c *Coordinator) launchAttempt(spec *jobSpec, attempt int, roster []int) (*attemptState, error) {
	nodes := make([]string, len(roster))
	procs := make([]procSpec, len(roster))
	for i, idx := range roster {
		nodes[i] = c.members[idx].node
		procs[i] = procSpec{Node: c.members[idx].node, Addr: c.members[idx].addr}
	}
	owner := c.part.Assign(spec.Workers, nodes)

	st := newAttemptState(jobKey{job: spec.JobID, attempt: attempt}, roster)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("cluster: coordinator closed")
	}
	c.pending[st.key] = st
	c.mu.Unlock()
	for i, idx := range roster {
		ws := *spec
		ws.Attempt = attempt
		ws.Owner = owner
		ws.Procs = procs
		ws.Self = i
		if err := c.members[idx].send.sendJSON(frameJob, &ws); err != nil {
			// The send failed because the member just died; its absence will
			// settle the attempt as recoverable through memberDown.
			c.memberDown(c.members[idx], err)
		}
	}
	return st, nil
}

func (c *Coordinator) unregister(st *attemptState) {
	c.mu.Lock()
	delete(c.pending, st.key)
	c.mu.Unlock()
}

// abortAttempt tells the live roster members to stop an attempt.
func (c *Coordinator) abortAttempt(st *attemptState) {
	for _, idx := range st.roster {
		m := c.members[idx]
		if m.isAlive() {
			m.send.sendJSON(frameAbort, abortMsg{JobID: st.key.job, Attempt: st.key.attempt})
		}
	}
}

// assemble decodes the shipped partitions, rebuilds the coordinator-side
// Result exactly as core.Prepared.Execute would, and merges the workers'
// stage records and metrics.
func (c *Coordinator) assemble(g *epgm.LogicalGraph, prep *core.Prepared, cfg core.Config, st *attemptState) (*core.Result, *session.ClusterReport, error) {
	st.mu.Lock()
	results := st.results
	dones := make([]*jobDone, 0, len(st.roster))
	bundles := make([]*telemetryBundle, 0, len(st.roster))
	for _, idx := range st.roster {
		dones = append(dones, st.dones[idx])
		bundles = append(bundles, st.telemetry[idx])
	}
	st.mu.Unlock()

	var flat []embedding.Embedding
	for p := 0; p < c.opts.Workers; p++ {
		body, ok := results[p]
		if !ok {
			return nil, nil, fmt.Errorf("cluster: partition %d missing from results", p)
		}
		rows, err := decodeEmbeddings(body)
		if err != nil {
			return nil, nil, err
		}
		flat = append(flat, rows...)
	}

	// Mirror core.Prepared.Execute's binding so QueryGraph/Plan/Meta are
	// exactly what an in-process execution would return.
	access := cfg.Access
	if access == nil {
		access = planner.PlainAccess{Graph: g}
	}
	binding, err := prep.Template.Bind(cfg.Params)
	if err != nil {
		return nil, nil, err
	}
	bound, err := planner.Rebind(prep.Plan, access, binding)
	if err != nil {
		return nil, nil, err
	}
	env := access.Env()
	res := &core.Result{
		Graph:      g,
		QueryGraph: binding.Graph,
		Plan:       bound,
		Embeddings: dataflow.FromSlice(env, flat),
		Meta:       bound.Meta(),
		Env:        env,
	}
	rep := &session.ClusterReport{
		Workers: len(st.roster),
		Stages:  mergeStages(dones),
		Metrics: mergeMetrics(dones, c.opts.Workers),
	}
	attributeSkew(rep.Stages, dones)
	for i, idx := range st.roster {
		wr := session.WorkerReport{Node: c.members[idx].node}
		if b := bundles[i]; b != nil {
			wr.Spans = len(b.Spans)
			wr.WallNs = b.ElapsedNs
			wr.Telemetry = true
		} else {
			// No decoded bundle for a winning-roster member: telemetry is
			// off on that worker, its bundle was corrupt, or it died after
			// its part finished. The result is whole; the report says so.
			rep.PartialTelemetry = true
		}
		rep.WorkerReports = append(rep.WorkerReports, wr)
	}
	return res, rep, nil
}

// attributeSkew fills each merged stage's per-worker breakdown from the
// roster-ordered done reports: WorkerNs[i] is worker i's wall time for the
// stage (its max across workers is the merged Actual by construction),
// WorkerBytes[i] its framed shuffle bytes, and Skew the straggler factor —
// the slowest worker's time over the roster mean. Derived from the done
// reports, not the telemetry bundles, so the skew table survives
// -no-telemetry workers.
func attributeSkew(stages []session.ClusterStage, dones []*jobDone) {
	for si := range stages {
		m := &stages[si]
		m.WorkerNs = make([]int64, len(dones))
		m.WorkerBytes = make([]int64, len(dones))
		var sum int64
		for wi, done := range dones {
			if done == nil || si >= len(done.Stages) {
				continue
			}
			m.WorkerNs[wi] = done.Stages[si].Actual
			m.WorkerBytes[wi] = done.Stages[si].WireBytes
			sum += done.Stages[si].Actual
		}
		if len(dones) > 0 {
			m.MeanNs = sum / int64(len(dones))
		}
		if m.MeanNs > 0 {
			m.Skew = float64(m.Actual) / float64(m.MeanNs)
		}
	}
}

// mergeStages folds the workers' per-stage records into the cluster-wide
// predicted-vs-actual table: times take the slowest worker (the stage's
// wall time is its slowest participant), bytes sum (each worker reports
// what it charged and what it framed).
func mergeStages(dones []*jobDone) []session.ClusterStage {
	var out []session.ClusterStage
	for _, done := range dones {
		for i, s := range done.Stages {
			if i >= len(out) {
				out = append(out, session.ClusterStage{
					Stage: s.Stage, Op: s.Op, Kind: s.Kind, Shuffle: s.Shuffle,
				})
			}
			m := &out[i]
			if s.Predicted > m.Predicted {
				m.Predicted = s.Predicted
			}
			if s.Actual > m.Actual {
				m.Actual = s.Actual
			}
			m.ModelBytes += s.ModelBytes
			m.WireBytes += s.WireBytes
		}
	}
	return out
}

// mergeMetrics reassembles the single-process metrics from the per-worker
// snapshots: each process charged only its owned partitions, so counters
// and per-worker arrays sum element-wise back to the sole-owner totals;
// SimTime takes the slowest process (the whole-job critical path).
func mergeMetrics(dones []*jobDone, workers int) dataflow.MetricsSnapshot {
	var m dataflow.MetricsSnapshot
	m.Workers = workers
	m.CPUElements = make([]int64, workers)
	m.NetBytes = make([]int64, workers)
	m.SpillBytes = make([]int64, workers)
	m.MemBytes = make([]int64, workers)
	for _, done := range dones {
		s := done.Metrics
		for w := 0; w < workers && w < len(s.CPUElements); w++ {
			m.CPUElements[w] += s.CPUElements[w]
			m.NetBytes[w] += s.NetBytes[w]
			m.SpillBytes[w] += s.SpillBytes[w]
			m.MemBytes[w] += s.MemBytes[w]
		}
		m.TotalCPU += s.TotalCPU
		m.TotalNet += s.TotalNet
		m.TotalSpill += s.TotalSpill
		m.TotalMem += s.TotalMem
		m.MemKills += s.MemKills
		m.Retries += s.Retries
		m.RetriedStages += s.RetriedStages
		m.RecoveryTime += s.RecoveryTime
		if s.Stages > m.Stages {
			m.Stages = s.Stages
		}
		if s.Shuffles > m.Shuffles {
			m.Shuffles = s.Shuffles
		}
		if s.SimTime > m.SimTime {
			m.SimTime = s.SimTime
		}
	}
	for w := 0; w < workers; w++ {
		if m.CPUElements[w] > m.MaxWorkerCPU {
			m.MaxWorkerCPU = m.CPUElements[w]
		}
	}
	return m
}

// clusterInstruments is the coordinator's gradoop_cluster_* surface.
type clusterInstruments struct {
	jobs        *obs.Counter
	recoveries  *obs.Counter
	losses      *obs.Counter
	attempts    *obs.Histogram
	jobTime     *obs.Histogram
	wireBytes   *obs.Counter
	predicted   *obs.Counter
	actual      *obs.Counter
	teleFrames  *obs.Counter
	teleBytes   *obs.Counter
	teleDropped *obs.Counter
	telePartial *obs.Counter
}

// newClusterInstruments registers the coordinator's instruments. A nil
// registry yields instruments whose fields are all nil — every obs
// instrument method is nil-safe, so callers never guard.
func newClusterInstruments(r *obs.Registry) *clusterInstruments {
	if r == nil {
		return &clusterInstruments{}
	}
	return &clusterInstruments{
		jobs: r.NewCounter("gradoop_cluster_jobs_total",
			"Distributed queries started"),
		recoveries: r.NewCounter("gradoop_cluster_recoveries_total",
			"Attempts re-run after losing a worker"),
		losses: r.NewCounter("gradoop_cluster_worker_losses_total",
			"Workers marked dead (connection drop, heartbeat, accusation)"),
		attempts: r.NewHistogram("gradoop_cluster_attempts",
			"Attempts per successful distributed query", 1),
		jobTime: r.NewHistogram("gradoop_cluster_job_seconds",
			"End-to-end distributed query time", obs.ScaleNanos),
		wireBytes: r.NewCounter("gradoop_cluster_wire_bytes_total",
			"Shuffle bytes actually framed onto worker-to-worker sockets"),
		predicted: r.NewCounter("gradoop_cluster_stage_predicted_ns_total",
			"Cost-model predicted stage time, summed over stages"),
		actual: r.NewCounter("gradoop_cluster_stage_actual_ns_total",
			"Measured stage wall time, summed over stages"),
		teleFrames: r.NewCounter("gradoop_cluster_telemetry_frames_total",
			"Worker telemetry bundles received intact"),
		teleBytes: r.NewCounter("gradoop_cluster_telemetry_bytes_total",
			"Encoded telemetry frame bytes received from workers"),
		teleDropped: r.NewCounter("gradoop_cluster_telemetry_dropped_total",
			"Telemetry bundles dropped for CRC or decode failure"),
		telePartial: r.NewCounter("gradoop_cluster_partial_telemetry_total",
			"Successful distributed queries missing at least one worker's bundle"),
	}
}

// bindRoster registers the live-roster gauge against the coordinator.
func (in *clusterInstruments) bindRoster(c *Coordinator) {
	if c.opts.Metrics == nil {
		return
	}
	c.opts.Metrics.NewGaugeFunc("gradoop_cluster_live_workers",
		"Workers currently in the live roster",
		func() float64 { return float64(c.LiveWorkers()) })
}

// observe records a successful distributed query.
func (in *clusterInstruments) observe(rep *session.ClusterReport, elapsed time.Duration) {
	in.attempts.Observe(int64(rep.Attempts))
	in.jobTime.Observe(int64(elapsed))
	if rep.PartialTelemetry {
		in.telePartial.Inc()
	}
	for _, s := range rep.Stages {
		in.wireBytes.Add(s.WireBytes)
		in.predicted.Add(s.Predicted)
		in.actual.Add(s.Actual)
	}
}
