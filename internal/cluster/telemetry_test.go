package cluster

import (
	"encoding/binary"
	"reflect"
	"testing"
	"time"

	"gradoop/internal/obs"
	"gradoop/internal/trace"
)

// testBundle builds a telemetry bundle exercising every encoded field.
func testBundle() telemetryBundle {
	r := obs.NewRegistry()
	c := r.NewCounter("gradoop_worker_jobs_total", "jobs")
	c.Add(3)
	h := r.NewHistogram("gradoop_worker_job_seconds", "job time", obs.ScaleNanos)
	h.Observe(int64(5 * time.Millisecond))
	return telemetryBundle{
		Node:      "w0",
		TraceID:   "job-0000002a",
		ElapsedNs: int64(12 * time.Millisecond),
		Spans: []trace.Span{
			{
				Stage: 0, Op: "scan", Kind: "map",
				Start: time.Microsecond, End: 90 * time.Microsecond,
				Parts:    []trace.PartStats{{RowsIn: 10, RowsOut: 10, CPUElements: 10}},
				Attempts: []trace.Attempt{{Part: 0, Start: time.Microsecond, End: 90 * time.Microsecond}},
			},
			{Stage: 1, Op: "join", Kind: "join", Shuffle: true,
				Start: 90 * time.Microsecond, End: 400 * time.Microsecond},
		},
		Metrics: r.Snapshot(),
	}
}

// TestTelemetryFrameRoundTrip pins the frame and bundle codecs end to end.
func TestTelemetryFrameRoundTrip(t *testing.T) {
	bundle := testBundle()
	frame := telemetryFrame{JobID: 42, Attempt: 1, From: 2,
		Body: encodeTelemetryBundle(nil, &bundle)}
	dec, err := decodeTelemetryFrame(encodeTelemetryFrame(&frame))
	if err != nil {
		t.Fatalf("decodeTelemetryFrame: %v", err)
	}
	if dec.JobID != 42 || dec.Attempt != 1 || dec.From != 2 {
		t.Fatalf("frame header %+v, want job=42 attempt=1 from=2", dec)
	}
	got, err := decodeTelemetryBundle(dec.Body)
	if err != nil {
		t.Fatalf("decodeTelemetryBundle: %v", err)
	}
	if !reflect.DeepEqual(*got, bundle) {
		t.Fatalf("bundle round trip diverged:\n got %+v\nwant %+v", *got, bundle)
	}
}

// TestTelemetryFrameTruncated decodes every strict prefix of a valid frame:
// each must error cleanly — a torn telemetry frame degrades the report,
// never panics the read loop.
func TestTelemetryFrameTruncated(t *testing.T) {
	bundle := testBundle()
	enc := encodeTelemetryFrame(&telemetryFrame{JobID: 7, Body: encodeTelemetryBundle(nil, &bundle)})
	for cut := 0; cut < len(enc); cut++ {
		f, err := decodeTelemetryFrame(enc[:cut])
		if err != nil {
			continue // header too short, or CRC over a cut body failed
		}
		if _, err := decodeTelemetryBundle(f.Body); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(enc))
		}
	}
}

// TestTelemetryFrameCRC flips one bit of every body byte: the frame CRC
// must catch each corruption before the bundle decoder sees it.
func TestTelemetryFrameCRC(t *testing.T) {
	bundle := testBundle()
	enc := encodeTelemetryFrame(&telemetryFrame{JobID: 7, Body: encodeTelemetryBundle(nil, &bundle)})
	for i := telemetryHeaderLen; i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := decodeTelemetryFrame(bad); err == nil {
			t.Fatalf("bit flip at byte %d passed the CRC", i)
		}
	}
}

// TestTelemetryBundleTrailing rejects extra bytes after a valid bundle —
// trailing garbage means the encoder and decoder disagree on the layout.
func TestTelemetryBundleTrailing(t *testing.T) {
	bundle := testBundle()
	enc := append(encodeTelemetryBundle(nil, &bundle), 0xEE)
	if _, err := decodeTelemetryBundle(enc); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}

// TestTelemetryBundleHostileCounts forges a huge span count: the decoder
// must reject it before allocating.
func TestTelemetryBundleHostileCounts(t *testing.T) {
	bundle := testBundle()
	enc := encodeTelemetryBundle(nil, &bundle)
	// The span count sits right after the two strings and the elapsed u64.
	off := 4 + len(bundle.Node) + 4 + len(bundle.TraceID) + 8
	forged := append([]byte(nil), enc...)
	binary.BigEndian.PutUint32(forged[off:], 1<<31)
	if _, err := decodeTelemetryBundle(forged); err == nil {
		t.Fatal("hostile span count decoded without error")
	}
}

func spansN(n int) []trace.Span {
	out := make([]trace.Span, n)
	for i := range out {
		out[i] = trace.Span{Stage: int64(i), Kind: "map"}
	}
	return out
}

// TestTelemetryLedgerShip checks the leak fix's core move: shipping the
// winning attempt returns its spans and drops every superseded attempt's.
func TestTelemetryLedgerShip(t *testing.T) {
	l := newTelemetryLedger()
	l.retain(1, 0, spansN(5)) // attempt 0 failed
	l.retain(1, 1, spansN(3)) // attempt 1 won
	if got := l.retained(); got != 8 {
		t.Fatalf("retained %d, want 8", got)
	}
	won := l.ship(1, 1)
	if len(won) != 3 {
		t.Fatalf("shipped %d spans, want the winning attempt's 3", len(won))
	}
	if got := l.retained(); got != 0 {
		t.Fatalf("retained %d after ship, want 0", got)
	}
	if got := l.dropped.Load(); got != 5 {
		t.Fatalf("dropped %d, want the superseded attempt's 5", got)
	}
	if l.ship(1, 1) != nil {
		t.Fatal("second ship of the same job returned spans")
	}
}

// TestTelemetryLedgerPerJobCap overfills one job: oldest attempts evict
// first, and a single oversized attempt keeps only its newest spans.
func TestTelemetryLedgerPerJobCap(t *testing.T) {
	l := newTelemetryLedger()
	l.retain(1, 0, spansN(maxRetainedSpansPerJob-10))
	l.retain(1, 1, spansN(100)) // overflows: attempt 0 evicted whole
	if got := l.retained(); got != 100 {
		t.Fatalf("retained %d, want only the newest attempt's 100", got)
	}
	won := l.ship(1, 1)
	if len(won) != 100 {
		t.Fatalf("shipped %d, want 100", len(won))
	}

	// One attempt alone over the cap truncates, keeping the newest spans.
	l.retain(2, 0, spansN(maxRetainedSpansPerJob+7))
	if got := l.retained(); got != maxRetainedSpansPerJob {
		t.Fatalf("retained %d, want the cap %d", got, maxRetainedSpansPerJob)
	}
	won = l.ship(2, 0)
	if len(won) != maxRetainedSpansPerJob {
		t.Fatalf("shipped %d, want %d", len(won), maxRetainedSpansPerJob)
	}
	if won[0].Stage != 7 {
		t.Fatalf("truncation kept oldest spans (first stage %d, want 7)", won[0].Stage)
	}
}

// TestTelemetryLedgerJobCap holds spans for more jobs than the ledger
// retains: the oldest jobs evict so unresolved jobs cannot grow memory.
func TestTelemetryLedgerJobCap(t *testing.T) {
	l := newTelemetryLedger()
	for job := uint64(1); job <= maxRetainedJobs+3; job++ {
		l.retain(job, 0, spansN(4))
	}
	if got := l.retained(); got != maxRetainedJobs*4 {
		t.Fatalf("retained %d, want %d", got, maxRetainedJobs*4)
	}
	if l.ship(1, 0) != nil {
		t.Fatal("evicted job still shippable")
	}
	if got := l.ship(maxRetainedJobs+3, 0); len(got) != 4 {
		t.Fatalf("newest job shipped %d spans, want 4", len(got))
	}
}

// BenchmarkWorkerTelemetryDisabled pins the -no-telemetry hot path at zero
// allocations: recordTelemetry must return before touching the ledger or
// the collector (make alloc-guard enforces the 0 allocs/op).
func BenchmarkWorkerTelemetryDisabled(b *testing.B) {
	w := &Worker{telemetry: false}
	col := trace.NewCollector()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.recordTelemetry(uint64(i), 0, col)
	}
}
