package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"gradoop/internal/obs"
	"gradoop/internal/trace"
)

// The distributed telemetry plane's worker half. Every job attempt records
// its spans into a fresh per-job collector; the winning attempt ships them
// — together with a snapshot of the worker's metrics registry — to the
// coordinator in one frameTelemetry, sent on the control connection
// immediately before the attempt's frameJobDone so ordering is free. Span
// times are offsets from the attempt's own start (the collector epoch), so
// bundles from different machines align without trusting anyone's wall
// clock. Failed attempts retain their spans in a bounded ledger until the
// job resolves; see telemetryLedger.

// telemetryHeaderLen prefixes a frameTelemetry payload:
// jobID u64 | attempt u32 | from u32 | crc u32 (over the bundle body).
const telemetryHeaderLen = 8 + 4 + 4 + 4

// telemetryFrame is one worker's observability shipment for one attempt.
type telemetryFrame struct {
	JobID   uint64
	Attempt int
	From    int // the worker's roster index within the attempt
	Body    []byte
}

func encodeTelemetryFrame(f *telemetryFrame) []byte {
	out := make([]byte, telemetryHeaderLen, telemetryHeaderLen+len(f.Body))
	binary.BigEndian.PutUint64(out[0:], f.JobID)
	binary.BigEndian.PutUint32(out[8:], uint32(f.Attempt))
	binary.BigEndian.PutUint32(out[12:], uint32(f.From))
	binary.BigEndian.PutUint32(out[16:], crc32.ChecksumIEEE(f.Body))
	return append(out, f.Body...)
}

// decodeTelemetryFrame parses and CRC-checks a frameTelemetry payload. The
// body aliases the input. A decode failure here must degrade the report,
// never the query: the outer frame boundary was already validated, so the
// caller skips the bundle and settles the attempt with a partial-telemetry
// marker.
func decodeTelemetryFrame(b []byte) (*telemetryFrame, error) {
	if len(b) < telemetryHeaderLen {
		return nil, fmt.Errorf("cluster: truncated telemetry frame (%d bytes)", len(b))
	}
	f := &telemetryFrame{
		JobID:   binary.BigEndian.Uint64(b[0:]),
		Attempt: int(binary.BigEndian.Uint32(b[8:])),
		From:    int(binary.BigEndian.Uint32(b[12:])),
		Body:    b[telemetryHeaderLen:],
	}
	if want, got := binary.BigEndian.Uint32(b[16:]), crc32.ChecksumIEEE(f.Body); want != got {
		return nil, fmt.Errorf("cluster: telemetry frame CRC mismatch (%08x != %08x)", got, want)
	}
	return f, nil
}

// telemetryBundle is the decoded body of a telemetry frame: who recorded
// it, under which trace identity, how long the attempt ran on that worker,
// the full span set (per-stage, per-partition, per-attempt, times rebased
// to the attempt start) and a snapshot of the worker's metrics registry.
type telemetryBundle struct {
	Node      string
	TraceID   string
	ElapsedNs int64
	Spans     []trace.Span
	Metrics   obs.Snapshot
}

func encodeTelemetryBundle(dst []byte, b *telemetryBundle) []byte {
	dst = wireAppendString(dst, b.Node)
	dst = wireAppendString(dst, b.TraceID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(b.ElapsedNs))
	dst = trace.AppendSpans(dst, b.Spans)
	return obs.AppendSnapshot(dst, &b.Metrics)
}

func decodeTelemetryBundle(buf []byte) (*telemetryBundle, error) {
	var b telemetryBundle
	var err error
	if b.Node, buf, err = wireReadString(buf); err != nil {
		return nil, fmt.Errorf("cluster: telemetry bundle node: %w", err)
	}
	if b.TraceID, buf, err = wireReadString(buf); err != nil {
		return nil, fmt.Errorf("cluster: telemetry bundle trace id: %w", err)
	}
	if len(buf) < 8 {
		return nil, fmt.Errorf("cluster: truncated telemetry bundle elapsed (%d bytes)", len(buf))
	}
	b.ElapsedNs = int64(binary.BigEndian.Uint64(buf))
	buf = buf[8:]
	if b.Spans, buf, err = trace.ReadSpans(buf); err != nil {
		return nil, fmt.Errorf("cluster: telemetry bundle spans: %w", err)
	}
	if b.Metrics, buf, err = obs.ReadSnapshot(buf); err != nil {
		return nil, fmt.Errorf("cluster: telemetry bundle metrics: %w", err)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("cluster: telemetry bundle has %d trailing bytes", len(buf))
	}
	return &b, nil
}

// wireAppendString appends a uint32-length-prefixed string.
func wireAppendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// wireReadString consumes a uint32-length-prefixed string.
func wireReadString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("truncated string length (%d bytes)", len(b))
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return "", nil, fmt.Errorf("truncated string payload (want %d, have %d)", n, len(b))
	}
	return string(b[:n]), b[n:], nil
}

// Retention caps for the worker-side span ledger. A retried job retains at
// most maxRetainedSpansPerJob spans across all of its attempts (oldest
// attempts evicted first), and at most maxRetainedJobs jobs hold retained
// spans at once (oldest job evicted first) — so a coordinator that keeps
// retrying, or never resolves a job, cannot grow a worker's memory without
// bound.
const (
	maxRetainedSpansPerJob = 512
	maxRetainedJobs        = 8
)

// attemptSpans is one attempt's retained span set.
type attemptSpans struct {
	attempt int
	spans   []trace.Span
}

// telemetryLedger bounds the spans a worker retains across a job's
// attempts. Before the ledger existed, each job attempt allocated a fresh
// collector and its spans stayed reachable for as long as the attempt's
// runtime did — a job that crashed and retried kept every superseded
// attempt's spans alive with nothing ever dropping them. The ledger makes
// retention explicit and bounded: failed attempts park their spans here
// (capped), and the moment the winning attempt's bundle ships, every
// superseded attempt's spans are dropped.
type telemetryLedger struct {
	mu      sync.Mutex
	jobs    map[uint64][]attemptSpans
	order   []uint64 // job insertion order, oldest first
	dropped atomic.Int64
}

func newTelemetryLedger() *telemetryLedger {
	return &telemetryLedger{jobs: map[uint64][]attemptSpans{}}
}

// retain parks one attempt's spans until the job resolves, enforcing both
// caps.
func (l *telemetryLedger) retain(jobID uint64, attempt int, spans []trace.Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	entries, known := l.jobs[jobID]
	if !known {
		for len(l.order) >= maxRetainedJobs {
			evicted := l.order[0]
			l.order = l.order[1:]
			for _, e := range l.jobs[evicted] {
				l.dropped.Add(int64(len(e.spans)))
			}
			delete(l.jobs, evicted)
		}
		l.order = append(l.order, jobID)
	}
	// Enforce the per-job span cap: evict whole superseded attempts first,
	// then truncate the newest attempt's own spans if it alone exceeds it.
	held := 0
	for _, e := range entries {
		held += len(e.spans)
	}
	for held+len(spans) > maxRetainedSpansPerJob && len(entries) > 0 {
		l.dropped.Add(int64(len(entries[0].spans)))
		held -= len(entries[0].spans)
		entries = entries[1:]
	}
	if len(spans) > maxRetainedSpansPerJob {
		l.dropped.Add(int64(len(spans) - maxRetainedSpansPerJob))
		spans = spans[len(spans)-maxRetainedSpansPerJob:]
	}
	l.jobs[jobID] = append(entries, attemptSpans{attempt: attempt, spans: spans})
}

// ship returns the winning attempt's spans and drops the job's entire
// retained set — the superseded attempts' spans are released here, which
// is the leak fix's whole point.
func (l *telemetryLedger) ship(jobID uint64, attempt int) []trace.Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	entries := l.jobs[jobID]
	var won []trace.Span
	for _, e := range entries {
		if e.attempt == attempt {
			won = e.spans
		} else {
			l.dropped.Add(int64(len(e.spans)))
		}
	}
	delete(l.jobs, jobID)
	for i, id := range l.order {
		if id == jobID {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
	return won
}

// retained reports the total spans currently held across all jobs.
func (l *telemetryLedger) retained() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, entries := range l.jobs {
		for _, e := range entries {
			n += len(e.spans)
		}
	}
	return n
}

// workerInstruments is a worker process's own metrics surface. Workers are
// not scraped directly; these series reach operators through the registry
// snapshot each telemetry bundle carries, federated per-worker by the
// coordinator's /metrics.
type workerInstruments struct {
	jobs      *obs.Counter
	failures  *obs.Counter
	jobTime   *obs.Histogram
	teleBytes *obs.Counter
	shipped   *obs.Counter
}

// newWorkerInstruments registers the worker's instruments. A nil registry
// yields instruments whose fields are all nil — every obs instrument method
// is nil-safe, so callers never guard.
func newWorkerInstruments(r *obs.Registry, w *Worker) *workerInstruments {
	if r == nil {
		return &workerInstruments{}
	}
	r.NewGaugeFunc("gradoop_worker_spans_retained",
		"Spans held in the telemetry ledger awaiting job resolution",
		func() float64 { return float64(w.RetainedSpans()) })
	r.NewCounterFunc("gradoop_worker_spans_dropped_total",
		"Retained spans dropped by supersession or the ledger caps",
		func() float64 { return float64(w.tele.dropped.Load()) })
	return &workerInstruments{
		jobs: r.NewCounter("gradoop_worker_jobs_total",
			"Job attempts this worker executed"),
		failures: r.NewCounter("gradoop_worker_job_failures_total",
			"Job attempts that ended in an error on this worker"),
		jobTime: r.NewHistogram("gradoop_worker_job_seconds",
			"Per-attempt execution time on this worker", obs.ScaleNanos),
		teleBytes: r.NewCounter("gradoop_worker_telemetry_bytes_total",
			"Encoded telemetry bundle bytes shipped to the coordinator"),
		shipped: r.NewCounter("gradoop_worker_telemetry_bundles_total",
			"Telemetry bundles shipped to the coordinator"),
	}
}
