// Package ldbc generates LDBC-SNB-like social network graphs. The original
// paper evaluates on LDBC SNB datasets (scale factors 10 and 100); that
// generator's output is not available here, so this package produces a
// deterministic synthetic equivalent that preserves the structural
// properties the paper relies on: power-law node degrees (knows edges and
// message authorship concentrate on hub persons), skewed property value
// distributions (Zipf first names driving the Figure 5 selectivity
// experiment), reply trees of bounded depth for the variable length path
// queries, and a scale-factor knob for the data-volume experiment
// (Figure 4).
package ldbc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

// Config parameterizes a generated dataset.
type Config struct {
	// ScaleFactor sizes the graph; 1.0 yields roughly 1,000 persons and
	// 10x the vertices overall. The experiments use two factors 10x apart,
	// mirroring the paper's SF10 vs SF100.
	ScaleFactor float64
	// Seed makes generation deterministic.
	Seed int64
}

// Dataset is a generated social network with its entity counts.
type Dataset struct {
	Graph *epgm.LogicalGraph

	Persons      int
	Cities       int
	Universities int
	Tags         int
	Forums       int
	Posts        int
	Comments     int
	EdgeCount    int

	firstNameCounts map[string]int
}

// Generate builds the dataset. Generation is single-threaded and depends
// only on cfg, so equal configs produce structurally identical graphs.
func Generate(env *dataflow.Env, cfg Config) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	persons := int(math.Round(1000 * cfg.ScaleFactor))
	if persons < 20 {
		persons = 20
	}
	d := &Dataset{
		Persons:         persons,
		Cities:          clampCount(persons/100, 4, len(cityNames)),
		Universities:    clampCount(persons/200, 3, len(universityNames)),
		Tags:            clampCount(persons/30, 10, len(tagNames)),
		Forums:          persons / 2,
		Posts:           3 * persons,
		Comments:        6 * persons,
		firstNameCounts: map[string]int{},
	}

	var vertices []epgm.Vertex
	var edges []epgm.Edge
	addV := func(label string, props epgm.Properties) epgm.ID {
		id := epgm.NewID()
		vertices = append(vertices, epgm.Vertex{ID: id, Label: label, Properties: props})
		return id
	}
	addE := func(label string, src, tgt epgm.ID, props epgm.Properties) {
		edges = append(edges, epgm.Edge{ID: epgm.NewID(), Label: label, Source: src, Target: tgt, Properties: props})
	}

	cities := make([]epgm.ID, d.Cities)
	for i := range cities {
		cities[i] = addV("City", epgm.Properties{}.Set("name", epgm.PVString(cityNames[i])))
	}
	unis := make([]epgm.ID, d.Universities)
	for i := range unis {
		unis[i] = addV("University", epgm.Properties{}.Set("name", epgm.PVString(universityNames[i])))
	}
	tags := make([]epgm.ID, d.Tags)
	for i := range tags {
		tags[i] = addV("Tag", epgm.Properties{}.Set("name", epgm.PVString(tagNames[i%len(tagNames)]))) // pool is large enough
	}

	// Zipf samplers: skewed picks concentrate on low indices.
	nameZipf := rand.NewZipf(rng, 1.2, 1, uint64(len(firstNames)-1))
	personZipf := rand.NewZipf(rng, 1.1, 8, uint64(persons-1))
	tagZipf := rand.NewZipf(rng, 1.2, 2, uint64(d.Tags-1))
	cityZipf := rand.NewZipf(rng, 1.2, 1, uint64(d.Cities-1))
	degreeZipf := rand.NewZipf(rng, 1.6, 2, 49) // power-law out-degrees, max 50

	personIDs := make([]epgm.ID, persons)
	for i := range personIDs {
		first := firstNames[nameZipf.Uint64()]
		d.firstNameCounts[first]++
		gender := "male"
		if rng.Intn(2) == 0 {
			gender = "female"
		}
		personIDs[i] = addV("Person", epgm.Properties{}.
			Set("firstName", epgm.PVString(first)).
			Set("lastName", epgm.PVString(lastNames[rng.Intn(len(lastNames))])).
			Set("gender", epgm.PVString(gender)).
			Set("birthday", epgm.PVInt(int64(1950+rng.Intn(55)))))
	}

	// Person environment: city, university, interests, friendships.
	for i, p := range personIDs {
		addE("isLocatedIn", p, cities[cityZipf.Uint64()], nil)
		if rng.Float64() < 0.8 {
			addE("studyAt", p, unis[rng.Intn(len(unis))],
				epgm.Properties{}.Set("classYear", epgm.PVInt(int64(2000+rng.Intn(20)))))
		}
		interests := 1 + rng.Intn(5)
		seenTags := map[epgm.ID]bool{}
		for k := 0; k < interests; k++ {
			tag := tags[tagZipf.Uint64()]
			if !seenTags[tag] {
				seenTags[tag] = true
				addE("hasInterest", p, tag, nil)
			}
		}
		deg := 1 + int(degreeZipf.Uint64())
		seenFriends := map[epgm.ID]bool{}
		for k := 0; k < deg; k++ {
			f := personIDs[personZipf.Uint64()]
			if f != p && !seenFriends[f] {
				seenFriends[f] = true
				addE("knows", p, f,
					epgm.Properties{}.Set("since", epgm.PVInt(int64(2005+rng.Intn(15)))))
			}
		}
		_ = i
	}

	// Forums with a moderator and members.
	forumIDs := make([]epgm.ID, d.Forums)
	for i := range forumIDs {
		forumIDs[i] = addV("Forum", epgm.Properties{}.
			Set("title", epgm.PVString(fmt.Sprintf("Forum %d", i))))
		addE("hasModerator", forumIDs[i], personIDs[personZipf.Uint64()], nil)
		members := 3 + rng.Intn(10)
		seen := map[epgm.ID]bool{}
		for k := 0; k < members; k++ {
			m := personIDs[personZipf.Uint64()]
			if !seen[m] {
				seen[m] = true
				addE("hasMember", forumIDs[i], m, nil)
			}
		}
	}

	// Posts: authored by (skewed) persons, contained in forums.
	date := int64(20200101)
	postIDs := make([]epgm.ID, d.Posts)
	for i := range postIDs {
		date++
		postIDs[i] = addV("Post", epgm.Properties{}.
			Set("creationDate", epgm.PVInt(date)).
			Set("content", epgm.PVString(fmt.Sprintf("post-%d", i))).
			Set("length", epgm.PVInt(int64(10+rng.Intn(200)))))
		addE("hasCreator", postIDs[i], personIDs[personZipf.Uint64()], nil)
		addE("containerOf", forumIDs[rng.Intn(len(forumIDs))], postIDs[i], nil)
	}

	// Comments: reply trees rooted at posts; each comment replies to a post
	// or to an earlier comment, so reply chains have logarithmic expected
	// depth and respect the *1..10 bounds of queries 2 and 3.
	commentIDs := make([]epgm.ID, 0, d.Comments)
	for i := 0; i < d.Comments; i++ {
		date++
		c := addV("Comment", epgm.Properties{}.
			Set("creationDate", epgm.PVInt(date)).
			Set("content", epgm.PVString(fmt.Sprintf("comment-%d", i))).
			Set("length", epgm.PVInt(int64(5+rng.Intn(100)))))
		addE("hasCreator", c, personIDs[personZipf.Uint64()], nil)
		if len(commentIDs) == 0 || rng.Float64() < 0.45 {
			addE("replyOf", c, postIDs[rng.Intn(len(postIDs))], nil)
		} else {
			addE("replyOf", c, commentIDs[rng.Intn(len(commentIDs))], nil)
		}
		commentIDs = append(commentIDs, c)
	}

	d.EdgeCount = len(edges)
	d.Graph = epgm.GraphFromSlices(env, "LDBC-SNB-sim", vertices, edges)
	return d
}

func clampCount(n, lo, hi int) int {
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}

// FirstNamesBySelectivity returns three first names whose frequencies in
// the generated population are high, medium and low — the paper's "low",
// "medium" and "high selectivity" parameters for queries 1–3 (note the
// inversion: a very common name has LOW predicate selectivity and yields a
// large result).
func (d *Dataset) FirstNamesBySelectivity() (common, medium, rare string) {
	type nc struct {
		name  string
		count int
	}
	var counts []nc
	for n, c := range d.firstNameCounts {
		counts = append(counts, nc{n, c})
	}
	sort.Slice(counts, func(i, j int) bool {
		if counts[i].count != counts[j].count {
			return counts[i].count > counts[j].count
		}
		return counts[i].name < counts[j].name
	})
	if len(counts) == 0 {
		return "", "", ""
	}
	common = counts[0].name
	rare = counts[len(counts)-1].name
	// Medium sits between the extremes like the paper's medium-selectivity
	// parameters: a name carried by roughly 1/15 of the most common name's
	// population.
	target := counts[0].count / 15
	if target < 2 {
		target = 2
	}
	medium = counts[len(counts)/2].name
	bestDiff := int(^uint(0) >> 1)
	for _, c := range counts[1 : len(counts)-1] {
		diff := c.count - target
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff = diff
			medium = c.name
		}
	}
	return common, medium, rare
}

// FirstNameCount reports how many persons carry the given first name.
func (d *Dataset) FirstNameCount(name string) int { return d.firstNameCounts[name] }

// VertexCount returns the generated vertex total.
func (d *Dataset) VertexCount() int {
	return d.Persons + d.Cities + d.Universities + d.Tags + d.Forums + d.Posts + d.Comments
}
