package ldbc

// firstNames is the pool of person first names. The generator draws from it
// with a Zipf distribution, so low ranks are very common and high ranks very
// rare — mirroring the skewed property value distributions of the LDBC SNB
// generator that the paper's selectivity experiment (Figure 5) exploits.
var firstNames = []string{
	"Jan", "Chen", "Maria", "Jun", "Ali", "Ivan", "Anna", "Lei", "John", "Yang",
	"Jose", "Wei", "Ana", "Amit", "Hans", "Olga", "Ken", "Li", "Carlos", "Mia",
	"Omar", "Lin", "Peter", "Sara", "Raj", "Eva", "Tom", "Hui", "Luis", "Nina",
	"Karl", "Ying", "Pablo", "Lena", "Igor", "Ming", "David", "Rosa", "Abdul", "Mei",
	"Erik", "Tanya", "Ahmed", "Julia", "Bob", "Xiao", "Marco", "Ines", "Viktor", "Lan",
	"Paul", "Vera", "Diego", "Ella", "Mohamed", "Ruth", "Andre", "Zara", "Felix", "Noor",
	"Oscar", "Ida", "Hugo", "Lea", "Ravi", "Emma", "Sven", "Alia", "Nils", "Sofia",
	"Timo", "Rana", "Lars", "Dana", "Otto", "Cleo", "Finn", "Juno", "Axel", "Wanda",
	"Bruno", "Edith", "Casper", "Freya", "Dario", "Greta", "Elias", "Hilda", "Fabio", "Iris",
	"Gustav", "Jade", "Henrik", "Kira", "Iker", "Luna", "Jonas", "Mara", "Klaus", "Nela",
	"Leon", "Odessa", "Matti", "Petra", "Nico", "Queenie", "Olav", "Rhea", "Pietro", "Selma",
	"Quentin", "Thea", "Rolf", "Uma", "Stefan", "Vilma", "Tariq", "Willa", "Ulrich", "Xenia",
	"Vito", "Yvette", "Wim", "Zelda", "Xavier", "Abril", "Yusuf", "Beate", "Zeno", "Cilla",
	"Arvid", "Delia", "Bernd", "Elva", "Corin", "Fanny", "Dustin", "Gilda", "Edgar", "Hedda",
	"Frode", "Ilse", "Gideon", "Jorun", "Harald", "Katja", "Imre", "Lotte", "Jens", "Minna",
}

// lastNames is the pool of person last names (uniformly distributed).
var lastNames = []string{
	"Smith", "Mueller", "Zhang", "Garcia", "Kumar", "Petrov", "Sato", "Silva",
	"Nguyen", "Kim", "Hansen", "Rossi", "Novak", "Khan", "Berg", "Costa",
	"Weber", "Lindqvist", "Moreau", "Okafor", "Tanaka", "Varga", "Wolf", "Yilmaz",
}

// tagNames seeds the topic tags persons have interests in.
var tagNames = []string{
	"Metal", "Jazz", "Hiking", "Chess", "Football", "Cooking", "Photography",
	"Databases", "Graphs", "Streaming", "Cycling", "Travel", "Movies", "Opera",
	"Poetry", "Robotics", "Sailing", "Skiing", "Tennis", "Whisky", "Yoga", "Zen",
	"History", "Physics", "Painting", "Gardening", "Running", "Baking", "Birding",
	"Climbing", "Dancing", "Fishing",
}

// cityNames seeds the places persons live in.
var cityNames = []string{
	"Leipzig", "Dresden", "Berlin", "Hamburg", "Munich", "Cologne", "Frankfurt",
	"Stuttgart", "Halle", "Erfurt", "Jena", "Chemnitz", "Magdeburg", "Potsdam",
	"Rostock", "Kiel",
}

// universityNames seeds the universities persons study at.
var universityNames = []string{
	"Uni Leipzig", "TU Dresden", "HU Berlin", "Uni Hamburg", "LMU Munich",
	"Uni Cologne", "Goethe Uni", "Uni Stuttgart", "MLU Halle", "Uni Erfurt",
}
