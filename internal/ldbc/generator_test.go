package ldbc

import (
	"sort"
	"testing"

	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

func gen(t *testing.T, sf float64, seed int64) *Dataset {
	t.Helper()
	env := dataflow.NewEnv(dataflow.DefaultConfig(4))
	return Generate(env, Config{ScaleFactor: sf, Seed: seed})
}

func TestGenerateCounts(t *testing.T) {
	d := gen(t, 0.1, 7)
	if d.Persons != 100 {
		t.Fatalf("persons=%d", d.Persons)
	}
	if got := int(d.Graph.VertexCount()); got != d.VertexCount() {
		t.Fatalf("vertex count mismatch: graph=%d expected=%d", got, d.VertexCount())
	}
	if got := int(d.Graph.EdgeCount()); got != d.EdgeCount {
		t.Fatalf("edge count mismatch: %d vs %d", got, d.EdgeCount)
	}
	if d.Posts != 300 || d.Comments != 600 || d.Forums != 50 {
		t.Fatalf("entity counts: %+v", d)
	}
}

func TestGenerateScalesLinearly(t *testing.T) {
	small := gen(t, 0.05, 1)
	big := gen(t, 0.5, 1)
	ratio := float64(big.Graph.VertexCount()) / float64(small.Graph.VertexCount())
	if ratio < 7 || ratio > 13 {
		t.Fatalf("10x scale factor gave %.1fx vertices", ratio)
	}
}

func TestGenerateDeterministicStructure(t *testing.T) {
	a := gen(t, 0.05, 42)
	b := gen(t, 0.05, 42)
	if a.EdgeCount != b.EdgeCount {
		t.Fatalf("edge counts differ: %d vs %d", a.EdgeCount, b.EdgeCount)
	}
	// Same label histograms.
	hist := func(d *Dataset) map[string]int {
		h := map[string]int{}
		for _, v := range d.Graph.Vertices.Collect() {
			h[v.Label]++
		}
		for _, e := range d.Graph.Edges.Collect() {
			h[e.Label]++
		}
		return h
	}
	ha, hb := hist(a), hist(b)
	for k, v := range ha {
		if hb[k] != v {
			t.Fatalf("label %s: %d vs %d", k, v, hb[k])
		}
	}
	// Same first-name distribution.
	ca, _, ra := a.FirstNamesBySelectivity()
	cb, _, rb := b.FirstNamesBySelectivity()
	if ca != cb || ra != rb {
		t.Fatalf("selectivity names differ: %s/%s vs %s/%s", ca, ra, cb, rb)
	}
}

func TestFirstNameZipfSkew(t *testing.T) {
	d := gen(t, 0.5, 3)
	common, medium, rare := d.FirstNamesBySelectivity()
	cc, mc, rc := d.FirstNameCount(common), d.FirstNameCount(medium), d.FirstNameCount(rare)
	if !(cc > mc && mc >= rc && rc >= 1) {
		t.Fatalf("selectivity ordering broken: %s=%d %s=%d %s=%d", common, cc, medium, mc, rare, rc)
	}
	// The head of the Zipf must dominate: most common name covers >10% of
	// persons.
	if float64(cc) < 0.1*float64(d.Persons) {
		t.Fatalf("distribution not skewed: top name %d of %d", cc, d.Persons)
	}
}

func TestKnowsDegreePowerLaw(t *testing.T) {
	d := gen(t, 0.5, 5)
	out := map[epgm.ID]int{}
	for _, e := range d.Graph.Edges.Collect() {
		if e.Label == "knows" {
			out[e.Source]++
		}
	}
	var degs []int
	for _, n := range out {
		degs = append(degs, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	if len(degs) == 0 {
		t.Fatal("no knows edges")
	}
	// Power law: the maximum degree should far exceed the median.
	med := degs[len(degs)/2]
	if degs[0] < 4*med {
		t.Fatalf("degree distribution too flat: max=%d median=%d", degs[0], med)
	}
}

func TestReplyTreesBounded(t *testing.T) {
	d := gen(t, 0.1, 9)
	// replyOf edges must point from Comment to Post or Comment and be
	// acyclic (later comment -> earlier message).
	labels := map[epgm.ID]string{}
	for _, v := range d.Graph.Vertices.Collect() {
		labels[v.ID] = v.Label
	}
	parent := map[epgm.ID]epgm.ID{}
	for _, e := range d.Graph.Edges.Collect() {
		if e.Label != "replyOf" {
			continue
		}
		if labels[e.Source] != "Comment" {
			t.Fatalf("replyOf source is %s", labels[e.Source])
		}
		if l := labels[e.Target]; l != "Post" && l != "Comment" {
			t.Fatalf("replyOf target is %s", l)
		}
		if e.Target >= e.Source {
			t.Fatalf("replyOf not pointing backwards: %d -> %d", e.Source, e.Target)
		}
		parent[e.Source] = e.Target
	}
	// Follow chains to their root posts; they must terminate.
	maxDepth := 0
	for c := range parent {
		depth := 0
		for cur := c; ; depth++ {
			next, ok := parent[cur]
			if !ok {
				break
			}
			cur = next
			if depth > 10000 {
				t.Fatal("reply cycle")
			}
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	if maxDepth < 2 {
		t.Fatalf("reply trees too shallow: max depth %d", maxDepth)
	}
}

func TestSchemaCoversPaperQueries(t *testing.T) {
	d := gen(t, 0.05, 11)
	vlabels := map[string]bool{}
	elabels := map[string]bool{}
	for _, v := range d.Graph.Vertices.Collect() {
		vlabels[v.Label] = true
	}
	for _, e := range d.Graph.Edges.Collect() {
		elabels[e.Label] = true
	}
	for _, l := range []string{"Person", "Comment", "Post", "Forum", "Tag", "University", "City"} {
		if !vlabels[l] {
			t.Fatalf("missing vertex label %s", l)
		}
	}
	for _, l := range []string{"hasCreator", "replyOf", "knows", "hasInterest", "studyAt", "isLocatedIn", "hasMember", "hasModerator"} {
		if !elabels[l] {
			t.Fatalf("missing edge label %s", l)
		}
	}
}
