package csv

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

func sample(workers int) *epgm.LogicalGraph {
	env := dataflow.NewEnv(dataflow.DefaultConfig(workers))
	v1 := epgm.Vertex{ID: epgm.NewID(), Label: "Person", Properties: epgm.Properties{}.
		Set("name", epgm.PVString("Ali;ce|br,own\nx")).
		Set("age", epgm.PVInt(30)).
		Set("score", epgm.PVFloat(1.5)).
		Set("active", epgm.PVBool(true))}
	v2 := epgm.Vertex{ID: epgm.NewID(), Label: "Person", Properties: epgm.Properties{}.
		Set("name", epgm.PVString(""))} // empty string, no other props
	v3 := epgm.Vertex{ID: epgm.NewID(), Label: "Ta;g"}
	e1 := epgm.Edge{ID: epgm.NewID(), Label: "knows", Source: v1.ID, Target: v2.ID,
		Properties: epgm.Properties{}.Set("since", epgm.PVInt(2020))}
	e2 := epgm.Edge{ID: epgm.NewID(), Label: "hasInterest", Source: v1.ID, Target: v3.ID}
	return epgm.GraphFromSlices(env, "Community", []epgm.Vertex{v1, v2, v3}, []epgm.Edge{e1, e2})
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := sample(3)
	if err := WriteLogicalGraph(g, dir); err != nil {
		t.Fatal(err)
	}
	env := dataflow.NewEnv(dataflow.DefaultConfig(2))
	g2, err := ReadLogicalGraph(env, dir)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Head.ID != g.Head.ID || g2.Head.Label != "Community" {
		t.Fatalf("head: %+v", g2.Head)
	}
	if g2.VertexCount() != 3 || g2.EdgeCount() != 2 {
		t.Fatalf("counts: %d/%d", g2.VertexCount(), g2.EdgeCount())
	}

	byID := map[epgm.ID]epgm.Vertex{}
	for _, v := range g2.Vertices.Collect() {
		byID[v.ID] = v
	}
	orig := g.Vertices.Collect()
	v1 := byID[orig[0].ID]
	if v1.Properties.Get("name").Str() != "Ali;ce|br,own\nx" {
		t.Fatalf("escaped string lost: %q", v1.Properties.Get("name").Str())
	}
	if v1.Properties.Get("age").Int() != 30 || v1.Properties.Get("score").Float() != 1.5 || !v1.Properties.Get("active").Bool() {
		t.Fatalf("typed props: %v", v1.Properties)
	}
	v2 := byID[orig[1].ID]
	if v2.Properties.Get("name").Str() != "" || v2.Properties.Get("name").IsNull() {
		t.Fatalf("empty string not preserved: %v", v2.Properties.Get("name"))
	}
	if v2.Properties.Has("age") {
		t.Fatal("absent property materialized")
	}
	v3 := byID[orig[2].ID]
	if v3.Label != "Ta;g" {
		t.Fatalf("escaped label: %q", v3.Label)
	}
	// Graph membership survived.
	if !v1.GraphIDs.Contains(g.Head.ID) {
		t.Fatal("membership lost")
	}

	edges := g2.Edges.Collect()
	sort.Slice(edges, func(i, j int) bool { return edges[i].ID < edges[j].ID })
	if edges[0].Source != orig[0].ID || edges[0].Target != orig[1].ID {
		t.Fatalf("edge endpoints: %+v", edges[0])
	}
	if edges[0].Properties.Get("since").Int() != 2020 {
		t.Fatalf("edge props: %v", edges[0].Properties)
	}
}

func TestReadAdvancesIDAllocator(t *testing.T) {
	dir := t.TempDir()
	g := sample(1)
	if err := WriteLogicalGraph(g, dir); err != nil {
		t.Fatal(err)
	}
	env := dataflow.NewEnv(dataflow.DefaultConfig(1))
	g2, err := ReadLogicalGraph(env, dir)
	if err != nil {
		t.Fatal(err)
	}
	var maxLoaded epgm.ID
	for _, v := range g2.Vertices.Collect() {
		if v.ID > maxLoaded {
			maxLoaded = v.ID
		}
	}
	if id := epgm.NewID(); id <= maxLoaded {
		t.Fatalf("NewID()=%d collides with loaded ids (max %d)", id, maxLoaded)
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	cases := []string{"", "plain", `semi;colon`, `pi|pe`, `com,ma`, "new\nline", `back\slash`, `all;|,\n\`}
	for _, c := range cases {
		got, err := unescape(escape(c))
		if err != nil {
			t.Fatalf("%q: %v", c, err)
		}
		if got != c {
			t.Fatalf("round trip %q -> %q", c, got)
		}
	}
}

func TestUnescapeErrors(t *testing.T) {
	for _, s := range []string{`dangling\`, `bad\q`} {
		if _, err := unescape(s); err == nil {
			t.Errorf("unescape(%q): expected error", s)
		}
	}
}

func TestReadErrors(t *testing.T) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(1))
	if _, err := ReadLogicalGraph(env, t.TempDir()); err == nil {
		t.Fatal("missing files should error")
	}
	// Corrupt vertex line.
	dir := t.TempDir()
	g := sample(1)
	if err := WriteLogicalGraph(g, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, VerticesFile), []byte("not;enough\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLogicalGraph(env, dir); err == nil {
		t.Fatal("malformed vertex line should error")
	}
}

func TestSplitUnescaped(t *testing.T) {
	parts := splitUnescaped(`a;b\;c;d`, ';')
	if len(parts) != 3 || parts[1] != `b\;c` {
		t.Fatalf("parts=%v", parts)
	}
}
