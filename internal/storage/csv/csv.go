// Package csv implements a Gradoop-style CSV data source and sink for
// logical graphs: a directory holding graphs.csv, vertices.csv, edges.csv
// and a metadata.csv describing the property keys and types per label
// (§2.4/§4's "Gradoop-specific CSV format").
//
// Line formats (fields separated by ';', property values by '|'):
//
//	graphs.csv:   id;label;v1|v2|...
//	vertices.csv: id;[g1,g2,...];label;v1|v2|...
//	edges.csv:    id;[g1,g2,...];sourceId;targetId;label;v1|v2|...
//	metadata.csv: kind;label;key1:type1,key2:type2,...
//
// kind is g, v or e. Values are encoded per the metadata's key order; an
// empty field is a null (absent) value.
package csv

import (
	"fmt"
	"strconv"
	"strings"

	"gradoop/internal/epgm"
)

// File names within a dataset directory.
const (
	MetadataFile = "metadata.csv"
	GraphsFile   = "graphs.csv"
	VerticesFile = "vertices.csv"
	EdgesFile    = "edges.csv"
)

// escape protects the structural characters of the format.
func escape(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case ';':
			sb.WriteString(`\s`)
		case '|':
			sb.WriteString(`\p`)
		case ',':
			sb.WriteString(`\c`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String()
}

func unescape(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			sb.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("csv: dangling escape in %q", s)
		}
		switch s[i] {
		case '\\':
			sb.WriteByte('\\')
		case 's':
			sb.WriteByte(';')
		case 'p':
			sb.WriteByte('|')
		case 'c':
			sb.WriteByte(',')
		case 'n':
			sb.WriteByte('\n')
		default:
			return "", fmt.Errorf("csv: unknown escape \\%c in %q", s[i], s)
		}
	}
	return sb.String(), nil
}

// splitUnescaped splits s on sep, honoring backslash escapes.
func splitUnescaped(s string, sep byte) []string {
	var parts []string
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case sep:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// typeName maps a property type to its metadata name.
func typeName(t epgm.PropertyType) string {
	switch t {
	case epgm.TypeBool:
		return "boolean"
	case epgm.TypeInt64:
		return "long"
	case epgm.TypeFloat64:
		return "double"
	case epgm.TypeString:
		return "string"
	default:
		return "null"
	}
}

// emptyStringField marks an empty string value, distinguishing it from a
// null (absent) value, which encodes as the empty field. A literal "\e"
// never collides: escape() turns a real backslash into "\\".
const emptyStringField = `\e`

func encodeValue(v epgm.PropertyValue) string {
	if v.IsNull() {
		return ""
	}
	if v.Type() == epgm.TypeString && v.Str() == "" {
		return emptyStringField
	}
	return escape(v.String())
}

func decodeValue(s, typ string) (epgm.PropertyValue, error) {
	if s == "" {
		return epgm.Null, nil
	}
	if s == emptyStringField && typ == "string" {
		return epgm.PVString(""), nil
	}
	raw, err := unescape(s)
	if err != nil {
		return epgm.Null, err
	}
	switch typ {
	case "boolean":
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return epgm.Null, fmt.Errorf("csv: bad boolean %q: %v", raw, err)
		}
		return epgm.PVBool(b), nil
	case "long":
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return epgm.Null, fmt.Errorf("csv: bad long %q: %v", raw, err)
		}
		return epgm.PVInt(n), nil
	case "double":
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return epgm.Null, fmt.Errorf("csv: bad double %q: %v", raw, err)
		}
		return epgm.PVFloat(f), nil
	case "string":
		return epgm.PVString(raw), nil
	default:
		return epgm.Null, fmt.Errorf("csv: unknown property type %q", typ)
	}
}

// metadata records per (kind, label) the ordered property keys and types.
type metadata struct {
	keys  map[string][]string // kind+label -> keys
	types map[string][]string // kind+label -> types
}

func newMetadata() *metadata {
	return &metadata{keys: map[string][]string{}, types: map[string][]string{}}
}

func metaKey(kind, label string) string { return kind + "\x00" + label }

func (m *metadata) observe(kind, label string, props epgm.Properties) {
	k := metaKey(kind, label)
	keys := m.keys[k]
	types := m.types[k]
	for _, p := range props {
		if p.Value.IsNull() {
			continue
		}
		found := false
		for i, existing := range keys {
			if existing == p.Key {
				found = true
				if types[i] == "null" {
					types[i] = typeName(p.Value.Type())
				}
				break
			}
		}
		if !found {
			keys = append(keys, p.Key)
			types = append(types, typeName(p.Value.Type()))
		}
	}
	m.keys[k] = keys
	m.types[k] = types
}

func (m *metadata) encodeProps(kind, label string, props epgm.Properties) string {
	k := metaKey(kind, label)
	keys := m.keys[k]
	fields := make([]string, len(keys))
	for i, key := range keys {
		fields[i] = encodeValue(props.Get(key))
	}
	return strings.Join(fields, "|")
}

func (m *metadata) decodeProps(kind, label, field string) (epgm.Properties, error) {
	k := metaKey(kind, label)
	keys := m.keys[k]
	if len(keys) == 0 || field == "" {
		return nil, nil
	}
	parts := splitUnescaped(field, '|')
	var props epgm.Properties
	for i, key := range keys {
		if i >= len(parts) {
			break
		}
		v, err := decodeValue(parts[i], m.types[k][i])
		if err != nil {
			return nil, fmt.Errorf("csv: label %s key %s: %v", label, key, err)
		}
		if !v.IsNull() {
			props = props.Set(key, v)
		}
	}
	return props, nil
}
