package csv

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gradoop/internal/epgm"
)

// WriteLogicalGraph writes a logical graph into dir (created if needed) in
// the Gradoop CSV format.
func WriteLogicalGraph(g *epgm.LogicalGraph, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("csv: create dataset dir: %w", err)
	}
	vertices := g.Vertices.Collect()
	edges := g.Edges.Collect()

	meta := newMetadata()
	meta.observe("g", g.Head.Label, g.Head.Properties)
	for _, v := range vertices {
		meta.observe("v", v.Label, v.Properties)
	}
	for _, e := range edges {
		meta.observe("e", e.Label, e.Properties)
	}
	if err := writeMetadata(meta, filepath.Join(dir, MetadataFile)); err != nil {
		return err
	}

	if err := writeLines(filepath.Join(dir, GraphsFile), func(w *bufio.Writer) error {
		_, err := fmt.Fprintf(w, "%d;%s;%s\n", g.Head.ID, escape(g.Head.Label),
			meta.encodeProps("g", g.Head.Label, g.Head.Properties))
		return err
	}); err != nil {
		return err
	}

	if err := writeLines(filepath.Join(dir, VerticesFile), func(w *bufio.Writer) error {
		for _, v := range vertices {
			if _, err := fmt.Fprintf(w, "%d;%s;%s;%s\n", v.ID, idSet(v.GraphIDs), escape(v.Label),
				meta.encodeProps("v", v.Label, v.Properties)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	return writeLines(filepath.Join(dir, EdgesFile), func(w *bufio.Writer) error {
		for _, e := range edges {
			if _, err := fmt.Fprintf(w, "%d;%s;%d;%d;%s;%s\n", e.ID, idSet(e.GraphIDs), e.Source, e.Target,
				escape(e.Label), meta.encodeProps("e", e.Label, e.Properties)); err != nil {
				return err
			}
		}
		return nil
	})
}

func idSet(ids epgm.IDSet) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func writeLines(path string, fill func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("csv: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := fill(w); err != nil {
		f.Close()
		return fmt.Errorf("csv: write %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("csv: flush %s: %w", path, err)
	}
	return f.Close()
}

func writeMetadata(meta *metadata, path string) error {
	return writeLines(path, func(w *bufio.Writer) error {
		var keys []string
		for k := range meta.keys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			kind, label, _ := strings.Cut(k, "\x00")
			cols := make([]string, len(meta.keys[k]))
			for i, key := range meta.keys[k] {
				cols[i] = escape(key) + ":" + meta.types[k][i]
			}
			if _, err := fmt.Fprintf(w, "%s;%s;%s\n", kind, escape(label), strings.Join(cols, ",")); err != nil {
				return err
			}
		}
		return nil
	})
}
