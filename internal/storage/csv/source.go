package csv

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

// ReadLogicalGraph loads a dataset directory written by WriteLogicalGraph
// into a logical graph backed by env. The id allocator is advanced past the
// loaded ids so later NewID calls cannot collide.
func ReadLogicalGraph(env *dataflow.Env, dir string) (*epgm.LogicalGraph, error) {
	meta, err := readMetadata(filepath.Join(dir, MetadataFile))
	if err != nil {
		return nil, err
	}

	var head epgm.GraphHead
	headSeen := false
	if err := readLines(filepath.Join(dir, GraphsFile), func(line string) error {
		parts := splitUnescaped(line, ';')
		if len(parts) != 3 {
			return fmt.Errorf("csv: malformed graph line %q", line)
		}
		id, err := parseID(parts[0])
		if err != nil {
			return err
		}
		label, err := unescape(parts[1])
		if err != nil {
			return err
		}
		props, err := meta.decodeProps("g", label, parts[2])
		if err != nil {
			return err
		}
		if !headSeen {
			head = epgm.GraphHead{ID: id, Label: label, Properties: props}
			headSeen = true
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if !headSeen {
		return nil, fmt.Errorf("csv: %s contains no graph head", dir)
	}

	var maxID epgm.ID
	bump := func(id epgm.ID) {
		if id > maxID {
			maxID = id
		}
	}
	bump(head.ID)

	var vertices []epgm.Vertex
	if err := readLines(filepath.Join(dir, VerticesFile), func(line string) error {
		parts := splitUnescaped(line, ';')
		if len(parts) != 4 {
			return fmt.Errorf("csv: malformed vertex line %q", line)
		}
		id, err := parseID(parts[0])
		if err != nil {
			return err
		}
		graphs, err := parseIDSet(parts[1])
		if err != nil {
			return err
		}
		label, err := unescape(parts[2])
		if err != nil {
			return err
		}
		props, err := meta.decodeProps("v", label, parts[3])
		if err != nil {
			return err
		}
		bump(id)
		vertices = append(vertices, epgm.Vertex{ID: id, Label: label, Properties: props, GraphIDs: graphs})
		return nil
	}); err != nil {
		return nil, err
	}

	var edges []epgm.Edge
	if err := readLines(filepath.Join(dir, EdgesFile), func(line string) error {
		parts := splitUnescaped(line, ';')
		if len(parts) != 6 {
			return fmt.Errorf("csv: malformed edge line %q", line)
		}
		id, err := parseID(parts[0])
		if err != nil {
			return err
		}
		graphs, err := parseIDSet(parts[1])
		if err != nil {
			return err
		}
		src, err := parseID(parts[2])
		if err != nil {
			return err
		}
		tgt, err := parseID(parts[3])
		if err != nil {
			return err
		}
		label, err := unescape(parts[4])
		if err != nil {
			return err
		}
		props, err := meta.decodeProps("e", label, parts[5])
		if err != nil {
			return err
		}
		bump(id)
		edges = append(edges, epgm.Edge{ID: id, Label: label, Source: src, Target: tgt, Properties: props, GraphIDs: graphs})
		return nil
	}); err != nil {
		return nil, err
	}

	epgm.EnsureIDsAbove(maxID)
	return epgm.NewLogicalGraph(env, head,
		dataflow.FromSlice(env, vertices), dataflow.FromSlice(env, edges)), nil
}

func parseID(s string) (epgm.ID, error) {
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("csv: bad id %q: %v", s, err)
	}
	return epgm.ID(n), nil
}

func parseIDSet(s string) (epgm.IDSet, error) {
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	set := epgm.NewIDSet()
	for _, p := range parts {
		id, err := parseID(p)
		if err != nil {
			return nil, err
		}
		set = set.Add(id)
	}
	return set, nil
}

func readLines(path string, fn func(line string) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("csv: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if err := fn(line); err != nil {
			return fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
	}
	return sc.Err()
}

func readMetadata(path string) (*metadata, error) {
	meta := newMetadata()
	err := readLines(path, func(line string) error {
		parts := splitUnescaped(line, ';')
		if len(parts) != 3 {
			return fmt.Errorf("csv: malformed metadata line %q", line)
		}
		kind := parts[0]
		label, err := unescape(parts[1])
		if err != nil {
			return err
		}
		k := metaKey(kind, label)
		if parts[2] == "" {
			meta.keys[k] = nil
			return nil
		}
		for _, col := range splitUnescaped(parts[2], ',') {
			name, typ, ok := strings.Cut(col, ":")
			if !ok {
				return fmt.Errorf("csv: malformed metadata column %q", col)
			}
			key, err := unescape(name)
			if err != nil {
				return err
			}
			meta.keys[k] = append(meta.keys[k], key)
			meta.types[k] = append(meta.types[k], typ)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return meta, nil
}
