package params

import (
	"testing"

	"gradoop/internal/epgm"
)

// TestInfer: the inference order is int, float, bool, string — "1" must be
// an int (not a float or a bool), "1.5" a float, "true" a bool.
func TestInfer(t *testing.T) {
	cases := []struct {
		in   string
		want epgm.PropertyValue
	}{
		{"42", epgm.PVInt(42)},
		{"-7", epgm.PVInt(-7)},
		{"0", epgm.PVInt(0)},
		{"1", epgm.PVInt(1)}, // int wins over bool's ParseBool("1")
		{"1.5", epgm.PVFloat(1.5)},
		{"-0.25", epgm.PVFloat(-0.25)},
		{"1e3", epgm.PVFloat(1000)},
		{"true", epgm.PVBool(true)},
		{"false", epgm.PVBool(false)},
		{"True", epgm.PVBool(true)},
		{"t", epgm.PVBool(true)},
		{"Alice", epgm.PVString("Alice")},
		{"", epgm.PVString("")},
		{"12abc", epgm.PVString("12abc")},
		{"9223372036854775808", epgm.PVFloat(9223372036854775808)}, // int64 overflow falls to float
		{"yes", epgm.PVString("yes")},                              // not a Go bool literal
	}
	for _, c := range cases {
		if got := Infer(c.in); got != c.want {
			t.Errorf("Infer(%q) = %v (%s), want %v (%s)", c.in, got, got.Type(), c.want, c.want.Type())
		}
	}
}

// TestParsePair: name=value splits on the first '=' so values may contain
// '='; a missing '=' is an error.
func TestParsePair(t *testing.T) {
	name, v, err := ParsePair("firstName=Alice")
	if err != nil || name != "firstName" || v != epgm.PVString("Alice") {
		t.Fatalf("ParsePair: name=%q v=%v err=%v", name, v, err)
	}
	name, v, err = ParsePair("expr=a=b")
	if err != nil || name != "expr" || v != epgm.PVString("a=b") {
		t.Fatalf("ParsePair first-= split: name=%q v=%v err=%v", name, v, err)
	}
	if _, _, err := ParsePair("novalue"); err == nil {
		t.Fatal("ParsePair accepted a pair without '='")
	}
	name, v, err = ParsePair("empty=")
	if err != nil || name != "empty" || v != epgm.PVString("") {
		t.Fatalf("ParsePair empty value: name=%q v=%v err=%v", name, v, err)
	}
}

// TestFlags: the flag.Value accumulates repeated -param flags with
// inference, rejecting malformed pairs.
func TestFlags(t *testing.T) {
	p := Flags{}
	for _, s := range []string{"n=3", "f=2.5", "ok=true", "name=Bob"} {
		if err := p.Set(s); err != nil {
			t.Fatalf("Set(%q): %v", s, err)
		}
	}
	want := Flags{
		"n": epgm.PVInt(3), "f": epgm.PVFloat(2.5),
		"ok": epgm.PVBool(true), "name": epgm.PVString("Bob"),
	}
	if len(p) != len(want) {
		t.Fatalf("got %d params, want %d", len(p), len(want))
	}
	for k, v := range want {
		if p[k] != v {
			t.Errorf("param %q = %v, want %v", k, p[k], v)
		}
	}
	if err := p.Set("malformed"); err == nil {
		t.Fatal("Set accepted a malformed pair")
	}
}

// TestFromJSON: JSON numbers become ints when integral, floats otherwise;
// bools and strings map directly; other types are rejected.
func TestFromJSON(t *testing.T) {
	got, err := FromJSON(map[string]any{
		"n": float64(3), "f": 2.5, "ok": true, "name": "Bob",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]epgm.PropertyValue{
		"n": epgm.PVInt(3), "f": epgm.PVFloat(2.5),
		"ok": epgm.PVBool(true), "name": epgm.PVString("Bob"),
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("param %q = %v, want %v", k, got[k], v)
		}
	}
	if _, err := FromJSON(map[string]any{"bad": []any{1}}); err == nil {
		t.Fatal("FromJSON accepted an array value")
	}
	if out, err := FromJSON(nil); err != nil || out != nil {
		t.Fatalf("FromJSON(nil) = %v, %v; want nil, nil", out, err)
	}
}
