// Package params parses query parameter values shared by the CLI's
// repeated -param name=value flags and the HTTP server's request decoder,
// with one type-inference rule for both front ends.
package params

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"gradoop/internal/epgm"
)

// Infer converts a textual value to a property value: integers first, then
// floats, then booleans, falling back to a string. The order matters —
// "1" is an int (not a float or true), "1.5" a float, "true" a bool.
func Infer(value string) epgm.PropertyValue {
	if n, err := strconv.ParseInt(value, 10, 64); err == nil {
		return epgm.PVInt(n)
	}
	if f, err := strconv.ParseFloat(value, 64); err == nil {
		return epgm.PVFloat(f)
	}
	if b, err := strconv.ParseBool(value); err == nil {
		return epgm.PVBool(b)
	}
	return epgm.PVString(value)
}

// ParsePair splits a "name=value" pair and infers the value's type.
func ParsePair(s string) (string, epgm.PropertyValue, error) {
	name, value, ok := strings.Cut(s, "=")
	if !ok {
		return "", epgm.PropertyValue{}, fmt.Errorf("expected name=value, got %q", s)
	}
	return name, Infer(value), nil
}

// Flags is a flag.Value collecting repeated -param name=value flags.
type Flags map[string]epgm.PropertyValue

// String implements flag.Value.
func (p Flags) String() string { return fmt.Sprintf("%v", map[string]epgm.PropertyValue(p)) }

// Set implements flag.Value, parsing name=value with type inference.
func (p Flags) Set(s string) error {
	name, v, err := ParsePair(s)
	if err != nil {
		return err
	}
	p[name] = v
	return nil
}

// FromJSON converts decoded JSON parameter values (the HTTP request body's
// "params" object) to property values: booleans and strings map directly,
// and a number becomes an int when it is integral (JSON has only floats).
func FromJSON(in map[string]any) (map[string]epgm.PropertyValue, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make(map[string]epgm.PropertyValue, len(in))
	for name, v := range in {
		switch x := v.(type) {
		case bool:
			out[name] = epgm.PVBool(x)
		case string:
			out[name] = epgm.PVString(x)
		case float64:
			if x == math.Trunc(x) && math.Abs(x) < 1<<53 {
				out[name] = epgm.PVInt(int64(x))
			} else {
				out[name] = epgm.PVFloat(x)
			}
		default:
			return nil, fmt.Errorf("params: unsupported JSON type %T for parameter %q", v, name)
		}
	}
	return out, nil
}
