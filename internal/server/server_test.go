package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/obs"
	"gradoop/internal/session"
)

func testGraph() *epgm.LogicalGraph {
	env := dataflow.NewEnv(dataflow.DefaultConfig(4))
	person := func(name string) epgm.Vertex {
		return epgm.Vertex{ID: epgm.NewID(), Label: "Person",
			Properties: epgm.Properties{}.Set("name", epgm.PVString(name))}
	}
	alice, bob, eve := person("Alice"), person("Bob"), person("Eve")
	e := func(s, t epgm.Vertex) epgm.Edge {
		return epgm.Edge{ID: epgm.NewID(), Label: "knows", Source: s.ID, Target: t.ID}
	}
	return epgm.GraphFromSlices(env, "g",
		[]epgm.Vertex{alice, bob, eve},
		[]epgm.Edge{e(alice, bob), e(bob, eve), e(eve, alice)})
}

// newTestServer wires a registry through both session and server so tests
// exercise the fully instrumented path end to end.
func newTestServer(t *testing.T, opts session.Options) *httptest.Server {
	t.Helper()
	r := obs.NewRegistry()
	opts.Metrics = r
	ts := httptest.NewServer(New(session.New(testGraph(), opts), Config{Metrics: r}))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, out
}

// TestQueryPost: POST /query executes and returns rows, a count and cache
// flags; the repeat is served from the result cache.
func TestQueryPost(t *testing.T) {
	ts := newTestServer(t, session.Options{})
	body := map[string]any{"query": "MATCH (a:Person)-[:knows]->(b) RETURN a.name, b.name"}

	resp, out := postJSON(t, ts.URL+"/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%v", resp.StatusCode, out)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("missing X-Trace-Id header")
	}
	if out["count"].(float64) != 3 {
		t.Fatalf("count=%v want 3", out["count"])
	}
	if len(out["rows"].([]any)) != 3 {
		t.Fatalf("rows=%v", out["rows"])
	}
	if out["fromResultCache"].(bool) {
		t.Fatal("first request claims a result-cache hit")
	}

	_, out2 := postJSON(t, ts.URL+"/query", body)
	if !out2["fromResultCache"].(bool) {
		t.Fatal("repeat request missed the result cache")
	}
}

// TestQueryGetWithParams: GET /query decodes q= and param.NAME= pairs with
// CLI type inference.
func TestQueryGetWithParams(t *testing.T) {
	ts := newTestServer(t, session.Options{})
	u := ts.URL + "/query?q=" + strings.ReplaceAll(
		"MATCH (a:Person) WHERE a.name = $name RETURN a.name", " ", "+") + "&param.name=Alice"
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%v", resp.StatusCode, out)
	}
	if out["count"].(float64) != 1 {
		t.Fatalf("count=%v want 1", out["count"])
	}
	rows := out["rows"].([]any)
	if v := rows[0].([]any)[0].(string); v != "Alice" {
		t.Fatalf("row value %q want Alice", v)
	}
}

// TestErrorMapping: invalid queries are 400 with a structured kind; a bad
// body is 400; wrong method 400.
func TestErrorMapping(t *testing.T) {
	ts := newTestServer(t, session.Options{})
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{"query": "MATCH ("})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error status=%d", resp.StatusCode)
	}
	if out["kind"] != "invalid" {
		t.Fatalf("kind=%v want invalid", out["kind"])
	}
	resp, out = postJSON(t, ts.URL+"/query",
		map[string]any{"query": "MATCH (a:Person) WHERE a.name = $x RETURN a.name"})
	if resp.StatusCode != http.StatusBadRequest || out["kind"] != "invalid" {
		t.Fatalf("missing param: status=%d kind=%v", resp.StatusCode, out["kind"])
	}
}

// TestExplainEndpoint: /explain renders a plan and fingerprint without
// executing; /query on the same text reports the same fingerprint.
func TestExplainEndpoint(t *testing.T) {
	ts := newTestServer(t, session.Options{})
	q := "MATCH (a:Person)-[:knows]->(b) RETURN a.name"
	resp, out := postJSON(t, ts.URL+"/explain", map[string]any{"query": q})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%v", resp.StatusCode, out)
	}
	plan := out["plan"].(string)
	if !strings.Contains(plan, "FilterAndProjectEdges") {
		t.Fatalf("plan:\n%s", plan)
	}
	fp := out["fingerprint"].(string)
	_, qout := postJSON(t, ts.URL+"/query", map[string]any{"query": q})
	if qout["fingerprint"].(string) != fp {
		t.Fatalf("fingerprints differ: %v vs %v", qout["fingerprint"], fp)
	}
}

// TestAnalyzeEndpoint: /analyze returns the EXPLAIN ANALYZE rendering with
// actual cardinalities.
func TestAnalyzeEndpoint(t *testing.T) {
	ts := newTestServer(t, session.Options{})
	resp, out := postJSON(t, ts.URL+"/analyze",
		map[string]any{"query": "MATCH (a:Person)-[:knows]->(b) RETURN a.name"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%v", resp.StatusCode, out)
	}
	analyzed := out["analyzedPlan"].(string)
	if !strings.Contains(analyzed, "act=") {
		t.Fatalf("analyzed plan lacks actual cardinalities:\n%s", analyzed)
	}
}

// TestChromeTraceCapture: trace:true returns an embedded Chrome trace with
// trace events.
func TestChromeTraceCapture(t *testing.T) {
	ts := newTestServer(t, session.Options{})
	resp, out := postJSON(t, ts.URL+"/query",
		map[string]any{"query": "MATCH (a:Person) RETURN a.name", "trace": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	trace, ok := out["chromeTrace"].(map[string]any)
	if !ok {
		t.Fatalf("chromeTrace missing or malformed: %T", out["chromeTrace"])
	}
	if events, ok := trace["traceEvents"].([]any); !ok || len(events) == 0 {
		t.Fatal("chromeTrace has no events")
	}
}

// TestMetricsJSONEndpoint: /metrics.json reports counters and hit ratios
// in both formats.
func TestMetricsJSONEndpoint(t *testing.T) {
	ts := newTestServer(t, session.Options{})
	body := map[string]any{"query": "MATCH (a:Person) RETURN a.name"}
	postJSON(t, ts.URL+"/query", body)
	postJSON(t, ts.URL+"/query", body)

	resp, out := postJSON(t, ts.URL+"/query", body) // third: result hit
	if resp.StatusCode != http.StatusOK || !out["fromResultCache"].(bool) {
		t.Fatalf("warm-up failed: %v", out)
	}
	mresp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m["queries"].(float64) != 3 {
		t.Fatalf("queries=%v want 3", m["queries"])
	}
	if m["resultHitRatio"].(float64) <= 0 {
		t.Fatalf("resultHitRatio=%v want > 0", m["resultHitRatio"])
	}
	tresp, err := http.Get(ts.URL + "/metrics.json?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var sb strings.Builder
	if _, err := copyAll(&sb, tresp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "plan cache:") || !strings.Contains(sb.String(), "ratio=") {
		t.Fatalf("text metrics:\n%s", sb.String())
	}
}

// TestPrometheusEndpoint: after a small workload /metrics serves a parsable
// Prometheus text exposition containing series from all three layers —
// engine (stage histograms), session (query and cache counters, admission
// wait) and server (per-endpoint request counts and latency).
func TestPrometheusEndpoint(t *testing.T) {
	ts := newTestServer(t, session.Options{})
	body := map[string]any{"query": "MATCH (a:Person)-[:knows]->(b) RETURN a.name, b.name"}
	postJSON(t, ts.URL+"/query", body)
	postJSON(t, ts.URL+"/query", body)
	postJSON(t, ts.URL+"/query", map[string]any{"query": "MATCH (a:Person"}) // 400

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type=%q want Prometheus text exposition", ct)
	}
	var sb strings.Builder
	if _, err := copyAll(&sb, mresp); err != nil {
		t.Fatal(err)
	}
	exp := sb.String()
	checkExposition(t, exp)
	for _, series := range []string{
		"gradoop_queries_total 3",
		`gradoop_query_errors_total{kind="invalid"} 1`,
		`gradoop_result_cache_total{outcome="hit"} 1`,
		`gradoop_plan_cache_total{outcome=`,
		"gradoop_admission_wait_seconds_count",
		`gradoop_query_duration_seconds{quantile="0.99"}`,
		`gradoop_stage_duration_seconds{kind=`,
		"gradoop_stages_total",
		`gradoop_http_requests_total{endpoint="/query",code="200"} 2`,
		`gradoop_http_requests_total{endpoint="/query",code="400"} 1`,
		`gradoop_http_request_seconds{endpoint="/query",quantile="0.5"}`,
	} {
		if !strings.Contains(exp, series) {
			t.Errorf("exposition missing %q:\n%s", series, exp)
		}
	}
}

// checkExposition asserts every line of a text exposition is structurally
// valid format 0.0.4: comments are HELP/TYPE, samples are "name[{labels}]
// value" with a parsable float.
func checkExposition(t *testing.T, exp string) {
	t.Helper()
	if exp == "" {
		t.Fatal("empty exposition")
	}
	for _, line := range strings.Split(strings.TrimRight(exp, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			t.Errorf("bad exposition line %q", line)
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Errorf("sample line without value: %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Errorf("unparsable sample value in %q: %v", line, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unclosed label set in %q", line)
			}
			name = name[:i]
		}
		for _, r := range name {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				t.Errorf("bad metric name in %q", line)
				break
			}
		}
	}
}

// TestJobsEndpoint: /jobs is empty when idle and lists an in-flight query
// with its running state and current stage while one executes.
func TestJobsEndpoint(t *testing.T) {
	ts := newTestServer(t, session.Options{NoResultCache: true})
	getJobs := func() (int, []any) {
		resp, err := http.Get(ts.URL + "/jobs")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Count int   `json:"count"`
			Jobs  []any `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Count, out.Jobs
	}
	if n, _ := getJobs(); n != 0 {
		t.Fatalf("idle server lists %d jobs", n)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			postJSONNoFatal(t, ts.URL+"/query", map[string]any{
				"query": "MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person) RETURN a.name, c.name",
			})
		}
	}()
	defer func() { close(stop); <-done }()

	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("never caught an in-flight job on /jobs")
		default:
		}
		_, jobs := getJobs()
		if len(jobs) == 0 {
			continue
		}
		j := jobs[0].(map[string]any)
		if q, _ := j["query"].(string); !strings.Contains(q, "MATCH") {
			t.Fatalf("job lost its query: %v", j)
		}
		if tid, _ := j["traceId"].(string); tid == "" {
			t.Fatalf("job lost its trace ID: %v", j)
		}
		state, _ := j["state"].(string)
		stage, _ := j["stage"].(float64)
		kind, _ := j["kind"].(string)
		if state == "running" && stage > 0 && kind != "" {
			return // acceptance criterion: live stage while it runs
		}
	}
}

// TestHealthz: liveness plus graph size.
func TestHealthz(t *testing.T) {
	ts := newTestServer(t, session.Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz: status=%d body=%v", resp.StatusCode, out)
	}
	if out["vertices"].(float64) != 3 || out["edges"].(float64) != 3 {
		t.Fatalf("graph size: %v", out)
	}
}

// TestConcurrentRequestsNeverHang: a burst of concurrent requests against a
// single-slot, zero-queue session all terminate with 200 or a structured
// 429 — never a hang, never another status.
func TestConcurrentRequestsNeverHang(t *testing.T) {
	ts := newTestServer(t, session.Options{MaxConcurrent: 1, MaxQueued: -1})
	const n = 16
	var wg sync.WaitGroup
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := postJSONNoFatal(t, ts.URL+"/query",
				map[string]any{"query": "MATCH (a:Person)-[:knows]->(b)-[:knows]->(c) RETURN a.name"})
			statuses[i] = resp
			if resp == http.StatusTooManyRequests && out["kind"] != "rejected" {
				t.Errorf("429 kind=%v want rejected", out["kind"])
			}
		}(i)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK && st != http.StatusTooManyRequests {
			t.Fatalf("request %d: status=%d", i, st)
		}
	}
}

func postJSONNoFatal(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Error(err)
		return 0, nil
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func copyAll(sb *strings.Builder, resp *http.Response) (int64, error) {
	buf := make([]byte, 4096)
	var n int64
	for {
		k, err := resp.Body.Read(buf)
		sb.Write(buf[:k])
		n += int64(k)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}
