package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gradoop/internal/cluster"
	"gradoop/internal/obs"
	"gradoop/internal/session"
)

// newClusterTestServer fronts the HTTP server with a 2-worker cluster the
// way `cypherd -cluster` does: the coordinator's instruments share the
// server registry, each worker ships telemetry from its own registry, and
// the session routes execution through the coordinator.
func newClusterTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	r := obs.NewRegistry()
	data := session.NewGraphData(testGraph())
	addrs := make([]string, 2)
	for i := range addrs {
		w := cluster.NewWorkerWith(fmt.Sprintf("w%d", i), data,
			cluster.WorkerOptions{Metrics: obs.NewRegistry()})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve(ln)
		t.Cleanup(w.Close)
		addrs[i] = ln.Addr().String()
	}
	coord, err := cluster.NewCoordinator(addrs, cluster.Options{Workers: 4, Metrics: r})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	ts := httptest.NewServer(New(
		session.New(testGraph(), session.Options{Workers: 4, Remote: coord, Metrics: r}),
		Config{Metrics: r}))
	t.Cleanup(ts.Close)
	return ts
}

// TestClusterWorkersEndpoint: /cluster/workers serves the roster — node
// names, liveness, job counts and whether each worker ships telemetry.
func TestClusterWorkersEndpoint(t *testing.T) {
	ts := newClusterTestServer(t)
	postJSON(t, ts.URL+"/query", map[string]any{
		"query": "MATCH (a:Person)-[:knows]->(b) RETURN a.name, b.name"})

	code, out := getJSON(t, ts.URL+"/cluster/workers")
	if code != http.StatusOK {
		t.Fatalf("status=%d body=%v", code, out)
	}
	if out["count"].(float64) != 2 {
		t.Fatalf("count=%v want 2", out["count"])
	}
	seen := map[string]bool{}
	for _, item := range out["workers"].([]any) {
		w := item.(map[string]any)
		seen[w["node"].(string)] = true
		if w["alive"] != true {
			t.Fatalf("worker %v not alive", w["node"])
		}
		if w["jobs"].(float64) < 1 {
			t.Fatalf("worker %v ran %v jobs, want >=1", w["node"], w["jobs"])
		}
		if w["telemetry"] != true {
			t.Fatalf("worker %v shipped no telemetry", w["node"])
		}
	}
	if !seen["w0"] || !seen["w1"] {
		t.Fatalf("roster %v, want w0 and w1", seen)
	}
}

// TestClusterWorkersPlainSession: the endpoint 404s on an in-process
// session — it exists only where a cluster does.
func TestClusterWorkersPlainSession(t *testing.T) {
	ts := newTestServer(t, session.Options{})
	code, out := getJSON(t, ts.URL+"/cluster/workers")
	if code != http.StatusNotFound {
		t.Fatalf("status=%d body=%v, want 404", code, out)
	}
	if !strings.Contains(out["error"].(string), "not a cluster session") {
		t.Fatalf("error=%v", out["error"])
	}
}

// TestClusterFederatedMetrics: one scrape of the coordinator's /metrics
// covers the whole cluster — the coordinator's own series plus every
// worker's last-shipped snapshot re-rooted under gradoop_cluster_ and
// labeled per worker, all structurally valid text format 0.0.4.
func TestClusterFederatedMetrics(t *testing.T) {
	ts := newClusterTestServer(t)
	postJSON(t, ts.URL+"/query", map[string]any{
		"query": "MATCH (a:Person)-[:knows]->(b) RETURN a.name, b.name"})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := copyAll(&sb, resp); err != nil {
		t.Fatal(err)
	}
	exp := sb.String()
	checkExposition(t, exp)

	for _, want := range []string{
		"gradoop_cluster_jobs_total ",
		"gradoop_cluster_telemetry_frames_total ",
		"gradoop_cluster_live_workers 2",
		`gradoop_cluster_worker_jobs_total{worker="w0"}`,
		`gradoop_cluster_worker_jobs_total{worker="w1"}`,
		`gradoop_cluster_worker_telemetry_bundles_total{worker="w0"}`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("federated exposition missing %q", want)
		}
	}
	// One header per federated family even with two workers exposing it.
	if n := strings.Count(exp, "# TYPE gradoop_cluster_worker_jobs_total"); n != 1 {
		t.Errorf("federated family header repeated %d times", n)
	}
}

// TestMetricsJSONCoversExpositionCluster reruns the exposition audit with
// the cluster families present: every coordinator instrument and federated
// worker series must be explicitly exempted or mapped, so new cluster
// telemetry cannot silently appear without an audit decision.
func TestMetricsJSONCoversExpositionCluster(t *testing.T) {
	ts := newClusterTestServer(t)
	postJSON(t, ts.URL+"/query", map[string]any{
		"query": "MATCH (a:Person)-[:knows]->(b) RETURN a.name, b.name"})
	auditExpositionCoverage(t, ts)
}

// TestClusterQueryTrace: a traced query through the cluster returns the
// merged Chrome trace — a coordinator lane plus one process lane per
// worker — in place of the single-process trace.
func TestClusterQueryTrace(t *testing.T) {
	ts := newClusterTestServer(t)
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{
		"query": "MATCH (a:Person)-[:knows]->(b) RETURN a.name, b.name",
		"trace": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%v", resp.StatusCode, out)
	}
	raw, err := json.Marshal(out["chromeTrace"])
	if err != nil || string(raw) == "null" {
		t.Fatalf("no chromeTrace in response: %v", err)
	}
	var ct struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(raw, &ct); err != nil {
		t.Fatalf("chromeTrace does not parse: %v", err)
	}
	if ct.Metadata["traceId"] == "" {
		t.Fatal("merged trace has no trace ID")
	}
	lanes := map[string]bool{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			lanes[fmt.Sprint(ev.Args["name"])] = true
		}
	}
	if len(lanes) != 3 || !lanes["coordinator"] || !lanes["worker w0"] || !lanes["worker w1"] {
		t.Fatalf("trace lanes %v, want coordinator + worker w0 + worker w1", lanes)
	}

	// The cluster report rides along with skew attribution per stage.
	cl, ok := out["cluster"].(map[string]any)
	if !ok {
		t.Fatal("no cluster report in response")
	}
	if cl["traceId"] != ct.Metadata["traceId"] {
		t.Fatalf("report trace ID %v != trace metadata %v", cl["traceId"], ct.Metadata["traceId"])
	}
	for _, item := range cl["stages"].([]any) {
		st := item.(map[string]any)
		if ns, ok := st["workerNs"].([]any); !ok || len(ns) != 2 {
			t.Fatalf("stage %v missing per-worker attribution: %v", st["stage"], st["workerNs"])
		}
	}
}
