package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"gradoop/internal/session"
)

// blowupQuery is the unconstrained cartesian product: |V|^5 embeddings over
// the 3-vertex test graph, enough to overflow the tiny budgets below.
const blowupQuery = `MATCH (a),(b),(c),(d),(e) RETURN a, b, c, d, e`

// TestMemoryBudgetMapsTo503: a budget kill surfaces over HTTP as 503 with
// Retry-After — the client did nothing wrong and may retry once the process
// has headroom — and the structured body carries kind and trace ID.
func TestMemoryBudgetMapsTo503(t *testing.T) {
	ts := newTestServer(t, session.Options{MemoryBudget: 2 << 10})
	resp, out := postJSON(t, ts.URL+"/query", map[string]any{"query": blowupQuery})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status=%d want 503 (body %v)", resp.StatusCode, out)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After=%q want 1", got)
	}
	if out["kind"] != "memory-budget" {
		t.Errorf("kind=%v want memory-budget", out["kind"])
	}
	if out["error"] == "" {
		t.Error("missing error message")
	}
	trace := resp.Header.Get("X-Trace-Id")
	if trace == "" || out["traceId"] != trace {
		t.Errorf("traceId=%v want header value %q", out["traceId"], trace)
	}
}

// TestQueueFullCarriesRetryAfter: the pre-existing 429 rejection now tells
// the client when to come back, and is distinguishable from the 503 both by
// status and by kind.
func TestQueueFullCarriesRetryAfter(t *testing.T) {
	ts := newTestServer(t, session.Options{MaxConcurrent: 1, MaxQueued: -1})
	const n = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var saw429 bool
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, _ := json.Marshal(map[string]any{
				"query": "MATCH (a:Person)-[:knows]->(b)-[:knows]->(c) RETURN a.name"})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var out map[string]any
			_ = json.NewDecoder(resp.Body).Decode(&out)
			if resp.StatusCode != http.StatusTooManyRequests {
				return
			}
			mu.Lock()
			saw429 = true
			mu.Unlock()
			if got := resp.Header.Get("Retry-After"); got != "1" {
				t.Errorf("429 Retry-After=%q want 1", got)
			}
			if out["kind"] != "rejected" {
				t.Errorf("429 kind=%v want rejected", out["kind"])
			}
			if out["traceId"] != resp.Header.Get("X-Trace-Id") {
				t.Errorf("429 traceId=%v want %q", out["traceId"], resp.Header.Get("X-Trace-Id"))
			}
		}()
	}
	wg.Wait()
	if !saw429 {
		t.Skip("burst never overflowed the single slot; nothing to assert")
	}
}

// TestGovernedServerStaysCorrect: with an ample budget the HTTP surface is
// unchanged — same rows, status 200, no Retry-After.
func TestGovernedServerStaysCorrect(t *testing.T) {
	ts := newTestServer(t, session.Options{MemoryBudget: 1 << 30})
	resp, out := postJSON(t, ts.URL+"/query",
		map[string]any{"query": "MATCH (a:Person)-[:knows]->(b) RETURN a.name, b.name"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%v", resp.StatusCode, out)
	}
	if out["count"].(float64) != 3 {
		t.Fatalf("count=%v want 3", out["count"])
	}
	if got := resp.Header.Get("Retry-After"); got != "" {
		t.Errorf("success response carries Retry-After=%q", got)
	}
}
