// Package server exposes a session over JSON-HTTP: /query executes Cypher
// (POST JSON body or GET with q= and param.NAME= pairs), /explain renders
// the cached template plan, /analyze executes with tracing and returns the
// EXPLAIN ANALYZE view, /metrics serves the Prometheus text exposition
// (federated with per-worker-labeled gradoop_cluster_* series when the
// session fronts a worker cluster), /cluster/workers the cluster roster
// with liveness and per-worker job counts,
// /metrics.json the service counters and cache hit ratios as JSON, /jobs
// the live table of in-flight queries with their current stage,
// /querystore/top, /querystore/fingerprint/{id} and /querystore/regressions
// the persistent query store's aggregates and drift feed (404 when no
// store is configured), /healthz liveness. Every response carries an X-Trace-Id header that is also
// stamped into the request context, so session log records (slow-query
// log included) correlate with it; structured session errors map to
// structured HTTP statuses (400 invalid, 429 queue full, 504 deadline,
// 500 execution failure) — an admitted or rejected request always gets an
// answer, never a hang. NewOpsMux serves pprof on a separate,
// operator-only listener.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gradoop/internal/core"
	"gradoop/internal/epgm"
	"gradoop/internal/obs"
	"gradoop/internal/params"
	"gradoop/internal/qstore"
	"gradoop/internal/session"
)

// Config carries the server's observability wiring. Both fields are
// optional: a nil Metrics registry leaves /metrics empty and all
// instruments nil (zero recording cost), a nil Logger disables the
// request log.
type Config struct {
	// Metrics is the registry the Prometheus exposition at /metrics reads.
	// Pass the same registry the session publishes into so engine, session
	// and server series share one scrape.
	Metrics *obs.Registry
	// Logger receives one structured record per request.
	Logger *slog.Logger
}

// Server handles HTTP requests against one session.
type Server struct {
	session  *session.Session
	mux      *http.ServeMux
	traceID  atomic.Int64
	registry *obs.Registry
	logger   *slog.Logger
	obs      httpInstruments
}

// New builds a server over a session.
func New(s *session.Session, cfg Config) *Server {
	srv := &Server{
		session:  s,
		mux:      http.NewServeMux(),
		registry: cfg.Metrics,
		logger:   cfg.Logger,
		obs:      newHTTPInstruments(cfg.Metrics),
	}
	srv.mux.HandleFunc("/query", srv.handleQuery)
	srv.mux.HandleFunc("/explain", srv.handleExplain)
	srv.mux.HandleFunc("/analyze", srv.handleAnalyze)
	srv.mux.HandleFunc("/metrics", srv.handlePrometheus)
	srv.mux.HandleFunc("/metrics.json", srv.handleMetricsJSON)
	srv.mux.HandleFunc("/jobs", srv.handleJobs)
	srv.mux.HandleFunc("/querystore/top", srv.handleQStoreTop)
	srv.mux.HandleFunc("/querystore/fingerprint/", srv.handleQStoreFingerprint)
	srv.mux.HandleFunc("/querystore/regressions", srv.handleQStoreRegressions)
	srv.mux.HandleFunc("/cluster/workers", srv.handleClusterWorkers)
	srv.mux.HandleFunc("/healthz", srv.handleHealthz)
	return srv
}

// clusterIntrospector returns the session's remote executor's observability
// surface, or nil when the server fronts an in-process session (or a remote
// executor that doesn't expose one).
func (s *Server) clusterIntrospector() session.ClusterIntrospector {
	ci, _ := s.session.Options().Remote.(session.ClusterIntrospector)
	return ci
}

// ServeHTTP implements http.Handler. It stamps the per-request trace ID
// into both the response header and the request context (the session's
// job table and slow-query log read it back from there), then records the
// request into the per-endpoint instruments and the request log.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := fmt.Sprintf("%08x", s.traceID.Add(1))
	w.Header().Set("X-Trace-Id", id)
	r = r.WithContext(obs.WithTraceID(r.Context(), id))
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	s.observe(r, sw, time.Since(start))
}

// queryRequest is the POST /query (and /analyze) body.
type queryRequest struct {
	Query string `json:"query"`
	// Params are the $parameter bindings; JSON numbers become ints when
	// integral.
	Params map[string]any `json:"params"`
	// Timeout is a Go duration string ("250ms", "5s"); empty inherits the
	// server default.
	Timeout string `json:"timeout"`
	// Trace requests a Chrome trace of this execution in the response.
	Trace bool `json:"trace"`
}

// queryResponse is the /query response.
type queryResponse struct {
	Columns         []string        `json:"columns,omitempty"`
	Rows            [][]any         `json:"rows"`
	Count           int64           `json:"count"`
	Fingerprint     string          `json:"fingerprint,omitempty"`
	PlanCacheHit    bool            `json:"planCacheHit"`
	FromResultCache bool            `json:"fromResultCache"`
	ElapsedMs       float64         `json:"elapsedMs"`
	QueueWaitMs     float64         `json:"queueWaitMs"`
	SimTimeMs       float64         `json:"simTimeMs"`
	ChromeTrace     json.RawMessage `json:"chromeTrace,omitempty"`
	// Cluster reports the distributed execution (roster size, recovery
	// attempts, per-stage predicted-vs-actual) when the server fronts a
	// worker cluster; absent for in-process executions and cache hits.
	Cluster *session.ClusterReport `json:"cluster,omitempty"`
}

// errorResponse is every non-2xx body. TraceID carries the request's
// X-Trace-Id so a client-side error report can be correlated with server
// logs without the client having to read the header.
type errorResponse struct {
	Error   string `json:"error"`
	Kind    string `json:"kind"`
	TraceID string `json:"traceId,omitempty"`
}

// decodeQuery extracts a session request from either verb: POST parses the
// JSON body, GET reads q= and repeated param.NAME=value pairs (CLI-style
// type inference via the shared params package).
func decodeQuery(r *http.Request) (session.Request, error) {
	var req session.Request
	switch r.Method {
	case http.MethodPost:
		var body queryRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			return req, fmt.Errorf("bad request body: %w", err)
		}
		p, err := params.FromJSON(body.Params)
		if err != nil {
			return req, err
		}
		req.Query = body.Query
		req.Params = p
		req.Trace = body.Trace
		if body.Timeout != "" {
			d, err := time.ParseDuration(body.Timeout)
			if err != nil {
				return req, fmt.Errorf("bad timeout %q: %w", body.Timeout, err)
			}
			req.Timeout = d
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.Query = q.Get("q")
		for name, values := range q {
			if !strings.HasPrefix(name, "param.") || len(values) == 0 {
				continue
			}
			if req.Params == nil {
				req.Params = map[string]epgm.PropertyValue{}
			}
			req.Params[strings.TrimPrefix(name, "param.")] = params.Infer(values[0])
		}
		if t := q.Get("timeout"); t != "" {
			d, err := time.ParseDuration(t)
			if err != nil {
				return req, fmt.Errorf("bad timeout %q: %w", t, err)
			}
			req.Timeout = d
		}
		req.Trace = q.Get("trace") == "true"
	default:
		return req, fmt.Errorf("method %s not allowed", r.Method)
	}
	req.Context = r.Context()
	return req, nil
}

// handleQuery executes a query and renders its rows.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, err := decodeQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.session.Execute(req)
	if err != nil {
		writeSessionError(w, r, err)
		return
	}
	out := queryResponse{
		Columns:         res.Columns,
		Rows:            jsonRows(res.Rows),
		Count:           res.Count,
		Fingerprint:     res.Fingerprint,
		PlanCacheHit:    res.PlanCacheHit,
		FromResultCache: res.FromResultCache,
		ElapsedMs:       ms(res.Elapsed),
		QueueWaitMs:     ms(res.QueueWait),
		SimTimeMs:       ms(res.Metrics.SimTime),
		Cluster:         res.Cluster,
	}
	if res.Trace != nil {
		var buf bytes.Buffer
		if err := res.Trace.WriteChromeTrace(&buf); err == nil {
			out.ChromeTrace = json.RawMessage(buf.Bytes())
		}
	} else if res.Cluster != nil && res.Cluster.Trace != nil {
		// Distributed tracing: the coordinator merged the workers' shipped
		// span bundles into one document, one process lane per worker.
		if raw, err := json.Marshal(res.Cluster.Trace); err == nil {
			out.ChromeTrace = json.RawMessage(raw)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleExplain renders the cached template plan without executing.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, err := decodeQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	plan, fingerprint, err := s.session.Explain(req.Query)
	if err != nil {
		writeSessionError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"plan":        plan,
		"fingerprint": fingerprint,
	})
}

// handleAnalyze executes with tracing and returns the EXPLAIN ANALYZE
// rendering (estimated vs. actual cardinalities, per-operator time).
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	req, err := decodeQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req.Trace = true
	res, err := s.session.Execute(req)
	if err != nil {
		writeSessionError(w, r, err)
		return
	}
	body := map[string]any{
		"analyzedPlan": res.Result.AnalyzedPlan(),
		// operators is the structured twin of the text rendering, in the
		// same qstore.OpMetrics schema the query store persists — one
		// schema for the live view and the history.
		"operators":    res.Result.AnalyzedOps(),
		"fingerprint":  res.Fingerprint,
		"count":        res.Count,
		"planCacheHit": res.PlanCacheHit,
		"elapsedMs":    ms(res.Elapsed),
		"memBytes":     res.Metrics.TotalMem,
	}
	if res.Cluster != nil {
		// Distributed runs trace on the workers: the per-stage
		// predicted-vs-actual table replaces the in-process span analysis.
		body["cluster"] = res.Cluster
	}
	writeJSON(w, http.StatusOK, body)
}

// qstoreOr404 returns the session's query store, or answers 404 (the
// store is an optional subsystem enabled by -qstore-dir).
func (s *Server) qstoreOr404(w http.ResponseWriter) *qstore.Store {
	st := s.session.QueryStore()
	if st == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "query store disabled (start with -qstore-dir)",
			Kind:  session.KindInvalid.String(),
		})
		return nil
	}
	return st
}

// handleQStoreTop lists per-fingerprint aggregates ordered by ?sort=
// (slowest | frequent | qerror, default slowest), at most ?limit= entries
// (default 20).
func (s *Server) handleQStoreTop(w http.ResponseWriter, r *http.Request) {
	st := s.qstoreOr404(w)
	if st == nil {
		return
	}
	sortBy := r.URL.Query().Get("sort")
	switch sortBy {
	case "", qstore.SortSlowest, qstore.SortFrequent, qstore.SortQError:
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown sort %q (want slowest, frequent or qerror)", sortBy))
		return
	}
	limit := 20
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", l))
			return
		}
		limit = n
	}
	if sortBy == "" {
		sortBy = qstore.SortSlowest
	}
	top := st.Top(sortBy, limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"sort":         sortBy,
		"count":        len(top),
		"fingerprints": top,
	})
}

// handleQStoreFingerprint serves one query shape's full history: the
// aggregate plus its recent records.
func (s *Server) handleQStoreFingerprint(w http.ResponseWriter, r *http.Request) {
	st := s.qstoreOr404(w)
	if st == nil {
		return
	}
	fp := strings.TrimPrefix(r.URL.Path, "/querystore/fingerprint/")
	if fp == "" || strings.Contains(fp, "/") {
		writeError(w, http.StatusBadRequest, fmt.Errorf("want /querystore/fingerprint/{id}"))
		return
	}
	agg, recs, ok := st.Fingerprint(fp)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: fmt.Sprintf("unknown fingerprint %q", fp),
			Kind:  session.KindInvalid.String(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"aggregate": agg,
		"records":   recs,
	})
}

// handleQStoreRegressions serves the drift-event feed, newest first — the
// machine-readable hook for adaptive planning.
func (s *Server) handleQStoreRegressions(w http.ResponseWriter, r *http.Request) {
	st := s.qstoreOr404(w)
	if st == nil {
		return
	}
	events := st.Regressions()
	writeJSON(w, http.StatusOK, map[string]any{
		"count":       len(events),
		"onsets":      st.RegressionCount(),
		"regressions": events,
	})
}

// handlePrometheus serves the registry's text exposition (Prometheus
// format 0.0.4). A server without a registry serves a valid empty body —
// scrapers see an up target with no series rather than an error. When the
// session fronts a worker cluster, the exposition is federated: the
// workers' last-shipped registry snapshots follow the coordinator's own
// series, re-rooted under gradoop_cluster_ and labeled per worker, so one
// scrape of the coordinator covers the whole cluster.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.registry.Exposition())
	if ci := s.clusterIntrospector(); ci != nil {
		members := ci.WorkerMetrics()
		feds := make([]obs.FederatedSnapshot, 0, len(members))
		for _, m := range members {
			feds = append(feds, obs.FederatedSnapshot{Label: m.Node, Snap: m.Snap})
		}
		var sb strings.Builder
		obs.WriteFederated(&sb, "gradoop_cluster_", "worker", feds)
		io.WriteString(w, sb.String())
	}
}

// handleClusterWorkers serves the cluster roster: node names, liveness,
// heartbeat ages and per-worker job counts. 404 on an in-process session —
// the endpoint exists only where a cluster does.
func (s *Server) handleClusterWorkers(w http.ResponseWriter, r *http.Request) {
	ci := s.clusterIntrospector()
	if ci == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "not a cluster session (start with -cluster)",
			Kind:  session.KindInvalid.String(),
		})
		return
	}
	workers := ci.ClusterWorkers()
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(workers),
		"workers": workers,
	})
}

// handleJobs lists the in-flight queries: canonical text, trace ID,
// queued/running state, elapsed time and — for running jobs — the current
// stage and, when traced, per-partition progress.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.session.Jobs()
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(jobs),
		"jobs":  jobs,
	})
}

// handleMetricsJSON reports service counters; ?format=text renders the CLI
// style, anything else JSON.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	m := s.session.Metrics()
	switch r.URL.Query().Get("format") {
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, m.Text())
	case "", "json":
		writeJSON(w, http.StatusOK, struct {
			session.Metrics
			PlanHitRatio   float64 `json:"planHitRatio"`
			ResultHitRatio float64 `json:"resultHitRatio"`
		}{m, m.PlanHitRatio(), m.ResultHitRatio()})
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want text or json)", r.URL.Query().Get("format")))
	}
}

// handleHealthz reports liveness and the served graph's size.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	vertices, edges := s.session.GraphSize()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"vertices": vertices,
		"edges":    edges,
	})
}

// retryAfterSeconds is the backoff hint on overload responses (429 queue
// full, 503 memory budget). Both conditions clear as soon as in-flight work
// completes and releases its slot or its reservations, so the hint is short:
// clients should retry quickly with jitter rather than give up for long.
const retryAfterSeconds = 1

// writeSessionError maps a classified session error to its HTTP status.
// Overload statuses carry Retry-After: 429 (queue full) and 503 (killed by
// the memory budget — the query may be fine, the process was overloaded,
// and retrying after pressure clears can succeed, which is exactly what
// distinguishes it from a 500).
func writeSessionError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusInternalServerError
	kind := session.KindFailed
	var se *session.Error
	if errors.As(err, &se) {
		kind = se.Kind
		switch se.Kind {
		case session.KindInvalid:
			status = http.StatusBadRequest
		case session.KindRejected:
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		case session.KindTimeout:
			status = http.StatusGatewayTimeout
		case session.KindMemoryBudget:
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		}
	}
	writeJSON(w, status, errorResponse{
		Error:   err.Error(),
		Kind:    kind.String(),
		TraceID: obs.TraceIDFrom(r.Context()),
	})
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Kind: session.KindInvalid.String()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// jsonRows converts result rows to JSON-encodable value arrays aligned
// with the response's columns.
func jsonRows(rows []core.Row) [][]any {
	out := make([][]any, len(rows))
	for i, row := range rows {
		vals := make([]any, len(row.Values))
		for j, v := range row.Values {
			vals[j] = jsonValue(v)
		}
		out[i] = vals
	}
	return out
}

// jsonValue maps a property value to its JSON form; int64s beyond JSON's
// exact range are stringified to avoid silent precision loss.
func jsonValue(v epgm.PropertyValue) any {
	switch v.Type() {
	case epgm.TypeBool:
		return v.Bool()
	case epgm.TypeInt64:
		n := v.Int()
		if n > 1<<53 || n < -(1<<53) {
			return strconv.FormatInt(n, 10)
		}
		return n
	case epgm.TypeFloat64:
		return v.Float()
	case epgm.TypeString:
		return v.Str()
	default:
		return nil
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
