package server

import (
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"gradoop/internal/obs"
)

// httpInstruments is the server's per-endpoint telemetry: request counts by
// endpoint × status code and latency histograms by endpoint. Registered
// once at construction (the obsregister analyzer rejects instrument
// creation inside handlers); nil-instrument recording is free when the
// server runs without a registry.
type httpInstruments struct {
	requests *obs.CounterVec2
	latency  *obs.HistogramVec
}

func newHTTPInstruments(r *obs.Registry) httpInstruments {
	return httpInstruments{
		requests: r.NewCounterVec2("gradoop_http_requests_total",
			"HTTP requests by endpoint and status code", "endpoint", "code"),
		latency: r.NewHistogramVec("gradoop_http_request_seconds",
			"HTTP request service time by endpoint", "endpoint", obs.ScaleNanos),
	}
}

// endpointLabel bounds the endpoint label to the server's known routes so
// scanners probing random paths cannot explode the series cardinality.
func endpointLabel(path string) string {
	switch path {
	case "/query", "/explain", "/analyze", "/metrics", "/metrics.json", "/jobs", "/healthz",
		"/querystore/top", "/querystore/regressions", "/cluster/workers":
		return path
	default:
		if strings.HasPrefix(path, "/querystore/fingerprint/") {
			return "/querystore/fingerprint"
		}
		return "other"
	}
}

// statusWriter captures the response status code for instrumentation and
// the request log. An unset code means the handler wrote a body without an
// explicit WriteHeader, which net/http treats as 200.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// observe records one served request into the instruments and the request
// log. ctx carries the request's trace ID, so the log record correlates
// with the X-Trace-Id response header.
func (s *Server) observe(r *http.Request, sw *statusWriter, elapsed time.Duration) {
	endpoint := endpointLabel(r.URL.Path)
	s.obs.requests.With(endpoint, strconv.Itoa(sw.status())).Inc()
	s.obs.latency.With(endpoint).Observe(int64(elapsed))
	if s.logger != nil {
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status()),
			slog.Duration("elapsed", elapsed),
		)
	}
}

// NewOpsMux returns the operator-only mux: the net/http/pprof profiling
// endpoints and nothing else. Bind it to a loopback or management address
// (cypherd -ops-addr), never the public listener — profiles expose
// internals and cost real CPU.
func NewOpsMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
