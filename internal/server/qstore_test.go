package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gradoop/internal/obs"
	"gradoop/internal/qstore"
	"gradoop/internal/session"
)

// newQStoreServer wires registry, query store and session together the way
// cypherd -qstore-dir does.
func newQStoreServer(t *testing.T, opts session.Options) (*httptest.Server, *qstore.Store) {
	t.Helper()
	r := obs.NewRegistry()
	st, err := qstore.Open(qstore.Options{Dir: t.TempDir(), Metrics: r})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	opts.Metrics = r
	opts.QueryStore = st
	ts := httptest.NewServer(New(session.New(testGraph(), opts), Config{Metrics: r}))
	t.Cleanup(ts.Close)
	return ts, st
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode, out
}

// TestQStoreEndpoints drives a mixed workload and validates the JSON shape
// of /querystore/top, /querystore/fingerprint/{id} and
// /querystore/regressions — the same checks CI's server-smoke runs with
// curl.
func TestQStoreEndpoints(t *testing.T) {
	ts, _ := newQStoreServer(t, session.Options{})
	queries := []string{
		"MATCH (a:Person)-[:knows]->(b) RETURN a.name, b.name",
		"MATCH (a:Person) RETURN a.name",
		"MATCH (a:Person)-[:knows]->(b)-[:knows]->(c) RETURN a.name, c.name",
	}
	for i := 0; i < 3; i++ {
		for _, q := range queries {
			postJSON(t, ts.URL+"/query", map[string]any{"query": q})
		}
	}
	postJSON(t, ts.URL+"/query", map[string]any{"query": "MATCH ((("}) // invalid

	status, out := getJSON(t, ts.URL+"/querystore/top?sort=frequent&limit=2")
	if status != http.StatusOK {
		t.Fatalf("top status=%d body=%v", status, out)
	}
	if out["sort"] != "frequent" {
		t.Fatalf("sort=%v", out["sort"])
	}
	fps := out["fingerprints"].([]any)
	if len(fps) != 2 || out["count"].(float64) != 2 {
		t.Fatalf("limit not applied: count=%v len=%d", out["count"], len(fps))
	}
	first := fps[0].(map[string]any)
	for _, key := range []string{"fingerprint", "query", "count", "p50Ns", "p95Ns", "p99Ns", "outcomes"} {
		if _, ok := first[key]; !ok {
			t.Errorf("top entry missing %q: %v", key, first)
		}
	}
	// Every query ran 3 times, so "frequent" ties at 3 per fingerprint.
	if first["count"].(float64) != 3 {
		t.Fatalf("top frequent count=%v want 3", first["count"])
	}

	fp := first["fingerprint"].(string)
	status, out = getJSON(t, ts.URL+"/querystore/fingerprint/"+fp)
	if status != http.StatusOK {
		t.Fatalf("fingerprint status=%d body=%v", status, out)
	}
	agg := out["aggregate"].(map[string]any)
	if agg["fingerprint"] != fp {
		t.Fatalf("aggregate fingerprint=%v want %s", agg["fingerprint"], fp)
	}
	recs := out["records"].([]any)
	if len(recs) != 3 {
		t.Fatalf("records=%d want 3", len(recs))
	}
	rec := recs[0].(map[string]any)
	for _, key := range []string{"t", "fingerprint", "planHash", "outcome", "rows", "elapsedNs", "bucket"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("record missing %q: %v", key, rec)
		}
	}

	status, out = getJSON(t, ts.URL+"/querystore/regressions")
	if status != http.StatusOK {
		t.Fatalf("regressions status=%d", status)
	}
	if _, ok := out["count"].(float64); !ok {
		t.Fatalf("regressions count missing: %v", out)
	}
	if _, ok := out["onsets"].(float64); !ok {
		t.Fatalf("regressions onsets missing: %v", out)
	}
	if _, ok := out["regressions"].([]any); !ok {
		t.Fatalf("regressions list missing: %v", out)
	}
}

// TestQStoreEndpointValidation: bad sort and bad limit are 400; unknown
// fingerprints and path abuse are 404/400.
func TestQStoreEndpointValidation(t *testing.T) {
	ts, _ := newQStoreServer(t, session.Options{})
	for url, want := range map[string]int{
		"/querystore/top?sort=fastest":            http.StatusBadRequest,
		"/querystore/top?limit=0":                 http.StatusBadRequest,
		"/querystore/top?limit=x":                 http.StatusBadRequest,
		"/querystore/top":                         http.StatusOK,
		"/querystore/fingerprint/":                http.StatusBadRequest,
		"/querystore/fingerprint/deadbeef":        http.StatusNotFound,
		"/querystore/fingerprint/a/b":             http.StatusBadRequest,
		"/querystore/regressions":                 http.StatusOK,
		"/querystore/top?sort=qerror&limit=10000": http.StatusOK,
	} {
		status, out := getJSON(t, ts.URL+url)
		if status != want {
			t.Errorf("%s: status=%d want %d (%v)", url, status, want, out)
		}
	}
}

// TestQStoreDisabled404: without a configured store every /querystore
// endpoint answers a structured 404.
func TestQStoreDisabled404(t *testing.T) {
	ts := newTestServer(t, session.Options{})
	for _, url := range []string{
		"/querystore/top", "/querystore/fingerprint/abc", "/querystore/regressions",
	} {
		status, out := getJSON(t, ts.URL+url)
		if status != http.StatusNotFound {
			t.Errorf("%s: status=%d want 404", url, status)
		}
		if msg, _ := out["error"].(string); !strings.Contains(msg, "qstore-dir") {
			t.Errorf("%s: error %q does not say how to enable the store", url, msg)
		}
	}
}

// TestAnalyzeOperators: /analyze carries the structured per-operator array
// in the query-store record schema alongside the text rendering, and the
// top-level materialized-bytes total.
func TestAnalyzeOperators(t *testing.T) {
	ts := newTestServer(t, session.Options{})
	resp, out := postJSON(t, ts.URL+"/analyze",
		map[string]any{"query": "MATCH (a:Person)-[:knows]->(b) RETURN a.name"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d body=%v", resp.StatusCode, out)
	}
	ops, ok := out["operators"].([]any)
	if !ok || len(ops) == 0 {
		t.Fatalf("operators missing or empty: %v", out["operators"])
	}
	// The text plan and the structured array describe the same tree.
	if lines := len(strings.Split(strings.TrimRight(out["analyzedPlan"].(string), "\n"), "\n")); len(ops) != lines {
		t.Errorf("operators=%d lines=%d — schemas diverged", len(ops), lines)
	}
	root := ops[0].(map[string]any)
	for _, key := range []string{"op", "depth", "act"} {
		if _, ok := root[key]; !ok {
			t.Errorf("operator entry missing %q: %v", key, root)
		}
	}
	if _, ok := out["memBytes"].(float64); !ok {
		t.Fatalf("memBytes missing: %v", out)
	}
}

// TestQStoreTopUnderLiveTraffic hammers /query while polling
// /querystore/top and /querystore/regressions — the -race half of the
// crash-safety satellite: aggregates are read while the writer appends.
func TestQStoreTopUnderLiveTraffic(t *testing.T) {
	ts, _ := newQStoreServer(t, session.Options{NoResultCache: true})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				postJSONNoFatal(t, ts.URL+"/query", map[string]any{
					"query": "MATCH (a:Person)-[:knows]->(b) RETURN a.name, b.name"})
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if status, _ := getJSON(t, ts.URL+"/querystore/top?sort=slowest"); status != http.StatusOK {
					t.Errorf("top status=%d", status)
				}
				if status, _ := getJSON(t, ts.URL+"/querystore/regressions"); status != http.StatusOK {
					t.Errorf("regressions status=%d", status)
				}
			}
		}()
	}
	wg.Wait()
	status, out := getJSON(t, ts.URL+"/querystore/top?sort=frequent&limit=1")
	if status != http.StatusOK {
		t.Fatalf("final top status=%d", status)
	}
	if n := out["fingerprints"].([]any)[0].(map[string]any)["count"].(float64); n != 75 {
		t.Fatalf("aggregate count=%v want 75", n)
	}
}

// sessionSeriesJSON maps every session-owned Prometheus family to its
// /metrics.json field. TestMetricsJSONCoversExposition fails when a series
// appears in the exposition without an entry here — new telemetry must
// either gain a JSON twin or be exempted explicitly below.
var sessionSeriesJSON = map[string]string{
	"gradoop_queries_total":               "queries",
	"gradoop_query_errors_total":          "invalid", // partitioned: rejected/timeouts/invalid/failed/memoryKilled
	"gradoop_slow_queries_total":          "slowQueries",
	"gradoop_plan_cache_total":            "planHits",
	"gradoop_result_cache_total":          "resultHits",
	"gradoop_plan_cache_entries":          "planEntries",
	"gradoop_result_cache_entries":        "resultEntries",
	"gradoop_result_cache_bytes":          "resultBytes",
	"gradoop_admission_queue_depth":       "queued",
	"gradoop_inflight_queries":            "inFlight",
	"gradoop_mem_budget_bytes":            "memBudget",
	"gradoop_mem_reserved_bytes":          "memReserved",
	"gradoop_mem_kills_total":             "memKills",
	"gradoop_mem_sheds_total":             "memSheds",
	"gradoop_mem_brownouts_total":         "memBrownouts",
	"gradoop_qstore_records_total":        "qstoreTotalRecords",
	"gradoop_qstore_regressions":          "qstoreRegressions",
	"gradoop_qstore_bytes":                "qstoreBytes",
	"gradoop_qstore_segments":             "qstoreSegments",
	"gradoop_qstore_fingerprints":         "qstoreFingerprints",
	"gradoop_qstore_dropped_writes_total": "qstoreDroppedWrites",
}

// expositionExempt lists families that intentionally have no scalar JSON
// twin: latency histograms (quantiles don't reduce to one number), engine
// internals aggregated under "cluster", and the server's own HTTP series.
var expositionExempt = map[string]bool{
	"gradoop_query_duration_seconds": true,
	"gradoop_admission_wait_seconds": true,
	"gradoop_stage_duration_seconds": true,
	"gradoop_stages_total":           true,
	"gradoop_http_requests_total":    true,
	"gradoop_http_request_seconds":   true,
	// Engine totals served inside /metrics.json's "cluster" object.
	"gradoop_spill_bytes_total":   true,
	"gradoop_shuffle_bytes_total": true,
	"gradoop_stage_retries_total": true,
	// Coordinator instruments: distributed-execution and telemetry-plane
	// counters scraped via Prometheus, surfaced to humans through /analyze
	// and /cluster/workers rather than /metrics.json.
	"gradoop_cluster_jobs_total":               true,
	"gradoop_cluster_recoveries_total":         true,
	"gradoop_cluster_worker_losses_total":      true,
	"gradoop_cluster_attempts":                 true,
	"gradoop_cluster_job_seconds":              true,
	"gradoop_cluster_wire_bytes_total":         true,
	"gradoop_cluster_stage_predicted_ns_total": true,
	"gradoop_cluster_stage_actual_ns_total":    true,
	"gradoop_cluster_telemetry_frames_total":   true,
	"gradoop_cluster_telemetry_bytes_total":    true,
	"gradoop_cluster_telemetry_dropped_total":  true,
	"gradoop_cluster_partial_telemetry_total":  true,
	"gradoop_cluster_live_workers":             true,
	// Federated worker series: each worker's gradoop_* families re-rooted
	// under gradoop_cluster_ and labeled per worker by the /metrics
	// federation. Remote state by design — never mirrored into the
	// coordinator's own /metrics.json.
	"gradoop_cluster_worker_spans_retained":          true,
	"gradoop_cluster_worker_spans_dropped_total":     true,
	"gradoop_cluster_worker_jobs_total":              true,
	"gradoop_cluster_worker_job_failures_total":      true,
	"gradoop_cluster_worker_job_seconds":             true,
	"gradoop_cluster_worker_telemetry_bytes_total":   true,
	"gradoop_cluster_worker_telemetry_bundles_total": true,
	"gradoop_cluster_stage_duration_seconds":         true,
	"gradoop_cluster_stages_total":                   true,
	"gradoop_cluster_shuffle_bytes_total":            true,
	"gradoop_cluster_spill_bytes_total":              true,
	"gradoop_cluster_stage_retries_total":            true,
}

// TestMetricsJSONCoversExposition scrapes /metrics after a workload that
// touches every subsystem (queries, errors, caches, query store) and
// asserts each exposition family either maps to a present /metrics.json
// field or is explicitly exempted. This is the audit that keeps the JSON
// snapshot from silently lagging the exposition.
func TestMetricsJSONCoversExposition(t *testing.T) {
	ts, _ := newQStoreServer(t, session.Options{})
	body := map[string]any{"query": "MATCH (a:Person)-[:knows]->(b) RETURN a.name"}
	postJSON(t, ts.URL+"/query", body)
	postJSON(t, ts.URL+"/query", body)
	postJSON(t, ts.URL+"/query", map[string]any{"query": "MATCH ((("})
	auditExpositionCoverage(t, ts)
}

// auditExpositionCoverage scrapes a server's /metrics and asserts every
// family either maps to a present /metrics.json field or is explicitly
// exempted. Shared by the plain audit above and the cluster-backed audit,
// whose exposition adds the coordinator and federated worker families.
func auditExpositionCoverage(t *testing.T, ts *httptest.Server) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := copyAll(&sb, resp); err != nil {
		t.Fatal(err)
	}
	families := map[string]bool{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		// Fold histogram sub-series onto their family name.
		for _, suffix := range []string{"_count", "_sum"} {
			if base := strings.TrimSuffix(name, suffix); base != name {
				if sessionSeriesJSON[base] != "" || expositionExempt[base] {
					name = base
				}
			}
		}
		families[name] = true
	}
	if len(families) == 0 {
		t.Fatal("empty exposition")
	}

	_, mjson := getJSON(t, ts.URL+"/metrics.json")
	for fam := range families {
		if expositionExempt[fam] {
			continue
		}
		field, ok := sessionSeriesJSON[fam]
		if !ok {
			t.Errorf("exposition family %s has no /metrics.json mapping — add a JSON field or exempt it", fam)
			continue
		}
		if _, present := mjson[field]; !present {
			t.Errorf("family %s maps to JSON field %q which /metrics.json does not serve", fam, field)
		}
	}
	// And the reverse sanity check: mapped fields actually exist.
	for fam, field := range sessionSeriesJSON {
		if _, present := mjson[field]; !present {
			t.Errorf("mapping for %s points at missing JSON field %q", fam, field)
		}
	}
}
