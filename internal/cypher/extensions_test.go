package cypher

import (
	"testing"

	"gradoop/internal/epgm"
)

func TestParseReturnModifiers(t *testing.T) {
	q := mustParse(t, `MATCH (m:Movie) RETURN DISTINCT m.title AS title, count(*) AS n
		ORDER BY n DESC, title ASC SKIP 5 LIMIT 10`)
	ret := q.Return
	if !ret.Distinct {
		t.Fatal("distinct")
	}
	if len(ret.Items) != 2 {
		t.Fatalf("items=%d", len(ret.Items))
	}
	fc, ok := ret.Items[1].Expr.(*FuncCall)
	if !ok || fc.Name != "count" || !fc.Star || !fc.Aggregate() {
		t.Fatalf("count(*): %+v", ret.Items[1].Expr)
	}
	if len(ret.OrderBy) != 2 || !ret.OrderBy[0].Desc || ret.OrderBy[1].Desc {
		t.Fatalf("orderBy: %+v", ret.OrderBy)
	}
	if ret.Skip != 5 || ret.Limit != 10 {
		t.Fatalf("skip/limit: %d/%d", ret.Skip, ret.Limit)
	}
}

func TestParseReturnDefaultsNoModifiers(t *testing.T) {
	q := mustParse(t, `MATCH (m) RETURN m`)
	if q.Return.Skip != -1 || q.Return.Limit != -1 || q.Return.Distinct {
		t.Fatalf("defaults: %+v", q.Return)
	}
	q2 := mustParse(t, `MATCH (m)`)
	if q2.Return.Skip != -1 || q2.Return.Limit != -1 {
		t.Fatalf("implicit star defaults: %+v", q2.Return)
	}
}

func TestParseAggregateFunctions(t *testing.T) {
	q := mustParse(t, `MATCH (m) RETURN count(m), sum(m.x), min(m.x), max(m.x), avg(m.x)`)
	names := []string{"count", "sum", "min", "max", "avg"}
	for i, item := range q.Return.Items {
		fc := item.Expr.(*FuncCall)
		if fc.Name != names[i] || fc.Star {
			t.Fatalf("item %d: %+v", i, fc)
		}
	}
	if _, err := Parse(`MATCH (m) RETURN frobnicate(m)`); err == nil {
		t.Fatal("unknown function should error")
	}
	if _, err := Parse(`MATCH (m) RETURN sum(*)`); err == nil {
		t.Fatal("sum(*) should error")
	}
}

func TestParseStringPredicatesAndIn(t *testing.T) {
	q := mustParse(t, `MATCH (m) WHERE m.t STARTS WITH 'A' AND m.t ENDS WITH 'z'
		AND m.t CONTAINS 'x' AND m.y IN [1, 2, 3] RETURN *`)
	conj := splitConjuncts(q.Where)
	ops := []BinaryOp{OpStartsWith, OpEndsWith, OpContains, OpIn}
	for i, c := range conj {
		if c.(*BinaryExpr).Op != ops[i] {
			t.Fatalf("conjunct %d: %v", i, ExprString(c))
		}
	}
	list := conj[3].(*BinaryExpr).R.(*ListExpr)
	if len(list.Elems) != 3 {
		t.Fatalf("list: %v", ExprString(list))
	}
	if _, err := Parse(`MATCH (m) WHERE m.y IN 5 RETURN *`); err == nil {
		t.Fatal("IN non-list should error")
	}
}

func TestParseIsNull(t *testing.T) {
	q := mustParse(t, `MATCH (m) WHERE m.a IS NULL AND m.b IS NOT NULL RETURN *`)
	conj := splitConjuncts(q.Where)
	a := conj[0].(*IsNullExpr)
	b := conj[1].(*IsNullExpr)
	if a.Negated || !b.Negated {
		t.Fatalf("is null flags: %v %v", a.Negated, b.Negated)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	q := mustParse(t, `MATCH (m) WHERE m.a + m.b * 2 = 10 RETURN *`)
	cmp := q.Where.(*BinaryExpr)
	add := cmp.L.(*BinaryExpr)
	if add.Op != OpAdd {
		t.Fatalf("top of lhs: %v", ExprString(cmp.L))
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != OpMul {
		t.Fatalf("right of +: %v", ExprString(add.R))
	}
}

func TestParseUnaryMinusFoldsLiterals(t *testing.T) {
	q := mustParse(t, `MATCH (m) WHERE m.a = -5 AND m.b = -2.5 RETURN *`)
	conj := splitConjuncts(q.Where)
	if lit := conj[0].(*BinaryExpr).R.(*Literal); lit.Value.Int() != -5 {
		t.Fatalf("int fold: %v", lit.Value)
	}
	if lit := conj[1].(*BinaryExpr).R.(*Literal); lit.Value.Float() != -2.5 {
		t.Fatalf("float fold: %v", lit.Value)
	}
}

func TestEvalArithmetic(t *testing.T) {
	lookup := func(v, k string) epgm.PropertyValue { return epgm.Null }
	eval := func(src string) epgm.PropertyValue {
		q := mustParse(t, `MATCH (n) RETURN `+src+` AS x`)
		return EvalValue(q.Return.Items[0].Expr, lookup)
	}
	if got := eval(`2 + 3 * 4`); got.Int() != 14 {
		t.Fatalf("2+3*4=%v", got)
	}
	if got := eval(`7 / 2`); got.Int() != 3 {
		t.Fatalf("7/2=%v", got)
	}
	if got := eval(`7.0 / 2`); got.Float() != 3.5 {
		t.Fatalf("7.0/2=%v", got)
	}
	if got := eval(`7 % 4`); got.Int() != 3 {
		t.Fatalf("7%%4=%v", got)
	}
	if got := eval(`1 / 0`); !got.IsNull() {
		t.Fatalf("1/0=%v", got)
	}
	if got := eval(`'a' + 'b'`); got.Str() != "ab" {
		t.Fatalf("concat=%v", got)
	}
	if got := eval(`'a' + 1`); !got.IsNull() {
		t.Fatalf("mixed=%v", got)
	}
}

func TestQueryGraphOrderByValidation(t *testing.T) {
	q := mustParse(t, `MATCH (m) RETURN m.x AS v ORDER BY v`)
	if _, err := BuildQueryGraph(q, nil); err != nil {
		t.Fatalf("alias in ORDER BY: %v", err)
	}
	q2 := mustParse(t, `MATCH (m) RETURN m.x ORDER BY nope.y`)
	if _, err := BuildQueryGraph(q2, nil); err == nil {
		t.Fatal("undeclared ORDER BY var should error")
	}
	// ORDER BY properties register projections.
	q3 := mustParse(t, `MATCH (m) RETURN m ORDER BY m.year`)
	g, err := BuildQueryGraph(q3, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := g.VertexByVar("m")
	if len(m.Projection) != 1 || m.Projection[0] != "year" {
		t.Fatalf("projection: %v", m.Projection)
	}
}

func TestEvalStringPredicatesAndIn(t *testing.T) {
	props := epgm.Properties{}.Set("s", epgm.PVString("hello")).Set("n", epgm.PVInt(2))
	lookup := func(v, k string) epgm.PropertyValue { return props.Get(k) }
	check := func(src string, want bool) {
		t.Helper()
		q := mustParse(t, `MATCH (x) WHERE `+src+` RETURN *`)
		if got := EvalPredicate(q.Where, lookup); got != want {
			t.Fatalf("%s = %v, want %v", src, got, want)
		}
	}
	check(`x.s STARTS WITH 'he'`, true)
	check(`x.s STARTS WITH 'lo'`, false)
	check(`x.s ENDS WITH 'lo'`, true)
	check(`x.s CONTAINS 'ell'`, true)
	check(`x.n IN [1, 2, 3]`, true)
	check(`x.n IN [4, 5]`, false)
	check(`x.missing IN [1]`, false)
	check(`x.missing IS NULL`, true)
	check(`x.s IS NOT NULL`, true)
	check(`x.n + 1 = 3`, true)
	check(`x.n * x.n = 4`, true)
}
