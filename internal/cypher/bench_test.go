package cypher

import "testing"

const benchQuery = `
	MATCH (p1:Person)-[s:studyAt]->(u:University),
	      (p2:Person)-[:studyAt]->(u),
	      (p1)-[e:knows*1..3]->(p2)
	WHERE p1.gender <> p2.gender
	  AND u.name = 'Uni Leipzig'
	  AND s.classYear > 2014
	RETURN p1.name AS a, p2.name AS b ORDER BY a LIMIT 10`

func BenchmarkLex(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Lex(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildQueryGraph(b *testing.B) {
	q, err := Parse(benchQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildQueryGraph(q, nil); err != nil {
			b.Fatal(err)
		}
	}
}
