package cypher

import (
	"fmt"
	"sort"

	"gradoop/internal/epgm"
)

// QueryGraph is the simplified form of a parsed query (Definition 2.2): a
// graph of query vertices and query edges, each carrying its element-centric
// predicate conjuncts, plus the residual predicates that span multiple
// query elements and must be evaluated on embeddings.
type QueryGraph struct {
	Vertices []*QueryVertex
	Edges    []*QueryEdge
	// Global holds WHERE conjuncts referencing more than one variable,
	// evaluated by a FilterEmbeddings operator once all referenced
	// variables are bound.
	Global []Expr
	// Optional lists the OPTIONAL MATCH groups in clause order; each is
	// evaluated via a left outer join against the preceding solutions.
	Optional []*OptionalGroup
	// Existence lists exists()/NOT exists() WHERE conjuncts, planned as
	// semi respectively anti joins against the mandatory solutions.
	Existence []*ExistenceGroup
	// Return is the original RETURN clause.
	Return ReturnClause

	vertexByVar map[string]*QueryVertex
	edgeByVar   map[string]*QueryEdge
}

// OptionalGroup is one OPTIONAL MATCH clause: the query vertices it
// introduces, its edges (which may connect to variables bound earlier), and
// the residual predicates evaluated on candidate extensions inside the
// outer join.
type OptionalGroup struct {
	Vertices   []*QueryVertex
	Edges      []*QueryEdge
	Predicates []Expr
}

// ExistenceGroup is one exists() pattern predicate. Its variables are
// scoped to the predicate: they are matched to decide existence but do not
// appear in the result.
type ExistenceGroup struct {
	OptionalGroup
	Negated bool
}

// QueryVertex is one vertex of the query graph with its predicate function
// θv decomposed into a label alternation and property conjuncts.
type QueryVertex struct {
	Var        string
	Anonymous  bool
	Labels     []string // empty = any label; otherwise an alternation
	Predicates []Expr   // conjuncts referencing only this variable
	// Projection lists the property keys of this vertex needed after the
	// leaf operator: by cross-element predicates or the RETURN clause.
	Projection []string
}

// QueryEdge is one edge of the query graph, directed from Source to Target
// query vertices (direction already normalized), possibly a variable length
// path expression.
type QueryEdge struct {
	Var        string
	Anonymous  bool
	Types      []string // empty = any type; otherwise an alternation
	Source     string   // query vertex variable
	Target     string   // query vertex variable
	Undirected bool
	MinHops    int
	MaxHops    int
	Predicates []Expr
	Projection []string
}

// IsVarLength reports whether the edge is a variable length path.
func (e *QueryEdge) IsVarLength() bool { return e.MinHops != 1 || e.MaxHops != 1 }

// VertexByVar returns the query vertex bound to a variable.
func (g *QueryGraph) VertexByVar(v string) (*QueryVertex, bool) {
	qv, ok := g.vertexByVar[v]
	return qv, ok
}

// EdgeByVar returns the query edge bound to a variable.
func (g *QueryGraph) EdgeByVar(v string) (*QueryEdge, bool) {
	qe, ok := g.edgeByVar[v]
	return qe, ok
}

// AssembleQueryGraph builds a query graph directly from its components,
// reconstructing the variable lookup tables. It serves callers (tests,
// baselines) that programmatically derive a variant of an existing query
// graph.
func AssembleQueryGraph(vertices []*QueryVertex, edges []*QueryEdge, global []Expr, ret ReturnClause) *QueryGraph {
	g := &QueryGraph{
		Vertices:    vertices,
		Edges:       edges,
		Global:      global,
		Return:      ret,
		vertexByVar: map[string]*QueryVertex{},
		edgeByVar:   map[string]*QueryEdge{},
	}
	for _, qv := range vertices {
		g.vertexByVar[qv.Var] = qv
	}
	for _, qe := range edges {
		g.edgeByVar[qe.Var] = qe
	}
	return g
}

// BuildQueryGraph simplifies a parsed query into a query graph, resolving
// $parameters from params. It validates that WHERE and RETURN reference only
// declared variables.
func BuildQueryGraph(q *Query, params map[string]epgm.PropertyValue) (*QueryGraph, error) {
	return buildQueryGraph(q, resolver{params: params})
}

// BuildQueryGraphDeferred simplifies a parsed query into a query graph
// template: $parameters are kept as Param expressions instead of being
// resolved, so one template serves every binding of the same query. Bind
// later substitutes concrete values (and reports missing parameters). The
// input query AST is not mutated, so it may be cached alongside the result.
func BuildQueryGraphDeferred(q *Query) (*QueryGraph, error) {
	return buildQueryGraph(q, resolver{deferred: true})
}

// resolver is the parameter-substitution strategy of one query-graph build:
// eager (substitute from params, erroring on missing values) or deferred
// (keep Param expressions for a later Bind).
type resolver struct {
	params   map[string]epgm.PropertyValue
	deferred bool
}

// expr resolves $parameters inside a full expression tree.
func (r resolver) expr(e Expr) (Expr, error) {
	if r.deferred {
		return e, nil
	}
	return resolveParams(e, r.params)
}

// valueExpr resolves an inline property-map value (`{key: value}`) to the
// expression stored in the equality predicate: a Literal eagerly, or the
// original Literal/Param expression when deferred.
func (r resolver) valueExpr(e Expr) (Expr, error) {
	if r.deferred {
		switch e.(type) {
		case *Literal, *Param:
			return e, nil
		default:
			return nil, fmt.Errorf("cypher: expected literal or parameter, got %s", ExprString(e))
		}
	}
	lit, err := resolveValue(e, r.params)
	if err != nil {
		return nil, err
	}
	return &Literal{Value: lit}, nil
}

func buildQueryGraph(q *Query, res resolver) (*QueryGraph, error) {
	g := &QueryGraph{
		Return:      q.Return,
		vertexByVar: map[string]*QueryVertex{},
		edgeByVar:   map[string]*QueryEdge{},
	}
	anonV, anonE := 0, 0

	// getVertex resolves a node pattern to its query vertex. group is nil
	// for the mandatory MATCH part; inside an OPTIONAL MATCH, new vertices
	// are recorded on the group and re-bound variables must not gain new
	// constraints (that would retroactively change the mandatory part).
	getVertex := func(n NodePattern, group *OptionalGroup) (*QueryVertex, error) {
		name := n.Var
		anonymous := false
		if name == "" {
			name = fmt.Sprintf("__v%d", anonV)
			anonV++
			anonymous = true
		}
		if _, clash := g.edgeByVar[name]; clash {
			return nil, fmt.Errorf("cypher: variable %q used for both a vertex and an edge", name)
		}
		qv, ok := g.vertexByVar[name]
		if !ok {
			qv = &QueryVertex{Var: name, Anonymous: anonymous, Labels: n.Labels}
			g.vertexByVar[name] = qv
			if group != nil {
				group.Vertices = append(group.Vertices, qv)
			} else {
				g.Vertices = append(g.Vertices, qv)
			}
		} else {
			if group != nil && (len(n.Labels) > 0 || len(n.Props) > 0) {
				return nil, fmt.Errorf("cypher: OPTIONAL MATCH must not add constraints to already-bound variable %q", name)
			}
			if len(n.Labels) > 0 {
				if len(qv.Labels) == 0 {
					qv.Labels = n.Labels
				} else {
					qv.Labels = intersectStrings(qv.Labels, n.Labels)
					if len(qv.Labels) == 0 {
						return nil, fmt.Errorf("cypher: variable %q has contradictory label constraints", name)
					}
				}
			}
		}
		for _, pe := range n.Props {
			value, err := res.valueExpr(pe.Value)
			if err != nil {
				return nil, err
			}
			qv.Predicates = append(qv.Predicates, &BinaryExpr{
				Op: OpEQ,
				L:  &PropertyAccess{Var: name, Key: pe.Key},
				R:  value,
			})
		}
		return qv, nil
	}

	processPatterns := func(patterns []PatternPart, group *OptionalGroup) error {
		for _, part := range patterns {
			var prev *QueryVertex
			for i, n := range part.Nodes {
				qv, err := getVertex(n, group)
				if err != nil {
					return err
				}
				if i > 0 {
					rel := part.Rels[i-1]
					name := rel.Var
					anonymous := false
					if name == "" {
						name = fmt.Sprintf("__e%d", anonE)
						anonE++
						anonymous = true
					}
					if _, clash := g.vertexByVar[name]; clash {
						return fmt.Errorf("cypher: variable %q used for both a vertex and an edge", name)
					}
					if _, dup := g.edgeByVar[name]; dup {
						return fmt.Errorf("cypher: relationship variable %q bound more than once", name)
					}
					qe := &QueryEdge{
						Var:       name,
						Anonymous: anonymous,
						Types:     rel.Types,
						MinHops:   rel.MinHops,
						MaxHops:   rel.MaxHops,
					}
					if group != nil && qe.IsVarLength() {
						return fmt.Errorf("cypher: variable length paths are not supported in OPTIONAL MATCH or exists()")
					}
					switch rel.Direction {
					case DirOut:
						qe.Source, qe.Target = prev.Var, qv.Var
					case DirIn:
						qe.Source, qe.Target = qv.Var, prev.Var
					default:
						qe.Source, qe.Target = prev.Var, qv.Var
						qe.Undirected = true
					}
					for _, pe := range rel.Props {
						value, err := res.valueExpr(pe.Value)
						if err != nil {
							return err
						}
						qe.Predicates = append(qe.Predicates, &BinaryExpr{
							Op: OpEQ,
							L:  &PropertyAccess{Var: name, Key: pe.Key},
							R:  value,
						})
					}
					g.edgeByVar[name] = qe
					if group != nil {
						group.Edges = append(group.Edges, qe)
					} else {
						g.Edges = append(g.Edges, qe)
					}
				}
				prev = qv
			}
		}
		return nil
	}

	if err := processPatterns(q.Patterns, nil); err != nil {
		return nil, err
	}

	// Distribute WHERE conjuncts.
	if q.Where != nil {
		if containsAggregate(q.Where) {
			return nil, fmt.Errorf("cypher: aggregate functions are not allowed in WHERE")
		}
		resolved, err := res.expr(q.Where)
		if err != nil {
			return nil, err
		}
		for _, conj := range splitConjuncts(resolved) {
			// exists() predicates become semi/anti-join groups; they are
			// only supported as top-level conjuncts (possibly negated).
			if ex, negated, ok := asExistsConjunct(conj); ok {
				group := &ExistenceGroup{Negated: negated}
				if err := processPatterns([]PatternPart{ex.Pattern}, &group.OptionalGroup); err != nil {
					return nil, err
				}
				if len(group.Edges) == 0 {
					return nil, fmt.Errorf("cypher: exists() requires a pattern with at least one relationship")
				}
				g.Existence = append(g.Existence, group)
				continue
			}
			if containsExists(conj) {
				return nil, fmt.Errorf("cypher: exists() must appear as a top-level conjunct (optionally under NOT)")
			}
			vars := ExprVars(conj)
			if err := g.validateVars(vars, "WHERE"); err != nil {
				return nil, err
			}
			if len(vars) == 1 {
				v := vars[0]
				if qv, ok := g.vertexByVar[v]; ok {
					qv.Predicates = append(qv.Predicates, conj)
					continue
				}
				if qe, ok := g.edgeByVar[v]; ok && !qe.IsVarLength() {
					qe.Predicates = append(qe.Predicates, conj)
					continue
				}
				// Predicates on variable-length paths are evaluated per hop
				// inside ExpandEmbeddings; keep them on the edge as well.
				if qe, ok := g.edgeByVar[v]; ok {
					qe.Predicates = append(qe.Predicates, conj)
					continue
				}
			}
			g.Global = append(g.Global, conj)
		}
	}

	// OPTIONAL MATCH groups, in clause order.
	for _, om := range q.Optional {
		group := &OptionalGroup{}
		if err := processPatterns(om.Patterns, group); err != nil {
			return nil, err
		}
		if len(group.Edges) == 0 && len(group.Vertices) == 0 {
			return nil, fmt.Errorf("cypher: OPTIONAL MATCH introduces no new pattern elements")
		}
		newVars := map[string]bool{}
		for _, qv := range group.Vertices {
			newVars[qv.Var] = true
		}
		for _, qe := range group.Edges {
			newVars[qe.Var] = true
		}
		if om.Where != nil {
			if containsAggregate(om.Where) {
				return nil, fmt.Errorf("cypher: aggregate functions are not allowed in WHERE")
			}
			resolved, err := res.expr(om.Where)
			if err != nil {
				return nil, err
			}
			for _, conj := range splitConjuncts(resolved) {
				if containsExists(conj) {
					return nil, fmt.Errorf("cypher: exists() is not supported in OPTIONAL MATCH WHERE")
				}
				vars := ExprVars(conj)
				if err := g.validateVars(vars, "OPTIONAL MATCH WHERE"); err != nil {
					return nil, err
				}
				// Single-variable conjuncts on a variable this group
				// introduced push into its leaf; everything else is checked
				// on candidate extensions inside the outer join.
				if len(vars) == 1 && newVars[vars[0]] {
					v := vars[0]
					if qv, ok := g.vertexByVar[v]; ok {
						qv.Predicates = append(qv.Predicates, conj)
						continue
					}
					if qe, ok := g.edgeByVar[v]; ok {
						qe.Predicates = append(qe.Predicates, conj)
						continue
					}
				}
				group.Predicates = append(group.Predicates, conj)
			}
		}
		g.Optional = append(g.Optional, group)
	}

	// Validate RETURN and collect per-variable property projections.
	need := map[string]map[string]struct{}{}
	addNeed := func(variable, key string) {
		if need[variable] == nil {
			need[variable] = map[string]struct{}{}
		}
		need[variable][key] = struct{}{}
	}
	for _, conj := range g.Global {
		collectPropAccesses(conj, addNeed)
	}
	for _, group := range g.Optional {
		for _, conj := range group.Predicates {
			collectPropAccesses(conj, addNeed)
		}
	}
	if !g.Return.Star {
		for i, item := range g.Return.Items {
			resolved, err := res.expr(item.Expr)
			if err != nil {
				return nil, err
			}
			g.Return.Items[i].Expr = resolved
			if err := g.validateVars(ExprVars(resolved), "RETURN"); err != nil {
				return nil, err
			}
			collectPropAccesses(resolved, addNeed)
		}
	}
	aliases := map[string]bool{}
	for _, item := range g.Return.Items {
		if item.Alias != "" {
			aliases[item.Alias] = true
		}
	}
	for i, sortItem := range g.Return.OrderBy {
		resolved, err := res.expr(sortItem.Expr)
		if err != nil {
			return nil, err
		}
		g.Return.OrderBy[i].Expr = resolved
		// A bare variable in ORDER BY may name a RETURN alias instead of a
		// query variable.
		var vars []string
		for _, v := range ExprVars(resolved) {
			if ref, ok := resolved.(*VarRef); ok && ref.Var == v && aliases[v] {
				continue
			}
			vars = append(vars, v)
		}
		if err := g.validateVars(vars, "ORDER BY"); err != nil {
			return nil, err
		}
		collectPropAccesses(resolved, addNeed)
	}
	for v, keys := range need {
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		if qv, ok := g.vertexByVar[v]; ok {
			qv.Projection = sorted
		} else if qe, ok := g.edgeByVar[v]; ok {
			qe.Projection = sorted
		}
	}
	return g, nil
}

func (g *QueryGraph) validateVars(vars []string, clause string) error {
	for _, v := range vars {
		if _, ok := g.vertexByVar[v]; ok {
			continue
		}
		if _, ok := g.edgeByVar[v]; ok {
			continue
		}
		return fmt.Errorf("cypher: %s references undeclared variable %q", clause, v)
	}
	return nil
}

// splitConjuncts flattens top-level ANDs into a conjunct list (the
// CNF-style decomposition used for predicate pushdown).
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// resolveParams substitutes $parameters with literal values.
func resolveParams(e Expr, params map[string]epgm.PropertyValue) (Expr, error) {
	switch x := e.(type) {
	case *BinaryExpr:
		l, err := resolveParams(x.L, params)
		if err != nil {
			return nil, err
		}
		r, err := resolveParams(x.R, params)
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: x.Op, L: l, R: r}, nil
	case *NotExpr:
		inner, err := resolveParams(x.X, params)
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: inner}, nil
	case *Param:
		v, ok := params[x.Name]
		if !ok {
			return nil, fmt.Errorf("cypher: missing value for parameter $%s", x.Name)
		}
		return &Literal{Value: v}, nil
	case *ListExpr:
		elems := make([]Expr, len(x.Elems))
		for i, elem := range x.Elems {
			resolved, err := resolveParams(elem, params)
			if err != nil {
				return nil, err
			}
			elems[i] = resolved
		}
		return &ListExpr{Elems: elems}, nil
	case *IsNullExpr:
		inner, err := resolveParams(x.X, params)
		if err != nil {
			return nil, err
		}
		return &IsNullExpr{X: inner, Negated: x.Negated}, nil
	case *FuncCall:
		if x.Arg == nil {
			return x, nil
		}
		arg, err := resolveParams(x.Arg, params)
		if err != nil {
			return nil, err
		}
		return &FuncCall{Name: x.Name, Star: x.Star, Arg: arg}, nil
	default:
		return e, nil
	}
}

// asExistsConjunct matches `exists(...)` and `NOT exists(...)` conjuncts.
func asExistsConjunct(e Expr) (*ExistsExpr, bool, bool) {
	if ex, ok := e.(*ExistsExpr); ok {
		return ex, false, true
	}
	if not, ok := e.(*NotExpr); ok {
		if ex, ok := not.X.(*ExistsExpr); ok {
			return ex, true, true
		}
	}
	return nil, false, false
}

// containsExists reports whether an expression tree contains an exists()
// predicate anywhere.
func containsExists(e Expr) bool {
	found := false
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *ExistsExpr:
			found = true
		case *BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.X)
		case *ListExpr:
			for _, elem := range x.Elems {
				walk(elem)
			}
		case *IsNullExpr:
			walk(x.X)
		case *FuncCall:
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	walk(e)
	return found
}

// containsAggregate reports whether the expression tree contains an
// aggregate function call.
func containsAggregate(e Expr) bool {
	found := false
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.X)
		case *ListExpr:
			for _, elem := range x.Elems {
				walk(elem)
			}
		case *IsNullExpr:
			walk(x.X)
		case *FuncCall:
			if x.Aggregate() {
				found = true
			}
			if x.Arg != nil {
				walk(x.Arg)
			}
		}
	}
	walk(e)
	return found
}

func resolveValue(e Expr, params map[string]epgm.PropertyValue) (epgm.PropertyValue, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Value, nil
	case *Param:
		v, ok := params[x.Name]
		if !ok {
			return epgm.Null, fmt.Errorf("cypher: missing value for parameter $%s", x.Name)
		}
		return v, nil
	default:
		return epgm.Null, fmt.Errorf("cypher: expected literal or parameter, got %s", ExprString(e))
	}
}

// CollectPropAccesses invokes add for every property access in the
// expression tree. Callers use it to determine which property columns a
// predicate needs.
func CollectPropAccesses(e Expr, add func(variable, key string)) {
	collectPropAccesses(e, add)
}

func collectPropAccesses(e Expr, add func(variable, key string)) {
	switch x := e.(type) {
	case *BinaryExpr:
		collectPropAccesses(x.L, add)
		collectPropAccesses(x.R, add)
	case *NotExpr:
		collectPropAccesses(x.X, add)
	case *ListExpr:
		for _, elem := range x.Elems {
			collectPropAccesses(elem, add)
		}
	case *IsNullExpr:
		collectPropAccesses(x.X, add)
	case *FuncCall:
		if x.Arg != nil {
			collectPropAccesses(x.Arg, add)
		}
	case *PropertyAccess:
		add(x.Var, x.Key)
	}
}

func intersectStrings(a, b []string) []string {
	set := map[string]struct{}{}
	for _, s := range b {
		set[s] = struct{}{}
	}
	var out []string
	for _, s := range a {
		if _, ok := set[s]; ok {
			out = append(out, s)
		}
	}
	return out
}
