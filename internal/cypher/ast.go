package cypher

import (
	"fmt"
	"strings"

	"gradoop/internal/epgm"
)

// Query is the AST of a parsed Cypher pattern-matching query: the MATCH
// pattern parts, the optional WHERE expression, any OPTIONAL MATCH clauses,
// and the RETURN clause.
type Query struct {
	Patterns []PatternPart
	Where    Expr // nil when no WHERE clause
	Optional []OptionalMatch
	Return   ReturnClause
}

// OptionalMatch is one `OPTIONAL MATCH ... [WHERE ...]` clause: its pattern
// extends every solution of the preceding clauses, binding its new
// variables to NULL when no extension exists.
type OptionalMatch struct {
	Patterns []PatternPart
	Where    Expr
}

// PatternPart is one comma-separated element of a MATCH clause: a linear
// chain of node patterns connected by relationship patterns.
// len(Rels) == len(Nodes)-1.
type PatternPart struct {
	Nodes []NodePattern
	Rels  []RelPattern
}

// NodePattern is `(v:Label1|Label2 {key: value})`; every component is
// optional.
type NodePattern struct {
	Var    string // "" when anonymous
	Labels []string
	Props  []PropEq
}

// Direction of a relationship pattern relative to its textual order.
type Direction int

// Relationship directions.
const (
	DirOut        Direction = iota // (a)-[e]->(b)
	DirIn                          // (a)<-[e]-(b)
	DirUndirected                  // (a)-[e]-(b)
)

// RelPattern is `-[e:T1|T2*l..u {key: value}]->` (or the mirrored/undirected
// forms). MinHops/MaxHops are 1/1 for a plain relationship; a variable
// length expression `*l..u` sets them explicitly.
type RelPattern struct {
	Var       string
	Types     []string
	Direction Direction
	MinHops   int
	MaxHops   int
	Props     []PropEq
}

// IsVarLength reports whether the pattern is a variable length path
// expression.
func (r RelPattern) IsVarLength() bool { return r.MinHops != 1 || r.MaxHops != 1 }

// PropEq is one `key: value` entry of an inline property map, shorthand for
// an equality predicate.
type PropEq struct {
	Key   string
	Value Expr // Literal or Param
}

// ReturnClause lists the projection. Star means `RETURN *`. Skip and Limit
// are -1 when absent.
type ReturnClause struct {
	Star     bool
	Distinct bool
	Items    []ReturnItem
	OrderBy  []SortItem
	Skip     int64
	Limit    int64
}

// SortItem is one `ORDER BY expr [ASC|DESC]` entry.
type SortItem struct {
	Expr Expr
	Desc bool
}

// ReturnItem is `expr [AS alias]` where expr is a variable or a property
// access.
type ReturnItem struct {
	Expr  Expr
	Alias string // "" when absent
}

// Name returns the output column name of the item.
func (it ReturnItem) Name() string {
	if it.Alias != "" {
		return it.Alias
	}
	return ExprString(it.Expr)
}

// Expr is a WHERE-clause expression node.
type Expr interface{ exprNode() }

// BinaryOp enumerates binary operators.
type BinaryOp string

// Binary operators.
const (
	OpAnd BinaryOp = "AND"
	OpOr  BinaryOp = "OR"
	OpXor BinaryOp = "XOR"
	OpEQ  BinaryOp = "="
	OpNEQ BinaryOp = "<>"
	OpLT  BinaryOp = "<"
	OpLE  BinaryOp = "<="
	OpGT  BinaryOp = ">"
	OpGE  BinaryOp = ">="

	// Arithmetic operators; + concatenates strings as well.
	OpAdd BinaryOp = "+"
	OpSub BinaryOp = "-"
	OpMul BinaryOp = "*"
	OpDiv BinaryOp = "/"
	OpMod BinaryOp = "%"

	// String predicates.
	OpStartsWith BinaryOp = "STARTS WITH"
	OpEndsWith   BinaryOp = "ENDS WITH"
	OpContains   BinaryOp = "CONTAINS"

	// OpIn tests list membership; the right operand is a ListExpr.
	OpIn BinaryOp = "IN"
)

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinaryOp
	L, R Expr
}

// NotExpr negates its operand.
type NotExpr struct{ X Expr }

// PropertyAccess is `variable.key`.
type PropertyAccess struct {
	Var string
	Key string
}

// VarRef is a bare variable reference (only meaningful in RETURN items).
type VarRef struct{ Var string }

// Literal wraps a constant property value.
type Literal struct{ Value epgm.PropertyValue }

// Param is a `$name` query parameter, replaced by a literal during query
// graph construction.
type Param struct{ Name string }

// ListExpr is a literal list `[e1, e2, ...]`, usable as the right operand
// of IN.
type ListExpr struct{ Elems []Expr }

// IsNullExpr is `expr IS NULL` (or IS NOT NULL when Negated).
type IsNullExpr struct {
	X       Expr
	Negated bool
}

// ExistsExpr is an existence pattern predicate: `exists((a)-[:x]->(b))` is
// true when at least one assignment of the pattern extends the current
// bindings. Planned as a semi join (or an anti join under NOT).
type ExistsExpr struct {
	Pattern PatternPart
}

// FuncCall is an aggregate or scalar function call in a RETURN item:
// count(*), count(x), sum(x), min(x), max(x), avg(x).
type FuncCall struct {
	Name string // lower-cased
	Star bool   // count(*)
	Arg  Expr   // nil when Star
}

// Aggregate reports whether the function is an aggregate.
func (f *FuncCall) Aggregate() bool {
	switch f.Name {
	case "count", "sum", "min", "max", "avg", "collect":
		return true
	default:
		return false
	}
}

func (*BinaryExpr) exprNode()     {}
func (*NotExpr) exprNode()        {}
func (*PropertyAccess) exprNode() {}
func (*VarRef) exprNode()         {}
func (*Literal) exprNode()        {}
func (*Param) exprNode()          {}
func (*ListExpr) exprNode()       {}
func (*IsNullExpr) exprNode()     {}
func (*FuncCall) exprNode()       {}
func (*ExistsExpr) exprNode()     {}

// ExprString renders an expression as Cypher text.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.L), x.Op, ExprString(x.R))
	case *NotExpr:
		return fmt.Sprintf("(NOT %s)", ExprString(x.X))
	case *PropertyAccess:
		return x.Var + "." + x.Key
	case *VarRef:
		return x.Var
	case *Literal:
		if x.Value.Type() == epgm.TypeString {
			return "'" + x.Value.Str() + "'"
		}
		return x.Value.String()
	case *Param:
		return "$" + x.Name
	case *ListExpr:
		s := "["
		for i, e := range x.Elems {
			if i > 0 {
				s += ", "
			}
			s += ExprString(e)
		}
		return s + "]"
	case *IsNullExpr:
		if x.Negated {
			return fmt.Sprintf("(%s IS NOT NULL)", ExprString(x.X))
		}
		return fmt.Sprintf("(%s IS NULL)", ExprString(x.X))
	case *FuncCall:
		if x.Star {
			return x.Name + "(*)"
		}
		return x.Name + "(" + ExprString(x.Arg) + ")"
	case *ExistsExpr:
		var sb strings.Builder
		sb.WriteString("exists(")
		writePatternPart(&sb, x.Pattern)
		sb.WriteString(")")
		return sb.String()
	default:
		return "?"
	}
}

// RenameVars returns a copy of the expression with variable references
// renamed per the map; unmapped variables stay. It is used to normalize
// predicates when detecting recurring sub-patterns and to re-target shared
// sub-plans.
func RenameVars(e Expr, rename map[string]string) Expr {
	mapped := func(v string) string {
		if n, ok := rename[v]; ok {
			return n
		}
		return v
	}
	switch x := e.(type) {
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, L: RenameVars(x.L, rename), R: RenameVars(x.R, rename)}
	case *NotExpr:
		return &NotExpr{X: RenameVars(x.X, rename)}
	case *ListExpr:
		elems := make([]Expr, len(x.Elems))
		for i, elem := range x.Elems {
			elems[i] = RenameVars(elem, rename)
		}
		return &ListExpr{Elems: elems}
	case *IsNullExpr:
		return &IsNullExpr{X: RenameVars(x.X, rename), Negated: x.Negated}
	case *FuncCall:
		if x.Arg == nil {
			return x
		}
		return &FuncCall{Name: x.Name, Star: x.Star, Arg: RenameVars(x.Arg, rename)}
	case *PropertyAccess:
		return &PropertyAccess{Var: mapped(x.Var), Key: x.Key}
	case *VarRef:
		return &VarRef{Var: mapped(x.Var)}
	default:
		return e
	}
}

// ExprVars returns the distinct variables referenced by an expression, in
// first-occurrence order.
func ExprVars(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.X)
		case *ListExpr:
			for _, elem := range x.Elems {
				walk(elem)
			}
		case *IsNullExpr:
			walk(x.X)
		case *FuncCall:
			if x.Arg != nil {
				walk(x.Arg)
			}
		case *PropertyAccess:
			if !seen[x.Var] {
				seen[x.Var] = true
				out = append(out, x.Var)
			}
		case *VarRef:
			if !seen[x.Var] {
				seen[x.Var] = true
				out = append(out, x.Var)
			}
		}
	}
	walk(e)
	return out
}

// writePatternPart renders one pattern part as Cypher text.
func writePatternPart(sb *strings.Builder, p PatternPart) {
	for j, n := range p.Nodes {
		if j > 0 {
			r := p.Rels[j-1]
			switch r.Direction {
			case DirIn:
				sb.WriteString("<-[")
			default:
				sb.WriteString("-[")
			}
			sb.WriteString(r.Var)
			for k, t := range r.Types {
				if k == 0 {
					sb.WriteByte(':')
				} else {
					sb.WriteByte('|')
				}
				sb.WriteString(t)
			}
			if r.IsVarLength() {
				fmt.Fprintf(sb, "*%d..%d", r.MinHops, r.MaxHops)
			}
			switch r.Direction {
			case DirOut:
				sb.WriteString("]->")
			default:
				sb.WriteString("]-")
			}
		}
		sb.WriteByte('(')
		sb.WriteString(n.Var)
		for k, l := range n.Labels {
			if k == 0 {
				sb.WriteByte(':')
			} else {
				sb.WriteByte('|')
			}
			sb.WriteString(l)
		}
		sb.WriteByte(')')
	}
}

// String renders the query part names for debugging.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("MATCH ")
	for i, p := range q.Patterns {
		if i > 0 {
			sb.WriteString(", ")
		}
		writePatternPart(&sb, p)
	}
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(ExprString(q.Where))
	}
	return sb.String()
}
