package cypher

import (
	"testing"

	"gradoop/internal/epgm"
)

func buildQG(t *testing.T, src string, params map[string]epgm.PropertyValue) *QueryGraph {
	t.Helper()
	q := mustParse(t, src)
	g, err := BuildQueryGraph(q, params)
	if err != nil {
		t.Fatalf("BuildQueryGraph(%q): %v", src, err)
	}
	return g
}

func TestQueryGraphPaperExample(t *testing.T) {
	g := buildQG(t, `
		MATCH (p1:Person)-[s:studyAt]->(u:University),
		      (p2:Person)-[:studyAt]->(u),
		      (p1)-[e:knows*1..3]->(p2)
		WHERE p1.gender <> p2.gender
		  AND u.name = 'Uni Leipzig'
		  AND s.classYear > 2014
		RETURN *`, nil)

	if len(g.Vertices) != 3 {
		t.Fatalf("vertices=%d want 3 (p1, u, p2)", len(g.Vertices))
	}
	if len(g.Edges) != 3 {
		t.Fatalf("edges=%d want 3", len(g.Edges))
	}
	u, ok := g.VertexByVar("u")
	if !ok || len(u.Predicates) != 1 {
		t.Fatalf("u predicates: %+v", u)
	}
	s, ok := g.EdgeByVar("s")
	if !ok || len(s.Predicates) != 1 {
		t.Fatalf("s predicates: %+v", s)
	}
	e, ok := g.EdgeByVar("e")
	if !ok || !e.IsVarLength() || e.MinHops != 1 || e.MaxHops != 3 {
		t.Fatalf("e: %+v", e)
	}
	if e.Source != "p1" || e.Target != "p2" {
		t.Fatalf("e endpoints: %s->%s", e.Source, e.Target)
	}
	// p1.gender <> p2.gender spans two variables => global.
	if len(g.Global) != 1 {
		t.Fatalf("global=%d want 1", len(g.Global))
	}
	// Projections: p1.gender and p2.gender are needed by the global
	// predicate.
	p1, _ := g.VertexByVar("p1")
	if len(p1.Projection) != 1 || p1.Projection[0] != "gender" {
		t.Fatalf("p1 projection: %v", p1.Projection)
	}
}

func TestQueryGraphUnifiesRepeatedVertexVars(t *testing.T) {
	g := buildQG(t, `MATCH (a:Person)-[:knows]->(b), (b)-[:knows]->(a) RETURN *`, nil)
	if len(g.Vertices) != 2 {
		t.Fatalf("vertices=%d", len(g.Vertices))
	}
	if len(g.Edges) != 2 {
		t.Fatalf("edges=%d", len(g.Edges))
	}
}

func TestQueryGraphDirectionNormalization(t *testing.T) {
	g := buildQG(t, `MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post) RETURN *`, nil)
	e := g.Edges[0]
	if e.Source != "message" || e.Target != "person" {
		t.Fatalf("incoming edge not normalized: %s->%s", e.Source, e.Target)
	}
	msg, _ := g.VertexByVar("message")
	if len(msg.Labels) != 2 {
		t.Fatalf("labels: %v", msg.Labels)
	}
}

func TestQueryGraphAnonymousElements(t *testing.T) {
	g := buildQG(t, `MATCH (:Person)-[]->() RETURN *`, nil)
	if len(g.Vertices) != 2 || len(g.Edges) != 1 {
		t.Fatalf("v=%d e=%d", len(g.Vertices), len(g.Edges))
	}
	for _, v := range g.Vertices {
		if !v.Anonymous {
			t.Fatalf("vertex %q should be anonymous", v.Var)
		}
	}
	if !g.Edges[0].Anonymous {
		t.Fatal("edge should be anonymous")
	}
	// Two anonymous nodes must not unify.
	g2 := buildQG(t, `MATCH ()-[:a]->(), ()-[:b]->() RETURN *`, nil)
	if len(g2.Vertices) != 4 {
		t.Fatalf("anonymous nodes unified: %d vertices", len(g2.Vertices))
	}
}

func TestQueryGraphPropMapsBecomePredicates(t *testing.T) {
	g := buildQG(t, `MATCH (p:Person {name: 'Alice'}) RETURN *`, nil)
	p, _ := g.VertexByVar("p")
	if len(p.Predicates) != 1 {
		t.Fatalf("predicates: %d", len(p.Predicates))
	}
	ok := EvalElement(p.Predicates, "p", epgm.Properties{}.Set("name", epgm.PVString("Alice")))
	if !ok {
		t.Fatal("prop map predicate should match Alice")
	}
	if EvalElement(p.Predicates, "p", epgm.Properties{}.Set("name", epgm.PVString("Bob"))) {
		t.Fatal("prop map predicate should reject Bob")
	}
}

func TestQueryGraphLabelIntersection(t *testing.T) {
	g := buildQG(t, `MATCH (m:Comment|Post)-[:replyOf]->(p), (m:Post) RETURN *`, nil)
	m, _ := g.VertexByVar("m")
	if len(m.Labels) != 1 || m.Labels[0] != "Post" {
		t.Fatalf("labels: %v", m.Labels)
	}
	if _, err := Parse(`MATCH (m:Comment), (m:Post) RETURN *`); err != nil {
		t.Fatal(err)
	}
	q := mustParse(t, `MATCH (m:Comment)-->(x), (m:Post) RETURN *`)
	if _, err := BuildQueryGraph(q, nil); err == nil {
		t.Fatal("contradictory labels should error")
	}
}

func TestQueryGraphParams(t *testing.T) {
	params := map[string]epgm.PropertyValue{"firstName": epgm.PVString("Eve")}
	g := buildQG(t, `MATCH (p:Person) WHERE p.firstName = $firstName RETURN *`, params)
	p, _ := g.VertexByVar("p")
	if !EvalElement(p.Predicates, "p", epgm.Properties{}.Set("firstName", epgm.PVString("Eve"))) {
		t.Fatal("param predicate should match Eve")
	}
	q := mustParse(t, `MATCH (p) WHERE p.x = $missing RETURN *`)
	if _, err := BuildQueryGraph(q, nil); err == nil {
		t.Fatal("missing param should error")
	}
}

func TestQueryGraphValidatesVariables(t *testing.T) {
	q := mustParse(t, `MATCH (a) WHERE b.x = 1 RETURN *`)
	if _, err := BuildQueryGraph(q, nil); err == nil {
		t.Fatal("undeclared WHERE variable should error")
	}
	q2 := mustParse(t, `MATCH (a) RETURN b.x`)
	if _, err := BuildQueryGraph(q2, nil); err == nil {
		t.Fatal("undeclared RETURN variable should error")
	}
}

func TestQueryGraphRejectsDuplicateRelVar(t *testing.T) {
	q := mustParse(t, `MATCH (a)-[e:knows]->(b), (b)-[e:knows]->(c) RETURN *`)
	if _, err := BuildQueryGraph(q, nil); err == nil {
		t.Fatal("duplicate relationship variable should error")
	}
}

func TestQueryGraphRejectsVertexEdgeClash(t *testing.T) {
	q := mustParse(t, `MATCH (x)-[x:knows]->(b) RETURN *`)
	if _, err := BuildQueryGraph(q, nil); err == nil {
		t.Fatal("variable used as vertex and edge should error")
	}
}

func TestQueryGraphReturnProjections(t *testing.T) {
	g := buildQG(t, `MATCH (p:Person)-[s:studyAt]->(u) WHERE s.classYear > 2014 RETURN p.name, u.name`, nil)
	p, _ := g.VertexByVar("p")
	if len(p.Projection) != 1 || p.Projection[0] != "name" {
		t.Fatalf("p projection: %v", p.Projection)
	}
	u, _ := g.VertexByVar("u")
	if len(u.Projection) != 1 || u.Projection[0] != "name" {
		t.Fatalf("u projection: %v", u.Projection)
	}
	// s.classYear is element-centric: evaluated at the leaf, no projection
	// needed downstream.
	s, _ := g.EdgeByVar("s")
	if len(s.Projection) != 0 {
		t.Fatalf("s projection: %v", s.Projection)
	}
}

func TestQueryGraphUndirected(t *testing.T) {
	g := buildQG(t, `MATCH (a)-[:knows]-(b) RETURN *`, nil)
	if !g.Edges[0].Undirected {
		t.Fatal("undirected flag lost")
	}
}

func TestEvalPredicateLogic(t *testing.T) {
	props := epgm.Properties{}.Set("x", epgm.PVInt(5)).Set("s", epgm.PVString("a"))
	lookup := func(v, k string) epgm.PropertyValue { return props.Get(k) }
	parse := func(src string) Expr {
		q := mustParse(t, "MATCH (n) WHERE "+src+" RETURN *")
		return q.Where
	}
	cases := []struct {
		src  string
		want bool
	}{
		{"n.x = 5", true},
		{"n.x = 6", false},
		{"n.x <> 6", true},
		{"n.x < 6 AND n.x > 4", true},
		{"n.x < 5 OR n.x >= 5", true},
		{"NOT n.x = 6", true},
		{"n.x = 5 XOR n.s = 'a'", false},
		{"n.x = 5 XOR n.s = 'b'", true},
		{"n.missing = 5", false},
		{"n.missing <> 5", false}, // NULL <> x is not true
		{"NOT n.missing = 5", true},
		{"n.s < 'b'", true},
		{"n.s = 'a' AND (n.x = 1 OR n.x = 5)", true},
	}
	for _, c := range cases {
		if got := EvalPredicate(parse(c.src), lookup); got != c.want {
			t.Errorf("%s: got %v want %v", c.src, got, c.want)
		}
	}
}

func TestMatchesLabel(t *testing.T) {
	if !MatchesLabel("Post", nil) {
		t.Fatal("empty alternation should match")
	}
	if !MatchesLabel("Post", []string{"Comment", "Post"}) {
		t.Fatal("alternation member")
	}
	if MatchesLabel("Person", []string{"Comment", "Post"}) {
		t.Fatal("non-member")
	}
}
