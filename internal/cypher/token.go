// Package cypher implements the pattern-matching core of the Cypher query
// language (§2.3): a lexer, a recursive-descent parser producing an AST, and
// the query simplification step that turns a parsed query into the query
// graph of Definition 2.2 — query vertices and edges annotated with
// element-centric predicate functions, plus residual cross-element
// predicates evaluated on embeddings.
package cypher

import "fmt"

// TokenKind enumerates lexical token classes.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokString
	TokInt
	TokFloat
	TokParam // $name

	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokLBrace   // {
	TokRBrace   // }
	TokColon    // :
	TokComma    // ,
	TokDot      // .
	TokRange    // ..
	TokPipe     // |
	TokStar     // *
	TokDash     // -
	TokLT       // <
	TokGT       // >
	TokLE       // <=
	TokGE       // >=
	TokEQ       // =
	TokNEQ      // <>
	TokPlus     // +
	TokSlash    // /
	TokPercent  // %

	// Keywords (case-insensitive in the source).
	TokMatch
	TokWhere
	TokReturn
	TokAnd
	TokOr
	TokXor
	TokNot
	TokTrue
	TokFalse
	TokNull
	TokAs
	TokDistinct
	TokOrder
	TokBy
	TokAsc
	TokDesc
	TokSkip
	TokLimit
	TokIs
	TokStarts
	TokEnds
	TokContains
	TokIn
	TokWith
	TokOptional
)

var kindNames = map[TokenKind]string{
	TokEOF: "end of query", TokIdent: "identifier", TokString: "string",
	TokInt: "integer", TokFloat: "float", TokParam: "parameter",
	TokLParen: "'('", TokRParen: "')'", TokLBracket: "'['", TokRBracket: "']'",
	TokLBrace: "'{'", TokRBrace: "'}'", TokColon: "':'", TokComma: "','",
	TokDot: "'.'", TokRange: "'..'", TokPipe: "'|'", TokStar: "'*'",
	TokDash: "'-'", TokLT: "'<'", TokGT: "'>'", TokLE: "'<='", TokGE: "'>='",
	TokEQ: "'='", TokNEQ: "'<>'", TokPlus: "'+'", TokSlash: "'/'", TokPercent: "'%'",
	TokMatch: "MATCH", TokWhere: "WHERE", TokReturn: "RETURN",
	TokAnd: "AND", TokOr: "OR", TokXor: "XOR", TokNot: "NOT",
	TokTrue: "TRUE", TokFalse: "FALSE", TokNull: "NULL", TokAs: "AS",
	TokDistinct: "DISTINCT", TokOrder: "ORDER", TokBy: "BY",
	TokAsc: "ASC", TokDesc: "DESC", TokSkip: "SKIP", TokLimit: "LIMIT",
	TokIs: "IS", TokStarts: "STARTS", TokEnds: "ENDS",
	TokContains: "CONTAINS", TokIn: "IN", TokWith: "WITH",
	TokOptional: "OPTIONAL",
}

// String returns a human-readable token-kind name for error messages.
func (k TokenKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexical unit with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

var keywords = map[string]TokenKind{
	"MATCH": TokMatch, "WHERE": TokWhere, "RETURN": TokReturn,
	"AND": TokAnd, "OR": TokOr, "XOR": TokXor, "NOT": TokNot,
	"TRUE": TokTrue, "FALSE": TokFalse, "NULL": TokNull, "AS": TokAs,
	"DISTINCT": TokDistinct, "ORDER": TokOrder, "BY": TokBy,
	"ASC": TokAsc, "ASCENDING": TokAsc, "DESC": TokDesc, "DESCENDING": TokDesc,
	"SKIP": TokSkip, "LIMIT": TokLimit,
	"IS": TokIs, "STARTS": TokStarts, "ENDS": TokEnds,
	"CONTAINS": TokContains, "IN": TokIn, "WITH": TokWith,
	"OPTIONAL": TokOptional,
}
