package cypher

import (
	"strings"
	"testing"

	"gradoop/internal/epgm"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`MATCH (p:Person)-[e:knows*1..3]->(q) WHERE p.age >= 21 RETURN p.name`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []TokenKind{
		TokMatch, TokLParen, TokIdent, TokColon, TokIdent, TokRParen,
		TokDash, TokLBracket, TokIdent, TokColon, TokIdent, TokStar, TokInt, TokRange, TokInt, TokRBracket, TokDash, TokGT,
		TokLParen, TokIdent, TokRParen,
		TokWhere, TokIdent, TokDot, TokIdent, TokGE, TokInt,
		TokReturn, TokIdent, TokDot, TokIdent, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d: got %s want %s", i, kinds[i], want[i])
		}
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks, err := Lex(`'Uni Leipzig' "double" 'it\'s' 'tab\there'`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Uni Leipzig", "double", "it's", "tab\there"}
	for i, w := range want {
		if toks[i].Kind != TokString || toks[i].Text != w {
			t.Fatalf("string %d: got %q", i, toks[i].Text)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("MATCH // a comment\n(n)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokMatch || toks[1].Kind != TokLParen {
		t.Fatalf("comment not skipped: %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "`unterminated", "$", "'bad\\q'", "@"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Lex("match (n) where n.x = 1 return n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokMatch {
		t.Fatalf("lower-case match not recognized: %v", toks[0])
	}
}

func TestParsePaperQuery(t *testing.T) {
	// The flagship example from §2.3.
	q := mustParse(t, `
		MATCH (p1:Person)-[s:studyAt]->(u:University),
		      (p2:Person)-[:studyAt]->(u),
		      (p1)-[e:knows*1..3]->(p2)
		WHERE p1.gender <> p2.gender
		  AND u.name = 'Uni Leipzig'
		  AND s.classYear > 2014
		RETURN *`)
	if len(q.Patterns) != 3 {
		t.Fatalf("patterns=%d", len(q.Patterns))
	}
	p0 := q.Patterns[0]
	if p0.Nodes[0].Var != "p1" || p0.Nodes[0].Labels[0] != "Person" {
		t.Fatalf("first node: %+v", p0.Nodes[0])
	}
	if p0.Rels[0].Var != "s" || p0.Rels[0].Types[0] != "studyAt" || p0.Rels[0].Direction != DirOut {
		t.Fatalf("first rel: %+v", p0.Rels[0])
	}
	p2 := q.Patterns[2]
	rel := p2.Rels[0]
	if !rel.IsVarLength() || rel.MinHops != 1 || rel.MaxHops != 3 {
		t.Fatalf("var length: %+v", rel)
	}
	if q.Where == nil || !q.Return.Star {
		t.Fatal("WHERE/RETURN missing")
	}
	conjuncts := splitConjuncts(q.Where)
	if len(conjuncts) != 3 {
		t.Fatalf("conjuncts=%d", len(conjuncts))
	}
}

func TestParseLabelAlternationAndIncomingEdge(t *testing.T) {
	// Query 1 of the appendix.
	q := mustParse(t, `
		MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post)
		WHERE person.firstName = "Alice"
		RETURN message.creationDate, message.content`)
	n := q.Patterns[0].Nodes[1]
	if len(n.Labels) != 2 || n.Labels[0] != "Comment" || n.Labels[1] != "Post" {
		t.Fatalf("alternation: %v", n.Labels)
	}
	rel := q.Patterns[0].Rels[0]
	if rel.Direction != DirIn || rel.Types[0] != "hasCreator" || rel.Var != "" {
		t.Fatalf("rel: %+v", rel)
	}
	if len(q.Return.Items) != 2 {
		t.Fatalf("return items=%d", len(q.Return.Items))
	}
	pa := q.Return.Items[0].Expr.(*PropertyAccess)
	if pa.Var != "message" || pa.Key != "creationDate" {
		t.Fatalf("return item: %+v", pa)
	}
}

func TestParseZeroLowerBound(t *testing.T) {
	// Query 2 uses *0..10.
	q := mustParse(t, `MATCH (m)-[:replyOf*0..10]->(p:Post) RETURN *`)
	rel := q.Patterns[0].Rels[0]
	if rel.MinHops != 0 || rel.MaxHops != 10 {
		t.Fatalf("bounds: %d..%d", rel.MinHops, rel.MaxHops)
	}
}

func TestParseHopVariants(t *testing.T) {
	cases := []struct {
		src      string
		min, max int
	}{
		{`MATCH (a)-[:x*]->(b) RETURN *`, 1, DefaultMaxHops},
		{`MATCH (a)-[:x*3]->(b) RETURN *`, 3, 3},
		{`MATCH (a)-[:x*..4]->(b) RETURN *`, 1, 4},
		{`MATCH (a)-[:x*2..]->(b) RETURN *`, 2, DefaultMaxHops},
		{`MATCH (a)-[:x*2..5]->(b) RETURN *`, 2, 5},
	}
	for _, c := range cases {
		q := mustParse(t, c.src)
		rel := q.Patterns[0].Rels[0]
		if rel.MinHops != c.min || rel.MaxHops != c.max {
			t.Errorf("%s: got %d..%d want %d..%d", c.src, rel.MinHops, rel.MaxHops, c.min, c.max)
		}
	}
}

func TestParseInvalidHops(t *testing.T) {
	if _, err := Parse(`MATCH (a)-[:x*5..2]->(b) RETURN *`); err == nil {
		t.Fatal("expected error for inverted bounds")
	}
}

func TestParsePropertyMaps(t *testing.T) {
	q := mustParse(t, `MATCH (p:Person {name: 'Alice', yob: 1984})-[e:knows {since: 2010}]->(q) RETURN *`)
	n := q.Patterns[0].Nodes[0]
	if len(n.Props) != 2 || n.Props[0].Key != "name" {
		t.Fatalf("props: %+v", n.Props)
	}
	lit := n.Props[1].Value.(*Literal)
	if lit.Value.Int() != 1984 {
		t.Fatalf("yob literal: %v", lit.Value)
	}
	rel := q.Patterns[0].Rels[0]
	if len(rel.Props) != 1 || rel.Props[0].Key != "since" {
		t.Fatalf("rel props: %+v", rel.Props)
	}
}

func TestParseEmptyPropertyMap(t *testing.T) {
	q := mustParse(t, `MATCH (p {}) RETURN *`)
	if len(q.Patterns[0].Nodes[0].Props) != 0 {
		t.Fatal("empty map should have no props")
	}
}

func TestParseAnonymousAndUndirected(t *testing.T) {
	q := mustParse(t, `MATCH (a)--(b), (b)-->(c), (c)<--(d) RETURN *`)
	if q.Patterns[0].Rels[0].Direction != DirUndirected {
		t.Fatal("undirected")
	}
	if q.Patterns[1].Rels[0].Direction != DirOut {
		t.Fatal("abbreviated out")
	}
	if q.Patterns[2].Rels[0].Direction != DirIn {
		t.Fatal("abbreviated in")
	}
}

func TestParseWherePrecedence(t *testing.T) {
	q := mustParse(t, `MATCH (a) WHERE a.x = 1 OR a.y = 2 AND NOT a.z = 3 RETURN *`)
	or, ok := q.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top is %v", ExprString(q.Where))
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right of OR is %v", ExprString(or.R))
	}
	if _, ok := and.R.(*NotExpr); !ok {
		t.Fatalf("right of AND is %v", ExprString(and.R))
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	q := mustParse(t, `MATCH (a) WHERE (a.x = 1 OR a.y = 2) AND a.z = 3 RETURN *`)
	and, ok := q.Where.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("top is %v", ExprString(q.Where))
	}
}

func TestParseComparisonOperators(t *testing.T) {
	q := mustParse(t, `MATCH (a) WHERE a.v < 1 AND a.v <= 2 AND a.v > 3 AND a.v >= 4 AND a.v <> 5 AND a.v = 6 RETURN *`)
	conj := splitConjuncts(q.Where)
	ops := []BinaryOp{OpLT, OpLE, OpGT, OpGE, OpNEQ, OpEQ}
	if len(conj) != len(ops) {
		t.Fatalf("conjuncts=%d", len(conj))
	}
	for i, c := range conj {
		if c.(*BinaryExpr).Op != ops[i] {
			t.Fatalf("conjunct %d: %v", i, ExprString(c))
		}
	}
}

func TestParseLiteralsInWhere(t *testing.T) {
	q := mustParse(t, `MATCH (a) WHERE a.f = 1.5 AND a.b = true AND a.s = 'x' AND a.n = -3 AND a.g = -2.5 RETURN *`)
	conj := splitConjuncts(q.Where)
	vals := []epgm.PropertyValue{
		epgm.PVFloat(1.5), epgm.PVBool(true), epgm.PVString("x"), epgm.PVInt(-3), epgm.PVFloat(-2.5),
	}
	for i, c := range conj {
		lit := c.(*BinaryExpr).R.(*Literal)
		if !lit.Value.Equal(vals[i]) {
			t.Fatalf("literal %d: %v", i, lit.Value)
		}
	}
}

func TestParseParams(t *testing.T) {
	q := mustParse(t, `MATCH (p:Person {city: $city}) WHERE p.firstName = $firstName RETURN p`)
	if _, ok := q.Patterns[0].Nodes[0].Props[0].Value.(*Param); !ok {
		t.Fatal("prop map param")
	}
	cmp := q.Where.(*BinaryExpr)
	if prm, ok := cmp.R.(*Param); !ok || prm.Name != "firstName" {
		t.Fatalf("where param: %v", ExprString(cmp.R))
	}
}

func TestParseReturnVariants(t *testing.T) {
	q := mustParse(t, `MATCH (p) RETURN p.name AS name, p`)
	if q.Return.Star {
		t.Fatal("not star")
	}
	if q.Return.Items[0].Name() != "name" {
		t.Fatalf("alias: %q", q.Return.Items[0].Name())
	}
	if q.Return.Items[1].Name() != "p" {
		t.Fatalf("bare var name: %q", q.Return.Items[1].Name())
	}
	// No RETURN clause implies RETURN *.
	q2 := mustParse(t, `MATCH (p)`)
	if !q2.Return.Star {
		t.Fatal("implicit RETURN *")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`MATCH`,
		`MATCH (`,
		`MATCH (a`,
		`MATCH (a)-`,
		`MATCH (a)-[`,
		`MATCH (a)-[]`,
		`MATCH (a)-[]-(`,
		`MATCH (a) WHERE`,
		`MATCH (a) WHERE a.`,
		`MATCH (a) WHERE a.x =`,
		`MATCH (a) RETURN`,
		`MATCH (a) garbage`,
		`MATCH (a {x})`,
		`MATCH (a {x: b.c})`,
		`RETURN 1`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestQueryStringRendering(t *testing.T) {
	q := mustParse(t, `MATCH (p1:Person)-[e:knows*1..3]->(p2:Person) WHERE p1.gender <> p2.gender RETURN *`)
	s := q.String()
	for _, frag := range []string{"MATCH", "(p1:Person)", "knows", "*1..3", "WHERE", "<>"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("rendered query %q missing %q", s, frag)
		}
	}
}
