package cypher

import (
	"fmt"
	"strconv"
	"strings"

	"gradoop/internal/epgm"
)

// DefaultMaxHops bounds variable length path expressions written without an
// explicit upper bound (`*` or `*2..`). The paper's queries always give
// explicit bounds; an implicit bound keeps unbounded expansions finite.
const DefaultMaxHops = 10

// Parse lexes and parses a Cypher query.
func Parse(src string) (*Query, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token         { return p.toks[p.pos] }
func (p *parser) peekKind() TokenKind { return p.toks[p.pos].Kind }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(kind TokenKind) (Token, bool) {
	if p.peekKind() == kind {
		return p.advance(), true
	}
	return Token{}, false
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	if t, ok := p.accept(kind); ok {
		return t, nil
	}
	t := p.peek()
	return Token{}, &SyntaxError{Pos: t.Pos, Msg: fmt.Sprintf("expected %s, found %s %q", kind, t.Kind, t.Text)}
}

func (p *parser) parseQuery() (*Query, error) {
	if _, err := p.expect(TokMatch); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		part, err := p.parsePatternPart()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, part)
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	if _, ok := p.accept(TokWhere); ok {
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = expr
	}
	for p.peekKind() == TokOptional {
		p.advance()
		if _, err := p.expect(TokMatch); err != nil {
			return nil, err
		}
		var om OptionalMatch
		for {
			part, err := p.parsePatternPart()
			if err != nil {
				return nil, err
			}
			om.Patterns = append(om.Patterns, part)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
		if _, ok := p.accept(TokWhere); ok {
			expr, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			om.Where = expr
		}
		q.Optional = append(q.Optional, om)
	}
	if _, ok := p.accept(TokReturn); ok {
		ret, err := p.parseReturn()
		if err != nil {
			return nil, err
		}
		q.Return = ret
	} else {
		q.Return = ReturnClause{Star: true, Skip: -1, Limit: -1}
	}
	if t := p.peek(); t.Kind != TokEOF {
		return nil, &SyntaxError{Pos: t.Pos, Msg: fmt.Sprintf("unexpected %s %q after query", t.Kind, t.Text)}
	}
	return q, nil
}

func (p *parser) parsePatternPart() (PatternPart, error) {
	var part PatternPart
	node, err := p.parseNodePattern()
	if err != nil {
		return part, err
	}
	part.Nodes = append(part.Nodes, node)
	for p.peekKind() == TokDash || p.peekKind() == TokLT {
		rel, err := p.parseRelPattern()
		if err != nil {
			return part, err
		}
		next, err := p.parseNodePattern()
		if err != nil {
			return part, err
		}
		part.Rels = append(part.Rels, rel)
		part.Nodes = append(part.Nodes, next)
	}
	return part, nil
}

func (p *parser) parseNodePattern() (NodePattern, error) {
	var n NodePattern
	if _, err := p.expect(TokLParen); err != nil {
		return n, err
	}
	if t, ok := p.accept(TokIdent); ok {
		n.Var = t.Text
	}
	if _, ok := p.accept(TokColon); ok {
		labels, err := p.parseAlternation()
		if err != nil {
			return n, err
		}
		n.Labels = labels
	}
	if p.peekKind() == TokLBrace {
		props, err := p.parsePropMap()
		if err != nil {
			return n, err
		}
		n.Props = props
	}
	if _, err := p.expect(TokRParen); err != nil {
		return n, err
	}
	return n, nil
}

// parseAlternation parses `Label1|Label2|...`.
func (p *parser) parseAlternation() ([]string, error) {
	var out []string
	for {
		t, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		out = append(out, t.Text)
		if _, ok := p.accept(TokPipe); !ok {
			return out, nil
		}
	}
}

func (p *parser) parsePropMap() ([]PropEq, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var props []PropEq
	if _, ok := p.accept(TokRBrace); ok {
		return props, nil
	}
	for {
		key, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		val, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch val.(type) {
		case *Literal, *Param:
		default:
			return nil, &SyntaxError{Pos: p.peek().Pos, Msg: "property map values must be literals or parameters"}
		}
		props = append(props, PropEq{Key: key.Text, Value: val})
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return props, nil
}

func (p *parser) parseRelPattern() (RelPattern, error) {
	rel := RelPattern{MinHops: 1, MaxHops: 1}
	leftArrow := false
	if _, ok := p.accept(TokLT); ok {
		leftArrow = true
	}
	if _, err := p.expect(TokDash); err != nil {
		return rel, err
	}
	if _, ok := p.accept(TokLBracket); ok {
		if t, ok := p.accept(TokIdent); ok {
			rel.Var = t.Text
		}
		if _, ok := p.accept(TokColon); ok {
			types, err := p.parseAlternation()
			if err != nil {
				return rel, err
			}
			rel.Types = types
		}
		if _, ok := p.accept(TokStar); ok {
			if err := p.parseHops(&rel); err != nil {
				return rel, err
			}
		}
		if p.peekKind() == TokLBrace {
			props, err := p.parsePropMap()
			if err != nil {
				return rel, err
			}
			rel.Props = props
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return rel, err
		}
	}
	if _, err := p.expect(TokDash); err != nil {
		return rel, err
	}
	rightArrow := false
	if !leftArrow {
		if _, ok := p.accept(TokGT); ok {
			rightArrow = true
		}
	}
	switch {
	case leftArrow:
		rel.Direction = DirIn
	case rightArrow:
		rel.Direction = DirOut
	default:
		rel.Direction = DirUndirected
	}
	if rel.MinHops < 0 || rel.MaxHops < rel.MinHops {
		return rel, &SyntaxError{Pos: p.peek().Pos,
			Msg: fmt.Sprintf("invalid path bounds *%d..%d", rel.MinHops, rel.MaxHops)}
	}
	return rel, nil
}

// parseHops parses the hop bounds after '*': `*`, `*n`, `*l..u`, `*..u`,
// `*l..`.
func (p *parser) parseHops(rel *RelPattern) error {
	rel.MinHops, rel.MaxHops = 1, DefaultMaxHops
	if t, ok := p.accept(TokInt); ok {
		n, err := strconv.Atoi(t.Text)
		if err != nil {
			return &SyntaxError{Pos: t.Pos, Msg: "invalid hop count"}
		}
		rel.MinHops = n
		rel.MaxHops = n
		if _, ok := p.accept(TokRange); ok {
			rel.MaxHops = DefaultMaxHops
			if t, ok := p.accept(TokInt); ok {
				u, err := strconv.Atoi(t.Text)
				if err != nil {
					return &SyntaxError{Pos: t.Pos, Msg: "invalid hop bound"}
				}
				rel.MaxHops = u
			}
		}
		return nil
	}
	if _, ok := p.accept(TokRange); ok {
		if t, ok := p.accept(TokInt); ok {
			u, err := strconv.Atoi(t.Text)
			if err != nil {
				return &SyntaxError{Pos: t.Pos, Msg: "invalid hop bound"}
			}
			rel.MaxHops = u
		}
	}
	return nil
}

// Expression grammar, loosest binding first: OR, XOR, AND, NOT, comparison.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.accept(TokOr); !ok {
			return l, nil
		}
		r, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
}

func (p *parser) parseXor() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.accept(TokXor); !ok {
			return l, nil
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpXor, L: l, R: r}
	}
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.accept(TokAnd); !ok {
			return l, nil
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
}

func (p *parser) parseNot() (Expr, error) {
	if _, ok := p.accept(TokNot); ok {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[TokenKind]BinaryOp{
	TokEQ: OpEQ, TokNEQ: OpNEQ, TokLT: OpLT, TokLE: OpLE, TokGT: OpGT, TokGE: OpGE,
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	switch {
	case p.peekKind() == TokIs:
		p.advance()
		negated := false
		if _, ok := p.accept(TokNot); ok {
			negated = true
		}
		if _, err := p.expect(TokNull); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Negated: negated}, nil
	case p.peekKind() == TokIn:
		p.advance()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, ok := r.(*ListExpr); !ok {
			return nil, &SyntaxError{Pos: p.peek().Pos, Msg: "IN requires a list literal"}
		}
		return &BinaryExpr{Op: OpIn, L: l, R: r}, nil
	case p.peekKind() == TokStarts:
		p.advance()
		if _, err := p.expect(TokWith); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: OpStartsWith, L: l, R: r}, nil
	case p.peekKind() == TokEnds:
		p.advance()
		if _, err := p.expect(TokWith); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: OpEndsWith, L: l, R: r}, nil
	case p.peekKind() == TokContains:
		p.advance()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: OpContains, L: l, R: r}, nil
	}
	if op, ok := comparisonOps[p.peekKind()]; ok {
		p.advance()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.peekKind() {
		case TokPlus:
			op = OpAdd
		case TokDash:
			op = OpSub
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch p.peekKind() {
		case TokStar:
			op = OpMul
		case TokSlash:
			op = OpDiv
		case TokPercent:
			op = OpMod
		default:
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if _, ok := p.accept(TokDash); ok {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok {
			switch lit.Value.Type() {
			case epgm.TypeInt64:
				return &Literal{Value: epgm.PVInt(-lit.Value.Int())}, nil
			case epgm.TypeFloat64:
				return &Literal{Value: epgm.PVFloat(-lit.Value.Float())}, nil
			}
		}
		return &BinaryExpr{Op: OpSub, L: &Literal{Value: epgm.PVInt(0)}, R: x}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokString:
		p.advance()
		return &Literal{Value: epgm.PVString(t.Text)}, nil
	case TokInt:
		p.advance()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, &SyntaxError{Pos: t.Pos, Msg: "invalid integer literal"}
		}
		return &Literal{Value: epgm.PVInt(n)}, nil
	case TokFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, &SyntaxError{Pos: t.Pos, Msg: "invalid float literal"}
		}
		return &Literal{Value: epgm.PVFloat(f)}, nil
	case TokTrue:
		p.advance()
		return &Literal{Value: epgm.PVBool(true)}, nil
	case TokFalse:
		p.advance()
		return &Literal{Value: epgm.PVBool(false)}, nil
	case TokNull:
		p.advance()
		return &Literal{Value: epgm.Null}, nil
	case TokParam:
		p.advance()
		return &Param{Name: t.Text}, nil
	case TokLBracket:
		p.advance()
		list := &ListExpr{}
		if _, ok := p.accept(TokRBracket); ok {
			return list, nil
		}
		for {
			elem, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list.Elems = append(list.Elems, elem)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		return list, nil
	case TokIdent:
		p.advance()
		if _, ok := p.accept(TokDot); ok {
			key, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			return &PropertyAccess{Var: t.Text, Key: key.Text}, nil
		}
		if p.peekKind() == TokLParen {
			return p.parseFuncCall(t)
		}
		return &VarRef{Var: t.Text}, nil
	default:
		return nil, &SyntaxError{Pos: t.Pos, Msg: fmt.Sprintf("expected expression, found %s %q", t.Kind, t.Text)}
	}
}

// parseFuncCall parses `name(*)`, `name(expr)` after the identifier token,
// or an `exists(<pattern>)` predicate.
func (p *parser) parseFuncCall(name Token) (Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fn := &FuncCall{Name: strings.ToLower(name.Text)}
	switch fn.Name {
	case "count", "sum", "min", "max", "avg":
	case "exists":
		pattern, err := p.parsePatternPart()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &ExistsExpr{Pattern: pattern}, nil
	default:
		return nil, &SyntaxError{Pos: name.Pos, Msg: fmt.Sprintf("unknown function %q", name.Text)}
	}
	if _, ok := p.accept(TokStar); ok {
		if fn.Name != "count" {
			return nil, &SyntaxError{Pos: name.Pos, Msg: "only count(*) accepts '*'"}
		}
		fn.Star = true
	} else {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fn.Arg = arg
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return fn, nil
}

func (p *parser) parseReturn() (ReturnClause, error) {
	ret := ReturnClause{Skip: -1, Limit: -1}
	if _, ok := p.accept(TokDistinct); ok {
		ret.Distinct = true
	}
	if _, ok := p.accept(TokStar); ok {
		ret.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return ret, err
			}
			item := ReturnItem{Expr: e}
			if _, ok := p.accept(TokAs); ok {
				alias, err := p.expect(TokIdent)
				if err != nil {
					return ret, err
				}
				item.Alias = alias.Text
			}
			ret.Items = append(ret.Items, item)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
	}
	if _, ok := p.accept(TokOrder); ok {
		if _, err := p.expect(TokBy); err != nil {
			return ret, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return ret, err
			}
			item := SortItem{Expr: e}
			if _, ok := p.accept(TokDesc); ok {
				item.Desc = true
			} else {
				p.accept(TokAsc)
			}
			ret.OrderBy = append(ret.OrderBy, item)
			if _, ok := p.accept(TokComma); !ok {
				break
			}
		}
	}
	if _, ok := p.accept(TokSkip); ok {
		t, err := p.expect(TokInt)
		if err != nil {
			return ret, err
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return ret, &SyntaxError{Pos: t.Pos, Msg: "invalid SKIP count"}
		}
		ret.Skip = n
	}
	if _, ok := p.accept(TokLimit); ok {
		t, err := p.expect(TokInt)
		if err != nil {
			return ret, err
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return ret, &SyntaxError{Pos: t.Pos, Msg: "invalid LIMIT count"}
		}
		ret.Limit = n
	}
	return ret, nil
}
