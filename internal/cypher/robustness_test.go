package cypher

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the lexer/parser mutated variants of valid
// queries plus random token soup; every input must return cleanly (a Query
// or an error), never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`MATCH (p1:Person)-[s:studyAt]->(u:University), (p1)-[e:knows*1..3]->(p2)
		 WHERE p1.gender <> p2.gender AND u.name = 'Uni Leipzig' RETURN *`,
		`MATCH (a)-[e:x*0..10]->(b) WHERE a.r IN [1,2,3] AND NOT exists((a)-[:y]->(b))
		 OPTIONAL MATCH (b)-[:z]->(c) RETURN DISTINCT a.n AS n, count(*) ORDER BY n DESC SKIP 1 LIMIT 5`,
		`MATCH (p {k: 'v', n: -1.5}) WHERE p.s STARTS WITH 'x' AND p.v IS NOT NULL RETURN p.s + '!' AS bang`,
	}
	fragments := []string{
		"MATCH", "WHERE", "RETURN", "OPTIONAL", "(", ")", "[", "]", "{", "}",
		"-", "->", "<-", ":", ",", ".", "..", "*", "|", "'str'", "42", "1.5",
		"$p", "AND", "OR", "NOT", "exists", "count", "IS", "NULL", "IN",
		"STARTS", "WITH", "a", "b", "Person", "<>", "<=", ">", "=", "+", "/", "%",
	}
	rng := rand.New(rand.NewSource(1))
	check := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		q, err := Parse(src)
		if err == nil && q != nil {
			// Valid parses must also survive query-graph construction
			// (unresolved parameters may error, but never panic).
			_, _ = BuildQueryGraph(q, nil)
		}
	}
	for _, seed := range seeds {
		check(seed)
		// Mutations: delete/duplicate random byte spans.
		for i := 0; i < 200; i++ {
			b := []byte(seed)
			switch rng.Intn(3) {
			case 0:
				p := rng.Intn(len(b))
				b = append(b[:p], b[p+rng.Intn(len(b)-p):]...)
			case 1:
				p := rng.Intn(len(b))
				b = append(b[:p], append([]byte{b[rng.Intn(len(b))]}, b[p:]...)...)
			case 2:
				p := rng.Intn(len(b))
				b[p] = byte(rng.Intn(128))
			}
			check(string(b))
		}
	}
	// Pure token soup.
	for i := 0; i < 500; i++ {
		n := 1 + rng.Intn(20)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(fragments[rng.Intn(len(fragments))])
			sb.WriteByte(' ')
		}
		check(sb.String())
	}
}
