package cypher

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// SyntaxError reports a lexical or grammatical error with its byte position
// in the query text.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("cypher: syntax error at offset %d: %s", e.Pos, e.Msg)
}

// lexer tokenizes a Cypher query string.
type lexer struct {
	src string
	pos int
}

// Lex tokenizes the whole query, returning the token stream terminated by a
// TokEOF token.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src}
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) next() (Token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// Line comments.
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return Token{TokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return Token{TokRParen, ")", start}, nil
	case c == '[':
		l.pos++
		return Token{TokLBracket, "[", start}, nil
	case c == ']':
		l.pos++
		return Token{TokRBracket, "]", start}, nil
	case c == '{':
		l.pos++
		return Token{TokLBrace, "{", start}, nil
	case c == '}':
		l.pos++
		return Token{TokRBrace, "}", start}, nil
	case c == ':':
		l.pos++
		return Token{TokColon, ":", start}, nil
	case c == ',':
		l.pos++
		return Token{TokComma, ",", start}, nil
	case c == '|':
		l.pos++
		return Token{TokPipe, "|", start}, nil
	case c == '*':
		l.pos++
		return Token{TokStar, "*", start}, nil
	case c == '-':
		l.pos++
		return Token{TokDash, "-", start}, nil
	case c == '=':
		l.pos++
		return Token{TokEQ, "=", start}, nil
	case c == '+':
		l.pos++
		return Token{TokPlus, "+", start}, nil
	case c == '%':
		l.pos++
		return Token{TokPercent, "%", start}, nil
	case c == '/':
		// A single slash is division; '//' comments were consumed above.
		l.pos++
		return Token{TokSlash, "/", start}, nil
	case c == '<':
		l.pos++
		switch l.peekByte() {
		case '=':
			l.pos++
			return Token{TokLE, "<=", start}, nil
		case '>':
			l.pos++
			return Token{TokNEQ, "<>", start}, nil
		}
		return Token{TokLT, "<", start}, nil
	case c == '>':
		l.pos++
		if l.peekByte() == '=' {
			l.pos++
			return Token{TokGE, ">=", start}, nil
		}
		return Token{TokGT, ">", start}, nil
	case c == '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			l.pos += 2
			return Token{TokRange, "..", start}, nil
		}
		l.pos++
		return Token{TokDot, ".", start}, nil
	case c == '\'' || c == '"':
		return l.lexString(c)
	case c == '$':
		l.pos++
		name := l.lexIdentText()
		if name == "" {
			return Token{}, &SyntaxError{Pos: start, Msg: "expected parameter name after '$'"}
		}
		return Token{TokParam, name, start}, nil
	case c == '`':
		// Backquoted identifier.
		l.pos++
		end := strings.IndexByte(l.src[l.pos:], '`')
		if end < 0 {
			return Token{}, &SyntaxError{Pos: start, Msg: "unterminated backquoted identifier"}
		}
		text := l.src[l.pos : l.pos+end]
		l.pos += end + 1
		return Token{TokIdent, text, start}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber()
	default:
		r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
		if isIdentStart(r) {
			text := l.lexIdentText()
			if kind, ok := keywords[strings.ToUpper(text)]; ok {
				return Token{kind, text, start}, nil
			}
			return Token{TokIdent, text, start}, nil
		}
		return Token{}, &SyntaxError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", r)}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdentText() string {
	start := l.pos
	for l.pos < len(l.src) {
		r, sz := utf8.DecodeRuneInString(l.src[l.pos:])
		if l.pos == start && !isIdentStart(r) {
			break
		}
		if l.pos > start && !isIdentPart(r) {
			break
		}
		l.pos += sz
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexString(quote byte) (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return Token{TokString, sb.String(), start}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return Token{}, &SyntaxError{Pos: start, Msg: "unterminated string escape"}
			}
			esc := l.src[l.pos+1]
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '\'', '"':
				sb.WriteByte(esc)
			default:
				return Token{}, &SyntaxError{Pos: l.pos, Msg: fmt.Sprintf("unknown escape \\%c", esc)}
			}
			l.pos += 2
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return Token{}, &SyntaxError{Pos: start, Msg: "unterminated string literal"}
}

func (l *lexer) lexNumber() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	// A float needs a single '.' followed by a digit; ".." is a range token.
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		return Token{TokFloat, l.src[start:l.pos], start}, nil
	}
	return Token{TokInt, l.src[start:l.pos], start}, nil
}
