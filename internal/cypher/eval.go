package cypher

import (
	"strings"

	"gradoop/internal/epgm"
)

// Lookup resolves a property access during predicate evaluation. It returns
// epgm.Null for unknown variables or absent keys.
type Lookup func(variable, key string) epgm.PropertyValue

// EvalPredicate evaluates a boolean expression against bound properties.
// Comparisons involving NULL or incomparable types are false, so NOT over
// such a comparison is true — a pragmatic two-valued approximation of
// Cypher's ternary logic that matches the paper's predicate semantics
// (predicate functions map into {true, false}, Definition 2.2).
func EvalPredicate(e Expr, lookup Lookup) bool {
	switch x := e.(type) {
	case *BinaryExpr:
		switch x.Op {
		case OpAnd:
			return EvalPredicate(x.L, lookup) && EvalPredicate(x.R, lookup)
		case OpOr:
			return EvalPredicate(x.L, lookup) || EvalPredicate(x.R, lookup)
		case OpXor:
			return EvalPredicate(x.L, lookup) != EvalPredicate(x.R, lookup)
		case OpIn:
			l := EvalValue(x.L, lookup)
			list, ok := x.R.(*ListExpr)
			if !ok {
				return false
			}
			for _, elem := range list.Elems {
				if l.Equal(EvalValue(elem, lookup)) {
					return true
				}
			}
			return false
		case OpStartsWith, OpEndsWith, OpContains:
			l := EvalValue(x.L, lookup)
			r := EvalValue(x.R, lookup)
			if l.Type() != epgm.TypeString || r.Type() != epgm.TypeString {
				return false
			}
			switch x.Op {
			case OpStartsWith:
				return strings.HasPrefix(l.Str(), r.Str())
			case OpEndsWith:
				return strings.HasSuffix(l.Str(), r.Str())
			default:
				return strings.Contains(l.Str(), r.Str())
			}
		default:
			return evalComparison(x, lookup)
		}
	case *NotExpr:
		return !EvalPredicate(x.X, lookup)
	case *IsNullExpr:
		isNull := EvalValue(x.X, lookup).IsNull()
		if x.Negated {
			return !isNull
		}
		return isNull
	case *Literal:
		return x.Value.Bool()
	default:
		return false
	}
}

func evalComparison(b *BinaryExpr, lookup Lookup) bool {
	l := EvalValue(b.L, lookup)
	r := EvalValue(b.R, lookup)
	switch b.Op {
	case OpEQ:
		return l.Equal(r)
	case OpNEQ:
		// <> is false when either side is NULL, true when both sides are
		// non-null and not equal — including non-null values of different,
		// incomparable types.
		if l.IsNull() || r.IsNull() {
			return false
		}
		return !l.Equal(r)
	case OpLT:
		c, ok := l.Compare(r)
		return ok && c < 0
	case OpLE:
		c, ok := l.Compare(r)
		return ok && c <= 0
	case OpGT:
		c, ok := l.Compare(r)
		return ok && c > 0
	case OpGE:
		c, ok := l.Compare(r)
		return ok && c >= 0
	default:
		return false
	}
}

// EvalValue evaluates a scalar expression to a property value. Unknown
// constructs and failing operations yield Null.
func EvalValue(e Expr, lookup Lookup) epgm.PropertyValue {
	switch x := e.(type) {
	case *Literal:
		return x.Value
	case *PropertyAccess:
		return lookup(x.Var, x.Key)
	case *BinaryExpr:
		switch x.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			return evalArithmetic(x.Op, EvalValue(x.L, lookup), EvalValue(x.R, lookup))
		}
		return epgm.Null
	default:
		return epgm.Null
	}
}

// evalArithmetic applies a numeric operator; + also concatenates strings.
// Mixed or null operands yield Null; integer pairs stay integral (with /
// truncating), anything else is computed in float64.
func evalArithmetic(op BinaryOp, l, r epgm.PropertyValue) epgm.PropertyValue {
	if op == OpAdd && l.Type() == epgm.TypeString && r.Type() == epgm.TypeString {
		return epgm.PVString(l.Str() + r.Str())
	}
	numeric := func(v epgm.PropertyValue) bool {
		return v.Type() == epgm.TypeInt64 || v.Type() == epgm.TypeFloat64
	}
	if !numeric(l) || !numeric(r) {
		return epgm.Null
	}
	if l.Type() == epgm.TypeInt64 && r.Type() == epgm.TypeInt64 {
		a, b := l.Int(), r.Int()
		switch op {
		case OpAdd:
			return epgm.PVInt(a + b)
		case OpSub:
			return epgm.PVInt(a - b)
		case OpMul:
			return epgm.PVInt(a * b)
		case OpDiv:
			if b == 0 {
				return epgm.Null
			}
			return epgm.PVInt(a / b)
		case OpMod:
			if b == 0 {
				return epgm.Null
			}
			return epgm.PVInt(a % b)
		}
		return epgm.Null
	}
	a, b := l.Float(), r.Float()
	switch op {
	case OpAdd:
		return epgm.PVFloat(a + b)
	case OpSub:
		return epgm.PVFloat(a - b)
	case OpMul:
		return epgm.PVFloat(a * b)
	case OpDiv:
		if b == 0 {
			return epgm.Null
		}
		return epgm.PVFloat(a / b)
	case OpMod:
		return epgm.Null
	}
	return epgm.Null
}

// EvalElement evaluates a conjunction of element-centric predicates against
// a single element's properties, binding every property access of variable
// varName to props.
func EvalElement(preds []Expr, varName string, props epgm.Properties) bool {
	lookup := func(variable, key string) epgm.PropertyValue {
		if variable != varName {
			return epgm.Null
		}
		return props.Get(key)
	}
	for _, p := range preds {
		if !EvalPredicate(p, lookup) {
			return false
		}
	}
	return true
}

// MatchesLabel reports whether an element label satisfies a label
// alternation; an empty alternation matches everything.
func MatchesLabel(label string, alternation []string) bool {
	if len(alternation) == 0 {
		return true
	}
	for _, l := range alternation {
		if l == label {
			return true
		}
	}
	return false
}
