package cypher

import "gradoop/internal/epgm"

// Binding is a query-graph template instantiated with concrete parameter
// values: a deep copy of the template in which every $parameter has been
// substituted by its literal. The Vertices and Edges maps translate template
// elements to their bound counterparts, which planner.Rebind uses to
// re-instantiate a cached physical plan against the binding.
type Binding struct {
	// Graph is the bound query graph; it shares no mutable predicate state
	// with the template, so concurrent bindings of one template are safe.
	Graph *QueryGraph
	// Params are the values the binding was produced from.
	Params map[string]epgm.PropertyValue
	// Vertices and Edges map template query elements to bound ones.
	Vertices map[*QueryVertex]*QueryVertex
	Edges    map[*QueryEdge]*QueryEdge
}

// Bind instantiates a deferred query-graph template with parameter values,
// substituting every Param expression. It returns an error for a $parameter
// without a value — the same validation the eager BuildQueryGraph performs.
// The template itself is not modified and may be bound again concurrently.
func (g *QueryGraph) Bind(params map[string]epgm.PropertyValue) (*Binding, error) {
	b := &Binding{
		Params:   params,
		Vertices: make(map[*QueryVertex]*QueryVertex, len(g.Vertices)),
		Edges:    make(map[*QueryEdge]*QueryEdge, len(g.Edges)),
	}
	out := &QueryGraph{
		vertexByVar: make(map[string]*QueryVertex, len(g.Vertices)),
		edgeByVar:   make(map[string]*QueryEdge, len(g.Edges)),
	}

	bindVertex := func(qv *QueryVertex) (*QueryVertex, error) {
		preds, err := bindExprs(qv.Predicates, params)
		if err != nil {
			return nil, err
		}
		nv := &QueryVertex{
			Var:        qv.Var,
			Anonymous:  qv.Anonymous,
			Labels:     qv.Labels,
			Predicates: preds,
			Projection: qv.Projection,
		}
		b.Vertices[qv] = nv
		out.vertexByVar[nv.Var] = nv
		return nv, nil
	}
	bindEdge := func(qe *QueryEdge) (*QueryEdge, error) {
		preds, err := bindExprs(qe.Predicates, params)
		if err != nil {
			return nil, err
		}
		ne := &QueryEdge{
			Var:        qe.Var,
			Anonymous:  qe.Anonymous,
			Types:      qe.Types,
			Source:     qe.Source,
			Target:     qe.Target,
			Undirected: qe.Undirected,
			MinHops:    qe.MinHops,
			MaxHops:    qe.MaxHops,
			Predicates: preds,
			Projection: qe.Projection,
		}
		b.Edges[qe] = ne
		out.edgeByVar[ne.Var] = ne
		return ne, nil
	}
	bindGroup := func(og *OptionalGroup) (*OptionalGroup, error) {
		ng := &OptionalGroup{}
		for _, qv := range og.Vertices {
			nv, err := bindVertex(qv)
			if err != nil {
				return nil, err
			}
			ng.Vertices = append(ng.Vertices, nv)
		}
		for _, qe := range og.Edges {
			ne, err := bindEdge(qe)
			if err != nil {
				return nil, err
			}
			ng.Edges = append(ng.Edges, ne)
		}
		var err error
		ng.Predicates, err = bindExprs(og.Predicates, params)
		return ng, err
	}

	for _, qv := range g.Vertices {
		nv, err := bindVertex(qv)
		if err != nil {
			return nil, err
		}
		out.Vertices = append(out.Vertices, nv)
	}
	for _, qe := range g.Edges {
		ne, err := bindEdge(qe)
		if err != nil {
			return nil, err
		}
		out.Edges = append(out.Edges, ne)
	}
	var err error
	if out.Global, err = bindExprs(g.Global, params); err != nil {
		return nil, err
	}
	for _, og := range g.Optional {
		ng, err := bindGroup(og)
		if err != nil {
			return nil, err
		}
		out.Optional = append(out.Optional, ng)
	}
	for _, eg := range g.Existence {
		ng, err := bindGroup(&eg.OptionalGroup)
		if err != nil {
			return nil, err
		}
		out.Existence = append(out.Existence, &ExistenceGroup{OptionalGroup: *ng, Negated: eg.Negated})
	}

	// The RETURN clause is copied with fresh Items/OrderBy slices so the
	// template's AST-backed arrays stay untouched.
	ret := g.Return
	if len(g.Return.Items) > 0 {
		ret.Items = make([]ReturnItem, len(g.Return.Items))
		for i, item := range g.Return.Items {
			resolved, err := resolveParams(item.Expr, params)
			if err != nil {
				return nil, err
			}
			ret.Items[i] = ReturnItem{Expr: resolved, Alias: item.Alias}
		}
	}
	if len(g.Return.OrderBy) > 0 {
		ret.OrderBy = make([]SortItem, len(g.Return.OrderBy))
		for i, s := range g.Return.OrderBy {
			resolved, err := resolveParams(s.Expr, params)
			if err != nil {
				return nil, err
			}
			ret.OrderBy[i] = SortItem{Expr: resolved, Desc: s.Desc}
		}
	}
	out.Return = ret

	b.Graph = out
	return b, nil
}

// bindExprs resolves $parameters in a conjunct list, returning a fresh slice
// (or nil for an empty input).
func bindExprs(exprs []Expr, params map[string]epgm.PropertyValue) ([]Expr, error) {
	if len(exprs) == 0 {
		return nil, nil
	}
	out := make([]Expr, len(exprs))
	for i, e := range exprs {
		resolved, err := resolveParams(e, params)
		if err != nil {
			return nil, err
		}
		out[i] = resolved
	}
	return out, nil
}

// ResolveParams substitutes $parameters in an expression with literal values,
// erroring on a parameter without a value. It is the exported form of the
// substitution used by Bind, for callers that hold raw expressions.
func ResolveParams(e Expr, params map[string]epgm.PropertyValue) (Expr, error) {
	return resolveParams(e, params)
}
