package cypher

import "testing"

// FuzzParse feeds the Cypher lexer and parser arbitrary input. Two
// properties: parsing never panics (errors are the contract — the query
// service passes user text straight in), and the parsed form's String
// rendering is a fixed point — it reparses successfully to a query that
// renders identically. String is deliberately lossy (it renders the
// MATCH/WHERE core, not OPTIONAL MATCH or RETURN), so the round trip pins
// the pattern and predicate printers against the grammar without requiring
// full-query fidelity.
func FuzzParse(f *testing.F) {
	f.Add("MATCH (a:Person)-[e:knows]->(b:Person) WHERE a.age > 20")
	f.Add("MATCH (a)-[e:knows*2..4]->(b) WHERE a.name = 'Alice' RETURN a, b.name")
	f.Add("MATCH (a:A|B)-[e]-(b), (b)-[f]->(c) WHERE NOT a.x = 1 AND (b.y < 2.5 OR c.z <> 'q')")
	f.Add("MATCH (a) OPTIONAL MATCH (a)-[e]->(b) WHERE b.k >= 0 RETURN a")
	f.Add("MATCH ()-[]->()")
	f.Add("MATCH (a {name: 'x', n: 3})-[e {since: 2020}]->(b)")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("String rendering does not reparse\nsource: %q\nrender: %q\nerror:  %v", src, s1, err)
		}
		if s2 := q2.String(); s2 != s1 {
			t.Fatalf("String rendering is not a fixed point\nfirst:  %q\nsecond: %q", s1, s2)
		}
	})
}
