package obs

import (
	"math"
	"math/bits"
	"strconv"
	"strings"
	"sync/atomic"
)

// The histogram is log-linear, the scheme HdrHistogram popularized: values
// below `hsub` land in exact unit-width buckets; above that, every power-of-
// two octave is split into `hsub` linear sub-buckets, so the relative width
// of any bucket is at most 1/hsub (~3.1% for 32 sub-buckets). Quantiles are
// extracted from the full recorded distribution — every observation lands in
// a bucket, nothing is sampled — so the only error is the bucket width, and
// the histogram_test oracle bounds it exactly.
const (
	hsubBits = 5
	hsub     = 1 << hsubBits
	// hbuckets covers the whole non-negative int64 range: hsub exact buckets
	// plus (63-hsubBits) octaves of hsub sub-buckets each.
	hbuckets = (64 - hsubBits) * hsub
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < hsub {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // v's octave; >= hsubBits here
	m := int((uint64(v) >> uint(k-hsubBits)) & (hsub - 1))
	return (k-hsubBits+1)*hsub + m
}

// bucketBounds returns the closed value range [lo, hi] of a bucket.
func bucketBounds(i int) (lo, hi int64) {
	if i < hsub {
		return int64(i), int64(i)
	}
	j := i - hsub
	shift := uint(j / hsub)
	m := int64(j % hsub)
	width := int64(1) << shift
	lo = (hsub + m) * width
	return lo, lo + width - 1
}

// Histogram records a distribution of non-negative int64 observations
// (durations in nanoseconds, byte counts) in log-linear buckets. Observe is
// lock-free and allocation-free; quantile extraction happens on snapshots.
// All methods are nil-safe no-ops on a nil receiver.
type Histogram struct {
	name, help string
	labels     labelPairs
	scale      float64 // exposition multiplier (ScaleNanos for ns → s)

	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [hbuckets]atomic.Int64
}

func newHistogram(name, help string, scale float64) *Histogram {
	if scale == 0 {
		scale = 1
	}
	return &Histogram{name: name, help: help, scale: scale}
}

// NewStandaloneHistogram builds an unregistered histogram for callers that
// need the log-linear distribution machinery (Observe/Quantile/Merge)
// without exposing a metric series — e.g. per-key aggregates whose
// cardinality is unbounded and must never reach the exposition. scale is
// the same exposition multiplier NewHistogram takes; it only matters if
// the histogram is later rendered.
func NewStandaloneHistogram(scale float64) *Histogram {
	return newHistogram("", "", scale)
}

// NewHistogram registers a histogram. scale is the exposition multiplier
// (ScaleNanos for nanosecond observations exposed as seconds; 1 for raw
// units such as bytes). Returns nil on a nil registry.
func (r *Registry) NewHistogram(name, help string, scale float64) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(name, help, scale)
	r.register(h)
	return h
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot returns a point-in-time copy of the distribution. Because the
// counters are updated individually, a snapshot taken concurrently with
// observations may be mid-observation by one count; taken at rest it is
// exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{}
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, BucketCount{Index: i, Count: n})
		}
	}
	return s
}

// BucketCount is one non-empty bucket of a snapshot.
type BucketCount struct {
	Index int
	Count int64
}

// HistogramSnapshot is an immutable copy of a histogram's distribution,
// holding only its non-empty buckets in index order.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets []BucketCount
}

// Merge accumulates another snapshot into s. Bucket counts, totals and
// counts add; Max takes the maximum. Merging is associative and commutative
// (integer addition bucket-wise), which histogram_test pins.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	if len(o.Buckets) == 0 {
		return
	}
	merged := make([]BucketCount, 0, len(s.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Index < o.Buckets[j].Index):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Index < s.Buckets[i].Index:
			merged = append(merged, o.Buckets[j])
			j++
		default:
			merged = append(merged, BucketCount{Index: s.Buckets[i].Index,
				Count: s.Buckets[i].Count + o.Buckets[j].Count})
			i++
			j++
		}
	}
	s.Buckets = merged
}

// Quantile estimates the q-quantile (0 < q <= 1) of the recorded
// distribution using the nearest-rank definition: the value of the
// ceil(q*count)-th smallest observation. For values below 32 the estimate is
// exact; above, it is the midpoint of the rank's bucket, within 1/32 of the
// true value. Returns 0 for an empty distribution.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			lo, hi := bucketBounds(b.Index)
			mid := lo + (hi-lo)/2
			if mid > s.Max {
				mid = s.Max
			}
			return mid
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the observations, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) expose(sb *strings.Builder) {
	header(sb, h.name, h.help, "summary")
	h.exposeSamples(sb)
}

// exposeQuantiles is the fixed quantile set every histogram exposes.
var exposeQuantiles = []float64{0.5, 0.95, 0.99}

// exposeSamples writes the histogram's summary samples: one quantile sample
// per exposed quantile plus the _sum and _count series, all carrying the
// histogram's labels.
func (h *Histogram) exposeSamples(sb *strings.Builder) {
	s := h.Snapshot()
	for _, q := range exposeQuantiles {
		labels := append(labelPairs{}, h.labels...)
		labels = append(labels, labelPair{"quantile", strconv.FormatFloat(q, 'g', -1, 64)})
		sample(sb, h.name, labels, float64(s.Quantile(q))*h.scale)
	}
	sample(sb, h.name+"_sum", h.labels, float64(s.Sum)*h.scale)
	sample(sb, h.name+"_count", h.labels, float64(s.Count))
}

// labelPair is one label name/value pair of a sample.
type labelPair struct {
	name, value string
}

type labelPairs []labelPair

// header writes the # HELP / # TYPE comment block of a metric family.
func header(sb *strings.Builder, name, help, typ string) {
	if help != "" {
		sb.WriteString("# HELP ")
		sb.WriteString(name)
		sb.WriteByte(' ')
		sb.WriteString(escapeHelp(help))
		sb.WriteByte('\n')
	}
	sb.WriteString("# TYPE ")
	sb.WriteString(name)
	sb.WriteByte(' ')
	sb.WriteString(typ)
	sb.WriteByte('\n')
}

// sample writes one exposition sample line: name{labels} value.
func sample(sb *strings.Builder, name string, labels labelPairs, v float64) {
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatValue(v))
	sb.WriteByte('\n')
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip float, with NaN and infinities spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
