// Package obs is the continuous-telemetry layer: an allocation-free metrics
// registry (atomic counters, callback gauges, and log-linear histograms with
// p50/p95/p99 extraction), Prometheus text-format exposition, and structured
// logging helpers that correlate every record with the request's trace ID.
//
// The registry mirrors the nil-trace-collector guarantee of internal/trace: a
// nil *Registry hands out nil instruments, and every operation on a nil
// instrument is a nil check — no allocation, no atomic, no lock — so code can
// instrument its hot paths unconditionally and pay nothing when telemetry is
// off. On the enabled path, recording is allocation-free too: counters and
// histogram buckets are preallocated atomics, and vector children are cached
// behind an RWMutex read path.
//
// The package imports nothing from the engine, so dataflow, session, server
// and trace can all depend on it without cycles.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds a process's metric instruments and renders them in
// Prometheus text exposition format. Instruments are registered once, at
// package or constructor scope (the obsregister analyzer enforces this), and
// recorded into from arbitrarily many goroutines.
//
// A nil *Registry disables telemetry: every NewX constructor returns a nil
// instrument whose methods are no-ops.
type Registry struct {
	mu          sync.Mutex
	instruments []instrument
	names       map[string]struct{}
}

// instrument is anything the registry can expose: it reports its metric name
// (for ordering and duplicate detection) and writes its exposition block.
type instrument interface {
	metricName() string
	expose(sb *strings.Builder)
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]struct{}{}}
}

// register validates the instrument's name and adds it; duplicate names and
// malformed names panic, because both are programming errors caught at
// construction time (instruments are registered once, at startup).
func (r *Registry) register(in instrument) {
	name := in.metricName()
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric name %q", name))
	}
	r.names[name] = struct{}{}
	r.instruments = append(r.instruments, in)
}

// validMetricName implements the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe no-ops on a nil receiver.
type Counter struct {
	name, help string
	labels     labelPairs
	v          atomic.Int64
}

// NewCounter registers a counter. Returns nil on a nil registry.
func (r *Registry) NewCounter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) metricName() string { return c.name }

func (c *Counter) expose(sb *strings.Builder) {
	header(sb, c.name, c.help, "counter")
	sample(sb, c.name, c.labels, float64(c.v.Load()))
}

// Gauge reports an instantaneous value through a callback, read at scrape
// time — queue depths, cache occupancy, in-flight jobs.
type Gauge struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc registers a callback gauge. Returns nil on a nil registry.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{name: name, help: help, fn: fn}
	r.register(g)
	return g
}

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) expose(sb *strings.Builder) {
	header(sb, g.name, g.help, "gauge")
	sample(sb, g.name, nil, g.fn())
}

// CounterFunc is a callback-backed counter: the owner of the underlying
// monotonic value (e.g. the memory broker's kill count) keeps it, and the
// registry reads it only at scrape time — no double accounting, no hot-path
// cost.
type CounterFunc struct {
	name, help string
	fn         func() float64
}

// NewCounterFunc registers a callback counter. The callback must be
// monotonically non-decreasing. Returns nil on a nil registry.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) *CounterFunc {
	if r == nil {
		return nil
	}
	c := &CounterFunc{name: name, help: help, fn: fn}
	r.register(c)
	return c
}

func (c *CounterFunc) metricName() string { return c.name }

func (c *CounterFunc) expose(sb *strings.Builder) {
	header(sb, c.name, c.help, "counter")
	sample(sb, c.name, nil, c.fn())
}

// CounterVec is a family of counters partitioned by one label. Children are
// created on first use and cached; the hot path is an RLock map lookup with
// no allocation.
type CounterVec struct {
	name, help, label string

	mu       sync.RWMutex
	children map[string]*Counter
}

// NewCounterVec registers a one-label counter family. Returns nil on a nil
// registry.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	v := &CounterVec{name: name, help: help, label: label, children: map[string]*Counter{}}
	r.register(v)
	return v
}

// With returns the child counter for the given label value, creating it on
// first use. Nil-safe: a nil vec returns a nil counter.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.children[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.children[value]; c != nil {
		return c
	}
	c = &Counter{name: v.name, labels: labelPairs{{v.label, value}}}
	v.children[value] = c
	return c
}

func (v *CounterVec) metricName() string { return v.name }

func (v *CounterVec) expose(sb *strings.Builder) {
	header(sb, v.name, v.help, "counter")
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, value := range sortedKeys(v.children) {
		c := v.children[value]
		sample(sb, v.name, c.labels, float64(c.v.Load()))
	}
}

// CounterVec2 is a family of counters partitioned by two labels (for
// endpoint × status code families).
type CounterVec2 struct {
	name, help     string
	label1, label2 string

	mu       sync.RWMutex
	children map[[2]string]*Counter
}

// NewCounterVec2 registers a two-label counter family. Returns nil on a nil
// registry.
func (r *Registry) NewCounterVec2(name, help, label1, label2 string) *CounterVec2 {
	if r == nil {
		return nil
	}
	v := &CounterVec2{name: name, help: help, label1: label1, label2: label2,
		children: map[[2]string]*Counter{}}
	r.register(v)
	return v
}

// With returns the child counter for the given label values, creating it on
// first use. Nil-safe.
func (v *CounterVec2) With(v1, v2 string) *Counter {
	if v == nil {
		return nil
	}
	key := [2]string{v1, v2}
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.children[key]; c != nil {
		return c
	}
	c = &Counter{name: v.name, labels: labelPairs{{v.label1, v1}, {v.label2, v2}}}
	v.children[key] = c
	return c
}

func (v *CounterVec2) metricName() string { return v.name }

func (v *CounterVec2) expose(sb *strings.Builder) {
	header(sb, v.name, v.help, "counter")
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([][2]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		c := v.children[k]
		sample(sb, v.name, c.labels, float64(c.v.Load()))
	}
}

// HistogramVec is a family of histograms partitioned by one label (stage
// kind, endpoint). Children share the family's scale.
type HistogramVec struct {
	name, help, label string
	scale             float64

	mu       sync.RWMutex
	children map[string]*Histogram
}

// NewHistogramVec registers a one-label histogram family. scale is the
// exposition multiplier (ScaleNanos for nanosecond observations exposed as
// seconds; 1 for raw units). Returns nil on a nil registry.
func (r *Registry) NewHistogramVec(name, help, label string, scale float64) *HistogramVec {
	if r == nil {
		return nil
	}
	v := &HistogramVec{name: name, help: help, label: label, scale: scale,
		children: map[string]*Histogram{}}
	r.register(v)
	return v
}

// With returns the child histogram for the given label value, creating it on
// first use. Nil-safe.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.children[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.children[value]; h != nil {
		return h
	}
	h = newHistogram(v.name, "", v.scale)
	h.labels = labelPairs{{v.label, value}}
	v.children[value] = h
	return h
}

func (v *HistogramVec) metricName() string { return v.name }

func (v *HistogramVec) expose(sb *strings.Builder) {
	header(sb, v.name, v.help, "summary")
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, value := range sortedKeys(v.children) {
		v.children[value].exposeSamples(sb)
	}
}

// ScaleNanos is the exposition scale for histograms observing nanoseconds
// (time.Duration values) that should be exposed in seconds.
const ScaleNanos = 1e-9

// ObserveSince records the time elapsed since start into the histogram; a
// convenience for latency instrumentation. Nil-safe.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// WritePrometheus renders every registered instrument in Prometheus text
// exposition format (version 0.0.4), sorted by metric name. A nil registry
// writes nothing — an empty exposition is a valid one.
func (r *Registry) WritePrometheus(sb *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	instruments := append([]instrument(nil), r.instruments...)
	r.mu.Unlock()
	sort.SliceStable(instruments, func(i, j int) bool {
		return instruments[i].metricName() < instruments[j].metricName()
	})
	for _, in := range instruments {
		in.expose(sb)
	}
}

// Exposition returns the registry's full Prometheus text exposition.
func (r *Registry) Exposition() string {
	var sb strings.Builder
	r.WritePrometheus(&sb)
	return sb.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
