package obs

import (
	"context"
	"log/slog"
)

// traceIDKey carries the request's trace ID through a context.
type traceIDKey struct{}

// WithTraceID returns a context carrying the given trace ID. The server
// stamps every request's context with its X-Trace-Id so logs emitted
// anywhere below the handler — session, engine, slow-query log — correlate
// back to the response header.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom extracts the trace ID from a context, or "" when absent. Nil
// contexts are accepted.
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// tracingHandler decorates a slog.Handler so every record logged with a
// context carrying a trace ID gains a trace_id attribute.
type tracingHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps a slog handler with trace-ID correlation: records
// logged through a context stamped by WithTraceID carry trace_id=<id>.
func NewLogHandler(inner slog.Handler) slog.Handler {
	return tracingHandler{inner: inner}
}

// Enabled implements slog.Handler.
func (h tracingHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler, injecting the context's trace ID.
func (h tracingHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := TraceIDFrom(ctx); id != "" {
		r = r.Clone()
		r.AddAttrs(slog.String("trace_id", id))
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs implements slog.Handler.
func (h tracingHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return tracingHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler.
func (h tracingHandler) WithGroup(name string) slog.Handler {
	return tracingHandler{inner: h.inner.WithGroup(name)}
}
