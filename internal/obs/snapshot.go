package obs

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Registry snapshots and the federated exposition. A worker process cannot
// be scraped directly — it speaks only the cluster's frame protocol — so it
// ships a Snapshot of its registry inside each telemetry bundle, and the
// coordinator's server renders the latest snapshot of every roster member
// as one per-worker-labeled section of its own /metrics exposition: a
// single scrape covers the whole cluster.
//
// Counters and sums in a snapshot merge associatively (they are plain
// additions), so downstream consumers can aggregate across workers;
// histogram quantiles are extracted per worker before shipping, which is
// deliberate — quantiles of a merged population hide exactly the straggler
// asymmetry the per-worker labels exist to show.

// MetricSample is one exposed sample of a family: an optional name suffix
// ("_sum", "_count"), the sample's label pairs flattened as
// name,value,name,value..., and the exposition value (already scaled).
type MetricSample struct {
	Suffix string
	Labels []string
	Value  float64
}

// MetricFamily is one instrument's exposed state: its name, help, type
// ("counter", "gauge" or "summary") and samples.
type MetricFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []MetricSample
}

// Snapshot is a point-in-time copy of every instrument in a registry, in
// exposition (name-sorted) order.
type Snapshot struct {
	Families []MetricFamily
}

// Snapshot captures the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	instruments := append([]instrument(nil), r.instruments...)
	r.mu.Unlock()
	sort.SliceStable(instruments, func(i, j int) bool {
		return instruments[i].metricName() < instruments[j].metricName()
	})
	for _, in := range instruments {
		s.Families = append(s.Families, familySnapshot(in))
	}
	return s
}

// familySnapshot captures one instrument's exposed state, mirroring its
// expose method sample for sample.
func familySnapshot(in instrument) MetricFamily {
	switch in := in.(type) {
	case *Counter:
		return MetricFamily{Name: in.name, Help: in.help, Type: "counter",
			Samples: []MetricSample{{Value: float64(in.v.Load())}}}
	case *Gauge:
		return MetricFamily{Name: in.name, Help: in.help, Type: "gauge",
			Samples: []MetricSample{{Value: in.fn()}}}
	case *CounterFunc:
		return MetricFamily{Name: in.name, Help: in.help, Type: "counter",
			Samples: []MetricSample{{Value: in.fn()}}}
	case *CounterVec:
		f := MetricFamily{Name: in.name, Help: in.help, Type: "counter"}
		in.mu.RLock()
		defer in.mu.RUnlock()
		for _, value := range sortedKeys(in.children) {
			f.Samples = append(f.Samples, MetricSample{
				Labels: []string{in.label, value},
				Value:  float64(in.children[value].v.Load()),
			})
		}
		return f
	case *CounterVec2:
		f := MetricFamily{Name: in.name, Help: in.help, Type: "counter"}
		in.mu.RLock()
		defer in.mu.RUnlock()
		keys := make([][2]string, 0, len(in.children))
		for k := range in.children {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			f.Samples = append(f.Samples, MetricSample{
				Labels: []string{in.label1, k[0], in.label2, k[1]},
				Value:  float64(in.children[k].v.Load()),
			})
		}
		return f
	case *Histogram:
		return MetricFamily{Name: in.name, Help: in.help, Type: "summary",
			Samples: in.sampleSnapshots(nil)}
	case *HistogramVec:
		f := MetricFamily{Name: in.name, Help: in.help, Type: "summary"}
		in.mu.RLock()
		defer in.mu.RUnlock()
		for _, value := range sortedKeys(in.children) {
			f.Samples = append(f.Samples,
				in.children[value].sampleSnapshots([]string{in.label, value})...)
		}
		return f
	default:
		return MetricFamily{Name: in.metricName(), Type: "untyped"}
	}
}

// sampleSnapshots mirrors exposeSamples: one quantile sample per exposed
// quantile plus _sum and _count, all carrying the given base labels.
func (h *Histogram) sampleSnapshots(baseLabels []string) []MetricSample {
	s := h.Snapshot()
	out := make([]MetricSample, 0, len(exposeQuantiles)+2)
	for _, q := range exposeQuantiles {
		labels := append(append([]string(nil), baseLabels...),
			"quantile", strconv.FormatFloat(q, 'g', -1, 64))
		out = append(out, MetricSample{Labels: labels,
			Value: float64(s.Quantile(q)) * h.scale})
	}
	out = append(out, MetricSample{Suffix: "_sum", Labels: baseLabels,
		Value: float64(s.Sum) * h.scale})
	out = append(out, MetricSample{Suffix: "_count", Labels: baseLabels,
		Value: float64(s.Count)})
	return out
}

// AppendSnapshot appends the snapshot's wire form: a count-prefixed family
// list. Big-endian, uint32 length prefixes, float64s as IEEE-754 bits —
// the same conventions as the engine's wire package, hand-rolled on the
// standard library because obs imports nothing from the engine.
func AppendSnapshot(dst []byte, s *Snapshot) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.Families)))
	for i := range s.Families {
		dst = appendMetricFamily(dst, &s.Families[i])
	}
	return dst
}

// ReadSnapshot consumes an AppendSnapshot encoding.
func ReadSnapshot(b []byte) (Snapshot, []byte, error) {
	var s Snapshot
	if len(b) < 4 {
		return s, nil, fmt.Errorf("obs: truncated family count (%d bytes)", len(b))
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if n == 0 {
		return s, b, nil
	}
	// Every family needs at least its three string lengths and sample count.
	if uint64(n)*16 > uint64(len(b)) {
		return s, nil, fmt.Errorf("obs: family count %d exceeds payload (%d bytes)", n, len(b))
	}
	s.Families = make([]MetricFamily, n)
	var err error
	for i := range s.Families {
		if s.Families[i], b, err = readMetricFamily(b); err != nil {
			return s, nil, fmt.Errorf("obs: family %d/%d: %w", i, n, err)
		}
	}
	return s, b, nil
}

// appendMetricFamily appends one family: name, help, type, samples.
func appendMetricFamily(dst []byte, f *MetricFamily) []byte {
	dst = appendSnapString(dst, f.Name)
	dst = appendSnapString(dst, f.Help)
	dst = appendSnapString(dst, f.Type)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Samples)))
	for i := range f.Samples {
		dst = appendMetricSample(dst, &f.Samples[i])
	}
	return dst
}

// readMetricFamily consumes one encoded family.
func readMetricFamily(b []byte) (MetricFamily, []byte, error) {
	var f MetricFamily
	var err error
	if f.Name, b, err = readSnapString(b); err != nil {
		return f, nil, err
	}
	if f.Help, b, err = readSnapString(b); err != nil {
		return f, nil, err
	}
	if f.Type, b, err = readSnapString(b); err != nil {
		return f, nil, err
	}
	if len(b) < 4 {
		return f, nil, fmt.Errorf("obs: truncated sample count (%d bytes)", len(b))
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	// Every sample needs at least its suffix length, label count and value.
	if uint64(n)*16 > uint64(len(b)) {
		return f, nil, fmt.Errorf("obs: sample count %d exceeds payload (%d bytes)", n, len(b))
	}
	if n > 0 {
		f.Samples = make([]MetricSample, n)
		for i := range f.Samples {
			if f.Samples[i], b, err = readMetricSample(b); err != nil {
				return f, nil, err
			}
		}
	}
	return f, b, nil
}

// appendMetricSample appends one sample: suffix, labels, value bits.
func appendMetricSample(dst []byte, s *MetricSample) []byte {
	dst = appendSnapString(dst, s.Suffix)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s.Labels)))
	for _, l := range s.Labels {
		dst = appendSnapString(dst, l)
	}
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(s.Value))
}

// readMetricSample consumes one encoded sample.
func readMetricSample(b []byte) (MetricSample, []byte, error) {
	var s MetricSample
	var err error
	if s.Suffix, b, err = readSnapString(b); err != nil {
		return s, nil, err
	}
	if len(b) < 4 {
		return s, nil, fmt.Errorf("obs: truncated label count (%d bytes)", len(b))
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint64(n)*4 > uint64(len(b)) {
		return s, nil, fmt.Errorf("obs: label count %d exceeds payload (%d bytes)", n, len(b))
	}
	if n > 0 {
		s.Labels = make([]string, n)
		for i := range s.Labels {
			if s.Labels[i], b, err = readSnapString(b); err != nil {
				return s, nil, err
			}
		}
	}
	if len(b) < 8 {
		return s, nil, fmt.Errorf("obs: truncated sample value (%d bytes)", len(b))
	}
	s.Value = math.Float64frombits(binary.BigEndian.Uint64(b))
	return s, b[8:], nil
}

// appendSnapString appends a uint32-length-prefixed string.
func appendSnapString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// readSnapString consumes a uint32-length-prefixed string.
func readSnapString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("obs: truncated string length (%d bytes)", len(b))
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return "", nil, fmt.Errorf("obs: truncated string payload (want %d, have %d)", n, len(b))
	}
	return string(b[:n]), b[n:], nil
}

// FederatedSnapshot is one member's labeled snapshot in a federated view.
type FederatedSnapshot struct {
	Label string // the member's identity (worker node ID)
	Snap  *Snapshot
}

// WriteFederated renders the members' snapshots as one exposition section:
// every family is re-rooted under prefix — a name starting with "gradoop_"
// keeps the remainder, anything else is prefixed whole — and every sample
// gains labelName="<member label>" as its first label. Families present on
// several members share one HELP/TYPE header (the first member's help
// wins), so one scrape of the coordinator exposes per-worker-labeled
// series for the entire roster.
func WriteFederated(sb *strings.Builder, prefix, labelName string, members []FederatedSnapshot) {
	type familyText struct {
		help, typ string
		order     int
	}
	families := map[string]*familyText{}
	var order []string
	for _, m := range members {
		if m.Snap == nil {
			continue
		}
		for i := range m.Snap.Families {
			f := &m.Snap.Families[i]
			name := federatedName(prefix, f.Name)
			if _, ok := families[name]; !ok {
				families[name] = &familyText{help: f.Help, typ: f.Type, order: len(order)}
				order = append(order, name)
			}
		}
	}
	sort.Strings(order)
	for _, name := range order {
		ft := families[name]
		header(sb, name, ft.help, ft.typ)
		for _, m := range members {
			if m.Snap == nil {
				continue
			}
			for i := range m.Snap.Families {
				f := &m.Snap.Families[i]
				if federatedName(prefix, f.Name) != name {
					continue
				}
				for j := range f.Samples {
					smp := &f.Samples[j]
					labels := labelPairs{{labelName, m.Label}}
					for k := 0; k+1 < len(smp.Labels); k += 2 {
						labels = append(labels, labelPair{smp.Labels[k], smp.Labels[k+1]})
					}
					sample(sb, name+smp.Suffix, labels, smp.Value)
				}
			}
		}
	}
}

// federatedName re-roots a member's family name under the federation
// prefix: gradoop_stage_duration_seconds federated under gradoop_cluster_
// becomes gradoop_cluster_stage_duration_seconds.
func federatedName(prefix, name string) string {
	return prefix + strings.TrimPrefix(name, "gradoop_")
}
