package obs

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// quantiles is the grid the oracle comparison sweeps.
var quantiles = []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1.0}

// oracle returns the exact nearest-rank quantile of a sorted slice, the
// definition HistogramSnapshot.Quantile approximates.
func oracle(sorted []int64, q float64) int64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkQuantiles records values into a histogram and asserts every grid
// quantile is within one bucket width of the exact sorted-slice answer.
func checkQuantiles(t *testing.T, name string, values []int64) {
	t.Helper()
	h := newHistogram("h", "", 1)
	for _, v := range values {
		h.Observe(v)
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := h.Snapshot()
	if s.Count != int64(len(values)) {
		t.Fatalf("%s: count=%d want %d", name, s.Count, len(values))
	}
	for _, q := range quantiles {
		got := s.Quantile(q)
		want := oracle(sorted, q)
		// The estimate lands in the exact bucket of the true rank value, so
		// the error is bounded by that bucket's width: values < 32 are exact,
		// larger ones within a relative 1/32.
		tol := want >> hsubBits
		if diff := got - want; diff > tol || diff < -tol {
			t.Errorf("%s: q=%g got %d want %d (tol %d)", name, q, got, want, tol)
		}
	}
	// Max and Sum are exact regardless of bucketing.
	if s.Max != sorted[len(sorted)-1] {
		t.Errorf("%s: max=%d want %d", name, s.Max, sorted[len(sorted)-1])
	}
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	if s.Sum != sum {
		t.Errorf("%s: sum=%d want %d", name, s.Sum, sum)
	}
}

// TestQuantilesUniform: uniform values across five orders of magnitude.
func TestQuantilesUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]int64, 20000)
	for i := range values {
		values[i] = rng.Int63n(5_000_000)
	}
	checkQuantiles(t, "uniform", values)
}

// TestQuantilesZipf: a heavy-tailed distribution, the shape query latencies
// actually take.
func TestQuantilesZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	zipf := rand.NewZipf(rng, 1.2, 1, 10_000_000)
	values := make([]int64, 20000)
	for i := range values {
		values[i] = int64(zipf.Uint64())
	}
	checkQuantiles(t, "zipf", values)
}

// TestQuantilesPointMass: every observation identical — all quantiles must
// return a value in that observation's bucket, and small masses exactly.
func TestQuantilesPointMass(t *testing.T) {
	for _, v := range []int64{0, 7, 31, 32, 1000, 123_456_789} {
		values := make([]int64, 5000)
		for i := range values {
			values[i] = v
		}
		checkQuantiles(t, "point-mass", values)
	}
}

// TestQuantileSmallExact: values in the exact region (< 32) extract with
// zero error at every quantile.
func TestQuantileSmallExact(t *testing.T) {
	h := newHistogram("h", "", 1)
	var values []int64
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		v := rng.Int63n(hsub)
		values = append(values, v)
		h.Observe(v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	s := h.Snapshot()
	for _, q := range quantiles {
		if got, want := s.Quantile(q), oracle(values, q); got != want {
			t.Fatalf("q=%g got %d want exactly %d", q, got, want)
		}
	}
}

// TestBucketRoundTrip: every bucket index contains exactly the values its
// bounds claim, across the whole int64 range.
func TestBucketRoundTrip(t *testing.T) {
	probes := []int64{0, 1, 31, 32, 33, 63, 64, 65, 1023, 1024, 1 << 20,
		(1 << 20) + 12345, 1 << 40, math.MaxInt64}
	for _, v := range probes {
		i := bucketIndex(v)
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d landed in bucket %d = [%d,%d]", v, i, lo, hi)
		}
	}
	// Bucket bounds tile the range with no gaps or overlaps.
	for i := 1; i < hbuckets; i++ {
		_, prevHi := bucketBounds(i - 1)
		lo, _ := bucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d starts at %d, previous ends at %d", i, lo, prevHi)
		}
	}
}

// TestMergeAssociativity: (a+b)+c equals a+(b+c) snapshot-for-snapshot,
// including extracted quantiles.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	make3 := func() HistogramSnapshot {
		h := newHistogram("h", "", 1)
		n := 1000 + rng.Intn(1000)
		for i := 0; i < n; i++ {
			h.Observe(rng.Int63n(1 << uint(10+rng.Intn(20))))
		}
		return h.Snapshot()
	}
	a, b, c := make3(), make3(), make3()

	clone := func(s HistogramSnapshot) HistogramSnapshot {
		s.Buckets = append([]BucketCount(nil), s.Buckets...)
		return s
	}
	left := clone(a)
	left.Merge(b)
	left.Merge(c)

	bc := clone(b)
	bc.Merge(c)
	right := clone(a)
	right.Merge(bc)

	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", left, right)
	}
	for _, q := range quantiles {
		if left.Quantile(q) != right.Quantile(q) {
			t.Fatalf("q=%g differs after re-associated merges", q)
		}
	}
	// Commutativity for good measure.
	ba := clone(b)
	ba.Merge(a)
	ab := clone(a)
	ab.Merge(b)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge not commutative")
	}
}

// TestConcurrentObserve: concurrent recorders under -race; totals must be
// exact because every observation is counted, never sampled.
func TestConcurrentObserve(t *testing.T) {
	h := newHistogram("h", "", 1)
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1_000_000))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count=%d want %d", s.Count, goroutines*per)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}
