package obs

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// snapshotRegistry builds a registry covering every instrument kind the
// snapshot type-switch handles.
func snapshotRegistry() *Registry {
	r := NewRegistry()
	c := r.NewCounter("gradoop_worker_jobs_total", "jobs")
	c.Add(7)
	r.NewGaugeFunc("gradoop_worker_spans_retained", "ledger", func() float64 { return 3 })
	r.NewCounterFunc("gradoop_worker_spans_dropped_total", "dropped", func() float64 { return 11 })
	cv := r.NewCounterVec("gradoop_stage_retries_total", "retries", "kind")
	cv.With("join").Add(2)
	cv.With("map").Inc()
	cv2 := r.NewCounterVec2("gradoop_http_requests_total", "http", "endpoint", "code")
	cv2.With("/query", "200").Add(5)
	h := r.NewHistogram("gradoop_worker_job_seconds", "job time", ScaleNanos)
	h.Observe(int64(2 * time.Millisecond))
	h.Observe(int64(8 * time.Millisecond))
	hv := r.NewHistogramVec("gradoop_stage_duration_seconds", "stages", "kind", ScaleNanos)
	hv.With("join").Observe(int64(time.Millisecond))
	return r
}

// TestSnapshotMirrorsExposition checks the snapshot covers every family in
// name-sorted order with the exposed values.
func TestSnapshotMirrorsExposition(t *testing.T) {
	r := snapshotRegistry()
	s := r.Snapshot()
	if len(s.Families) != 7 {
		t.Fatalf("snapshot has %d families, want 7", len(s.Families))
	}
	for i := 1; i < len(s.Families); i++ {
		if s.Families[i-1].Name > s.Families[i].Name {
			t.Fatalf("families out of order: %s before %s", s.Families[i-1].Name, s.Families[i].Name)
		}
	}
	byName := map[string]MetricFamily{}
	for _, f := range s.Families {
		byName[f.Name] = f
	}
	if v := byName["gradoop_worker_jobs_total"].Samples[0].Value; v != 7 {
		t.Fatalf("counter snapshot %v, want 7", v)
	}
	if v := byName["gradoop_worker_spans_retained"].Samples[0].Value; v != 3 {
		t.Fatalf("gauge-func snapshot %v, want 3", v)
	}
	retries := byName["gradoop_stage_retries_total"]
	if len(retries.Samples) != 2 || retries.Samples[0].Labels[1] != "join" || retries.Samples[0].Value != 2 {
		t.Fatalf("counter-vec snapshot %+v", retries.Samples)
	}
	jobTime := byName["gradoop_worker_job_seconds"]
	if jobTime.Type != "summary" {
		t.Fatalf("histogram snapshot type %q, want summary", jobTime.Type)
	}
	var count, sum float64
	for _, smp := range jobTime.Samples {
		switch smp.Suffix {
		case "_count":
			count = smp.Value
		case "_sum":
			sum = smp.Value
		}
	}
	if count != 2 || sum < 0.009 || sum > 0.011 {
		t.Fatalf("histogram count=%v sum=%v, want 2 observations summing ~10ms", count, sum)
	}
}

// TestSnapshotWireRoundTrip pins the snapshot codec.
func TestSnapshotWireRoundTrip(t *testing.T) {
	s := snapshotRegistry().Snapshot()
	buf := AppendSnapshot(nil, &s)
	got, rest, err := ReadSnapshot(buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("ReadSnapshot left %d bytes", len(rest))
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, s)
	}
}

// TestSnapshotWireTruncated feeds every strict prefix: clean errors, no
// panics, no fabricated families.
func TestSnapshotWireTruncated(t *testing.T) {
	s := snapshotRegistry().Snapshot()
	buf := AppendSnapshot(nil, &s)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := ReadSnapshot(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(buf))
		}
	}
}

// TestWriteFederated checks the federated section: names re-rooted under
// the prefix, the member label injected first, one HELP/TYPE header per
// family, structurally valid text format 0.0.4.
func TestWriteFederated(t *testing.T) {
	s1 := snapshotRegistry().Snapshot()
	s2 := snapshotRegistry().Snapshot()
	var sb strings.Builder
	WriteFederated(&sb, "gradoop_cluster_", "worker", []FederatedSnapshot{
		{Label: "w0", Snap: &s1},
		{Label: "w1", Snap: &s2},
		{Label: "dead", Snap: nil}, // never shipped a bundle; skipped
	})
	out := sb.String()

	for _, want := range []string{
		"# TYPE gradoop_cluster_worker_jobs_total counter",
		`gradoop_cluster_worker_jobs_total{worker="w0"} 7`,
		`gradoop_cluster_worker_jobs_total{worker="w1"} 7`,
		`gradoop_cluster_stage_retries_total{worker="w0",kind="join"} 2`,
		`gradoop_cluster_worker_job_seconds_count{worker="w1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("federated exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `worker="dead"`) {
		t.Error("nil snapshot produced samples")
	}
	// One header per family even with two members exposing it.
	if n := strings.Count(out, "# TYPE gradoop_cluster_worker_jobs_total"); n != 1 {
		t.Errorf("family header repeated %d times", n)
	}
	// Every line is a comment or a parsable sample.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") || !strings.Contains(line, " ") {
			t.Errorf("bad federated line %q", line)
		}
	}
}
