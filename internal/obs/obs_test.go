package obs

import (
	"bytes"
	"context"
	"log/slog"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestCountersAndVecs: basic recording and exposition of every instrument
// kind.
func TestCountersAndVecs(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "jobs executed")
	c.Add(3)
	v := r.NewCounterVec("errors_total", "errors by kind", "kind")
	v.With("timeout").Inc()
	v.With("timeout").Inc()
	v.With("invalid").Inc()
	v2 := r.NewCounterVec2("responses_total", "responses", "endpoint", "code")
	v2.With("/query", "200").Add(5)
	r.NewGaugeFunc("queue_depth", "queued requests", func() float64 { return 7 })
	h := r.NewHistogram("latency_seconds", "request latency", ScaleNanos)
	h.Observe(int64(2 * time.Second))

	out := r.Exposition()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"jobs_total 3",
		`errors_total{kind="invalid"} 1`,
		`errors_total{kind="timeout"} 2`,
		`responses_total{endpoint="/query",code="200"} 5`,
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		"# TYPE latency_seconds summary",
		`latency_seconds{quantile="0.99"}`,
		"latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The scaled 2s observation exposes as ~2 seconds, not 2e9.
	if !strings.Contains(out, "latency_seconds_sum 2\n") {
		t.Errorf("scale not applied:\n%s", out)
	}
}

// expositionLine matches one valid Prometheus text-format sample line.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|-?[0-9.eE+-]+)$`)

// TestExpositionParses: every line of a populated registry's exposition is
// either a well-formed comment or a well-formed sample, and every sample's
// family appeared in a preceding # TYPE line.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("a_total", "with \"quotes\" and \\backslash")
	v := r.NewCounterVec("b_total", "b", "label")
	v.With(`weird "value" with \slashes` + "\nand newline").Inc()
	h := r.NewHistogramVec("c_seconds", "c", "kind", ScaleNanos)
	h.With("Join").Observe(12345)
	h.With("Map").Observe(678)
	r.NewGaugeFunc("d", "", func() float64 { return 1.5 })

	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(r.Exposition(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		family = strings.TrimSuffix(family, "_count")
		if !typed[name] && !typed[family] {
			t.Fatalf("sample %q has no preceding TYPE", line)
		}
	}
}

// TestNilRegistryZeroCost: a nil registry hands out nil instruments whose
// every operation is allocation-free (the disabled-telemetry guarantee the
// engine's hot path relies on).
func TestNilRegistryZeroCost(t *testing.T) {
	var r *Registry
	c := r.NewCounter("x", "")
	v := r.NewCounterVec("y", "", "l")
	v2 := r.NewCounterVec2("y2", "", "a", "b")
	h := r.NewHistogram("z", "", 1)
	hv := r.NewHistogramVec("w", "", "l", 1)
	if c != nil || v != nil || v2 != nil || h != nil || hv != nil {
		t.Fatal("nil registry handed out a live instrument")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(5)
		v.With("k").Inc()
		v2.With("a", "b").Inc()
		h.Observe(123)
		h.ObserveSince(time.Time{})
		hv.With("k").Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocated %v per op", allocs)
	}
	if r.Exposition() != "" {
		t.Fatal("nil registry exposed samples")
	}
}

// TestEnabledPathNoAlloc: recording into live instruments allocates nothing
// once the vec children exist — the registry is usable on per-stage and
// per-request hot paths.
func TestEnabledPathNoAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("x_total", "")
	h := r.NewHistogram("h", "", 1)
	v := r.NewCounterVec("v_total", "", "kind")
	hv := r.NewHistogramVec("hv", "", "kind", 1)
	v.With("warm")
	hv.With("warm")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(987654321)
		v.With("warm").Inc()
		hv.With("warm").Observe(55)
	})
	if allocs != 0 {
		t.Fatalf("enabled hot path allocated %v per op", allocs)
	}
}

// TestRegistryPanicsOnBadRegistration: duplicate and malformed names are
// programming errors caught at construction.
func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.NewCounter("dup", "")
	// The closures below construct inside literals on purpose: they prove
	// the duplicate/malformed-name panics obsregister exists to prevent.
	//lint:ignore obsregister panic-path test constructs inside closures deliberately
	expectPanic("duplicate", func() { r.NewCounter("dup", "") })
	//lint:ignore obsregister panic-path test constructs inside closures deliberately
	expectPanic("bad name", func() { r.NewCounter("bad-name", "") })
	//lint:ignore obsregister panic-path test constructs inside closures deliberately
	expectPanic("empty name", func() { r.NewCounter("", "") })
}

// TestTraceIDHandler: records logged with a stamped context carry trace_id;
// records without a stamp don't.
func TestTraceIDHandler(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(slog.NewJSONHandler(&buf, nil)))

	ctx := WithTraceID(context.Background(), "00c0ffee")
	logger.LogAttrs(ctx, slog.LevelInfo, "with trace")
	logger.LogAttrs(context.Background(), slog.LevelInfo, "without trace")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], `"trace_id":"00c0ffee"`) {
		t.Errorf("first record lacks trace_id: %s", lines[0])
	}
	if strings.Contains(lines[1], "trace_id") {
		t.Errorf("unstamped record gained a trace_id: %s", lines[1])
	}
	if TraceIDFrom(nil) != "" || TraceIDFrom(context.Background()) != "" {
		t.Error("TraceIDFrom invented an ID")
	}
}
