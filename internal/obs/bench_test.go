package obs

import "testing"

// BenchmarkDisabledRegistry is the CI allocation guard for the disabled
// hot path: every instrument obtained from a nil registry is nil, and
// recording into it must cost a nil check — zero allocations. `make
// alloc-guard` fails the build if allocs/op is ever nonzero.
func BenchmarkDisabledRegistry(b *testing.B) {
	var r *Registry // telemetry off
	c := r.NewCounter("bench_total", "")
	h := r.NewHistogram("bench_seconds", "", ScaleNanos)
	v := r.NewCounterVec("bench_by_kind_total", "", "kind")
	hv := r.NewHistogramVec("bench_stage_seconds", "", "kind", ScaleNanos)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(3)
		h.Observe(int64(i))
		v.With("a").Inc()
		hv.With("a").Observe(int64(i))
	}
}

// BenchmarkEnabledRegistry is the paired measurement: the real recording
// cost once children are warm. Also allocation-free, so the delta against
// the disabled benchmark is pure atomic work.
func BenchmarkEnabledRegistry(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("bench_total", "")
	h := r.NewHistogram("bench_seconds", "", ScaleNanos)
	v := r.NewCounterVec("bench_by_kind_total", "", "kind")
	hv := r.NewHistogramVec("bench_stage_seconds", "", "kind", ScaleNanos)
	v.With("a").Inc() // warm the children outside the timed loop
	hv.With("a").Observe(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		c.Add(3)
		h.Observe(int64(i))
		v.With("a").Inc()
		hv.With("a").Observe(int64(i))
	}
}
