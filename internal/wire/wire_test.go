package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"sort"
	"testing"

	"gradoop/internal/epgm"
)

func sampleParams() map[string]epgm.PropertyValue {
	return map[string]epgm.PropertyValue{
		"name":  epgm.PVString("Alice\x00Bob"), // NUL inside a value must not forge boundaries
		"age":   epgm.PVInt(42),
		"score": epgm.PVFloat(3.5),
		"ok":    epgm.PVBool(true),
		"gone":  epgm.Null,
	}
}

// legacyParamsKey is the historical session paramsKey encoding, reproduced
// verbatim: the wire package must stay byte-identical to it, or every
// result-cache key changes meaning across an upgrade.
func legacyParamsKey(params map[string]epgm.PropertyValue) string {
	if len(params) == 0 {
		return ""
	}
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf []byte
	for _, name := range names {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(name)))
		buf = append(buf, name...)
		buf = params[name].Encode(buf)
	}
	return string(buf)
}

func TestAppendParamsMatchesLegacyEncoding(t *testing.T) {
	for _, params := range []map[string]epgm.PropertyValue{
		nil,
		{},
		sampleParams(),
		{"x": epgm.PVString("")},
	} {
		got := string(AppendParams(nil, params))
		want := legacyParamsKey(params)
		if got != want {
			t.Fatalf("AppendParams(%v) = %q, legacy = %q", params, got, want)
		}
	}
}

func TestParamsRoundTrip(t *testing.T) {
	params := sampleParams()
	blob := AppendParams(nil, params)
	got, err := ReadParams(blob)
	if err != nil {
		t.Fatalf("ReadParams: %v", err)
	}
	if len(got) != len(params) {
		t.Fatalf("round trip lost entries: got %v", got)
	}
	for name, want := range params {
		g := got[name]
		if g.Type() != want.Type() || g.String() != want.String() {
			t.Fatalf("param %q: got %v, want %v", name, g, want)
		}
	}
	if m, err := ReadParams(nil); err != nil || m != nil {
		t.Fatalf("ReadParams(nil) = %v, %v", m, err)
	}
}

func TestParamsReadRejectsCorruption(t *testing.T) {
	blob := AppendParams(nil, sampleParams())
	for cut := 1; cut < len(blob); cut++ {
		if _, err := ReadParams(blob[:cut]); err == nil {
			// Some prefixes happen to be self-delimiting only if they end
			// exactly on a pair boundary; anything else must error.
			if !validPairBoundary(blob[:cut]) {
				t.Fatalf("ReadParams accepted torn blob of %d/%d bytes", cut, len(blob))
			}
		}
	}
}

// validPairBoundary reports whether b is a whole number of name/value pairs.
func validPairBoundary(b []byte) bool {
	for len(b) > 0 {
		n, rest, err := ReadUint32(b)
		if err != nil || uint32(len(rest)) < n {
			return false
		}
		_, rest2, err := ReadValue(rest[n:])
		if err != nil {
			return false
		}
		b = rest2
	}
	return true
}

func TestElementRoundTrips(t *testing.T) {
	v := epgm.Vertex{
		ID:    7,
		Label: "Person",
		Properties: epgm.Properties{
			{Key: "name", Value: epgm.PVString("Ada")},
			{Key: "age", Value: epgm.PVInt(36)},
		},
		GraphIDs: epgm.NewIDSet(1, 2),
	}
	blob := AppendVertex(nil, v)
	got, rest, err := ReadVertex(blob)
	if err != nil || len(rest) != 0 {
		t.Fatalf("ReadVertex: %v (rest %d)", err, len(rest))
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("vertex round trip: got %+v, want %+v", got, v)
	}

	e := epgm.Edge{
		ID: 9, Label: "knows", Source: 7, Target: 8,
		Properties: epgm.Properties{{Key: "since", Value: epgm.PVInt(2017)}},
		GraphIDs:   epgm.NewIDSet(1),
	}
	eb := AppendEdge(nil, e)
	gotE, rest, err := ReadEdge(eb)
	if err != nil || len(rest) != 0 {
		t.Fatalf("ReadEdge: %v", err)
	}
	if !reflect.DeepEqual(gotE, e) {
		t.Fatalf("edge round trip: got %+v, want %+v", gotE, e)
	}

	h := epgm.GraphHead{ID: 1, Label: "g", Properties: epgm.Properties{{Key: "k", Value: epgm.PVBool(false)}}}
	hb := AppendGraphHead(nil, h)
	gotH, rest, err := ReadGraphHead(hb)
	if err != nil || len(rest) != 0 {
		t.Fatalf("ReadGraphHead: %v", err)
	}
	if !reflect.DeepEqual(gotH, h) {
		t.Fatalf("graph head round trip: got %+v, want %+v", gotH, h)
	}
}

func TestTruncatedElementDecoding(t *testing.T) {
	v := epgm.Vertex{ID: 7, Label: "Person", Properties: epgm.Properties{{Key: "name", Value: epgm.PVString("Ada")}}}
	blob := AppendVertex(nil, v)
	for cut := 0; cut < len(blob); cut++ {
		if _, _, err := ReadVertex(blob[:cut]); err == nil {
			t.Fatalf("ReadVertex accepted %d/%d bytes", cut, len(blob))
		}
	}
	// A hostile count prefix must not drive a huge allocation.
	bad := AppendUint32(nil, 0xffffffff)
	if _, _, err := ReadProperties(bad); err == nil {
		t.Fatal("ReadProperties accepted absurd count")
	}
	if _, _, err := ReadIDSet(bad); err == nil {
		t.Fatal("ReadIDSet accepted absurd count")
	}
}

func TestPrimitiveHelpers(t *testing.T) {
	b := AppendUint64(AppendUint32(nil, 7), 9)
	b = AppendString(b, "hi")
	b = AppendBytes(b, []byte{1, 2, 3})

	v32, rest, err := ReadUint32(b)
	if err != nil || v32 != 7 {
		t.Fatalf("ReadUint32 = %d, %v", v32, err)
	}
	v64, rest, err := ReadUint64(rest)
	if err != nil || v64 != 9 {
		t.Fatalf("ReadUint64 = %d, %v", v64, err)
	}
	s, rest, err := ReadString(rest)
	if err != nil || s != "hi" {
		t.Fatalf("ReadString = %q, %v", s, err)
	}
	p, rest, err := ReadBytes(rest)
	if err != nil || !bytes.Equal(p, []byte{1, 2, 3}) || len(rest) != 0 {
		t.Fatalf("ReadBytes = %v, %v (rest %d)", p, err, len(rest))
	}
	if _, _, err := ReadUint64(nil); err == nil {
		t.Fatal("ReadUint64 accepted empty input")
	}
}
