// Package wire is the engine's shared length-prefixed binary codec. It
// grew out of the session's result-cache parameter key — a deterministic,
// collision-proof encoding of property-value bindings — and is now the one
// place that format lives: the cache key, the cluster shuffle protocol and
// the job-spec parameter shipping all read and write these bytes, so a
// value that round-trips here round-trips everywhere.
//
// Layout conventions: all integers are big-endian; strings and byte blobs
// are uint32-length-prefixed; property values use epgm.PropertyValue's own
// type-byte + payload encoding (the embedding propData format). Decoders
// never panic on truncated or corrupt input — they return an error, which
// the frame protocol maps to a structured job failure.
package wire

import (
	"encoding/binary"
	"fmt"
	"sort"

	"gradoop/internal/epgm"
)

// AppendUint32 appends v big-endian.
func AppendUint32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }

// ReadUint32 consumes a big-endian uint32.
func ReadUint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("wire: truncated uint32 (%d bytes)", len(b))
	}
	return binary.BigEndian.Uint32(b), b[4:], nil
}

// AppendUint64 appends v big-endian.
func AppendUint64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }

// ReadUint64 consumes a big-endian uint64.
func ReadUint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("wire: truncated uint64 (%d bytes)", len(b))
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

// AppendString appends a uint32-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// ReadString consumes a uint32-length-prefixed string.
func ReadString(b []byte) (string, []byte, error) {
	n, rest, err := ReadUint32(b)
	if err != nil {
		return "", nil, err
	}
	if uint32(len(rest)) < n {
		return "", nil, fmt.Errorf("wire: truncated string payload (want %d, have %d)", n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}

// AppendBytes appends a uint32-length-prefixed byte blob.
func AppendBytes(dst []byte, p []byte) []byte {
	dst = AppendUint32(dst, uint32(len(p)))
	return append(dst, p...)
}

// ReadBytes consumes a uint32-length-prefixed byte blob. The returned slice
// is a copy, so decoded values never alias a reusable receive buffer.
func ReadBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := ReadUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if uint32(len(rest)) < n {
		return nil, nil, fmt.Errorf("wire: truncated bytes payload (want %d, have %d)", n, len(rest))
	}
	if n == 0 {
		return nil, rest, nil
	}
	return append([]byte(nil), rest[:n]...), rest[n:], nil
}

// AppendValue appends one property value (type byte + payload).
func AppendValue(dst []byte, v epgm.PropertyValue) []byte { return v.Encode(dst) }

// ReadValue consumes one property value.
func ReadValue(b []byte) (epgm.PropertyValue, []byte, error) {
	v, n, err := epgm.DecodePropertyValue(b)
	if err != nil {
		return epgm.Null, nil, err
	}
	return v, b[n:], nil
}

// AppendParams encodes a parameter binding deterministically and
// collision-proof: names sorted, each length-prefixed and followed by the
// value's binary encoding. No value — including one carrying NUL bytes —
// can forge a pair boundary, and PVInt(1) never collides with
// PVString("1"). An empty or nil map appends nothing. These are the exact
// bytes the session's result-cache key has always used; the byte identity
// is pinned by a test.
func AppendParams(dst []byte, params map[string]epgm.PropertyValue) []byte {
	if len(params) == 0 {
		return dst
	}
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		dst = AppendUint32(dst, uint32(len(name)))
		dst = append(dst, name...)
		dst = params[name].Encode(dst)
	}
	return dst
}

// ReadParams decodes an AppendParams blob, consuming all of b. Empty input
// yields a nil map.
func ReadParams(b []byte) (map[string]epgm.PropertyValue, error) {
	if len(b) == 0 {
		return nil, nil
	}
	params := map[string]epgm.PropertyValue{}
	for len(b) > 0 {
		n, rest, err := ReadUint32(b)
		if err != nil {
			return nil, fmt.Errorf("wire: params name length: %w", err)
		}
		if uint32(len(rest)) < n {
			return nil, fmt.Errorf("wire: truncated params name (want %d, have %d)", n, len(rest))
		}
		name := string(rest[:n])
		v, rest2, err := ReadValue(rest[n:])
		if err != nil {
			return nil, fmt.Errorf("wire: params value for %q: %w", name, err)
		}
		params[name] = v
		b = rest2
	}
	return params, nil
}

// AppendProperties appends an ordered property list: a uint32 count, then
// per property a length-prefixed key and the value encoding. Order is
// preserved — Properties serialization is deterministic by construction.
func AppendProperties(dst []byte, ps epgm.Properties) []byte {
	dst = AppendUint32(dst, uint32(len(ps)))
	for _, kv := range ps {
		dst = AppendString(dst, kv.Key)
		dst = kv.Value.Encode(dst)
	}
	return dst
}

// ReadProperties consumes an AppendProperties encoding.
func ReadProperties(b []byte) (epgm.Properties, []byte, error) {
	n, rest, err := ReadUint32(b)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: properties count: %w", err)
	}
	if n == 0 {
		return nil, rest, nil
	}
	if uint64(n) > uint64(len(rest)) {
		// Each property needs at least one byte; reject absurd counts before
		// allocating.
		return nil, nil, fmt.Errorf("wire: properties count %d exceeds payload", n)
	}
	ps := make(epgm.Properties, 0, n)
	for i := uint32(0); i < n; i++ {
		key, r, err := ReadString(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("wire: property key: %w", err)
		}
		v, r2, err := ReadValue(r)
		if err != nil {
			return nil, nil, fmt.Errorf("wire: property value for %q: %w", key, err)
		}
		ps = append(ps, epgm.Property{Key: key, Value: v})
		rest = r2
	}
	return ps, rest, nil
}

// AppendIDSet appends a uint32-count-prefixed identifier list.
func AppendIDSet(dst []byte, s epgm.IDSet) []byte {
	dst = AppendUint32(dst, uint32(len(s)))
	for _, id := range s {
		dst = AppendUint64(dst, uint64(id))
	}
	return dst
}

// ReadIDSet consumes an AppendIDSet encoding.
func ReadIDSet(b []byte) (epgm.IDSet, []byte, error) {
	n, rest, err := ReadUint32(b)
	if err != nil {
		return nil, nil, fmt.Errorf("wire: idset count: %w", err)
	}
	if n == 0 {
		return nil, rest, nil
	}
	if uint64(n)*8 > uint64(len(rest)) {
		return nil, nil, fmt.Errorf("wire: idset count %d exceeds payload", n)
	}
	s := make(epgm.IDSet, n)
	for i := range s {
		var v uint64
		v, rest, err = ReadUint64(rest)
		if err != nil {
			return nil, nil, err
		}
		s[i] = epgm.ID(v)
	}
	return s, rest, nil
}

// AppendVertex appends a vertex: id, label, properties, graph memberships.
func AppendVertex(dst []byte, v epgm.Vertex) []byte {
	dst = AppendUint64(dst, uint64(v.ID))
	dst = AppendString(dst, v.Label)
	dst = AppendProperties(dst, v.Properties)
	return AppendIDSet(dst, v.GraphIDs)
}

// ReadVertex consumes an AppendVertex encoding.
func ReadVertex(b []byte) (epgm.Vertex, []byte, error) {
	var v epgm.Vertex
	id, rest, err := ReadUint64(b)
	if err != nil {
		return v, nil, fmt.Errorf("wire: vertex id: %w", err)
	}
	v.ID = epgm.ID(id)
	if v.Label, rest, err = ReadString(rest); err != nil {
		return v, nil, fmt.Errorf("wire: vertex label: %w", err)
	}
	if v.Properties, rest, err = ReadProperties(rest); err != nil {
		return v, nil, err
	}
	if v.GraphIDs, rest, err = ReadIDSet(rest); err != nil {
		return v, nil, err
	}
	return v, rest, nil
}

// AppendEdge appends an edge: id, label, endpoints, properties, memberships.
func AppendEdge(dst []byte, e epgm.Edge) []byte {
	dst = AppendUint64(dst, uint64(e.ID))
	dst = AppendString(dst, e.Label)
	dst = AppendUint64(dst, uint64(e.Source))
	dst = AppendUint64(dst, uint64(e.Target))
	dst = AppendProperties(dst, e.Properties)
	return AppendIDSet(dst, e.GraphIDs)
}

// ReadEdge consumes an AppendEdge encoding.
func ReadEdge(b []byte) (epgm.Edge, []byte, error) {
	var e epgm.Edge
	id, rest, err := ReadUint64(b)
	if err != nil {
		return e, nil, fmt.Errorf("wire: edge id: %w", err)
	}
	e.ID = epgm.ID(id)
	if e.Label, rest, err = ReadString(rest); err != nil {
		return e, nil, fmt.Errorf("wire: edge label: %w", err)
	}
	if id, rest, err = ReadUint64(rest); err != nil {
		return e, nil, fmt.Errorf("wire: edge source: %w", err)
	}
	e.Source = epgm.ID(id)
	if id, rest, err = ReadUint64(rest); err != nil {
		return e, nil, fmt.Errorf("wire: edge target: %w", err)
	}
	e.Target = epgm.ID(id)
	if e.Properties, rest, err = ReadProperties(rest); err != nil {
		return e, nil, err
	}
	if e.GraphIDs, rest, err = ReadIDSet(rest); err != nil {
		return e, nil, err
	}
	return e, rest, nil
}

// AppendGraphHead appends a graph head: id, label, properties.
func AppendGraphHead(dst []byte, h epgm.GraphHead) []byte {
	dst = AppendUint64(dst, uint64(h.ID))
	dst = AppendString(dst, h.Label)
	return AppendProperties(dst, h.Properties)
}

// ReadGraphHead consumes an AppendGraphHead encoding.
func ReadGraphHead(b []byte) (epgm.GraphHead, []byte, error) {
	var h epgm.GraphHead
	id, rest, err := ReadUint64(b)
	if err != nil {
		return h, nil, fmt.Errorf("wire: graph head id: %w", err)
	}
	h.ID = epgm.ID(id)
	if h.Label, rest, err = ReadString(rest); err != nil {
		return h, nil, fmt.Errorf("wire: graph head label: %w", err)
	}
	if h.Properties, rest, err = ReadProperties(rest); err != nil {
		return h, nil, err
	}
	return h, rest, nil
}
