package wire

import (
	"testing"

	"gradoop/internal/epgm"
)

// FuzzParamsRoundTrip checks two properties of the shared params codec:
// any binding built from fuzzer-chosen names and values decodes back to an
// equal binding (encode∘decode fixed point), and any byte blob either
// decodes cleanly or errors — ReadParams must never panic on hostile input
// because the cluster protocol feeds it bytes straight off a socket.
func FuzzParamsRoundTrip(f *testing.F) {
	f.Add("name", "Alice", int64(7), 1.5, true, []byte(nil))
	f.Add("", "", int64(0), 0.0, false, []byte{0, 0, 0, 4, 'n', 'a', 'm', 'e', 4})
	f.Add("k\x00y", "v\x00al", int64(-1), -2.25, true, []byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, name, sval string, ival int64, fval float64, bval bool, raw []byte) {
		params := map[string]epgm.PropertyValue{
			name:          epgm.PVString(sval),
			name + "i":    epgm.PVInt(ival),
			name + "f":    epgm.PVFloat(fval),
			name + "b":    epgm.PVBool(bval),
			name + "\x00": epgm.Null,
		}
		blob := AppendParams(nil, params)
		got, err := ReadParams(blob)
		if err != nil {
			t.Fatalf("round trip of valid binding failed: %v", err)
		}
		if len(got) != len(params) {
			t.Fatalf("round trip changed entry count: %d != %d", len(got), len(params))
		}
		for k, want := range params {
			g, ok := got[k]
			if !ok || g.Type() != want.Type() || g.String() != want.String() {
				t.Fatalf("param %q: got %v (present %v), want %v", k, g, ok, want)
			}
		}
		// Hostile input: must return, never panic.
		if m, err := ReadParams(raw); err == nil && m != nil {
			// Whatever decoded must re-encode to a decodable blob.
			if _, err := ReadParams(AppendParams(nil, m)); err != nil {
				t.Fatalf("re-encode of decoded blob failed: %v", err)
			}
		}
	})
}
