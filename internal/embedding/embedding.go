// Package embedding implements the paper's compact embedding representation
// (§3.3): each (partial) match is a row made of three byte arrays —
// idData[] mapping query elements to graph element identifiers or
// variable-length-path offsets, pathData[] storing the paths themselves, and
// propData[] storing the property values referenced by predicates and
// projections. Embeddings are the elements shuffled between workers, so the
// encoding doubles as the wire format and the engine's byte accounting is
// exact.
package embedding

import (
	"encoding/binary"
	"fmt"

	"gradoop/internal/epgm"
)

// Entry flags in idData (the paper's ID and PATH markers, plus NULL for
// unmatched OPTIONAL MATCH variables).
const (
	flagID   byte = 0
	flagPath byte = 1
	flagNull byte = 2
)

// entrySize is the fixed width of one idData entry: a flag byte plus an
// 8-byte identifier or offset, giving constant-time column access.
const entrySize = 9

// Embedding is one row of a pattern-matching intermediate result. The zero
// value is an empty embedding ready for appends. Embeddings have value
// semantics: operations that grow an embedding return a new one and never
// mutate shared backing arrays in place.
type Embedding struct {
	idData   []byte
	pathData []byte
	propData []byte
}

// Columns returns the number of idData entries.
func (e Embedding) Columns() int { return len(e.idData) / entrySize }

// IsPath reports whether column i holds a variable-length path rather than
// a single identifier.
func (e Embedding) IsPath(i int) bool { return e.idData[i*entrySize] == flagPath }

// IsNullAt reports whether column i holds no binding (an unmatched
// OPTIONAL MATCH variable).
func (e Embedding) IsNullAt(i int) bool { return e.idData[i*entrySize] == flagNull }

// ID returns the graph element identifier at column i. It panics if the
// column holds a path; callers consult the metadata first.
func (e Embedding) ID(i int) epgm.ID {
	off := i * entrySize
	if e.idData[off] == flagPath {
		panic(fmt.Sprintf("embedding: column %d holds a path, not an id", i))
	}
	return epgm.ID(binary.BigEndian.Uint64(e.idData[off+1 : off+entrySize]))
}

// Path returns the identifier list of the path at column i: the alternating
// edge and vertex identifiers between the path's endpoints (the paper's
// "via" field). It panics if the column holds a plain id.
func (e Embedding) Path(i int) []epgm.ID {
	off := i * entrySize
	if e.idData[off] != flagPath {
		panic(fmt.Sprintf("embedding: column %d holds an id, not a path", i))
	}
	p := int(binary.BigEndian.Uint64(e.idData[off+1 : off+entrySize]))
	n := int(binary.BigEndian.Uint32(e.pathData[p : p+4]))
	ids := make([]epgm.ID, n)
	for j := 0; j < n; j++ {
		ids[j] = epgm.ID(binary.BigEndian.Uint64(e.pathData[p+4+8*j:]))
	}
	return ids
}

// PathLen returns the number of identifiers in the path at column i without
// materializing them.
func (e Embedding) PathLen(i int) int {
	off := i * entrySize
	p := int(binary.BigEndian.Uint64(e.idData[off+1 : off+entrySize]))
	return int(binary.BigEndian.Uint32(e.pathData[p : p+4]))
}

// PropCount returns the number of property values stored in propData.
func (e Embedding) PropCount() int {
	n, off := 0, 0
	for off < len(e.propData) {
		_, sz, err := epgm.DecodePropertyValue(e.propData[off:])
		if err != nil {
			panic("embedding: corrupt propData: " + err.Error())
		}
		off += sz
		n++
	}
	return n
}

// Prop returns the property value at property column i. As in the paper,
// access walks the length information of the preceding entries.
func (e Embedding) Prop(i int) epgm.PropertyValue {
	off := 0
	for j := 0; ; j++ {
		v, sz, err := epgm.DecodePropertyValue(e.propData[off:])
		if err != nil {
			panic(fmt.Sprintf("embedding: property column %d out of range: %v", i, err))
		}
		if j == i {
			return v
		}
		off += sz
	}
}

// SizeBytes implements dataflow.Sized with the exact wire size.
func (e Embedding) SizeBytes() int { return len(e.idData) + len(e.pathData) + len(e.propData) }

// AppendID returns a copy of e with an identifier column appended.
func (e Embedding) AppendID(id epgm.ID) Embedding {
	idData := make([]byte, len(e.idData), len(e.idData)+entrySize)
	copy(idData, e.idData)
	idData = append(idData, flagID)
	idData = binary.BigEndian.AppendUint64(idData, uint64(id))
	return Embedding{idData: idData, pathData: e.pathData, propData: e.propData}
}

// AppendNull returns a copy of e with an unbound column appended.
func (e Embedding) AppendNull() Embedding {
	idData := make([]byte, len(e.idData), len(e.idData)+entrySize)
	copy(idData, e.idData)
	idData = append(idData, flagNull)
	idData = binary.BigEndian.AppendUint64(idData, 0)
	return Embedding{idData: idData, pathData: e.pathData, propData: e.propData}
}

// AppendPath returns a copy of e with a path column appended.
func (e Embedding) AppendPath(ids []epgm.ID) Embedding {
	idData := make([]byte, len(e.idData), len(e.idData)+entrySize)
	copy(idData, e.idData)
	idData = append(idData, flagPath)
	idData = binary.BigEndian.AppendUint64(idData, uint64(len(e.pathData)))

	pathData := make([]byte, len(e.pathData), len(e.pathData)+4+8*len(ids))
	copy(pathData, e.pathData)
	pathData = binary.BigEndian.AppendUint32(pathData, uint32(len(ids)))
	for _, id := range ids {
		pathData = binary.BigEndian.AppendUint64(pathData, uint64(id))
	}
	return Embedding{idData: idData, pathData: pathData, propData: e.propData}
}

// AppendProps returns a copy of e with property values appended to propData.
func (e Embedding) AppendProps(values ...epgm.PropertyValue) Embedding {
	sz := 0
	for _, v := range values {
		sz += v.EncodedSize()
	}
	propData := make([]byte, len(e.propData), len(e.propData)+sz)
	copy(propData, e.propData)
	for _, v := range values {
		propData = v.Encode(propData)
	}
	return Embedding{idData: e.idData, pathData: e.pathData, propData: propData}
}

// Merge combines two embeddings after a join: all of o's columns except the
// ones listed in dropColumns (the join keys, already present in e) are
// appended to e, path offsets in o are rebased onto the combined pathData,
// and o's property values are appended. dropColumns must be sorted
// ascending. Merging is append-only for ids and properties, exactly as the
// paper describes; only o's path offsets need adjustment.
func (e Embedding) Merge(o Embedding, dropColumns []int) Embedding {
	keep := o.Columns() - len(dropColumns)
	idData := make([]byte, len(e.idData), len(e.idData)+keep*entrySize)
	copy(idData, e.idData)
	pathData := make([]byte, len(e.pathData), len(e.pathData)+len(o.pathData))
	copy(pathData, e.pathData)
	pathBase := uint64(len(e.pathData))
	pathData = append(pathData, o.pathData...)

	di := 0
	for c := 0; c < o.Columns(); c++ {
		if di < len(dropColumns) && dropColumns[di] == c {
			di++
			continue
		}
		off := c * entrySize
		flag := o.idData[off]
		payload := binary.BigEndian.Uint64(o.idData[off+1 : off+entrySize])
		if flag == flagPath {
			payload += pathBase
		}
		idData = append(idData, flag)
		idData = binary.BigEndian.AppendUint64(idData, payload)
	}

	propData := make([]byte, len(e.propData), len(e.propData)+len(o.propData))
	copy(propData, e.propData)
	propData = append(propData, o.propData...)
	return Embedding{idData: idData, pathData: pathData, propData: propData}
}

// Project returns an embedding that keeps only the given id columns (in the
// given order) and property columns. It is the physical counterpart of
// ProjectEmbeddings.
func (e Embedding) Project(idColumns []int, propColumns []int) Embedding {
	var out Embedding
	for _, c := range idColumns {
		switch {
		case e.IsNullAt(c):
			out = out.AppendNull()
		case e.IsPath(c):
			out = out.AppendPath(e.Path(c))
		default:
			out = out.AppendID(e.ID(c))
		}
	}
	if len(propColumns) > 0 {
		values := make([]epgm.PropertyValue, len(propColumns))
		for i, pc := range propColumns {
			values[i] = e.Prop(pc)
		}
		out = out.AppendProps(values...)
	}
	return out
}

// IDsAt returns the identifiers at the given columns. Path columns
// contribute all of their identifiers; null columns contribute nothing.
func (e Embedding) IDsAt(columns []int) []epgm.ID {
	var out []epgm.ID
	for _, c := range columns {
		switch {
		case e.IsNullAt(c):
		case e.IsPath(c):
			out = append(out, e.Path(c)...)
		default:
			out = append(out, e.ID(c))
		}
	}
	return out
}

// DistinctAt reports whether the identifiers at the given columns (paths
// expanded) are pairwise distinct — the uniqueness check behind isomorphism
// semantics.
func (e Embedding) DistinctAt(columns []int) bool {
	ids := e.IDsAt(columns)
	seen := make(map[epgm.ID]struct{}, len(ids))
	for _, id := range ids {
		if _, ok := seen[id]; ok {
			return false
		}
		seen[id] = struct{}{}
	}
	return true
}

// String renders the embedding for debugging.
func (e Embedding) String() string {
	s := "["
	for i := 0; i < e.Columns(); i++ {
		if i > 0 {
			s += " "
		}
		switch {
		case e.IsNullAt(i):
			s += "null"
		case e.IsPath(i):
			s += fmt.Sprintf("path%v", e.Path(i))
		default:
			s += fmt.Sprintf("%d", e.ID(i))
		}
	}
	s += " |"
	for i := 0; i < e.PropCount(); i++ {
		s += " " + e.Prop(i).String()
	}
	return s + "]"
}
