package embedding

import (
	"testing"

	"gradoop/internal/epgm"
)

// Micro-benchmarks for the §3.3 byte-array embedding: constant-time column
// access and append-only merges are the design goals.

func benchEmbedding() Embedding {
	var e Embedding
	e = e.AppendID(10).AppendPath([]epgm.ID{5, 20, 7}).AppendID(30)
	return e.AppendProps(epgm.PVString("Alice"), epgm.PVInt(1984), epgm.PVString("Leipzig"))
}

func BenchmarkIDAccess(b *testing.B) {
	e := benchEmbedding()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.ID(0) != 10 {
			b.Fatal("wrong id")
		}
	}
}

func BenchmarkPathAccess(b *testing.B) {
	e := benchEmbedding()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(e.Path(1)) != 3 {
			b.Fatal("wrong path")
		}
	}
}

func BenchmarkPropAccess(b *testing.B) {
	e := benchEmbedding()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.Prop(2).Str() != "Leipzig" {
			b.Fatal("wrong prop")
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	l := benchEmbedding()
	r := benchEmbedding()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if l.Merge(r, []int{0}).Columns() != 5 {
			b.Fatal("wrong merge")
		}
	}
}

func BenchmarkDistinctAt(b *testing.B) {
	e := benchEmbedding()
	cols := []int{0, 1, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !e.DistinctAt(cols) {
			b.Fatal("should be distinct")
		}
	}
}
