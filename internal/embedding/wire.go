package embedding

import (
	"encoding/binary"
	"fmt"
)

// AppendWire appends the embedding's wire form — its three byte arrays,
// each uint32-length-prefixed — to dst. The arrays themselves already are
// the paper's compact binary encoding, so shipping an embedding between
// workers is three memcpys and no per-column work; SizeBytes understates
// the frame payload only by the three fixed-width length prefixes.
func (e Embedding) AppendWire(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.idData)))
	dst = append(dst, e.idData...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.pathData)))
	dst = append(dst, e.pathData...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.propData)))
	dst = append(dst, e.propData...)
	return dst
}

// DecodeWireInto reads one AppendWire encoding from b into the receiver and
// returns the remaining bytes. Decoded arrays are copies: an embedding must
// never alias a reusable receive buffer. idData is validated to a whole
// number of entries so corrupt frames fail here, not as index panics in a
// partition goroutine later.
func (e *Embedding) DecodeWireInto(b []byte) ([]byte, error) {
	readArr := func(b []byte, what string) ([]byte, []byte, error) {
		if len(b) < 4 {
			return nil, nil, fmt.Errorf("embedding: truncated %s length", what)
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if len(b) < n {
			return nil, nil, fmt.Errorf("embedding: truncated %s payload (want %d, have %d)", what, n, len(b))
		}
		if n == 0 {
			return nil, b, nil
		}
		return append([]byte(nil), b[:n]...), b[n:], nil
	}
	idData, rest, err := readArr(b, "idData")
	if err != nil {
		return nil, err
	}
	if len(idData)%entrySize != 0 {
		return nil, fmt.Errorf("embedding: idData length %d not a multiple of the entry size", len(idData))
	}
	pathData, rest, err := readArr(rest, "pathData")
	if err != nil {
		return nil, err
	}
	propData, rest, err := readArr(rest, "propData")
	if err != nil {
		return nil, err
	}
	*e = Embedding{idData: idData, pathData: pathData, propData: propData}
	return rest, nil
}
