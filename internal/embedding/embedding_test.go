package embedding

import (
	"testing"
	"testing/quick"

	"gradoop/internal/epgm"
)

func TestAppendAndAccessIDs(t *testing.T) {
	var e Embedding
	e = e.AppendID(10).AppendID(20).AppendID(30)
	if e.Columns() != 3 {
		t.Fatalf("columns=%d", e.Columns())
	}
	for i, want := range []epgm.ID{10, 20, 30} {
		if e.IsPath(i) {
			t.Fatalf("column %d misflagged as path", i)
		}
		if got := e.ID(i); got != want {
			t.Fatalf("column %d: got %d want %d", i, got, want)
		}
	}
}

func TestPaperPhysicalExample(t *testing.T) {
	// The paper's example: idData = {ID,10, PATH,0, ID,30},
	// pathData = {3, 5,20,7}, propData = {Alice, Bob}.
	var e Embedding
	e = e.AppendID(10)
	e = e.AppendPath([]epgm.ID{5, 20, 7})
	e = e.AppendID(30)
	e = e.AppendProps(epgm.PVString("Alice"), epgm.PVString("Bob"))

	if e.Columns() != 3 {
		t.Fatalf("columns=%d", e.Columns())
	}
	if e.ID(0) != 10 || e.ID(2) != 30 {
		t.Fatal("endpoint ids wrong")
	}
	if !e.IsPath(1) {
		t.Fatal("column 1 should be a path")
	}
	path := e.Path(1)
	if len(path) != 3 || path[0] != 5 || path[1] != 20 || path[2] != 7 {
		t.Fatalf("path=%v", path)
	}
	if e.PathLen(1) != 3 {
		t.Fatalf("pathLen=%d", e.PathLen(1))
	}
	if e.PropCount() != 2 {
		t.Fatalf("props=%d", e.PropCount())
	}
	if e.Prop(0).Str() != "Alice" || e.Prop(1).Str() != "Bob" {
		t.Fatalf("props: %v %v", e.Prop(0), e.Prop(1))
	}
}

func TestAppendIsCopyOnWrite(t *testing.T) {
	var base Embedding
	base = base.AppendID(1)
	a := base.AppendID(2)
	b := base.AppendID(3)
	if a.ID(1) != 2 || b.ID(1) != 3 {
		t.Fatalf("append aliased: a=%v b=%v", a, b)
	}
	if base.Columns() != 1 {
		t.Fatal("base mutated")
	}
}

func TestMergeDropsJoinColumnsAndRebasesPaths(t *testing.T) {
	// Left: [a=1, path p, b=2] ; Right: [b=2, path q, c=3].
	var l Embedding
	l = l.AppendID(1).AppendPath([]epgm.ID{100, 101}).AppendID(2)
	l = l.AppendProps(epgm.PVString("L"))
	var r Embedding
	r = r.AppendID(2).AppendPath([]epgm.ID{200}).AppendID(3)
	r = r.AppendProps(epgm.PVInt(7))

	m := l.Merge(r, []int{0}) // drop right's b column
	if m.Columns() != 5 {
		t.Fatalf("columns=%d want 5", m.Columns())
	}
	if m.ID(0) != 1 || m.ID(2) != 2 || m.ID(4) != 3 {
		t.Fatalf("ids wrong: %v", m)
	}
	p := m.Path(1)
	if len(p) != 2 || p[0] != 100 {
		t.Fatalf("left path corrupted: %v", p)
	}
	q := m.Path(3)
	if len(q) != 1 || q[0] != 200 {
		t.Fatalf("right path not rebased: %v", q)
	}
	if m.PropCount() != 2 || m.Prop(0).Str() != "L" || m.Prop(1).Int() != 7 {
		t.Fatalf("props wrong: %v", m)
	}
}

func TestMergeMultipleDrops(t *testing.T) {
	var l Embedding
	l = l.AppendID(1).AppendID(2)
	var r Embedding
	r = r.AppendID(1).AppendID(5).AppendID(2)
	m := l.Merge(r, []int{0, 2})
	if m.Columns() != 3 || m.ID(2) != 5 {
		t.Fatalf("merge: %v", m)
	}
}

func TestProject(t *testing.T) {
	var e Embedding
	e = e.AppendID(1).AppendPath([]epgm.ID{9}).AppendID(3)
	e = e.AppendProps(epgm.PVString("x"), epgm.PVString("y"), epgm.PVString("z"))
	p := e.Project([]int{2, 1}, []int{2, 0})
	if p.Columns() != 2 || p.ID(0) != 3 || !p.IsPath(1) {
		t.Fatalf("projected: %v", p)
	}
	if p.Prop(0).Str() != "z" || p.Prop(1).Str() != "x" {
		t.Fatalf("projected props: %v", p)
	}
}

func TestDistinctAt(t *testing.T) {
	var e Embedding
	e = e.AppendID(1).AppendID(2).AppendID(1)
	if !e.DistinctAt([]int{0, 1}) {
		t.Fatal("distinct columns flagged as duplicate")
	}
	if e.DistinctAt([]int{0, 2}) {
		t.Fatal("duplicate ids not detected")
	}
	// Paths participate with all their ids.
	var p Embedding
	p = p.AppendID(5).AppendPath([]epgm.ID{7, 5, 8})
	if p.DistinctAt([]int{0, 1}) {
		t.Fatal("path overlap not detected")
	}
	var ok Embedding
	ok = ok.AppendID(5).AppendPath([]epgm.ID{7, 6, 8})
	if !ok.DistinctAt([]int{0, 1}) {
		t.Fatal("false positive on disjoint path")
	}
}

func TestNullColumns(t *testing.T) {
	var e Embedding
	e = e.AppendID(5).AppendNull().AppendPath([]epgm.ID{7})
	if e.Columns() != 3 {
		t.Fatalf("columns=%d", e.Columns())
	}
	if e.IsNullAt(0) || !e.IsNullAt(1) || e.IsNullAt(2) {
		t.Fatal("null flags")
	}
	// Nulls contribute nothing to id collections or distinctness checks.
	ids := e.IDsAt([]int{0, 1, 2})
	if len(ids) != 2 || ids[0] != 5 || ids[1] != 7 {
		t.Fatalf("ids=%v", ids)
	}
	if !e.DistinctAt([]int{0, 1}) {
		t.Fatal("null should not collide")
	}
	// Projection keeps nulls.
	p := e.Project([]int{1, 0}, nil)
	if !p.IsNullAt(0) || p.ID(1) != 5 {
		t.Fatalf("projected: %v", p)
	}
	// Merge carries nulls through.
	var r Embedding
	r = r.AppendID(5).AppendNull()
	m := e.Merge(r, []int{0})
	if m.Columns() != 4 || !m.IsNullAt(3) {
		t.Fatalf("merged: %v", m)
	}
}

func TestSizeBytesMatchesData(t *testing.T) {
	var e Embedding
	e = e.AppendID(1).AppendPath([]epgm.ID{2, 3}).AppendProps(epgm.PVString("ab"))
	want := 2*entrySize + (4 + 16) + (1 + 4 + 2)
	if got := e.SizeBytes(); got != want {
		t.Fatalf("size=%d want %d", got, want)
	}
}

func TestQuickMergeRoundTrip(t *testing.T) {
	f := func(leftIDs, rightIDs []uint16, pathIDs []uint16) bool {
		if len(leftIDs) == 0 || len(rightIDs) == 0 {
			return true
		}
		var l Embedding
		for _, id := range leftIDs {
			l = l.AppendID(epgm.ID(id) + 1)
		}
		var r Embedding
		// First column of right is the shared join key.
		r = r.AppendID(l.ID(0))
		ids := make([]epgm.ID, len(pathIDs))
		for i, id := range pathIDs {
			ids[i] = epgm.ID(id)
		}
		r = r.AppendPath(ids)
		for _, id := range rightIDs {
			r = r.AppendID(epgm.ID(id) + 1)
		}
		m := l.Merge(r, []int{0})
		if m.Columns() != len(leftIDs)+1+len(rightIDs) {
			return false
		}
		// Left ids unchanged.
		for i := range leftIDs {
			if m.ID(i) != epgm.ID(leftIDs[i])+1 {
				return false
			}
		}
		// Path preserved.
		got := m.Path(len(leftIDs))
		if len(got) != len(ids) {
			return false
		}
		for i := range ids {
			if got[i] != ids[i] {
				return false
			}
		}
		// Right ids follow.
		for i := range rightIDs {
			if m.ID(len(leftIDs)+1+i) != epgm.ID(rightIDs[i])+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaBasics(t *testing.T) {
	m := NewMeta()
	c0 := m.AddEntry("p1", VertexEntry)
	c1 := m.AddEntry("e", PathEntry)
	c2 := m.AddEntry("p2", VertexEntry)
	p0 := m.AddProp("p1", "name")
	if c0 != 0 || c1 != 1 || c2 != 2 || p0 != 0 {
		t.Fatal("column allocation")
	}
	if col, ok := m.Column("p2"); !ok || col != 2 {
		t.Fatal("column lookup")
	}
	if _, ok := m.Column("nope"); ok {
		t.Fatal("phantom column")
	}
	if col, ok := m.PropColumn("p1", "name"); !ok || col != 0 {
		t.Fatal("prop lookup")
	}
	if _, ok := m.PropColumn("p1", "age"); ok {
		t.Fatal("phantom prop")
	}
	if got := m.VertexColumns(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("vertex columns=%v", got)
	}
	if got := m.EdgeColumns(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("edge columns=%v", got)
	}
	if m.Kind(1) != PathEntry || m.Var(1) != "e" {
		t.Fatal("kind/var")
	}
}

func TestMetaMergeMirrorsEmbeddingMerge(t *testing.T) {
	l := NewMeta()
	l.AddEntry("a", VertexEntry)
	l.AddEntry("e1", EdgeEntry)
	l.AddEntry("b", VertexEntry)
	l.AddProp("a", "name")

	r := NewMeta()
	r.AddEntry("b", VertexEntry)
	r.AddEntry("e2", EdgeEntry)
	r.AddEntry("c", VertexEntry)
	r.AddProp("c", "name")

	merged, drop := l.Merge(r)
	if len(drop) != 1 || drop[0] != 0 {
		t.Fatalf("drop=%v", drop)
	}
	wantVars := []string{"a", "e1", "b", "e2", "c"}
	if got := merged.Vars(); len(got) != len(wantVars) {
		t.Fatalf("vars=%v", got)
	}
	for i, v := range wantVars {
		if merged.Var(i) != v {
			t.Fatalf("vars=%v", merged.Vars())
		}
	}
	if merged.PropColumns() != 2 {
		t.Fatalf("prop columns=%d", merged.PropColumns())
	}
	if pc, ok := merged.PropColumn("c", "name"); !ok || pc != 1 {
		t.Fatalf("c.name column=%d ok=%v", pc, ok)
	}
	// The original metas are untouched.
	if l.Columns() != 3 || r.Columns() != 3 {
		t.Fatal("merge mutated inputs")
	}
}

func TestMetaSharedVars(t *testing.T) {
	l := NewMeta()
	l.AddEntry("a", VertexEntry)
	l.AddEntry("b", VertexEntry)
	r := NewMeta()
	r.AddEntry("b", VertexEntry)
	r.AddEntry("c", VertexEntry)
	shared := l.SharedVars(r)
	if len(shared) != 1 || shared[0] != "b" {
		t.Fatalf("shared=%v", shared)
	}
}
