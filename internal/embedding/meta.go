package embedding

import (
	"fmt"
	"sort"
	"strings"
)

// EntryKind describes what a metadata column refers to.
type EntryKind byte

// Column kinds.
const (
	VertexEntry EntryKind = iota
	EdgeEntry
	PathEntry
)

// String returns the kind's name.
func (k EntryKind) String() string {
	switch k {
	case VertexEntry:
		return "vertex"
	case EdgeEntry:
		return "edge"
	case PathEntry:
		return "path"
	default:
		return "?"
	}
}

// Meta is the query-compile-time companion of an Embedding: it maps query
// variables to idData columns and (variable, property key) pairs to propData
// columns. Per the paper it is "utilized and updated by the query operators
// but not part of the embedding data structure" — one Meta describes every
// embedding in a dataset.
type Meta struct {
	vars  []string    // column -> variable name
	kinds []EntryKind // column -> kind
	props []PropRef   // property column -> reference
}

// PropRef names a stored property value.
type PropRef struct {
	Var string
	Key string
}

// NewMeta returns an empty metadata object.
func NewMeta() *Meta { return &Meta{} }

// Clone returns an independent copy.
func (m *Meta) Clone() *Meta {
	return &Meta{
		vars:  append([]string(nil), m.vars...),
		kinds: append([]EntryKind(nil), m.kinds...),
		props: append([]PropRef(nil), m.props...),
	}
}

// Columns returns the number of id columns.
func (m *Meta) Columns() int { return len(m.vars) }

// PropColumns returns the number of property columns.
func (m *Meta) PropColumns() int { return len(m.props) }

// AddEntry appends an id column for a variable and returns its column index.
func (m *Meta) AddEntry(variable string, kind EntryKind) int {
	m.vars = append(m.vars, variable)
	m.kinds = append(m.kinds, kind)
	return len(m.vars) - 1
}

// AddProp appends a property column and returns its index.
func (m *Meta) AddProp(variable, key string) int {
	m.props = append(m.props, PropRef{Var: variable, Key: key})
	return len(m.props) - 1
}

// Column returns the id column of a variable.
func (m *Meta) Column(variable string) (int, bool) {
	for i, v := range m.vars {
		if v == variable {
			return i, true
		}
	}
	return 0, false
}

// Kind returns the kind of column i.
func (m *Meta) Kind(i int) EntryKind { return m.kinds[i] }

// Var returns the variable at column i.
func (m *Meta) Var(i int) string { return m.vars[i] }

// Vars returns all variables in column order.
func (m *Meta) Vars() []string { return append([]string(nil), m.vars...) }

// HasVar reports whether the metadata contains the variable.
func (m *Meta) HasVar(variable string) bool {
	_, ok := m.Column(variable)
	return ok
}

// PropColumn returns the property column holding variable.key.
func (m *Meta) PropColumn(variable, key string) (int, bool) {
	for i, p := range m.props {
		if p.Var == variable && p.Key == key {
			return i, true
		}
	}
	return 0, false
}

// PropRefAt returns the reference stored at property column i.
func (m *Meta) PropRefAt(i int) PropRef { return m.props[i] }

// VertexColumns returns the indices of all vertex columns.
func (m *Meta) VertexColumns() []int { return m.columnsOfKind(VertexEntry) }

// EdgeColumns returns the indices of all edge and path columns (paths are
// sequences of edges and intermediate vertices; for edge-uniqueness checks
// their edge ids participate).
func (m *Meta) EdgeColumns() []int {
	out := m.columnsOfKind(EdgeEntry)
	out = append(out, m.columnsOfKind(PathEntry)...)
	sort.Ints(out)
	return out
}

func (m *Meta) columnsOfKind(k EntryKind) []int {
	var out []int
	for i, kk := range m.kinds {
		if kk == k {
			out = append(out, i)
		}
	}
	return out
}

// SharedVars returns the variables present in both metadata objects —
// the join keys of a JoinEmbeddings operator.
func (m *Meta) SharedVars(o *Meta) []string {
	var shared []string
	for _, v := range m.vars {
		if o.HasVar(v) {
			shared = append(shared, v)
		}
	}
	return shared
}

// Merge computes the metadata resulting from joining embeddings described
// by m and o on their shared variables: o's shared columns are dropped, all
// other columns and all property columns are appended. It returns the new
// metadata and the sorted list of o's columns that Embedding.Merge must
// drop.
func (m *Meta) Merge(o *Meta) (*Meta, []int) {
	out := m.Clone()
	var drop []int
	for c, v := range o.vars {
		if m.HasVar(v) {
			drop = append(drop, c)
			continue
		}
		out.vars = append(out.vars, v)
		out.kinds = append(out.kinds, o.kinds[c])
	}
	out.props = append(out.props, o.props...)
	return out, drop
}

// String renders the mapping like the paper's example
// {p1:0, p1.name:0, ...}.
func (m *Meta) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, v := range m.vars {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s:%d(%s)", v, i, m.kinds[i])
	}
	for i, p := range m.props {
		if i > 0 || len(m.vars) > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s.%s:%d", p.Var, p.Key, i)
	}
	sb.WriteByte('}')
	return sb.String()
}
