package session

import (
	"gradoop/internal/core"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

// RemoteExecutor runs a prepared query on an external worker cluster
// instead of the session's in-process environment. The session stays the
// single front door — plan cache, result cache, admission control and the
// query store all work unchanged — and only the dataflow execution moves
// out of process. The implementation lives in internal/cluster; the
// interface lives here so the session does not depend on it.
type RemoteExecutor interface {
	// ExecuteRemote executes prep with the given per-request config (Params,
	// Context, Timeout and the session-wide semantics are read; Access binds
	// the coordinator-side result, Trace is ignored — workers trace
	// themselves and report per-stage records in the ClusterReport).
	// The returned Result must be equivalent to prep.Execute's: same rows,
	// same metadata, assembled on the coordinator.
	ExecuteRemote(g *epgm.LogicalGraph, prep *core.Prepared, cfg core.Config) (*core.Result, *ClusterReport, error)
}

// ClusterStage is one executed dataflow stage of a distributed query, with
// the cost model's prediction set against the measured execution: Predicted
// is the stage's simulated time from the per-partition charges (the same
// number a single-process EXPLAIN ANALYZE derives), Actual the slowest
// worker's wall clock, ModelBytes the cost model's cross-partition byte
// charge and WireBytes the bytes the shuffle actually put on the network
// (encoded frames, so the two differ by encoding overhead and by
// process-local partition pairs that never touch a socket).
type ClusterStage struct {
	Stage      int64  `json:"stage"`
	Op         string `json:"op,omitempty"`
	Kind       string `json:"kind"`
	Shuffle    bool   `json:"shuffle"`
	Predicted  int64  `json:"predictedNs"`
	Actual     int64  `json:"actualNs"`
	ModelBytes int64  `json:"modelBytes"`
	WireBytes  int64  `json:"wireBytes"`
}

// ClusterReport describes one distributed execution: the roster size, how
// many attempts it took (>1 means lost-worker recovery re-ran the job on a
// remapped partition assignment), the per-stage predicted-vs-actual table
// and the merged per-worker metrics (each process charges only its owned
// partitions, so the merge reproduces the single-process totals).
type ClusterReport struct {
	Workers   int                      `json:"workers"`
	Attempts  int                      `json:"attempts"`
	Recovered bool                     `json:"recovered"`
	Stages    []ClusterStage           `json:"stages,omitempty"`
	Metrics   dataflow.MetricsSnapshot `json:"-"`
}
