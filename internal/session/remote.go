package session

import (
	"gradoop/internal/core"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/obs"
	"gradoop/internal/trace"
)

// RemoteExecutor runs a prepared query on an external worker cluster
// instead of the session's in-process environment. The session stays the
// single front door — plan cache, result cache, admission control and the
// query store all work unchanged — and only the dataflow execution moves
// out of process. The implementation lives in internal/cluster; the
// interface lives here so the session does not depend on it.
type RemoteExecutor interface {
	// ExecuteRemote executes prep with the given per-request config (Params,
	// Context, Timeout and the session-wide semantics are read; Access binds
	// the coordinator-side result). The coordinator derives the job's trace
	// identity from cfg.Context (obs.WithTraceID), propagates it to every
	// worker, and — when cfg.Trace is non-nil, signalling the caller wants a
	// trace — merges the workers' shipped span bundles into the report's
	// cluster-wide Chrome trace, one process lane per worker.
	// The returned Result must be equivalent to prep.Execute's: same rows,
	// same metadata, assembled on the coordinator.
	ExecuteRemote(g *epgm.LogicalGraph, prep *core.Prepared, cfg core.Config) (*core.Result, *ClusterReport, error)
}

// ClusterStage is one executed dataflow stage of a distributed query, with
// the cost model's prediction set against the measured execution: Predicted
// is the stage's simulated time from the per-partition charges (the same
// number a single-process EXPLAIN ANALYZE derives), Actual the slowest
// worker's wall clock, ModelBytes the cost model's cross-partition byte
// charge and WireBytes the bytes the shuffle actually put on the network
// (encoded frames, so the two differ by encoding overhead and by
// process-local partition pairs that never touch a socket).
//
// The per-worker attribution fields answer "which worker made this stage
// slow": WorkerNs[i] is roster member i's wall time for the stage (so
// max(WorkerNs) == Actual by construction), WorkerBytes[i] the shuffle
// bytes it framed, MeanNs the roster mean and Skew = Actual/MeanNs — a
// stage at Skew ≈ 1 is balanced, a stage at Skew ≈ len(WorkerNs) ran on
// one straggler while the rest idled.
type ClusterStage struct {
	Stage      int64  `json:"stage"`
	Op         string `json:"op,omitempty"`
	Kind       string `json:"kind"`
	Shuffle    bool   `json:"shuffle"`
	Predicted  int64  `json:"predictedNs"`
	Actual     int64  `json:"actualNs"`
	ModelBytes int64  `json:"modelBytes"`
	WireBytes  int64  `json:"wireBytes"`

	WorkerNs    []int64 `json:"workerNs,omitempty"`
	WorkerBytes []int64 `json:"workerBytes,omitempty"`
	MeanNs      int64   `json:"meanNs,omitempty"`
	Skew        float64 `json:"skew,omitempty"`
}

// WorkerReport is one worker's contribution to a distributed query as seen
// through its telemetry bundle.
type WorkerReport struct {
	// Node is the worker's self-reported node name.
	Node string `json:"node"`
	// Spans is how many spans the worker's bundle carried (0 when the
	// worker shipped no bundle).
	Spans int `json:"spans"`
	// WallNs is the winning attempt's wall time on that worker.
	WallNs int64 `json:"wallNs"`
	// Telemetry reports whether the worker's bundle arrived intact. False
	// means the worker ran with telemetry off, its bundle was corrupt, or
	// it died after finishing its part — the query result is unaffected
	// either way.
	Telemetry bool `json:"telemetry"`
}

// ClusterReport describes one distributed execution: the roster size, how
// many attempts it took (>1 means lost-worker recovery re-ran the job on a
// remapped partition assignment), the per-stage predicted-vs-actual table
// with per-worker skew attribution, and the merged per-worker metrics
// (each process charges only its owned partitions, so the merge reproduces
// the single-process totals).
type ClusterReport struct {
	Workers   int            `json:"workers"`
	Attempts  int            `json:"attempts"`
	Recovered bool           `json:"recovered"`
	Stages    []ClusterStage `json:"stages,omitempty"`
	// TraceID is the job's cluster-wide trace identity: the caller's
	// context trace ID when present, else a coordinator-minted job ID.
	// Every worker's spans and logs for this query carry it.
	TraceID string `json:"traceId,omitempty"`
	// PartialTelemetry is set when at least one winning-roster worker has
	// no decoded telemetry bundle — the result is complete, the
	// observability is not.
	PartialTelemetry bool           `json:"partialTelemetry,omitempty"`
	WorkerReports    []WorkerReport `json:"workerReports,omitempty"`
	// Trace is the merged cluster-wide Chrome trace (coordinator lane plus
	// one process lane per worker), built only when the request asked for a
	// trace. Not part of the JSON report; the server embeds it in the
	// query response's chromeTrace field.
	Trace   *trace.ChromeTrace       `json:"-"`
	Metrics dataflow.MetricsSnapshot `json:"-"`
}

// WorkerInfo is one roster entry of a running cluster, for the
// /cluster/workers endpoint.
type WorkerInfo struct {
	Node            string `json:"node"`
	Addr            string `json:"addr"`
	Alive           bool   `json:"alive"`
	LastHeartbeatMs int64  `json:"lastHeartbeatMs"`
	// Jobs counts job-done reports received from this worker.
	Jobs int64 `json:"jobs"`
	// Telemetry reports whether this worker has ever shipped a bundle.
	Telemetry bool `json:"telemetry"`
}

// WorkerMetrics pairs a worker's node name with its most recent metrics
// registry snapshot, for the coordinator's federated /metrics view.
type WorkerMetrics struct {
	Node string
	Snap *obs.Snapshot
}

// ClusterIntrospector is the optional observability surface of a
// RemoteExecutor: the roster for /cluster/workers and the last-known
// per-worker registry snapshots for the federated /metrics exposition.
type ClusterIntrospector interface {
	ClusterWorkers() []WorkerInfo
	WorkerMetrics() []WorkerMetrics
}
