package session

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"gradoop/internal/core"
	"gradoop/internal/dataflow"
)

// counters is the session's internal accounting: request and cache
// counters as atomics, plus the running merge of every job's metrics
// snapshot (job-slot accounting included) under a mutex.
type counters struct {
	queries      atomic.Int64
	planHits     atomic.Int64
	planMisses   atomic.Int64
	resultHits   atomic.Int64
	resultMisses atomic.Int64
	rejected     atomic.Int64
	timeouts     atomic.Int64
	invalid      atomic.Int64
	failed       atomic.Int64
	memKilled    atomic.Int64
	slowQueries  atomic.Int64
	// qstoreRecords mirrors the query store's append count from this
	// session's recordExit path (the store's own counter also includes
	// startup replay).
	qstoreRecords atomic.Int64

	mu      sync.Mutex
	cluster dataflow.MetricsSnapshot
}

// mergeJob folds one finished job's snapshot into the running cluster
// total.
func (c *counters) mergeJob(m dataflow.MetricsSnapshot) {
	c.mu.Lock()
	c.cluster.Merge(m)
	c.mu.Unlock()
}

// Metrics is an immutable snapshot of a session's service counters.
type Metrics struct {
	// Queries counts Execute calls; Rejected, Timeouts, Invalid, Failed and
	// MemoryKilled partition the failures.
	Queries      int64 `json:"queries"`
	Rejected     int64 `json:"rejected"`
	Timeouts     int64 `json:"timeouts"`
	Invalid      int64 `json:"invalid"`
	Failed       int64 `json:"failed"`
	MemoryKilled int64 `json:"memoryKilled"`

	// Plan/Result cache hit and miss counters.
	PlanHits     int64 `json:"planHits"`
	PlanMisses   int64 `json:"planMisses"`
	ResultHits   int64 `json:"resultHits"`
	ResultMisses int64 `json:"resultMisses"`
	// PlanEntries, ResultEntries and ResultBytes describe current cache
	// occupancy.
	PlanEntries   int   `json:"planEntries"`
	ResultEntries int   `json:"resultEntries"`
	ResultBytes   int64 `json:"resultBytes"`

	// InFlight and Queued describe current admission state.
	InFlight int   `json:"inFlight"`
	Queued   int64 `json:"queued"`

	// Memory governance: the process budget, currently reserved bytes, and
	// the broker's kill/shed/brownout counters (all zero when governance is
	// disabled). MemReserved is a point-in-time gauge; the rest are
	// monotonic.
	MemBudget    int64 `json:"memBudget"`
	MemReserved  int64 `json:"memReserved"`
	MemKills     int64 `json:"memKills"`
	MemSheds     int64 `json:"memSheds"`
	MemBrownouts int64 `json:"memBrownouts"`

	// SlowQueries counts queries over the slow-query threshold (the JSON
	// twin of gradoop_slow_queries_total).
	SlowQueries int64 `json:"slowQueries"`

	// Query store (all zero when no store is configured): records this
	// session emitted, total records the store holds (startup replay
	// included), drift onsets flagged, current segment footprint
	// (bytes/segments/fingerprints) and dropped writes.
	QStoreRecords      int64 `json:"qstoreRecords"`
	QStoreTotal        int64 `json:"qstoreTotalRecords"`
	QStoreRegressions  int64 `json:"qstoreRegressions"`
	QStoreBytes        int64 `json:"qstoreBytes"`
	QStoreSegments     int   `json:"qstoreSegments"`
	QStoreFingerprints int   `json:"qstoreFingerprints"`
	QStoreDrops        int64 `json:"qstoreDroppedWrites"`

	// StatsCollections is the process-wide count of actual statistics
	// collections (the per-graph memo's misses).
	StatsCollections int64 `json:"statsCollections"`

	// Cluster is the merged dataflow accounting of every executed job:
	// Jobs counts them, SlotWait accumulates admission queueing.
	Cluster dataflow.MetricsSnapshot `json:"cluster"`
}

// Metrics returns the session's current service counters. The cluster
// aggregate is deep-copied under the merge lock (MetricsSnapshot.Clone), so
// a snapshot taken while queries are completing is never torn: its slices
// are the serializer's own, and its totals are one consistent merge state —
// concurrent mergeJob calls either fully precede or fully follow it.
func (s *Session) Metrics() Metrics {
	c := s.metrics
	c.mu.Lock()
	cluster := c.cluster.Clone()
	c.mu.Unlock()
	resultBytes, resultEntries := s.results.usage()
	qs := s.qstore.Stats()
	return Metrics{
		Queries:            c.queries.Load(),
		Rejected:           c.rejected.Load(),
		Timeouts:           c.timeouts.Load(),
		Invalid:            c.invalid.Load(),
		Failed:             c.failed.Load(),
		MemoryKilled:       c.memKilled.Load(),
		MemBudget:          s.broker.Budget(),
		MemReserved:        s.broker.Reserved(),
		MemKills:           s.broker.Kills(),
		MemSheds:           s.broker.Sheds(),
		MemBrownouts:       s.broker.Brownouts(),
		SlowQueries:        c.slowQueries.Load(),
		QStoreRecords:      c.qstoreRecords.Load(),
		QStoreTotal:        qs.Records,
		QStoreRegressions:  qs.Regressions,
		QStoreBytes:        qs.Bytes,
		QStoreSegments:     qs.Segments,
		QStoreFingerprints: qs.Fingerprints,
		QStoreDrops:        qs.Drops,
		PlanHits:           c.planHits.Load(),
		PlanMisses:         c.planMisses.Load(),
		ResultHits:         c.resultHits.Load(),
		ResultMisses:       c.resultMisses.Load(),
		PlanEntries:        s.plans.len(),
		ResultEntries:      resultEntries,
		ResultBytes:        resultBytes,
		InFlight:           s.gate.inFlight(),
		Queued:             s.gate.queued(),
		StatsCollections:   core.StatsCollections(),
		Cluster:            cluster,
	}
}

// PlanHitRatio is hits/(hits+misses), 0 when the cache is untouched.
func (m Metrics) PlanHitRatio() float64 { return ratio(m.PlanHits, m.PlanMisses) }

// ResultHitRatio is hits/(hits+misses), 0 when the cache is untouched.
func (m Metrics) ResultHitRatio() float64 { return ratio(m.ResultHits, m.ResultMisses) }

func ratio(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Text renders the metrics in the -metrics text style of the CLI.
func (m Metrics) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "queries=%d rejected=%d timeouts=%d invalid=%d failed=%d memKilled=%d\n",
		m.Queries, m.Rejected, m.Timeouts, m.Invalid, m.Failed, m.MemoryKilled)
	if m.MemBudget > 0 {
		fmt.Fprintf(&sb, "memory: budget=%d reserved=%d kills=%d sheds=%d brownouts=%d\n",
			m.MemBudget, m.MemReserved, m.MemKills, m.MemSheds, m.MemBrownouts)
	}
	fmt.Fprintf(&sb, "plan cache: hits=%d misses=%d ratio=%.2f entries=%d\n",
		m.PlanHits, m.PlanMisses, m.PlanHitRatio(), m.PlanEntries)
	fmt.Fprintf(&sb, "result cache: hits=%d misses=%d ratio=%.2f entries=%d bytes=%d\n",
		m.ResultHits, m.ResultMisses, m.ResultHitRatio(), m.ResultEntries, m.ResultBytes)
	fmt.Fprintf(&sb, "admission: inFlight=%d queued=%d slotWait=%s\n",
		m.InFlight, m.Queued, m.Cluster.SlotWait)
	if m.QStoreTotal > 0 || m.QStoreRecords > 0 {
		fmt.Fprintf(&sb, "query store: records=%d total=%d regressions=%d bytes=%d segments=%d fingerprints=%d drops=%d\n",
			m.QStoreRecords, m.QStoreTotal, m.QStoreRegressions, m.QStoreBytes,
			m.QStoreSegments, m.QStoreFingerprints, m.QStoreDrops)
	}
	fmt.Fprintf(&sb, "stats collections: %d\n", m.StatsCollections)
	fmt.Fprintf(&sb, "cluster: jobs=%d %s\n", m.Cluster.Jobs, m.Cluster.String())
	return sb.String()
}
