package session

import (
	"encoding/json"
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"

	"gradoop/internal/qstore"
)

// qstoreSession builds a session over the shared test graph with a query
// store in dir.
func qstoreSession(t *testing.T, dir string, opts Options) (*Session, *qstore.Store) {
	t.Helper()
	st, err := qstore.Open(qstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	opts.QueryStore = st
	return New(testGraph(2), opts), st
}

// TestRecordPerExitPath drives one request down each session exit path and
// asserts every Execute call left exactly one record with the right
// outcome — the invariant the qstorerecord analyzer pins structurally.
func TestRecordPerExitPath(t *testing.T) {
	s, st := qstoreSession(t, t.TempDir(), Options{MaxConcurrent: 1, MaxQueued: 1})
	defer st.Close()
	execs := 0

	// ok (cold) and ok (result-cache hit).
	q := `MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name, b.name`
	for i := 0; i < 2; i++ {
		execs++
		if _, err := s.Execute(Request{Query: q}); err != nil {
			t.Fatal(err)
		}
	}
	// invalid: empty query, then a parse error.
	execs++
	if _, err := s.Execute(Request{Query: "   "}); err == nil {
		t.Fatal("empty query succeeded")
	}
	execs++
	if _, err := s.Execute(Request{Query: "MATCH ((("}); err == nil {
		t.Fatal("bad query succeeded")
	}
	// rejected: slot and queue both occupied. Must be a query the result
	// cache has not seen — cached responses return before admission.
	rejectedQ := `MATCH (x:Person) RETURN x.name`
	s.gate.slots <- struct{}{}
	s.gate.waiting.Add(1)
	execs++
	if _, err := s.Execute(Request{Query: rejectedQ}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	s.gate.waiting.Add(-1)
	// timeout: deadline expires while queued (slot still occupied).
	timeoutQ := `MATCH (y:University) RETURN y.name`
	execs++
	if _, err := s.Execute(Request{Query: timeoutQ, Timeout: 20 * time.Millisecond}); KindOf(err) != KindTimeout {
		t.Fatalf("want timeout, got %v", err)
	}
	<-s.gate.slots

	if got := st.Records(); got != int64(execs) {
		t.Fatalf("store has %d records after %d Execute calls", got, execs)
	}
	for fp, want := range map[string]map[string]int64{
		qstore.QueryFingerprint(CanonicalQuery(rejectedQ)): {"rejected": 1},
		qstore.QueryFingerprint(CanonicalQuery(timeoutQ)):  {"timeout": 1},
	} {
		agg, _, ok := st.Fingerprint(fp)
		if !ok || !reflect.DeepEqual(agg.Outcomes, want) {
			t.Fatalf("fingerprint %s: ok=%v outcomes=%v, want %v", fp, ok, agg.Outcomes, want)
		}
	}
	agg, recs, ok := st.Fingerprint(qstore.QueryFingerprint(CanonicalQuery(q)))
	if !ok {
		t.Fatal("no aggregate for the canonical query")
	}
	// q's cold run and its result-cache hit share one fingerprint.
	if agg.Count != 2 {
		t.Fatalf("aggregate count = %d, want 2", agg.Count)
	}
	if !reflect.DeepEqual(agg.Outcomes, map[string]int64{"ok": 2}) {
		t.Fatalf("outcomes = %v, want 2 ok", agg.Outcomes)
	}
	// Cold run vs cache hit are distinguishable in the records.
	var cold, hit int
	for _, r := range recs {
		if r.Outcome != qstore.OutcomeOK {
			continue
		}
		if r.ResultCacheHit {
			hit++
		} else {
			cold++
			if r.PlanHash == "" {
				t.Error("cold ok record missing plan hash")
			}
			if r.RootQError <= 0 {
				t.Error("cold ok record missing root q-error")
			}
			if r.ExecNs <= 0 || r.ElapsedNs <= 0 {
				t.Errorf("cold ok record missing timings: %+v", r)
			}
		}
		if r.Bucket != qstore.SelectivityBucket(r.Rows) {
			t.Errorf("bucket %q does not match rows %d", r.Bucket, r.Rows)
		}
	}
	if cold != 1 || hit != 1 {
		t.Fatalf("cold=%d hit=%d, want 1/1", cold, hit)
	}
}

// TestMemoryKillRecorded: a budget kill exits through recordExit like any
// other path, with outcome memory-kill and the charged bytes.
func TestMemoryKillRecorded(t *testing.T) {
	s, st := qstoreSession(t, t.TempDir(), Options{MemoryBudget: 4 << 10})
	defer st.Close()
	q := `MATCH (a:Person),(b:Person),(c:Person),(d:Person) RETURN a, b, c, d`
	_, err := s.Execute(Request{Query: q})
	if KindOf(err) != KindMemoryBudget {
		t.Fatalf("want memory-budget kill, got %v", err)
	}
	agg, recs, ok := st.Fingerprint(qstore.QueryFingerprint(CanonicalQuery(q)))
	if !ok || agg.Outcomes["memory-kill"] != 1 {
		t.Fatalf("memory kill not recorded: ok=%v outcomes=%v", ok, agg.Outcomes)
	}
	if len(recs) != 1 || recs[0].MemBytes <= 0 {
		t.Fatalf("kill record missing materialized bytes: %+v", recs)
	}
}

// TestTracedRunRecordsOps: a traced execution persists the per-operator
// metrics in the same schema /analyze serves.
func TestTracedRunRecordsOps(t *testing.T) {
	s, st := qstoreSession(t, t.TempDir(), Options{})
	defer st.Close()
	q := `MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name`
	resp, err := s.Execute(Request{Query: q, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	wantOps := resp.Result.AnalyzedOps()
	if len(wantOps) == 0 {
		t.Fatal("traced run has no analyzed ops")
	}
	_, recs, ok := st.Fingerprint(qstore.QueryFingerprint(CanonicalQuery(q)))
	if !ok || len(recs) != 1 {
		t.Fatalf("want 1 record, got ok=%v recs=%d", ok, len(recs))
	}
	if !reflect.DeepEqual(recs[0].Ops, wantOps) {
		t.Fatalf("persisted ops differ from /analyze ops:\nrec: %+v\nlive: %+v", recs[0].Ops, wantOps)
	}
	// Untraced runs carry no per-op data (no collector ran).
	if _, err := s.Execute(Request{Query: q + " "}); err != nil {
		t.Fatal(err)
	}
}

// sortedRows renders a response's rows as sorted JSON strings so two runs
// with different worker interleavings compare equal.
func sortedRows(t *testing.T, r *Response) []string {
	t.Helper()
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		b, err := json.Marshal(row)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	sort.Strings(out)
	return out
}

// TestQStoreParity pins the off switch: with no store configured the
// session behaves identically — same responses, same metrics — and
// Metrics' qstore fields stay zero.
func TestQStoreParity(t *testing.T) {
	dir := t.TempDir()
	plain := New(testGraph(2), Options{})
	st, err := qstore.Open(qstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	stored := New(testGraph(2), Options{QueryStore: st})

	queries := []string{
		`MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name, b.name`,
		`MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name, b.name`, // cache hit
		`MATCH (u:University)<-[:studyAt]-(s:Person) RETURN s.name`,
		`MATCH (((`, // invalid
	}
	for _, q := range queries {
		r1, err1 := plain.Execute(Request{Query: q})
		r2, err2 := stored.Execute(Request{Query: q})
		if (err1 == nil) != (err2 == nil) || KindOf(err1) != KindOf(err2) {
			t.Fatalf("error divergence for %q: %v vs %v", q, err1, err2)
		}
		if err1 != nil {
			continue
		}
		// Row order is nondeterministic across runs; compare as sorted sets.
		if r1.Count != r2.Count || !reflect.DeepEqual(sortedRows(t, r1), sortedRows(t, r2)) ||
			r1.PlanCacheHit != r2.PlanCacheHit || r1.FromResultCache != r2.FromResultCache {
			t.Fatalf("response divergence for %q", q)
		}
	}
	m1, m2 := plain.Metrics(), stored.Metrics()
	if m1.QStoreRecords != 0 || m1.QStoreTotal != 0 || m1.QStoreBytes != 0 {
		t.Fatalf("disabled session reports qstore activity: %+v", m1)
	}
	if m2.QStoreRecords != int64(len(queries)) || m2.QStoreTotal != int64(len(queries)) {
		t.Fatalf("stored session records = %d/%d, want %d", m2.QStoreRecords, m2.QStoreTotal, len(queries))
	}
	// Everything except the qstore fields matches.
	m2.QStoreRecords, m2.QStoreTotal, m2.QStoreBytes, m2.QStoreRegressions = 0, 0, 0, 0
	m2.QStoreSegments, m2.QStoreFingerprints, m2.QStoreDrops = 0, 0, 0
	m1.Cluster, m2.Cluster = m1.Cluster.Clone(), m1.Cluster.Clone() // wall times differ per run
	b1, _ := json.Marshal(m1)
	b2, _ := json.Marshal(m2)
	if string(b1) != string(b2) {
		t.Fatalf("metrics divergence:\noff: %s\non:  %s", b1, b2)
	}
}

// TestSessionRestartReproducesAggregates is the end-to-end half of the
// recovery criterion: records written through real executions rebuild the
// same aggregates when a fresh store opens the same directory.
func TestSessionRestartReproducesAggregates(t *testing.T) {
	dir := t.TempDir()
	s, st := qstoreSession(t, dir, Options{})
	queries := []string{
		`MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name, b.name`,
		`MATCH (u:University)<-[:studyAt]-(s:Person) RETURN s.name`,
		`MATCH (a:Person) RETURN a.name`,
	}
	for i := 0; i < 4; i++ {
		for _, q := range queries {
			if _, err := s.Execute(Request{Query: q}); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, err := json.Marshal(st.Top(qstore.SortFrequent, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := qstore.Open(qstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	after, err := json.Marshal(st2.Top(qstore.SortFrequent, 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("restart changed aggregates:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestOutcomeOf maps every session error kind onto its store outcome.
func TestOutcomeOf(t *testing.T) {
	cases := map[Kind]qstore.Outcome{
		KindInvalid:      qstore.OutcomeInvalid,
		KindRejected:     qstore.OutcomeRejected,
		KindTimeout:      qstore.OutcomeTimeout,
		KindMemoryBudget: qstore.OutcomeMemoryKill,
		KindFailed:       qstore.OutcomeError,
	}
	for kind, want := range cases {
		if got := outcomeOf(&Error{Kind: kind, Err: errors.New("x")}); got != want {
			t.Errorf("outcomeOf(%v) = %v, want %v", kind, got, want)
		}
	}
	if got := outcomeOf(errors.New("unclassified")); got != qstore.OutcomeError {
		t.Errorf("unclassified error mapped to %v", got)
	}
}
