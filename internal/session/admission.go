package session

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned when a request cannot even be queued: every job
// slot is taken and the bounded wait queue is at capacity. Callers should
// back off (the HTTP server maps it to 429 Too Many Requests).
var ErrQueueFull = errors.New("session: job queue full")

// Kind classifies a session error for transport mapping.
type Kind int

const (
	// KindInvalid is a bad request: parse error, unknown variable, missing
	// or malformed parameter (HTTP 400).
	KindInvalid Kind = iota
	// KindRejected is admission control refusing the request because the
	// wait queue is full (HTTP 429).
	KindRejected
	// KindTimeout is a deadline that expired — while queued or mid-flight —
	// or a cancelled request context (HTTP 504).
	KindTimeout
	// KindFailed is an execution failure: a contained dataflow panic or an
	// exhausted fault-recovery budget (HTTP 500).
	KindFailed
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInvalid:
		return "invalid"
	case KindRejected:
		return "rejected"
	case KindTimeout:
		return "timeout"
	case KindFailed:
		return "failed"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Error is a classified session failure. It wraps the underlying cause, so
// errors.Is still matches context.DeadlineExceeded, ErrQueueFull, or a
// *dataflow.JobError.
type Error struct {
	Kind Kind
	Err  error
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("session: %s: %v", e.Kind, e.Err) }

// Unwrap exposes the cause.
func (e *Error) Unwrap() error { return e.Err }

// KindOf extracts the classification of a session error; unclassified
// errors report KindFailed.
func KindOf(err error) Kind {
	var se *Error
	if errors.As(err, &se) {
		return se.Kind
	}
	return KindFailed
}

// classify wraps an error with its kind, preserving an existing *Error.
func classify(kind Kind, err error) *Error {
	var se *Error
	if errors.As(err, &se) {
		return se
	}
	return &Error{Kind: kind, Err: err}
}

// gate is the admission controller: a fixed number of job slots plus a
// bounded wait queue. Acquire blocks until a slot frees, the caller's
// context expires, or the queue bound is exceeded — a request is never left
// hanging.
type gate struct {
	slots    chan struct{}
	maxQueue int64
	waiting  atomic.Int64
}

func newGate(maxConcurrent, maxQueue int) *gate {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{slots: make(chan struct{}, maxConcurrent), maxQueue: int64(maxQueue)}
}

// acquire takes a job slot, reporting how long the request waited in the
// queue. It fails fast with ErrQueueFull when the queue bound is exceeded
// and with the context's error when the deadline expires while queued.
func (g *gate) acquire(ctx context.Context) (time.Duration, error) {
	select {
	case g.slots <- struct{}{}:
		return 0, nil
	default:
	}
	if g.waiting.Add(1) > g.maxQueue {
		g.waiting.Add(-1)
		return 0, ErrQueueFull
	}
	start := time.Now()
	defer g.waiting.Add(-1)
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case g.slots <- struct{}{}:
		return time.Since(start), nil
	case <-ctx.Done():
		return time.Since(start), fmt.Errorf("session: expired while queued: %w", ctx.Err())
	}
}

// release frees a slot taken by acquire.
func (g *gate) release() { <-g.slots }

// queued reports the current queue depth (for metrics/health output).
func (g *gate) queued() int64 { return g.waiting.Load() }

// inFlight reports the number of occupied job slots.
func (g *gate) inFlight() int { return len(g.slots) }
