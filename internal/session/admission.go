package session

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"gradoop/internal/govern"
)

// ErrQueueFull is returned when a request cannot even be queued: every job
// slot is taken and the bounded wait queue is at capacity. Callers should
// back off (the HTTP server maps it to 429 Too Many Requests).
var ErrQueueFull = errors.New("session: job queue full")

// Kind classifies a session error for transport mapping.
type Kind int

const (
	// KindInvalid is a bad request: parse error, unknown variable, missing
	// or malformed parameter (HTTP 400).
	KindInvalid Kind = iota
	// KindRejected is admission control refusing the request because the
	// wait queue is full (HTTP 429).
	KindRejected
	// KindTimeout is a deadline that expired — while queued or mid-flight —
	// or a cancelled request context (HTTP 504).
	KindTimeout
	// KindFailed is an execution failure: a contained dataflow panic or an
	// exhausted fault-recovery budget (HTTP 500).
	KindFailed
	// KindMemoryBudget is a query killed by the process memory budget —
	// its own reservation crossed the budget or it was shed as the largest
	// query in flight. The server maps it to HTTP 503 with Retry-After:
	// unlike KindFailed the query itself may be fine, the process was
	// overloaded, and retrying later can succeed.
	KindMemoryBudget
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInvalid:
		return "invalid"
	case KindRejected:
		return "rejected"
	case KindTimeout:
		return "timeout"
	case KindFailed:
		return "failed"
	case KindMemoryBudget:
		return "memory-budget"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Error is a classified session failure. It wraps the underlying cause, so
// errors.Is still matches context.DeadlineExceeded, ErrQueueFull, or a
// *dataflow.JobError.
type Error struct {
	Kind Kind
	Err  error
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("session: %s: %v", e.Kind, e.Err) }

// Unwrap exposes the cause.
func (e *Error) Unwrap() error { return e.Err }

// KindOf extracts the classification of a session error; unclassified
// errors report KindFailed.
func KindOf(err error) Kind {
	var se *Error
	if errors.As(err, &se) {
		return se.Kind
	}
	return KindFailed
}

// classify wraps an error with its kind, preserving an existing *Error.
func classify(kind Kind, err error) *Error {
	var se *Error
	if errors.As(err, &se) {
		return se
	}
	return &Error{Kind: kind, Err: err}
}

// gate is the admission controller: a fixed number of job slots plus a
// bounded wait queue, and — under memory governance — a byte-aware second
// stage: a request holding a slot still waits for the broker to have
// reservation headroom before it is admitted. Acquire blocks until a slot
// frees, the caller's context expires, or the queue bound is exceeded — a
// request is never left hanging.
type gate struct {
	slots    chan struct{}
	maxQueue int64
	waiting  atomic.Int64
	// broker gates admission on reservation headroom; nil skips the byte
	// stage entirely (govern's nil-safe no-op path).
	broker *govern.Broker
}

func newGate(maxConcurrent, maxQueue int) *gate {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{slots: make(chan struct{}, maxConcurrent), maxQueue: int64(maxQueue)}
}

// acquire takes a job slot, reporting how long the request waited in the
// queue. It fails fast with ErrQueueFull when the queue bound is exceeded
// and with the context's error when the deadline expires while queued —
// either for a slot or, under governance, for reservation headroom. The
// slot is released on every failing exit path: acquire either returns nil
// holding exactly one slot, or an error holding none.
func (g *gate) acquire(ctx context.Context) (time.Duration, error) {
	select {
	case g.slots <- struct{}{}:
		if g.broker.HasHeadroom() {
			return 0, nil
		}
		return g.awaitHeadroom(ctx, time.Now())
	default:
	}
	if g.waiting.Add(1) > g.maxQueue {
		g.waiting.Add(-1)
		return 0, ErrQueueFull
	}
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case g.slots <- struct{}{}:
		g.waiting.Add(-1)
	case <-ctx.Done():
		g.waiting.Add(-1)
		return time.Since(start), fmt.Errorf("session: expired while queued: %w", ctx.Err())
	}
	if g.broker.HasHeadroom() {
		return time.Since(start), nil
	}
	return g.awaitHeadroom(ctx, start)
}

// awaitHeadroom is the byte-aware admission stage: the caller holds a slot
// but the process's memory reservations are at the budget, so it stays
// queued (counted in the queue-depth gauge) until headroom opens or its
// deadline expires — in which case the slot is handed back.
func (g *gate) awaitHeadroom(ctx context.Context, start time.Time) (time.Duration, error) {
	g.waiting.Add(1)
	err := g.broker.AwaitHeadroom(ctx)
	g.waiting.Add(-1)
	if err != nil {
		g.release()
		return time.Since(start), fmt.Errorf("session: expired while queued: %w", err)
	}
	return time.Since(start), nil
}

// release frees a slot taken by acquire.
func (g *gate) release() { <-g.slots }

// queued reports the current queue depth (for metrics/health output).
func (g *gate) queued() int64 { return g.waiting.Load() }

// inFlight reports the number of occupied job slots.
func (g *gate) inFlight() int { return len(g.slots) }
