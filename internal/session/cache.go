package session

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"

	"gradoop/internal/core"
	"gradoop/internal/epgm"
)

// CanonicalQuery normalizes a query's whitespace so textually equivalent
// requests share cache entries. Parameterized queries canonicalize to the
// same text regardless of binding — that is the point of the plan cache.
func CanonicalQuery(q string) string {
	return strings.Join(strings.Fields(q), " ")
}

// paramsKey encodes a binding deterministically: sorted name=TYPE:value
// pairs. It distinguishes PVInt(1) from PVString("1") — different bindings
// must never collide in the result cache.
func paramsKey(params map[string]epgm.PropertyValue) string {
	if len(params) == 0 {
		return ""
	}
	parts := make([]string, 0, len(params))
	for name, v := range params {
		parts = append(parts, fmt.Sprintf("%s=%s:%s", name, v.Type(), v))
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x00")
}

// planEntry is one cached compilation. The once gives the cache
// single-flight behaviour: concurrent first requests for the same query
// build the plan exactly once and the rest wait for it.
type planEntry struct {
	once sync.Once
	p    *core.Prepared
	err  error
}

// planCache is an LRU cache of Prepared queries, keyed by canonical query
// text (semantics, hint and reuse mode are session-wide, and the cache is
// purged when the graph — and with it the statistics — is swapped).
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used; values are *planItem
}

type planItem struct {
	key   string
	entry *planEntry
}

func newPlanCache(max int) *planCache {
	if max < 1 {
		max = 1
	}
	return &planCache{max: max, entries: map[string]*list.Element{}, order: list.New()}
}

// get returns the entry for key, creating it when absent; created reports
// whether this call inserted it (a cache miss about to build).
func (c *planCache) get(key string) (e *planEntry, created bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*planItem).entry, false
	}
	entry := &planEntry{}
	c.entries[key] = c.order.PushFront(&planItem{key: key, entry: entry})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*planItem).key)
	}
	return entry, true
}

// drop removes a key (used when a build fails, so the error is not pinned).
func (c *planCache) drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

// purge empties the cache (graph swap).
func (c *planCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.order.Init()
}

// len reports the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// cachedResult is one materialized query result: the rows and count of a
// fully bound execution, reusable until the graph is swapped.
type cachedResult struct {
	Columns []string
	Rows    []core.Row
	Count   int64

	key        string
	generation uint64
	bytes      int64
}

// estimateBytes approximates the retained size of a result for the byte
// budget: slice headers and string payloads dominate.
func (r *cachedResult) estimateBytes() int64 {
	n := int64(len(r.key)) + 64
	for _, c := range r.Columns {
		n += int64(len(c)) + 16
	}
	for _, row := range r.Rows {
		n += 48 // row headers
		for _, v := range row.Values {
			n += 32 + int64(len(v.Str()))
		}
	}
	return n
}

// resultCache is a byte-budgeted LRU of materialized results. Entries from
// an older graph generation are ignored on lookup and lazily dropped; a
// graph swap purges everything eagerly.
type resultCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[string]*list.Element
	order   *list.List // values are *cachedResult
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{budget: budget, entries: map[string]*list.Element{}, order: list.New()}
}

// get returns the cached result for key at the given graph generation.
func (c *resultCache) get(key string, generation uint64) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	r := el.Value.(*cachedResult)
	if r.generation != generation {
		c.removeLocked(el)
		return nil, false
	}
	c.order.MoveToFront(el)
	return r, true
}

// put inserts a result, evicting least-recently-used entries past the byte
// budget. Results larger than the whole budget are not cached.
func (c *resultCache) put(r *cachedResult) {
	r.bytes = r.estimateBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.bytes > c.budget {
		return
	}
	if el, ok := c.entries[r.key]; ok {
		c.removeLocked(el)
	}
	c.entries[r.key] = c.order.PushFront(r)
	c.used += r.bytes
	for c.used > c.budget && c.order.Len() > 1 {
		c.removeLocked(c.order.Back())
	}
}

func (c *resultCache) removeLocked(el *list.Element) {
	r := el.Value.(*cachedResult)
	c.order.Remove(el)
	delete(c.entries, r.key)
	c.used -= r.bytes
}

// purge empties the cache (graph swap).
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.order.Init()
	c.used = 0
}

// usage reports the cache's current byte footprint and entry count.
func (c *resultCache) usage() (bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used, c.order.Len()
}
