package session

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"

	"gradoop/internal/core"
	"gradoop/internal/epgm"
	"gradoop/internal/govern"
	"gradoop/internal/wire"
)

// CanonicalQuery collapses runs of whitespace outside quoted regions into
// single spaces, so textually equivalent requests share cache entries and
// parameterized queries canonicalize to the same text regardless of binding.
// Quoted regions — 'single'/"double" string literals (backslash escapes
// respected, matching the lexer) and `backquoted` identifiers — are copied
// byte for byte: the canonical text is what the session actually parses and
// executes, so whitespace inside a literal is load-bearing and two queries
// differing only inside a literal must not collide on one cache key.
func CanonicalQuery(q string) string {
	var sb strings.Builder
	sb.Grow(len(q))
	space := false // a pending separator between emitted tokens
	for i := 0; i < len(q); {
		if c := q[i]; c == '\'' || c == '"' || c == '`' {
			j := i + 1
			for j < len(q) && q[j] != c {
				if c != '`' && q[j] == '\\' && j+1 < len(q) {
					j++ // an escaped byte cannot close the literal
				}
				j++
			}
			if j < len(q) {
				j++ // closing quote; unterminated literals keep the tail and fail in the parser
			}
			if space && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			space = false
			sb.WriteString(q[i:j])
			i = j
			continue
		}
		r, sz := utf8.DecodeRuneInString(q[i:])
		if unicode.IsSpace(r) {
			space = true
		} else {
			if space && sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			space = false
			sb.WriteString(q[i : i+sz])
		}
		i += sz
	}
	return sb.String()
}

// paramsKey encodes a binding deterministically and collision-proof via the
// shared wire codec: names sorted, each length-prefixed and followed by the
// value's binary encoding (type byte + length-prefixed payload). No value —
// including one carrying NUL bytes — can forge a pair boundary, and
// PVInt(1) never collides with PVString("1"): different bindings must never
// share a result-cache key. The cluster protocol ships bindings in the same
// bytes (wire.AppendParams), so cache keys and job specs agree by
// construction.
func paramsKey(params map[string]epgm.PropertyValue) string {
	return string(wire.AppendParams(nil, params))
}

// planKey scopes a canonical query to one graph generation. A compile racing
// with SwapGraph (snapshot taken before the swap, cache insert after the
// purge) then parks its stale-statistics plan under the old generation's
// key, where no post-swap request can find it.
func planKey(generation uint64, canonical string) string {
	return strconv.FormatUint(generation, 10) + "\x00" + canonical
}

// planEntry is one cached compilation. The once gives the cache
// single-flight behaviour: concurrent first requests for the same query
// build the plan exactly once and the rest wait for it.
type planEntry struct {
	once sync.Once
	p    *core.Prepared
	err  error
}

// planCache is an LRU cache of Prepared queries, keyed by planKey —
// generation-scoped canonical query text (semantics, hint and reuse mode are
// session-wide). The cache is additionally purged when the graph — and with
// it the statistics — is swapped.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used; values are *planItem
}

type planItem struct {
	key   string
	entry *planEntry
}

func newPlanCache(max int) *planCache {
	if max < 1 {
		max = 1
	}
	return &planCache{max: max, entries: map[string]*list.Element{}, order: list.New()}
}

// get returns the entry for key, creating it when absent. Whether a call is
// a hit or a miss is decided by whose once.Do closure runs the build, not by
// who inserted the entry — the creator can lose that race to another caller.
func (c *planCache) get(key string) *planEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*planItem).entry
	}
	entry := &planEntry{}
	c.entries[key] = c.order.PushFront(&planItem{key: key, entry: entry})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*planItem).key)
	}
	return entry
}

// drop removes a key (used when a build fails, so the error is not pinned).
func (c *planCache) drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

// purge empties the cache (graph swap).
func (c *planCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.order.Init()
}

// len reports the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// cachedResult is one materialized query result: the rows and count of a
// fully bound execution, reusable until the graph is swapped.
type cachedResult struct {
	Columns []string
	Rows    []core.Row
	Count   int64

	key        string
	generation uint64
	bytes      int64
}

// estimateBytes approximates the retained size of a result for the byte
// budget: slice headers and string payloads dominate.
func (r *cachedResult) estimateBytes() int64 {
	n := int64(len(r.key)) + 64
	for _, c := range r.Columns {
		n += int64(len(c)) + 16
	}
	for _, row := range r.Rows {
		n += 48 // row headers
		for _, v := range row.Values {
			n += 32 + int64(len(v.Str()))
		}
	}
	return n
}

// resultCache is a byte-budgeted LRU of materialized results. Entries from
// an older graph generation are ignored on lookup and lazily dropped; a
// graph swap purges everything eagerly.
//
// Under memory governance the cache's bytes are weak reservations against
// the session broker: put admits an entry only if its bytes fit the process
// budget right now (TryReserve — a cache insert must never cause a query
// kill), every eviction hands its bytes back, and reclaim empties the whole
// cache when the broker browns out under pressure.
type resultCache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[string]*list.Element
	order   *list.List // values are *cachedResult
	// broker is the session's memory broker; nil outside governance. Only
	// TryReserve/ReleaseBytes are ever called here — both are lock-free on
	// the broker side, so the b.mu → c.mu lock order of reclaim (called from
	// the broker's overflow path) can never invert.
	broker *govern.Broker
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{budget: budget, entries: map[string]*list.Element{}, order: list.New()}
}

// get returns the cached result for key at the given graph generation.
func (c *resultCache) get(key string, generation uint64) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	r := el.Value.(*cachedResult)
	if r.generation != generation {
		c.removeLocked(el)
		return nil, false
	}
	c.order.MoveToFront(el)
	return r, true
}

// put inserts a result, evicting least-recently-used entries past the byte
// budget. Results larger than the whole budget are not cached, and neither
// is anything the memory broker cannot admit without pressure: cache memory
// is the first thing sacrificed under load, so it never competes with
// queries for the last bytes of the process budget.
func (c *resultCache) put(r *cachedResult) {
	r.bytes = r.estimateBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.bytes > c.budget {
		return
	}
	if el, ok := c.entries[r.key]; ok {
		c.removeLocked(el)
	}
	for c.used+r.bytes > c.budget && c.order.Len() > 0 {
		c.removeLocked(c.order.Back())
	}
	if !c.broker.TryReserve(r.bytes) {
		return
	}
	c.entries[r.key] = c.order.PushFront(r)
	c.used += r.bytes
}

func (c *resultCache) removeLocked(el *list.Element) {
	r := el.Value.(*cachedResult)
	c.order.Remove(el)
	delete(c.entries, r.key)
	c.used -= r.bytes
	c.broker.ReleaseBytes(r.bytes)
}

// purge empties the cache (graph swap), returning every byte to the broker.
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.order.Init()
	c.broker.ReleaseBytes(c.used)
	c.used = 0
}

// reclaim is the brownout hook the session registers with the broker: under
// reservation pressure the whole cache is dropped and its bytes handed back
// so queries are killed only after cache memory is gone. Runs with the
// broker's overflow lock held — it must (and does) touch only the cache
// lock and the broker's lock-free release path.
func (c *resultCache) reclaim() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	freed := c.used
	c.entries = map[string]*list.Element{}
	c.order.Init()
	c.broker.ReleaseBytes(c.used)
	c.used = 0
	return freed
}

// usage reports the cache's current byte footprint and entry count.
func (c *resultCache) usage() (bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used, c.order.Len()
}
