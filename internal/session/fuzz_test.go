package session

import (
	"strings"
	"testing"
	"unicode"
	"unicode/utf8"
)

// stripSpace removes every Unicode whitespace rune, decoding the string the
// same way CanonicalQuery does (invalid UTF-8 bytes pass through), so the
// comparison below treats both sides identically.
func stripSpace(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); {
		r, sz := utf8.DecodeRuneInString(s[i:])
		if !unicode.IsSpace(r) {
			sb.WriteString(s[i : i+sz])
		}
		i += sz
	}
	return sb.String()
}

// FuzzCanonicalQuery checks the cache-key canonicalization's contract on
// arbitrary inputs: it never panics, never grows the input, is idempotent
// (a canonical query is its own canonical form — the property the plan
// cache keys rely on), and only ever touches whitespace, so the non-space
// byte sequence — including every byte inside quoted literals — survives
// unchanged.
func FuzzCanonicalQuery(f *testing.F) {
	f.Add("MATCH  (a:Person)-[e:knows]->(b)\n WHERE a.name = 'Alice  Smith'")
	f.Add("MATCH (a) WHERE a.s = \"two  spaces\" RETURN a")
	f.Add("MATCH (`weird  var`) RETURN `weird  var`")
	f.Add("MATCH (a) WHERE a.s = 'esc \\' quote  '")
	f.Add("MATCH (a) WHERE a.s = 'unterminated   ")
	f.Add("  \t\n MATCH (a) RETURN a  ")
	f.Add("''\"\"``")
	f.Fuzz(func(t *testing.T, q string) {
		c := CanonicalQuery(q)
		if len(c) > len(q) {
			t.Fatalf("canonicalization grew the query: %d -> %d bytes\nin:  %q\nout: %q", len(q), len(c), q, c)
		}
		if cc := CanonicalQuery(c); cc != c {
			t.Fatalf("canonicalization is not idempotent\nonce:  %q\ntwice: %q", c, cc)
		}
		if got, want := stripSpace(c), stripSpace(q); got != want {
			t.Fatalf("canonicalization changed non-whitespace bytes\nin:  %q\nout: %q", q, c)
		}
	})
}
