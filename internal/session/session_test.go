package session

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gradoop/internal/core"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
)

// testGraph builds a small social graph: persons with names, knows edges,
// a university with studyAt edges.
func testGraph(workers int) *epgm.LogicalGraph {
	env := dataflow.NewEnv(dataflow.DefaultConfig(workers))
	person := func(name string) epgm.Vertex {
		return epgm.Vertex{ID: epgm.NewID(), Label: "Person",
			Properties: epgm.Properties{}.Set("name", epgm.PVString(name))}
	}
	alice, bob, eve, carol := person("Alice"), person("Bob"), person("Eve"), person("Carol")
	uni := epgm.Vertex{ID: epgm.NewID(), Label: "University",
		Properties: epgm.Properties{}.Set("name", epgm.PVString("Uni Leipzig"))}
	e := func(label string, s, t epgm.Vertex) epgm.Edge {
		return epgm.Edge{ID: epgm.NewID(), Label: label, Source: s.ID, Target: t.ID}
	}
	return epgm.GraphFromSlices(env, "Community",
		[]epgm.Vertex{alice, bob, eve, carol, uni},
		[]epgm.Edge{
			e("knows", alice, bob), e("knows", bob, alice), e("knows", bob, eve),
			e("knows", eve, carol), e("knows", carol, alice),
			e("studyAt", alice, uni), e("studyAt", bob, uni), e("studyAt", eve, uni),
		})
}

// TestExecuteBasics: a session serves a query, reports rows and a count,
// and the second identical request is a result-cache hit with identical
// rows.
func TestExecuteBasics(t *testing.T) {
	s := New(testGraph(4), Options{})
	req := Request{Query: `MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name, b.name`}
	r1, err := s.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Count != 5 || len(r1.Rows) != 5 {
		t.Fatalf("count=%d rows=%d want 5/5", r1.Count, len(r1.Rows))
	}
	if r1.FromResultCache || r1.PlanCacheHit {
		t.Fatalf("first request must miss both caches: %+v", r1)
	}
	if r1.Fingerprint == "" {
		t.Fatal("missing plan fingerprint")
	}
	if r1.Metrics.TotalCPU == 0 {
		t.Fatal("first execution reported no work")
	}

	r2, err := s.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.FromResultCache {
		t.Fatal("second identical request must hit the result cache")
	}
	if len(r2.Rows) != len(r1.Rows) {
		t.Fatalf("cached rows=%d want %d", len(r2.Rows), len(r1.Rows))
	}
	m := s.Metrics()
	if m.ResultHits != 1 || m.PlanMisses != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestPlanCacheParameterized: two bindings of the same $param query share
// one plan-cache entry (the second is a plan hit, not a result hit) and
// return binding-specific results.
func TestPlanCacheParameterized(t *testing.T) {
	s := New(testGraph(4), Options{})
	q := `MATCH (a:Person) WHERE a.name = $name RETURN a.name`
	r1, err := s.Execute(Request{Query: q, Params: map[string]epgm.PropertyValue{"name": epgm.PVString("Alice")}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Execute(Request{Query: q, Params: map[string]epgm.PropertyValue{"name": epgm.PVString("Bob")}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.PlanCacheHit {
		t.Fatal("first binding cannot be a plan hit")
	}
	if !r2.PlanCacheHit || r2.FromResultCache {
		t.Fatalf("second binding must hit the plan cache only: %+v", r2)
	}
	if r1.Count != 1 || r2.Count != 1 {
		t.Fatalf("counts: %d, %d", r1.Count, r2.Count)
	}
	if r1.Rows[0].Values[0] == r2.Rows[0].Values[0] {
		t.Fatal("bindings returned the same row")
	}
	if r1.Fingerprint != r2.Fingerprint {
		t.Fatal("one template must have one fingerprint")
	}
	// Same binding again: now the result cache serves it.
	r3, err := s.Execute(Request{Query: q, Params: map[string]epgm.PropertyValue{"name": epgm.PVString("Alice")}})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.FromResultCache {
		t.Fatal("repeated binding must hit the result cache")
	}
}

// TestCanonicalization: whitespace variants of one query share cache
// entries.
func TestCanonicalization(t *testing.T) {
	s := New(testGraph(2), Options{NoResultCache: true})
	if _, err := s.Execute(Request{Query: "MATCH (a:Person)  RETURN a.name"}); err != nil {
		t.Fatal(err)
	}
	r, err := s.Execute(Request{Query: "MATCH (a:Person)\n\tRETURN   a.name"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.PlanCacheHit {
		t.Fatal("whitespace variant missed the plan cache")
	}
}

// TestCacheEscapeHatches: NoPlanCache and NoResultCache force full
// recompilation/re-execution on every request.
func TestCacheEscapeHatches(t *testing.T) {
	s := New(testGraph(2), Options{NoPlanCache: true, NoResultCache: true})
	req := Request{Query: `MATCH (a:Person) RETURN a.name`}
	for i := 0; i < 3; i++ {
		r, err := s.Execute(req)
		if err != nil {
			t.Fatal(err)
		}
		if r.PlanCacheHit || r.FromResultCache {
			t.Fatalf("request %d hit a disabled cache", i)
		}
	}
	m := s.Metrics()
	if m.PlanHits != 0 || m.ResultHits != 0 || m.PlanMisses != 3 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestTraceSpansVerifyCacheHitSkipsPrepare: a traced cache miss carries a
// "Prepare" op span; a traced hit does not — the observable proof that the
// hit path skips parse+plan.
func TestTraceSpansVerifyCacheHitSkipsPrepare(t *testing.T) {
	s := New(testGraph(2), Options{})
	req := Request{Query: `MATCH (a:Person)-[:knows]->(b) RETURN b.name`, Trace: true}
	r1, err := s.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r1.Trace.Op(prepareToken{}); !ok {
		t.Fatal("traced miss has no Prepare span")
	}
	r2, err := s.Execute(req) // trace requests bypass the result cache
	if err != nil {
		t.Fatal(err)
	}
	if !r2.PlanCacheHit {
		t.Fatal("second traced request should hit the plan cache")
	}
	if _, ok := r2.Trace.Op(prepareToken{}); ok {
		t.Fatal("traced hit still ran Prepare")
	}
}

// TestSwapGraphInvalidates: swapping the graph purges both caches and
// queries see the new data.
func TestSwapGraphInvalidates(t *testing.T) {
	s := New(testGraph(2), Options{})
	req := Request{Query: `MATCH (a:Person) RETURN a.name`}
	r1, err := s.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Count != 4 {
		t.Fatalf("count=%d want 4", r1.Count)
	}

	env := dataflow.NewEnv(dataflow.DefaultConfig(2))
	small := epgm.GraphFromSlices(env, "Solo",
		[]epgm.Vertex{{ID: epgm.NewID(), Label: "Person",
			Properties: epgm.Properties{}.Set("name", epgm.PVString("Zoe"))}}, nil)
	s.SwapGraph(small)

	r2, err := s.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if r2.FromResultCache || r2.PlanCacheHit {
		t.Fatalf("caches must be purged on swap: %+v", r2)
	}
	if r2.Count != 1 || r2.Rows[0].Values[0].Str() != "Zoe" {
		t.Fatalf("swap not visible: count=%d rows=%v", r2.Count, r2.Rows)
	}
}

// TestAdmissionQueueFull: with one slot and no queue, a second concurrent
// request is rejected with a structured ErrQueueFull — deterministically,
// by occupying the slot directly.
func TestAdmissionQueueFull(t *testing.T) {
	s := New(testGraph(2), Options{MaxConcurrent: 1, MaxQueued: 1})
	s.gate.slots <- struct{}{} // occupy the only slot
	s.gate.waiting.Add(1)      // fill the only queue spot
	_, err := s.Execute(Request{Query: `MATCH (a:Person) RETURN a.name`})
	var se *Error
	if !errors.As(err, &se) || se.Kind != KindRejected || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err=%v, want KindRejected wrapping ErrQueueFull", err)
	}
	if m := s.Metrics(); m.Rejected != 1 {
		t.Fatalf("rejected=%d want 1", m.Rejected)
	}
	s.gate.waiting.Add(-1)
	<-s.gate.slots
}

// TestDeadlineWhileQueued: a request whose deadline expires in the
// admission queue returns a structured timeout, not a hang.
func TestDeadlineWhileQueued(t *testing.T) {
	s := New(testGraph(2), Options{MaxConcurrent: 1, MaxQueued: 4})
	s.gate.slots <- struct{}{} // occupy the only slot; the request must queue
	defer func() { <-s.gate.slots }()
	start := time.Now()
	_, err := s.Execute(Request{
		Query:   `MATCH (a:Person) RETURN a.name`,
		Timeout: 30 * time.Millisecond,
	})
	var se *Error
	if !errors.As(err, &se) || se.Kind != KindTimeout {
		t.Fatalf("err=%v, want KindTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause=%v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("queued request took far longer than its deadline")
	}
}

// TestInvalidQueries: parse errors and missing parameters classify as
// KindInvalid.
func TestInvalidQueries(t *testing.T) {
	s := New(testGraph(2), Options{})
	for _, q := range []string{"", "MATCH (", "MATCH (a:Person) RETURN zzz"} {
		_, err := s.Execute(Request{Query: q})
		var se *Error
		if !errors.As(err, &se) || se.Kind != KindInvalid {
			t.Fatalf("query %q: err=%v, want KindInvalid", q, err)
		}
	}
	_, err := s.Execute(Request{Query: `MATCH (a:Person) WHERE a.name = $missing RETURN a.name`})
	var se *Error
	if !errors.As(err, &se) || se.Kind != KindInvalid {
		t.Fatalf("missing param: err=%v, want KindInvalid", err)
	}
	if !strings.Contains(err.Error(), "$missing") {
		t.Fatalf("missing param error does not name the parameter: %v", err)
	}
}

// TestExplain: renders the template plan (parameters unresolved) without
// executing, and reports the fingerprint the execution path also reports.
func TestExplain(t *testing.T) {
	s := New(testGraph(2), Options{})
	q := `MATCH (a:Person) WHERE a.name = $name RETURN a.name`
	plan, fp, err := s.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "FilterAndProjectVertices") || !strings.Contains(plan, "preds=1") {
		t.Fatalf("unexpected template plan:\n%s", plan)
	}
	r, err := s.Execute(Request{Query: q, Params: map[string]epgm.PropertyValue{"name": epgm.PVString("Eve")}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Fingerprint != fp {
		t.Fatalf("explain fingerprint %s != execute fingerprint %s", fp, r.Fingerprint)
	}
	if !r.PlanCacheHit {
		t.Fatal("Explain should have warmed the plan cache")
	}
}

// TestLiteralWhitespacePreserved: canonicalization must not rewrite string
// literals — a predicate on 'John  Smith' (two spaces) matches only that
// vertex, and the single-space variant is a different query with a
// different (empty) result, not a cache collision.
func TestLiteralWhitespacePreserved(t *testing.T) {
	env := dataflow.NewEnv(dataflow.DefaultConfig(2))
	g := epgm.GraphFromSlices(env, "Names",
		[]epgm.Vertex{
			{ID: epgm.NewID(), Label: "Person",
				Properties: epgm.Properties{}.Set("name", epgm.PVString("John  Smith"))},
			{ID: epgm.NewID(), Label: "Person",
				Properties: epgm.Properties{}.Set("name", epgm.PVString("John Smith"))},
		}, nil)
	s := New(g, Options{})
	two, err := s.Execute(Request{Query: "MATCH (a:Person)  WHERE a.name = 'John  Smith'  RETURN a.name"})
	if err != nil {
		t.Fatal(err)
	}
	if two.Count != 1 || two.Rows[0].Values[0].Str() != "John  Smith" {
		t.Fatalf("double-space literal: count=%d rows=%v", two.Count, two.Rows)
	}
	one, err := s.Execute(Request{Query: "MATCH (a:Person)  WHERE a.name = 'John Smith'  RETURN a.name"})
	if err != nil {
		t.Fatal(err)
	}
	if one.FromResultCache || one.PlanCacheHit {
		t.Fatalf("queries differing inside a literal shared a cache entry: %+v", one)
	}
	if one.Count != 1 || one.Rows[0].Values[0].Str() != "John Smith" {
		t.Fatalf("single-space literal: count=%d rows=%v", one.Count, one.Rows)
	}
}

// TestStaleCompileAfterSwap: a compile racing with SwapGraph (snapshot taken
// before the swap, insert after the purge) must not leave its
// stale-statistics plan where post-swap requests find it.
func TestStaleCompileAfterSwap(t *testing.T) {
	s := New(testGraph(2), Options{})
	q := CanonicalQuery(`MATCH (a:Person) RETURN a.name`)
	st := s.snapshot() // the racing request's pre-swap snapshot

	env := dataflow.NewEnv(dataflow.DefaultConfig(2))
	small := epgm.GraphFromSlices(env, "Solo",
		[]epgm.Vertex{{ID: epgm.NewID(), Label: "Person",
			Properties: epgm.Properties{}.Set("name", epgm.PVString("Zoe"))}}, nil)
	s.SwapGraph(small)

	// The stale request compiles after the purge, against the old snapshot.
	if _, hit, err := s.compile(st, q, nil); err != nil || hit {
		t.Fatalf("stale compile: hit=%v err=%v", hit, err)
	}
	if n := s.plans.len(); n != 0 {
		t.Fatalf("stale plan lingers in the cache: %d entries", n)
	}
	// A post-swap request must rebuild against the new generation, not reuse
	// the stale-stat plan.
	r, err := s.Execute(Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if r.PlanCacheHit {
		t.Fatal("post-swap request hit the stale generation's plan")
	}
	if r.Count != 1 {
		t.Fatalf("count=%d want 1", r.Count)
	}
}

// TestSwapGraphEvictsStatsMemo: swapping out a graph must release its entry
// in the process-wide statistics memo — re-requesting the old graph's stats
// collects again instead of finding the pinned entry.
func TestSwapGraphEvictsStatsMemo(t *testing.T) {
	old := testGraph(2)
	s := New(old, Options{})
	before := core.StatsCollections()
	s.SwapGraph(testGraph(2)) // +1 collection for the new graph
	core.GraphStats(old)      // +1: the memo entry was evicted, so this re-collects
	if d := core.StatsCollections() - before; d != 2 {
		t.Fatalf("collections delta=%d, want 2 (memo entry not evicted on swap)", d)
	}
	core.DropGraphStats(old) // leave no test residue in the memo
}

// TestSingleFlightSpanAttribution: under a concurrent cold start, exactly
// one request runs the build — and that same request is the one reporting a
// plan-cache miss and carrying the Prepare trace span. Hit/miss labels and
// spans must agree per response, not just in aggregate.
func TestSingleFlightSpanAttribution(t *testing.T) {
	for round := 0; round < 8; round++ {
		s := New(testGraph(2), Options{})
		const n = 8
		responses := make([]*Response, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r, err := s.Execute(Request{Query: `MATCH (a:Person)-[:knows]->(b) RETURN b.name`, Trace: true})
				if err != nil {
					t.Error(err)
					return
				}
				responses[i] = r
			}(i)
		}
		wg.Wait()
		builders := 0
		for _, r := range responses {
			if r == nil {
				t.Fatal("missing response")
			}
			_, hasSpan := r.Trace.Op(prepareToken{})
			if hasSpan != !r.PlanCacheHit {
				t.Fatalf("span/label disagree: hit=%v span=%v", r.PlanCacheHit, hasSpan)
			}
			if hasSpan {
				builders++
			}
		}
		if builders != 1 {
			t.Fatalf("round %d: %d builders, want exactly 1", round, builders)
		}
		if m := s.Metrics(); m.PlanMisses != 1 || m.PlanHits != n-1 {
			t.Fatalf("round %d: misses=%d hits=%d, want 1/%d", round, m.PlanMisses, m.PlanHits, n-1)
		}
	}
}

// TestResultCacheEviction: a tiny byte budget evicts older results instead
// of growing without bound.
func TestResultCacheEviction(t *testing.T) {
	s := New(testGraph(2), Options{ResultCacheBytes: 600})
	queries := []string{
		`MATCH (a:Person) RETURN a.name`,
		`MATCH (a:Person)-[:knows]->(b) RETURN b.name`,
		`MATCH (a:University) RETURN a.name`,
	}
	for _, q := range queries {
		if _, err := s.Execute(Request{Query: q}); err != nil {
			t.Fatal(err)
		}
	}
	bytes, entries := s.results.usage()
	if bytes > 600 {
		t.Fatalf("result cache exceeded budget: %d bytes", bytes)
	}
	if entries >= len(queries) {
		t.Fatalf("no eviction happened: %d entries", entries)
	}
}
