package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"gradoop/internal/baseline"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/operators"
)

// TestConcurrentQueries is the -race-exercised service test: many
// simultaneous queries against one session — mixed plan/result cache hits
// and misses, one cancelled mid-flight, one fault-injected — asserting
// per-query correctness against the brute-force baseline and no metrics
// cross-talk between jobs.
func TestConcurrentQueries(t *testing.T) {
	g := testGraph(4)
	s := New(g, Options{MaxConcurrent: 4, MaxQueued: 64})

	// Expected counts from the brute-force baseline, via one sequential
	// warm-up execution per query (also seeding caches for the hit mix).
	queries := []string{
		`MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name, b.name`,
		`MATCH (a:Person)-[:studyAt]->(u:University) RETURN a.name`,
		`MATCH (a:Person)-[:knows]->(b)-[:knows]->(c) RETURN a.name, c.name`,
		`MATCH (a:Person) WHERE a.name = $name RETURN a.name`,
	}
	params := map[string]epgm.PropertyValue{"name": epgm.PVString("Alice")}
	ref := baseline.NewReference(g)
	morph := operators.Morphism{Vertex: s.opts.Vertex, Edge: s.opts.Edge}
	want := map[string]int64{}
	soloCPU := map[string]int64{}
	for _, q := range queries {
		p := params
		r, err := s.Execute(Request{Query: q, Params: p})
		if err != nil {
			t.Fatalf("warm-up %q: %v", q, err)
		}
		want[q] = int64(ref.Count(r.Result.QueryGraph, morph))
		if r.Count != want[q] {
			t.Fatalf("warm-up %q: count=%d baseline=%d", q, r.Count, want[q])
		}
		// The deterministic per-job CPU element count of this query, used
		// below to detect metrics cross-talk between concurrent jobs.
		soloCPU[q] = r.Metrics.TotalCPU
	}

	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, rounds*(len(queries)+2))
	for round := 0; round < rounds; round++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q string, traced bool) {
				defer wg.Done()
				r, err := s.Execute(Request{Query: q, Params: params, Trace: traced})
				if err != nil {
					errs <- err
					return
				}
				if r.Count != want[q] {
					errs <- errorsNewf("query %q: count=%d want %d", q, r.Count, want[q])
					return
				}
				// Traced requests bypass the result cache, so they always
				// ran a job of their own; its metrics must match the solo
				// run exactly — any cross-talk from concurrently running
				// jobs would inflate the counters.
				if traced && r.Metrics.TotalCPU != soloCPU[q] {
					errs <- errorsNewf("query %q: concurrent TotalCPU=%d solo=%d (metrics cross-talk)",
						q, r.Metrics.TotalCPU, soloCPU[q])
				}
			}(q, round%2 == 0)
		}
		// One request cancelled mid-flight: it must fail with a structured
		// timeout/cancellation, never hang, and never corrupt others.
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := s.Execute(Request{
				Query:   queries[2],
				Context: ctx,
				Trace:   true, // bypass the result cache so a job actually starts
			})
			var se *Error
			if err == nil || !errors.As(err, &se) || se.Kind != KindTimeout {
				errs <- errorsNewf("cancelled request: err=%v, want KindTimeout", err)
			}
		}()
		// One fault-injected request: worker failures recover transparently
		// and the result stays correct.
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Early stage numbers are consumed by the rebind-time per-label
			// unions (which run unpartitioned and can't be killed), so the
			// kills cover a stage range to be sure some land on real
			// partitioned stages.
			var kills []dataflow.Kill
			for stage := int64(1); stage <= 10; stage++ {
				kills = append(kills, dataflow.Kill{Stage: stage, Partition: 0})
			}
			r, err := s.Execute(Request{
				Query:  queries[0],
				Faults: &dataflow.FaultPlan{Kills: kills},
			})
			if err != nil {
				errs <- errorsNewf("fault-injected request: %v", err)
				return
			}
			if r.Count != want[queries[0]] {
				errs <- errorsNewf("fault-injected request: count=%d want %d", r.Count, want[queries[0]])
				return
			}
			if r.Metrics.Retries == 0 {
				errs <- errorsNewf("fault-injected request recorded no retries")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := s.Metrics()
	if m.Rejected != 0 {
		t.Fatalf("queue sized for the load still rejected %d requests", m.Rejected)
	}
	if m.Cluster.Jobs == 0 || m.Cluster.SlotWait < 0 {
		t.Fatalf("job-slot accounting missing: %+v", m.Cluster)
	}
	if m.PlanHits == 0 || m.ResultHits == 0 {
		t.Fatalf("expected mixed cache hits under load: %+v", m)
	}
}

// TestConcurrentColdStart: many goroutines racing on a cold cache for the
// same query compile it exactly once (single-flight) and all get correct
// results.
func TestConcurrentColdStart(t *testing.T) {
	s := New(testGraph(4), Options{MaxConcurrent: 8, MaxQueued: 64, NoResultCache: true})
	const n = 16
	var wg sync.WaitGroup
	counts := make([]int64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Execute(Request{Query: `MATCH (a:Person)-[:knows]->(b) RETURN b.name`})
			if err != nil {
				errs[i] = err
				return
			}
			counts[i] = r.Count
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if counts[i] != 5 {
			t.Fatalf("goroutine %d: count=%d want 5", i, counts[i])
		}
	}
	if m := s.Metrics(); m.PlanMisses != 1 || m.PlanHits != n-1 {
		t.Fatalf("single-flight violated: %d misses, %d hits", m.PlanMisses, m.PlanHits)
	}
}

func errorsNewf(format string, args ...any) error { return fmt.Errorf(format, args...) }
