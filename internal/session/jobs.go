package session

import (
	"sort"
	"sync"
	"time"

	"gradoop/internal/dataflow"
	"gradoop/internal/trace"
)

// job is one live Execute call in the session's in-flight table. The env
// pointer is published under the table's mutex once the query holds a slot;
// reading progress from it afterwards is safe (Env metrics are atomics).
type job struct {
	id      uint64
	traceID string
	query   string
	started time.Time

	mu      sync.Mutex
	running bool
	env     *dataflow.Env
	col     *trace.Collector
}

// jobTable tracks in-flight queries for live introspection (/jobs).
type jobTable struct {
	mu     sync.Mutex
	nextID uint64
	jobs   map[uint64]*job
}

func newJobTable() *jobTable {
	return &jobTable{jobs: map[uint64]*job{}}
}

// add registers a query entering the session (queued state) and returns its
// table entry.
func (t *jobTable) add(traceID, query string) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	j := &job{id: t.nextID, traceID: traceID, query: query, started: time.Now()}
	t.jobs[j.id] = j
	return j
}

// start transitions a job to running once it holds a slot and has an
// environment to report progress from.
func (j *job) start(env *dataflow.Env, col *trace.Collector) {
	j.mu.Lock()
	j.running, j.env, j.col = true, env, col
	j.mu.Unlock()
}

// remove drops a finished (or failed, or rejected) job from the table.
func (t *jobTable) remove(j *job) {
	t.mu.Lock()
	delete(t.jobs, j.id)
	t.mu.Unlock()
}

// PartProgress is one partition's live contribution to the current stage of
// an in-flight query (traced requests only).
type PartProgress struct {
	RowsIn  int64 `json:"rowsIn"`
	RowsOut int64 `json:"rowsOut"`
}

// JobInfo is the live view of one in-flight query.
type JobInfo struct {
	ID      uint64 `json:"id"`
	TraceID string `json:"traceId,omitempty"`
	// Query is the canonicalized query text.
	Query   string        `json:"query"`
	State   string        `json:"state"` // "queued" | "running"
	Started time.Time     `json:"started"`
	Elapsed time.Duration `json:"elapsedNs"`
	// Stage is the 1-based number of the stage currently executing and
	// Stages the count of stages finished or started so far; Kind names the
	// running transformation when the session publishes engine telemetry.
	Stage int64  `json:"stage,omitempty"`
	Kind  string `json:"kind,omitempty"`
	// Op is the physical-plan operator the current stage belongs to and
	// Parts its per-partition progress; both are filled for traced requests
	// only, from the live trace span.
	Op    string         `json:"op,omitempty"`
	Parts []PartProgress `json:"parts,omitempty"`
}

// Jobs returns a snapshot of every in-flight query, oldest first. Progress
// fields are read live from each query's running environment and — for
// traced requests — its trace collector.
func (s *Session) Jobs() []JobInfo {
	s.jobs.mu.Lock()
	live := make([]*job, 0, len(s.jobs.jobs))
	for _, j := range s.jobs.jobs {
		live = append(live, j)
	}
	s.jobs.mu.Unlock()

	out := make([]JobInfo, 0, len(live))
	for _, j := range live {
		j.mu.Lock()
		running, env, col := j.running, j.env, j.col
		j.mu.Unlock()
		info := JobInfo{
			ID:      j.id,
			TraceID: j.traceID,
			Query:   j.query,
			State:   "queued",
			Started: j.started,
			Elapsed: time.Since(j.started),
		}
		if running {
			info.State = "running"
			if env != nil {
				info.Stage, info.Kind = env.CurrentStage()
			}
			if col != nil {
				if span, ok := col.Current(); ok {
					info.Stage, info.Kind, info.Op = span.Stage, span.Kind, span.Op
					info.Parts = make([]PartProgress, len(span.Parts))
					for p, ps := range span.Parts {
						info.Parts[p] = PartProgress{RowsIn: ps.RowsIn, RowsOut: ps.RowsOut}
					}
				}
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}
