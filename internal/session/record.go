package session

import (
	"time"

	"gradoop/internal/qstore"
)

// exitInfo carries what execute learned about a request for the query
// store's one record per execution. It is passed by value (no heap
// escape), and everything beyond clock reads is only filled when a store
// is configured.
type exitInfo struct {
	start      time.Time
	canonical  string
	traceID    string
	queueWait  time.Duration
	planDur    time.Duration
	execDur    time.Duration
	planHash   string
	planHit    bool
	memBytes   int64
	rootEst    float64
	hasRootEst bool
	ops        []qstore.OpMetrics
}

// recordExit is the session's single query-store append site: Execute
// routes every exit path — success, cache hit, rejection, timeout, kill,
// failure — through it exactly once (pinned by the qstorerecord
// analyzer). With no store configured it is one nil check.
func (s *Session) recordExit(resp *Response, ex exitInfo, err error) {
	if s.qstore == nil {
		return
	}
	rec := qstore.Record{
		Time:        time.Now().UnixNano(),
		TraceID:     ex.traceID,
		Fingerprint: qstore.QueryFingerprint(ex.canonical),
		PlanHash:    ex.planHash,
		Query:       ex.canonical,
		Outcome:     qstore.OutcomeOK,
		QueueNs:     int64(ex.queueWait),
		PlanNs:      int64(ex.planDur),
		ExecNs:      int64(ex.execDur),
		MemBytes:    ex.memBytes,
		Ops:         ex.ops,
	}
	if resp != nil {
		rec.Rows = resp.Count
		rec.ElapsedNs = int64(resp.Elapsed)
		rec.PlanCacheHit = resp.PlanCacheHit
		rec.ResultCacheHit = resp.FromResultCache
		if ex.hasRootEst {
			rec.RootQError = qstore.QError(ex.rootEst, resp.Count)
		}
	}
	if err != nil {
		rec.Outcome = outcomeOf(err)
		rec.ElapsedNs = int64(time.Since(ex.start))
	}
	rec.Bucket = qstore.SelectivityBucket(rec.Rows)
	s.qstore.Append(rec)
	s.metrics.qstoreRecords.Add(1)
}

// outcomeOf maps a classified session error onto its query-store outcome.
func outcomeOf(err error) qstore.Outcome {
	switch KindOf(err) {
	case KindInvalid:
		return qstore.OutcomeInvalid
	case KindRejected:
		return qstore.OutcomeRejected
	case KindTimeout:
		return qstore.OutcomeTimeout
	case KindMemoryBudget:
		return qstore.OutcomeMemoryKill
	default:
		return qstore.OutcomeError
	}
}

// QueryStore exposes the session's query store (nil when disabled) for
// the HTTP /querystore endpoints and tests.
func (s *Session) QueryStore() *qstore.Store { return s.qstore }
