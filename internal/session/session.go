// Package session implements the long-lived query service on top of the
// one-shot core operator: a Session loads a graph once, pins its statistics
// and label-partitioned representation, and serves many concurrent Cypher
// queries against it. It layers a single-flight plan cache (parameterized
// queries compile once and only bind per call), a byte-budgeted LRU result
// cache, and admission control (bounded job slots plus a bounded wait queue
// with per-request deadlines) over per-query dataflow environments, so one
// resident graph serves heavy traffic the way the ROADMAP's production
// target demands rather than one job at a time.
package session

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"gradoop/internal/core"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/govern"
	"gradoop/internal/obs"
	"gradoop/internal/operators"
	"gradoop/internal/planner"
	"gradoop/internal/qstore"
	"gradoop/internal/stats"
	csvstore "gradoop/internal/storage/csv"
	"gradoop/internal/trace"
)

// Options configures a session. The zero value is usable: paper semantics
// (vertex homomorphism, edge isomorphism), four workers, both caches on.
type Options struct {
	// Workers is the simulated cluster size of each query's environment.
	Workers int
	// Vertex and Edge are the session-wide morphism semantics.
	Vertex operators.Semantics
	Edge   operators.Semantics
	// Hint selects the physical join strategy.
	Hint dataflow.JoinHint
	// DisableSubqueryReuse turns off recurring-subquery leaf sharing.
	DisableSubqueryReuse bool

	// NoPlanCache disables the plan cache (every request re-parses and
	// re-plans); NoResultCache disables the result cache. Benchmarks use
	// them to isolate each cache's contribution.
	NoPlanCache   bool
	NoResultCache bool
	// PlanCacheEntries caps the plan cache (default 128 entries).
	PlanCacheEntries int
	// ResultCacheBytes is the result cache budget (default 16 MiB).
	ResultCacheBytes int64

	// MaxConcurrent bounds simultaneously executing dataflow jobs (default
	// 4); MaxQueued bounds requests waiting for a slot (default 16,
	// negative = no queue at all) — a request beyond both fails fast with
	// ErrQueueFull.
	MaxConcurrent int
	MaxQueued     int

	// MemoryBudget is the process-wide budget, in bytes, for materialized
	// embeddings across all concurrent queries (0 = governance disabled at
	// zero cost). Every query charges its real materialized bytes against
	// it; when the budget is exhausted a query is killed per ShedPolicy with
	// a structured KindMemoryBudget error, and the result cache's memory is
	// released first (brownout). Admission is byte-aware: requests holding a
	// job slot still wait for reservation headroom before executing.
	MemoryBudget int64
	// ShedPolicy selects the kill victim on budget exhaustion:
	// govern.ShedLargest (default — the largest query in flight dies, small
	// well-behaved traffic survives a blowup) or govern.ShedSelf (the query
	// whose reservation crossed the budget dies).
	ShedPolicy govern.Policy
	// DefaultTimeout applies to requests without their own (0 = none). The
	// deadline covers queue wait and execution.
	DefaultTimeout time.Duration

	// Metrics is the continuous-telemetry registry the session (and the
	// engine underneath it) publishes into; nil disables telemetry at zero
	// cost. One registry serves one session — instrument names collide
	// otherwise.
	Metrics *obs.Registry
	// Logger receives the session's structured log records (currently the
	// slow-query log); nil disables logging.
	Logger *slog.Logger
	// SlowQueryThreshold makes successful queries at or above this service
	// time emit a slow-query log record with the canonicalized query and
	// its analyzed plan (0 = disabled).
	SlowQueryThreshold time.Duration

	// Remote, when non-nil, executes queries on an external worker cluster
	// (see internal/cluster): compilation, caching and admission stay local,
	// the dataflow job runs on the workers and the coordinator assembles the
	// result. Fault-injected requests (Request.Faults) always execute
	// in-process — the injection hooks live in the local environment.
	Remote RemoteExecutor

	// QueryStore receives one persistent record per completed execution
	// (every exit path: success, invalid, rejected, timeout, memory kill,
	// failure); nil disables the query store at zero cost, mirroring the
	// nil-registry and nil-broker off switches. The caller owns the
	// store's lifecycle (Open/Close).
	QueryStore *qstore.Store
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Vertex == 0 && o.Edge == 0 {
		o.Vertex, o.Edge = operators.Homomorphism, operators.Isomorphism
	}
	if o.PlanCacheEntries <= 0 {
		o.PlanCacheEntries = 128
	}
	if o.ResultCacheBytes <= 0 {
		o.ResultCacheBytes = 16 << 20
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 4
	}
	if o.MaxQueued == 0 {
		o.MaxQueued = 16
	} else if o.MaxQueued < 0 {
		o.MaxQueued = 0
	}
	return o
}

// GraphData is one pinned graph's process-resident representation: the raw
// element slices (rebound zero-copy onto each query's environment) and the
// per-label partitioning. It is immutable after construction and safe for
// concurrent Bind calls. Besides the session's own graphState, a cluster
// worker holds one per loaded dataset — every process of a distributed job
// binds the identical data and runs the identical program over its owned
// partitions.
type GraphData struct {
	Head     epgm.GraphHead
	Vertices []epgm.Vertex
	Edges    []epgm.Edge
	vByLabel map[string][]epgm.Vertex
	eByLabel map[string][]epgm.Edge
}

// NewGraphData collects a logical graph into pinned slices.
func NewGraphData(g *epgm.LogicalGraph) *GraphData {
	d := &GraphData{
		Head:     g.Head,
		Vertices: g.Vertices.Collect(),
		Edges:    g.Edges.Collect(),
		vByLabel: map[string][]epgm.Vertex{},
		eByLabel: map[string][]epgm.Edge{},
	}
	for _, v := range d.Vertices {
		d.vByLabel[v.Label] = append(d.vByLabel[v.Label], v)
	}
	for _, e := range d.Edges {
		d.eByLabel[e.Label] = append(d.eByLabel[e.Label], e)
	}
	return d
}

// Bind attaches the pinned slices to a fresh environment: a logical graph
// over the full slices plus a hybrid access that scans the full dataset for
// unlabeled query elements (pure slice-header splitting) and the per-label
// datasets for labeled ones (§3.4).
func (d *GraphData) Bind(env *dataflow.Env) (*epgm.LogicalGraph, planner.GraphAccess) {
	g := epgm.NewLogicalGraph(env, d.Head,
		dataflow.FromSlice(env, d.Vertices), dataflow.FromSlice(env, d.Edges))
	idx := epgm.IndexedFromSlices(env, d.Head, d.vByLabel, d.eByLabel)
	return g, hybridAccess{
		plain:   planner.PlainAccess{Graph: g},
		indexed: planner.IndexedAccess{Index: idx},
	}
}

// graphState is one pinned graph: its GraphData plus the statistics
// collected once at load. It is immutable after construction — SwapGraph
// installs a whole new state.
type graphState struct {
	generation uint64
	// graph is kept only so SwapGraph can evict the retired graph's entry
	// from the process-wide statistics memo.
	graph *epgm.LogicalGraph
	data  *GraphData
	stats *stats.GraphStatistics
}

func newGraphState(g *epgm.LogicalGraph, generation uint64) *graphState {
	return &graphState{
		generation: generation,
		graph:      g,
		data:       NewGraphData(g),
		stats:      core.GraphStats(g),
	}
}

func (st *graphState) bind(env *dataflow.Env) (*epgm.LogicalGraph, planner.GraphAccess) {
	return st.data.Bind(env)
}

// hybridAccess serves unlabeled scans from the plain full datasets (no
// per-label union work) and labeled scans from the index.
type hybridAccess struct {
	plain   planner.PlainAccess
	indexed planner.IndexedAccess
}

// Env implements planner.GraphAccess.
func (a hybridAccess) Env() *dataflow.Env { return a.plain.Env() }

// VertexDataset implements planner.GraphAccess.
func (a hybridAccess) VertexDataset(labels []string) *dataflow.Dataset[epgm.Vertex] {
	if len(labels) == 0 {
		return a.plain.VertexDataset(labels)
	}
	return a.indexed.VertexDataset(labels)
}

// EdgeDataset implements planner.GraphAccess.
func (a hybridAccess) EdgeDataset(types []string) *dataflow.Dataset[epgm.Edge] {
	if len(types) == 0 {
		return a.plain.EdgeDataset(types)
	}
	return a.indexed.EdgeDataset(types)
}

// Session is a long-lived query service over one pinned graph.
type Session struct {
	opts    Options
	gate    *gate
	plans   *planCache
	results *resultCache
	broker  *govern.Broker
	metrics *counters
	obs     *instruments
	logger  *slog.Logger
	jobs    *jobTable
	qstore  *qstore.Store

	// state is swapped wholesale by SwapGraph; reads take the pointer once
	// and work on the immutable snapshot.
	stateMu sync.RWMutex
	state   *graphState
}

// New creates a session serving the given graph.
func New(g *epgm.LogicalGraph, opts Options) *Session {
	opts = opts.withDefaults()
	broker := govern.NewBroker(opts.MemoryBudget, opts.ShedPolicy)
	s := &Session{
		opts:    opts,
		gate:    newGate(opts.MaxConcurrent, opts.MaxQueued),
		plans:   newPlanCache(opts.PlanCacheEntries),
		results: newResultCache(opts.ResultCacheBytes),
		broker:  broker,
		metrics: &counters{},
		logger:  opts.Logger,
		jobs:    newJobTable(),
		qstore:  opts.QueryStore,
		state:   newGraphState(g, 1),
	}
	s.gate.broker = broker
	// Under governance the result cache reserves its bytes from the same
	// budget queries charge against, and hands them all back under pressure
	// (brownout) before any query is killed.
	s.results.broker = broker
	broker.AddReclaimer(s.results.reclaim)
	s.obs = newInstruments(opts.Metrics, s)
	return s
}

// Broker exposes the session's memory broker (nil when governance is
// disabled) for health output and tests.
func (s *Session) Broker() *govern.Broker { return s.broker }

// Open loads a Gradoop-CSV dataset directory into a new session.
func Open(dir string, opts Options) (*Session, error) {
	opts = opts.withDefaults()
	env := dataflow.NewEnv(dataflow.DefaultConfig(opts.Workers))
	g, err := csvstore.ReadLogicalGraph(env, dir)
	if err != nil {
		return nil, err
	}
	return New(g, opts), nil
}

// Options returns the session's effective (defaulted) options.
func (s *Session) Options() Options { return s.opts }

// SwapGraph atomically replaces the served graph. In-flight queries finish
// against the old state (its slices are immutable); both caches are
// invalidated — plans because the statistics changed, results because the
// data did.
func (s *Session) SwapGraph(g *epgm.LogicalGraph) {
	s.stateMu.Lock()
	old := s.state
	s.state = newGraphState(g, old.generation+1)
	s.stateMu.Unlock()
	if old.graph != g {
		// Release the retired graph's statistics memo entry so a long-lived
		// server does not pin every graph it ever served. In-flight queries
		// are unaffected: they hold old.stats directly.
		core.DropGraphStats(old.graph)
	}
	s.plans.purge()
	s.results.purge()
}

// snapshot returns the current immutable graph state.
func (s *Session) snapshot() *graphState {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	return s.state
}

// GraphSize reports the pinned graph's element counts (health output).
func (s *Session) GraphSize() (vertices, edges int) {
	st := s.snapshot()
	return len(st.data.Vertices), len(st.data.Edges)
}

// Request is one query execution request.
type Request struct {
	Query string
	// Params bind the query's $parameters.
	Params map[string]epgm.PropertyValue
	// Timeout overrides the session's DefaultTimeout (0 = inherit). It
	// covers queue wait and execution.
	Timeout time.Duration
	// Context cancels the request (nil = not cancellable beyond Timeout).
	Context context.Context
	// Trace enables execution tracing: the response carries the collector
	// for EXPLAIN ANALYZE and Chrome-trace export. Traced requests bypass
	// the result cache so there is an execution to trace.
	Trace bool
	// Faults injects a worker-failure plan into the query's environment
	// (tests and chaos benchmarks). Fault-injected requests bypass the
	// result cache.
	Faults *dataflow.FaultPlan
}

// Response is one served query.
type Response struct {
	Columns []string
	Rows    []core.Row
	Count   int64
	// Fingerprint is the canonical plan key.
	Fingerprint string
	// PlanCacheHit reports whether the compilation was served from the plan
	// cache; FromResultCache whether the whole result was (in which case no
	// dataflow job ran and PlanCacheHit is false).
	PlanCacheHit    bool
	FromResultCache bool
	// Elapsed is the total service time, QueueWait the admission-queue
	// share of it.
	Elapsed   time.Duration
	QueueWait time.Duration
	// Metrics is the query's own dataflow job snapshot (zero when served
	// from the result cache), with SlotWait filled in.
	Metrics dataflow.MetricsSnapshot
	// Trace is the execution trace (Request.Trace only; nil for remote
	// executions, whose per-stage numbers arrive in Cluster instead).
	Trace *trace.Collector
	// Result is the underlying execution (nil when served from the result
	// cache): AnalyzedPlan, embeddings, graph collection.
	Result *core.Result
	// Cluster reports the distributed execution when the session runs with
	// Options.Remote (nil for in-process executions and cache hits).
	Cluster *ClusterReport
}

// baseConfig assembles the session-wide parts of a core.Config.
func (s *Session) baseConfig() core.Config {
	return core.Config{
		Vertex:               s.opts.Vertex,
		Edge:                 s.opts.Edge,
		Hint:                 s.opts.Hint,
		DisableSubqueryReuse: s.opts.DisableSubqueryReuse,
	}
}

// prepareToken is the trace token for the compile span.
type prepareToken struct{}

// compile returns the Prepared for a canonical query, through the plan
// cache unless disabled. On a miss (or with the cache off) the build is
// wrapped in a "Prepare" trace span when col is non-nil, which is how the
// benchmark verifies that cache hits skip parse+plan: a hit's trace has no
// such span.
func (s *Session) compile(st *graphState, canonical string, col *trace.Collector) (*core.Prepared, bool, error) {
	build := func() (*core.Prepared, error) {
		if col != nil {
			col.PushOp(prepareToken{}, "Prepare")
			defer col.PopOp(prepareToken{}, 0)
		}
		env := dataflow.NewEnv(dataflow.DefaultConfig(s.opts.Workers))
		_, access := st.bind(env)
		return core.PrepareWith(access, st.stats, canonical, s.baseConfig())
	}
	if s.opts.NoPlanCache {
		p, err := build()
		s.metrics.planMisses.Add(1)
		s.obs.planCache.With("miss").Inc()
		return p, false, err
	}
	key := planKey(st.generation, canonical)
	entry := s.plans.get(key)
	// built records whether THIS call's closure ran the build. The goroutine
	// that inserted the entry is not necessarily the one whose once.Do
	// closure runs, and each caller's closure captures its own col — so the
	// builder, and only the builder, is the miss and carries the Prepare
	// span; everyone else is a hit with no span.
	var built bool
	entry.once.Do(func() {
		built = true
		entry.p, entry.err = build()
	})
	if entry.err != nil {
		s.plans.drop(key)
		s.metrics.planMisses.Add(1)
		s.obs.planCache.With("miss").Inc()
		return nil, false, entry.err
	}
	if s.snapshot().generation != st.generation {
		// The graph was swapped since this request's snapshot: the plan is
		// still valid for this execution (st is immutable) but must not
		// linger in the cache pinning the retired graph's slices.
		s.plans.drop(key)
	}
	if built {
		s.metrics.planMisses.Add(1)
	} else {
		s.metrics.planHits.Add(1)
	}
	s.obs.planCache.With(cacheOutcome(!built)).Inc()
	return entry.p, !built, nil
}

// Execute serves one query. Every failure is classified: *Error with
// KindInvalid (bad query or binding), KindRejected (queue full),
// KindTimeout (deadline or cancellation, queued or mid-flight) or
// KindFailed (execution failure). A request never hangs: admission has a
// bounded queue and the deadline covers the wait.
//
// Execute is a thin shell around execute so that every exit path — early
// returns included — funnels through exactly one recordExit call, the
// query store's only append site (the qstorerecord analyzer pins this
// structure).
func (s *Session) Execute(req Request) (*Response, error) {
	resp, ex, err := s.execute(req)
	s.recordExit(resp, ex, err)
	return resp, err
}

// execute is Execute's body; it fills the exitInfo the query-store record
// is built from. Extra bookkeeping beyond two clock reads is gated on
// s.qstore so the disabled path stays behavior-identical and
// allocation-free.
func (s *Session) execute(req Request) (*Response, exitInfo, error) {
	start := time.Now()
	ex := exitInfo{start: start, traceID: obs.TraceIDFrom(req.Context)}
	s.metrics.queries.Add(1)
	s.obs.queries.Inc()
	canonical := CanonicalQuery(req.Query)
	ex.canonical = canonical
	if canonical == "" {
		s.metrics.invalid.Add(1)
		s.obs.errorKind(KindInvalid)
		return nil, ex, &Error{Kind: KindInvalid, Err: errors.New("empty query")}
	}

	// The deadline starts before queueing: time spent waiting for a slot
	// counts against it.
	ctx := req.Context
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.opts.DefaultTimeout
	}
	var cancel context.CancelFunc
	if timeout > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	st := s.snapshot()
	cacheable := !s.opts.NoResultCache && !req.Trace && req.Faults == nil
	resultKey := canonical + "\x00" + paramsKey(req.Params)
	if cacheable {
		if r, ok := s.results.get(resultKey, st.generation); ok {
			s.metrics.resultHits.Add(1)
			s.obs.resultCache.With("hit").Inc()
			s.obs.queryTime.ObserveSince(start)
			return &Response{
				Columns:         r.Columns,
				Rows:            r.Rows,
				Count:           r.Count,
				FromResultCache: true,
				Elapsed:         time.Since(start),
			}, ex, nil
		}
		s.metrics.resultMisses.Add(1)
		s.obs.resultCache.With("miss").Inc()
	}

	liveJob := s.jobs.add(ex.traceID, canonical)
	defer s.jobs.remove(liveJob)

	queueWait, err := s.gate.acquire(ctx)
	if err == nil {
		s.obs.admissionWait.Observe(int64(queueWait))
		ex.queueWait = queueWait
	}
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.metrics.rejected.Add(1)
			s.obs.errorKind(KindRejected)
			return nil, ex, &Error{Kind: KindRejected, Err: err}
		}
		s.metrics.timeouts.Add(1)
		s.obs.errorKind(KindTimeout)
		return nil, ex, &Error{Kind: KindTimeout, Err: err}
	}
	defer s.gate.release()

	var col *trace.Collector
	if req.Trace {
		col = trace.NewCollector()
	}
	planStart := time.Now()
	prep, planHit, err := s.compile(st, canonical, col)
	ex.planDur = time.Since(planStart)
	if err != nil {
		s.metrics.invalid.Add(1)
		s.obs.errorKind(KindInvalid)
		return nil, ex, classify(KindInvalid, err)
	}
	ex.planHash = prep.Fingerprint()
	ex.planHit = planHit

	// Under governance every query charges its materialized bytes to its own
	// reservation; Release on every exit path is what keeps the broker's
	// reserved-bytes gauge at zero between requests. A kill — own overflow or
	// shed by a bigger query's — also cancels the query context, so the
	// victim unwinds at its next cancellation poll even between
	// materialization points.
	var reservation *govern.Reservation
	if s.broker != nil {
		reservation = s.broker.Begin(canonical)
		defer reservation.Release()
		if ctx == nil {
			ctx = context.Background()
		}
		var cancelKill context.CancelFunc
		ctx, cancelKill = context.WithCancel(ctx)
		defer cancelKill()
		reservation.OnKill(cancelKill)
	}

	env := dataflow.NewEnv(dataflow.DefaultConfig(s.opts.Workers))
	env.SetObserver(s.obs.observer)
	env.SetGovernor(reservation)
	liveJob.start(env, col)
	if req.Faults != nil {
		env.InjectFaults(req.Faults)
	}
	g, access := st.bind(env)
	cfg := s.baseConfig()
	cfg.Params = req.Params
	cfg.Stats = st.stats
	cfg.Access = access
	cfg.Context = ctx
	cfg.Trace = col

	execStart := time.Now()
	var res *core.Result
	var clusterRep *ClusterReport
	if s.opts.Remote != nil && req.Faults == nil {
		res, clusterRep, err = s.opts.Remote.ExecuteRemote(g, prep, cfg)
	} else {
		res, err = prep.Execute(g, cfg)
	}
	ex.execDur = time.Since(execStart)
	if err != nil {
		if s.qstore != nil {
			ex.memBytes = env.Metrics().TotalMem
		}
		return nil, ex, s.classifyExec(err, reservation)
	}
	rows := res.Rows()
	count := res.Count()
	columns := columnsOf(rows)
	m := env.Metrics()
	if clusterRep != nil {
		// The local env only assembled the shipped result; the workers'
		// merged charges are the query's real metrics.
		m = clusterRep.Metrics
	}
	m.SlotWait = queueWait
	s.metrics.mergeJob(m)

	if cacheable {
		s.results.put(&cachedResult{
			Columns:    columns,
			Rows:       rows,
			Count:      count,
			key:        resultKey,
			generation: st.generation,
		})
	}
	resp := &Response{
		Columns:      columns,
		Rows:         rows,
		Count:        count,
		Fingerprint:  prep.Fingerprint(),
		PlanCacheHit: planHit,
		Elapsed:      time.Since(start),
		QueueWait:    queueWait,
		Metrics:      m,
		Trace:        res.Trace,
		Result:       res,
		Cluster:      clusterRep,
	}
	s.obs.queryTime.Observe(int64(resp.Elapsed))
	if s.qstore != nil {
		ex.memBytes = m.TotalMem
		if est, ok := res.Plan.Estimates[res.Plan.Root]; ok {
			ex.rootEst, ex.hasRootEst = est, true
		}
		if col != nil {
			ex.ops = res.AnalyzedOps()
		}
	}
	if th := s.slowThreshold(); th > 0 && resp.Elapsed >= th {
		s.logSlow(req.Context, canonical, resp.Fingerprint, prep.Plan.Explain(), resp)
	}
	return resp, ex, nil
}

// classifyExec maps an execution error to its kind. The budget check runs
// before the context cases: a shed victim's kill cancels its query context,
// so the surfaced error is often context.Canceled — the reservation's
// structured kill error is the real cause and must win the classification.
func (s *Session) classifyExec(err error, r *govern.Reservation) error {
	if kerr := r.KillErr(); kerr != nil && !errors.Is(err, govern.ErrMemoryBudget) {
		err = fmt.Errorf("%w (surfaced as: %v)", kerr, err)
	}
	switch {
	case errors.Is(err, govern.ErrMemoryBudget):
		s.metrics.memKilled.Add(1)
		s.obs.errorKind(KindMemoryBudget)
		return classify(KindMemoryBudget, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.metrics.timeouts.Add(1)
		s.obs.errorKind(KindTimeout)
		return classify(KindTimeout, err)
	case isMissingParam(err):
		s.metrics.invalid.Add(1)
		s.obs.errorKind(KindInvalid)
		return classify(KindInvalid, err)
	default:
		s.metrics.failed.Add(1)
		s.obs.errorKind(KindFailed)
		return classify(KindFailed, err)
	}
}

// isMissingParam detects the binder's missing-parameter error, which
// surfaces at execution time (binding) rather than compile time for
// template plans.
func isMissingParam(err error) bool {
	return err != nil && strings.Contains(err.Error(), "parameter $")
}

// columnsOf extracts the column names of a row set.
func columnsOf(rows []core.Row) []string {
	if len(rows) == 0 {
		return nil
	}
	return rows[0].Columns
}

// Explain compiles a query (through the plan cache, warming it for later
// executions) and renders its template plan plus the canonical plan
// fingerprint, without executing anything.
func (s *Session) Explain(query string) (plan, fingerprint string, err error) {
	canonical := CanonicalQuery(query)
	if canonical == "" {
		return "", "", &Error{Kind: KindInvalid, Err: errors.New("empty query")}
	}
	prep, _, err := s.compile(s.snapshot(), canonical, nil)
	if err != nil {
		return "", "", classify(KindInvalid, err)
	}
	return prep.Plan.Explain(), prep.Fingerprint(), nil
}
