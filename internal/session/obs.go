package session

import (
	"context"
	"log/slog"
	"time"

	"gradoop/internal/dataflow"
	"gradoop/internal/obs"
)

// instruments is the session's continuous-telemetry surface: the engine
// observer plus the service-level counters, gauges and histograms the
// ISSUE's operators dashboard reads. Constructed once per session against
// one registry; a nil registry yields nil instruments throughout, so every
// recording below reduces to a nil check (the same zero-cost guarantee the
// engine gives for a nil observer).
type instruments struct {
	observer *dataflow.Observer

	queries       *obs.Counter
	errors        *obs.CounterVec // by session.Kind name
	planCache     *obs.CounterVec // outcome = hit | miss
	resultCache   *obs.CounterVec // outcome = hit | miss
	admissionWait *obs.Histogram  // slot-wait, nanoseconds scaled to seconds
	queryTime     *obs.Histogram  // whole-request service time
	slowQueries   *obs.Counter
}

// newInstruments registers the session's instruments and gauges into r.
// The gauges read the session's admission gate and caches live at scrape
// time. One registry serves one session: registering a second session into
// the same registry panics on the duplicate names, which is the intended
// guard against aggregating two sessions into one exposition by accident.
func newInstruments(r *obs.Registry, s *Session) *instruments {
	in := &instruments{
		observer: dataflow.NewObserver(r),
		queries: r.NewCounter("gradoop_queries_total",
			"Queries received (all outcomes)"),
		errors: r.NewCounterVec("gradoop_query_errors_total",
			"Failed queries by error kind", "kind"),
		planCache: r.NewCounterVec("gradoop_plan_cache_total",
			"Plan cache lookups by outcome", "outcome"),
		resultCache: r.NewCounterVec("gradoop_result_cache_total",
			"Result cache lookups by outcome", "outcome"),
		admissionWait: r.NewHistogram("gradoop_admission_wait_seconds",
			"Time queries waited for an execution slot", obs.ScaleNanos),
		queryTime: r.NewHistogram("gradoop_query_duration_seconds",
			"Whole-request service time, queue wait included", obs.ScaleNanos),
		slowQueries: r.NewCounter("gradoop_slow_queries_total",
			"Queries over the slow-query threshold"),
	}
	if r != nil {
		r.NewGaugeFunc("gradoop_admission_queue_depth",
			"Requests currently waiting for an execution slot",
			func() float64 { return float64(s.gate.queued()) })
		r.NewGaugeFunc("gradoop_inflight_queries",
			"Queries currently holding an execution slot",
			func() float64 { return float64(s.gate.inFlight()) })
		r.NewGaugeFunc("gradoop_plan_cache_entries",
			"Plans currently cached",
			func() float64 { return float64(s.plans.len()) })
		r.NewGaugeFunc("gradoop_result_cache_bytes",
			"Bytes currently held by the result cache",
			func() float64 { bytes, _ := s.results.usage(); return float64(bytes) })
		r.NewGaugeFunc("gradoop_result_cache_entries",
			"Results currently cached",
			func() float64 { _, entries := s.results.usage(); return float64(entries) })
	}
	if r != nil && s.broker != nil {
		// Memory-governance surface: the reserved-bytes gauge and the
		// broker's own monotonic counters, read at scrape time (the broker
		// holds the authoritative values; mirroring them into separate
		// counters would invite drift).
		r.NewGaugeFunc("gradoop_mem_budget_bytes",
			"Process-wide memory budget for materialized embeddings",
			func() float64 { return float64(s.broker.Budget()) })
		r.NewGaugeFunc("gradoop_mem_reserved_bytes",
			"Bytes currently reserved against the memory budget",
			func() float64 { return float64(s.broker.Reserved()) })
		r.NewCounterFunc("gradoop_mem_kills_total",
			"Queries killed by the memory budget",
			func() float64 { return float64(s.broker.Kills()) })
		r.NewCounterFunc("gradoop_mem_sheds_total",
			"Budget kills where the victim was shed for another query's overflow",
			func() float64 { return float64(s.broker.Sheds()) })
		r.NewCounterFunc("gradoop_mem_brownouts_total",
			"Brownout sweeps that reclaimed cache bytes under memory pressure",
			func() float64 { return float64(s.broker.Brownouts()) })
	}
	return in
}

// errorKind records one classified failure into the per-kind counter.
func (in *instruments) errorKind(k Kind) {
	in.errors.With(k.String()).Inc()
}

// cacheOutcome turns a hit flag into the shared outcome label value.
func cacheOutcome(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// logSlow emits the slow-query log record: canonicalized query, analyzed
// plan, fingerprint and the request's timings, correlated with the trace ID
// the server stamped into ctx. Called only when the session has a logger
// and the request exceeded SlowQueryThreshold.
func (s *Session) logSlow(ctx context.Context, canonical, fingerprint, plan string, resp *Response) {
	s.metrics.slowQueries.Add(1)
	s.obs.slowQueries.Inc()
	if s.logger == nil {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.logger.LogAttrs(ctx, slog.LevelWarn, "slow query",
		slog.String("query", canonical),
		slog.String("fingerprint", fingerprint),
		slog.Duration("elapsed", resp.Elapsed),
		slog.Duration("queue_wait", resp.QueueWait),
		slog.Int64("rows", resp.Count),
		slog.Bool("plan_cache_hit", resp.PlanCacheHit),
		slog.String("plan", plan),
	)
}

// slowThreshold returns the effective slow-query threshold (0 = disabled).
func (s *Session) slowThreshold() time.Duration { return s.opts.SlowQueryThreshold }
