package session

import (
	"testing"

	"gradoop/internal/epgm"
)

// TestCanonicalQuery: whitespace collapses outside quoted regions only;
// string literals and backquoted identifiers survive byte for byte.
func TestCanonicalQuery(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"  \t\n ", ""},
		{"MATCH   (a)\n\tRETURN  a", "MATCH (a) RETURN a"},
		// Whitespace inside literals is significant.
		{"WHERE a.name = 'John  Smith'", "WHERE a.name = 'John  Smith'"},
		{`WHERE a.name = "Uni  Leipzig"  RETURN a`, `WHERE a.name = "Uni  Leipzig" RETURN a`},
		{"MATCH (a:`My  Label`)   RETURN a", "MATCH (a:`My  Label`) RETURN a"},
		// Escaped quotes do not close the literal early.
		{`WHERE a.name = 'it\'s  two  spaces'`, `WHERE a.name = 'it\'s  two  spaces'`},
		{`WHERE a.name = "a\\"  RETURN  a`, `WHERE a.name = "a\\" RETURN a`},
		// Adjacent tokens around a literal keep exactly one separator.
		{"RETURN  'x'  ,  'y  z'", "RETURN 'x' , 'y  z'"},
		// Unterminated literal: tail kept verbatim for the parser to reject.
		{"WHERE a.name = 'oops  ", "WHERE a.name = 'oops  "},
	}
	for _, c := range cases {
		if got := CanonicalQuery(c.in); got != c.want {
			t.Errorf("CanonicalQuery(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Queries differing only inside a literal must canonicalize differently.
	a := CanonicalQuery("MATCH (v) WHERE v.name = 'John  Smith' RETURN v")
	b := CanonicalQuery("MATCH (v) WHERE v.name = 'John Smith' RETURN v")
	if a == b {
		t.Fatal("distinct literals collided after canonicalization")
	}
}

// TestParamsKeyCollisionProof: bindings must never share a key — not across
// types, and not via NUL bytes forging pair boundaries (NULs in string
// params are reachable over HTTP via JSON unicode escapes).
func TestParamsKeyCollisionProof(t *testing.T) {
	pv := func(s string) epgm.PropertyValue { return epgm.PVString(s) }
	cases := []struct {
		name string
		a, b map[string]epgm.PropertyValue
	}{
		{"type distinction",
			map[string]epgm.PropertyValue{"x": epgm.PVInt(1)},
			map[string]epgm.PropertyValue{"x": epgm.PVString("1")}},
		{"NUL forging a pair boundary",
			map[string]epgm.PropertyValue{"a": pv("1\x00b=string:2")},
			map[string]epgm.PropertyValue{"a": pv("1"), "b": pv("2")}},
		{"NUL inside vs split values",
			map[string]epgm.PropertyValue{"a": pv("x\x00y")},
			map[string]epgm.PropertyValue{"a": pv("x"), "y": pv("")}},
		{"name/value boundary shift",
			map[string]epgm.PropertyValue{"ab": pv("c")},
			map[string]epgm.PropertyValue{"a": pv("bc")}},
	}
	for _, c := range cases {
		ka, kb := paramsKey(c.a), paramsKey(c.b)
		if ka == kb {
			t.Errorf("%s: %v and %v share key %q", c.name, c.a, c.b, ka)
		}
	}
	// Determinism: iteration order must not leak into the key.
	m := map[string]epgm.PropertyValue{"a": pv("1"), "b": pv("2"), "c": pv("3")}
	k := paramsKey(m)
	for i := 0; i < 32; i++ {
		if paramsKey(m) != k {
			t.Fatal("paramsKey is not deterministic")
		}
	}
}
