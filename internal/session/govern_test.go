package session

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gradoop/internal/govern"
)

// blowupQuery is the adversarial cartesian product the ISSUE motivates: no
// connecting pattern, so the result is |V|^5 materialized embeddings —
// enough to blow every budget these tests configure.
const blowupQuery = `MATCH (a),(b),(c),(d),(e) RETURN a, b, c, d, e`

// wellBehavedQuery is small, oracle-checkable traffic (5 knows edges).
const wellBehavedQuery = `MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name, b.name`

// TestMemoryBudgetKill: under a tiny process budget the cartesian blowup is
// killed with a structured, classified KindMemoryBudget error, and the
// broker's reservations drain back to zero — no leaked bytes.
func TestMemoryBudgetKill(t *testing.T) {
	s := New(testGraph(4), Options{MemoryBudget: 4 << 10})
	_, err := s.Execute(Request{Query: blowupQuery})
	if err == nil {
		t.Fatal("blowup should be killed by the memory budget")
	}
	if KindOf(err) != KindMemoryBudget {
		t.Fatalf("KindOf = %v, want KindMemoryBudget (%v)", KindOf(err), err)
	}
	if !errors.Is(err, govern.ErrMemoryBudget) {
		t.Fatalf("err must match govern.ErrMemoryBudget, got %v", err)
	}
	var be *govern.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err must carry *govern.BudgetError, got %v", err)
	}
	m := s.Metrics()
	if m.MemoryKilled != 1 || m.MemKills < 1 {
		t.Errorf("MemoryKilled=%d MemKills=%d, want 1/>=1", m.MemoryKilled, m.MemKills)
	}
	if got := s.Broker().Reserved(); got != 0 {
		t.Errorf("broker holds %d B after the kill, want 0 (leaked reservation)", got)
	}
	if s.Broker().Live() != 0 {
		t.Errorf("live reservations = %d, want 0", s.Broker().Live())
	}
}

// TestGovernedSessionParity: with an ample budget, governed execution
// returns exactly the ungoverned results, and releases everything.
func TestGovernedSessionParity(t *testing.T) {
	plain := New(testGraph(4), Options{})
	governed := New(testGraph(4), Options{MemoryBudget: 1 << 30})
	want, err := plain.Execute(Request{Query: wellBehavedQuery})
	if err != nil {
		t.Fatal(err)
	}
	got, err := governed.Execute(Request{Query: wellBehavedQuery})
	if err != nil {
		t.Fatalf("governed execution failed: %v", err)
	}
	if got.Count != want.Count || len(got.Rows) != len(want.Rows) {
		t.Errorf("governed count=%d rows=%d, want %d/%d", got.Count, len(got.Rows), want.Count, len(want.Rows))
	}
	if got.Metrics.TotalMem == 0 {
		t.Error("governed job should account materialized bytes")
	}
	m := governed.Metrics()
	if m.MemKills != 0 || m.MemoryKilled != 0 {
		t.Errorf("ample budget must not kill: %+v", m)
	}
	// The result cache may legitimately hold broker bytes; beyond that the
	// query's own reservation must be gone.
	cacheBytes, _ := governed.results.usage()
	if got := governed.Broker().Reserved(); got != cacheBytes {
		t.Errorf("broker holds %d B, cache accounts %d B — leaked query reservation", got, cacheBytes)
	}
}

// TestBrownoutReclaimsResultCache: cached results reserve broker bytes; a
// blowup under pressure browns the cache out (bytes handed back, cache
// emptied) before queries are killed for them.
func TestBrownoutReclaimsResultCache(t *testing.T) {
	s := New(testGraph(4), Options{MemoryBudget: 64 << 10})
	if _, err := s.Execute(Request{Query: wellBehavedQuery}); err != nil {
		t.Fatal(err)
	}
	cached, _ := s.results.usage()
	if cached == 0 {
		t.Fatal("setup: result cache should hold the first query's bytes")
	}
	if got := s.Broker().Reserved(); got != cached {
		t.Fatalf("cache bytes not reserved with the broker: reserved=%d cached=%d", got, cached)
	}
	// The blowup exhausts the budget; the brownout must fire and empty the
	// cache regardless of the blowup's own fate.
	if _, err := s.Execute(Request{Query: blowupQuery}); err == nil {
		t.Fatal("blowup should be killed under a 64 KiB budget")
	}
	if s.Broker().Brownouts() == 0 {
		t.Error("expected a brownout before killing")
	}
	if bytes, entries := s.results.usage(); bytes != 0 || entries != 0 {
		t.Errorf("cache not browned out: %d B in %d entries", bytes, entries)
	}
	if got := s.Broker().Reserved(); got != 0 {
		t.Errorf("broker holds %d B after brownout + kill, want 0", got)
	}
}

// TestShedLargestKeepsWellBehavedTraffic: with largest-query-first shedding,
// a concurrent blowup dies and the small queries all succeed.
func TestShedLargestKeepsWellBehavedTraffic(t *testing.T) {
	s := New(testGraph(4), Options{
		MemoryBudget:  128 << 10,
		ShedPolicy:    govern.ShedLargest,
		MaxConcurrent: 4,
		MaxQueued:     64,
		NoResultCache: true,
	})
	var wg sync.WaitGroup
	var killErr atomic.Value
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Execute(Request{Query: blowupQuery}); err != nil {
			killErr.Store(err)
		}
	}()
	var smallFail atomic.Value
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := s.Execute(Request{Query: wellBehavedQuery})
			if err != nil {
				smallFail.Store(err)
				return
			}
			if r.Count != 5 {
				smallFail.Store(errorsNewf("count = %d, want 5", r.Count))
			}
		}()
	}
	wg.Wait()
	if err := smallFail.Load(); err != nil {
		t.Fatalf("well-behaved query failed under shedding: %v", err)
	}
	err, _ := killErr.Load().(error)
	if err == nil {
		t.Fatal("the blowup should have been killed")
	}
	if KindOf(err) != KindMemoryBudget {
		t.Fatalf("blowup kind = %v, want KindMemoryBudget (%v)", KindOf(err), err)
	}
	if got := s.Broker().Reserved(); got != 0 {
		t.Errorf("broker holds %d B after the run, want 0", got)
	}
}

// TestHeadroomAdmission: a request holding a job slot is not admitted while
// the broker has no headroom, and proceeds once reservations release.
func TestHeadroomAdmission(t *testing.T) {
	b := govern.NewBroker(1000, govern.ShedLargest)
	g := newGate(1, 4)
	g.broker = b

	hog := b.Begin("hog")
	if err := hog.Reserve(1000); err != nil {
		t.Fatal(err)
	}

	// Cancelled while waiting for headroom: the slot must be handed back.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.acquire(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if g.inFlight() != 1 {
		t.Fatalf("headroom waiter should hold the slot while queued, inFlight=%d", g.inFlight())
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("acquire = %v, want context.Canceled", err)
	}
	if g.inFlight() != 0 {
		t.Fatalf("slot leaked on the cancelled headroom wait: inFlight=%d", g.inFlight())
	}

	// Deadline expiring during the headroom wait behaves the same.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer dcancel()
	if _, err := g.acquire(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("acquire = %v, want DeadlineExceeded", err)
	}
	if g.inFlight() != 0 {
		t.Fatalf("slot leaked on the expired headroom wait: inFlight=%d", g.inFlight())
	}

	// Headroom opening admits the waiter.
	go func() {
		_, err := g.acquire(context.Background())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	hog.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("acquire after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire did not wake when headroom opened")
	}
	if g.inFlight() != 1 {
		t.Fatalf("admitted request should hold the slot, inFlight=%d", g.inFlight())
	}
	g.release()
}

// TestGateSlotBalanceUnderRace hammers acquire/release with cancellations,
// queue-full rejections and headroom stalls concurrently: whatever the exit
// path, the slot count must balance to zero. Run with -race.
func TestGateSlotBalanceUnderRace(t *testing.T) {
	b := govern.NewBroker(1<<20, govern.ShedLargest)
	g := newGate(2, 2)
	g.broker = b
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(j%5)*time.Millisecond)
				if _, err := g.acquire(ctx); err == nil {
					// Occupy the broker briefly so some acquires stall on
					// headroom too.
					r := b.Begin("w")
					_ = r.Reserve(1 << 19)
					time.Sleep(time.Duration(j%3) * 100 * time.Microsecond)
					r.Release()
					g.release()
				}
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if g.inFlight() != 0 {
		t.Fatalf("slots out of balance after hammer: inFlight=%d", g.inFlight())
	}
	if g.queued() != 0 {
		t.Fatalf("queue counter out of balance: %d", g.queued())
	}
	if b.Reserved() != 0 {
		t.Fatalf("broker out of balance: %d B", b.Reserved())
	}
}

// TestMetricsSnapshotUntornWithGovernance: concurrent pollers reading
// Session.Metrics while governed queries (including killed blowups) complete
// must never see torn cluster state — the PR 5 guarantee extended to the
// new memory fields.
func TestMetricsSnapshotUntornWithGovernance(t *testing.T) {
	s := New(testGraph(4), Options{
		MemoryBudget:  256 << 10,
		MaxConcurrent: 4,
		MaxQueued:     64,
		NoResultCache: true,
	})
	stop := make(chan struct{})
	var pollErr atomic.Value
	var pollers sync.WaitGroup
	for i := 0; i < 3; i++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := s.Metrics()
				var sum int64
				for _, v := range m.Cluster.MemBytes {
					sum += v
				}
				// Clone under the merge lock: per-worker breakdown and total
				// must agree in every observed snapshot.
				if sum != m.Cluster.TotalMem {
					pollErr.Store(errorsNewf("torn snapshot: sum(MemBytes)=%d TotalMem=%d", sum, m.Cluster.TotalMem))
					return
				}
				if m.MemReserved < 0 || m.MemReserved > m.MemBudget {
					pollErr.Store(errorsNewf("impossible gauge: reserved=%d budget=%d", m.MemReserved, m.MemBudget))
					return
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				q := wellBehavedQuery
				if (i+j)%4 == 0 {
					q = blowupQuery
				}
				_, _ = s.Execute(Request{Query: q})
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	pollers.Wait()
	if err := pollErr.Load(); err != nil {
		t.Fatal(err)
	}
	if got := s.Broker().Reserved(); got != 0 {
		t.Errorf("broker holds %d B after the run, want 0", got)
	}
}
