package session

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"gradoop/internal/epgm"
	"gradoop/internal/obs"
)

// obsQueries is a small mixed workload: repeats (plan/result cache hits),
// a parameterized query, and one invalid query.
func obsWorkload(s *Session) {
	queries := []string{
		`MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name, b.name`,
		`MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name, b.name`,
		`MATCH (p:Person)-[:studyAt]->(u:University) RETURN p.name`,
		`MATCH (p:Person) WHERE p.name = $n RETURN p.name`,
	}
	for _, q := range queries {
		req := Request{Query: q}
		if strings.Contains(q, "$n") {
			req.Params = map[string]epgm.PropertyValue{"n": epgm.PVString("Alice")}
		}
		s.Execute(req)
	}
	// Same canonical query, different binding: a result-cache miss that is
	// a plan-cache hit.
	s.Execute(Request{
		Query:  `MATCH (p:Person) WHERE p.name = $n RETURN p.name`,
		Params: map[string]epgm.PropertyValue{"n": epgm.PVString("Bob")},
	})
	s.Execute(Request{Query: `MATCH (a:Person RETURN a`}) // invalid
}

// TestSessionRegistryParity: the same workload against a session with and
// without a registry produces byte-identical responses — telemetry observes
// the service, it never alters results.
func TestSessionRegistryParity(t *testing.T) {
	run := func(r *obs.Registry) []string {
		s := New(testGraph(4), Options{Metrics: r})
		var out []string
		for _, q := range []string{
			`MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name, b.name`,
			`MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name, b.name`,
			`MATCH (p:Person)-[:studyAt]->(u:University) RETURN p.name`,
		} {
			resp, err := s.Execute(Request{Query: q})
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(struct {
				Columns []string
				Rows    any
				Count   int64
			}{resp.Columns, resp.Rows, resp.Count})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, string(b))
		}
		return out
	}
	with := run(obs.NewRegistry())
	without := run(nil)
	if !reflect.DeepEqual(with, without) {
		t.Fatalf("registry changed results:\nwith:    %v\nwithout: %v", with, without)
	}
}

// TestSessionInstruments: after a mixed workload the registry exposes the
// service's core series with values agreeing with the session's own
// counters.
func TestSessionInstruments(t *testing.T) {
	r := obs.NewRegistry()
	s := New(testGraph(4), Options{Metrics: r})
	obsWorkload(s)

	m := s.Metrics()
	exp := r.Exposition()
	expect := map[string]int64{
		"gradoop_queries_total ":                      m.Queries,
		`gradoop_plan_cache_total{outcome="hit"} `:    m.PlanHits,
		`gradoop_plan_cache_total{outcome="miss"} `:   m.PlanMisses,
		`gradoop_result_cache_total{outcome="hit"} `:  m.ResultHits,
		`gradoop_result_cache_total{outcome="miss"} `: m.ResultMisses,
		`gradoop_query_errors_total{kind="invalid"} `: m.Invalid,
		"gradoop_stages_total ":                       m.Cluster.Stages,
	}
	for prefix, want := range expect {
		if want == 0 {
			t.Errorf("workload left %q at zero; test exercises nothing", prefix)
		}
		line := fmt.Sprintf("%s%d\n", prefix, want)
		if !strings.Contains(exp, line) {
			t.Errorf("exposition missing %q:\n%s", line, exp)
		}
	}
	for _, series := range []string{
		"gradoop_admission_wait_seconds_count",
		`gradoop_query_duration_seconds{quantile="0.99"}`,
		"gradoop_admission_queue_depth 0",
		"gradoop_inflight_queries 0",
		"gradoop_plan_cache_entries",
		"gradoop_result_cache_bytes",
		`gradoop_stage_duration_seconds{kind=`,
	} {
		if !strings.Contains(exp, series) {
			t.Errorf("exposition missing series %q", series)
		}
	}
}

// TestMetricsSnapshotUntorn: satellite 1 — snapshots taken while queries
// complete concurrently are internally consistent: after the load drains,
// the cluster aggregate reports exactly one job per executed query, and no
// intermediate snapshot ever shows more jobs than queries merged so far.
func TestMetricsSnapshotUntorn(t *testing.T) {
	s := New(testGraph(2), Options{MaxConcurrent: 4, MaxQueued: 64, NoResultCache: true})
	const goroutines, per = 4, 8
	stop := make(chan struct{})
	var snapErr error
	var snapMu sync.Mutex
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := s.Metrics()
			if int64(len(m.Cluster.CPUElements)) != 0 && m.Cluster.Workers == 0 {
				snapMu.Lock()
				snapErr = fmt.Errorf("torn snapshot: %d worker slices but Workers=0", len(m.Cluster.CPUElements))
				snapMu.Unlock()
			}
			if m.Cluster.Jobs > m.Queries {
				snapMu.Lock()
				snapErr = fmt.Errorf("torn snapshot: jobs=%d > queries=%d", m.Cluster.Jobs, m.Queries)
				snapMu.Unlock()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := s.Execute(Request{
					Query: `MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name`,
				}); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapMu.Lock()
	defer snapMu.Unlock()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	m := s.Metrics()
	if m.Cluster.Jobs != goroutines*per {
		t.Fatalf("jobs=%d want %d", m.Cluster.Jobs, goroutines*per)
	}
}

// TestJobsLiveView: an in-flight query appears in Jobs() with its canonical
// query, running state and a live stage; after completion the table is
// empty again.
func TestJobsLiveView(t *testing.T) {
	s := New(testGraph(2), Options{Metrics: obs.NewRegistry(), NoResultCache: true})
	if got := s.Jobs(); len(got) != 0 {
		t.Fatalf("idle session lists %d jobs", len(got))
	}

	// Stall a traced query inside a UDF-visible stage by holding a lock the
	// filter parameter binding can't touch — instead, run queries in a loop
	// in the background and poll Jobs() until we catch one mid-flight.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Execute(Request{
				Query:   `MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person) RETURN a.name, c.name`,
				Trace:   true,
				Context: obs.WithTraceID(context.Background(), "deadbeef"),
			})
		}
	}()
	defer func() { close(stop); <-done }()

	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("never caught an in-flight job in Jobs()")
		default:
		}
		jobs := s.Jobs()
		if len(jobs) == 0 {
			continue
		}
		j := jobs[0]
		if j.Query == "" || !strings.Contains(j.Query, "MATCH") {
			t.Fatalf("job lost its query text: %+v", j)
		}
		if j.TraceID != "deadbeef" {
			t.Fatalf("job lost its trace ID: %+v", j)
		}
		if j.State != "running" && j.State != "queued" {
			t.Fatalf("unexpected state %q", j.State)
		}
		// Keep polling until we see a running job with a live stage: that is
		// the acceptance criterion — the current stage while it runs.
		if j.State == "running" && j.Stage > 0 && j.Kind != "" {
			return
		}
	}
}

// TestSlowQueryLog: a threshold of 1ns makes every successful query slow;
// the log record carries the canonical query, the plan and the stamped
// trace ID.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(obs.NewLogHandler(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil)))
	r := obs.NewRegistry()
	s := New(testGraph(2), Options{
		Metrics:            r,
		Logger:             logger,
		SlowQueryThreshold: 1, // 1ns: everything is slow
	})
	ctx := obs.WithTraceID(context.Background(), "feedc0de")
	if _, err := s.Execute(Request{
		Query:   `MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name`,
		Context: ctx,
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	for _, want := range []string{
		`"msg":"slow query"`,
		`"query":"MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name"`,
		`"trace_id":"feedc0de"`,
		`"plan":`,
		`"fingerprint":`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-query log missing %s:\n%s", want, out)
		}
	}
	if !strings.Contains(r.Exposition(), "gradoop_slow_queries_total 1") {
		t.Errorf("slow-query counter not incremented:\n%s", r.Exposition())
	}

	// Result-cache hits are never slow-logged (no execution happened) —
	// second identical query leaves the counter at 1.
	if _, err := s.Execute(Request{
		Query:   `MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name`,
		Context: ctx,
	}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Exposition(), "gradoop_slow_queries_total 1") {
		t.Errorf("result-cache hit was slow-logged:\n%s", r.Exposition())
	}
}

// lockedWriter serializes writes so -race accepts the shared buffer.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
