package core

import (
	"sort"
	"testing"

	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/operators"
)

// optionalGraph: ann knows ben; ben knows cy; ann likes Alien; cy likes
// nothing; dora is isolated.
func optionalGraph(workers int) *epgm.LogicalGraph {
	env := dataflow.NewEnv(dataflow.DefaultConfig(workers))
	person := func(name string) epgm.Vertex {
		return epgm.Vertex{ID: epgm.NewID(), Label: "Person",
			Properties: epgm.Properties{}.Set("name", epgm.PVString(name))}
	}
	ann := person("Ann")
	ben := person("Ben")
	cy := person("Cy")
	dora := person("Dora")
	alien := epgm.Vertex{ID: epgm.NewID(), Label: "Movie",
		Properties: epgm.Properties{}.Set("title", epgm.PVString("Alien")).Set("year", epgm.PVInt(1979))}
	blade := epgm.Vertex{ID: epgm.NewID(), Label: "Movie",
		Properties: epgm.Properties{}.Set("title", epgm.PVString("Blade")).Set("year", epgm.PVInt(1998))}
	e := func(label string, s, t epgm.Vertex) epgm.Edge {
		return epgm.Edge{ID: epgm.NewID(), Label: label, Source: s.ID, Target: t.ID}
	}
	return epgm.GraphFromSlices(env, "G",
		[]epgm.Vertex{ann, ben, cy, dora, alien, blade},
		[]epgm.Edge{
			e("knows", ann, ben),
			e("knows", ben, cy),
			e("likes", ann, alien),
			e("likes", ben, alien),
			e("likes", ben, blade),
		})
}

func TestOptionalMatchBasic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g := optionalGraph(workers)
		rows := rowsOf(t, g, `
			MATCH (p:Person)
			OPTIONAL MATCH (p)-[:likes]->(m:Movie)
			RETURN p.name, m.title ORDER BY p.name, m.title`)
		// ann->Alien, ben->Alien, ben->Blade, cy->null, dora->null.
		if len(rows) != 5 {
			t.Fatalf("workers=%d rows=%d: %v", workers, len(rows), rows)
		}
		got := map[string][]string{}
		for _, r := range rows {
			name := r.Values[0].Str()
			if r.Values[1].IsNull() {
				got[name] = append(got[name], "<null>")
			} else {
				got[name] = append(got[name], r.Values[1].Str())
			}
		}
		if len(got["Ann"]) != 1 || got["Ann"][0] != "Alien" {
			t.Fatalf("ann: %v", got["Ann"])
		}
		sort.Strings(got["Ben"])
		if len(got["Ben"]) != 2 || got["Ben"][0] != "Alien" || got["Ben"][1] != "Blade" {
			t.Fatalf("ben: %v", got["Ben"])
		}
		if len(got["Cy"]) != 1 || got["Cy"][0] != "<null>" {
			t.Fatalf("cy: %v", got["Cy"])
		}
		if len(got["Dora"]) != 1 || got["Dora"][0] != "<null>" {
			t.Fatalf("dora: %v", got["Dora"])
		}
	}
}

func TestOptionalMatchWhereDecidesNull(t *testing.T) {
	g := optionalGraph(2)
	// The WHERE belongs to the optional part: rows failing it become null
	// rows instead of disappearing.
	rows := rowsOf(t, g, `
		MATCH (p:Person)
		OPTIONAL MATCH (p)-[:likes]->(m:Movie) WHERE m.year > 1990
		RETURN p.name, m.title ORDER BY p.name`)
	// ann's only movie is 1979 -> null; ben keeps Blade (1998); cy, dora null.
	if len(rows) != 4 {
		t.Fatalf("rows=%d: %v", len(rows), rows)
	}
	byName := map[string]epgm.PropertyValue{}
	for _, r := range rows {
		byName[r.Values[0].Str()] = r.Values[1]
	}
	if !byName["Ann"].IsNull() {
		t.Fatalf("ann should be null: %v", byName["Ann"])
	}
	if byName["Ben"].Str() != "Blade" {
		t.Fatalf("ben: %v", byName["Ben"])
	}
}

func TestOptionalMatchChained(t *testing.T) {
	g := optionalGraph(3)
	rows := rowsOf(t, g, `
		MATCH (p:Person {name: 'Ann'})
		OPTIONAL MATCH (p)-[:knows]->(q:Person)
		OPTIONAL MATCH (q)-[:knows]->(r:Person)
		RETURN p.name, q.name, r.name`)
	if len(rows) != 1 {
		t.Fatalf("rows=%d: %v", len(rows), rows)
	}
	v := rows[0].Values
	if v[0].Str() != "Ann" || v[1].Str() != "Ben" || v[2].Str() != "Cy" {
		t.Fatalf("chain: %v", rows[0])
	}
	// Starting from Cy: both optionals null.
	rows = rowsOf(t, g, `
		MATCH (p:Person {name: 'Cy'})
		OPTIONAL MATCH (p)-[:knows]->(q:Person)
		OPTIONAL MATCH (q)-[:knows]->(r:Person)
		RETURN p.name, q.name, r.name`)
	if len(rows) != 1 || !rows[0].Values[1].IsNull() || !rows[0].Values[2].IsNull() {
		t.Fatalf("null chain: %v", rows)
	}
}

func TestOptionalMatchDisconnected(t *testing.T) {
	g := optionalGraph(2)
	// No shared variables: cartesian outer join.
	rows := rowsOf(t, g, `
		MATCH (p:Person {name: 'Dora'})
		OPTIONAL MATCH (m:Movie) WHERE m.year > 2100
		RETURN p.name, m.title`)
	if len(rows) != 1 || !rows[0].Values[1].IsNull() {
		t.Fatalf("disconnected optional: %v", rows)
	}
	rows = rowsOf(t, g, `
		MATCH (p:Person {name: 'Dora'})
		OPTIONAL MATCH (m:Movie)
		RETURN p.name, m.title`)
	if len(rows) != 2 {
		t.Fatalf("disconnected optional with matches: %v", rows)
	}
}

func TestOptionalMatchAggregation(t *testing.T) {
	g := optionalGraph(2)
	// count(m) skips nulls: the canonical "count per person incl. zero".
	rows := rowsOf(t, g, `
		MATCH (p:Person)
		OPTIONAL MATCH (p)-[:likes]->(m:Movie)
		RETURN p.name, count(m) AS movies ORDER BY p.name`)
	want := map[string]int64{"Ann": 1, "Ben": 2, "Cy": 0, "Dora": 0}
	if len(rows) != 4 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.Values[1].Int() != want[r.Values[0].Str()] {
			t.Fatalf("row %v, want %d", r, want[r.Values[0].Str()])
		}
	}
}

func TestOptionalMatchMorphism(t *testing.T) {
	g := optionalGraph(2)
	// Vertex isomorphism: q must differ from p; ann-knows->ben is fine, but
	// an optional pattern (p)-[:knows]->(p) style duplicates are pruned by
	// the merged-morphism check.
	res, err := Execute(g, `
		MATCH (p:Person)-[:knows]->(q:Person)
		OPTIONAL MATCH (q)-[:knows]->(r:Person)
		RETURN *`, Config{Vertex: operators.Isomorphism, Edge: operators.Isomorphism})
	if err != nil {
		t.Fatal(err)
	}
	// ann->ben with r=cy; ben->cy with r=null.
	if res.Count() != 2 {
		t.Fatalf("count=%d\n%s", res.Count(), res.Explain())
	}
}

func TestOptionalMatchGraphCollectionSkipsNulls(t *testing.T) {
	g := optionalGraph(2)
	res, err := Execute(g, `
		MATCH (p:Person {name: 'Cy'})
		OPTIONAL MATCH (p)-[:likes]->(m:Movie)
		RETURN *`, Config{})
	if err != nil {
		t.Fatal(err)
	}
	coll := res.GraphCollection()
	if coll.GraphCount() != 1 {
		t.Fatalf("graphs=%d", coll.GraphCount())
	}
	head := coll.Heads.Collect()[0]
	if head.Properties.Has("m") {
		t.Fatalf("null binding materialized: %v", head.Properties)
	}
	lg, _ := coll.Graph(head.ID)
	if lg.VertexCount() != 1 {
		t.Fatalf("vertices=%d", lg.VertexCount())
	}
}

func TestOptionalMatchErrors(t *testing.T) {
	g := optionalGraph(1)
	cases := []string{
		// Constraints on already-bound variables are rejected.
		`MATCH (p:Person) OPTIONAL MATCH (p:Movie)-[:likes]->(m) RETURN *`,
		// Variable length paths are not supported in OPTIONAL MATCH.
		`MATCH (p:Person) OPTIONAL MATCH (p)-[:knows*1..2]->(q) RETURN *`,
		// Undeclared variable in the optional WHERE.
		`MATCH (p:Person) OPTIONAL MATCH (p)-[:likes]->(m) WHERE zz.x = 1 RETURN *`,
	}
	for _, q := range cases {
		if _, err := Execute(g, q, Config{}); err == nil {
			t.Errorf("Execute(%q): expected error", q)
		}
	}
}

func TestOptionalMatchDistinctAndNullOrdering(t *testing.T) {
	g := optionalGraph(2)
	rows := rowsOf(t, g, `
		MATCH (p:Person)
		OPTIONAL MATCH (p)-[:likes]->(m:Movie)
		RETURN DISTINCT m.title ORDER BY m.title`)
	// Alien, Blade, null (nulls sort last).
	if len(rows) != 3 {
		t.Fatalf("rows=%v", rows)
	}
	if rows[0].Values[0].Str() != "Alien" || rows[1].Values[0].Str() != "Blade" || !rows[2].Values[0].IsNull() {
		t.Fatalf("ordering: %v", rows)
	}
}
