package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"gradoop/internal/cypher"
	"gradoop/internal/dataflow"
	"gradoop/internal/epgm"
	"gradoop/internal/operators"
	"gradoop/internal/planner"
	"gradoop/internal/stats"
)

// Prepared is a compiled query: the parsed AST, the deferred query-graph
// template ($parameters unresolved) and the physical plan built from it.
// A Prepared is immutable and safe for concurrent use — Execute instantiates
// a fresh operator tree per call — so it is what the session's plan cache
// stores: parameterized calls reuse one Prepared and only bind differently.
type Prepared struct {
	Query    string
	AST      *cypher.Query
	Template *cypher.QueryGraph
	Plan     *planner.QueryPlan
	Stats    *stats.GraphStatistics
	Morph    operators.Morphism
	Hint     dataflow.JoinHint
}

// Prepare parses, simplifies and plans a query once, without binding
// parameters, so the result can be cached and executed many times. Stats and
// Access follow the same defaulting as Execute (memoized per-graph stats,
// plain access).
func Prepare(g *epgm.LogicalGraph, query string, cfg Config) (*Prepared, error) {
	access := cfg.Access
	if access == nil {
		access = planner.PlainAccess{Graph: g}
	}
	st := cfg.Stats
	if st == nil {
		st = GraphStats(g)
	}
	return PrepareWith(access, st, query, cfg)
}

// PrepareWith is Prepare for callers that manage their own graph access and
// statistics (the session engine): no defaulting, no graph handle needed.
func PrepareWith(access planner.GraphAccess, st *stats.GraphStatistics, query string, cfg Config) (*Prepared, error) {
	ast, err := cypher.Parse(query)
	if err != nil {
		return nil, err
	}
	tpl, err := cypher.BuildQueryGraphDeferred(ast)
	if err != nil {
		return nil, err
	}
	morph := operators.Morphism{Vertex: cfg.Vertex, Edge: cfg.Edge}
	pl := &planner.Planner{
		Stats:        st,
		Morph:        morph,
		Hint:         cfg.Hint,
		DisableReuse: cfg.DisableSubqueryReuse,
	}
	plan, err := pl.Plan(access, tpl)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		Query:    query,
		AST:      ast,
		Template: tpl,
		Plan:     plan,
		Stats:    st,
		Morph:    morph,
		Hint:     cfg.Hint,
	}, nil
}

// Fingerprint returns the template plan's canonical key.
func (p *Prepared) Fingerprint() string { return p.Plan.Fingerprint() }

// Execute binds cfg.Params into the template, re-instantiates the cached
// plan against the execution's graph access and runs it. Each call builds a
// fresh operator tree, so one Prepared serves concurrent executions (each on
// its own Env). Fault-tolerance semantics match Execute.
func (p *Prepared) Execute(g *epgm.LogicalGraph, cfg Config) (*Result, error) {
	access := cfg.Access
	if access == nil {
		access = planner.PlainAccess{Graph: g}
	}
	binding, err := p.Template.Bind(cfg.Params)
	if err != nil {
		return nil, err
	}
	bound, err := planner.Rebind(p.Plan, access, binding)
	if err != nil {
		return nil, err
	}
	env := access.Env()
	if cfg.Trace != nil {
		env.SetTracer(cfg.Trace)
		defer env.SetTracer(nil)
	}
	ctx := cfg.Context
	if cfg.Timeout > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	env.Begin(ctx)
	embeddings := bound.Execute()
	if err := env.Finish(); err != nil {
		return nil, fmt.Errorf("core: execute %q: %w", p.Query, err)
	}
	return &Result{
		Graph:      g,
		QueryGraph: binding.Graph,
		Plan:       bound,
		Embeddings: embeddings,
		Meta:       bound.Meta(),
		Env:        env,
		Trace:      cfg.Trace,
	}, nil
}

// Per-graph statistics memo: Execute with cfg.Stats == nil used to re-collect
// statistics on every call; GraphStats collects once per graph. Entries are
// keyed by graph identity; a long-lived holder that retires a graph (the
// session engine on SwapGraph) evicts its entry via DropGraphStats so the
// memo does not keep swapped-out graphs reachable for the process lifetime.
var (
	statsMu          sync.Mutex
	statsMemo        = map[*epgm.LogicalGraph]*stats.GraphStatistics{}
	statsCollections atomic.Int64
)

// GraphStats returns the memoized statistics for g, collecting them on the
// first call.
func GraphStats(g *epgm.LogicalGraph) *stats.GraphStatistics {
	statsMu.Lock()
	defer statsMu.Unlock()
	if st, ok := statsMemo[g]; ok {
		return st
	}
	st := stats.Collect(g)
	statsCollections.Add(1)
	statsMemo[g] = st
	return st
}

// DropGraphStats evicts g's memoized statistics. Callers that hold graphs
// long-term must drop retired graphs here, or the memo pins them forever;
// statistics pointers already handed out stay valid.
func DropGraphStats(g *epgm.LogicalGraph) {
	statsMu.Lock()
	delete(statsMemo, g)
	statsMu.Unlock()
}

// StatsCollections reports how many times GraphStats actually collected
// statistics (memo misses) over the process lifetime; the regression test
// for repeated collection asserts on its delta.
func StatsCollections() int64 { return statsCollections.Load() }
